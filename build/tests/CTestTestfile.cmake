# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/base_test[1]_include.cmake")
include("/root/repo/build/tests/ser_test[1]_include.cmake")
include("/root/repo/build/tests/core_timestamp_test[1]_include.cmake")
include("/root/repo/build/tests/core_summary_test[1]_include.cmake")
include("/root/repo/build/tests/core_progress_test[1]_include.cmake")
include("/root/repo/build/tests/core_runtime_test[1]_include.cmake")
include("/root/repo/build/tests/net_test[1]_include.cmake")
include("/root/repo/build/tests/lib_ops_test[1]_include.cmake")
include("/root/repo/build/tests/ft_test[1]_include.cmake")
include("/root/repo/build/tests/algo_test[1]_include.cmake")
include("/root/repo/build/tests/lib_pregel_allreduce_test[1]_include.cmake")
include("/root/repo/build/tests/baseline_test[1]_include.cmake")
include("/root/repo/build/tests/algo_extras_test[1]_include.cmake")
include("/root/repo/build/tests/core_summary_property_test[1]_include.cmake")
include("/root/repo/build/tests/net_stress_test[1]_include.cmake")
