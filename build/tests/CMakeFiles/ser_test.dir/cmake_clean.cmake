file(REMOVE_RECURSE
  "CMakeFiles/ser_test.dir/ser_test.cc.o"
  "CMakeFiles/ser_test.dir/ser_test.cc.o.d"
  "ser_test"
  "ser_test.pdb"
  "ser_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ser_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
