# Empty dependencies file for ser_test.
# This may be replaced when dependencies are built.
