# Empty dependencies file for net_stress_test.
# This may be replaced when dependencies are built.
