file(REMOVE_RECURSE
  "CMakeFiles/lib_ops_test.dir/lib_ops_test.cc.o"
  "CMakeFiles/lib_ops_test.dir/lib_ops_test.cc.o.d"
  "lib_ops_test"
  "lib_ops_test.pdb"
  "lib_ops_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lib_ops_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
