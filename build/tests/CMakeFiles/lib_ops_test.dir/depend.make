# Empty dependencies file for lib_ops_test.
# This may be replaced when dependencies are built.
