file(REMOVE_RECURSE
  "CMakeFiles/core_progress_test.dir/core_progress_test.cc.o"
  "CMakeFiles/core_progress_test.dir/core_progress_test.cc.o.d"
  "core_progress_test"
  "core_progress_test.pdb"
  "core_progress_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_progress_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
