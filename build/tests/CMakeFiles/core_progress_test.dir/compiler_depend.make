# Empty compiler generated dependencies file for core_progress_test.
# This may be replaced when dependencies are built.
