file(REMOVE_RECURSE
  "CMakeFiles/core_summary_test.dir/core_summary_test.cc.o"
  "CMakeFiles/core_summary_test.dir/core_summary_test.cc.o.d"
  "core_summary_test"
  "core_summary_test.pdb"
  "core_summary_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_summary_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
