# Empty dependencies file for core_summary_test.
# This may be replaced when dependencies are built.
