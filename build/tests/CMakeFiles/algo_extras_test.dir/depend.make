# Empty dependencies file for algo_extras_test.
# This may be replaced when dependencies are built.
