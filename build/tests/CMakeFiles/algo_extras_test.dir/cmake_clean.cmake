file(REMOVE_RECURSE
  "CMakeFiles/algo_extras_test.dir/algo_extras_test.cc.o"
  "CMakeFiles/algo_extras_test.dir/algo_extras_test.cc.o.d"
  "algo_extras_test"
  "algo_extras_test.pdb"
  "algo_extras_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/algo_extras_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
