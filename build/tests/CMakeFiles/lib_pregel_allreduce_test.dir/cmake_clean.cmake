file(REMOVE_RECURSE
  "CMakeFiles/lib_pregel_allreduce_test.dir/lib_pregel_allreduce_test.cc.o"
  "CMakeFiles/lib_pregel_allreduce_test.dir/lib_pregel_allreduce_test.cc.o.d"
  "lib_pregel_allreduce_test"
  "lib_pregel_allreduce_test.pdb"
  "lib_pregel_allreduce_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lib_pregel_allreduce_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
