# Empty dependencies file for lib_pregel_allreduce_test.
# This may be replaced when dependencies are built.
