# Empty compiler generated dependencies file for fig6b_latency.
# This may be replaced when dependencies are built.
