file(REMOVE_RECURSE
  "CMakeFiles/fig8_freshness.dir/fig8_freshness.cpp.o"
  "CMakeFiles/fig8_freshness.dir/fig8_freshness.cpp.o.d"
  "fig8_freshness"
  "fig8_freshness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_freshness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
