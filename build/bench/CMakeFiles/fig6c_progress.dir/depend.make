# Empty dependencies file for fig6c_progress.
# This may be replaced when dependencies are built.
