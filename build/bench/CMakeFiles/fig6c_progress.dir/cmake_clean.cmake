file(REMOVE_RECURSE
  "CMakeFiles/fig6c_progress.dir/fig6c_progress.cpp.o"
  "CMakeFiles/fig6c_progress.dir/fig6c_progress.cpp.o.d"
  "fig6c_progress"
  "fig6c_progress.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6c_progress.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
