file(REMOVE_RECURSE
  "CMakeFiles/fig7a_pagerank.dir/fig7a_pagerank.cpp.o"
  "CMakeFiles/fig7a_pagerank.dir/fig7a_pagerank.cpp.o.d"
  "fig7a_pagerank"
  "fig7a_pagerank.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7a_pagerank.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
