# Empty compiler generated dependencies file for fig7a_pagerank.
# This may be replaced when dependencies are built.
