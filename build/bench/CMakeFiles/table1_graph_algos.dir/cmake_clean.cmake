file(REMOVE_RECURSE
  "CMakeFiles/table1_graph_algos.dir/table1_graph_algos.cpp.o"
  "CMakeFiles/table1_graph_algos.dir/table1_graph_algos.cpp.o.d"
  "table1_graph_algos"
  "table1_graph_algos.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_graph_algos.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
