# Empty compiler generated dependencies file for fig6e_weak_scaling.
# This may be replaced when dependencies are built.
