file(REMOVE_RECURSE
  "CMakeFiles/fig6e_weak_scaling.dir/fig6e_weak_scaling.cpp.o"
  "CMakeFiles/fig6e_weak_scaling.dir/fig6e_weak_scaling.cpp.o.d"
  "fig6e_weak_scaling"
  "fig6e_weak_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6e_weak_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
