file(REMOVE_RECURSE
  "CMakeFiles/fig7b_logreg.dir/fig7b_logreg.cpp.o"
  "CMakeFiles/fig7b_logreg.dir/fig7b_logreg.cpp.o.d"
  "fig7b_logreg"
  "fig7b_logreg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7b_logreg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
