# Empty compiler generated dependencies file for fig7b_logreg.
# This may be replaced when dependencies are built.
