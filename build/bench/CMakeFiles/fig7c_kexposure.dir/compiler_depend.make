# Empty compiler generated dependencies file for fig7c_kexposure.
# This may be replaced when dependencies are built.
