file(REMOVE_RECURSE
  "CMakeFiles/fig7c_kexposure.dir/fig7c_kexposure.cpp.o"
  "CMakeFiles/fig7c_kexposure.dir/fig7c_kexposure.cpp.o.d"
  "fig7c_kexposure"
  "fig7c_kexposure.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7c_kexposure.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
