# Empty dependencies file for fig6d_strong_scaling.
# This may be replaced when dependencies are built.
