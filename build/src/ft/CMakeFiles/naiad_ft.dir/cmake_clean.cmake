file(REMOVE_RECURSE
  "CMakeFiles/naiad_ft.dir/checkpoint.cc.o"
  "CMakeFiles/naiad_ft.dir/checkpoint.cc.o.d"
  "libnaiad_ft.a"
  "libnaiad_ft.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/naiad_ft.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
