file(REMOVE_RECURSE
  "libnaiad_ft.a"
)
