# Empty dependencies file for naiad_ft.
# This may be replaced when dependencies are built.
