file(REMOVE_RECURSE
  "CMakeFiles/naiad_core.dir/controller.cc.o"
  "CMakeFiles/naiad_core.dir/controller.cc.o.d"
  "CMakeFiles/naiad_core.dir/vertex.cc.o"
  "CMakeFiles/naiad_core.dir/vertex.cc.o.d"
  "CMakeFiles/naiad_core.dir/worker.cc.o"
  "CMakeFiles/naiad_core.dir/worker.cc.o.d"
  "libnaiad_core.a"
  "libnaiad_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/naiad_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
