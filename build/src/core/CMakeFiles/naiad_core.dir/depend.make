# Empty dependencies file for naiad_core.
# This may be replaced when dependencies are built.
