file(REMOVE_RECURSE
  "libnaiad_core.a"
)
