# Empty dependencies file for naiad_net.
# This may be replaced when dependencies are built.
