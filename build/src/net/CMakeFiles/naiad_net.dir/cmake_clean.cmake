file(REMOVE_RECURSE
  "CMakeFiles/naiad_net.dir/cluster.cc.o"
  "CMakeFiles/naiad_net.dir/cluster.cc.o.d"
  "CMakeFiles/naiad_net.dir/progress_router.cc.o"
  "CMakeFiles/naiad_net.dir/progress_router.cc.o.d"
  "CMakeFiles/naiad_net.dir/socket.cc.o"
  "CMakeFiles/naiad_net.dir/socket.cc.o.d"
  "CMakeFiles/naiad_net.dir/transport.cc.o"
  "CMakeFiles/naiad_net.dir/transport.cc.o.d"
  "libnaiad_net.a"
  "libnaiad_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/naiad_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
