
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/net/cluster.cc" "src/net/CMakeFiles/naiad_net.dir/cluster.cc.o" "gcc" "src/net/CMakeFiles/naiad_net.dir/cluster.cc.o.d"
  "/root/repo/src/net/progress_router.cc" "src/net/CMakeFiles/naiad_net.dir/progress_router.cc.o" "gcc" "src/net/CMakeFiles/naiad_net.dir/progress_router.cc.o.d"
  "/root/repo/src/net/socket.cc" "src/net/CMakeFiles/naiad_net.dir/socket.cc.o" "gcc" "src/net/CMakeFiles/naiad_net.dir/socket.cc.o.d"
  "/root/repo/src/net/transport.cc" "src/net/CMakeFiles/naiad_net.dir/transport.cc.o" "gcc" "src/net/CMakeFiles/naiad_net.dir/transport.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/naiad_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
