file(REMOVE_RECURSE
  "libnaiad_net.a"
)
