file(REMOVE_RECURSE
  "CMakeFiles/graph_metrics.dir/graph_metrics.cpp.o"
  "CMakeFiles/graph_metrics.dir/graph_metrics.cpp.o.d"
  "graph_metrics"
  "graph_metrics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/graph_metrics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
