# Empty dependencies file for graph_metrics.
# This may be replaced when dependencies are built.
