# Empty dependencies file for pregel_components.
# This may be replaced when dependencies are built.
