file(REMOVE_RECURSE
  "CMakeFiles/pregel_components.dir/pregel_components.cpp.o"
  "CMakeFiles/pregel_components.dir/pregel_components.cpp.o.d"
  "pregel_components"
  "pregel_components.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pregel_components.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
