file(REMOVE_RECURSE
  "CMakeFiles/distributed_wordcount.dir/distributed_wordcount.cpp.o"
  "CMakeFiles/distributed_wordcount.dir/distributed_wordcount.cpp.o.d"
  "distributed_wordcount"
  "distributed_wordcount.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/distributed_wordcount.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
