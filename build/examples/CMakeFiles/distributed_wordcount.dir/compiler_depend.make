# Empty compiler generated dependencies file for distributed_wordcount.
# This may be replaced when dependencies are built.
