# Empty compiler generated dependencies file for streaming_analytics.
# This may be replaced when dependencies are built.
