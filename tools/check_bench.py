#!/usr/bin/env python3
"""Diffs two run labels inside a BENCH_<figure>.json perf trajectory file.

Matches rows between a fresh run and a baseline run by identity fields
(``name`` for google-benchmark rows, ``kind``+``variant`` for the figure
drivers) and compares ``records_per_sec``. A row regresses when the fresh
throughput falls below ``baseline * (1 - threshold)``.

The CI perf-smoke job runs this record-only: regressions print WARN and the
exit code stays 0 unless --strict is given, because a one-core CI runner is
far too noisy to gate merges on — the check exists so a throughput cliff is
visible in the job log, not to block. (See EXPERIMENTS.md "Bench labels".)

Usage:
  tools/check_bench.py BENCH_fig7a.json --run ci --baseline ci-baseline \
      [--threshold 0.5] [--strict]
"""

import argparse
import json
import sys


def row_key(row):
    if "name" in row:
        return ("name", row["name"])
    parts = [row.get("kind", "?")]
    for field in ("variant", "procs", "cluster_edges", "metric"):
        if field in row:
            parts.append(f"{field}={row[field]}")
    return ("kv", "/".join(str(p) for p in parts))


def rows_by_key(doc, label):
    for run in doc.get("runs", []):
        if run.get("label") == label:
            out = {}
            for row in run.get("rows", []):
                if isinstance(row.get("records_per_sec"), (int, float)):
                    out[row_key(row)] = float(row["records_per_sec"])
            return out
    return None


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("bench", help="path to a BENCH_<figure>.json file")
    parser.add_argument("--run", required=True, help="label of the fresh run")
    parser.add_argument("--baseline", required=True, help="label to compare against")
    parser.add_argument(
        "--threshold",
        type=float,
        default=0.5,
        help="warn when fresh records_per_sec < baseline * (1 - threshold); "
        "default 0.5 (i.e. flag a >2x slowdown)",
    )
    parser.add_argument(
        "--strict", action="store_true", help="exit non-zero on any regression"
    )
    args = parser.parse_args()

    with open(args.bench, "r", encoding="utf-8") as f:
        doc = json.load(f)

    fresh = rows_by_key(doc, args.run)
    base = rows_by_key(doc, args.baseline)
    if fresh is None:
        print(f"FAIL: no run labeled '{args.run}' in {args.bench}", file=sys.stderr)
        return 1
    if base is None:
        print(f"FAIL: no run labeled '{args.baseline}' in {args.bench}", file=sys.stderr)
        return 1

    compared = 0
    regressions = []
    for key, base_rps in sorted(base.items()):
        if key not in fresh:
            print(f"note: '{key[1]}' in baseline but not in fresh run; skipped")
            continue
        compared += 1
        got = fresh[key]
        floor = base_rps * (1.0 - args.threshold)
        verdict = "ok"
        if got < floor:
            verdict = "WARN regression"
            regressions.append(key)
        print(
            f"{verdict}: {key[1]}: {got:.3g} rec/s vs baseline {base_rps:.3g} "
            f"({got / base_rps:.2f}x)"
        )
    if compared == 0:
        print(
            f"FAIL: labels '{args.run}' and '{args.baseline}' share no comparable rows",
            file=sys.stderr,
        )
        return 1

    if regressions:
        print(
            f"{len(regressions)}/{compared} rows regressed past the "
            f"{args.threshold:.0%} threshold"
        )
        return 1 if args.strict else 0
    print(f"OK: {compared} rows within threshold")
    return 0


if __name__ == "__main__":
    sys.exit(main())
