#!/usr/bin/env python3
"""Smoke-checks a naiad Chrome trace-event file (see src/obs/trace.h).

Asserts the file is valid JSON, timestamps are monotone non-decreasing per
(pid, tid) thread, and — optionally — that at least N distinct worker threads
recorded both frontier-advance and notification-delivery events (the
distributed-WordCount acceptance criterion).

Usage:
  tools/check_trace.py TRACE.json [--min-workers N] [--require NAME ...]
"""

import argparse
import collections
import json
import sys


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("trace", help="path to the trace-event JSON file")
    parser.add_argument(
        "--min-workers",
        type=int,
        default=0,
        help="require at least N worker threads with frontier AND notify events",
    )
    parser.add_argument(
        "--require",
        action="append",
        default=[],
        metavar="NAME",
        help="require at least one event with this name (repeatable)",
    )
    args = parser.parse_args()

    with open(args.trace, "r", encoding="utf-8") as f:
        doc = json.load(f)

    events = doc.get("traceEvents")
    if not isinstance(events, list) or not events:
        print(f"FAIL: {args.trace}: no traceEvents array", file=sys.stderr)
        return 1

    last_ts = {}
    names = collections.Counter()
    thread_names = {}
    worker_events = collections.defaultdict(set)  # (pid, tid) -> {event names}
    for e in events:
        name, ph = e.get("name"), e.get("ph")
        key = (e.get("pid"), e.get("tid"))
        if ph == "M":
            if name == "thread_name":
                thread_names[key] = e["args"]["name"]
            continue
        names[name] += 1
        ts = e.get("ts")
        if not isinstance(ts, (int, float)) or ts < 0:
            print(f"FAIL: event {e} has invalid ts", file=sys.stderr)
            return 1
        if key in last_ts and ts < last_ts[key]:
            print(
                f"FAIL: non-monotone ts on pid/tid {key}: {ts} after {last_ts[key]}",
                file=sys.stderr,
            )
            return 1
        last_ts[key] = ts
        worker_events[key].add(name)

    for required in args.require:
        if names[required] == 0:
            print(f"FAIL: no '{required}' events in {args.trace}", file=sys.stderr)
            return 1

    workers_with_both = [
        key
        for key, name in thread_names.items()
        if name.startswith("worker")
        and {"frontier", "notify"} <= worker_events.get(key, set())
    ]
    if args.min_workers and len(workers_with_both) < args.min_workers:
        print(
            f"FAIL: only {len(workers_with_both)} worker threads have frontier+notify "
            f"events (need {args.min_workers}); threads: {sorted(thread_names.values())}",
            file=sys.stderr,
        )
        return 1

    total = sum(names.values())
    print(
        f"OK: {args.trace}: {total} events across {len(last_ts)} threads, "
        f"{len(workers_with_both)} workers with frontier+notify; "
        f"top events: {names.most_common(5)}"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
