// Batch iterative graph computation (§6.1): PageRank, weakly and strongly connected
// components on one synthetic graph, all as loops in a single timely dataflow program.
//
//   ./build/examples/graph_metrics [nodes] [edges]

#include <cstdio>
#include <cstdlib>
#include <map>
#include <mutex>
#include <set>

#include "src/algo/pagerank.h"
#include "src/algo/scc.h"
#include "src/algo/wcc.h"
#include "src/base/stopwatch.h"
#include "src/core/controller.h"
#include "src/core/io.h"
#include "src/gen/graphs.h"

int main(int argc, char** argv) {
  using namespace naiad;
  const uint64_t nodes = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 2000;
  const uint64_t n_edges = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 10000;

  Controller controller(Config{.workers_per_process = 4});
  GraphBuilder graph(controller);
  auto [edges, input] = NewInput<Edge>(graph, "edges");

  std::mutex mu;
  std::map<uint64_t, double> top_ranks;
  std::set<uint64_t> wcc_components;
  std::set<uint64_t> scc_components;

  Subscribe<NodeRank>(PageRank(edges, /*iters=*/10),
                      [&](uint64_t, std::vector<NodeRank>& recs) {
                        std::lock_guard<std::mutex> lock(mu);
                        for (const NodeRank& nr : recs) {
                          if (top_ranks.size() < 5 || nr.second > top_ranks.begin()->second) {
                            top_ranks[nr.first] = nr.second;
                          }
                        }
                      });
  Subscribe<NodeLabel>(ConnectedComponents(edges),
                       [&](uint64_t, std::vector<NodeLabel>& recs) {
                         std::lock_guard<std::mutex> lock(mu);
                         for (const NodeLabel& nl : recs) {
                           wcc_components.insert(nl.second);
                         }
                       });
  Subscribe<NodeLabel>(StronglyConnectedComponents(edges, /*rounds=*/4),
                       [&](uint64_t, std::vector<NodeLabel>& recs) {
                         std::lock_guard<std::mutex> lock(mu);
                         for (const NodeLabel& nl : recs) {
                           scc_components.insert(nl.second);
                         }
                       });

  controller.Start();
  Stopwatch sw;
  input->OnNext(RandomGraph(nodes, n_edges, /*seed=*/1));
  input->OnCompleted();
  controller.Join();

  std::printf("graph: %llu nodes, %llu edges — analyzed in %.1f ms\n",
              static_cast<unsigned long long>(nodes),
              static_cast<unsigned long long>(n_edges), sw.ElapsedMillis());
  std::printf("weakly connected components: %zu\n", wcc_components.size());
  std::printf("non-trivial strongly connected components: %zu\n", scc_components.size());
  std::printf("sample of high PageRank nodes:\n");
  int shown = 0;
  for (auto it = top_ranks.rbegin(); it != top_ranks.rend() && shown < 5; ++it, ++shown) {
    std::printf("  node %llu: %.4f\n", static_cast<unsigned long long>(it->first),
                it->second);
  }
  return 0;
}
