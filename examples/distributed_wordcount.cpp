// Distributed execution (§3): the same WordCount program running SPMD across several
// "processes" — each a Controller with its own workers and logical-graph copy — connected
// by real TCP sockets over loopback, with the distributed progress-tracking protocol
// coordinating completeness.
//
//   ./build/examples/distributed_wordcount [processes] [workers-per-process] [trace.json]
//
// A third argument (or NAIAD_TRACE_PATH in the environment) enables the observability
// layer and writes a Chrome trace-event file there — open it in chrome://tracing or
// Perfetto to see per-worker frontier advances, notification deliveries, and epoch
// boundaries (see EXPERIMENTS.md "Capturing a trace").

#include <cstdio>
#include <cstdlib>
#include <mutex>

#include "src/algo/wordcount.h"
#include "src/base/stopwatch.h"
#include "src/core/io.h"
#include "src/gen/text.h"
#include "src/net/cluster.h"

int main(int argc, char** argv) {
  using namespace naiad;
  ClusterOptions opts;
  opts.processes = argc > 1 ? static_cast<uint32_t>(std::atoi(argv[1])) : 3;
  opts.workers_per_process = argc > 2 ? static_cast<uint32_t>(std::atoi(argv[2])) : 2;
  opts.strategy = ProgressStrategy::kLocalGlobalAcc;
  const char* trace_path = argc > 3 ? argv[3] : std::getenv("NAIAD_TRACE_PATH");
  if (trace_path != nullptr && trace_path[0] != '\0') {
    opts.obs.metrics = true;
    opts.obs.tracing = true;
    opts.obs.trace_path = trace_path;
  }

  std::mutex mu;
  uint64_t total_words = 0;
  uint64_t distinct_words = 0;

  Stopwatch sw;
  ClusterStats stats = Cluster::Run(opts, [&](Controller& ctl) {
    GraphBuilder graph(ctl);
    auto [lines, input] = NewInput<std::string>(graph, "lines");
    auto counts = WordCount(lines);
    // The subscriber is a singleton on process 0; other processes' records reach it over
    // TCP, exercising serialization end to end.
    Subscribe<WordCountRecord>(counts, [&](uint64_t, std::vector<WordCountRecord>& recs) {
      std::lock_guard<std::mutex> lock(mu);
      distinct_words += recs.size();
      for (const WordCountRecord& wc : recs) {
        total_words += wc.second;
      }
    });
    ctl.Start();
    // SPMD: each process contributes its own shard of the corpus.
    const uint64_t seed = 100 + ctl.config().process_id;
    input->OnNext(ZipfCorpus(/*lines=*/2000, /*words_per_line=*/12, /*vocabulary=*/2000,
                             seed));
    input->OnCompleted();
    ctl.Join();
  });

  std::printf("%u processes x %u workers counted %llu words (%llu distinct) in %.1f ms\n",
              opts.processes, opts.workers_per_process,
              static_cast<unsigned long long>(total_words),
              static_cast<unsigned long long>(distinct_words), sw.ElapsedMillis());
  std::printf("wire traffic: %.1f KB records, %.1f KB progress protocol\n",
              stats.data_bytes / 1024.0, stats.progress_bytes / 1024.0);
  if (!stats.obs.empty()) {
    std::printf("obs: %llu items run, %llu notifications delivered, %llu progress flushes\n",
                static_cast<unsigned long long>(stats.obs.counter("items_run")),
                static_cast<unsigned long long>(
                    stats.obs.counter("notifications_delivered")),
                static_cast<unsigned long long>(stats.obs.counter("progress_flushes")));
  }
  if (trace_path != nullptr && trace_path[0] != '\0') {
    std::printf("trace written to %s (open in chrome://tracing or Perfetto)\n", trace_path);
  }
  return 0;
}
