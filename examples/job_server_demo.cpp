// Multi-tenant job server (the paper's §6 shared-cluster scenario): one resident
// cluster generation — a TCP mesh plus shared worker threads per "process" — serving
// several dataflows that register, run concurrently, and tear down at runtime.
//
//   ./build/examples/job_server_demo [processes] [workers-per-process]
//
// The demo brings the server up once, then:
//   1. registers a WordCount job over a Zipf corpus,
//   2. while it runs, registers a second, independent WordCount with a disjoint
//      vocabulary (distinct salt) — both share every socket and worker thread,
//   3. registers a deliberately unbounded "ticker" job and tears it down mid-run,
//   4. registers one more job after the others finished, proving the generation
//      outlives its tenants,
// and finally prints the per-job wire-traffic split from ClusterStats::jobs.

#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <thread>

#include "src/algo/wordcount.h"
#include "src/base/stopwatch.h"
#include "src/core/io.h"
#include "src/gen/text.h"
#include "src/net/cluster.h"
#include "src/net/job_server.h"

int main(int argc, char** argv) {
  using namespace naiad;
  ClusterOptions opts;
  opts.processes = argc > 1 ? static_cast<uint32_t>(std::atoi(argv[1])) : 3;
  opts.workers_per_process = argc > 2 ? static_cast<uint32_t>(std::atoi(argv[2])) : 2;
  opts.strategy = ProgressStrategy::kLocalGlobalAcc;

  JobServer server(opts);
  Stopwatch sw;
  server.Start();
  std::printf("job server up: %u processes x %u workers\n", opts.processes,
              opts.workers_per_process);

  std::mutex mu;
  uint64_t totals[3] = {};  // total words counted by jobs 1, 2, and the late job

  // A WordCount tenant; `salt` shards the corpus so each job counts different text.
  const auto wordcount = [&](uint64_t salt, uint64_t* total) {
    return [&, salt, total](Controller& ctl) {
      GraphBuilder graph(ctl);
      auto [lines, input] = NewInput<std::string>(graph, "lines");
      auto counts = WordCount(lines);
      Subscribe<WordCountRecord>(counts,
                                 [&, total](uint64_t, std::vector<WordCountRecord>& recs) {
                                   std::lock_guard<std::mutex> lock(mu);
                                   for (const WordCountRecord& wc : recs) {
                                     *total += wc.second;
                                   }
                                 });
      ctl.Start();
      input->OnNext(ZipfCorpus(/*lines=*/1500, /*words_per_line=*/10,
                               /*vocabulary=*/1500, salt + ctl.config().process_id));
      input->OnCompleted();
      ctl.Join();
    };
  };

  // 1+2: two tenants registered at different times, running concurrently.
  const JobId j1 = server.Submit(wordcount(100, &totals[0]));
  const JobId j2 = server.Submit(wordcount(900, &totals[1]));

  // 3: an unbounded tenant — feeds an epoch per millisecond until torn down. A body that
  // can be torn down mid-run must poll ctl.cancelled() instead of waiting unconditionally.
  const JobId ticker = server.Submit([&](Controller& ctl) {
    GraphBuilder graph(ctl);
    auto [lines, input] = NewInput<std::string>(graph, "ticks");
    Subscribe<std::string>(lines, [](uint64_t, std::vector<std::string>&) {});
    ctl.Start();
    for (uint64_t e = 0; e < 100000 && !ctl.cancelled(); ++e) {
      input->OnNext({"tick"});
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    input->OnCompleted();
    ctl.Join();
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  std::printf("tearing job %u down mid-run\n", ticker);
  server.Teardown(ticker);

  server.Wait(j1);
  server.Wait(j2);
  server.Wait(ticker);

  // 4: the generation keeps serving after its tenants are gone.
  const JobId j3 = server.Submit(wordcount(4242, &totals[2]));
  server.Wait(j3);

  const ClusterStats stats = server.Stop();
  std::printf("\njob  data frames  data MB  progress frames  torn down\n");
  for (const auto& js : stats.jobs) {
    std::printf("%3u  %11llu  %7.2f  %15llu  %s\n", js.job,
                static_cast<unsigned long long>(js.data_frames),
                static_cast<double>(js.data_bytes) / (1024.0 * 1024.0),
                static_cast<unsigned long long>(js.progress_frames),
                js.torn_down ? "yes" : "no");
  }
  std::printf("\nwords counted: job %u -> %llu, job %u -> %llu, job %u -> %llu\n", j1,
              static_cast<unsigned long long>(totals[0]), j2,
              static_cast<unsigned long long>(totals[1]), j3,
              static_cast<unsigned long long>(totals[2]));
  std::printf("stray frames dropped: %llu, elapsed %.2fs\n",
              static_cast<unsigned long long>(stats.stray_frames_dropped),
              sw.ElapsedSeconds());
  return 0;
}
