// The Figure 1 application (§6.4): real-time queries on continually updated data.
//
// A tweet stream grows a mention graph whose connected components are maintained
// incrementally; hashtag popularity is tracked per component; interactive queries return
// the top hashtag in a user's component. Run twice to compare query freshness modes:
//
//   ./build/examples/streaming_analytics              (consistent answers)
//   ./build/examples/streaming_analytics --stale      (§6.4's "1 s delay" fast path)

#include <cstdio>
#include <cstring>
#include <mutex>

#include "src/algo/analytics.h"
#include "src/base/stopwatch.h"
#include "src/core/controller.h"
#include "src/core/io.h"
#include "src/gen/tweets.h"

int main(int argc, char** argv) {
  using namespace naiad;
  const bool stale = argc > 1 && std::strcmp(argv[1], "--stale") == 0;

  Controller controller(Config{.workers_per_process = 4});
  GraphBuilder graph(controller);
  auto [tweets, tweet_input] = NewInput<Tweet>(graph, "tweets");
  auto [queries, query_input] = NewInput<TopTagQuery>(graph, "queries");

  Stream<TopTagAnswer> answers = StreamingTopHashtags(
      tweets, queries, stale ? QueryFreshness::kStale : QueryFreshness::kConsistent);

  std::mutex mu;
  Probe probe = ForEach<TopTagAnswer>(answers, [&](const Timestamp&,
                                                   std::vector<TopTagAnswer>& recs) {
    std::lock_guard<std::mutex> lock(mu);
    for (const TopTagAnswer& a : recs) {
      std::printf("  answer to q%llu: component %llu's top hashtag is #%llu (%llu uses)\n",
                  static_cast<unsigned long long>(a.query_id),
                  static_cast<unsigned long long>(a.component),
                  static_cast<unsigned long long>(a.top_tag),
                  static_cast<unsigned long long>(a.count));
    }
  });

  controller.Start();
  TweetGenerator gen(/*users=*/2000, /*hashtags=*/100, /*seed=*/7);
  Stopwatch total;
  for (uint64_t round = 0; round < 10; ++round) {
    tweet_input->OnNext(gen.Batch(2000));       // a burst of tweets...
    query_input->OnNext({{round * 37 % 2000, round}});  // ...and one interactive query
    std::printf("round %llu submitted (mode: %s)\n",
                static_cast<unsigned long long>(round), stale ? "stale" : "consistent");
  }
  tweet_input->OnCompleted();
  query_input->OnCompleted();
  controller.Join();
  std::printf("processed 20k tweets + 10 queries in %.1f ms\n", total.ElapsedMillis());
  (void)probe;
  return 0;
}
