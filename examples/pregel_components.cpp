// The Pregel library (§4.2): max-label propagation with vote-to-halt, the classic Pregel
// connected-components example, running as supersteps inside a timely dataflow loop.
//
//   ./build/examples/pregel_components [nodes] [edges]

#include <cstdio>
#include <cstdlib>
#include <map>
#include <mutex>
#include <set>

#include "src/base/stopwatch.h"
#include "src/core/controller.h"
#include "src/core/io.h"
#include "src/gen/graphs.h"
#include "src/lib/pregel.h"

int main(int argc, char** argv) {
  using namespace naiad;
  const uint64_t nodes = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 5000;
  const uint64_t n_edges = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 20000;

  Controller controller(Config{.workers_per_process = 4});
  GraphBuilder graph(controller);
  auto [edges, input] = NewInput<Edge>(graph, "edges");

  auto result = Pregel<uint64_t, uint64_t>(
      edges, /*initial=*/0, /*max_supersteps=*/10000,
      [](PregelNodeContext<uint64_t, uint64_t>& ctx, const std::vector<uint64_t>& inbox) {
        uint64_t best = ctx.superstep() == 0 ? ctx.node_id() : ctx.state();
        for (uint64_t m : inbox) {
          best = std::max(best, m);
        }
        if (best != ctx.state() || ctx.superstep() == 0) {
          ctx.state() = best;
          ctx.SendToAllNeighbors(best);
        }
        ctx.VoteToHalt();  // reactivated automatically when a message arrives
      });

  std::mutex mu;
  std::map<uint64_t, uint64_t> labels;
  Subscribe<std::pair<uint64_t, uint64_t>>(
      result, [&](uint64_t, std::vector<std::pair<uint64_t, uint64_t>>& recs) {
        std::lock_guard<std::mutex> lock(mu);
        for (auto& [n, label] : recs) {
          labels[n] = std::max(labels[n], label);  // label propagation is monotone
        }
      });

  controller.Start();
  Stopwatch sw;
  input->OnNext(Symmetrize(RandomGraph(nodes, n_edges, /*seed=*/3)));
  input->OnCompleted();
  controller.Join();

  std::set<uint64_t> components;
  for (const auto& [n, label] : labels) {
    components.insert(label);
  }
  std::printf("pregel labeled %zu nodes into %zu components in %.1f ms\n", labels.size(),
              components.size(), sw.ElapsedMillis());
  return 0;
}
