// Quickstart: the prototypical Naiad program of §4.1.
//
//   1a. define an input stage;  1b. build the dataflow (an incrementally-updatable
//   MapReduce: SelectMany + GroupBy);  1c. subscribe to the outputs;
//   2.  supply epochs of input, then close the input and join.
//
// Build & run:  ./build/examples/quickstart

#include <cstdio>
#include <mutex>
#include <string>
#include <vector>

#include "src/core/controller.h"
#include "src/core/io.h"
#include "src/gen/text.h"
#include "src/lib/operators.h"

int main() {
  using namespace naiad;

  Controller controller(Config{.workers_per_process = 4});
  GraphBuilder graph(controller);

  // 1a. Define input stages for the dataflow.
  auto [lines, input] = NewInput<std::string>(graph, "lines");

  // 1b. Define the timely dataflow graph: map (split into words), then reduce (count).
  auto words = SelectMany(lines, SplitWords);
  auto counts = GroupBy(
      words, [](const std::string& w) { return w; },
      [](const std::string& w, std::vector<std::string>& occurrences) {
        using Out = std::pair<std::string, uint64_t>;
        return std::vector<Out>{{w, occurrences.size()}};
      });

  // 1c. Define output callbacks for each epoch.
  std::mutex mu;
  Subscribe<std::pair<std::string, uint64_t>>(
      counts, [&](uint64_t epoch, std::vector<std::pair<std::string, uint64_t>>& recs) {
        std::lock_guard<std::mutex> lock(mu);
        std::printf("epoch %llu produced %zu distinct words; a few of them:\n",
                    static_cast<unsigned long long>(epoch), recs.size());
        for (size_t i = 0; i < recs.size() && i < 5; ++i) {
          std::printf("  %-12s %llu\n", recs[i].first.c_str(),
                      static_cast<unsigned long long>(recs[i].second));
        }
      });

  controller.Start();

  // 2. Supply epochs of input data to the query.
  input->OnNext({"to be or not to be", "that is the question"});
  input->OnNext({"the slings and arrows of outrageous fortune"});
  input->OnNext(ZipfCorpus(/*lines=*/1000, /*words_per_line=*/10, /*vocabulary=*/500,
                           /*seed=*/42));
  input->OnCompleted();

  controller.Join();
  std::printf("done.\n");
  return 0;
}
