// Synthetic text corpus with Zipf-distributed word frequencies — the stand-in for the
// paper's Twitter corpus in the WordCount experiments (§5.4).

#ifndef SRC_GEN_TEXT_H_
#define SRC_GEN_TEXT_H_

#include <string>
#include <vector>

#include "src/base/rng.h"

namespace naiad {

// One "line" is a space-separated sequence of words drawn from a Zipf(1.07) vocabulary
// (roughly English-like skew).
inline std::vector<std::string> ZipfCorpus(size_t lines, size_t words_per_line,
                                           size_t vocabulary, uint64_t seed) {
  ZipfSampler zipf(vocabulary, 1.07, seed);
  std::vector<std::string> out;
  out.reserve(lines);
  for (size_t i = 0; i < lines; ++i) {
    std::string line;
    for (size_t w = 0; w < words_per_line; ++w) {
      if (w > 0) {
        line.push_back(' ');
      }
      line += "w" + std::to_string(zipf.Next());
    }
    out.push_back(std::move(line));
  }
  return out;
}

// Splits a line into words (the map function of the WordCount examples).
inline std::vector<std::string> SplitWords(const std::string& line) {
  std::vector<std::string> words;
  size_t start = 0;
  while (start < line.size()) {
    size_t end = line.find(' ', start);
    if (end == std::string::npos) {
      end = line.size();
    }
    if (end > start) {
      words.push_back(line.substr(start, end - start));
    }
    start = end + 1;
  }
  return words;
}

}  // namespace naiad

#endif  // SRC_GEN_TEXT_H_
