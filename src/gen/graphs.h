// Synthetic graph generators (DESIGN.md substitution #2).
//
// The paper's graph workloads are uniform random graphs (§5.3, §5.4), a power-law Twitter
// follower graph (§6.1, §6.3), and the ClueWeb09 web graph (Table 1). All generators are
// deterministic in their seed and support per-process sharding so SPMD drivers can each
// synthesize their slice without materializing the whole graph anywhere.

#ifndef SRC_GEN_GRAPHS_H_
#define SRC_GEN_GRAPHS_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "src/base/hash.h"
#include "src/base/rng.h"

namespace naiad {

using Edge = std::pair<uint64_t, uint64_t>;

// Uniform random directed graph: `edges` edges over `nodes` nodes (§5.3's "random graph").
inline std::vector<Edge> RandomGraph(uint64_t nodes, uint64_t edges, uint64_t seed) {
  Rng rng(seed);
  std::vector<Edge> out;
  out.reserve(edges);
  for (uint64_t i = 0; i < edges; ++i) {
    out.emplace_back(rng.Below(nodes), rng.Below(nodes));
  }
  return out;
}

// Power-law graph: destination popularity follows Zipf(exponent) over a shuffled node
// order — a synthetic stand-in for the Twitter follower graph's degree skew (§6.1).
inline std::vector<Edge> PowerLawGraph(uint64_t nodes, uint64_t edges, double exponent,
                                       uint64_t seed) {
  Rng rng(seed);
  ZipfSampler zipf(nodes, exponent, seed ^ 0x5eedULL);
  std::vector<Edge> out;
  out.reserve(edges);
  for (uint64_t i = 0; i < edges; ++i) {
    // Mix the Zipf rank so popular nodes are spread over the id space (matters for range
    // partitioning experiments).
    const uint64_t dst = Mix64(zipf.Next()) % nodes;
    out.emplace_back(rng.Below(nodes), dst);
  }
  return out;
}

// Power-law degree distributions on *both* endpoints (natural graphs like Twitter have
// skewed in- and out-degree): the setting where vertex-cut edge partitioning pays (§6.1).
inline std::vector<Edge> PowerLawBothGraph(uint64_t nodes, uint64_t edges, double exponent,
                                           uint64_t seed) {
  ZipfSampler src_sampler(nodes, exponent, seed ^ 0xabcdULL);
  ZipfSampler dst_sampler(nodes, exponent, seed ^ 0x1234ULL);
  std::vector<Edge> out;
  out.reserve(edges);
  for (uint64_t i = 0; i < edges; ++i) {
    out.emplace_back(Mix64(src_sampler.Next() + 1) % nodes,
                     Mix64(dst_sampler.Next()) % nodes);
  }
  return out;
}

// The `part`-th of `parts` shards of the graph a generator with this seed produces; used
// by SPMD drivers. Sharding is by position, so the union over parts is exactly the whole
// graph.
template <typename GenFn>
std::vector<Edge> Shard(GenFn gen, uint32_t part, uint32_t parts) {
  std::vector<Edge> all = gen();
  std::vector<Edge> out;
  out.reserve(all.size() / parts + 1);
  for (size_t i = part; i < all.size(); i += parts) {
    out.push_back(all[i]);
  }
  return out;
}

// Duplicates each edge in both directions (graph algorithms over undirected graphs).
inline std::vector<Edge> Symmetrize(const std::vector<Edge>& edges) {
  std::vector<Edge> out;
  out.reserve(edges.size() * 2);
  for (const Edge& e : edges) {
    out.push_back(e);
    out.emplace_back(e.second, e.first);
  }
  return out;
}

}  // namespace naiad

#endif  // SRC_GEN_GRAPHS_H_
