// Synthetic graph generators (DESIGN.md substitution #2).
//
// The paper's graph workloads are uniform random graphs (§5.3, §5.4), a power-law Twitter
// follower graph (§6.1, §6.3), and the ClueWeb09 web graph (Table 1). All generators are
// deterministic in their seed and support per-process sharding so SPMD drivers can each
// synthesize their slice without materializing the whole graph anywhere.

#ifndef SRC_GEN_GRAPHS_H_
#define SRC_GEN_GRAPHS_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "src/base/hash.h"
#include "src/base/rng.h"

namespace naiad {

using Edge = std::pair<uint64_t, uint64_t>;

// Uniform random directed graph: `edges` edges over `nodes` nodes (§5.3's "random graph").
inline std::vector<Edge> RandomGraph(uint64_t nodes, uint64_t edges, uint64_t seed) {
  Rng rng(seed);
  std::vector<Edge> out;
  out.reserve(edges);
  for (uint64_t i = 0; i < edges; ++i) {
    out.emplace_back(rng.Below(nodes), rng.Below(nodes));
  }
  return out;
}

// Power-law graph: destination popularity follows Zipf(exponent) over a shuffled node
// order — a synthetic stand-in for the Twitter follower graph's degree skew (§6.1).
inline std::vector<Edge> PowerLawGraph(uint64_t nodes, uint64_t edges, double exponent,
                                       uint64_t seed) {
  Rng rng(seed);
  ZipfSampler zipf(nodes, exponent, seed ^ 0x5eedULL);
  std::vector<Edge> out;
  out.reserve(edges);
  for (uint64_t i = 0; i < edges; ++i) {
    // Mix the Zipf rank so popular nodes are spread over the id space (matters for range
    // partitioning experiments).
    const uint64_t dst = Mix64(zipf.Next()) % nodes;
    out.emplace_back(rng.Below(nodes), dst);
  }
  return out;
}

// Power-law degree distributions on *both* endpoints (natural graphs like Twitter have
// skewed in- and out-degree): the setting where vertex-cut edge partitioning pays (§6.1).
inline std::vector<Edge> PowerLawBothGraph(uint64_t nodes, uint64_t edges, double exponent,
                                           uint64_t seed) {
  ZipfSampler src_sampler(nodes, exponent, seed ^ 0xabcdULL);
  ZipfSampler dst_sampler(nodes, exponent, seed ^ 0x1234ULL);
  std::vector<Edge> out;
  out.reserve(edges);
  for (uint64_t i = 0; i < edges; ++i) {
    out.emplace_back(Mix64(src_sampler.Next() + 1) % nodes,
                     Mix64(dst_sampler.Next()) % nodes);
  }
  return out;
}

// Streaming sharded power-law edge generator for the 10^7–10^9 scale sweeps
// (EXPERIMENTS.md "Scale sweeps"). Differences from the materializing generators above:
//
//   * Counter-based: edge i is derived from Rng(HashCombine(seed, i)), not from a
//     sequential stream. The value of edge i therefore does not depend on which shard
//     draws it or in what order, so the union of edges over all shards is exactly the
//     full edge set regardless of `parts` (tested in tests/gen_test.cc).
//   * Sharded at the source: shard `part` produces edges {i : i % parts == part} without
//     any process ever materializing the whole graph.
//   * Chunked: NextChunk appends up to `max_chunk` edges, so a driver can feed a
//     multi-gigabyte graph through a bounded buffer.
//
// The O(nodes) alias-table build is per-stream; everything per-edge is O(1).
class PowerLawEdgeStream {
 public:
  struct Options {
    uint64_t nodes = 0;
    uint64_t edges = 0;
    double exponent = 1.05;
    uint64_t seed = 0;
    uint32_t part = 0;
    uint32_t parts = 1;
  };

  explicit PowerLawEdgeStream(const Options& opts)
      : opts_(opts),
        src_zipf_(opts.nodes, opts.exponent, /*seed=*/0),
        dst_zipf_(opts.nodes, opts.exponent, /*seed=*/0),
        next_(opts.part) {
    NAIAD_CHECK(opts.parts > 0 && opts.part < opts.parts);
  }

  // Edge i of the full graph, independent of sharding (counter-based derivation).
  Edge EdgeAt(uint64_t i) const {
    Rng r(HashCombine(opts_.seed, i));
    const uint64_t src = Mix64(src_zipf_.Sample(r) + 1) % opts_.nodes;
    const uint64_t dst = Mix64(dst_zipf_.Sample(r)) % opts_.nodes;
    return {src, dst};
  }

  // Appends up to `max_chunk` of this shard's remaining edges to `out`; returns the
  // number appended (0 = exhausted).
  size_t NextChunk(std::vector<Edge>& out, size_t max_chunk) {
    size_t produced = 0;
    while (produced < max_chunk && next_ < opts_.edges) {
      out.push_back(EdgeAt(next_));
      next_ += opts_.parts;
      ++produced;
    }
    return produced;
  }

  uint64_t remaining() const {
    return next_ >= opts_.edges ? 0 : (opts_.edges - next_ - 1) / opts_.parts + 1;
  }

  const Options& options() const { return opts_; }

 private:
  Options opts_;
  ZipfSampler src_zipf_;  // sampled via caller-supplied Rng; internal streams unused
  ZipfSampler dst_zipf_;
  uint64_t next_;  // next edge index owned by this shard
};

// The `part`-th of `parts` shards of the graph a generator with this seed produces; used
// by SPMD drivers. Sharding is by position, so the union over parts is exactly the whole
// graph.
template <typename GenFn>
std::vector<Edge> Shard(GenFn gen, uint32_t part, uint32_t parts) {
  std::vector<Edge> all = gen();
  std::vector<Edge> out;
  out.reserve(all.size() / parts + 1);
  for (size_t i = part; i < all.size(); i += parts) {
    out.push_back(all[i]);
  }
  return out;
}

// Duplicates each edge in both directions (graph algorithms over undirected graphs).
inline std::vector<Edge> Symmetrize(const std::vector<Edge>& edges) {
  std::vector<Edge> out;
  out.reserve(edges.size() * 2);
  for (const Edge& e : edges) {
    out.push_back(e);
    out.emplace_back(e.second, e.first);
  }
  return out;
}

}  // namespace naiad

#endif  // SRC_GEN_GRAPHS_H_
