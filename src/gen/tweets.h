// Synthetic tweet stream: users post hashtags and mention other users, with Zipf-skewed
// popularity on both — the stand-in for the Twitter streams of §6.3 (k-exposure) and §6.4
// (streaming iterative graph analytics).

#ifndef SRC_GEN_TWEETS_H_
#define SRC_GEN_TWEETS_H_

#include <cstdint>
#include <vector>

#include "src/base/rng.h"
#include "src/ser/bytes.h"

namespace naiad {

struct Tweet {
  uint64_t user = 0;
  std::vector<uint64_t> hashtags;
  std::vector<uint64_t> mentions;

  friend bool operator==(const Tweet&, const Tweet&) = default;
  friend auto operator<=>(const Tweet&, const Tweet&) = default;

  void Encode(ByteWriter& w) const {
    w.WriteU64(user);
    w.WriteU32(static_cast<uint32_t>(hashtags.size()));
    for (uint64_t h : hashtags) {
      w.WriteU64(h);
    }
    w.WriteU32(static_cast<uint32_t>(mentions.size()));
    for (uint64_t m : mentions) {
      w.WriteU64(m);
    }
  }
  bool Decode(ByteReader& r) {
    user = r.ReadU64();
    hashtags.resize(r.ReadU32());
    if (!r.ok() || r.remaining() < hashtags.size() * 8) {
      return false;
    }
    for (uint64_t& h : hashtags) {
      h = r.ReadU64();
    }
    mentions.resize(r.ReadU32());
    if (!r.ok() || r.remaining() < mentions.size() * 8) {
      return false;
    }
    for (uint64_t& m : mentions) {
      m = r.ReadU64();
    }
    return r.ok();
  }
};

class TweetGenerator {
 public:
  TweetGenerator(uint64_t users, uint64_t hashtags, uint64_t seed)
      : rng_(seed),
        users_(users),
        tag_sampler_(hashtags, 1.1, seed ^ 0x7a65ULL),
        mention_sampler_(users, 1.05, seed ^ 0x3c41ULL) {}

  Tweet Next() {
    Tweet t;
    t.user = rng_.Below(users_);
    const uint64_t n_tags = rng_.Below(3);  // 0-2 hashtags
    for (uint64_t i = 0; i < n_tags; ++i) {
      t.hashtags.push_back(tag_sampler_.Next());
    }
    const uint64_t n_mentions = rng_.Below(3);  // 0-2 mentions
    for (uint64_t i = 0; i < n_mentions; ++i) {
      t.mentions.push_back(Mix64(mention_sampler_.Next()) % users_);
    }
    return t;
  }

  std::vector<Tweet> Batch(size_t n) {
    std::vector<Tweet> out;
    out.reserve(n);
    for (size_t i = 0; i < n; ++i) {
      out.push_back(Next());
    }
    return out;
  }

 private:
  Rng rng_;
  uint64_t users_;
  ZipfSampler tag_sampler_;
  ZipfSampler mention_sampler_;
};

}  // namespace naiad

#endif  // SRC_GEN_TWEETS_H_
