#include "src/core/worker.h"

#include <algorithm>
#include <chrono>

#include "src/core/controller.h"

namespace naiad {

Worker::Worker(Controller* ctl, uint32_t local_index)
    : ctl_(ctl),
      local_index_(local_index),
      global_index_(ctl->config().process_id * ctl->config().workers_per_process +
                    local_index) {
  metrics_ = ctl->obs().metrics().worker(local_index);
  obs_time_ = metrics_ != nullptr;
}

Worker::~Worker() {
  RequestStop();
  JoinThread();
}

void Worker::EnqueueExternal(std::unique_ptr<WorkItemBase> item) {
  if (obs_time_) {
    item->set_enqueue_ns(obs::MonotonicNs());
  }
  inbox_.Push(std::move(item));
  ctl_->event().NotifyAll();
}

void Worker::EnqueueLocal(std::unique_ptr<WorkItemBase> item) {
  if (obs_time_) {
    item->set_enqueue_ns(obs::MonotonicNs());
  }
  local_.push_back(std::move(item));
}

void Worker::RunNested(std::unique_ptr<WorkItemBase> item) {
  ++reentry_depth_;
  // Preserve the enclosing callback's context across the nested delivery. A nested
  // delivery is an ordinary message callback, so it runs with the item's own capability
  // rather than an enclosing purge's ⊤-restriction — and that restriction must come back
  // once it returns, or the remainder of the purge callback could send (§2.4).
  Timestamp saved_time = current_time_;
  bool saved_in = in_callback_;
  bool saved_purge = in_purge_;
  in_purge_ = false;
  RunItem(*item);
  current_time_ = saved_time;
  in_callback_ = saved_in;
  in_purge_ = saved_purge;
  --reentry_depth_;
}

void Worker::AddNotificationRequest(VertexBase* v, const Timestamp& t) {
  pending_.push_back(PendingNotify{t, v, obs_time_ ? obs::MonotonicNs() : 0});
}

void Worker::AddPurgeRequest(VertexBase* v, const Timestamp& t) {
  purges_.push_back(PendingNotify{t, v});
}

bool Worker::TryDeliverPurges(bool force) {
  if (purges_.empty()) {
    return false;
  }
  bool any = false;
  for (size_t i = 0; i < purges_.size();) {
    const Pointstamp p{purges_[i].time, Location::Stage(purges_[i].vertex->address().stage)};
    if (!force && !ctl_->tracker().FrontierPassed(p)) {
      ++i;
      continue;
    }
    PendingNotify n = purges_[i];
    purges_.erase(purges_.begin() + static_cast<ptrdiff_t>(i));
    const uint64_t t0 =
        (metrics_ != nullptr || trace_ != nullptr) ? obs::MonotonicNs() : 0;
    in_callback_ = true;
    in_purge_ = true;  // capability ⊤: the callback may only free state (§2.4)
    current_time_ = n.time;
    n.vertex->OnNotify(n.time);
    in_purge_ = false;
    in_callback_ = false;
    if (metrics_ != nullptr) {
      metrics_->purges_delivered.fetch_add(1, std::memory_order_relaxed);
    }
    if (trace_ != nullptr) {
      trace_->Record(obs::TraceKind::kPurgeDelivered, t0, obs::MonotonicNs() - t0,
                     p.loc.id, n.time.epoch, 0);
    }
    any = true;
  }
  return any;
}

void Worker::FlushProgress() {
  if (progress_.Empty()) {
    return;
  }
  std::vector<ProgressUpdate> updates = progress_.Take();
  if (metrics_ != nullptr) {
    metrics_->progress_flushes.fetch_add(1, std::memory_order_relaxed);
    metrics_->flush_updates.Record(updates.size());
  }
  ctl_->progress_router().Broadcast(std::move(updates));
}

void Worker::Start() {
  thread_ = std::thread([this] { ThreadMain(); });
}

void Worker::RequestStop() {
  stop_.store(true, std::memory_order_release);
  ctl_->event().NotifyAll();
}

void Worker::JoinThread() {
  if (thread_.joinable()) {
    thread_.join();
  }
}

void Worker::RunItem(WorkItemBase& item) {
  uint64_t t0 = 0;
  if (metrics_ != nullptr) {
    t0 = obs::MonotonicNs();
    if (item.enqueue_ns() != 0) {
      metrics_->dispatch_latency_ns.Record(t0 - item.enqueue_ns());
    }
  }
  in_callback_ = true;
  current_time_ = item.time();
  item.Run();
  if (item.target() != nullptr) {
    item.target()->FlushOutputs();
  }
  in_callback_ = false;
  if (metrics_ != nullptr) {
    metrics_->items_run.fetch_add(1, std::memory_order_relaxed);
    metrics_->run_time_ns.Record(obs::MonotonicNs() - t0);
  }
  progress_.Add(Pointstamp{item.time(), Location::Connector(item.connector())},
                -item.count());
  FlushProgress();
}

bool Worker::DispatchOnce() {
  bool did = false;
  // Messages before notifications (§3.2).
  for (;;) {
    if (local_.empty()) {
      drain_scratch_.clear();
      if (inbox_.DrainInto(drain_scratch_) > 0) {
        for (auto& it : drain_scratch_) {
          local_.push_back(std::move(it));
        }
        drain_scratch_.clear();
        if (metrics_ != nullptr) {
          metrics_->local_queue_depth.Record(local_.size());
        }
      }
    }
    if (local_.empty()) {
      break;
    }
    std::unique_ptr<WorkItemBase> item = std::move(local_.front());
    local_.pop_front();
    RunItem(*item);
    did = true;
    if (ctl_->pause_requested()) {
      return did;  // finish messages under HandlePause's message-only loop
    }
  }
  if (TryDeliverNotifications()) {
    did = true;
  }
  if (TryDeliverPurges(/*force=*/false)) {
    did = true;
  }
  return did;
}

bool Worker::TryDeliverNotifications() {
  if (pending_.empty()) {
    return false;
  }
  FlushProgress();  // our own +1/-1s must be visible before consulting the frontier
  // Deliver the earliest deliverable notification (by the total order, which refines the
  // partial order), then return so queued messages regain priority.
  std::sort(pending_.begin(), pending_.end(),
            [](const PendingNotify& a, const PendingNotify& b) { return a.time < b.time; });
  for (size_t i = 0; i < pending_.size(); ++i) {
    const Pointstamp p{pending_[i].time, Location::Stage(pending_[i].vertex->address().stage)};
    if (!ctl_->tracker().CanDeliver(p)) {
      continue;
    }
    PendingNotify n = pending_[i];
    pending_.erase(pending_.begin() + static_cast<ptrdiff_t>(i));
    const uint64_t t0 =
        (metrics_ != nullptr || trace_ != nullptr) ? obs::MonotonicNs() : 0;
    in_callback_ = true;
    current_time_ = n.time;
    n.vertex->OnNotify(n.time);
    n.vertex->FlushOutputs();
    in_callback_ = false;
    if (t0 != 0) {
      const uint64_t t1 = obs::MonotonicNs();
      const uint64_t lag = n.requested_ns != 0 ? t0 - n.requested_ns : 0;
      if (metrics_ != nullptr) {
        metrics_->notifications_delivered.fetch_add(1, std::memory_order_relaxed);
        if (n.requested_ns != 0) {
          metrics_->notify_lag_ns.Record(lag);
        }
      }
      if (trace_ != nullptr) {
        // Delivery proves the frontier passed p — record the advance alongside the
        // delivery span.
        trace_->Record(obs::TraceKind::kFrontierAdvance, t0, 0, p.loc.id, n.time.epoch,
                       n.time.coords.empty() ? 0 : n.time.coords[0]);
        trace_->Record(obs::TraceKind::kNotifyDelivered, t0, t1 - t0, p.loc.id,
                       n.time.epoch, lag);
      }
    }
    progress_.Add(p, -1);
    FlushProgress();
    return true;
  }
  return false;
}

void Worker::ThreadMain() {
  if (ctl_->obs().tracer().enabled()) {
    trace_ = ctl_->obs().tracer().RegisterThread("worker" + std::to_string(global_index_));
  }
  uint64_t idle_version = ~0ULL;
  while (!stop_.load(std::memory_order_acquire)) {
    if (ctl_->pause_requested()) {
      // §3.4: deliver outstanding messages (no notifications) and park until Resume.
      for (;;) {
        bool any = false;
        for (;;) {
          if (local_.empty()) {
            drain_scratch_.clear();
            if (inbox_.DrainInto(drain_scratch_) > 0) {
              for (auto& it : drain_scratch_) {
                local_.push_back(std::move(it));
              }
              drain_scratch_.clear();
            }
          }
          if (local_.empty()) {
            break;
          }
          std::unique_ptr<WorkItemBase> item = std::move(local_.front());
          local_.pop_front();
          RunItem(*item);
          any = true;
        }
        FlushProgress();
        if (any) {
          continue;
        }
        if (!ctl_->pause_requested() || stop_.load(std::memory_order_acquire)) {
          break;
        }
        ctl_->NoteWorkerParked();
        EventCount::Ticket ticket = ctl_->event().PrepareWait();
        if (inbox_.Empty() && ctl_->pause_requested() &&
            !stop_.load(std::memory_order_acquire)) {
          ctl_->event().CommitWait(ticket, std::chrono::microseconds(500));
        }
        ctl_->NoteWorkerUnparked();
      }
      continue;
    }

    if (DispatchOnce()) {
      idle_version = ~0ULL;
      continue;
    }
    // No work: flush, let accumulating progress routers release held updates, then sleep
    // unless something arrived or the frontier moved since our last notification scan.
    FlushProgress();
    ctl_->progress_router().OnWorkerIdle();
    EventCount::Ticket ticket = ctl_->event().PrepareWait();
    uint64_t version = ctl_->tracker().version();
    if (!inbox_.Empty() || stop_.load(std::memory_order_acquire) ||
        ctl_->pause_requested()) {
      continue;
    }
    if ((!pending_.empty() || !purges_.empty()) && version != idle_version) {
      idle_version = version;
      continue;  // frontier may have moved; rescan notifications and purges
    }
    ctl_->event().CommitWait(ticket, std::chrono::microseconds(500));
  }
  // Shutdown happens only after the computation drained, so every remaining purge's
  // guarantee time has passed; deliver them before exiting (their capability is ⊤, so
  // they cannot create new events).
  TryDeliverPurges(/*force=*/true);
  FlushProgress();
}

bool Worker::RunPass() {
  // Host threads exist before any job does, so the ring registration that ThreadMain does
  // at entry happens lazily here, on the first pass a host runs for this worker.
  if (trace_ == nullptr && ctl_->obs().tracer().enabled()) {
    trace_ = ctl_->obs().tracer().RegisterThread("worker" + std::to_string(global_index_));
  }
  return DispatchOnce();
}

void Worker::IdleFlush() {
  FlushProgress();
  ctl_->progress_router().OnWorkerIdle();
}

void Worker::DeliverFinalPurges() {
  TryDeliverPurges(/*force=*/true);
  FlushProgress();
}

bool Worker::DrainForTest() {
  bool any = false;
  while (DispatchOnce()) {
    any = true;
  }
  FlushProgress();
  return any;
}

}  // namespace naiad
