// Logical timestamps (§2.1): Timestamp : (e ∈ N, <c1, .., ck> ∈ N^k).
//
// A timestamp pairs an input epoch with one loop counter per enclosing loop context. The
// number of counters ("depth") is a static property of where in the dataflow graph the
// timestamp lives, so two timestamps are only ever compared at equal depth.
//
// Two orders exist:
//  * the paper's partial order (PartialLeq): e1 <= e2 AND counters lexicographically <=.
//    This is the could-result-in order restricted to a single location.
//  * a total order (operator<=>), the lexicographic extension over (epoch, counters), used
//    only as a container key / deterministic delivery order. It refines the partial order.

#ifndef SRC_CORE_TIMESTAMP_H_
#define SRC_CORE_TIMESTAMP_H_

#include <compare>
#include <cstdint>
#include <string>

#include "src/base/hash.h"
#include "src/base/inline_vec.h"
#include "src/base/logging.h"
#include "src/ser/bytes.h"

namespace naiad {

// Maximum loop-context nesting. The paper's applications use at most two nested loops
// (SCC); eight leaves generous headroom while keeping timestamps a small value type.
inline constexpr uint32_t kMaxLoopDepth = 8;

struct Timestamp {
  uint64_t epoch = 0;
  InlineVec<uint64_t, kMaxLoopDepth> coords;

  Timestamp() = default;
  explicit Timestamp(uint64_t e) : epoch(e) {}
  Timestamp(uint64_t e, std::initializer_list<uint64_t> cs) : epoch(e), coords(cs) {}

  uint32_t depth() const { return coords.size(); }

  // Timestamp adjustments of the three system vertices (§2.1 table).
  Timestamp Pushed(uint64_t c0 = 0) const {
    Timestamp t = *this;
    t.coords.push_back(c0);
    return t;
  }
  Timestamp Popped() const {
    Timestamp t = *this;
    t.coords.pop_back();
    return t;
  }
  Timestamp Incremented(uint64_t step = 1) const {
    Timestamp t = *this;
    NAIAD_CHECK(!t.coords.empty());
    t.coords.back() += step;
    return t;
  }

  // The partial (could-result-in at one location) order. Requires equal depth.
  static bool PartialLeq(const Timestamp& a, const Timestamp& b) {
    NAIAD_DCHECK(a.depth() == b.depth());
    return a.epoch <= b.epoch && (a.coords <=> b.coords) <= 0;
  }

  friend bool operator==(const Timestamp& a, const Timestamp& b) {
    return a.epoch == b.epoch && a.coords == b.coords;
  }

  // Total order for containers and deterministic scheduling; refines PartialLeq.
  friend std::strong_ordering operator<=>(const Timestamp& a, const Timestamp& b) {
    if (auto c = a.epoch <=> b.epoch; c != 0) {
      return c;
    }
    return a.coords <=> b.coords;
  }

  uint64_t Hash() const {
    uint64_t h = Mix64(epoch);
    for (uint64_t c : coords) {
      h = HashCombine(h, c);
    }
    return h;
  }

  void Encode(ByteWriter& w) const {
    w.WriteU64(epoch);
    w.WriteU8(static_cast<uint8_t>(coords.size()));
    for (uint64_t c : coords) {
      w.WriteU64(c);
    }
  }
  bool Decode(ByteReader& r) {
    epoch = r.ReadU64();
    uint8_t n = r.ReadU8();
    if (!r.ok() || n > kMaxLoopDepth) {
      return false;
    }
    coords.clear();
    for (uint8_t i = 0; i < n; ++i) {
      coords.push_back(r.ReadU64());
    }
    return r.ok();
  }

  std::string ToString() const {
    std::string s = "(" + std::to_string(epoch);
    for (uint64_t c : coords) {
      s += "," + std::to_string(c);
    }
    s += ")";
    return s;
  }
};

}  // namespace naiad

#endif  // SRC_CORE_TIMESTAMP_H_
