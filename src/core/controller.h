// The per-process runtime (§3): owns the logical graph, the physical vertices of this
// process, the worker threads, and the progress tracker. In distributed mode (src/net) one
// Controller instance exists per process and they are linked by a DataTransport and a
// distributed ProgressRouter; the single-process defaults keep everything in memory.

#ifndef SRC_CORE_CONTROLLER_H_
#define SRC_CORE_CONTROLLER_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <unordered_map>
#include <vector>

#include "src/base/event_count.h"
#include "src/core/graph.h"
#include "src/core/progress.h"
#include "src/core/vertex.h"
#include "src/core/worker.h"
#include "src/obs/obs.h"

namespace naiad {

struct Config {
  uint32_t workers_per_process = 2;
  uint32_t process_id = 0;
  uint32_t processes = 1;
  // Default stage parallelism; 0 means one vertex per worker across the cluster.
  uint32_t default_parallelism = 0;
  // Records buffered per (connector, destination, time) before an eager flush.
  size_t batch_size = 4096;
  // Progress-tracker organization: flat (§3.3 reference) or per-loop-scope trackers with
  // summarized boundary propagation. Observably equivalent; scoped shrinks the root
  // occurrence map and the cross-scope share of progress traffic.
  ProgressScoping scoping = ProgressScoping::kFlat;
  // Observability: metrics registry and event tracer (both default-off). When
  // obs.trace_path is nonempty, Stop() writes this process's trace there; cluster runs
  // clear it per-process and write one combined file instead.
  obs::ObsOptions obs;
  // Job-server mode: many controllers (one per registered job) share one wait/notify
  // channel and one pool of host threads. When shared_event is set, the tracker and all
  // worker parking use it instead of the controller's private EventCount, so progress on
  // any job wakes the shared hosts. When external_workers is set, Start() does not spawn
  // worker threads — the job server drives each Worker via RunPass() from its own pool.
  EventCount* shared_event = nullptr;
  bool external_workers = false;
};

// Ships serialized record bundles to peer processes; implemented by src/net.
class DataTransport {
 public:
  virtual ~DataTransport() = default;
  virtual void SendBundle(uint32_t dst_process, std::vector<uint8_t> frame) = 0;
};

class Controller {
 public:
  explicit Controller(Config cfg = {});
  ~Controller();
  Controller(const Controller&) = delete;
  Controller& operator=(const Controller&) = delete;

  LogicalGraph& graph() { return graph_; }
  const LogicalGraph& graph() const { return graph_; }
  ProgressTracker& tracker() { return tracker_; }
  EventCount& event() { return cfg_.shared_event != nullptr ? *cfg_.shared_event : event_; }
  const Config& config() const { return cfg_; }

  uint32_t total_workers() const { return cfg_.processes * cfg_.workers_per_process; }
  uint32_t default_parallelism() const {
    return cfg_.default_parallelism != 0 ? cfg_.default_parallelism : total_workers();
  }
  bool started() const { return started_; }
  bool stopping() const { return stop_.load(std::memory_order_relaxed); }
  // True once Start() has fully published the vertices and seeded notifications. External
  // worker hosts (Config::external_workers) must gate RunPass() on this: before the flip,
  // the starting thread still mutates worker-owned state (notification seeding).
  bool workers_live() const { return workers_live_.load(std::memory_order_acquire); }

  // Freezes the graph, instantiates this process's vertices, seeds the initial pointstamps
  // (§2.3: one per input stage at epoch 0), and launches worker threads.
  void Start();
  // Start with worker execution gated: the pause flag is armed before the workers spawn,
  // so they park before running anything. Selective recovery boots every rebuilt process
  // this way while the cluster exchanges its progress-seed contributions — an empty
  // tracker would otherwise fire restored notifications the moment a worker looked at it.
  // Resume() releases the workers once all seeds are applied.
  void StartPaused() {
    pause_.store(true, std::memory_order_release);
    Start();
  }
  // Waits until the computation has drained (all inputs closed, no active pointstamps),
  // runs the quiesce hook if any (distributed termination barrier), then stops workers.
  // A cancelled controller skips the hook: a torn-down job must not wait on a barrier
  // its peers will never complete.
  void Join();
  void Stop();

  // Job teardown: unblocks Join() (and any tracker WaitFor using `cancelled()` in its
  // predicate) without waiting for the computation to drain.
  void RequestCancel() {
    cancelled_.store(true, std::memory_order_release);
    event().NotifyAll();
  }
  bool cancelled() const { return cancelled_.load(std::memory_order_acquire); }

  Worker& worker(uint32_t local_index) { return *workers_[local_index]; }
  VertexBase* LocalVertex(StageId s, uint32_t index);

  uint32_t GlobalWorkerOfVertex(uint32_t vertex_index) const {
    return vertex_index % total_workers();
  }
  uint32_t ProcessOfGlobalWorker(uint32_t gw) const { return gw / cfg_.workers_per_process; }
  bool VertexIsLocal(uint32_t vertex_index) const {
    return ProcessOfGlobalWorker(GlobalWorkerOfVertex(vertex_index)) == cfg_.process_id;
  }

  // Routes one bundle to its destination vertex: same worker (queued or re-entrant), peer
  // worker (inbox), or peer process (serialized frame). Buffers the +count progress update
  // for (t, connector) into `progress`. Defined in stage.h (needs DataItem<T>).
  template <typename T>
  void RouteBundle(ConnectorId ch, uint32_t dst_vertex, const Timestamp& t,
                   std::vector<T>&& recs, ProgressBuffer& progress, Worker* src);

  // Called by the network receive path with a frame produced by RouteBundle's remote arm.
  void ReceiveRemoteBundle(std::span<const uint8_t> frame);

  // Decodes a RouteBundle frame far enough to learn its record count and retires its
  // pointstamp (−count broadcast through the progress router) WITHOUT delivering the
  // records. Selective recovery uses this for replayed frames a survivor's transport
  // dedup dropped: their +count was broadcast by the replaying sender, so someone must
  // account the retirement the delivery would have produced.
  void DiscardRemoteBundle(std::span<const uint8_t> frame);

  // When set (before Start), RouteBundle's remote arm hands each outbound frame to the
  // tap instead of calling transport->SendBundle directly. The tap owns the ordering
  // contract of selective recovery's outbound logs: it must append the frame to the
  // per-destination log and enqueue it on the transport under one lock, so log order
  // always equals the link's data sequence numbering.
  using SendTap = std::function<void(uint32_t dst_process, ConnectorId ch,
                                     const Timestamp& t, int64_t count,
                                     std::vector<uint8_t>&& frame)>;
  void SetSendTap(SendTap tap) { send_tap_ = std::move(tap); }

  // The observability runtime — always constructed (cheap no-op objects when disabled),
  // so workers and the transport can hold unconditional pointers into it.
  obs::Obs& obs() const { return *obs_; }

  ProgressRouter& progress_router() { return *progress_router_; }
  void SetProgressRouter(ProgressRouter* router) { progress_router_ = router; }
  void SetDataTransport(DataTransport* transport) { transport_ = transport; }
  void SetQuiesceHook(std::function<void()> hook) { quiesce_hook_ = std::move(hook); }

  void RegisterInputStage(StageId s) {
    input_stages_.push_back(s);
    local_input_state_[s] = LocalInputState{};
  }
  const std::vector<StageId>& input_stages() const { return input_stages_; }

  // This process's OWN producer position for an input stage, maintained by its
  // InputHandle. Checkpointing must read the position here rather than from the
  // tracker's active pointstamps: the tracker holds the cluster-wide view, and at a
  // selective-recovery stall a dead peer's open-input pointstamp (at an older epoch) is
  // still active — indistinguishable from ours by location alone. Driven only by the
  // feed thread, which is also the thread that checkpoints.
  struct LocalInputState {
    uint64_t next_epoch = 0;
    bool closed = false;
  };
  void NoteLocalInputEpoch(StageId s, uint64_t next_epoch, bool closed) {
    local_input_state_[s] = LocalInputState{next_epoch, closed};
  }
  LocalInputState local_input_state(StageId s) const {
    auto it = local_input_state_.find(s);
    NAIAD_CHECK(it != local_input_state_.end()) << "not an input stage: " << s;
    return it->second;
  }

  // Enumerates this process's vertices (stable order). Valid after Start().
  std::vector<std::pair<VertexAddress, VertexBase*>> LocalVertices() const;

  // Fault tolerance: when set (before Start), replaces the default initial pointstamps and
  // initial notifications with the override's — used to boot from a checkpoint (§3.4).
  void SetStartOverride(std::function<void(Controller&, ProgressBuffer&)> f) {
    start_override_ = std::move(f);
  }
  // Keeps typed helper objects (input handles, subscribe state) alive with the controller.
  void KeepAlive(std::shared_ptr<void> holder) { holders_.push_back(std::move(holder)); }

  // Checkpoint support (§3.4): stop delivering notifications, drain all queued messages,
  // park the workers. Only meaningful when external producers are also quiet.
  void PauseAndDrain();
  void Resume();
  bool pause_requested() const { return pause_.load(std::memory_order_acquire); }

  // Pause bookkeeping (called by workers).
  void NoteWorkerParked() { parked_.fetch_add(1, std::memory_order_acq_rel); }
  void NoteWorkerUnparked() { parked_.fetch_sub(1, std::memory_order_acq_rel); }

  // Local-quiescence probe for the cluster checkpoint barrier: no worker inbox holds an
  // undelivered item. Racy by nature — callers must re-check across barrier rounds (the
  // two-round stability rule) rather than trust one reading.
  bool InboxesEmpty() const { return AllInboxesEmpty(); }

  // Traffic statistics (Fig. 6a / 6c accounting).
  std::atomic<uint64_t> data_bytes_sent{0};
  std::atomic<uint64_t> data_bundles_sent{0};

 private:
  friend class Worker;
  bool AllInboxesEmpty() const;

  Config cfg_;
  std::unique_ptr<obs::Obs> obs_;  // before workers_: they cache pointers into it
  LogicalGraph graph_;
  EventCount event_;
  ProgressTracker tracker_;
  LocalProgressRouter local_router_;
  ProgressRouter* progress_router_;
  DataTransport* transport_ = nullptr;
  std::function<void()> quiesce_hook_;
  std::function<void(Controller&, ProgressBuffer&)> start_override_;
  SendTap send_tap_;

  std::vector<std::unique_ptr<Worker>> workers_;
  std::unordered_map<uint64_t, std::unique_ptr<VertexBase>> vertices_;
  std::vector<StageId> input_stages_;
  std::unordered_map<StageId, LocalInputState> local_input_state_;
  std::vector<std::shared_ptr<void>> holders_;

  bool started_ = false;
  std::mutex early_mu_;  // guards frames arriving before Start() finishes
  std::vector<std::vector<uint8_t>> early_frames_;
  std::atomic<bool> accepting_{false};
  std::atomic<bool> stop_{false};
  std::atomic<bool> cancelled_{false};
  std::atomic<bool> workers_live_{false};
  std::atomic<bool> pause_{false};
  std::atomic<uint32_t> parked_{0};
};

}  // namespace naiad

#endif  // SRC_CORE_CONTROLLER_H_
