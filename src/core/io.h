// Input and output stages (§2.1, §4.1): the push-based boundary of a computation.
//
// An input stage is a location in the logical graph standing for the external producer;
// the producer supplies one epoch of records per OnNext call and Close()s the input when
// finished. Under SPMD execution each process drives its own handle with its share of the
// data; epoch e completes globally once every process has advanced past e.
//
// Subscribe attaches a callback fired once per epoch with all of that epoch's records
// (delivered on completeness notification, §2.2); Probe exposes frontier queries so a
// driver thread can wait for an epoch to drain without consuming the data.

#ifndef SRC_CORE_IO_H_
#define SRC_CORE_IO_H_

#include <algorithm>
#include <functional>
#include <iterator>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "src/core/stage.h"

namespace naiad {

template <typename T>
class InputHandle {
 public:
  InputHandle(Controller* ctl, StageId stage)
      : ctl_(ctl),
        stage_(stage),
        rr_cursor_(ctl->config().process_id * ctl->config().workers_per_process) {}

  uint64_t next_epoch() const { return next_epoch_; }
  bool closed() const { return closed_; }

  // Supplies this process's records for the next epoch and marks the epoch complete
  // (§2.1: the producer labels messages with an epoch and notifies the input when the
  // epoch is done; this API fuses the two, like the original's OnNext).
  void OnNext(std::vector<T> data) {
    NAIAD_CHECK(!closed_);
    NAIAD_CHECK(ctl_->started());
    const Timestamp t(next_epoch_);
    const StageDef& def = ctl_->graph().stage(stage_);
    const auto& fanout = def.outputs[0];
    for (size_t i = 0; i < fanout.size(); ++i) {
      std::vector<T> copy = (i + 1 == fanout.size()) ? std::move(data) : data;
      RouteRecords(fanout[i], t, std::move(copy));
    }
    // Open epoch e+1, then retire epoch e (§2.3's ordering), atomically with the +counts
    // for the records injected above.
    progress_.Add(Pointstamp{Timestamp(next_epoch_ + 1), Location::Stage(stage_)}, +1);
    progress_.Add(Pointstamp{t, Location::Stage(stage_)}, -1);
    ctl_->progress_router().Broadcast(progress_.Take());
    ctl_->event().NotifyAll();
    if (ctl_->obs().tracer().enabled()) {
      obs::Tracer& tr = ctl_->obs().tracer();
      tr.Control(obs::TraceKind::kEpochClose, stage_, next_epoch_, 0);
      tr.Control(obs::TraceKind::kEpochOpen, stage_, next_epoch_ + 1, 0);
    }
    ++next_epoch_;
    ctl_->NoteLocalInputEpoch(stage_, next_epoch_, closed_);
  }

  void OnNext() { OnNext(std::vector<T>{}); }

  // Streams a chunk of the *current* epoch without completing it: records are routed and
  // their +counts broadcast, but the epoch-(e)-open pointstamp at the input location is
  // untouched, so downstream completeness for e cannot fire until OnNext seals it. Lets a
  // driver feed a 10^8-record epoch through a bounded buffer (see PowerLawEdgeStream)
  // instead of materializing it for one OnNext call.
  void OnPartial(std::vector<T> data) {
    NAIAD_CHECK(!closed_);
    NAIAD_CHECK(ctl_->started());
    if (data.empty()) {
      return;
    }
    const Timestamp t(next_epoch_);
    const StageDef& def = ctl_->graph().stage(stage_);
    const auto& fanout = def.outputs[0];
    for (size_t i = 0; i < fanout.size(); ++i) {
      std::vector<T> copy = (i + 1 == fanout.size()) ? std::move(data) : data;
      RouteRecords(fanout[i], t, std::move(copy));
    }
    ctl_->progress_router().Broadcast(progress_.Take());
    ctl_->event().NotifyAll();
  }

  // Fault tolerance: fast-forward this handle to the epoch saved in a checkpoint image.
  // Only valid before any OnNext call on this handle (§3.4 restore path).
  void RestoreEpoch(uint64_t next_epoch, bool closed) {
    NAIAD_CHECK(next_epoch_ == 0 && !closed_);
    next_epoch_ = next_epoch;
    closed_ = closed;
    ctl_->NoteLocalInputEpoch(stage_, next_epoch_, closed_);
  }

  // §2.1: "close" the input — no more epochs; lets the computation drain and terminate.
  void OnCompleted() {
    NAIAD_CHECK(!closed_);
    closed_ = true;
    ctl_->NoteLocalInputEpoch(stage_, next_epoch_, closed_);
    progress_.Add(Pointstamp{Timestamp(next_epoch_), Location::Stage(stage_)}, -1);
    ctl_->progress_router().Broadcast(progress_.Take());
    ctl_->event().NotifyAll();
    if (ctl_->obs().tracer().enabled()) {
      ctl_->obs().tracer().Control(obs::TraceKind::kEpochClose, stage_, next_epoch_, 1);
    }
  }

 private:
  void RouteRecords(ConnectorId ch, const Timestamp& t, std::vector<T>&& recs) {
    if (recs.empty()) {
      return;
    }
    const ConnectorDef& def = ctl_->graph().connector(ch);
    const uint32_t parallelism = ctl_->graph().stage(def.dst).parallelism;
    const auto* part = std::any_cast<Partitioner<T>>(&def.partitioner);
    if (part != nullptr && parallelism == 1) {
      // One destination: the partition function cannot change the answer.
      ctl_->RouteBundle<T>(ch, 0, t, std::move(recs), progress_, nullptr);
    } else if (part != nullptr) {
      // Flat destination buckets (destination counts are small and dense); one pass to
      // bucket, one to ship — no per-record ordered-map lookup, and power-of-two
      // parallelism partitions with a mask instead of a divide.
      std::vector<std::vector<T>> by_dst(parallelism);
      const uint32_t mask =
          (parallelism & (parallelism - 1)) == 0 ? parallelism - 1 : 0;
      for (T& rec : recs) {
        const uint64_t key = (*part)(rec);
        const uint32_t dstv = mask != 0 ? static_cast<uint32_t>(key & mask)
                                        : static_cast<uint32_t>(key % parallelism);
        by_dst[dstv].push_back(std::move(rec));
      }
      for (uint32_t dstv = 0; dstv < parallelism; ++dstv) {
        if (!by_dst[dstv].empty()) {
          ctl_->RouteBundle<T>(ch, dstv, t, std::move(by_dst[dstv]), progress_, nullptr);
        }
      }
    } else {
      // Spread the epoch's records over the stage's vertices in contiguous chunks,
      // rotating the starting vertex across epochs.
      const uint32_t chunks =
          static_cast<uint32_t>(std::min<size_t>(parallelism, recs.size()));
      const size_t per = (recs.size() + chunks - 1) / chunks;
      for (uint32_t c = 0; c < chunks; ++c) {
        const size_t lo = c * per;
        const size_t hi = std::min(recs.size(), lo + per);
        if (lo >= hi) {
          break;
        }
        std::vector<T> chunk(std::make_move_iterator(recs.begin() + lo),
                             std::make_move_iterator(recs.begin() + hi));
        const uint32_t dstv = (rr_cursor_ + c) % parallelism;
        ctl_->RouteBundle<T>(ch, dstv, t, std::move(chunk), progress_, nullptr);
      }
      rr_cursor_ = (rr_cursor_ + chunks) % parallelism;
    }
  }

  Controller* ctl_;
  StageId stage_;
  uint64_t next_epoch_ = 0;
  bool closed_ = false;
  uint32_t rr_cursor_;
  ProgressBuffer progress_;
};

template <typename T>
struct InputPair {
  Stream<T> stream;
  std::shared_ptr<InputHandle<T>> handle;
};

// Creates an input stage (§4.1 step 1a).
template <typename T>
InputPair<T> NewInput(GraphBuilder& b, std::string name = "input") {
  StageDef def;
  def.name = std::move(name);
  def.is_input = true;
  def.parallelism = 1;  // no physical vertices; the location stands for the producer
  StageId sid = b.graph().AddStage(std::move(def));
  b.controller().RegisterInputStage(sid);
  auto handle = std::make_shared<InputHandle<T>>(&b.controller(), sid);
  b.controller().KeepAlive(handle);
  return InputPair<T>{Stream<T>{sid, 0, 0, &b}, handle};
}

// Frontier observation for a stage: has epoch e fully drained past it?
class Probe {
 public:
  Probe() = default;
  Probe(Controller* ctl, StageId stage) : ctl_(ctl), stage_(stage) {}

  bool Passed(uint64_t epoch) const {
    // Epoch probes are only meaningful at streaming-context depth; inner-loop stages'
    // pointstamps carry loop counters and need a full Timestamp to compare against.
    NAIAD_CHECK(ctl_->graph().stage(stage_).depth == 0)
        << "Probe::Passed requires a depth-0 stage";
    return ctl_->tracker().FrontierPassed(
        Pointstamp{Timestamp(epoch), Location::Stage(stage_)});
  }
  void WaitPassed(uint64_t epoch) const {
    ctl_->tracker().WaitFor([&] { return Passed(epoch); });
  }

  StageId stage_id() const { return stage_; }

 private:
  Controller* ctl_ = nullptr;
  StageId stage_ = 0;
};

template <typename T>
class SubscribeVertex final : public SinkVertex<T> {
 public:
  using Callback = std::function<void(uint64_t epoch, std::vector<T>&)>;
  explicit SubscribeVertex(Callback cb) : cb_(std::move(cb)) {}

  void OnRecv(const Timestamp& t, std::vector<T>& batch) override {
    auto [it, fresh] = pending_.try_emplace(t);
    if (fresh) {
      this->NotifyAt(t);
    }
    it->second.insert(it->second.end(), std::make_move_iterator(batch.begin()),
                      std::make_move_iterator(batch.end()));
  }

  void OnNotify(const Timestamp& t) override {
    auto it = pending_.find(t);
    if (it == pending_.end()) {
      return;
    }
    cb_(t.epoch, it->second);
    pending_.erase(it);
  }

 private:
  Callback cb_;
  std::map<Timestamp, std::vector<T>> pending_;
};

// §4.1 step 1c: invokes `cb(epoch, records)` once per completed epoch with data. All
// records converge on one vertex (worker 0 of process 0); the callback runs on that
// worker's thread. Returns a Probe on the subscribe stage for epoch-completion waits.
template <typename T>
Probe Subscribe(const Stream<T>& s, typename SubscribeVertex<T>::Callback cb) {
  GraphBuilder& b = *s.builder;
  NAIAD_CHECK(s.depth == 0);  // outputs live in the streaming context
  StageId sid = b.NewStage<SubscribeVertex<T>>(
      StageOptions{.name = "subscribe", .depth = 0, .parallelism = 1},
      [cb = std::move(cb)](uint32_t) { return std::make_unique<SubscribeVertex<T>>(cb); });
  b.Connect<SubscribeVertex<T>, T>(s, sid);
  return Probe(&b.controller(), sid);
}

// A data-parallel sink invoking `fn(t, batch)` on every delivered bundle, with no
// completeness coordination (useful for tests and asynchronous consumers).
template <typename T>
class ForEachVertex final : public SinkVertex<T> {
 public:
  using Fn = std::function<void(const Timestamp&, std::vector<T>&)>;
  explicit ForEachVertex(Fn fn) : fn_(std::move(fn)) {}
  void OnRecv(const Timestamp& t, std::vector<T>& batch) override { fn_(t, batch); }

 private:
  Fn fn_;
};

template <typename T>
Probe ForEach(const Stream<T>& s, typename ForEachVertex<T>::Fn fn,
              Partitioner<T> part = nullptr) {
  GraphBuilder& b = *s.builder;
  StageId sid = b.NewStage<ForEachVertex<T>>(
      StageOptions{.name = "foreach", .depth = s.depth},
      [fn = std::move(fn)](uint32_t) { return std::make_unique<ForEachVertex<T>>(fn); });
  b.Connect<ForEachVertex<T>, T>(s, sid, 0, std::move(part));
  return Probe(&b.controller(), sid);
}

}  // namespace naiad

#endif  // SRC_CORE_IO_H_
