// The typed graph-assembly layer (§4.3): streams, stages, outlets, and the graph builder.
//
// A *stage* is a collection of identically-programmed vertices; a *stream* is one output
// port of a stage, carrying records of one C++ type at one loop depth. Connecting a stream
// to a stage input creates a connector, optionally with a partitioning function — the
// system then routes each record to `Mix64(partition(rec)) % parallelism` (§3.1). Without a
// partitioner, records stay on (or near) the sending worker.
//
// Vertices subclass one of the typed bases (UnaryVertex, BinaryVertex, Unary2Vertex,
// SinkVertex), which expose the paper's OnRecv/OnNotify/SendBy/NotifyAt programming model
// with batched OnRecv for efficiency.

#ifndef SRC_CORE_STAGE_H_
#define SRC_CORE_STAGE_H_

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <tuple>
#include <utility>
#include <vector>

#include "src/base/hash.h"
#include "src/base/logging.h"
#include "src/core/controller.h"
#include "src/core/graph.h"
#include "src/core/timestamp.h"
#include "src/core/vertex.h"
#include "src/core/work_item.h"
#include "src/core/worker.h"
#include "src/ser/codec.h"

namespace naiad {

template <typename T>
using Partitioner = std::function<uint64_t(const T&)>;

template <typename T>
using DeliverFn = std::function<void(VertexBase*, const Timestamp&, std::vector<T>&&)>;

// ------------------------------------------------------------------------------------
// Typed work item.
// ------------------------------------------------------------------------------------

template <typename T>
class DataItem final : public WorkItemBase {
 public:
  DataItem(ConnectorId ch, const Timestamp& t, VertexBase* target, const DeliverFn<T>* deliver,
           std::vector<T> recs)
      : WorkItemBase(ch, t, static_cast<int64_t>(recs.size()), target),
        deliver_(deliver),
        recs_(std::move(recs)) {}

  void Run() override { (*deliver_)(target(), time(), std::move(recs_)); }

 private:
  const DeliverFn<T>* deliver_;
  std::vector<T> recs_;
};

// ------------------------------------------------------------------------------------
// Controller::RouteBundle (declared in controller.h).
// ------------------------------------------------------------------------------------

template <typename T>
void Controller::RouteBundle(ConnectorId ch, uint32_t dst_vertex, const Timestamp& t,
                             std::vector<T>&& recs, ProgressBuffer& progress, Worker* src) {
  if (recs.empty()) {
    return;
  }
  const ConnectorDef& def = graph_.connector(ch);
  progress.Add(Pointstamp{t, Location::Connector(ch)}, static_cast<int64_t>(recs.size()));
  const uint32_t gw = GlobalWorkerOfVertex(dst_vertex);
  const uint32_t proc = ProcessOfGlobalWorker(gw);
  if (proc == cfg_.process_id) {
    VertexBase* target = LocalVertex(def.dst, dst_vertex);
    NAIAD_CHECK(target != nullptr);
    const auto* deliver = std::any_cast<DeliverFn<T>>(&def.deliver);
    NAIAD_CHECK(deliver != nullptr);
    auto item = std::make_unique<DataItem<T>>(ch, t, target, deliver, std::move(recs));
    Worker* w = workers_[gw % cfg_.workers_per_process].get();
    if (w == src) {
      const StageDef& dst_stage = graph_.stage(def.dst);
      if (dst_stage.reentrancy > src->reentry_depth()) {
        src->RunNested(std::move(item));  // bounded re-entrancy (§3.2)
      } else {
        src->EnqueueLocal(std::move(item));
      }
    } else {
      w->EnqueueExternal(std::move(item));
    }
  } else {
    NAIAD_CHECK(def.encode_batch != nullptr)
        << "connector " << ch << " carries a non-serializable type across processes";
    NAIAD_CHECK(transport_ != nullptr);
    ByteWriter w;
    w.WriteU32(ch);
    w.WriteU32(dst_vertex);
    t.Encode(w);
    def.encode_batch(w, &recs);
    data_bytes_sent.fetch_add(w.size(), std::memory_order_relaxed);
    data_bundles_sent.fetch_add(1, std::memory_order_relaxed);
    transport_->SendBundle(proc, std::move(w.buffer()));
  }
}

// ------------------------------------------------------------------------------------
// Outlet: a vertex's typed output port with per-destination buffering (SendBy; §2.2).
// ------------------------------------------------------------------------------------

template <typename T>
class Outlet {
 public:
  // One attached connector.
  struct Route {
    ConnectorId ch = 0;
    uint32_t dst_parallelism = 1;
    const Partitioner<T>* partitioner = nullptr;  // null: keep local
  };

  void Configure(Controller* ctl, VertexBase* v, TimestampAction action,
                 uint64_t feedback_limit) {
    ctl_ = ctl;
    vertex_ = v;
    action_ = action;
    feedback_limit_ = feedback_limit;
  }
  void AddRoute(Route r) { routes_.push_back(r); }
  bool wired() const { return ctl_ != nullptr; }
  size_t route_count() const { return routes_.size(); }

  // SendBy(e, m, t): buffers `rec` for delivery at (the stage-action-adjusted) time t.
  void Send(const Timestamp& t, const T& rec) {
    NAIAD_DCHECK(wired());
    Timestamp adj = Adjust(t);
    if (Dropped(adj)) {
      return;
    }
    CheckNotPast(t);
    for (uint32_t i = 0; i < routes_.size(); ++i) {
      const Route& r = routes_[i];
      const uint32_t dstv = DestVertex(r, rec);
      std::vector<T>& buf = buffers_[std::make_tuple(i, dstv, adj)];
      buf.push_back(rec);
      if (buf.size() >= ctl_->config().batch_size) {
        FlushOne(i, dstv, adj);
      }
    }
  }

  void SendBatch(const Timestamp& t, std::vector<T>&& recs) {
    if (recs.empty()) {
      return;
    }
    Timestamp adj = Adjust(t);
    if (Dropped(adj)) {
      return;
    }
    CheckNotPast(t);
    // Fast path: a single non-partitioned route can forward the whole batch.
    if (routes_.size() == 1 && routes_[0].partitioner == nullptr && buffers_.empty()) {
      const uint32_t dstv = DestVertex(routes_[0], recs.front());
      ctl_->RouteBundle<T>(routes_[0].ch, dstv, adj, std::move(recs),
                           vertex_->worker().progress(), &vertex_->worker());
      return;
    }
    for (const T& rec : recs) {
      for (uint32_t i = 0; i < routes_.size(); ++i) {
        const Route& r = routes_[i];
        const uint32_t dstv = DestVertex(r, rec);
        std::vector<T>& buf = buffers_[std::make_tuple(i, dstv, adj)];
        buf.push_back(rec);
        if (buf.size() >= ctl_->config().batch_size) {
          FlushOne(i, dstv, adj);
        }
      }
    }
  }

  void Flush() {
    if (buffers_.empty()) {
      return;
    }
    // Move the map out first: RouteBundle may re-enter this vertex (re-entrancy) and send.
    auto pending = std::move(buffers_);
    buffers_.clear();
    for (auto& [key, recs] : pending) {
      if (recs.empty()) {
        continue;
      }
      const auto& [route_idx, dstv, t] = key;
      ctl_->RouteBundle<T>(routes_[route_idx].ch, dstv, t, std::move(recs),
                           vertex_->worker().progress(), &vertex_->worker());
    }
  }

 private:
  Timestamp Adjust(const Timestamp& t) const {
    switch (action_) {
      case TimestampAction::kNone:
        return t;
      case TimestampAction::kIngress:
        return t.Pushed(0);
      case TimestampAction::kEgress:
        return t.Popped();
      case TimestampAction::kFeedback:
        return t.Incremented();
    }
    NAIAD_CHECK(false);
    return t;
  }

  bool Dropped(const Timestamp& adj) const {
    return action_ == TimestampAction::kFeedback && feedback_limit_ != 0 &&
           adj.coords.back() >= feedback_limit_;
  }

  void CheckNotPast(const Timestamp& t) const {
    NAIAD_CHECK(!vertex_->worker().in_purge())
        << "purge callbacks have capability top and cannot send (§2.4)";
#ifndef NDEBUG
    if (const Timestamp* now = vertex_->worker().current_time();
        now != nullptr && now->depth() == t.depth()) {
      NAIAD_DCHECK(Timestamp::PartialLeq(*now, t));  // §2.2: no sends into the past
    }
#endif
  }

  uint32_t DestVertex(const Route& r, const T& rec) const {
    if (r.partitioner != nullptr) {
      // §3.1: "the system routes all messages that map to the same integer to the same
      // downstream vertex". No re-hashing: partitioners that need mixing apply it
      // themselves, and integer-addressed routing (e.g. AllReduce targets) stays exact.
      return static_cast<uint32_t>((*r.partitioner)(rec) % r.dst_parallelism);
    }
    return vertex_->address().index % r.dst_parallelism;  // local-ish delivery (§3.1)
  }

  void FlushOne(uint32_t route_idx, uint32_t dstv, const Timestamp& t) {
    auto it = buffers_.find(std::make_tuple(route_idx, dstv, t));
    if (it == buffers_.end() || it->second.empty()) {
      return;
    }
    std::vector<T> recs = std::move(it->second);
    buffers_.erase(it);
    ctl_->RouteBundle<T>(routes_[route_idx].ch, dstv, t, std::move(recs),
                         vertex_->worker().progress(), &vertex_->worker());
  }

  Controller* ctl_ = nullptr;
  VertexBase* vertex_ = nullptr;
  TimestampAction action_ = TimestampAction::kNone;
  uint64_t feedback_limit_ = 0;
  std::vector<Route> routes_;
  std::map<std::tuple<uint32_t, uint32_t, Timestamp>, std::vector<T>> buffers_;
};

// ------------------------------------------------------------------------------------
// Typed vertex base classes.
// ------------------------------------------------------------------------------------

template <typename TIn, typename TOut>
class UnaryVertex : public VertexBase {
 public:
  using InputType = TIn;
  using OutputType = TOut;
  virtual void OnRecv(const Timestamp& t, std::vector<TIn>& batch) = 0;
  Outlet<TOut>& output() { return output_; }
  void FlushOutputs() override { output_.Flush(); }

 private:
  Outlet<TOut> output_;
};

template <typename TIn1, typename TIn2, typename TOut>
class BinaryVertex : public VertexBase {
 public:
  virtual void OnRecv1(const Timestamp& t, std::vector<TIn1>& batch) = 0;
  virtual void OnRecv2(const Timestamp& t, std::vector<TIn2>& batch) = 0;
  Outlet<TOut>& output() { return output_; }
  void FlushOutputs() override { output_.Flush(); }

 private:
  Outlet<TOut> output_;
};

template <typename TIn, typename TOut1, typename TOut2>
class Unary2Vertex : public VertexBase {
 public:
  virtual void OnRecv(const Timestamp& t, std::vector<TIn>& batch) = 0;
  Outlet<TOut1>& output1() { return output1_; }
  Outlet<TOut2>& output2() { return output2_; }
  void FlushOutputs() override {
    output1_.Flush();
    output2_.Flush();
  }

 private:
  Outlet<TOut1> output1_;
  Outlet<TOut2> output2_;
};

template <typename TIn1, typename TIn2, typename TOut1, typename TOut2>
class Binary2Vertex : public VertexBase {
 public:
  virtual void OnRecv1(const Timestamp& t, std::vector<TIn1>& batch) = 0;
  virtual void OnRecv2(const Timestamp& t, std::vector<TIn2>& batch) = 0;
  Outlet<TOut1>& output1() { return output1_; }
  Outlet<TOut2>& output2() { return output2_; }
  void FlushOutputs() override {
    output1_.Flush();
    output2_.Flush();
  }

 private:
  Outlet<TOut1> output1_;
  Outlet<TOut2> output2_;
};

template <typename TIn>
class SinkVertex : public VertexBase {
 public:
  using InputType = TIn;
  virtual void OnRecv(const Timestamp& t, std::vector<TIn>& batch) = 0;
};

// ------------------------------------------------------------------------------------
// Streams and the graph builder.
// ------------------------------------------------------------------------------------

template <typename T>
struct Stream {
  StageId stage = 0;
  uint32_t port = 0;
  uint32_t depth = 0;
  class GraphBuilder* builder = nullptr;

  bool valid() const { return builder != nullptr; }
};

struct StageOptions {
  std::string name;
  uint32_t depth = 0;
  TimestampAction action = TimestampAction::kNone;
  uint32_t parallelism = 0;  // 0: controller default (one vertex per worker)
  uint32_t reentrancy = 0;
  uint64_t feedback_limit = 0;
  std::vector<Timestamp> initial_notifications;
};

class GraphBuilder {
 public:
  explicit GraphBuilder(Controller& ctl) : ctl_(&ctl) {}

  Controller& controller() { return *ctl_; }
  LogicalGraph& graph() { return ctl_->graph(); }

  // Creates a stage whose vertices are produced by `make(index)`. V must be a typed vertex
  // base subclass; its outlets are wired automatically.
  template <typename V>
  StageId NewStage(StageOptions opts, std::function<std::unique_ptr<V>(uint32_t)> make) {
    StageDef def;
    def.name = std::move(opts.name);
    def.depth = opts.depth;
    def.action = opts.action;
    def.parallelism =
        opts.parallelism != 0 ? opts.parallelism : ctl_->default_parallelism();
    def.reentrancy = opts.reentrancy;
    def.feedback_limit = opts.feedback_limit;
    def.initial_notifications = std::move(opts.initial_notifications);
    def.factory = [make = std::move(make)](Controller*, uint32_t index) {
      return std::unique_ptr<VertexBase>(make(index));
    };
    StageId sid = graph().AddStage(std::move(def));
    graph().mutable_stage(sid).wire_outputs = [sid](Controller* c, VertexBase* vb) {
      WireVertexOutputs(c, sid, static_cast<V*>(vb));
    };
    return sid;
  }

  // Names the output port `port` of stage `sid` as a stream of TOut records.
  template <typename TOut>
  Stream<TOut> OutputOf(StageId sid, uint32_t port = 0) {
    const StageDef& def = graph().stage(sid);
    return Stream<TOut>{sid, port, def.output_depth(), this};
  }

  // Connects `s` to input port `dst_port` of stage `dst` (whose vertex class is V),
  // exchanging records by `part` when provided.
  template <typename V, typename T>
  ConnectorId Connect(const Stream<T>& s, StageId dst, uint32_t dst_port = 0,
                      Partitioner<T> part = nullptr) {
    NAIAD_CHECK(s.builder == this);
    ConnectorDef def;
    def.src = s.stage;
    def.src_port = s.port;
    def.dst = dst;
    def.dst_port = dst_port;
    if (part) {
      def.partitioner = std::move(part);
    }
    def.deliver = MakeDeliver<V, T>(dst_port);
    if constexpr (Encodable<T>) {
      def.encode_batch = [](ByteWriter& w, const void* batch) {
        Codec<std::vector<T>>::Encode(w, *static_cast<const std::vector<T>*>(batch));
      };
      ConnectorId pending_id = graph().num_connectors();
      def.decode_batch = [ctl = ctl_, pending_id](ByteReader& r, const Timestamp& t,
                                                  VertexBase* target)
          -> std::unique_ptr<WorkItemBase> {
        std::vector<T> recs;
        if (!Codec<std::vector<T>>::Decode(r, recs)) {
          return nullptr;
        }
        const auto* deliver =
            std::any_cast<DeliverFn<T>>(&ctl->graph().connector(pending_id).deliver);
        return std::make_unique<DataItem<T>>(pending_id, t, target, deliver,
                                             std::move(recs));
      };
    }
    return graph().AddConnector(std::move(def));
  }

  // Wires one vertex's outlets to the connectors attached to the stage's output ports.
  template <typename V>
  static void WireVertexOutputs(Controller* c, StageId sid, V* v) {
    if constexpr (requires { v->output(); }) {
      WireOutlet(c, sid, 0, v->output(), v);
    }
    if constexpr (requires { v->output1(); }) {
      WireOutlet(c, sid, 0, v->output1(), v);
      WireOutlet(c, sid, 1, v->output2(), v);
    }
  }

 private:
  // Picks the typed callback matching (vertex class, record type, input port). Binary
  // vertices may have differently-typed ports, so each arm is checked independently.
  template <typename V, typename T>
  static DeliverFn<T> MakeDeliver(uint32_t dst_port) {
    if (dst_port == 0) {
      if constexpr (requires(V v, const Timestamp& t, std::vector<T>& b) { v.OnRecv(t, b); }) {
        return [](VertexBase* vb, const Timestamp& t, std::vector<T>&& recs) {
          static_cast<V*>(vb)->OnRecv(t, recs);
        };
      } else if constexpr (requires(V v, const Timestamp& t, std::vector<T>& b) {
                             v.OnRecv1(t, b);
                           }) {
        return [](VertexBase* vb, const Timestamp& t, std::vector<T>&& recs) {
          static_cast<V*>(vb)->OnRecv1(t, recs);
        };
      } else {
        NAIAD_CHECK(false) << "vertex has no OnRecv/OnRecv1 taking this record type";
        return nullptr;
      }
    }
    NAIAD_CHECK(dst_port == 1);
    if constexpr (requires(V v, const Timestamp& t, std::vector<T>& b) { v.OnRecv2(t, b); }) {
      return [](VertexBase* vb, const Timestamp& t, std::vector<T>&& recs) {
        static_cast<V*>(vb)->OnRecv2(t, recs);
      };
    } else {
      NAIAD_CHECK(false) << "vertex has no OnRecv2 taking this record type";
      return nullptr;
    }
  }

  template <typename T>
  static void WireOutlet(Controller* c, StageId sid, uint32_t port, Outlet<T>& outlet,
                         VertexBase* v) {
    const StageDef& def = c->graph().stage(sid);
    outlet.Configure(c, v, def.action, def.feedback_limit);
    if (port >= def.outputs.size()) {
      return;
    }
    for (ConnectorId ch : def.outputs[port]) {
      const ConnectorDef& cd = c->graph().connector(ch);
      typename Outlet<T>::Route r;
      r.ch = ch;
      r.dst_parallelism = c->graph().stage(cd.dst).parallelism;
      r.partitioner = std::any_cast<Partitioner<T>>(&cd.partitioner);
      outlet.AddRoute(r);
    }
  }

  Controller* ctl_;
};

}  // namespace naiad

#endif  // SRC_CORE_STAGE_H_
