// The typed graph-assembly layer (§4.3): streams, stages, outlets, and the graph builder.
//
// A *stage* is a collection of identically-programmed vertices; a *stream* is one output
// port of a stage, carrying records of one C++ type at one loop depth. Connecting a stream
// to a stage input creates a connector, optionally with a partitioning function — the
// system then routes each record to `Mix64(partition(rec)) % parallelism` (§3.1). Without a
// partitioner, records stay on (or near) the sending worker.
//
// Vertices subclass one of the typed bases (UnaryVertex, BinaryVertex, Unary2Vertex,
// SinkVertex), which expose the paper's OnRecv/OnNotify/SendBy/NotifyAt programming model
// with batched OnRecv for efficiency.

#ifndef SRC_CORE_STAGE_H_
#define SRC_CORE_STAGE_H_

#include <functional>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "src/base/hash.h"
#include "src/base/logging.h"
#include "src/core/controller.h"
#include "src/core/graph.h"
#include "src/core/timestamp.h"
#include "src/core/vertex.h"
#include "src/core/work_item.h"
#include "src/core/worker.h"
#include "src/ser/codec.h"

namespace naiad {

template <typename T>
using Partitioner = std::function<uint64_t(const T&)>;

template <typename T>
using DeliverFn = std::function<void(VertexBase*, const Timestamp&, std::vector<T>&&)>;

// ------------------------------------------------------------------------------------
// Typed work item.
// ------------------------------------------------------------------------------------

template <typename T>
class DataItem final : public WorkItemBase {
 public:
  DataItem(ConnectorId ch, const Timestamp& t, VertexBase* target, const DeliverFn<T>* deliver,
           std::vector<T> recs)
      : WorkItemBase(ch, t, static_cast<int64_t>(recs.size()), target),
        deliver_(deliver),
        recs_(std::move(recs)) {}

  void Run() override { (*deliver_)(target(), time(), std::move(recs_)); }

 private:
  const DeliverFn<T>* deliver_;
  std::vector<T> recs_;
};

// ------------------------------------------------------------------------------------
// Controller::RouteBundle (declared in controller.h).
// ------------------------------------------------------------------------------------

template <typename T>
void Controller::RouteBundle(ConnectorId ch, uint32_t dst_vertex, const Timestamp& t,
                             std::vector<T>&& recs, ProgressBuffer& progress, Worker* src) {
  if (recs.empty()) {
    return;
  }
  const ConnectorDef& def = graph_.connector(ch);
  progress.Add(Pointstamp{t, Location::Connector(ch)}, static_cast<int64_t>(recs.size()));
  const uint32_t gw = GlobalWorkerOfVertex(dst_vertex);
  const uint32_t proc = ProcessOfGlobalWorker(gw);
  if (proc == cfg_.process_id) {
    VertexBase* target = LocalVertex(def.dst, dst_vertex);
    NAIAD_CHECK(target != nullptr);
    const auto* deliver = std::any_cast<DeliverFn<T>>(&def.deliver);
    NAIAD_CHECK(deliver != nullptr);
    auto item = std::make_unique<DataItem<T>>(ch, t, target, deliver, std::move(recs));
    Worker* w = workers_[gw % cfg_.workers_per_process].get();
    if (w == src) {
      const StageDef& dst_stage = graph_.stage(def.dst);
      if (dst_stage.reentrancy > src->reentry_depth()) {
        src->RunNested(std::move(item));  // bounded re-entrancy (§3.2)
      } else {
        src->EnqueueLocal(std::move(item));
      }
    } else {
      w->EnqueueExternal(std::move(item));
    }
  } else {
    NAIAD_CHECK(def.encode_batch != nullptr)
        << "connector " << ch << " carries a non-serializable type across processes";
    NAIAD_CHECK(transport_ != nullptr);
    const int64_t count = static_cast<int64_t>(recs.size());
    ByteWriter w;
    w.WriteU32(ch);
    w.WriteU32(dst_vertex);
    t.Encode(w);
    def.encode_batch(w, &recs);
    data_bytes_sent.fetch_add(w.size(), std::memory_order_relaxed);
    data_bundles_sent.fetch_add(1, std::memory_order_relaxed);
    if (send_tap_) {
      // The tap (selective recovery's outbound logger) appends the frame to its durable
      // per-destination log and forwards it to the transport under one lock, so the log's
      // record order equals the link's sequence numbering.
      send_tap_(proc, ch, t, count, std::move(w.buffer()));
    } else {
      transport_->SendBundle(proc, std::move(w.buffer()));
    }
  }
}

// ------------------------------------------------------------------------------------
// Outlet: a vertex's typed output port with per-destination buffering (SendBy; §2.2).
//
// The routing buffers are flat per-route × per-destination arrays (no per-record ordered
// lookup): since a callback overwhelmingly sends at a single (adjusted) timestamp, the
// outlet keeps a single-entry timestamp cache and flushes everything on a cache miss
// rather than keying buffers by time. Buffers reserve(batch_size) on first use, and
// fan-out to multiple routes copies records for all routes but the last, which takes the
// record by move.
// ------------------------------------------------------------------------------------

template <typename T>
class Outlet {
 public:
  // One attached connector.
  struct Route {
    ConnectorId ch = 0;
    uint32_t dst_parallelism = 1;
    const Partitioner<T>* partitioner = nullptr;  // null: keep local
  };

  void Configure(Controller* ctl, VertexBase* v, TimestampAction action,
                 uint64_t feedback_limit) {
    ctl_ = ctl;
    vertex_ = v;
    action_ = action;
    feedback_limit_ = feedback_limit;
    batch_size_ = ctl->config().batch_size;
  }
  void AddRoute(Route r) {
    routes_.push_back(r);
    RouteBuffers rb;
    rb.by_dst.resize(r.dst_parallelism);
    // Destination dispatch is decided once here, not per record: a route with no
    // partitioner always targets the vertex-aligned destination, one destination needs
    // no partitioning at all, and a power-of-two parallelism partitions with a mask
    // instead of a hardware divide.
    if (r.partitioner == nullptr) {
      rb.const_dstv =
          static_cast<int64_t>(vertex_->address().index % r.dst_parallelism);
    } else if (r.dst_parallelism == 1) {
      rb.const_dstv = 0;
    } else if ((r.dst_parallelism & (r.dst_parallelism - 1)) == 0) {
      rb.mask = r.dst_parallelism - 1;
    }
    bufs_.push_back(std::move(rb));
  }
  bool wired() const { return ctl_ != nullptr; }
  size_t route_count() const { return routes_.size(); }

  // SendBy(e, m, t): buffers `rec` for delivery at (the stage-action-adjusted) time t.
  void Send(const Timestamp& t, const T& rec) { SendImpl(t, rec); }
  void Send(const Timestamp& t, T&& rec) { SendImpl(t, std::move(rec)); }

  void SendBatch(const Timestamp& t, std::vector<T>&& recs) {
    if (recs.empty()) {
      return;
    }
    Timestamp adj = Adjust(t);
    if (Dropped(adj)) {
      return;
    }
    CheckNotPast(t);
    if (routes_.empty()) {
      return;
    }
    // Fast path: a single non-partitioned route can forward the whole batch.
    if (routes_.size() == 1 && routes_[0].partitioner == nullptr && buffered_ == 0) {
      const uint32_t dstv = DestVertex(routes_[0], recs.front());
      ctl_->RouteBundle<T>(routes_[0].ch, dstv, adj, std::move(recs),
                           vertex_->worker().progress(), &vertex_->worker());
      return;
    }
    SwitchTime(adj);
    const uint32_t last = static_cast<uint32_t>(routes_.size()) - 1;
    for (uint32_t i = 0; i < last; ++i) {
      for (const T& rec : recs) {
        Append(i, T(rec));
      }
    }
    for (T& rec : recs) {
      Append(last, std::move(rec));
    }
  }

  void Flush() { FlushAll(); }

 private:
  // Buffered records for one route, indexed by destination vertex. `active` lists the
  // destinations with buffered records in first-use order, so a flush never scans the
  // (possibly wide) destination array. `const_dstv` / `mask` carry the destination
  // dispatch precomputed in AddRoute.
  struct RouteBuffers {
    std::vector<std::vector<T>> by_dst;
    std::vector<uint32_t> active;
    int64_t const_dstv = -1;  // >= 0: every record goes to this destination
    uint32_t mask = 0;        // nonzero: dst = key & mask (power-of-two parallelism)
  };

  uint32_t DestOf(const RouteBuffers& rb, uint32_t route_idx, const T& rec) const {
    if (rb.const_dstv >= 0) {
      return static_cast<uint32_t>(rb.const_dstv);
    }
    const Route& r = routes_[route_idx];
    const uint64_t key = (*r.partitioner)(rec);
    return rb.mask != 0 ? static_cast<uint32_t>(key & rb.mask)
                        : static_cast<uint32_t>(key % r.dst_parallelism);
  }

  template <typename U>
  void SendImpl(const Timestamp& t, U&& rec) {
    NAIAD_DCHECK(wired());
    Timestamp adj = Adjust(t);
    if (Dropped(adj)) {
      return;
    }
    CheckNotPast(t);
    if (routes_.empty()) {
      return;
    }
    SwitchTime(adj);
    const uint32_t last = static_cast<uint32_t>(routes_.size()) - 1;
    for (uint32_t i = 0; i < last; ++i) {
      Append(i, T(rec));  // fan-out copy; the last route below consumes `rec`
    }
    Append(last, std::forward<U>(rec));
  }

  // All buffered records share cached_time_; a send at a different time flushes first
  // (single-entry timestamp cache — callbacks overwhelmingly send at one time).
  void SwitchTime(const Timestamp& adj) {
    if (has_time_ && adj == cached_time_) {
      return;
    }
    if (buffered_ > 0) {
      FlushAll();
    }
    cached_time_ = adj;
    has_time_ = true;
  }

  template <typename U>
  void Append(uint32_t route_idx, U&& rec) {
    RouteBuffers& rb = bufs_[route_idx];
    const uint32_t dstv = DestOf(rb, route_idx, rec);
    std::vector<T>& buf = rb.by_dst[dstv];
    if (buf.empty()) {
      rb.active.push_back(dstv);
      if (buf.capacity() == 0) {
        buf.reserve(batch_size_);
      }
    }
    buf.push_back(std::forward<U>(rec));
    ++buffered_;
    if (buf.size() >= batch_size_) {
      FlushOne(route_idx, dstv);
    }
  }

  void FlushOne(uint32_t route_idx, uint32_t dstv) {
    RouteBuffers& rb = bufs_[route_idx];
    // Detach before routing: RouteBundle may re-enter this vertex (§3.2) and send.
    std::vector<T> recs = std::move(rb.by_dst[dstv]);
    rb.by_dst[dstv].clear();
    std::erase(rb.active, dstv);
    if (recs.empty()) {
      return;
    }
    buffered_ -= recs.size();
    const Timestamp t = cached_time_;  // re-entrant sends may retarget the cache
    ctl_->RouteBundle<T>(routes_[route_idx].ch, dstv, t, std::move(recs),
                         vertex_->worker().progress(), &vertex_->worker());
  }

  void FlushAll() {
    has_time_ = false;
    if (buffered_ == 0) {
      return;
    }
    buffered_ = 0;
    const Timestamp t = cached_time_;
    // Detach every pending buffer first: RouteBundle may re-enter this vertex
    // (re-entrancy, §3.2) and buffer new records mid-flush.
    struct Pending {
      uint32_t route;
      uint32_t dstv;
      std::vector<T> recs;
    };
    std::vector<Pending> pending;
    for (uint32_t i = 0; i < routes_.size(); ++i) {
      RouteBuffers& rb = bufs_[i];
      for (uint32_t dstv : rb.active) {
        pending.push_back(Pending{i, dstv, std::move(rb.by_dst[dstv])});
        rb.by_dst[dstv].clear();
      }
      rb.active.clear();
    }
    for (Pending& p : pending) {
      if (p.recs.empty()) {
        continue;
      }
      ctl_->RouteBundle<T>(routes_[p.route].ch, p.dstv, t, std::move(p.recs),
                           vertex_->worker().progress(), &vertex_->worker());
    }
  }

  Timestamp Adjust(const Timestamp& t) const {
    switch (action_) {
      case TimestampAction::kNone:
        return t;
      case TimestampAction::kIngress:
        return t.Pushed(0);
      case TimestampAction::kEgress:
        return t.Popped();
      case TimestampAction::kFeedback:
        return t.Incremented();
    }
    NAIAD_CHECK(false);
    return t;
  }

  bool Dropped(const Timestamp& adj) const {
    return action_ == TimestampAction::kFeedback && feedback_limit_ != 0 &&
           adj.coords.back() >= feedback_limit_;
  }

  void CheckNotPast(const Timestamp& t) const {
    NAIAD_CHECK(!vertex_->worker().in_purge())
        << "purge callbacks have capability top and cannot send (§2.4)";
#ifndef NDEBUG
    if (const Timestamp* now = vertex_->worker().current_time();
        now != nullptr && now->depth() == t.depth()) {
      NAIAD_DCHECK(Timestamp::PartialLeq(*now, t));  // §2.2: no sends into the past
    }
#endif
  }

  uint32_t DestVertex(const Route& r, const T& rec) const {
    if (r.partitioner != nullptr) {
      // §3.1: "the system routes all messages that map to the same integer to the same
      // downstream vertex". No re-hashing: partitioners that need mixing apply it
      // themselves, and integer-addressed routing (e.g. AllReduce targets) stays exact.
      return static_cast<uint32_t>((*r.partitioner)(rec) % r.dst_parallelism);
    }
    return vertex_->address().index % r.dst_parallelism;  // local-ish delivery (§3.1)
  }

  Controller* ctl_ = nullptr;
  VertexBase* vertex_ = nullptr;
  TimestampAction action_ = TimestampAction::kNone;
  uint64_t feedback_limit_ = 0;
  std::vector<Route> routes_;
  std::vector<RouteBuffers> bufs_;  // parallel to routes_
  Timestamp cached_time_;
  bool has_time_ = false;
  size_t buffered_ = 0;  // total records across all route buffers, all at cached_time_
  size_t batch_size_ = 4096;  // cached from Config in Configure()
};

// ------------------------------------------------------------------------------------
// Typed vertex base classes.
// ------------------------------------------------------------------------------------

template <typename TIn, typename TOut>
class UnaryVertex : public VertexBase {
 public:
  using InputType = TIn;
  using OutputType = TOut;
  virtual void OnRecv(const Timestamp& t, std::vector<TIn>& batch) = 0;
  Outlet<TOut>& output() { return output_; }
  void FlushOutputs() override { output_.Flush(); }

 private:
  Outlet<TOut> output_;
};

template <typename TIn1, typename TIn2, typename TOut>
class BinaryVertex : public VertexBase {
 public:
  virtual void OnRecv1(const Timestamp& t, std::vector<TIn1>& batch) = 0;
  virtual void OnRecv2(const Timestamp& t, std::vector<TIn2>& batch) = 0;
  Outlet<TOut>& output() { return output_; }
  void FlushOutputs() override { output_.Flush(); }

 private:
  Outlet<TOut> output_;
};

template <typename TIn, typename TOut1, typename TOut2>
class Unary2Vertex : public VertexBase {
 public:
  virtual void OnRecv(const Timestamp& t, std::vector<TIn>& batch) = 0;
  Outlet<TOut1>& output1() { return output1_; }
  Outlet<TOut2>& output2() { return output2_; }
  void FlushOutputs() override {
    output1_.Flush();
    output2_.Flush();
  }

 private:
  Outlet<TOut1> output1_;
  Outlet<TOut2> output2_;
};

template <typename TIn1, typename TIn2, typename TOut1, typename TOut2>
class Binary2Vertex : public VertexBase {
 public:
  virtual void OnRecv1(const Timestamp& t, std::vector<TIn1>& batch) = 0;
  virtual void OnRecv2(const Timestamp& t, std::vector<TIn2>& batch) = 0;
  Outlet<TOut1>& output1() { return output1_; }
  Outlet<TOut2>& output2() { return output2_; }
  void FlushOutputs() override {
    output1_.Flush();
    output2_.Flush();
  }

 private:
  Outlet<TOut1> output1_;
  Outlet<TOut2> output2_;
};

template <typename TIn>
class SinkVertex : public VertexBase {
 public:
  using InputType = TIn;
  virtual void OnRecv(const Timestamp& t, std::vector<TIn>& batch) = 0;
};

// ------------------------------------------------------------------------------------
// Streams and the graph builder.
// ------------------------------------------------------------------------------------

template <typename T>
struct Stream {
  StageId stage = 0;
  uint32_t port = 0;
  uint32_t depth = 0;
  class GraphBuilder* builder = nullptr;

  bool valid() const { return builder != nullptr; }
};

struct StageOptions {
  std::string name;
  uint32_t depth = 0;
  TimestampAction action = TimestampAction::kNone;
  uint32_t parallelism = 0;  // 0: controller default (one vertex per worker)
  uint32_t reentrancy = 0;
  uint64_t feedback_limit = 0;
  std::vector<Timestamp> initial_notifications;
};

class GraphBuilder {
 public:
  explicit GraphBuilder(Controller& ctl) : ctl_(&ctl) {}

  Controller& controller() { return *ctl_; }
  LogicalGraph& graph() { return ctl_->graph(); }

  // Creates a stage whose vertices are produced by `make(index)`. V must be a typed vertex
  // base subclass; its outlets are wired automatically.
  template <typename V>
  StageId NewStage(StageOptions opts, std::function<std::unique_ptr<V>(uint32_t)> make) {
    StageDef def;
    def.name = std::move(opts.name);
    def.depth = opts.depth;
    def.action = opts.action;
    def.parallelism =
        opts.parallelism != 0 ? opts.parallelism : ctl_->default_parallelism();
    def.reentrancy = opts.reentrancy;
    def.feedback_limit = opts.feedback_limit;
    def.initial_notifications = std::move(opts.initial_notifications);
    def.factory = [make = std::move(make)](Controller*, uint32_t index) {
      return std::unique_ptr<VertexBase>(make(index));
    };
    StageId sid = graph().AddStage(std::move(def));
    graph().mutable_stage(sid).wire_outputs = [sid](Controller* c, VertexBase* vb) {
      WireVertexOutputs(c, sid, static_cast<V*>(vb));
    };
    return sid;
  }

  // Names the output port `port` of stage `sid` as a stream of TOut records.
  template <typename TOut>
  Stream<TOut> OutputOf(StageId sid, uint32_t port = 0) {
    const StageDef& def = graph().stage(sid);
    return Stream<TOut>{sid, port, def.output_depth(), this};
  }

  // Connects `s` to input port `dst_port` of stage `dst` (whose vertex class is V),
  // exchanging records by `part` when provided.
  template <typename V, typename T>
  ConnectorId Connect(const Stream<T>& s, StageId dst, uint32_t dst_port = 0,
                      Partitioner<T> part = nullptr) {
    NAIAD_CHECK(s.builder == this);
    ConnectorDef def;
    def.src = s.stage;
    def.src_port = s.port;
    def.dst = dst;
    def.dst_port = dst_port;
    if (part) {
      def.partitioner = std::move(part);
    }
    def.deliver = MakeDeliver<V, T>(dst_port);
    if constexpr (Encodable<T>) {
      def.encode_batch = [](ByteWriter& w, const void* batch) {
        Codec<std::vector<T>>::Encode(w, *static_cast<const std::vector<T>*>(batch));
      };
      ConnectorId pending_id = graph().num_connectors();
      def.decode_batch = [ctl = ctl_, pending_id](ByteReader& r, const Timestamp& t,
                                                  VertexBase* target)
          -> std::unique_ptr<WorkItemBase> {
        std::vector<T> recs;
        if (!Codec<std::vector<T>>::Decode(r, recs)) {
          return nullptr;
        }
        const auto* deliver =
            std::any_cast<DeliverFn<T>>(&ctl->graph().connector(pending_id).deliver);
        return std::make_unique<DataItem<T>>(pending_id, t, target, deliver,
                                             std::move(recs));
      };
    }
    return graph().AddConnector(std::move(def));
  }

  // Wires one vertex's outlets to the connectors attached to the stage's output ports.
  template <typename V>
  static void WireVertexOutputs(Controller* c, StageId sid, V* v) {
    if constexpr (requires { v->output(); }) {
      WireOutlet(c, sid, 0, v->output(), v);
    }
    if constexpr (requires { v->output1(); }) {
      WireOutlet(c, sid, 0, v->output1(), v);
      WireOutlet(c, sid, 1, v->output2(), v);
    }
  }

 private:
  // Picks the typed callback matching (vertex class, record type, input port). Binary
  // vertices may have differently-typed ports, so each arm is checked independently.
  template <typename V, typename T>
  static DeliverFn<T> MakeDeliver(uint32_t dst_port) {
    if (dst_port == 0) {
      if constexpr (requires(V v, const Timestamp& t, std::vector<T>& b) { v.OnRecv(t, b); }) {
        return [](VertexBase* vb, const Timestamp& t, std::vector<T>&& recs) {
          static_cast<V*>(vb)->OnRecv(t, recs);
        };
      } else if constexpr (requires(V v, const Timestamp& t, std::vector<T>& b) {
                             v.OnRecv1(t, b);
                           }) {
        return [](VertexBase* vb, const Timestamp& t, std::vector<T>&& recs) {
          static_cast<V*>(vb)->OnRecv1(t, recs);
        };
      } else {
        NAIAD_CHECK(false) << "vertex has no OnRecv/OnRecv1 taking this record type";
        return nullptr;
      }
    }
    NAIAD_CHECK(dst_port == 1);
    if constexpr (requires(V v, const Timestamp& t, std::vector<T>& b) { v.OnRecv2(t, b); }) {
      return [](VertexBase* vb, const Timestamp& t, std::vector<T>&& recs) {
        static_cast<V*>(vb)->OnRecv2(t, recs);
      };
    } else {
      NAIAD_CHECK(false) << "vertex has no OnRecv2 taking this record type";
      return nullptr;
    }
  }

  template <typename T>
  static void WireOutlet(Controller* c, StageId sid, uint32_t port, Outlet<T>& outlet,
                         VertexBase* v) {
    const StageDef& def = c->graph().stage(sid);
    outlet.Configure(c, v, def.action, def.feedback_limit);
    if (port >= def.outputs.size()) {
      return;
    }
    for (ConnectorId ch : def.outputs[port]) {
      const ConnectorDef& cd = c->graph().connector(ch);
      typename Outlet<T>::Route r;
      r.ch = ch;
      r.dst_parallelism = c->graph().stage(cd.dst).parallelism;
      r.partitioner = std::any_cast<Partitioner<T>>(&cd.partitioner);
      outlet.AddRoute(r);
    }
  }

  Controller* ctl_;
};

}  // namespace naiad

#endif  // SRC_CORE_STAGE_H_
