// Locations and pointstamps (§2.3).
//
// A location is a vertex or an edge of the dataflow graph; a pointstamp pairs a timestamp
// with a location. Progress tracking projects physical pointstamps onto the *logical* graph
// (§3.1), so locations here name stages and connectors, not individual vertex instances.

#ifndef SRC_CORE_LOCATION_H_
#define SRC_CORE_LOCATION_H_

#include <compare>
#include <cstdint>
#include <string>

#include "src/base/hash.h"
#include "src/core/timestamp.h"
#include "src/ser/bytes.h"

namespace naiad {

using StageId = uint32_t;
using ConnectorId = uint32_t;

struct Location {
  enum class Kind : uint8_t { kStage = 0, kConnector = 1 };

  Kind kind = Kind::kStage;
  uint32_t id = 0;

  static Location Stage(StageId s) { return Location{Kind::kStage, s}; }
  static Location Connector(ConnectorId c) { return Location{Kind::kConnector, c}; }

  bool is_stage() const { return kind == Kind::kStage; }

  friend bool operator==(const Location&, const Location&) = default;
  friend std::strong_ordering operator<=>(const Location&, const Location&) = default;

  void Encode(ByteWriter& w) const {
    w.WriteU8(static_cast<uint8_t>(kind));
    w.WriteU32(id);
  }
  bool Decode(ByteReader& r) {
    kind = static_cast<Kind>(r.ReadU8());
    id = r.ReadU32();
    return r.ok();
  }

  std::string ToString() const {
    return (is_stage() ? "S" : "C") + std::to_string(id);
  }
};

struct Pointstamp {
  Timestamp time;
  Location loc;

  friend bool operator==(const Pointstamp&, const Pointstamp&) = default;
  friend std::strong_ordering operator<=>(const Pointstamp& a, const Pointstamp& b) {
    if (auto c = a.loc <=> b.loc; c != 0) {
      return c;
    }
    return a.time <=> b.time;
  }

  uint64_t Hash() const { return HashCombine(time.Hash(), (uint64_t(loc.id) << 1) | uint64_t(loc.kind)); }

  void Encode(ByteWriter& w) const {
    time.Encode(w);
    loc.Encode(w);
  }
  bool Decode(ByteReader& r) { return time.Decode(r) && loc.Decode(r); }

  std::string ToString() const { return time.ToString() + "@" + loc.ToString(); }
};

}  // namespace naiad

#endif  // SRC_CORE_LOCATION_H_
