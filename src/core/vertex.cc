#include "src/core/vertex.h"

#include "src/base/logging.h"
#include "src/core/worker.h"

namespace naiad {

void VertexBase::NotifyAt(const Timestamp& t) {
  NAIAD_CHECK(worker_ != nullptr);
  NAIAD_CHECK(!worker_->in_purge()) << "purge callbacks have capability top (§2.4)";
  if (const Timestamp* now = worker_->current_time();
      now != nullptr && now->depth() == t.depth()) {
    // §2.2: callbacks may only request notifications at times >= the current time.
    NAIAD_DCHECK(Timestamp::PartialLeq(*now, t));
  }
  worker_->AddNotificationRequest(this, t);
  worker_->progress().Add(Pointstamp{t, Location::Stage(addr_.stage)}, +1);
}

void VertexBase::PurgeAt(const Timestamp& t) {
  NAIAD_CHECK(worker_ != nullptr);
  worker_->AddPurgeRequest(this, t);  // no occurrence count: nothing can wait on it
}

}  // namespace naiad
