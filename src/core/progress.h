// Progress tracking (§2.3, §3.3).
//
// Workers describe the events they create and retire as (pointstamp, delta) updates.
// Updates are buffered per worker for the duration of a callback and flushed atomically;
// a flush both applies to the local ProgressTracker and (in distributed mode) is broadcast
// to every process through a ProgressRouter. Because a consumed event's -1 always travels
// in the same flush as (or later than) the +1s it caused, and per-pair channels are FIFO,
// every local frontier is conservative with respect to the global frontier — the safety
// property of §3.3 / [4].
//
// Local occurrence counts may be transiently negative when a consumer's -1 overtakes the
// producer's +1 through a different channel; only strictly positive counts make a
// pointstamp active, which the protocol paper shows is safe.
//
// Frontier queries are evaluated by scanning the (small) active set against the summary
// matrix rather than by maintaining incremental precursor counts; the observable semantics
// are identical to §2.3 and the scan is O(active²) with active ~ logical locations.

#ifndef SRC_CORE_PROGRESS_H_
#define SRC_CORE_PROGRESS_H_

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <span>
#include <vector>

#include "src/base/event_count.h"
#include "src/base/logging.h"
#include "src/core/graph.h"
#include "src/core/location.h"
#include "src/ser/bytes.h"

namespace naiad {

struct ProgressUpdate {
  Pointstamp point;
  int64_t delta = 0;

  friend bool operator==(const ProgressUpdate&, const ProgressUpdate&) = default;

  void Encode(ByteWriter& w) const {
    point.Encode(w);
    w.WriteI64(delta);
  }
  bool Decode(ByteReader& r) {
    if (!point.Decode(r)) {
      return false;
    }
    delta = r.ReadI64();
    return r.ok();
  }
};

// Per-worker accumulation of deltas within a callback / dispatch step. Take() combines
// updates with equal pointstamps and orders positive deltas before negative ones, as §3.3
// requires of broadcast updates.
//
// The accumulator is a small open-addressed (linear-probing) table sized to the active
// pointstamp set — Add() is the per-bundle hot path (one call per routed bundle and per
// delivered callback), so it must not pay an ordered-map node allocation and pointer
// chase per delta. The table only ever grows (entries are combined in place and cleared
// wholesale by Take()), so probe chains never contain tombstones. Take() sorts each sign
// group, preserving the ordered-map output order the fault-injection harness replays.
class ProgressBuffer {
 public:
  void Add(const Pointstamp& p, int64_t delta) {
    if (delta == 0) {
      return;
    }
    // Consecutive deltas overwhelmingly hit the same pointstamp (a flush accumulates one
    // delta per bundle of the same (connector, time), and every delivered bundle retires
    // against the pointstamp it arrived on), so a one-entry cache skips the hash.
    if (last_ < slots_.size()) {
      Slot& s = slots_[last_];
      if (s.used && s.point == p) {
        NoteCombine(s.delta, delta);
        s.delta += delta;
        return;
      }
    }
    if (slots_.empty()) {
      slots_.resize(kInitialSlots);
    }
    const uint64_t h = HashOf(p);
    size_t mask = slots_.size() - 1;
    size_t i = h & mask;
    for (;;) {
      Slot& s = slots_[i];
      if (!s.used) {
        s.used = true;
        s.hash = h;
        s.point = p;
        s.delta = delta;
        ++used_;
        ++nonzero_;  // delta != 0 (checked on entry)
        last_ = i;
        if (used_ * 4 >= slots_.size() * 3) {
          Grow();  // invalidates last_
        }
        return;
      }
      if (s.hash == h && s.point == p) {
        NoteCombine(s.delta, delta);
        s.delta += delta;
        last_ = i;
        return;
      }
      i = (i + 1) & mask;
    }
  }

  // O(1): Add() maintains the count of slots with a nonzero delta (slots whose deltas
  // cancelled back to zero stay occupied but are not pending output). This sits on the
  // per-item FlushProgress path, so it must not scan the table.
  bool Empty() const { return nonzero_ == 0; }

  std::vector<ProgressUpdate> Take() {
    std::vector<ProgressUpdate> out;
    out.reserve(used_);
    for (const Slot& s : slots_) {
      if (s.used && s.delta > 0) {
        out.push_back(ProgressUpdate{s.point, s.delta});
      }
    }
    const size_t positives = out.size();
    for (Slot& s : slots_) {
      if (s.used && s.delta < 0) {
        out.push_back(ProgressUpdate{s.point, s.delta});
      }
      s.used = false;
    }
    used_ = 0;
    nonzero_ = 0;
    last_ = static_cast<size_t>(-1);
    // Deterministic output (the ordered-map order): sort within each sign group.
    auto by_point = [](const ProgressUpdate& a, const ProgressUpdate& b) {
      return a.point < b.point;
    };
    std::sort(out.begin(), out.begin() + static_cast<ptrdiff_t>(positives), by_point);
    std::sort(out.begin() + static_cast<ptrdiff_t>(positives), out.end(), by_point);
    return out;
  }

 private:
  static constexpr size_t kInitialSlots = 16;  // power of two

  struct Slot {
    Pointstamp point;
    uint64_t hash = 0;
    int64_t delta = 0;
    bool used = false;
  };

  // One multiply-accumulate per coordinate and a single final mix — cheaper than the
  // general Pointstamp::Hash and strong enough for a small power-of-two table.
  static uint64_t HashOf(const Pointstamp& p) {
    uint64_t h = p.time.epoch;
    for (uint64_t c : p.time.coords) {
      h = h * 0x9e3779b97f4a7c15ull + c;
    }
    return Mix64(h ^ ((uint64_t(p.loc.id) << 1) | uint64_t(p.loc.kind)));
  }

  void Grow() {
    std::vector<Slot> old = std::move(slots_);
    slots_.assign(old.size() * 2, Slot{});
    const size_t mask = slots_.size() - 1;
    for (Slot& s : old) {
      if (!s.used) {
        continue;
      }
      size_t i = s.hash & mask;
      while (slots_[i].used) {
        i = (i + 1) & mask;
      }
      slots_[i] = std::move(s);
    }
    last_ = static_cast<size_t>(-1);
  }

  // Tracks the nonzero-delta slot count across an in-place combine (Empty()'s O(1)
  // view). Branchless: +1 when 0 -> nonzero, -1 when nonzero -> 0 (unsigned wrap is
  // fine — the two bools differ by at most one and nonzero_ > 0 whenever it decrements).
  void NoteCombine(int64_t old_delta, int64_t add) {
    nonzero_ += static_cast<size_t>(old_delta == 0) -
                static_cast<size_t>(old_delta + add == 0);
  }

  std::vector<Slot> slots_;
  size_t used_ = 0;
  size_t nonzero_ = 0;  // slots with delta != 0; Empty() == (nonzero_ == 0)
  size_t last_ = static_cast<size_t>(-1);  // slot touched by the previous Add
};

// How the tracker organizes its occurrence counts.
//
//   kFlat   — one global pointstamp space, exactly §3.3: every update lands in a single
//             map and every frontier query scans the whole active set. The reference
//             implementation.
//   kScoped — one occurrence map per loop scope (LogicalGraph's scope tree). An update at
//             a scope-internal location stays in that scope's map; only when the scope's
//             activity at a pointstamp starts or stops does a *summarized* image update
//             (loop counter projected away via the Ψ antichain onto the scope's egress
//             exits) propagate to the parent. Frontier queries walk the query's scope
//             chain — own scope, ancestors, and the collapsed child images — instead of
//             the whole graph's active set.
//
// Equivalence (model-checked by tests/progress_scoped_model_test.cc): a chain query in
// scoped mode blocks iff the flat scan blocks. Soundness — every image entry is
// Apply(summary, q.time) for a real active q and a real path prefix, and Ψ from the exit
// onward completes the path, so an image that blocks corresponds to a flat blocker.
// Completeness — any flat blocker q outside the chain sits in some scope S whose chain
// meets ours at an ancestor A; the q→p path must leave S through an exit e of S, the
// projection antichain at e dominates the path's prefix summary, and PathSummary::Apply
// is monotone w.r.t. Timestamp::PartialLeq, so the image of q at e (recursively, at A)
// blocks whenever q does. Self-images cannot deadlock a pointstamp against itself:
// Freeze() rejects cycles whose summary dominates the identity, so any projected image of
// p that could loop back to p strictly advances a coordinate and fails PartialLeq.
enum class ProgressScoping : uint8_t { kFlat, kScoped };

inline const char* ToString(ProgressScoping s) {
  return s == ProgressScoping::kFlat ? "flat" : "scoped";
}

// Wire size of one encoded ProgressUpdate (Pointstamp + i64 delta); used for the
// cross-scope byte accounting in the router and the scoped tracker.
inline uint64_t EncodedProgressUpdateBytes(const Pointstamp& p) {
  return 8 + 1 + 8 * static_cast<uint64_t>(p.time.coords.size()) + 1 + 4 + 8;
}

// Accounting the scoped refactor is measured by (bench/fig6c_progress.cpp, src/obs/).
struct ProgressScopingStats {
  uint64_t boundary_updates = 0;       // image deltas pushed across a scope boundary
  uint64_t boundary_update_bytes = 0;  // their encoded size, were they wire traffic
  uint64_t query_scans = 0;            // frontier queries that walked occurrence maps
  uint64_t query_memo_hits = 0;        // frontier queries answered by the dirty-bit memo
  uint64_t scan_points = 0;            // pointstamps examined across all query scans
  uint64_t occ_map_peak = 0;           // max Σ over scopes of (counts + image) entries
  uint64_t occ_map_peak_root = 0;      // max entries in the root scope's map alone
  uint64_t num_scopes = 1;
};

class ProgressTracker {
 public:
  ProgressTracker(const LogicalGraph* graph, EventCount* event,
                  ProgressScoping scoping = ProgressScoping::kFlat)
      : graph_(graph), event_(event), scoping_(scoping) {
    if (scoping_ == ProgressScoping::kFlat) {
      scopes_.resize(1);  // the whole graph is one scope; no graph needed to place updates
      ready_ = true;
    }
  }

  void Apply(std::span<const ProgressUpdate> updates) {
    if (updates.empty()) {
      return;
    }
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (!ready_ && !graph_->frozen()) {
        // Scoped placement needs the frozen scope tree, but in distributed mode a peer's
        // progress frames can race this process's startup. Stash and replay on freeze;
        // queries are conservative (false) until then, matching flat's pre-freeze answers.
        for (const ProgressUpdate& u : updates) {
          pending_.push_back(u);
        }
      } else {
        EnsureReadyLocked();
        for (const ProgressUpdate& u : updates) {
          ApplyOneLocked(u.point, u.delta);
        }
        NotePeaksLocked();
      }
      version_.fetch_add(1, std::memory_order_release);
    }
    event_->NotifyAll();
  }

  // §2.3: a notification with (projected) pointstamp p may be delivered when no *other*
  // active pointstamp could-result-in p. Before the graph freezes (possible in distributed
  // mode, when a peer's progress frames race this process's startup) nothing is
  // deliverable — the conservative answer.
  bool CanDeliver(const Pointstamp& p) const {
    if (!graph_->frozen()) {
      return false;
    }
    std::lock_guard<std::mutex> lock(mu_);
    EnsureReadyLocked();
    return !BlockedLocked(p, /*exclude_self=*/true);
  }

  // True when no active pointstamp (including p itself) could-result-in p; i.e. the global
  // frontier has passed p. Used by output probes.
  bool FrontierPassed(const Pointstamp& p) const {
    if (!graph_->frozen()) {
      return false;
    }
    std::lock_guard<std::mutex> lock(mu_);
    EnsureReadyLocked();
    return !BlockedLocked(p, /*exclude_self=*/false);
  }

  bool Empty() const {
    std::lock_guard<std::mutex> lock(mu_);
    for (const ProgressUpdate& u : pending_) {
      if (u.delta != 0) {
        return false;
      }
    }
    for (const ScopeState& s : scopes_) {
      for (const auto& [q, count] : s.counts) {
        if (count != 0) {
          return false;
        }
      }
    }
    return true;
  }

  int64_t Count(const Pointstamp& p) const {
    std::lock_guard<std::mutex> lock(mu_);
    if (!ready_) {
      if (graph_->frozen()) {
        EnsureReadyLocked();
      } else {
        int64_t c = 0;
        for (const ProgressUpdate& u : pending_) {
          if (u.point == p) {
            c += u.delta;
          }
        }
        return c;
      }
    }
    const ScopeState& s = scopes_[ScopeIndexLocked(p.loc)];
    auto it = s.counts.find(p);
    return it == s.counts.end() ? 0 : it->second;
  }

  uint64_t version() const { return version_.load(std::memory_order_acquire); }

  // Real occurrence counts only (boundary images are derived state), merged across scopes
  // in Pointstamp order — byte-identical to the flat tracker's snapshot, which the
  // checkpoint format (src/ft/checkpoint.cc) relies on.
  std::vector<std::pair<Pointstamp, int64_t>> ActiveSnapshot() const {
    std::lock_guard<std::mutex> lock(mu_);
    std::map<Pointstamp, int64_t> merged;
    for (const ProgressUpdate& u : pending_) {
      merged[u.point] += u.delta;
      if (merged[u.point] == 0) {
        merged.erase(u.point);
      }
    }
    for (const ScopeState& s : scopes_) {
      for (const auto& [q, count] : s.counts) {
        merged[q] += count;
      }
    }
    std::vector<std::pair<Pointstamp, int64_t>> out;
    for (const auto& [q, count] : merged) {
      out.emplace_back(q, count);
    }
    return out;
  }

  ProgressScoping scoping() const { return scoping_; }

  ProgressScopingStats ScopingStats() const {
    std::lock_guard<std::mutex> lock(mu_);
    ProgressScopingStats out = stats_;
    out.num_scopes = scopes_.empty() ? 1 : scopes_.size();
    return out;
  }

  // Blocks the calling (non-worker) thread until `pred`-style conditions hold; used by
  // Join and by output probes.
  template <typename Pred>
  void WaitFor(Pred pred) const {
    while (true) {
      EventCount::Ticket ticket = event_->PrepareWait();
      if (pred()) {
        return;
      }
      event_->CommitWait(ticket, std::chrono::microseconds(1000));
    }
  }

  const LogicalGraph* graph() const { return graph_; }

 private:
  struct QueryMemo {
    // A memoized verdict is valid while the sum of versions along the query's scope chain
    // is unchanged — the per-scope dirty bit. Versions start at 1, so stamp 0 ≡ unset.
    uint64_t can_stamp = 0;
    uint64_t passed_stamp = 0;
    bool can = false;
    bool passed = false;
  };

  struct ScopeState {
    std::map<Pointstamp, int64_t> counts;  // real occurrence counts at in-scope locations
    std::map<Pointstamp, int64_t> image;   // refcounted summarized child-scope activity
    uint64_t version = 1;                  // bumped whenever counts or image changes
    mutable std::map<Pointstamp, QueryMemo> memo;
  };

  static constexpr size_t kMemoLimit = 4096;  // per-scope; cleared wholesale on overflow

  uint32_t ScopeIndexLocked(const Location& l) const {
    return scoping_ == ProgressScoping::kFlat ? 0 : graph_->ScopeOf(l);
  }

  // Builds the per-scope states from the frozen scope tree and replays updates that
  // arrived before the freeze. Caller holds mu_ and has checked graph_->frozen() (or
  // flat mode, which is ready from construction).
  void EnsureReadyLocked() const {
    if (ready_) {
      return;
    }
    scopes_.resize(graph_->num_scopes());
    ready_ = true;
    std::vector<ProgressUpdate> replay = std::move(pending_);
    pending_.clear();
    for (const ProgressUpdate& u : replay) {
      ApplyOneLocked(u.point, u.delta);
    }
    NotePeaksLocked();
  }

  void ApplyOneLocked(const Pointstamp& p, int64_t delta) const {
    const uint32_t sc = ScopeIndexLocked(p.loc);
    ScopeState& s = scopes_[sc];
    auto img = s.image.find(p);
    const bool img_pos = img != s.image.end() && img->second > 0;
    int64_t& c = s.counts[p];
    const bool eff_was = c > 0 || img_pos;
    c += delta;
    const bool eff_now = c > 0 || img_pos;
    if (c == 0) {
      s.counts.erase(p);
    }
    ++s.version;
    if (eff_was != eff_now && scoping_ == ProgressScoping::kScoped && sc != 0) {
      PropagateLocked(p, eff_now ? +1 : -1);
    }
  }

  // The scope holding p.loc just transitioned between inactive and active at p: push the
  // summarized image (loop counters projected onto the scope's exits) into the parent's
  // image map, cascading further up on parent transitions. Depth-bounded recursion (scope
  // parents strictly decrease in depth).
  void PropagateLocked(const Pointstamp& p, int64_t dir) const {
    for (const BoundaryProjection& proj : graph_->Projections(p.loc)) {
      for (const PathSummary& ps : proj.summaries.elements()) {
        const Pointstamp bp{ps.Apply(p.time), proj.exit};
        ++stats_.boundary_updates;
        stats_.boundary_update_bytes += EncodedProgressUpdateBytes(bp);
        ImageDeltaLocked(bp, dir);
      }
    }
  }

  void ImageDeltaLocked(const Pointstamp& bp, int64_t dir) const {
    const uint32_t sc = ScopeIndexLocked(bp.loc);
    ScopeState& t = scopes_[sc];
    auto real = t.counts.find(bp);
    const bool real_pos = real != t.counts.end() && real->second > 0;
    int64_t& ic = t.image[bp];
    const bool eff_was = real_pos || ic > 0;
    ic += dir;
    NAIAD_CHECK(ic >= 0) << "scoped progress image refcount went negative";
    const bool eff_now = real_pos || ic > 0;
    if (ic == 0) {
      t.image.erase(bp);
    }
    ++t.version;
    if (eff_was != eff_now && sc != 0) {
      PropagateLocked(bp, eff_now ? +1 : -1);
    }
  }

  uint64_t ChainStampLocked(uint32_t sc) const {
    uint64_t stamp = 0;
    for (uint32_t t = sc;;) {
      stamp += scopes_[t].version;
      if (t == 0) {
        return stamp;
      }
      t = scoping_ == ProgressScoping::kFlat ? 0 : graph_->ScopeParent(t);
    }
  }

  // One frontier query, memoized per (pointstamp, chain version sum): scans the real
  // counts and child images of every scope on p's chain to the root. Activity in any
  // other scope is covered by an image at some chain ancestor; activity that changed
  // nothing on the chain (the sibling-scope case the O(active²) rescan paid for) leaves
  // the stamp untouched and the memoized verdict stands.
  bool BlockedLocked(const Pointstamp& p, bool exclude_self) const {
    const uint32_t sc = ScopeIndexLocked(p.loc);
    const uint64_t stamp = ChainStampLocked(sc);
    ScopeState& home = scopes_[sc];
    if (home.memo.size() >= kMemoLimit) {
      home.memo.clear();
    }
    QueryMemo& m = home.memo[p];
    uint64_t& slot_stamp = exclude_self ? m.can_stamp : m.passed_stamp;
    bool& slot_verdict = exclude_self ? m.can : m.passed;
    if (slot_stamp == stamp) {
      ++stats_.query_memo_hits;
      return slot_verdict;
    }
    ++stats_.query_scans;
    bool blocked = false;
    for (uint32_t t = sc; !blocked;) {
      const ScopeState& s = scopes_[t];
      for (const auto& [q, count] : s.counts) {
        ++stats_.scan_points;
        if (count > 0 && (!exclude_self || q != p) && graph_->CouldResultIn(q, p)) {
          blocked = true;
          break;
        }
      }
      // Image entries represent distinct pointstamps inside child scopes, never p itself,
      // so the exclude_self carve-out does not apply to them.
      for (auto it = s.image.begin(); !blocked && it != s.image.end(); ++it) {
        ++stats_.scan_points;
        if (it->second > 0 && graph_->CouldResultIn(it->first, p)) {
          blocked = true;
        }
      }
      if (t == 0) {
        break;
      }
      t = scoping_ == ProgressScoping::kFlat ? 0 : graph_->ScopeParent(t);
    }
    slot_stamp = stamp;
    slot_verdict = blocked;
    return blocked;
  }

  void NotePeaksLocked() const {
    uint64_t total = 0;
    for (const ScopeState& s : scopes_) {
      total += s.counts.size() + s.image.size();
    }
    stats_.occ_map_peak = std::max(stats_.occ_map_peak, total);
    if (!scopes_.empty()) {
      stats_.occ_map_peak_root = std::max(
          stats_.occ_map_peak_root,
          static_cast<uint64_t>(scopes_[0].counts.size() + scopes_[0].image.size()));
    }
  }

  const LogicalGraph* graph_;
  EventCount* event_;
  const ProgressScoping scoping_;
  mutable std::mutex mu_;
  // Mutable: queries lazily build the scope states after the freeze and update the memo
  // and stats; all under mu_, same concurrency profile as the flat tracker.
  mutable bool ready_ = false;
  mutable std::vector<ScopeState> scopes_;
  mutable std::vector<ProgressUpdate> pending_;  // pre-freeze arrivals (scoped mode only)
  mutable ProgressScopingStats stats_;
  std::atomic<uint64_t> version_{0};
};

// Where a worker's flushed updates go. The local router applies them directly; the
// distributed routers in src/progress add broadcast and accumulation (§3.3).
class ProgressRouter {
 public:
  virtual ~ProgressRouter() = default;
  // Must (eventually) apply `updates` to every process's tracker, including the caller's.
  virtual void Broadcast(std::vector<ProgressUpdate> updates) = 0;
  // Called when a worker runs out of work; accumulating routers flush held updates here.
  virtual void OnWorkerIdle() {}
};

class LocalProgressRouter final : public ProgressRouter {
 public:
  explicit LocalProgressRouter(ProgressTracker* tracker) : tracker_(tracker) {}
  void Broadcast(std::vector<ProgressUpdate> updates) override {
    tracker_->Apply(updates);
  }

 private:
  ProgressTracker* tracker_;
};

}  // namespace naiad

#endif  // SRC_CORE_PROGRESS_H_
