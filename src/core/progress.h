// Progress tracking (§2.3, §3.3).
//
// Workers describe the events they create and retire as (pointstamp, delta) updates.
// Updates are buffered per worker for the duration of a callback and flushed atomically;
// a flush both applies to the local ProgressTracker and (in distributed mode) is broadcast
// to every process through a ProgressRouter. Because a consumed event's -1 always travels
// in the same flush as (or later than) the +1s it caused, and per-pair channels are FIFO,
// every local frontier is conservative with respect to the global frontier — the safety
// property of §3.3 / [4].
//
// Local occurrence counts may be transiently negative when a consumer's -1 overtakes the
// producer's +1 through a different channel; only strictly positive counts make a
// pointstamp active, which the protocol paper shows is safe.
//
// Frontier queries are evaluated by scanning the (small) active set against the summary
// matrix rather than by maintaining incremental precursor counts; the observable semantics
// are identical to §2.3 and the scan is O(active²) with active ~ logical locations.

#ifndef SRC_CORE_PROGRESS_H_
#define SRC_CORE_PROGRESS_H_

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <span>
#include <vector>

#include "src/base/event_count.h"
#include "src/base/logging.h"
#include "src/core/graph.h"
#include "src/core/location.h"
#include "src/ser/bytes.h"

namespace naiad {

struct ProgressUpdate {
  Pointstamp point;
  int64_t delta = 0;

  friend bool operator==(const ProgressUpdate&, const ProgressUpdate&) = default;

  void Encode(ByteWriter& w) const {
    point.Encode(w);
    w.WriteI64(delta);
  }
  bool Decode(ByteReader& r) {
    if (!point.Decode(r)) {
      return false;
    }
    delta = r.ReadI64();
    return r.ok();
  }
};

// Per-worker accumulation of deltas within a callback / dispatch step. Take() combines
// updates with equal pointstamps and orders positive deltas before negative ones, as §3.3
// requires of broadcast updates.
//
// The accumulator is a small open-addressed (linear-probing) table sized to the active
// pointstamp set — Add() is the per-bundle hot path (one call per routed bundle and per
// delivered callback), so it must not pay an ordered-map node allocation and pointer
// chase per delta. The table only ever grows (entries are combined in place and cleared
// wholesale by Take()), so probe chains never contain tombstones. Take() sorts each sign
// group, preserving the ordered-map output order the fault-injection harness replays.
class ProgressBuffer {
 public:
  void Add(const Pointstamp& p, int64_t delta) {
    if (delta == 0) {
      return;
    }
    // Consecutive deltas overwhelmingly hit the same pointstamp (a flush accumulates one
    // delta per bundle of the same (connector, time), and every delivered bundle retires
    // against the pointstamp it arrived on), so a one-entry cache skips the hash.
    if (last_ < slots_.size()) {
      Slot& s = slots_[last_];
      if (s.used && s.point == p) {
        NoteCombine(s.delta, delta);
        s.delta += delta;
        return;
      }
    }
    if (slots_.empty()) {
      slots_.resize(kInitialSlots);
    }
    const uint64_t h = HashOf(p);
    size_t mask = slots_.size() - 1;
    size_t i = h & mask;
    for (;;) {
      Slot& s = slots_[i];
      if (!s.used) {
        s.used = true;
        s.hash = h;
        s.point = p;
        s.delta = delta;
        ++used_;
        ++nonzero_;  // delta != 0 (checked on entry)
        last_ = i;
        if (used_ * 4 >= slots_.size() * 3) {
          Grow();  // invalidates last_
        }
        return;
      }
      if (s.hash == h && s.point == p) {
        NoteCombine(s.delta, delta);
        s.delta += delta;
        last_ = i;
        return;
      }
      i = (i + 1) & mask;
    }
  }

  // O(1): Add() maintains the count of slots with a nonzero delta (slots whose deltas
  // cancelled back to zero stay occupied but are not pending output). This sits on the
  // per-item FlushProgress path, so it must not scan the table.
  bool Empty() const { return nonzero_ == 0; }

  std::vector<ProgressUpdate> Take() {
    std::vector<ProgressUpdate> out;
    out.reserve(used_);
    for (const Slot& s : slots_) {
      if (s.used && s.delta > 0) {
        out.push_back(ProgressUpdate{s.point, s.delta});
      }
    }
    const size_t positives = out.size();
    for (Slot& s : slots_) {
      if (s.used && s.delta < 0) {
        out.push_back(ProgressUpdate{s.point, s.delta});
      }
      s.used = false;
    }
    used_ = 0;
    nonzero_ = 0;
    last_ = static_cast<size_t>(-1);
    // Deterministic output (the ordered-map order): sort within each sign group.
    auto by_point = [](const ProgressUpdate& a, const ProgressUpdate& b) {
      return a.point < b.point;
    };
    std::sort(out.begin(), out.begin() + static_cast<ptrdiff_t>(positives), by_point);
    std::sort(out.begin() + static_cast<ptrdiff_t>(positives), out.end(), by_point);
    return out;
  }

 private:
  static constexpr size_t kInitialSlots = 16;  // power of two

  struct Slot {
    Pointstamp point;
    uint64_t hash = 0;
    int64_t delta = 0;
    bool used = false;
  };

  // One multiply-accumulate per coordinate and a single final mix — cheaper than the
  // general Pointstamp::Hash and strong enough for a small power-of-two table.
  static uint64_t HashOf(const Pointstamp& p) {
    uint64_t h = p.time.epoch;
    for (uint64_t c : p.time.coords) {
      h = h * 0x9e3779b97f4a7c15ull + c;
    }
    return Mix64(h ^ ((uint64_t(p.loc.id) << 1) | uint64_t(p.loc.kind)));
  }

  void Grow() {
    std::vector<Slot> old = std::move(slots_);
    slots_.assign(old.size() * 2, Slot{});
    const size_t mask = slots_.size() - 1;
    for (Slot& s : old) {
      if (!s.used) {
        continue;
      }
      size_t i = s.hash & mask;
      while (slots_[i].used) {
        i = (i + 1) & mask;
      }
      slots_[i] = std::move(s);
    }
    last_ = static_cast<size_t>(-1);
  }

  // Tracks the nonzero-delta slot count across an in-place combine (Empty()'s O(1)
  // view). Branchless: +1 when 0 -> nonzero, -1 when nonzero -> 0 (unsigned wrap is
  // fine — the two bools differ by at most one and nonzero_ > 0 whenever it decrements).
  void NoteCombine(int64_t old_delta, int64_t add) {
    nonzero_ += static_cast<size_t>(old_delta == 0) -
                static_cast<size_t>(old_delta + add == 0);
  }

  std::vector<Slot> slots_;
  size_t used_ = 0;
  size_t nonzero_ = 0;  // slots with delta != 0; Empty() == (nonzero_ == 0)
  size_t last_ = static_cast<size_t>(-1);  // slot touched by the previous Add
};

class ProgressTracker {
 public:
  ProgressTracker(const LogicalGraph* graph, EventCount* event)
      : graph_(graph), event_(event) {}

  void Apply(std::span<const ProgressUpdate> updates) {
    if (updates.empty()) {
      return;
    }
    {
      std::lock_guard<std::mutex> lock(mu_);
      for (const ProgressUpdate& u : updates) {
        int64_t& c = counts_[u.point];
        c += u.delta;
        if (c == 0) {
          counts_.erase(u.point);
        }
      }
      version_.fetch_add(1, std::memory_order_release);
    }
    event_->NotifyAll();
  }

  // §2.3: a notification with (projected) pointstamp p may be delivered when no *other*
  // active pointstamp could-result-in p. Before the graph freezes (possible in distributed
  // mode, when a peer's progress frames race this process's startup) nothing is
  // deliverable — the conservative answer.
  bool CanDeliver(const Pointstamp& p) const {
    if (!graph_->frozen()) {
      return false;
    }
    std::lock_guard<std::mutex> lock(mu_);
    for (const auto& [q, count] : counts_) {
      if (count > 0 && q != p && graph_->CouldResultIn(q, p)) {
        return false;
      }
    }
    return true;
  }

  // True when no active pointstamp (including p itself) could-result-in p; i.e. the global
  // frontier has passed p. Used by output probes.
  bool FrontierPassed(const Pointstamp& p) const {
    if (!graph_->frozen()) {
      return false;
    }
    std::lock_guard<std::mutex> lock(mu_);
    for (const auto& [q, count] : counts_) {
      if (count > 0 && graph_->CouldResultIn(q, p)) {
        return false;
      }
    }
    return true;
  }

  bool Empty() const {
    std::lock_guard<std::mutex> lock(mu_);
    for (const auto& [q, count] : counts_) {
      if (count != 0) {
        return false;
      }
    }
    return true;
  }

  int64_t Count(const Pointstamp& p) const {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = counts_.find(p);
    return it == counts_.end() ? 0 : it->second;
  }

  uint64_t version() const { return version_.load(std::memory_order_acquire); }

  std::vector<std::pair<Pointstamp, int64_t>> ActiveSnapshot() const {
    std::lock_guard<std::mutex> lock(mu_);
    std::vector<std::pair<Pointstamp, int64_t>> out;
    for (const auto& [q, count] : counts_) {
      out.emplace_back(q, count);
    }
    return out;
  }

  // Blocks the calling (non-worker) thread until `pred`-style conditions hold; used by
  // Join and by output probes.
  template <typename Pred>
  void WaitFor(Pred pred) const {
    while (true) {
      EventCount::Ticket ticket = event_->PrepareWait();
      if (pred()) {
        return;
      }
      event_->CommitWait(ticket, std::chrono::microseconds(1000));
    }
  }

  const LogicalGraph* graph() const { return graph_; }

 private:
  const LogicalGraph* graph_;
  EventCount* event_;
  mutable std::mutex mu_;
  std::map<Pointstamp, int64_t> counts_;
  std::atomic<uint64_t> version_{0};
};

// Where a worker's flushed updates go. The local router applies them directly; the
// distributed routers in src/progress add broadcast and accumulation (§3.3).
class ProgressRouter {
 public:
  virtual ~ProgressRouter() = default;
  // Must (eventually) apply `updates` to every process's tracker, including the caller's.
  virtual void Broadcast(std::vector<ProgressUpdate> updates) = 0;
  // Called when a worker runs out of work; accumulating routers flush held updates here.
  virtual void OnWorkerIdle() {}
};

class LocalProgressRouter final : public ProgressRouter {
 public:
  explicit LocalProgressRouter(ProgressTracker* tracker) : tracker_(tracker) {}
  void Broadcast(std::vector<ProgressUpdate> updates) override {
    tracker_->Apply(updates);
  }

 private:
  ProgressTracker* tracker_;
};

}  // namespace naiad

#endif  // SRC_CORE_PROGRESS_H_
