// Workers (§3.2): each worker owns a partition of the vertices and delivers messages and
// notifications to them. Workers share no state beyond their inbound queues and the
// progress tracker; a vertex only ever executes on its owning worker's thread.
//
// Scheduling policy (§3.2): runnable messages are delivered before notifications to keep
// queues small; deliverable notifications are taken in timestamp order.

#ifndef SRC_CORE_WORKER_H_
#define SRC_CORE_WORKER_H_

#include <atomic>
#include <deque>
#include <memory>
#include <thread>
#include <vector>

#include "src/base/mpsc_queue.h"
#include "src/core/progress.h"
#include "src/core/timestamp.h"
#include "src/core/vertex.h"
#include "src/core/work_item.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"

namespace naiad {

class Controller;

class Worker {
 public:
  Worker(Controller* ctl, uint32_t local_index);
  ~Worker();
  Worker(const Worker&) = delete;
  Worker& operator=(const Worker&) = delete;

  uint32_t local_index() const { return local_index_; }
  uint32_t global_index() const { return global_index_; }
  Controller& controller() const { return *ctl_; }

  // Cross-thread delivery (other workers, network receive threads, input threads).
  void EnqueueExternal(std::unique_ptr<WorkItemBase> item);
  // Same-thread delivery: a vertex on this worker sent to a (non-re-entrant) vertex on this
  // worker; the bundle is delivered after the current callback returns.
  void EnqueueLocal(std::unique_ptr<WorkItemBase> item);
  // Bounded re-entrancy (§3.2): run the bundle synchronously inside the current callback.
  void RunNested(std::unique_ptr<WorkItemBase> item);

  // Owner-thread only (or pre-start): queue a notification request. The matching +1 must be
  // buffered by the caller (VertexBase::NotifyAt does both).
  void AddNotificationRequest(VertexBase* v, const Timestamp& t);

  // §2.4 "state purging" notifications: guarantee time t, capability ⊤. Holds no
  // occurrence count, so it never delays anyone else's frontier; the callback may free
  // state but must not send or request notifications (enforced by in_purge()).
  void AddPurgeRequest(VertexBase* v, const Timestamp& t);
  bool in_purge() const { return in_purge_; }

  ProgressBuffer& progress() { return progress_; }
  void FlushProgress();

  // The timestamp of the callback currently executing, for the "no sends into the past"
  // check (§2.2); nullptr outside callbacks.
  const Timestamp* current_time() const { return in_callback_ ? &current_time_ : nullptr; }
  uint32_t reentry_depth() const { return reentry_depth_; }

  void Start();
  void RequestStop();
  void JoinThread();

  // Job-server mode (Config::external_workers): a shared host thread drives the worker
  // instead of a dedicated one. The same host thread must make every call for a given
  // worker — the single-owner-thread contract carries over unchanged.
  bool RunPass();             // one scheduling pass; true if any callback ran
  void IdleFlush();           // the idle-edge duties of ThreadMain (flush + router poke)
  void DeliverFinalPurges();  // the shutdown duties of ThreadMain (forced purge drain)
  bool InboxEmpty() const { return inbox_.Empty(); }

  // Test support: run pending work on the calling thread until none remains; returns
  // whether anything ran. Only valid when the worker thread is not running.
  bool DrainForTest();

  struct PendingNotify {
    Timestamp time;
    VertexBase* vertex;
    uint64_t requested_ns = 0;  // NotifyAt wall time, for delivery-lag metrics (0 = off)
  };
  // Checkpoint support: only valid while the controller holds the workers paused (§3.4).
  const std::vector<PendingNotify>& pending_notifications() const { return pending_; }

 private:
  friend class Controller;  // pause coordination inspects the inbox

  void ThreadMain();
  bool DispatchOnce();  // one scheduling pass; true if any callback ran
  void RunItem(WorkItemBase& item);
  bool TryDeliverNotifications();
  bool TryDeliverPurges(bool force);

  Controller* ctl_;
  uint32_t local_index_;
  uint32_t global_index_;

  MpscQueue<std::unique_ptr<WorkItemBase>> inbox_;
  std::deque<std::unique_ptr<WorkItemBase>> local_;
  std::vector<std::unique_ptr<WorkItemBase>> drain_scratch_;
  std::vector<PendingNotify> pending_;
  std::vector<PendingNotify> purges_;

  ProgressBuffer progress_;
  Timestamp current_time_;
  bool in_callback_ = false;
  bool in_purge_ = false;
  uint32_t reentry_depth_ = 0;

  // Observability (nullptr / false when disabled — the hot paths then pay one predictable
  // branch and no clock reads). metrics_ points into the controller's Obs; trace_ is this
  // thread's ring, registered at ThreadMain entry and drained only after JoinThread.
  obs::WorkerMetrics* metrics_ = nullptr;
  obs::TraceRing* trace_ = nullptr;
  bool obs_time_ = false;  // metrics_ != nullptr: stamp enqueue/request times

  std::thread thread_;
  std::atomic<bool> stop_{false};
};

}  // namespace naiad

#endif  // SRC_CORE_WORKER_H_
