// Loop contexts (§2.1, §4.3): structured cycles built from system-provided ingress,
// egress, and feedback stages. Edges entering a context pass through Ingress (which pushes
// a 0 loop counter), edges leaving pass through Egress (which pops it), and every cycle
// must close through a Feedback stage (which increments it).
//
// Only feedback stages may have their outputs connected before their inputs (§4.3), which
// is what FeedbackHandle expresses: the stream is available for the loop body immediately,
// and ConnectLoop wires the body's tail back in afterwards.

#ifndef SRC_CORE_LOOP_H_
#define SRC_CORE_LOOP_H_

#include <memory>
#include <string>
#include <utility>

#include "src/core/stage.h"

namespace naiad {

// Forwards records unchanged; the outlet applies the owning stage's timestamp action.
template <typename T>
class PassVertex final : public UnaryVertex<T, T> {
 public:
  void OnRecv(const Timestamp& t, std::vector<T>& batch) override {
    this->output().SendBatch(t, std::move(batch));
  }
};

template <typename T>
class FeedbackHandle {
 public:
  FeedbackHandle(GraphBuilder* b, StageId stage) : builder_(b), stage_(stage) {}

  // The loop-internal stream produced by the feedback stage (iteration i+1 records).
  Stream<T> stream() const { return builder_->OutputOf<T>(stage_); }

  // Closes the cycle: `back` (the loop body's tail, at the inner depth) feeds the feedback
  // stage. May only be called once.
  void ConnectLoop(const Stream<T>& back, Partitioner<T> part = nullptr) {
    NAIAD_CHECK(!connected_);
    connected_ = true;
    builder_->Connect<PassVertex<T>, T>(back, stage_, 0, std::move(part));
  }

  StageId stage_id() const { return stage_; }

 private:
  GraphBuilder* builder_;
  StageId stage_;
  bool connected_ = false;
};

class LoopContext {
 public:
  LoopContext(GraphBuilder& b, uint32_t outer_depth, std::string name = "loop")
      : builder_(&b), outer_depth_(outer_depth), name_(std::move(name)) {}

  uint32_t inner_depth() const { return outer_depth_ + 1; }

  // Brings a stream into the loop context: timestamps gain a 0 loop counter.
  template <typename T>
  Stream<T> Ingress(const Stream<T>& s, Partitioner<T> part = nullptr) {
    NAIAD_CHECK(s.depth == outer_depth_);
    StageId sid = builder_->NewStage<PassVertex<T>>(
        StageOptions{.name = name_ + ".ingress",
                     .depth = outer_depth_,
                     .action = TimestampAction::kIngress},
        [](uint32_t) { return std::make_unique<PassVertex<T>>(); });
    builder_->Connect<PassVertex<T>, T>(s, sid, 0, std::move(part));
    return builder_->OutputOf<T>(sid);
  }

  // Takes a loop-internal stream out of the context: the loop counter is popped.
  template <typename T>
  Stream<T> Egress(const Stream<T>& s, Partitioner<T> part = nullptr) {
    NAIAD_CHECK(s.depth == inner_depth());
    StageId sid = builder_->NewStage<PassVertex<T>>(
        StageOptions{.name = name_ + ".egress",
                     .depth = inner_depth(),
                     .action = TimestampAction::kEgress},
        [](uint32_t) { return std::make_unique<PassVertex<T>>(); });
    builder_->Connect<PassVertex<T>, T>(s, sid, 0, std::move(part));
    return builder_->OutputOf<T>(sid);
  }

  // Creates the feedback stage. Records at loop counter >= max_iters are dropped when
  // max_iters > 0; fixed-point computations usually quiesce naturally instead (§2.3).
  template <typename T>
  FeedbackHandle<T> NewFeedback(uint64_t max_iters = 0) {
    StageId sid = builder_->NewStage<PassVertex<T>>(
        StageOptions{.name = name_ + ".feedback",
                     .depth = inner_depth(),
                     .action = TimestampAction::kFeedback,
                     .feedback_limit = max_iters},
        [](uint32_t) { return std::make_unique<PassVertex<T>>(); });
    return FeedbackHandle<T>(builder_, sid);
  }

 private:
  GraphBuilder* builder_;
  uint32_t outer_depth_;
  std::string name_;
};

}  // namespace naiad

#endif  // SRC_CORE_LOOP_H_
