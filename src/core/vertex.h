// The vertex programming model (§2.2): stateful vertices with OnRecv / OnNotify callbacks
// and SendBy / NotifyAt services. Typed OnRecv lives in the stage.h templates; this base
// carries the runtime identity, the notification service, and the fault-tolerance hooks
// (§3.4 Checkpoint/Restore).

#ifndef SRC_CORE_VERTEX_H_
#define SRC_CORE_VERTEX_H_

#include <cstdint>

#include "src/core/location.h"
#include "src/core/timestamp.h"
#include "src/ser/bytes.h"

namespace naiad {

class Controller;
class Worker;

struct VertexAddress {
  StageId stage = 0;
  uint32_t index = 0;  // physical vertex index within the stage [0, parallelism)
};

class VertexBase {
 public:
  VertexBase() = default;
  virtual ~VertexBase() = default;
  VertexBase(const VertexBase&) = delete;
  VertexBase& operator=(const VertexBase&) = delete;

  // §2.2: invoked once per matching NotifyAt after all messages at times <= t have been
  // delivered to this vertex.
  virtual void OnNotify(const Timestamp& t) {}

  // Requests a future OnNotify(t). Only legal from this vertex's callbacks (or before the
  // computation starts, via StageDef::initial_notifications).
  void NotifyAt(const Timestamp& t);

  // §2.4: a notification with guarantee time t but capability ⊤ — it fires once the
  // frontier passes t, holds no occurrence count (so it cannot delay any other
  // notification), and its OnNotify may only release state: sending or requesting further
  // notifications from it is an error.
  void PurgeAt(const Timestamp& t);

  // Runtime hook: flush buffered sends after a callback returns (§3.2's implicit yield).
  virtual void FlushOutputs() {}

  // Fault tolerance (§3.4). Stateful vertices serialize enough to rebuild themselves.
  virtual void Checkpoint(ByteWriter& w) const {}
  virtual bool Restore(ByteReader& r) { return true; }

  const VertexAddress& address() const { return addr_; }
  Controller& controller() const { return *ctl_; }
  Worker& worker() const { return *worker_; }
  bool attached() const { return ctl_ != nullptr; }

  // Called by the controller when the physical graph is instantiated.
  void AttachRuntime(Controller* ctl, VertexAddress addr, Worker* worker) {
    ctl_ = ctl;
    addr_ = addr;
    worker_ = worker;
  }

 private:
  Controller* ctl_ = nullptr;
  Worker* worker_ = nullptr;
  VertexAddress addr_;
};

}  // namespace naiad

#endif  // SRC_CORE_VERTEX_H_
