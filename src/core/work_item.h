// Work items: queued message deliveries (§3.2).
//
// A work item is one bundle of records destined for one vertex at one timestamp. The typed
// payload lives in the DataItem<T> subclass (see stage.h); workers only need the abstract
// interface plus the (connector, time, count) triple for progress bookkeeping after Run().

#ifndef SRC_CORE_WORK_ITEM_H_
#define SRC_CORE_WORK_ITEM_H_

#include <cstdint>

#include "src/core/location.h"
#include "src/core/timestamp.h"

namespace naiad {

class VertexBase;

class WorkItemBase {
 public:
  WorkItemBase(ConnectorId connector, Timestamp time, int64_t count, VertexBase* target)
      : connector_(connector), time_(std::move(time)), count_(count), target_(target) {}
  virtual ~WorkItemBase() = default;
  WorkItemBase(const WorkItemBase&) = delete;
  WorkItemBase& operator=(const WorkItemBase&) = delete;

  // Invokes the destination vertex's OnRecv with the payload.
  virtual void Run() = 0;

  ConnectorId connector() const { return connector_; }
  const Timestamp& time() const { return time_; }
  int64_t count() const { return count_; }
  VertexBase* target() const { return target_; }

  // Observability: enqueue timestamp (obs::MonotonicNs) for dispatch-latency metrics.
  // Zero when metrics are disabled (the worker never stamps it).
  void set_enqueue_ns(uint64_t ns) { enqueue_ns_ = ns; }
  uint64_t enqueue_ns() const { return enqueue_ns_; }

 private:
  ConnectorId connector_;
  Timestamp time_;
  int64_t count_;
  VertexBase* target_;
  uint64_t enqueue_ns_ = 0;
};

}  // namespace naiad

#endif  // SRC_CORE_WORK_ITEM_H_
