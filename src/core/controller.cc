#include "src/core/controller.h"

#include <algorithm>
#include <chrono>
#include <thread>
#include <tuple>

#include "src/base/logging.h"

namespace naiad {

namespace {
uint64_t VertexKey(StageId s, uint32_t index) {
  return (static_cast<uint64_t>(s) << 32) | index;
}
}  // namespace

Controller::Controller(Config cfg)
    : cfg_(cfg),
      tracker_(&graph_, cfg.shared_event != nullptr ? cfg.shared_event : &event_,
               cfg.scoping),
      local_router_(&tracker_) {
  NAIAD_CHECK(cfg_.workers_per_process > 0);
  NAIAD_CHECK(cfg_.processes > 0);
  NAIAD_CHECK(cfg_.process_id < cfg_.processes);
  obs_ = std::make_unique<obs::Obs>(cfg_.obs, cfg_.workers_per_process, cfg_.processes);
  progress_router_ = &local_router_;
  workers_.reserve(cfg_.workers_per_process);
  for (uint32_t i = 0; i < cfg_.workers_per_process; ++i) {
    workers_.push_back(std::make_unique<Worker>(this, i));
  }
}

Controller::~Controller() { Stop(); }

VertexBase* Controller::LocalVertex(StageId s, uint32_t index) {
  auto it = vertices_.find(VertexKey(s, index));
  return it == vertices_.end() ? nullptr : it->second.get();
}

std::vector<std::pair<VertexAddress, VertexBase*>> Controller::LocalVertices() const {
  std::vector<std::pair<VertexAddress, VertexBase*>> out;
  out.reserve(vertices_.size());
  for (const auto& [key, v] : vertices_) {
    out.emplace_back(VertexAddress{static_cast<StageId>(key >> 32),
                                   static_cast<uint32_t>(key & 0xffffffffu)},
                     v.get());
  }
  std::sort(out.begin(), out.end(), [](const auto& a, const auto& b) {
    return std::tie(a.first.stage, a.first.index) < std::tie(b.first.stage, b.first.index);
  });
  return out;
}

void Controller::Start() {
  NAIAD_CHECK(!started_);
  started_ = true;
  if (!graph_.frozen()) {
    graph_.Freeze();
  }

  // Instantiate this process's partition of the physical graph, and seed the initial
  // active pointstamps (§2.3). The seeds are derived from the shared logical graph and
  // applied to the LOCAL tracker only, identically on every process — never broadcast.
  // This roots every causal chain in a pointstamp that is visible everywhere from time
  // zero, which is what makes in-flight progress updates safe to lag behind data: any
  // outstanding event always has a locally-visible could-result-in ancestor.
  ProgressBuffer start_updates;
  for (StageId s = 0; s < graph_.num_stages(); ++s) {
    const StageDef& def = graph_.stage(s);
    if (def.is_input) {
      // One active epoch-0 pointstamp per external producer (one per process); each
      // process seeds all of them. A restore override seeds the saved epochs instead.
      if (!start_override_) {
        start_updates.Add(Pointstamp{Timestamp(0), Location::Stage(s)}, +cfg_.processes);
      }
      continue;
    }
    if (!def.factory) {
      continue;  // virtual stage (no vertices): locations only
    }
    if (!start_override_) {
      // Every vertex of the stage (local or not) holds its initial notifications; seed
      // the full cluster-wide count locally.
      for (const Timestamp& t : def.initial_notifications) {
        start_updates.Add(Pointstamp{t, Location::Stage(s)},
                          static_cast<int64_t>(def.parallelism));
      }
    }
    for (uint32_t v = 0; v < def.parallelism; ++v) {
      if (!VertexIsLocal(v)) {
        continue;
      }
      const uint32_t gw = GlobalWorkerOfVertex(v);
      Worker* w = workers_[gw % cfg_.workers_per_process].get();
      std::unique_ptr<VertexBase> vertex = def.factory(this, v);
      NAIAD_CHECK(vertex != nullptr);
      vertex->AttachRuntime(this, VertexAddress{s, v}, w);
      if (def.wire_outputs) {
        def.wire_outputs(this, vertex.get());
      }
      if (!start_override_) {
        for (const Timestamp& t : def.initial_notifications) {
          w->AddNotificationRequest(vertex.get(), t);
        }
      }
      vertices_.emplace(VertexKey(s, v), std::move(vertex));
    }
  }
  if (start_override_) {
    start_override_(*this, start_updates);
  }
  if (!start_updates.Empty()) {
    tracker_.Apply(start_updates.Take());  // local-only: every process seeds identically
  }

  {
    std::lock_guard<std::mutex> lock(early_mu_);
    accepting_.store(true, std::memory_order_release);
  }
  // Replay frames that raced with startup. New arrivals now take the direct path; a frame
  // appended before `accepting_` flipped is in the vector because both sides hold early_mu_.
  std::vector<std::vector<uint8_t>> early;
  {
    std::lock_guard<std::mutex> lock(early_mu_);
    early.swap(early_frames_);
  }
  for (const auto& f : early) {
    ReceiveRemoteBundle(f);
  }

  // In job-server mode the server's shared host threads drive the workers via RunPass();
  // spawning per-job threads here would defeat the sharing. The flag gates those hosts
  // off the workers until the seeding above is fully published.
  workers_live_.store(true, std::memory_order_release);
  event().NotifyAll();
  if (!cfg_.external_workers) {
    for (auto& w : workers_) {
      w->Start();
    }
  }
}

void Controller::Join() {
  NAIAD_CHECK(started_);
  tracker_.WaitFor([&] { return tracker_.Empty() || cancelled(); });
  if (quiesce_hook_ && !cancelled()) {
    quiesce_hook_();
  }
  Stop();
}

void Controller::Stop() {
  if (stop_.exchange(true)) {
    return;
  }
  for (auto& w : workers_) {
    w->RequestStop();
  }
  for (auto& w : workers_) {
    w->JoinThread();
  }
  // Publish the tracker's scoping accounting into the process metrics block now that the
  // counters are final (workers joined).
  if (obs::ProcessMetrics* pm = obs_->metrics().process()) {
    const ProgressScopingStats ps = tracker_.ScopingStats();
    pm->progress_boundary_updates.store(ps.boundary_updates, std::memory_order_relaxed);
    pm->progress_boundary_bytes.store(ps.boundary_update_bytes, std::memory_order_relaxed);
    pm->progress_occ_map_peak.store(ps.occ_map_peak, std::memory_order_relaxed);
    pm->progress_occ_map_peak_root.store(ps.occ_map_peak_root, std::memory_order_relaxed);
    pm->progress_query_memo_hits.store(ps.query_memo_hits, std::memory_order_relaxed);
    pm->progress_query_scans.store(ps.query_scans, std::memory_order_relaxed);
  }
  // Single-process trace dump; cluster runs clear trace_path per-process and write one
  // combined file (src/net/cluster.cc) instead. Rings are safe to read here: every
  // recording worker thread has been joined.
  if (obs_->tracer().enabled() && !cfg_.obs.trace_path.empty()) {
    obs::Tracer::WriteFile(cfg_.obs.trace_path, {{cfg_.process_id, &obs_->tracer()}});
  }
}

bool Controller::AllInboxesEmpty() const {
  for (const auto& w : workers_) {
    if (!w->inbox_.Empty()) {
      return false;
    }
  }
  return true;
}

void Controller::PauseAndDrain() {
  NAIAD_CHECK(started_);
  pause_.store(true, std::memory_order_release);
  event().NotifyAll();
  // Wait until every worker is parked with nothing queued anywhere. Parked workers cannot
  // generate messages, so (parked == N && inboxes empty && local queues empty) is stable
  // provided external producers are quiet (the caller's contract).
  while (true) {
    // Workers only park with empty local queues, so parked == N plus empty inboxes means
    // no message can be in flight anywhere in this process.
    if (parked_.load(std::memory_order_acquire) == cfg_.workers_per_process &&
        AllInboxesEmpty()) {
      return;
    }
    std::this_thread::sleep_for(std::chrono::microseconds(200));
  }
}

void Controller::Resume() {
  pause_.store(false, std::memory_order_release);
  event().NotifyAll();
}

void Controller::ReceiveRemoteBundle(std::span<const uint8_t> frame) {
  // A fast peer may ship data before this process finishes instantiating its vertices;
  // stash such frames and replay them at the end of Start().
  if (!accepting_.load(std::memory_order_acquire)) {
    std::lock_guard<std::mutex> lock(early_mu_);
    if (!accepting_.load(std::memory_order_acquire)) {
      early_frames_.emplace_back(frame.begin(), frame.end());
      return;
    }
  }
  ByteReader r(frame);
  const ConnectorId ch = r.ReadU32();
  const uint32_t dst_vertex = r.ReadU32();
  Timestamp t;
  NAIAD_CHECK(t.Decode(r));
  NAIAD_CHECK(ch < graph_.num_connectors());
  const ConnectorDef& def = graph_.connector(ch);
  NAIAD_CHECK(def.decode_batch != nullptr);
  VertexBase* target = LocalVertex(def.dst, dst_vertex);
  NAIAD_CHECK(target != nullptr)
      << "remote bundle for non-local vertex " << def.dst << "/" << dst_vertex;
  std::unique_ptr<WorkItemBase> item = def.decode_batch(r, t, target);
  NAIAD_CHECK(item != nullptr && r.ok());
  const uint32_t gw = GlobalWorkerOfVertex(dst_vertex);
  workers_[gw % cfg_.workers_per_process]->EnqueueExternal(std::move(item));
}

void Controller::DiscardRemoteBundle(std::span<const uint8_t> frame) {
  // A replayed frame can only reach the dedup path after this process has applied the
  // replaying peer's seed-state — which happens strictly after Start() — so there is no
  // early-frame stash to consider here.
  NAIAD_CHECK(accepting_.load(std::memory_order_acquire));
  ByteReader r(frame);
  const ConnectorId ch = r.ReadU32();
  const uint32_t dst_vertex = r.ReadU32();
  Timestamp t;
  NAIAD_CHECK(t.Decode(r));
  NAIAD_CHECK(ch < graph_.num_connectors());
  const ConnectorDef& def = graph_.connector(ch);
  NAIAD_CHECK(def.decode_batch != nullptr);
  VertexBase* target = LocalVertex(def.dst, dst_vertex);
  NAIAD_CHECK(target != nullptr);
  std::unique_ptr<WorkItemBase> item = def.decode_batch(r, t, target);
  NAIAD_CHECK(item != nullptr && r.ok());
  // Retire instead of deliver: the records are already part of this process's state (the
  // original delivery happened before the failure), so only the progress ledger needs the
  // −count the dropped redelivery would have produced.
  progress_router_->Broadcast(
      {ProgressUpdate{Pointstamp{t, Location::Connector(ch)}, -item->count()}});
}

}  // namespace naiad
