// Path summaries and their algebra (§2.3).
//
// Every path through a timely dataflow graph transforms timestamps by some composition of
// the ingress (push 0), egress (pop), and feedback (increment) actions. Any such
// composition normalizes to:
//
//     keep the first `keep` loop counters,
//     add `inc` to the last kept counter (inc == 0 when keep == 0 — epochs never change),
//     append the constants in `push`.
//
// Proof sketch: actions only touch the deepest counter, so to modify counter j a path must
// first pop to depth j; the minimum depth reached along the path is `keep`, increments at
// that depth accumulate into `inc`, and anything pushed afterwards (possibly incremented)
// folds into the `push` constants.
//
// Summaries between a pair of locations are kept as an *antichain* of minimal elements.
// The paper argues that for valid graphs one summary always dominates; storing an antichain
// costs nothing when that holds and stays correct if a user builds an exotic graph.

#ifndef SRC_CORE_PATH_SUMMARY_H_
#define SRC_CORE_PATH_SUMMARY_H_

#include <string>
#include <vector>

#include "src/base/inline_vec.h"
#include "src/base/logging.h"
#include "src/core/timestamp.h"

namespace naiad {

struct PathSummary {
  uint32_t keep = 0;
  uint64_t inc = 0;
  InlineVec<uint64_t, kMaxLoopDepth> push;

  static PathSummary Identity(uint32_t depth) { return PathSummary{depth, 0, {}}; }
  static PathSummary Ingress(uint32_t src_depth) {
    PathSummary s{src_depth, 0, {}};
    s.push.push_back(0);
    return s;
  }
  static PathSummary Egress(uint32_t src_depth) {
    NAIAD_CHECK(src_depth >= 1);
    return PathSummary{src_depth - 1, 0, {}};
  }
  static PathSummary Feedback(uint32_t src_depth, uint64_t step = 1) {
    NAIAD_CHECK(src_depth >= 1);
    return PathSummary{src_depth, step, {}};
  }

  uint32_t dst_depth() const { return keep + push.size(); }

  // Transforms a timestamp at the source location into the earliest timestamp this path
  // could produce at the destination.
  Timestamp Apply(const Timestamp& t) const {
    NAIAD_DCHECK(t.depth() >= keep);
    Timestamp out;
    out.epoch = t.epoch;
    for (uint32_t i = 0; i < keep; ++i) {
      out.coords.push_back(t.coords[i]);
    }
    if (inc > 0) {
      NAIAD_CHECK(keep >= 1);
      out.coords.back() += inc;
    }
    for (uint64_t v : push) {
      out.coords.push_back(v);
    }
    return out;
  }

  // Sequential composition: `first` then `second`.
  static PathSummary Compose(const PathSummary& first, const PathSummary& second) {
    const uint32_t mid_depth = first.dst_depth();
    NAIAD_CHECK(second.keep <= mid_depth);
    PathSummary out;
    if (second.keep <= first.keep) {
      out.keep = second.keep;
      out.inc = second.inc + (second.keep == first.keep ? first.inc : 0);
      out.push = second.push;
    } else {
      const uint32_t taken = second.keep - first.keep;  // prefix of first.push that survives
      NAIAD_CHECK(taken <= first.push.size());
      out.keep = first.keep;
      out.inc = first.inc;
      for (uint32_t i = 0; i < taken; ++i) {
        out.push.push_back(first.push[i]);
      }
      out.push.back() += second.inc;
      for (uint64_t v : second.push) {
        out.push.push_back(v);
      }
    }
    NAIAD_CHECK(out.keep > 0 || out.inc == 0);
    return out;
  }

  // True when a(t) <= b(t) for every timestamp t (same source/destination locations).
  // Derivation in the header comment of the .h; the interesting case is differing `keep`.
  static bool Dominates(const PathSummary& a, const PathSummary& b) {  // a <= b pointwise
    if (a.keep == b.keep) {
      if (a.inc != b.inc) {
        return a.inc < b.inc;
      }
      return (a.push <=> b.push) <= 0;
    }
    if (a.keep > b.keep) {
      // b truncates deeper; b's result exceeds a's everywhere iff b increments the
      // coordinate both still share.
      return b.inc > 0;
    }
    return false;  // a.keep < b.keep: either b <= a strictly, or incomparable
  }

  friend bool operator==(const PathSummary&, const PathSummary&) = default;

  std::string ToString() const {
    std::string s = "[keep " + std::to_string(keep) + " +" + std::to_string(inc) + " push<";
    for (uint64_t v : push) {
      s += std::to_string(v) + ",";
    }
    s += ">]";
    return s;
  }
};

// A set of mutually incomparable minimal path summaries.
class SummaryAntichain {
 public:
  // Returns true if `s` was inserted (i.e. not dominated by an existing element).
  bool Insert(const PathSummary& s) {
    for (const PathSummary& e : elems_) {
      if (PathSummary::Dominates(e, s)) {
        return false;
      }
    }
    std::erase_if(elems_, [&](const PathSummary& e) { return PathSummary::Dominates(s, e); });
    elems_.push_back(s);
    return true;
  }

  bool Empty() const { return elems_.empty(); }
  const std::vector<PathSummary>& elements() const { return elems_; }

  // Does any summary map t1 at-or-before t2?
  bool CouldResultIn(const Timestamp& t1, const Timestamp& t2) const {
    for (const PathSummary& s : elems_) {
      if (Timestamp::PartialLeq(s.Apply(t1), t2)) {
        return true;
      }
    }
    return false;
  }

 private:
  std::vector<PathSummary> elems_;
};

}  // namespace naiad

#endif  // SRC_CORE_PATH_SUMMARY_H_
