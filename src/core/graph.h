// The logical dataflow graph (§3.1): stages linked by typed connectors, organized into
// nested loop contexts, plus the all-pairs minimal-path-summary matrix Ψ used to evaluate
// the could-result-in relation on (projected) pointstamps.
//
// The graph is built by the typed layer in stage.h/loop.h; this header is type-agnostic —
// record types appear only as type-erased hooks (partitioner, deliver, codec) stored on
// each connector.

#ifndef SRC_CORE_GRAPH_H_
#define SRC_CORE_GRAPH_H_

#include <algorithm>
#include <any>
#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/base/logging.h"
#include "src/core/location.h"
#include "src/core/path_summary.h"
#include "src/core/timestamp.h"
#include "src/ser/bytes.h"

namespace naiad {

class VertexBase;
class WorkItemBase;
class Controller;

// What a stage does to the timestamps of messages passing through it (§2.1).
enum class TimestampAction : uint8_t { kNone, kIngress, kEgress, kFeedback };

struct StageDef {
  std::string name;
  uint32_t depth = 0;  // loop-nesting depth of the stage's *inputs*
  TimestampAction action = TimestampAction::kNone;
  uint32_t parallelism = 1;  // number of physical vertices across the whole cluster
  bool is_input = false;     // external producer stage (§2.1): no vertices, only a location
  uint64_t feedback_limit = 0;  // kFeedback only: drop records at iterations >= limit (0 = none)
  uint32_t reentrancy = 0;   // max re-entrant OnRecv depth for same-worker sends (§3.2)

  // Vertex instantiation (typed layer): create local vertex `index`, then wire its outlets.
  std::function<std::unique_ptr<VertexBase>(Controller*, uint32_t index)> factory;
  std::function<void(Controller*, VertexBase*)> wire_outputs;

  // Notifications each vertex should hold before the computation starts (epoch 0 based).
  std::vector<Timestamp> initial_notifications;

  std::vector<ConnectorId> inputs;                 // all inbound connectors
  std::vector<std::vector<ConnectorId>> outputs;   // per output port: fanout list

  uint32_t output_depth() const {
    switch (action) {
      case TimestampAction::kIngress:
        return depth + 1;
      case TimestampAction::kEgress:
        NAIAD_CHECK(depth >= 1);
        return depth - 1;
      default:
        return depth;
    }
  }

  PathSummary ActionSummary() const {
    switch (action) {
      case TimestampAction::kNone:
        return PathSummary::Identity(depth);
      case TimestampAction::kIngress:
        return PathSummary::Ingress(depth);
      case TimestampAction::kEgress:
        return PathSummary::Egress(depth);
      case TimestampAction::kFeedback:
        return PathSummary::Feedback(depth);
    }
    NAIAD_CHECK(false);
    return {};
  }
};

struct ConnectorDef {
  ConnectorId id = 0;
  StageId src = 0;
  uint32_t src_port = 0;
  StageId dst = 0;
  uint32_t dst_port = 0;
  uint32_t depth = 0;  // == src.output_depth() == dst.depth

  // std::function<uint64_t(const T&)> — empty when the connector does not exchange.
  std::any partitioner;
  // std::function<void(VertexBase*, const Timestamp&, std::vector<T>&&)>.
  std::any deliver;

  // Cross-process support; null when T has no Codec (then the graph must be single-process)
  // or installed lazily by the typed layer.
  // encode_batch serializes `static_cast<const std::vector<T>*>(batch)` into `w`.
  std::function<void(ByteWriter& w, const void* batch)> encode_batch;
  // decode_batch builds a ready-to-run work item for `target` from the wire bytes.
  std::function<std::unique_ptr<WorkItemBase>(ByteReader& r, const Timestamp& t,
                                              VertexBase* target)>
      decode_batch;
};

// One summarized hand-off from a scope-internal location to a boundary-exit connector of
// its scope (scoped progress tracking): `summaries` is Ψ(loc, exit), so applying any
// element to a timestamp at `loc` yields the earliest timestamp the activity could reach
// the parent scope with (the loop counter stripped by the egress on the way out).
struct BoundaryProjection {
  Location exit;
  SummaryAntichain summaries;
};

class LogicalGraph {
 public:
  StageId AddStage(StageDef def) {
    NAIAD_CHECK(!frozen());
    def.outputs.resize(1);  // every stage gets at least one output port slot
    stages_.push_back(std::move(def));
    return static_cast<StageId>(stages_.size() - 1);
  }

  ConnectorId AddConnector(ConnectorDef def) {
    NAIAD_CHECK(!frozen());
    NAIAD_CHECK(def.src < stages_.size() && def.dst < stages_.size());
    StageDef& src = stages_[def.src];
    StageDef& dst = stages_[def.dst];
    NAIAD_CHECK(src.output_depth() == dst.depth);
    def.depth = dst.depth;
    def.id = static_cast<ConnectorId>(connectors_.size());
    if (src.outputs.size() <= def.src_port) {
      src.outputs.resize(def.src_port + 1);
    }
    src.outputs[def.src_port].push_back(def.id);
    dst.inputs.push_back(def.id);
    connectors_.push_back(std::move(def));
    return connectors_.back().id;
  }

  const StageDef& stage(StageId s) const { return stages_[s]; }
  StageDef& mutable_stage(StageId s) {
    NAIAD_CHECK(!frozen());
    return stages_[s];
  }
  const ConnectorDef& connector(ConnectorId c) const { return connectors_[c]; }
  ConnectorDef& mutable_connector(ConnectorId c) {
    NAIAD_CHECK(!frozen());
    return connectors_[c];
  }

  uint32_t num_stages() const { return static_cast<uint32_t>(stages_.size()); }
  uint32_t num_connectors() const { return static_cast<uint32_t>(connectors_.size()); }
  uint32_t num_locations() const { return num_stages() + num_connectors(); }
  // Acquire-ordered: in distributed mode, network receive threads may probe the graph
  // while the SPMD body thread is still freezing it; a true result publishes psi_.
  bool frozen() const { return frozen_.load(std::memory_order_acquire); }

  uint32_t LocationIndex(const Location& l) const {
    return l.is_stage() ? l.id : num_stages() + l.id;
  }

  uint32_t LocationDepth(const Location& l) const {
    return l.is_stage() ? stages_[l.id].depth : connectors_[l.id].depth;
  }

  // ---- Scope tree (scoped progress tracking) ------------------------------------------
  //
  // A scope is a maximal set of same-depth locations connected without crossing an
  // ingress or egress stage boundary: scope 0 (the root) is everything at depth 0, and
  // each loop context contributes one scope per nesting level. The parent of a loop
  // scope is the scope holding its ingress stage; a scope's exit locations are the
  // output connectors of its egress stages (the first parent-depth location on every
  // path that leaves the scope). All of this is derived at Freeze() time.
  uint32_t num_scopes() const { return static_cast<uint32_t>(scope_parent_.size()); }
  uint32_t ScopeOf(const Location& l) const { return scope_of_[LocationIndex(l)]; }
  uint32_t ScopeParent(uint32_t s) const { return scope_parent_[s]; }
  uint32_t ScopeDepth(uint32_t s) const { return scope_depth_[s]; }
  // Projections of `l` onto the exit connectors of its scope; empty for root-scope
  // locations and for locations that cannot reach any exit (e.g. a loop that only
  // discards at its feedback limit).
  const std::vector<BoundaryProjection>& Projections(const Location& l) const {
    return projections_[LocationIndex(l)];
  }

  // Freezes the graph and computes the minimal-summary matrix Ψ by worklist propagation
  // over the elementary hops (connector → destination stage with the identity summary;
  // stage → outbound connector with the stage's action summary).
  void Freeze() {
    NAIAD_CHECK(!frozen());
    const uint32_t n = num_locations();
    psi_.assign(static_cast<size_t>(n) * n, SummaryAntichain{});

    struct Hop {
      uint32_t dst;
      PathSummary summary;
    };
    std::vector<std::vector<Hop>> hops(n);
    for (const ConnectorDef& c : connectors_) {
      hops[LocationIndex(Location::Connector(c.id))].push_back(
          Hop{LocationIndex(Location::Stage(c.dst)), PathSummary::Identity(c.depth)});
    }
    for (StageId s = 0; s < num_stages(); ++s) {
      const PathSummary action = stages_[s].ActionSummary();
      for (const auto& port : stages_[s].outputs) {
        for (ConnectorId o : port) {
          hops[LocationIndex(Location::Stage(s))].push_back(
              Hop{LocationIndex(Location::Connector(o)), action});
        }
      }
    }

    struct Pending {
      uint32_t src;
      uint32_t via;
      PathSummary summary;
    };
    std::vector<Pending> work;
    for (uint32_t i = 0; i < n; ++i) {
      const PathSummary ident = PathSummary::Identity(DepthOfIndex(i));
      At(i, i).Insert(ident);
      work.push_back(Pending{i, i, ident});
    }
    while (!work.empty()) {
      Pending p = std::move(work.back());
      work.pop_back();
      for (const Hop& h : hops[p.via]) {
        PathSummary s = PathSummary::Compose(p.summary, h.summary);
        if (p.src == h.dst) {
          // A cycle summary mapping some timestamp at-or-before itself would deadlock the
          // scheduler; valid graphs route every cycle through a feedback stage (§2.1).
          NAIAD_CHECK(!PathSummary::Dominates(s, PathSummary::Identity(DepthOfIndex(p.src))))
              << "cycle without feedback through location index " << p.src;
        }
        if (At(p.src, h.dst).Insert(s)) {
          work.push_back(Pending{p.src, h.dst, std::move(s)});
        }
      }
    }
    BuildScopeTree();
    frozen_.store(true, std::memory_order_release);  // publishes psi_ and the scope tree
  }

  const SummaryAntichain& Summaries(const Location& from, const Location& to) const {
    NAIAD_CHECK(frozen());
    return psi_[static_cast<size_t>(LocationIndex(from)) * num_locations() +
                LocationIndex(to)];
  }

  // The could-result-in relation on pointstamps (§2.3): reflexive at equal pointstamps by
  // the empty path; callers decide whether to exclude p == q.
  bool CouldResultIn(const Pointstamp& a, const Pointstamp& b) const {
    return Summaries(a.loc, b.loc).CouldResultIn(a.time, b.time);
  }

 private:
  uint32_t DepthOfIndex(uint32_t i) const {
    return i < num_stages() ? stages_[i].depth : connectors_[i - num_stages()].depth;
  }
  SummaryAntichain& At(uint32_t i, uint32_t j) {
    return psi_[static_cast<size_t>(i) * num_locations() + j];
  }

  uint32_t UfFind(std::vector<uint32_t>& uf, uint32_t i) const {
    while (uf[i] != i) {
      uf[i] = uf[uf[i]];
      i = uf[i];
    }
    return i;
  }

  // Partitions locations into scopes by union-find over same-depth adjacency: a connector
  // always shares its destination stage's scope, and a stage shares its output
  // connectors' scope unless it changes depth (ingress/egress) — those edges are the
  // scope boundaries. Runs after psi_ is complete so per-location boundary projections
  // can reuse the Ψ antichains.
  void BuildScopeTree() {
    const uint32_t n = num_locations();
    std::vector<uint32_t> uf(n);
    for (uint32_t i = 0; i < n; ++i) {
      uf[i] = i;
    }
    auto unite = [&](uint32_t a, uint32_t b) { uf[UfFind(uf, a)] = UfFind(uf, b); };
    for (const ConnectorDef& c : connectors_) {
      unite(LocationIndex(Location::Connector(c.id)), LocationIndex(Location::Stage(c.dst)));
    }
    uint32_t max_depth = 0;
    for (StageId s = 0; s < num_stages(); ++s) {
      const StageDef& def = stages_[s];
      max_depth = std::max(max_depth, def.depth);
      if (def.output_depth() != def.depth) {
        continue;  // ingress/egress: the stage→output edge crosses a scope boundary
      }
      for (const auto& port : def.outputs) {
        for (ConnectorId o : port) {
          unite(LocationIndex(Location::Stage(s)), LocationIndex(Location::Connector(o)));
        }
      }
    }

    // A scope is a maximal region connected by paths that never drop BELOW its depth —
    // so two depth-(d-1) regions joined only through a depth-d loop (its ingress on one
    // side, its egress on the other) are one scope. Same-depth adjacency alone misses
    // those; fix up deepest-first, uniting every parent-side attachment point (ingress
    // stage, egress output connector) of each depth-d component. Deeper passes run first,
    // so each depth-d component is final when its attachments are merged.
    for (uint32_t d = max_depth; d >= 1; --d) {
      std::unordered_map<uint32_t, uint32_t> attach;  // child UF root -> parent location
      auto attach_to = [&](uint32_t child_loc, uint32_t parent_loc) {
        auto [it, fresh] = attach.try_emplace(UfFind(uf, child_loc), parent_loc);
        if (!fresh) {
          unite(parent_loc, it->second);
        }
      };
      for (StageId s = 0; s < num_stages(); ++s) {
        const StageDef& def = stages_[s];
        const bool ingress = def.action == TimestampAction::kIngress &&
                             def.output_depth() == d;  // stage at d-1, connectors at d
        const bool egress =
            def.action == TimestampAction::kEgress && def.depth == d;  // connectors at d-1
        if (!ingress && !egress) {
          continue;
        }
        for (const auto& port : def.outputs) {
          for (ConnectorId o : port) {
            const uint32_t stage_loc = LocationIndex(Location::Stage(s));
            const uint32_t conn_loc = LocationIndex(Location::Connector(o));
            if (ingress) {
              attach_to(conn_loc, stage_loc);
            } else {
              attach_to(stage_loc, conn_loc);
            }
          }
        }
      }
    }

    // Scope 0 is the whole depth-0 root region (even if the UF left it in several
    // components — a disconnected root is still one pointstamp space in §3.3 terms).
    scope_of_.assign(n, 0);
    std::vector<uint32_t> root_scope(n, UINT32_MAX);  // UF root index -> scope id
    scope_parent_.assign(1, 0);
    scope_depth_.assign(1, 0);
    for (uint32_t i = 0; i < n; ++i) {
      if (DepthOfIndex(i) == 0) {
        continue;
      }
      const uint32_t r = UfFind(uf, i);
      if (root_scope[r] == UINT32_MAX) {
        root_scope[r] = static_cast<uint32_t>(scope_parent_.size());
        scope_parent_.push_back(0);  // provisional; fixed up from the ingress stages below
        scope_depth_.push_back(DepthOfIndex(i));
      }
      scope_of_[i] = root_scope[r];
    }

    // Parent links: an ingress stage lives in the parent scope while its output
    // connectors live in the child; an egress stage lives in the child while its output
    // connectors live in the parent. Both must agree.
    for (StageId s = 0; s < num_stages(); ++s) {
      const StageDef& def = stages_[s];
      const uint32_t stage_scope = scope_of_[LocationIndex(Location::Stage(s))];
      for (const auto& port : def.outputs) {
        for (ConnectorId o : port) {
          const uint32_t conn_scope = scope_of_[LocationIndex(Location::Connector(o))];
          if (def.action == TimestampAction::kIngress) {
            NAIAD_CHECK(scope_parent_[conn_scope] == 0 ||
                        scope_parent_[conn_scope] == stage_scope)
                << "loop scope with two distinct ingress parents";
            scope_parent_[conn_scope] = stage_scope;
          } else if (def.action == TimestampAction::kEgress) {
            NAIAD_CHECK(scope_parent_[stage_scope] == 0 ||
                        scope_parent_[stage_scope] == conn_scope)
                << "loop scope egressing into two distinct parents";
            scope_parent_[stage_scope] = conn_scope;
          }
        }
      }
    }
    for (uint32_t sc = 1; sc < num_scopes(); ++sc) {
      NAIAD_CHECK(scope_depth_[scope_parent_[sc]] + 1 == scope_depth_[sc] ||
                  (scope_parent_[sc] == 0 && scope_depth_[sc] >= 1))
          << "scope parent depth mismatch";
    }

    // Exit locations per scope: the output connectors of its egress stages.
    std::vector<std::vector<Location>> exits(num_scopes());
    for (StageId s = 0; s < num_stages(); ++s) {
      if (stages_[s].action != TimestampAction::kEgress) {
        continue;
      }
      const uint32_t sc = scope_of_[LocationIndex(Location::Stage(s))];
      for (const auto& port : stages_[s].outputs) {
        for (ConnectorId o : port) {
          exits[sc].push_back(Location::Connector(o));
        }
      }
    }

    // Per-location projections onto the owning scope's exits, read straight out of Ψ.
    projections_.assign(n, {});
    for (uint32_t i = 0; i < n; ++i) {
      const uint32_t sc = scope_of_[i];
      if (sc == 0) {
        continue;
      }
      const Location l =
          i < num_stages() ? Location::Stage(i) : Location::Connector(i - num_stages());
      for (const Location& e : exits[sc]) {
        const SummaryAntichain& a = psi_[static_cast<size_t>(i) * n + LocationIndex(e)];
        if (!a.elements().empty()) {
          projections_[i].push_back(BoundaryProjection{e, a});
        }
      }
    }
  }

  std::atomic<bool> frozen_{false};
  std::vector<StageDef> stages_;
  std::vector<ConnectorDef> connectors_;
  std::vector<SummaryAntichain> psi_;

  // Scope tree, valid once frozen. scope_of_ is indexed by LocationIndex; parent/depth by
  // scope id (0 = root).
  std::vector<uint32_t> scope_of_;
  std::vector<uint32_t> scope_parent_;
  std::vector<uint32_t> scope_depth_;
  std::vector<std::vector<BoundaryProjection>> projections_;
};

}  // namespace naiad

#endif  // SRC_CORE_GRAPH_H_
