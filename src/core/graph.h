// The logical dataflow graph (§3.1): stages linked by typed connectors, organized into
// nested loop contexts, plus the all-pairs minimal-path-summary matrix Ψ used to evaluate
// the could-result-in relation on (projected) pointstamps.
//
// The graph is built by the typed layer in stage.h/loop.h; this header is type-agnostic —
// record types appear only as type-erased hooks (partitioner, deliver, codec) stored on
// each connector.

#ifndef SRC_CORE_GRAPH_H_
#define SRC_CORE_GRAPH_H_

#include <any>
#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "src/base/logging.h"
#include "src/core/location.h"
#include "src/core/path_summary.h"
#include "src/core/timestamp.h"
#include "src/ser/bytes.h"

namespace naiad {

class VertexBase;
class WorkItemBase;
class Controller;

// What a stage does to the timestamps of messages passing through it (§2.1).
enum class TimestampAction : uint8_t { kNone, kIngress, kEgress, kFeedback };

struct StageDef {
  std::string name;
  uint32_t depth = 0;  // loop-nesting depth of the stage's *inputs*
  TimestampAction action = TimestampAction::kNone;
  uint32_t parallelism = 1;  // number of physical vertices across the whole cluster
  bool is_input = false;     // external producer stage (§2.1): no vertices, only a location
  uint64_t feedback_limit = 0;  // kFeedback only: drop records at iterations >= limit (0 = none)
  uint32_t reentrancy = 0;   // max re-entrant OnRecv depth for same-worker sends (§3.2)

  // Vertex instantiation (typed layer): create local vertex `index`, then wire its outlets.
  std::function<std::unique_ptr<VertexBase>(Controller*, uint32_t index)> factory;
  std::function<void(Controller*, VertexBase*)> wire_outputs;

  // Notifications each vertex should hold before the computation starts (epoch 0 based).
  std::vector<Timestamp> initial_notifications;

  std::vector<ConnectorId> inputs;                 // all inbound connectors
  std::vector<std::vector<ConnectorId>> outputs;   // per output port: fanout list

  uint32_t output_depth() const {
    switch (action) {
      case TimestampAction::kIngress:
        return depth + 1;
      case TimestampAction::kEgress:
        NAIAD_CHECK(depth >= 1);
        return depth - 1;
      default:
        return depth;
    }
  }

  PathSummary ActionSummary() const {
    switch (action) {
      case TimestampAction::kNone:
        return PathSummary::Identity(depth);
      case TimestampAction::kIngress:
        return PathSummary::Ingress(depth);
      case TimestampAction::kEgress:
        return PathSummary::Egress(depth);
      case TimestampAction::kFeedback:
        return PathSummary::Feedback(depth);
    }
    NAIAD_CHECK(false);
    return {};
  }
};

struct ConnectorDef {
  ConnectorId id = 0;
  StageId src = 0;
  uint32_t src_port = 0;
  StageId dst = 0;
  uint32_t dst_port = 0;
  uint32_t depth = 0;  // == src.output_depth() == dst.depth

  // std::function<uint64_t(const T&)> — empty when the connector does not exchange.
  std::any partitioner;
  // std::function<void(VertexBase*, const Timestamp&, std::vector<T>&&)>.
  std::any deliver;

  // Cross-process support; null when T has no Codec (then the graph must be single-process)
  // or installed lazily by the typed layer.
  // encode_batch serializes `static_cast<const std::vector<T>*>(batch)` into `w`.
  std::function<void(ByteWriter& w, const void* batch)> encode_batch;
  // decode_batch builds a ready-to-run work item for `target` from the wire bytes.
  std::function<std::unique_ptr<WorkItemBase>(ByteReader& r, const Timestamp& t,
                                              VertexBase* target)>
      decode_batch;
};

class LogicalGraph {
 public:
  StageId AddStage(StageDef def) {
    NAIAD_CHECK(!frozen());
    def.outputs.resize(1);  // every stage gets at least one output port slot
    stages_.push_back(std::move(def));
    return static_cast<StageId>(stages_.size() - 1);
  }

  ConnectorId AddConnector(ConnectorDef def) {
    NAIAD_CHECK(!frozen());
    NAIAD_CHECK(def.src < stages_.size() && def.dst < stages_.size());
    StageDef& src = stages_[def.src];
    StageDef& dst = stages_[def.dst];
    NAIAD_CHECK(src.output_depth() == dst.depth);
    def.depth = dst.depth;
    def.id = static_cast<ConnectorId>(connectors_.size());
    if (src.outputs.size() <= def.src_port) {
      src.outputs.resize(def.src_port + 1);
    }
    src.outputs[def.src_port].push_back(def.id);
    dst.inputs.push_back(def.id);
    connectors_.push_back(std::move(def));
    return connectors_.back().id;
  }

  const StageDef& stage(StageId s) const { return stages_[s]; }
  StageDef& mutable_stage(StageId s) {
    NAIAD_CHECK(!frozen());
    return stages_[s];
  }
  const ConnectorDef& connector(ConnectorId c) const { return connectors_[c]; }
  ConnectorDef& mutable_connector(ConnectorId c) {
    NAIAD_CHECK(!frozen());
    return connectors_[c];
  }

  uint32_t num_stages() const { return static_cast<uint32_t>(stages_.size()); }
  uint32_t num_connectors() const { return static_cast<uint32_t>(connectors_.size()); }
  uint32_t num_locations() const { return num_stages() + num_connectors(); }
  // Acquire-ordered: in distributed mode, network receive threads may probe the graph
  // while the SPMD body thread is still freezing it; a true result publishes psi_.
  bool frozen() const { return frozen_.load(std::memory_order_acquire); }

  uint32_t LocationIndex(const Location& l) const {
    return l.is_stage() ? l.id : num_stages() + l.id;
  }

  uint32_t LocationDepth(const Location& l) const {
    return l.is_stage() ? stages_[l.id].depth : connectors_[l.id].depth;
  }

  // Freezes the graph and computes the minimal-summary matrix Ψ by worklist propagation
  // over the elementary hops (connector → destination stage with the identity summary;
  // stage → outbound connector with the stage's action summary).
  void Freeze() {
    NAIAD_CHECK(!frozen());
    const uint32_t n = num_locations();
    psi_.assign(static_cast<size_t>(n) * n, SummaryAntichain{});

    struct Hop {
      uint32_t dst;
      PathSummary summary;
    };
    std::vector<std::vector<Hop>> hops(n);
    for (const ConnectorDef& c : connectors_) {
      hops[LocationIndex(Location::Connector(c.id))].push_back(
          Hop{LocationIndex(Location::Stage(c.dst)), PathSummary::Identity(c.depth)});
    }
    for (StageId s = 0; s < num_stages(); ++s) {
      const PathSummary action = stages_[s].ActionSummary();
      for (const auto& port : stages_[s].outputs) {
        for (ConnectorId o : port) {
          hops[LocationIndex(Location::Stage(s))].push_back(
              Hop{LocationIndex(Location::Connector(o)), action});
        }
      }
    }

    struct Pending {
      uint32_t src;
      uint32_t via;
      PathSummary summary;
    };
    std::vector<Pending> work;
    for (uint32_t i = 0; i < n; ++i) {
      const PathSummary ident = PathSummary::Identity(DepthOfIndex(i));
      At(i, i).Insert(ident);
      work.push_back(Pending{i, i, ident});
    }
    while (!work.empty()) {
      Pending p = std::move(work.back());
      work.pop_back();
      for (const Hop& h : hops[p.via]) {
        PathSummary s = PathSummary::Compose(p.summary, h.summary);
        if (p.src == h.dst) {
          // A cycle summary mapping some timestamp at-or-before itself would deadlock the
          // scheduler; valid graphs route every cycle through a feedback stage (§2.1).
          NAIAD_CHECK(!PathSummary::Dominates(s, PathSummary::Identity(DepthOfIndex(p.src))))
              << "cycle without feedback through location index " << p.src;
        }
        if (At(p.src, h.dst).Insert(s)) {
          work.push_back(Pending{p.src, h.dst, std::move(s)});
        }
      }
    }
    frozen_.store(true, std::memory_order_release);  // publishes psi_
  }

  const SummaryAntichain& Summaries(const Location& from, const Location& to) const {
    NAIAD_CHECK(frozen());
    return psi_[static_cast<size_t>(LocationIndex(from)) * num_locations() +
                LocationIndex(to)];
  }

  // The could-result-in relation on pointstamps (§2.3): reflexive at equal pointstamps by
  // the empty path; callers decide whether to exclude p == q.
  bool CouldResultIn(const Pointstamp& a, const Pointstamp& b) const {
    return Summaries(a.loc, b.loc).CouldResultIn(a.time, b.time);
  }

 private:
  uint32_t DepthOfIndex(uint32_t i) const {
    return i < num_stages() ? stages_[i].depth : connectors_[i - num_stages()].depth;
  }
  SummaryAntichain& At(uint32_t i, uint32_t j) {
    return psi_[static_cast<size_t>(i) * num_locations() + j];
  }

  std::atomic<bool> frozen_{false};
  std::vector<StageDef> stages_;
  std::vector<ConnectorDef> connectors_;
  std::vector<SummaryAntichain> psi_;
};

}  // namespace naiad

#endif  // SRC_CORE_GRAPH_H_
