// Selective rollback recovery (Falkirk Wheel; ROADMAP item 3): the log substrate.
//
// Falkirk Wheel assigns logical times to exchanged events so that when one process dies,
// only ITS lost state is rolled back and replayed — survivors keep theirs. The mechanism
// here: every process durably logs each outbound data frame, per destination, tagged
// with its logical time (epoch timestamp + the frame's position in the log, which by
// construction equals its per-link data sequence number — the "sequence within epoch"
// of the frame). A peer's inbound history since the last checkpoint thus survives at its
// senders: after a failure each survivor re-sends its log tail to the replacement, and
// the replacement's own on-disk outbound logs tell the supervisor nothing needs — its
// regenerated sends are deduplicated at survivors by seeded sequence expectations
// (src/net/transport.h::SeedRecvExpectation).
//
// Low-watermark GC: a committed cluster checkpoint at epoch E proves every frame logged
// so far is reflected in some durable image, so RebaseAll() truncates every log — the
// watermark passes, and record index k in a log thereafter means "the k-th data frame
// sent to that peer since E", which is exactly the post-rebase sequence number the
// receiver's dedup counts. Coordinated restart remains the fallback whenever a log is
// torn past what a replacement needs (ValidateAndLoad fails) or the stall barrier can't
// establish a clean cut.

#ifndef SRC_FT_LOG_RECOVERY_H_
#define SRC_FT_LOG_RECOVERY_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "src/core/controller.h"
#include "src/ft/log.h"

namespace naiad {

class TcpTransport;

// One durably-logged outbound data frame, decoded from a log record.
struct OutboundRecord {
  ConnectorId ch = 0;
  Timestamp time;
  int64_t count = 0;            // records in the frame (the +count RouteBundle charged)
  std::vector<uint8_t> frame;   // the exact wire payload RouteBundle produced
};

// Per-destination durable append logs of this process's outbound data frames, plus the
// replay-side loaders. One instance per process per generation; installed as the
// Controller's send tap so that {log append, transport enqueue} happen under one lock —
// log order is then identical to the link's sequence numbering, which is what lets a
// receiver treat "frames received since the watermark" as a log prefix.
class OutboundLogSet {
 public:
  // Logs live at <dir>/outlog_p<self>_to_<dst>. Opening truncates (a replacement owns
  // its slot's files and starts a fresh post-checkpoint window).
  OutboundLogSet(const std::string& dir, uint32_t self, uint32_t nprocs);

  static std::string LogPath(const std::string& dir, uint32_t src, uint32_t dst);

  // The send tap body: encodes [u32 ch][Timestamp][i64 count][u32 len][frame]) as one
  // CRC-framed record, appends it durably (Sync), and forwards the frame to `transport`
  // — all under the destination's lock. CHECK-fails if the append fails: a frame sent
  // but not durably logged would make a later selective recovery silently lossy.
  void RecordAndSend(TcpTransport& transport, uint32_t dst, ConnectorId ch,
                     const Timestamp& t, int64_t count, std::vector<uint8_t>&& frame);

  // Re-sends a validated log tail after a selective stall: re-encodes and appends every
  // record (the post-stall window must list them again — record k rides link sequence k),
  // then makes the whole batch durable with ONE Sync before any frame reaches the
  // transport. Same guarantee as per-frame RecordAndSend — no frame can be on the wire
  // without a durable record covering it — amortized over the tail instead of paying one
  // fsync per frame on the recovery critical path.
  void ResendTail(TcpTransport& transport, uint32_t dst,
                  std::vector<OutboundRecord>&& tail);

  // Low-watermark GC: truncates every per-destination log (a cluster checkpoint at the
  // current frontier just committed, so everything logged is reflected in durable
  // images). Returns false if any truncation failed.
  bool RebaseAll();

  // Frames recorded toward `dst` since the last rebase.
  uint64_t records(uint32_t dst);

  // Reads back the log toward `dst` into memory, CRC-validating every record. A torn
  // tail fails validation too: the tail frame may have reached the wire (send happens
  // after the append), so a log that cannot prove what was sent cannot support a
  // selective resend — the caller falls back to coordinated restart.
  bool ValidateAndLoad(uint32_t dst, std::vector<OutboundRecord>* out);

  // Replay-side loader for a DEAD peer's on-disk outbound log toward `self` (the file
  // `LogPath(dir, src, self)`): the replacement's own inbound history is not read this
  // way (survivors re-send it), but the supervisor and tests use it to audit what a
  // victim had durably logged. Unlike ValidateAndLoad, a torn tail here is recoverable:
  // the victim died mid-append, the torn record is truncated away, and the clean prefix
  // is returned (kTornTail semantics of LogReader).
  static bool LoadPeerLog(const std::string& dir, uint32_t src, uint32_t self,
                          std::vector<OutboundRecord>* out, bool* was_torn);

  uint64_t bytes_logged() const { return bytes_logged_.load(std::memory_order_relaxed); }
  uint64_t records_logged() const {
    return records_logged_.load(std::memory_order_relaxed);
  }
  uint64_t rebases() const { return rebases_.load(std::memory_order_relaxed); }

 private:
  static bool DecodeRecord(std::span<const uint8_t> body, OutboundRecord* out);

  struct DstLog {
    std::mutex mu;                     // orders {append, enqueue} pairs
    std::unique_ptr<LogWriter> log;
    uint64_t records = 0;              // since last rebase
  };

  const std::string dir_;
  const uint32_t self_;
  std::vector<std::unique_ptr<DstLog>> dst_;  // indexed by destination; [self_] unused
  std::atomic<uint64_t> bytes_logged_{0};
  std::atomic<uint64_t> records_logged_{0};
  std::atomic<uint64_t> rebases_{0};
};

}  // namespace naiad

#endif  // SRC_FT_LOG_RECOVERY_H_
