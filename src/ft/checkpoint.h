// Fault tolerance (§3.4): Checkpoint / Restore.
//
// Checkpointing follows the paper's recipe: pause worker and delivery threads, flush the
// message queues by delivering outstanding OnRecv events, then invoke Checkpoint on each
// stateful vertex. Because the queues are drained first, the persistent image needs only
// (a) vertex state, (b) pending notification requests, and (c) the open input epochs — no
// in-flight messages exist at the capture point.
//
// Restore targets a freshly-built, not-yet-started controller with an identical graph: the
// image is applied during Start() in place of the default initial pointstamps.
//
// Scope: per-process images. Multi-process checkpointing additionally needs a global quiet
// point (the cluster termination barrier provides one); the Fig. 7c benchmark exercises
// the single-process multi-worker path, as DESIGN.md documents.

#ifndef SRC_FT_CHECKPOINT_H_
#define SRC_FT_CHECKPOINT_H_

#include <cstdint>
#include <vector>

#include "src/core/controller.h"

namespace naiad {

// Captures this process's computation state. The controller must be started; external
// producers must be quiescent for the duration (the caller's contract, §3.4).
// Worker threads are paused, drained, checkpointed, and resumed.
std::vector<uint8_t> CheckpointProcess(Controller& ctl);

// Describes one input stage's position so Restore can reopen it.
struct InputEpochs {
  StageId stage = 0;
  uint64_t next_epoch = 0;
  bool closed = false;
};

// Arranges for `ctl` (not started, same graph shape) to boot from `image` instead of from
// epoch 0. Returns the saved input positions so the caller can fast-forward its
// InputHandles (InputHandle::RestoreEpoch). Must be called before ctl.Start().
std::vector<InputEpochs> RestoreProcess(Controller& ctl, std::vector<uint8_t> image);

}  // namespace naiad

#endif  // SRC_FT_CHECKPOINT_H_
