// Fault tolerance (§3.4): Checkpoint / Restore.
//
// Checkpointing follows the paper's recipe: pause worker and delivery threads, flush the
// message queues by delivering outstanding OnRecv events, then invoke Checkpoint on each
// stateful vertex. Because the queues are drained first, the persistent image needs only
// (a) vertex state, (b) pending notification requests, and (c) the open input epochs — no
// in-flight messages exist at the capture point.
//
// Restore targets a freshly-built, not-yet-started controller with an identical graph: the
// image is applied during Start() in place of the default initial pointstamps.
//
// Scope: per-process images. Multi-process checkpointing layers a global quiet point on
// top (src/ft/cluster_recovery.h runs the checkpoint barrier of src/net/cluster.h, then
// calls CheckpointProcess on every process with a cluster-consistent epoch tag); the
// Fig. 7c benchmark exercises the single-process multi-worker path, as DESIGN.md documents.

#ifndef SRC_FT_CHECKPOINT_H_
#define SRC_FT_CHECKPOINT_H_

#include <cstdint>
#include <vector>

#include "src/core/controller.h"

namespace naiad {

// Captures this process's computation state. The controller must be started; external
// producers must be quiescent for the duration (the caller's contract, §3.4).
// Worker threads are paused, drained, checkpointed, and resumed.
std::vector<uint8_t> CheckpointProcess(Controller& ctl);

// Describes one input stage's position so Restore can reopen it.
struct InputEpochs {
  StageId stage = 0;
  uint64_t next_epoch = 0;
  bool closed = false;
};

// Arranges for `ctl` (not started, same graph shape) to boot from `image` instead of from
// epoch 0. Returns the saved input positions so the caller can fast-forward its
// InputHandles (InputHandle::RestoreEpoch). Must be called before ctl.Start().
//
// Cluster semantics: open-input pointstamps are reseeded at the full cluster-wide count
// (+processes, mirroring Start), because every process seeds the same global view. Pending
// notification requests, by contrast, are per-process local state whose +1s were broadcast
// to peers in the original run. When `restored_pending` is null (single-process restore)
// they are seeded locally like everything else. When non-null, ownership of those +1s
// transfers to the caller: they are NOT seeded at Start (only the notification requests
// are re-registered), and the caller must inject them via ProgressRouter::Broadcast after
// Start() and strictly before feeding any input — the normal broadcast channel is what
// orders them ahead of this process's next open-input retirement at every peer, and the
// restored open-input pointstamp dominates them until then (see progress_router.h).
std::vector<InputEpochs> RestoreProcess(Controller& ctl, std::vector<uint8_t> image,
                                        std::vector<ProgressUpdate>* restored_pending = nullptr);

// Selective-recovery restore: like RestoreProcess, but NOTHING is seeded into the local
// tracker at Start. Instead `seeds` (filled during Start; must outlive it) receives this
// process's own contributions — +1 per open input it hosts at its saved epoch, +1 per
// pending notification — which the caller broadcasts to every process (kCtlSeedState,
// include-self) while workers are still paused (Controller::StartPaused). Summing all
// processes' contributions reassembles the cluster-wide tracker state even though
// survivors and the replacement restart from different logical times.
std::vector<InputEpochs> RestoreProcessSelective(Controller& ctl,
                                                 std::vector<uint8_t> image,
                                                 std::vector<ProgressUpdate>* seeds);

// The no-durable-checkpoint variant for a replacement process booting from logical time
// zero under the same per-process contribution rule (epoch-0 inputs + local initial
// notifications).
void FreshStartSelective(Controller& ctl, std::vector<ProgressUpdate>* seeds);

// Parses only the input-position header of a checkpoint image (no controller needed).
// Selective recovery uses this on the survivor's in-memory stall image to detect closed
// inputs — a kill that lands during the termination barrier — and fall back to a
// coordinated restart, since a closed input cannot be reopened mid-replay.
std::vector<InputEpochs> PeekImageInputs(const std::vector<uint8_t>& image);

}  // namespace naiad

#endif  // SRC_FT_CHECKPOINT_H_
