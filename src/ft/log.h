// Continual logging (§3.4, "log data as computation proceeds"): the alternative to
// periodic full checkpoints, trading per-batch overhead for faster resumption. The Fig. 7c
// benchmark compares None / Checkpoint / Logging configurations of the same computation.

#ifndef SRC_FT_LOG_H_
#define SRC_FT_LOG_H_

#include <unistd.h>

#include <cstdio>
#include <memory>
#include <mutex>
#include <string>

#include "src/base/logging.h"
#include "src/core/stage.h"
#include "src/ser/codec.h"

namespace naiad {

// Append-only record log. Thread-safe; one instance may be shared by every vertex of a
// logged stage.
class LogWriter {
 public:
  explicit LogWriter(const std::string& path) : file_(std::fopen(path.c_str(), "wb")) {
    NAIAD_CHECK(file_ != nullptr) << "cannot open log file " << path;
  }
  ~LogWriter() {
    if (file_ != nullptr) {
      std::fclose(file_);
    }
  }
  LogWriter(const LogWriter&) = delete;
  LogWriter& operator=(const LogWriter&) = delete;

  void Append(std::span<const uint8_t> bytes) {
    std::lock_guard<std::mutex> lock(mu_);
    std::fwrite(bytes.data(), 1, bytes.size(), file_);
    bytes_written_ += bytes.size();
  }

  void Flush() {
    std::lock_guard<std::mutex> lock(mu_);
    std::fflush(file_);
  }

  // Durable flush: what "continual logging" fault tolerance actually pays per batch
  // (§3.4/§6.3) — the data must survive a process failure, not merely sit in page cache.
  void Sync() {
    std::lock_guard<std::mutex> lock(mu_);
    std::fflush(file_);
    ::fsync(fileno(file_));
  }

  uint64_t bytes_written() const {
    std::lock_guard<std::mutex> lock(mu_);
    return bytes_written_;
  }

 private:
  std::FILE* file_;
  mutable std::mutex mu_;
  uint64_t bytes_written_ = 0;
};

// Pass-through stage that durably logs every batch before forwarding it downstream.
template <typename T>
class LoggedVertex final : public UnaryVertex<T, T> {
 public:
  LoggedVertex(std::shared_ptr<LogWriter> log, bool durable)
      : log_(std::move(log)), durable_(durable) {}
  void OnRecv(const Timestamp& t, std::vector<T>& batch) override {
    ByteWriter w;
    t.Encode(w);
    Codec<std::vector<T>>::Encode(w, batch);
    log_->Append(w.buffer());
    if (durable_) {
      log_->Sync();
    } else {
      log_->Flush();
    }
    this->output().SendBatch(t, std::move(batch));
  }

 private:
  std::shared_ptr<LogWriter> log_;
  bool durable_;
};

// Inserts a logging tap on `s`, as the continual-logging fault-tolerance mode would.
template <typename T>
  requires Encodable<T>
Stream<T> Logged(const Stream<T>& s, std::shared_ptr<LogWriter> log, bool durable = true) {
  GraphBuilder& b = *s.builder;
  StageId sid = b.NewStage<LoggedVertex<T>>(
      StageOptions{.name = "logged", .depth = s.depth},
      [log, durable](uint32_t) { return std::make_unique<LoggedVertex<T>>(log, durable); });
  b.Connect<LoggedVertex<T>, T>(s, sid);
  return b.OutputOf<T>(sid);
}

}  // namespace naiad

#endif  // SRC_FT_LOG_H_
