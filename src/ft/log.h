// Continual logging (§3.4, "log data as computation proceeds"): the alternative to
// periodic full checkpoints, trading per-batch overhead for faster resumption. The Fig. 7c
// benchmark compares None / Checkpoint / Logging configurations of the same computation,
// and selective rollback recovery (src/ft/log_recovery.h) builds its per-destination
// outbound frame logs on the same writer.
//
// Durability contract: every mutation reports success. A short write, flush, or fsync
// failure latches the writer into an error state (`ok() == false`); once latched, further
// appends refuse without touching the file, so a torn record is never followed by a
// later record that would turn the tear into undetectable mid-file corruption. Replay
// (LogReader) therefore only ever has to distinguish a torn *tail* — the crash window —
// from genuine corruption, which is exactly what the CRC framing below encodes.

#ifndef SRC_FT_LOG_H_
#define SRC_FT_LOG_H_

#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "src/base/hash.h"
#include "src/base/logging.h"
#include "src/core/stage.h"
#include "src/ser/codec.h"

namespace naiad {

// Append-only record log. Thread-safe; one instance may be shared by every vertex of a
// logged stage. Two layers of API: raw Append (caller-framed bytes) and AppendRecord,
// which wraps the body in the [u32 len][u32 crc32(body)][body] frame that LogReader
// understands.
class LogWriter {
 public:
  explicit LogWriter(const std::string& path)
      : path_(path), file_(std::fopen(path.c_str(), "wb")) {
    NAIAD_CHECK(file_ != nullptr) << "cannot open log file " << path;
  }
  ~LogWriter() {
    if (file_ != nullptr) {
      std::fclose(file_);
    }
  }
  LogWriter(const LogWriter&) = delete;
  LogWriter& operator=(const LogWriter&) = delete;

  // Raw append. Returns false (and latches the error state) on a short write — fwrite
  // reporting fewer bytes than requested means the log now ends in a torn record, and
  // bytes_written_ must not advance past what actually reached the stream.
  bool Append(std::span<const uint8_t> bytes) {
    std::lock_guard<std::mutex> lock(mu_);
    return AppendLocked(bytes);
  }

  // Framed append: [u32 len][u32 crc32(body)][body], written under one lock acquisition
  // so concurrent vertices can never interleave halves of two records.
  bool AppendRecord(std::span<const uint8_t> body) {
    std::lock_guard<std::mutex> lock(mu_);
    uint8_t header[8];
    const uint32_t len = static_cast<uint32_t>(body.size());
    const uint32_t crc = Crc32(body.data(), body.size());
    std::memcpy(header, &len, 4);
    std::memcpy(header + 4, &crc, 4);
    return AppendLocked({header, sizeof(header)}) && AppendLocked(body);
  }

  bool Flush() {
    std::lock_guard<std::mutex> lock(mu_);
    if (!ok_) {
      return false;
    }
    if (std::fflush(file_) != 0) {
      ok_ = false;
    }
    return ok_;
  }

  // Durable flush: what "continual logging" fault tolerance actually pays per batch
  // (§3.4/§6.3) — the data must survive a process failure, not merely sit in page cache.
  // Propagates fflush/fsync failure: a log whose sync failed must not be treated as
  // durable (the same rule WriteCheckpointFile applies to images).
  bool Sync() {
    std::lock_guard<std::mutex> lock(mu_);
    if (!ok_) {
      return false;
    }
    if (std::fflush(file_) != 0) {
      ok_ = false;
      return false;
    }
    int rc;
    do {
      rc = ::fsync(fileno(file_));
    } while (rc != 0 && errno == EINTR);
    if (rc != 0) {
      ok_ = false;
    }
    return ok_;
  }

  // Drops every record and clears the error latch — the log-GC path once a checkpoint
  // frontier has passed everything the log covers (low-watermark truncation).
  bool Truncate() {
    std::lock_guard<std::mutex> lock(mu_);
    std::fflush(file_);
    if (::ftruncate(fileno(file_), 0) != 0) {
      ok_ = false;
      return false;
    }
    std::rewind(file_);
    bytes_written_ = 0;
    ok_ = true;
    return true;
  }

  // True until a write, flush, or sync has failed. Latched: callers that see false know
  // every record up to bytes_written() is intact and nothing after it is trustworthy.
  bool ok() const {
    std::lock_guard<std::mutex> lock(mu_);
    return ok_;
  }

  uint64_t bytes_written() const {
    std::lock_guard<std::mutex> lock(mu_);
    return bytes_written_;
  }

  const std::string& path() const { return path_; }

  // Test seam for IO failure (ENOSPC-style): consulted before each fwrite with the byte
  // count about to be written; returning false makes the write fail as a short write.
  void SetWriteFaultHook(std::function<bool(size_t)> hook) {
    std::lock_guard<std::mutex> lock(mu_);
    fault_hook_ = std::move(hook);
  }

 private:
  bool AppendLocked(std::span<const uint8_t> bytes) {
    if (!ok_) {
      return false;
    }
    if (fault_hook_ && !fault_hook_(bytes.size())) {
      ok_ = false;
      return false;
    }
    const size_t n = std::fwrite(bytes.data(), 1, bytes.size(), file_);
    bytes_written_ += n;
    if (n != bytes.size()) {
      ok_ = false;
      return false;
    }
    return true;
  }

  const std::string path_;
  std::FILE* file_;
  mutable std::mutex mu_;
  uint64_t bytes_written_ = 0;
  bool ok_ = true;
  std::function<bool(size_t)> fault_hook_;
};

// Reads back a log of AppendRecord-framed records.
//
// Tail discipline: a record whose header or body is cut off by EOF, or whose CRC fails
// on the *final* record, is a torn tail — the crash window between fwrite and fsync —
// and replay recovers the clean prefix. A CRC failure on a record with further data
// after it cannot be a crash artifact (the writer latches its error state and never
// appends past a failure), so it is reported as corruption.
class LogReader {
 public:
  enum class Status {
    kOk = 0,        // every record parsed and CRC-verified to EOF
    kTornTail = 1,  // trailing partial/mangled record dropped; prefix returned
    kCorrupt = 2,   // CRC mismatch mid-file: the log is not trustworthy
    kIoError = 3,   // could not open/read the file
  };

  // Appends each record body to `out` in log order. When `clean_prefix_bytes` is
  // non-null it receives the byte offset of the end of the last intact record, so a
  // caller recovering from kTornTail can truncate the file back to a clean boundary.
  static Status ReadAll(const std::string& path, std::vector<std::vector<uint8_t>>* out,
                        uint64_t* clean_prefix_bytes = nullptr) {
    std::FILE* f = std::fopen(path.c_str(), "rb");
    if (f == nullptr) {
      return Status::kIoError;
    }
    uint64_t clean = 0;
    Status st = Status::kOk;
    for (;;) {
      uint8_t header[8];
      const size_t hn = std::fread(header, 1, sizeof(header), f);
      if (hn == 0) {
        break;  // clean EOF at a record boundary
      }
      if (hn != sizeof(header)) {
        st = Status::kTornTail;
        break;
      }
      uint32_t len;
      uint32_t crc;
      std::memcpy(&len, header, 4);
      std::memcpy(&crc, header + 4, 4);
      std::vector<uint8_t> body(len);
      const size_t bn = len == 0 ? 0 : std::fread(body.data(), 1, len, f);
      if (bn != len) {
        st = Status::kTornTail;
        break;
      }
      if (Crc32(body.data(), body.size()) != crc) {
        // At EOF this is a torn body whose length happened to survive; mid-file it is
        // corruption (the writer never appends past a failed record).
        const int c = std::fgetc(f);
        st = c == EOF ? Status::kTornTail : Status::kCorrupt;
        break;
      }
      clean += sizeof(header) + len;
      out->push_back(std::move(body));
    }
    std::fclose(f);
    if (clean_prefix_bytes != nullptr) {
      *clean_prefix_bytes = clean;
    }
    return st;
  }

  // Truncates a torn log back to its clean prefix so a later reader sees kOk.
  static bool TruncateTo(const std::string& path, uint64_t bytes) {
    int rc;
    do {
      rc = ::truncate(path.c_str(), static_cast<off_t>(bytes));
    } while (rc != 0 && errno == EINTR);
    return rc == 0;
  }
};

// Pass-through stage that durably logs every batch before forwarding it downstream.
// Batches are CRC-framed (AppendRecord) so a crash between the append and the
// downstream send leaves a tail that replay can recognize and truncate instead of an
// un-CRC'd splice that poisons the whole log.
template <typename T>
class LoggedVertex final : public UnaryVertex<T, T> {
 public:
  LoggedVertex(std::shared_ptr<LogWriter> log, bool durable)
      : log_(std::move(log)), durable_(durable) {}
  void OnRecv(const Timestamp& t, std::vector<T>& batch) override {
    ByteWriter w;
    t.Encode(w);
    Codec<std::vector<T>>::Encode(w, batch);
    NAIAD_CHECK(log_->AppendRecord(w.buffer()))
        << "log append failed at " << log_->path() << " (" << log_->bytes_written()
        << " bytes in)";
    if (durable_) {
      NAIAD_CHECK(log_->Sync()) << "durable log sync failed at " << log_->path();
    } else {
      log_->Flush();
    }
    this->output().SendBatch(t, std::move(batch));
  }

 private:
  std::shared_ptr<LogWriter> log_;
  bool durable_;
};

// Inserts a logging tap on `s`, as the continual-logging fault-tolerance mode would.
template <typename T>
  requires Encodable<T>
Stream<T> Logged(const Stream<T>& s, std::shared_ptr<LogWriter> log, bool durable = true) {
  GraphBuilder& b = *s.builder;
  StageId sid = b.NewStage<LoggedVertex<T>>(
      StageOptions{.name = "logged", .depth = s.depth},
      [log, durable](uint32_t) { return std::make_unique<LoggedVertex<T>>(log, durable); });
  b.Connect<LoggedVertex<T>, T>(s, sid);
  return b.OutputOf<T>(sid);
}

}  // namespace naiad

#endif  // SRC_FT_LOG_H_
