#include "src/ft/log_recovery.h"

#include "src/net/transport.h"
#include "src/ser/bytes.h"

namespace naiad {

OutboundLogSet::OutboundLogSet(const std::string& dir, uint32_t self, uint32_t nprocs)
    : dir_(dir), self_(self) {
  dst_.resize(nprocs);
  for (uint32_t d = 0; d < nprocs; ++d) {
    if (d == self) {
      continue;
    }
    dst_[d] = std::make_unique<DstLog>();
    dst_[d]->log = std::make_unique<LogWriter>(LogPath(dir, self, d));
  }
}

std::string OutboundLogSet::LogPath(const std::string& dir, uint32_t src, uint32_t dst) {
  return dir + "/outlog_p" + std::to_string(src) + "_to_" + std::to_string(dst);
}

void OutboundLogSet::RecordAndSend(TcpTransport& transport, uint32_t dst, ConnectorId ch,
                                   const Timestamp& t, int64_t count,
                                   std::vector<uint8_t>&& frame) {
  DstLog& d = *dst_[dst];
  ByteWriter w;
  w.WriteU32(ch);
  t.Encode(w);
  w.WriteI64(count);
  w.WriteU32(static_cast<uint32_t>(frame.size()));
  w.WriteBytes(frame.data(), frame.size());
  std::lock_guard<std::mutex> lock(d.mu);
  // Durable-before-send, under the same lock the transport enqueue happens under: the
  // log must (a) cover every frame that could have reached the wire and (b) list frames
  // in exactly the order the sender numbers them. A failed append here would leave a
  // future selective recovery silently lossy, so it is fatal.
  NAIAD_CHECK(d.log->AppendRecord(w.buffer()) && d.log->Sync())
      << "outbound log append failed toward process " << dst << " at "
      << d.log->path();
  ++d.records;
  records_logged_.fetch_add(1, std::memory_order_relaxed);
  bytes_logged_.fetch_add(w.size(), std::memory_order_relaxed);
  transport.SendBundle(dst, std::move(frame));
}

void OutboundLogSet::ResendTail(TcpTransport& transport, uint32_t dst,
                                std::vector<OutboundRecord>&& tail) {
  DstLog& d = *dst_[dst];
  std::lock_guard<std::mutex> lock(d.mu);
  for (const OutboundRecord& rec : tail) {
    ByteWriter w;
    w.WriteU32(rec.ch);
    rec.time.Encode(w);
    w.WriteI64(rec.count);
    w.WriteU32(static_cast<uint32_t>(rec.frame.size()));
    w.WriteBytes(rec.frame.data(), rec.frame.size());
    NAIAD_CHECK(d.log->AppendRecord(w.buffer()))
        << "resend re-log failed toward process " << dst << " at " << d.log->path();
    ++d.records;
    records_logged_.fetch_add(1, std::memory_order_relaxed);
    bytes_logged_.fetch_add(w.size(), std::memory_order_relaxed);
  }
  NAIAD_CHECK(d.log->Sync()) << "resend re-log sync failed at " << d.log->path();
  for (OutboundRecord& rec : tail) {
    transport.SendBundle(dst, std::move(rec.frame));
  }
}

bool OutboundLogSet::RebaseAll() {
  bool ok = true;
  for (auto& d : dst_) {
    if (d == nullptr) {
      continue;
    }
    std::lock_guard<std::mutex> lock(d->mu);
    ok = d->log->Truncate() && ok;
    d->records = 0;
  }
  rebases_.fetch_add(1, std::memory_order_relaxed);
  return ok;
}

uint64_t OutboundLogSet::records(uint32_t dst) {
  DstLog& d = *dst_[dst];
  std::lock_guard<std::mutex> lock(d.mu);
  return d.records;
}

bool OutboundLogSet::DecodeRecord(std::span<const uint8_t> body, OutboundRecord* out) {
  ByteReader r(body);
  out->ch = r.ReadU32();
  if (!out->time.Decode(r)) {
    return false;
  }
  out->count = r.ReadI64();
  const uint32_t len = r.ReadU32();
  if (!r.ok() || r.remaining() != len) {
    return false;
  }
  out->frame.resize(len);
  return r.ReadBytes(out->frame.data(), len);
}

bool OutboundLogSet::ValidateAndLoad(uint32_t dst, std::vector<OutboundRecord>* out) {
  DstLog& d = *dst_[dst];
  std::lock_guard<std::mutex> lock(d.mu);
  if (!d.log->ok() || !d.log->Flush()) {
    return false;
  }
  std::vector<std::vector<uint8_t>> raw;
  if (LogReader::ReadAll(d.log->path(), &raw) != LogReader::Status::kOk) {
    // A live writer's log must read clean end to end; a torn tail means the final frame
    // may have reached the wire without a provable record of it — no selective resend.
    return false;
  }
  if (raw.size() != d.records) {
    return false;
  }
  out->clear();
  out->reserve(raw.size());
  for (const auto& body : raw) {
    OutboundRecord rec;
    if (!DecodeRecord(body, &rec)) {
      return false;
    }
    out->push_back(std::move(rec));
  }
  return true;
}

bool OutboundLogSet::LoadPeerLog(const std::string& dir, uint32_t src, uint32_t self,
                                 std::vector<OutboundRecord>* out, bool* was_torn) {
  std::vector<std::vector<uint8_t>> raw;
  uint64_t clean_prefix = 0;
  const LogReader::Status st = LogReader::ReadAll(LogPath(dir, src, self), &raw,
                                                  &clean_prefix);
  if (was_torn != nullptr) {
    *was_torn = st == LogReader::Status::kTornTail;
  }
  if (st == LogReader::Status::kTornTail) {
    // The victim died mid-append; the torn record was never fully durable. Truncate so
    // later readers see a clean log, and return the provable prefix.
    LogReader::TruncateTo(LogPath(dir, src, self), clean_prefix);
  } else if (st != LogReader::Status::kOk) {
    return false;
  }
  out->clear();
  out->reserve(raw.size());
  for (const auto& body : raw) {
    OutboundRecord rec;
    if (!DecodeRecord(body, &rec)) {
      return false;
    }
    out->push_back(std::move(rec));
  }
  return true;
}

}  // namespace naiad
