#include "src/ft/checkpoint.h"

#include <map>

#include "src/base/logging.h"
#include "src/core/worker.h"
#include "src/ser/bytes.h"

namespace naiad {

namespace {
constexpr uint32_t kMagic = 0x4e414944;  // "NAID"
}  // namespace

std::vector<uint8_t> CheckpointProcess(Controller& ctl) {
  NAIAD_CHECK(ctl.started());
  const uint64_t span_t0 = obs::MonotonicNs();
  ctl.PauseAndDrain();

  ByteWriter w;
  w.WriteU32(kMagic);

  // (a) Open input epochs, from the controller's local producer positions. These must NOT
  // be recovered from the tracker's active pointstamps: the tracker is cluster-wide, and
  // at a selective-recovery stall the dead victim's open-input pointstamp (stuck at an
  // older epoch) is still active at the same location — scanning actives would record the
  // victim's position as ours and make the survivor re-feed epochs it already ran. At a
  // coordinated quiet point the two views agree, so this is strictly more precise.
  const std::vector<StageId>& inputs = ctl.input_stages();
  w.WriteU32(static_cast<uint32_t>(inputs.size()));
  for (StageId s : inputs) {
    const Controller::LocalInputState in = ctl.local_input_state(s);
    w.WriteU32(s);
    w.WriteU8(in.closed ? 0 : 1);
    w.WriteU64(in.closed ? 0 : in.next_epoch);
  }

  // (b) Vertex state, length-prefixed so a vertex that writes nothing stays cheap.
  const auto vertices = ctl.LocalVertices();
  w.WriteU32(static_cast<uint32_t>(vertices.size()));
  for (const auto& [addr, v] : vertices) {
    w.WriteU32(addr.stage);
    w.WriteU32(addr.index);
    const size_t len_at = w.size();
    w.WriteU32(0);
    const size_t body_at = w.size();
    v->Checkpoint(w);
    w.PatchU32(len_at, static_cast<uint32_t>(w.size() - body_at));
  }

  // (c) Pending notification requests (the queues themselves are empty after the drain).
  std::vector<std::pair<VertexAddress, Timestamp>> pending;
  for (uint32_t i = 0; i < ctl.config().workers_per_process; ++i) {
    for (const Worker::PendingNotify& n : ctl.worker(i).pending_notifications()) {
      pending.emplace_back(n.vertex->address(), n.time);
    }
  }
  w.WriteU32(static_cast<uint32_t>(pending.size()));
  for (const auto& [addr, t] : pending) {
    w.WriteU32(addr.stage);
    w.WriteU32(addr.index);
    t.Encode(w);
  }

  ctl.Resume();
  if (ctl.obs().tracer().enabled()) {
    ctl.obs().tracer().ControlSpan(obs::TraceKind::kCheckpoint, span_t0, obs::MonotonicNs(),
                                   w.size(), 0, 0);
  }
  return std::move(w.buffer());
}

std::vector<InputEpochs> RestoreProcess(Controller& ctl, std::vector<uint8_t> image,
                                        std::vector<ProgressUpdate>* restored_pending) {
  NAIAD_CHECK(!ctl.started());
  ByteReader r(image);
  NAIAD_CHECK(r.ReadU32() == kMagic) << "not a checkpoint image";
  std::vector<InputEpochs> inputs(r.ReadU32());
  for (InputEpochs& in : inputs) {
    in.stage = r.ReadU32();
    const bool open = r.ReadU8() != 0;
    const uint64_t epoch = r.ReadU64();
    in.next_epoch = open ? epoch : 0;
    in.closed = !open;
  }
  NAIAD_CHECK(r.ok());
  if (restored_pending != nullptr) {
    // Skim ahead to the pending-notification section so the caller has the peer-bound
    // updates before Start() (vertex bodies are opaque; skip by their length prefixes).
    restored_pending->clear();
    ByteReader skim = r;
    const uint32_t n_vertices = skim.ReadU32();
    for (uint32_t i = 0; i < n_vertices && skim.ok(); ++i) {
      skim.ReadU32();
      skim.ReadU32();
      const uint32_t len = skim.ReadU32();
      NAIAD_CHECK(skim.ok() && skim.remaining() >= len);
      for (uint32_t skip = 0; skip < len; ++skip) {
        skim.ReadU8();
      }
    }
    const uint32_t n_pending = skim.ReadU32();
    for (uint32_t i = 0; i < n_pending; ++i) {
      const StageId s = skim.ReadU32();
      skim.ReadU32();  // vertex index: the tracker counts per-location, not per-vertex
      Timestamp t;
      NAIAD_CHECK(t.Decode(skim));
      restored_pending->push_back(
          ProgressUpdate{Pointstamp{t, Location::Stage(s)}, +1});
    }
    NAIAD_CHECK(skim.ok());
  }

  // With a non-null restored_pending the pending +1s are deferred to the caller's
  // post-Start Broadcast (see checkpoint.h); only the requests themselves are re-created.
  const bool defer_pending = restored_pending != nullptr;
  ctl.SetStartOverride([image = std::move(image), inputs, defer_pending](
                           Controller& c, ProgressBuffer& updates) {
    const uint64_t span_t0 = obs::MonotonicNs();
    ByteReader r(image);
    NAIAD_CHECK(r.ReadU32() == kMagic);
    const uint32_t n_inputs = r.ReadU32();
    for (uint32_t i = 0; i < n_inputs; ++i) {
      const StageId s = r.ReadU32();
      const bool open = r.ReadU8() != 0;
      const uint64_t epoch = r.ReadU64();
      if (open) {
        // Mirror Start(): one active pointstamp per external producer, one per process,
        // seeded at the full cluster-wide count on every process (never broadcast).
        updates.Add(Pointstamp{Timestamp(epoch), Location::Stage(s)},
                    static_cast<int64_t>(c.config().processes));
      }
    }
    const uint32_t n_vertices = r.ReadU32();
    for (uint32_t i = 0; i < n_vertices; ++i) {
      const StageId s = r.ReadU32();
      const uint32_t index = r.ReadU32();
      const uint32_t len = r.ReadU32();
      NAIAD_CHECK(r.ok() && r.remaining() >= len);
      VertexBase* v = c.LocalVertex(s, index);
      NAIAD_CHECK(v != nullptr) << "checkpoint does not match graph: stage " << s;
      ByteReader body(std::span<const uint8_t>(image.data() + (image.size() - r.remaining()),
                                               len));
      NAIAD_CHECK(v->Restore(body));
      for (uint32_t skip = 0; skip < len; ++skip) {
        r.ReadU8();
      }
    }
    const uint32_t n_pending = r.ReadU32();
    for (uint32_t i = 0; i < n_pending; ++i) {
      const StageId s = r.ReadU32();
      const uint32_t index = r.ReadU32();
      Timestamp t;
      NAIAD_CHECK(t.Decode(r));
      VertexBase* v = c.LocalVertex(s, index);
      NAIAD_CHECK(v != nullptr);
      v->worker().AddNotificationRequest(v, t);
      if (!defer_pending) {
        updates.Add(Pointstamp{t, Location::Stage(s)}, +1);
      }
    }
    NAIAD_CHECK(r.ok());
    if (c.obs().tracer().enabled()) {
      c.obs().tracer().ControlSpan(obs::TraceKind::kRestore, span_t0, obs::MonotonicNs(),
                                   image.size(), 0, 0);
    }
  });
  return inputs;
}

// ---- Selective recovery (Falkirk Wheel) restore variants -----------------------------
//
// Under selective recovery every process rebuilds its tracker from scratch after a
// failure, and the cluster-wide state is reassembled by SUMMING per-process seed
// contributions exchanged over the control plane (kCtlSeedState) — processes restart
// from different logical times (survivors at their stall point, the replacement at the
// last durable checkpoint), so the symmetric everyone-seeds-the-same-view rule of
// RestoreProcess cannot apply. Each process therefore contributes only what it OWNS:
// +1 per open input it hosts (at its own epoch position) and +1 per pending
// notification of its local vertices. The caller broadcasts `seeds` to every process
// (including itself) before releasing the paused workers.

std::vector<InputEpochs> PeekImageInputs(const std::vector<uint8_t>& image) {
  ByteReader r(image);
  NAIAD_CHECK(r.ReadU32() == kMagic) << "not a checkpoint image";
  std::vector<InputEpochs> inputs(r.ReadU32());
  for (InputEpochs& in : inputs) {
    in.stage = r.ReadU32();
    const bool open = r.ReadU8() != 0;
    const uint64_t epoch = r.ReadU64();
    in.next_epoch = open ? epoch : 0;
    in.closed = !open;
  }
  NAIAD_CHECK(r.ok());
  return inputs;
}

std::vector<InputEpochs> RestoreProcessSelective(Controller& ctl,
                                                 std::vector<uint8_t> image,
                                                 std::vector<ProgressUpdate>* seeds) {
  NAIAD_CHECK(!ctl.started() && seeds != nullptr);
  seeds->clear();
  std::vector<InputEpochs> inputs = PeekImageInputs(image);

  ctl.SetStartOverride([image = std::move(image), seeds](Controller& c,
                                                         ProgressBuffer& updates) {
    (void)updates;  // nothing is seeded locally; the seed exchange applies everything
    const uint64_t span_t0 = obs::MonotonicNs();
    ByteReader r(image);
    NAIAD_CHECK(r.ReadU32() == kMagic);
    const uint32_t n_inputs = r.ReadU32();
    for (uint32_t i = 0; i < n_inputs; ++i) {
      const StageId s = r.ReadU32();
      const bool open = r.ReadU8() != 0;
      const uint64_t epoch = r.ReadU64();
      if (open) {
        // This process's own producer handle only: +1, not +processes.
        seeds->push_back(
            ProgressUpdate{Pointstamp{Timestamp(epoch), Location::Stage(s)}, +1});
      }
    }
    const uint32_t n_vertices = r.ReadU32();
    for (uint32_t i = 0; i < n_vertices; ++i) {
      const StageId s = r.ReadU32();
      const uint32_t index = r.ReadU32();
      const uint32_t len = r.ReadU32();
      NAIAD_CHECK(r.ok() && r.remaining() >= len);
      VertexBase* v = c.LocalVertex(s, index);
      NAIAD_CHECK(v != nullptr) << "checkpoint does not match graph: stage " << s;
      ByteReader body(
          std::span<const uint8_t>(image.data() + (image.size() - r.remaining()), len));
      NAIAD_CHECK(v->Restore(body));
      for (uint32_t skip = 0; skip < len; ++skip) {
        r.ReadU8();
      }
    }
    const uint32_t n_pending = r.ReadU32();
    for (uint32_t i = 0; i < n_pending; ++i) {
      const StageId s = r.ReadU32();
      const uint32_t index = r.ReadU32();
      Timestamp t;
      NAIAD_CHECK(t.Decode(r));
      VertexBase* v = c.LocalVertex(s, index);
      NAIAD_CHECK(v != nullptr);
      v->worker().AddNotificationRequest(v, t);
      seeds->push_back(ProgressUpdate{Pointstamp{t, Location::Stage(s)}, +1});
    }
    NAIAD_CHECK(r.ok());
    if (c.obs().tracer().enabled()) {
      c.obs().tracer().ControlSpan(obs::TraceKind::kRestore, span_t0, obs::MonotonicNs(),
                                   image.size(), 0, 0);
    }
  });
  return inputs;
}

void FreshStartSelective(Controller& ctl, std::vector<ProgressUpdate>* seeds) {
  NAIAD_CHECK(!ctl.started() && seeds != nullptr);
  seeds->clear();
  // A replacement with no durable checkpoint boots from logical time zero, but still
  // under the per-process contribution rule: its own epoch-0 producer handles and the
  // initial notifications of its LOCAL vertices (normal Start seeds the cluster-wide
  // counts locally on every process; here each owner contributes its share instead).
  ctl.SetStartOverride([seeds](Controller& c, ProgressBuffer& updates) {
    (void)updates;
    const LogicalGraph& g = c.graph();
    for (StageId s = 0; s < g.num_stages(); ++s) {
      const StageDef& def = g.stage(s);
      if (def.is_input) {
        seeds->push_back(
            ProgressUpdate{Pointstamp{Timestamp(0), Location::Stage(s)}, +1});
        continue;
      }
      if (!def.factory || def.initial_notifications.empty()) {
        continue;
      }
      for (uint32_t v = 0; v < def.parallelism; ++v) {
        if (!c.VertexIsLocal(v)) {
          continue;
        }
        VertexBase* vert = c.LocalVertex(s, v);
        NAIAD_CHECK(vert != nullptr);
        for (const Timestamp& t : def.initial_notifications) {
          vert->worker().AddNotificationRequest(vert, t);
          seeds->push_back(ProgressUpdate{Pointstamp{t, Location::Stage(s)}, +1});
        }
      }
    }
  });
}

}  // namespace naiad
