#include "src/ft/recovery.h"

#include <fcntl.h>
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <thread>

#include "src/base/hash.h"
#include "src/base/logging.h"
#include "src/base/rng.h"

namespace naiad {

namespace {

// Retries fsync across EINTR; false on any other failure.
bool FsyncFd(int fd) {
  while (::fsync(fd) != 0) {
    if (errno != EINTR) {
      return false;
    }
  }
  return true;
}

// fsyncs the directory containing `path`. A rename is only durable once the directory
// entry it rewrote is on disk; without this, a power loss after the rename can roll the
// directory back to the old (or no) entry even though the data blocks survived.
bool FsyncParentDir(const std::string& path) {
  const size_t slash = path.find_last_of('/');
  const std::string dir =
      slash == std::string::npos ? "." : (slash == 0 ? "/" : path.substr(0, slash));
  int dfd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (dfd < 0) {
    return false;
  }
  const bool ok = FsyncFd(dfd);
  ::close(dfd);
  return ok;
}

// Trailing footer of every published image: CRC-32 of the payload, then a magic word, both
// little-endian u32. The magic distinguishes "pre-footer-era file" (and arbitrary garbage)
// from "footer present but CRC mismatched" — both are kCorrupt, but the check order
// matters: verify the magic first so random tail bytes are never treated as a CRC.
constexpr uint32_t kFooterMagic = 0x4b504843u;  // "CHPK"
constexpr size_t kFooterBytes = 8;

void PutU32(uint8_t* out, uint32_t v) {
  out[0] = static_cast<uint8_t>(v);
  out[1] = static_cast<uint8_t>(v >> 8);
  out[2] = static_cast<uint8_t>(v >> 16);
  out[3] = static_cast<uint8_t>(v >> 24);
}

uint32_t GetU32(const uint8_t* in) {
  return static_cast<uint32_t>(in[0]) | static_cast<uint32_t>(in[1]) << 8 |
         static_cast<uint32_t>(in[2]) << 16 | static_cast<uint32_t>(in[3]) << 24;
}

bool WriteAllFd(int fd, const uint8_t* data, size_t len) {
  size_t off = 0;
  while (off < len) {
    ssize_t n = ::write(fd, data + off, len - off);
    if (n < 0) {
      if (errno == EINTR) {
        continue;
      }
      return false;
    }
    off += static_cast<size_t>(n);
  }
  return true;
}

}  // namespace

bool WriteCheckpointFile(const std::string& path, std::span<const uint8_t> image) {
  const std::string tmp = path + ".tmp";
  int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) {
    return false;
  }
  uint8_t footer[kFooterBytes];
  PutU32(footer, Crc32(image.data(), image.size()));
  PutU32(footer + 4, kFooterMagic);
  if (!WriteAllFd(fd, image.data(), image.size()) ||
      !WriteAllFd(fd, footer, sizeof(footer))) {
    ::close(fd);
    ::unlink(tmp.c_str());
    return false;
  }
  // The rename is the publication point; fsync first so a kill after the rename cannot
  // leave a name pointing at unwritten data. The fd is closed unconditionally — the old
  // short-circuited `fsync || close || rename` chain leaked it when fsync failed.
  bool flushed = FsyncFd(fd);
  if (::close(fd) != 0) {
    flushed = false;
  }
  if (!flushed || ::rename(tmp.c_str(), path.c_str()) != 0) {
    ::unlink(tmp.c_str());
    return false;
  }
  // The rename alone is atomic but not durable: fsync the parent directory so the
  // published entry survives power loss. If this fails the image is visible but not
  // provably durable, and callers must treat the publish as failed.
  return FsyncParentDir(path);
}

CheckpointReadResult ReadCheckpointFileEx(const std::string& path) {
  CheckpointReadResult res;
  int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    res.status = errno == ENOENT ? CheckpointReadStatus::kAbsent
                                 : CheckpointReadStatus::kIoError;
    return res;
  }
  std::vector<uint8_t> raw;
  uint8_t buf[4096];
  for (;;) {
    ssize_t n = ::read(fd, buf, sizeof(buf));
    if (n < 0) {
      if (errno == EINTR) {
        continue;
      }
      ::close(fd);
      res.status = CheckpointReadStatus::kIoError;
      return res;
    }
    if (n == 0) {
      break;
    }
    raw.insert(raw.end(), buf, buf + n);
  }
  ::close(fd);
  if (raw.size() < kFooterBytes) {
    res.status = CheckpointReadStatus::kCorrupt;
    return res;
  }
  const uint8_t* footer = raw.data() + raw.size() - kFooterBytes;
  if (GetU32(footer + 4) != kFooterMagic ||
      GetU32(footer) != Crc32(raw.data(), raw.size() - kFooterBytes)) {
    res.status = CheckpointReadStatus::kCorrupt;
    return res;
  }
  raw.resize(raw.size() - kFooterBytes);
  res.status = CheckpointReadStatus::kOk;
  res.image = std::move(raw);
  return res;
}

std::vector<uint8_t> ReadCheckpointFile(const std::string& path) {
  return ReadCheckpointFileEx(path).image;
}

namespace {

// Pipe records: one tag byte + u64 epoch, written atomically (well under PIPE_BUF).
constexpr uint8_t kTagStarting = 1;
constexpr uint8_t kTagDurable = 2;

void WriteRecord(int fd, uint8_t tag, uint64_t epoch) {
  uint8_t rec[9];
  rec[0] = tag;
  std::memcpy(rec + 1, &epoch, sizeof(epoch));
  size_t off = 0;
  while (off < sizeof(rec)) {
    ssize_t n = ::write(fd, rec + off, sizeof(rec) - off);
    if (n < 0) {
      if (errno == EINTR) {
        continue;
      }
      return;  // driver went away; the child just keeps computing
    }
    off += static_cast<size_t>(n);
  }
}

bool ReadRecord(int fd, uint8_t* tag, uint64_t* epoch) {
  uint8_t rec[9];
  size_t off = 0;
  while (off < sizeof(rec)) {
    ssize_t n = ::read(fd, rec + off, sizeof(rec) - off);
    if (n < 0) {
      if (errno == EINTR) {
        continue;
      }
      return false;
    }
    if (n == 0) {
      return false;  // EOF: child exited
    }
    off += static_cast<size_t>(n);
  }
  *tag = rec[0];
  std::memcpy(epoch, rec + 1, sizeof(*epoch));
  return true;
}

}  // namespace

void KillRecoverDriver::Reporter::StartingEpoch(uint64_t epoch) {
  WriteRecord(fd_, kTagStarting, epoch);
}

void KillRecoverDriver::Reporter::CheckpointDurable(uint64_t epoch) {
  WriteRecord(fd_, kTagDurable, epoch);
}

KillRecoverDriver::Outcome KillRecoverDriver::Run(
    uint64_t seed, uint64_t total_epochs, const std::function<void(Reporter&)>& body) {
  NAIAD_CHECK(total_epochs >= 2) << "need at least one epoch before the kill target";
  Outcome out;
  out.kill_epoch = 1 + seed % (total_epochs - 1);
  Rng rng(HashCombine(seed, 0x4b494c4cULL));  // "KILL"
  const uint32_t kill_delay_us = static_cast<uint32_t>(rng.Below(2000));

  int fds[2];
  if (::pipe(fds) != 0) {
    return out;
  }
  pid_t pid = ::fork();
  if (pid < 0) {
    ::close(fds[0]);
    ::close(fds[1]);
    return out;
  }
  if (pid == 0) {
    // Child: run the computation, reporting over the pipe, then die without running
    // parent-process atexit/static-destructor state.
    ::close(fds[0]);
    Reporter reporter(fds[1]);
    body(reporter);
    ::_exit(0);
  }
  out.forked = true;
  ::close(fds[1]);
  uint8_t tag = 0;
  uint64_t epoch = 0;
  while (ReadRecord(fds[0], &tag, &epoch)) {
    if (tag == kTagDurable) {
      out.any_durable = true;
      out.last_durable_epoch = epoch;
    } else if (tag == kTagStarting && epoch == out.kill_epoch) {
      // Mid-epoch: the victim announced the epoch and is now feeding/processing it.
      std::this_thread::sleep_for(std::chrono::microseconds(kill_delay_us));
      ::kill(pid, SIGKILL);
      out.killed = true;
      break;
    }
  }
  ::close(fds[0]);
  int status = 0;
  ::waitpid(pid, &status, 0);
  if (!out.killed && WIFSIGNALED(status)) {
    // Child died on its own (e.g. a crash under test); surface that as a kill so callers
    // still attempt recovery rather than mistaking it for a clean finish.
    out.killed = true;
  }
  return out;
}

}  // namespace naiad
