#include "src/ft/cluster_recovery.h"

#include <poll.h>
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <mutex>
#include <thread>

#include "src/base/hash.h"
#include "src/base/logging.h"
#include "src/base/rng.h"
#include "src/base/stopwatch.h"
#include "src/ft/log_recovery.h"
#include "src/ft/recovery.h"
#include "src/net/progress_router.h"
#include "src/ser/bytes.h"

namespace naiad {

namespace {

constexpr uint32_t kManifestMagic = 0x4e4d4653;  // "NMFS"

// ---- supervisor <-> member pipe records (fixed 25 bytes) ----------------------------

struct Record {
  uint8_t tag = 0;
  uint64_t a = 0;
  uint64_t b = 0;
  uint64_t c = 0;
};
constexpr size_t kRecordBytes = 25;

// member -> supervisor
constexpr uint8_t kStPort = 1;           // a = listen port
constexpr uint8_t kStStarting = 2;       // a = epoch, b = generation
constexpr uint8_t kStCheckpointing = 3;  // a = epoch, b = generation
constexpr uint8_t kStCommitted = 4;      // a = epoch
constexpr uint8_t kStRecovering = 5;     // a = candidate generation, b = 1 when the
                                         // selective preconditions held, c = last
                                         // rebase epoch (the log watermark)
constexpr uint8_t kStDone = 6;           // a = recoveries, b = committed epochs,
                                         // c = replayed frames deduped
constexpr uint8_t kStRecoverStats = 7;   // a = survivor stall ns, b = downtime ns,
                                         // c = 1 for a selective rebuild

// supervisor -> member
constexpr uint8_t kCtPort = 1;     // a = slot, b = port (one record per slot)
constexpr uint8_t kCtRecover = 2;  // a = generation being aborted, b = victim slot
constexpr uint8_t kCtGo = 3;       // a = new generation, b = restore epoch (or none),
                                   // c = 1 to recover selectively (0 = coordinated)
constexpr uint8_t kCtExit = 4;

bool WriteRecord(int fd, const Record& rec) {
  uint8_t buf[kRecordBytes];
  buf[0] = rec.tag;
  std::memcpy(buf + 1, &rec.a, 8);
  std::memcpy(buf + 9, &rec.b, 8);
  std::memcpy(buf + 17, &rec.c, 8);
  size_t off = 0;
  while (off < sizeof(buf)) {
    const ssize_t n = ::write(fd, buf + off, sizeof(buf) - off);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) {
        continue;
      }
      return false;
    }
    off += static_cast<size_t>(n);
  }
  return true;
}

Record ParseRecord(const uint8_t* buf) {
  Record rec;
  rec.tag = buf[0];
  std::memcpy(&rec.a, buf + 1, 8);
  std::memcpy(&rec.b, buf + 9, 8);
  std::memcpy(&rec.c, buf + 17, 8);
  return rec;
}

bool ReadRecord(int fd, Record* rec) {
  uint8_t buf[kRecordBytes];
  size_t off = 0;
  while (off < sizeof(buf)) {
    const ssize_t n = ::read(fd, buf + off, sizeof(buf) - off);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) {
        continue;
      }
      return false;
    }
    off += static_cast<size_t>(n);
  }
  *rec = ParseRecord(buf);
  return true;
}

// ---- the member (child) side --------------------------------------------------------

// One cluster member: a full Controller/TcpTransport/ClusterControl stack plus the pipe
// protocol to the supervisor. Lives in the forked child; never returns to the test body
// (the child _exits with Run's result).
class MemberRunner {
 public:
  MemberRunner(const ClusterRunConfig& cfg, uint32_t slot, int status_fd, int ctl_fd,
               bool replacement)
      : cfg_(cfg),
        slot_(slot),
        status_fd_(status_fd),
        ctl_fd_(ctl_fd),
        replacement_(replacement) {}

  int Run(const ClusterAppFactory& factory);

 private:
  // How Build assembles the next generation's state (RecoveryMode picks the non-default
  // kinds; kCoordinated also covers the initial build and the done-member rejoin).
  enum class BuildKind : uint8_t {
    kCoordinated,           // RestoreProcess from own image (or fresh start)
    kSelectiveSurvivor,     // restore the pre-teardown in-memory stall image
    kSelectiveReplacement,  // RestoreProcessSelective from disk / FreshStartSelective
  };

  void SendStatus(uint8_t tag, uint64_t a, uint64_t b, uint64_t c = 0) {
    NAIAD_CHECK(WriteRecord(status_fd_, Record{tag, a, b, c}));
  }

  void ControlReaderMain();
  // Blocks for a GO record; false means EXIT arrived (or the supervisor died) instead.
  bool WaitGo(uint32_t* gen, uint64_t* restore, uint64_t* mode);
  // After DONE: 0 = EXIT (normal), 1 = GO (a restart raced our completion; rejoin it).
  int WaitExitOrGo(uint32_t* gen, uint64_t* restore, uint64_t* mode);

  void Build(uint32_t gen, uint64_t restore_epoch, uint64_t* start_epoch,
             BuildKind kind = BuildKind::kCoordinated);
  void Teardown();
  // Runs epochs [start_epoch, total) plus the termination barrier; false = recovery.
  bool RunEpochs(uint64_t start_epoch);
  bool ShouldCheckpoint(uint64_t e) const {
    return (cfg_.checkpoint_every != 0 && (e + 1) % cfg_.checkpoint_every == 0) ||
           e + 1 == cfg_.total_epochs;
  }
  // Called with the live (pre-Teardown) stack when a recovery begins under kSelective:
  // runs the survivor stall barrier, captures the in-memory image, and validates the
  // outbound log toward the victim. False = fall back to a coordinated restart.
  bool PrepareSelective();
  // Log GC, split around the commit broadcast. RebaseLogsAtCut runs inside the barrier's
  // global quiet point (workers paused cluster-wide): truncates every outbound log and
  // snapshots the receive watermarks. RetireRebasedImage runs only after the commit:
  // unlinks the image the new one superseded.
  void RebaseLogsAtCut(uint64_t epoch);
  void RetireRebasedImage(uint64_t committed_epoch);
  // Survivor-stall accounting: the stall ends when this member has re-passed the last
  // epoch it had fed before the failure (for a coordinated restart that includes
  // re-executing every epoch since the manifest; for selective it is just the pause).
  void ResolveStallIfRepassed(uint64_t epoch_passed);
  void ExportLogCounters();
  void NoteRecovered(uint64_t t0_ns, uint64_t restore_epoch, uint64_t mode);
  int Cleanup(int rc) {
    if (reader_.joinable()) {
      reader_.join();
    }
    return rc;
  }

  const ClusterRunConfig& cfg_;
  const uint32_t slot_;
  const int status_fd_;
  const int ctl_fd_;
  const bool replacement_;
  const ClusterAppFactory* factory_ = nullptr;
  std::vector<uint16_t> ports_;

  std::unique_ptr<Controller> ctl_;
  std::unique_ptr<TcpTransport> transport_;
  std::unique_ptr<DistributedProgressRouter> router_;
  std::unique_ptr<ClusterControl> control_;
  std::unique_ptr<ClusterApp> app_;
  std::unique_ptr<OutboundLogSet> outlogs_;  // kSelective config only
  uint32_t gen_ = 0;
  uint64_t recoveries_ = 0;
  uint64_t total_commits_ = 0;

  // Selective-recovery state carried across Teardown into the next Build.
  std::vector<uint64_t> recv_rebase_;  // per-peer data frames received at last rebase
  uint64_t last_rebase_epoch_ = kNoManifestEpoch;  // the log watermark (R)
  uint64_t pending_unlink_epoch_ = kNoManifestEpoch;  // image superseded at the cut
  std::vector<uint8_t> mem_image_;           // survivor stall image (PrepareSelective)
  std::vector<OutboundRecord> resend_;       // validated log tail toward the victim
  uint32_t victim_ = kNoVictim;
  uint64_t replay_expect_ = 0;     // victim data frames received since the watermark
  uint64_t synth_next_ = 0;        // next regenerated-duplicate seq expected
  uint64_t replay_dropped_ = 0;    // regenerated frames deduped, lifetime total
  bool selective_gen_ = false;     // this generation was built selectively
  uint64_t last_fed_epoch_ = 0;    // highest epoch fed in this generation
  bool stall_pending_ = false;     // stall stopwatch armed across a recovery
  uint64_t stall_t0_ = 0;
  uint64_t stall_target_ = 0;      // epoch to re-pass before the stall ends
  uint64_t stall_ns_ = 0;
  uint64_t downtime_ns_ = 0;
  uint64_t last_mode_ = 0;

  std::thread reader_;
  std::mutex sup_mu_;
  std::condition_variable sup_cv_;
  ClusterControl* current_control_ = nullptr;  // guarded by sup_mu_
  uint32_t current_gen_ = 0;                   // guarded by sup_mu_
  bool have_go_ = false;
  uint32_t go_gen_ = 0;
  uint64_t go_restore_ = kNoManifestEpoch;
  uint64_t go_mode_ = 0;
  bool exit_requested_ = false;
};

void MemberRunner::ControlReaderMain() {
  Record rec;
  while (ReadRecord(ctl_fd_, &rec)) {
    std::unique_lock<std::mutex> lock(sup_mu_);
    switch (rec.tag) {
      case kCtRecover:
        // Generation-guarded: a hint for an already-abandoned generation must not abort
        // the one we just rebuilt. The hint names the victim so a selective stall can
        // target the right peer even when the in-band failure report never arrived.
        if (current_control_ != nullptr && current_gen_ == rec.a) {
          current_control_->RequestRecovery(static_cast<uint32_t>(rec.b));
        }
        break;
      case kCtGo:
        go_gen_ = static_cast<uint32_t>(rec.a);
        go_restore_ = rec.b;
        go_mode_ = rec.c;
        have_go_ = true;
        sup_cv_.notify_all();
        break;
      case kCtExit:
        exit_requested_ = true;
        sup_cv_.notify_all();
        return;
      default:
        NAIAD_CHECK(false) << "bad supervisor record";
    }
  }
  // EOF: the supervisor died. Unblock the main thread so it can exit.
  std::lock_guard<std::mutex> lock(sup_mu_);
  exit_requested_ = true;
  sup_cv_.notify_all();
}

bool MemberRunner::WaitGo(uint32_t* gen, uint64_t* restore, uint64_t* mode) {
  std::unique_lock<std::mutex> lock(sup_mu_);
  sup_cv_.wait(lock, [&] { return have_go_ || exit_requested_; });
  if (!have_go_) {
    return false;
  }
  have_go_ = false;
  *gen = go_gen_;
  *restore = go_restore_;
  *mode = go_mode_;
  return true;
}

int MemberRunner::WaitExitOrGo(uint32_t* gen, uint64_t* restore, uint64_t* mode) {
  std::unique_lock<std::mutex> lock(sup_mu_);
  sup_cv_.wait(lock, [&] { return have_go_ || exit_requested_; });
  if (have_go_) {  // records arrive in order, so a pending GO precedes any EXIT
    have_go_ = false;
    *gen = go_gen_;
    *restore = go_restore_;
    *mode = go_mode_;
    return 1;
  }
  return 0;
}

void MemberRunner::Build(uint32_t gen, uint64_t restore_epoch, uint64_t* start_epoch,
                         BuildKind kind) {
  gen_ = gen;
  Config c;
  c.process_id = slot_;
  c.processes = cfg_.processes;
  c.workers_per_process = cfg_.workers_per_process;
  c.batch_size = cfg_.batch_size;
  c.default_parallelism = cfg_.default_parallelism;
  c.scoping = cfg_.scoping;
  c.obs = cfg_.obs;
  if (!c.obs.trace_path.empty()) {
    c.obs.trace_path += ".p" + std::to_string(slot_);  // one file per member process
  }
  ctl_ = std::make_unique<Controller>(c);
  if (!transport_) {
    transport_ = std::make_unique<TcpTransport>(slot_, cfg_.processes);
    const uint16_t port = transport_->Listen(ports_[slot_]);
    NAIAD_CHECK(port == ports_[slot_]);
  }
  transport_->SetFaultPlan(cfg_.fault_plan);
  transport_->SetObs(&ctl_->obs());
  transport_->SetGeneration(gen);
  router_ = std::make_unique<DistributedProgressRouter>(
      ctl_.get(), transport_.get(), cfg_.strategy, /*hold_limit=*/1024,
      cfg_.fault_plan != nullptr ? cfg_.fault_plan->Progress(slot_) : nullptr);
  ctl_->SetProgressRouter(router_.get());
  ctl_->SetDataTransport(transport_.get());
  control_ = std::make_unique<ClusterControl>(ctl_.get(), transport_.get(), router_.get());
  if (cfg_.recovery_mode == RecoveryMode::kSelective) {
    // Every generation opens fresh (truncated) outbound logs: their window is anchored
    // at this generation's start point, and record index k toward a peer equals the
    // link's post-rebase data sequence k because the tap holds the destination lock
    // across {append, enqueue}.
    outlogs_ = std::make_unique<OutboundLogSet>(cfg_.ckpt_dir, slot_, cfg_.processes);
    OutboundLogSet* logs = outlogs_.get();
    TcpTransport* tr = transport_.get();
    ctl_->SetSendTap([logs, tr](uint32_t dst, ConnectorId ch, const Timestamp& t,
                                int64_t count, std::vector<uint8_t>&& frame) {
      logs->RecordAndSend(*tr, dst, ch, t, count, std::move(frame));
    });
    control_->SetSelectiveMode(true);
    recv_rebase_.assign(cfg_.processes, 0);
    last_rebase_epoch_ = restore_epoch;
  }
  app_ = (*factory_)(*ctl_);

  const bool sel_survivor = kind == BuildKind::kSelectiveSurvivor;
  const bool sel_replacement = kind == BuildKind::kSelectiveReplacement;
  selective_gen_ = sel_survivor || sel_replacement;

  std::vector<ProgressUpdate> pending;  // coordinated restore path
  std::vector<ProgressUpdate> seeds;    // selective path (filled during StartPaused)
  if (sel_survivor) {
    // Survivor: resume from the in-memory stall image — state is KEPT, nothing replays
    // locally. The image's input positions say where this member's feed resumes.
    NAIAD_CHECK(!mem_image_.empty());
    const std::vector<InputEpochs> inputs =
        RestoreProcessSelective(*ctl_, std::move(mem_image_), &seeds);
    mem_image_.clear();
    app_->RestoreInputs(inputs);
    uint64_t start = 0;
    for (const InputEpochs& in : inputs) {
      if (!in.closed) {
        start = std::max(start, in.next_epoch);
      }
    }
    *start_epoch = start;
  } else if (sel_replacement) {
    if (restore_epoch != kNoManifestEpoch) {
      CheckpointReadResult res =
          ReadCheckpointFileEx(ClusterImagePath(cfg_.ckpt_dir, slot_, restore_epoch));
      NAIAD_CHECK(res.ok()) << "manifest-committed image unreadable: epoch "
                            << restore_epoch << " status "
                            << static_cast<int>(res.status);
      const std::vector<InputEpochs> inputs =
          RestoreProcessSelective(*ctl_, std::move(res.image), &seeds);
      app_->RestoreInputs(inputs);
      *start_epoch = restore_epoch + 1;
    } else {
      FreshStartSelective(*ctl_, &seeds);
      *start_epoch = 0;
    }
  } else if (restore_epoch != kNoManifestEpoch) {
    CheckpointReadResult res =
        ReadCheckpointFileEx(ClusterImagePath(cfg_.ckpt_dir, slot_, restore_epoch));
    // The manifest commit rule guarantees this image was durable before the epoch became
    // adoptable, so anything other than a clean read is a protocol violation.
    NAIAD_CHECK(res.ok()) << "manifest-committed image unreadable: epoch " << restore_epoch
                          << " status " << static_cast<int>(res.status);
    const std::vector<InputEpochs> inputs =
        RestoreProcess(*ctl_, std::move(res.image), &pending);
    app_->RestoreInputs(inputs);
    *start_epoch = restore_epoch + 1;
  } else {
    *start_epoch = 0;
  }

  {
    std::lock_guard<std::mutex> lock(sup_mu_);
    current_control_ = control_.get();
    current_gen_ = gen;
  }
  TcpTransport::Callbacks cb;
  Controller* ctl = ctl_.get();
  DistributedProgressRouter* router = router_.get();
  ClusterControl* control = control_.get();
  // Single-job cluster: every frame carries job 0, so the demux is just a type switch.
  cb.on_frame = [ctl, router, control](FrameType type, uint32_t src, uint32_t /*job*/,
                                       std::span<const uint8_t> p, bool /*wire*/) {
    switch (type) {
      case FrameType::kData:
        ctl->ReceiveRemoteBundle(p);
        break;
      case FrameType::kProgress:
        router->OnProgressFrame(src, p);
        break;
      case FrameType::kProgressAcc:
        router->OnAccumulatorFrame(src, p);
        break;
      case FrameType::kControl:
        control->HandleControl(src, p);
        break;
    }
  };
  cb.on_peer_down = [control](uint32_t peer) { control->ReportFailure(peer); };
  if (sel_survivor) {
    // The replacement deterministically regenerates the data frames the victim already
    // sent us since the watermark; our state already reflects them. Seeding the receive
    // expectation routes those first replay_expect_ frames through the dedup path,
    // where each is discarded with a compensating -count so the progress charge of the
    // replacement's RouteBundle nets out (DiscardRemoteBundle).
    transport_->SeedRecvExpectation(victim_, FrameType::kData, replay_expect_);
    synth_next_ = 0;
    cb.on_dup_frame = [this, ctl](FrameType type, uint32_t src, uint32_t /*job*/,
                                  uint64_t seq, std::span<const uint8_t> p) -> bool {
      if (type != FrameType::kData || src != victim_ || seq != synth_next_ ||
          synth_next_ >= replay_expect_) {
        return false;  // not a replayed frame; normal dup accounting applies
      }
      ++synth_next_;
      ++replay_dropped_;
      ctl->DiscardRemoteBundle(p);
      return true;  // count as received: the replacement's send side was counted
    };
  }
  transport_->Start(ports_, std::move(cb));

  if (selective_gen_) {
    // Workers park before any seed is applied; the cluster-wide tracker state is then
    // reassembled by summing every process's own contributions (survivors at their
    // stall cut, the replacement at the watermark), plus one +count per cached log
    // record about to be re-sent — the replacement re-processes exactly those. Nobody
    // resumes until every contribution is globally applied (the ack/release barrier),
    // so no transient negative can be observed as a frontier.
    const uint64_t seed_t0 = obs::MonotonicNs();
    ctl_->StartPaused();
    if (sel_survivor) {
      for (const OutboundRecord& rec : resend_) {
        seeds.push_back(ProgressUpdate{
            Pointstamp{rec.time, Location::Connector(rec.ch)}, rec.count});
      }
    }
    NAIAD_CHECK(control_->RunSeedExchange(seeds))
        << "selective seed exchange failed (p" << slot_ << " gen " << gen << ")";
    const uint64_t resend_n = resend_.size();
    if (sel_survivor) {
      // Re-send the validated log tail so it is re-logged: record k of the new window
      // rides link sequence k again, keeping the invariant for a later rebase. No
      // progress updates accompany these sends — the seeds above carried their +counts.
      // ResendTail appends the whole tail and makes it durable with a single Sync
      // before the first frame is sent, instead of one fsync per frame.
      outlogs_->ResendTail(*transport_, victim_, std::move(resend_));
    }
    ctl_->Resume();
    if (ctl_->obs().tracer().enabled()) {
      ctl_->obs().tracer().ControlSpan(obs::TraceKind::kSelectiveSeed, seed_t0,
                                       obs::MonotonicNs(), seeds.size(), resend_n,
                                       sel_replacement ? 1 : 0);
    }
    resend_.clear();
  } else {
    ctl_->Start();
    // Restored pending-notification +1s travel the ordinary broadcast channel, after
    // Start and strictly before any input is fed (see RestoreProcess's contract).
    if (!pending.empty()) {
      router_->Broadcast(std::move(pending));
    }
  }
}

void MemberRunner::Teardown() {
  {
    std::lock_guard<std::mutex> lock(sup_mu_);
    current_control_ = nullptr;
  }
  transport_->Abort();  // unblocks senders mid-write; joins all transport threads
  ctl_->Stop();
  ExportLogCounters();  // workers are joined: the tap can no longer run
  app_.reset();
  control_.reset();
  router_.reset();
  outlogs_.reset();
  transport_.reset();  // releases the listen socket so Build can rebind the same port
  ctl_.reset();
}

void MemberRunner::ExportLogCounters() {
  if (!outlogs_ || !ctl_) {
    return;
  }
  if (obs::ProcessMetrics* pm = ctl_->obs().metrics().process()) {
    pm->log_records_logged.fetch_add(outlogs_->records_logged(),
                                     std::memory_order_relaxed);
    pm->log_bytes_logged.fetch_add(outlogs_->bytes_logged(), std::memory_order_relaxed);
    pm->log_rebases.fetch_add(outlogs_->rebases(), std::memory_order_relaxed);
  }
}

void MemberRunner::RebaseLogsAtCut(uint64_t epoch) {
  if (!outlogs_) {
    return;
  }
  // Runs inside the checkpoint barrier's at_cut hook: every worker in the cluster is
  // paused at the verified quiet point and no peer has resumed. Both halves of the
  // watermark MUST be taken here. Truncating later would race our own workers' sends
  // back into a window the new images already cover; snapshotting the receive counters
  // later would race a faster peer's next-epoch frames under the watermark — its
  // replacement would then replay those frames and the dedup, seeded with a
  // too-high expectation, would deliver them a second time (a TSan-exposed double
  // count before this hook existed).
  NAIAD_CHECK(outlogs_->RebaseAll());
  for (uint32_t q = 0; q < cfg_.processes; ++q) {
    // No self link: loopback routing never touches the wire counters.
    recv_rebase_[q] =
        q == slot_ ? 0 : transport_->frames_received_from(q, FrameType::kData);
  }
  pending_unlink_epoch_ = last_rebase_epoch_;
  // Recorded before the commit broadcast on purpose: if the barrier fails after the cut,
  // the logs are already truncated and only anchor here — R must say so. PrepareSelective
  // then sees R disagree with the durable manifest and falls back to the coordinated
  // path instead of replaying from a window that no longer reaches the manifest.
  last_rebase_epoch_ = epoch;
}

void MemberRunner::RetireRebasedImage(uint64_t committed_epoch) {
  if (!outlogs_) {
    return;
  }
  const uint64_t prev = pending_unlink_epoch_;
  pending_unlink_epoch_ = kNoManifestEpoch;
  if (prev != kNoManifestEpoch && prev != committed_epoch) {
    // Only after the commit broadcast: the watermark has durably passed, so this slot's
    // previous image can no longer be adopted. Unlinking at the cut would be premature —
    // a barrier that dies between cut and commit still restores from the OLD manifest,
    // which needs the old image on disk.
    ::unlink(ClusterImagePath(cfg_.ckpt_dir, slot_, prev).c_str());
  }
}

void MemberRunner::ResolveStallIfRepassed(uint64_t epoch_passed) {
  if (!stall_pending_ || epoch_passed < stall_target_) {
    return;
  }
  stall_pending_ = false;
  stall_ns_ = obs::MonotonicNs() - stall_t0_;
  SendStatus(kStRecoverStats, stall_ns_, downtime_ns_, last_mode_);
}

bool MemberRunner::RunEpochs(uint64_t start_epoch) {
  auto write_image = [this](uint64_t epoch) {
    std::vector<uint8_t> image = CheckpointProcess(*ctl_);
    return WriteCheckpointFile(ClusterImagePath(cfg_.ckpt_dir, slot_, epoch), image);
  };
  auto write_manifest = [this](uint64_t epoch) {
    return WriteClusterManifest(cfg_.ckpt_dir, epoch, cfg_.processes);
  };
  auto rebase_at_cut = [this](uint64_t epoch) { RebaseLogsAtCut(epoch); };
  const bool dbg = ::getenv("NAIAD_CLUSTER_DEBUG") != nullptr;
  for (uint64_t e = start_epoch; e < cfg_.total_epochs; ++e) {
    SendStatus(kStStarting, e, gen_);
    app_->FeedEpoch(e);
    last_fed_epoch_ = e;
    if (dbg) std::fprintf(stderr, "[p%u g%u] fed epoch %llu\n", slot_, gen_, (unsigned long long)e);
    ctl_->tracker().WaitFor([&] {
      // The stall stopwatch stops the moment the re-pass target clears the frontier,
      // not when this member's own current epoch later passes: a selective survivor
      // waits here several epochs ahead of the replacement's catch-up, and resolving
      // only on its own epoch would overcharge the stall by most of an epoch.
      if (stall_pending_ && app_->EpochPassed(stall_target_)) {
        ResolveStallIfRepassed(stall_target_);
      }
      return app_->EpochPassed(e) || control_->recovery_requested();
    });
    if (dbg) std::fprintf(stderr, "[p%u g%u] epoch %llu passed (rec=%d)\n", slot_, gen_, (unsigned long long)e, (int)control_->recovery_requested());
    if (control_->recovery_requested()) {
      return false;
    }
    ResolveStallIfRepassed(e);
    // A selectively-built generation skips the per-epoch barriers: its members resume
    // from DIFFERENT epochs, so their ShouldCheckpoint schedules would disagree and the
    // collective barrier would hang. One final checkpoint below re-establishes the
    // durable cut (and the byte-identical final images the sweep compares).
    if (!selective_gen_ && ShouldCheckpoint(e)) {
      SendStatus(kStCheckpointing, e, gen_);
      if (dbg) std::fprintf(stderr, "[p%u g%u] entering ckpt barrier e=%llu\n", slot_, gen_, (unsigned long long)e);
      if (!control_->RunCheckpointBarrier(e, write_image, write_manifest, rebase_at_cut)) {
        NAIAD_CHECK(control_->recovery_requested()) << "cluster checkpoint failed outright";
        return false;
      }
      ++total_commits_;
      RetireRebasedImage(e);
      SendStatus(kStCommitted, e, gen_);
      if (dbg) std::fprintf(stderr, "[p%u g%u] ckpt committed e=%llu\n", slot_, gen_, (unsigned long long)e);
    }
  }
  if (selective_gen_) {
    const uint64_t last = cfg_.total_epochs - 1;
    // A survivor whose inputs were already past the last epoch skipped the loop above;
    // it still owes the cluster the final collective checkpoint, and its own probe only
    // passes once the replacement's replay catches up.
    ctl_->tracker().WaitFor([&] {
      if (stall_pending_ && app_->EpochPassed(stall_target_)) {
        ResolveStallIfRepassed(stall_target_);
      }
      return app_->EpochPassed(last) || control_->recovery_requested();
    });
    if (control_->recovery_requested()) {
      return false;
    }
    ResolveStallIfRepassed(last);
    SendStatus(kStCheckpointing, last, gen_);
    if (!control_->RunCheckpointBarrier(last, write_image, write_manifest, rebase_at_cut)) {
      NAIAD_CHECK(control_->recovery_requested()) << "cluster checkpoint failed outright";
      return false;
    }
    ++total_commits_;
    RetireRebasedImage(last);
    SendStatus(kStCommitted, last, gen_);
  }
  ResolveStallIfRepassed(cfg_.total_epochs - 1);  // rejoin path: loop may not have run
  app_->CloseInputs();
  if (dbg) std::fprintf(stderr, "[p%u g%u] inputs closed; termination barrier\n", slot_, gen_);
  if (!control_->RunTerminationBarrier()) {
    return false;
  }
  ctl_->Stop();
  return true;
}

bool MemberRunner::PrepareSelective() {
  // Every fallback return goes through `abort`: the decision is local, but a peer that
  // reached its stall barrier is waiting for OUR report — the kCtlStallAbort broadcast
  // releases it immediately instead of letting it burn the verdict timeout (e.g. a kill
  // inside the final checkpoint barrier can leave one survivor committed — fast local
  // fallback — while the other's barrier aborted and it still has epochs to protect).
  const auto abort = [this] {
    control_->AbortSelectiveStall();
    return false;
  };
  if (::getenv("NAIAD_SELECTIVE_FALLBACK_INJECT") != nullptr) {
    return abort();  // test hook: force the coordinated fallback path
  }
  if (selective_gen_) {
    // Second failure inside a selectively-built generation: the survivors' log windows
    // are anchored at their stall cut, not at the manifest, so a new replacement
    // restoring from the manifest could not be caught up from them.
    return abort();
  }
  if (last_rebase_epoch_ != kNoManifestEpoch &&
      last_rebase_epoch_ + 1 >= cfg_.total_epochs) {
    // The final checkpoint already committed; nothing is left to replay selectively and
    // the rejoin semantics of the coordinated path handle the termination race.
    return abort();
  }
  victim_ = control_->recovery_victim();
  if (victim_ == kNoVictim || victim_ == slot_) {
    return abort();  // nobody attributed the failure; only a coordinated restart is safe
  }
  if (!control_->RunStallBarrier(victim_)) {
    return abort();  // couldn't establish a clean survivor cut; workers were resumed
  }
  // Workers are parked at the stall cut. Everything the victim sent us since the
  // watermark is reflected in the state we are about to capture; its regenerated
  // replays must therefore be deduped up to this count.
  replay_expect_ =
      transport_->frames_received_from(victim_, FrameType::kData) - recv_rebase_[victim_];
  mem_image_ = CheckpointProcess(*ctl_);
  for (const InputEpochs& in : PeekImageInputs(mem_image_)) {
    if (in.closed) {
      // The kill landed during termination: a closed input cannot be reopened for the
      // replacement's replay window, so roll everyone back together instead.
      return abort();
    }
  }
  if (!outlogs_->ValidateAndLoad(victim_, &resend_)) {
    return abort();  // torn or incomplete log: cannot prove what the victim received
  }
  return true;
}

void MemberRunner::NoteRecovered(uint64_t t0_ns, uint64_t restore_epoch, uint64_t mode) {
  ++recoveries_;
  ctl_->obs().tracer().ControlSpan(
      obs::TraceKind::kClusterRecover, t0_ns, obs::MonotonicNs(),
      restore_epoch == kNoManifestEpoch ? 0 : restore_epoch, gen_,
      restore_epoch == kNoManifestEpoch ? 0 : 1);
  if (obs::ProcessMetrics* pm = ctl_->obs().metrics().process()) {
    pm->cluster_recoveries.fetch_add(1, std::memory_order_relaxed);
    if (mode == 1) {
      pm->selective_recoveries.fetch_add(1, std::memory_order_relaxed);
    }
  }
}

int MemberRunner::Run(const ClusterAppFactory& factory) {
  factory_ = &factory;
  // Phase A: port rendezvous. A fresh member binds an ephemeral port and announces it; a
  // replacement inherits the victim's published port from the map.
  if (!replacement_) {
    transport_ = std::make_unique<TcpTransport>(slot_, cfg_.processes);
    const uint16_t port = transport_->Listen(0);
    SendStatus(kStPort, port, 0);
  }
  ports_.resize(cfg_.processes);
  for (uint32_t i = 0; i < cfg_.processes; ++i) {
    Record rec;
    if (!ReadRecord(ctl_fd_, &rec)) {
      return 1;
    }
    NAIAD_CHECK(rec.tag == kCtPort && rec.a < cfg_.processes);
    ports_[rec.a] = static_cast<uint16_t>(rec.b);
  }
  reader_ = std::thread([this] { ControlReaderMain(); });

  uint64_t start_epoch = 0;
  if (replacement_) {
    // A replacement is born into a restart: rendezvous, then build at GO. The GO's mode
    // says whether the survivors kept their state (selective) or everyone rolls back.
    const uint64_t t0 = obs::MonotonicNs();
    SendStatus(kStRecovering, 0, 0, kNoManifestEpoch);
    uint32_t gen = 0;
    uint64_t restore = kNoManifestEpoch;
    uint64_t mode = 0;
    if (!WaitGo(&gen, &restore, &mode)) {
      return Cleanup(0);  // the run finished without us; nothing to rejoin
    }
    Build(gen, restore, &start_epoch,
          mode == 1 ? BuildKind::kSelectiveReplacement : BuildKind::kCoordinated);
    NoteRecovered(t0, restore, mode);
    downtime_ns_ = obs::MonotonicNs() - t0;
    last_mode_ = mode;
    SendStatus(kStRecoverStats, 0, downtime_ns_, mode);
  } else {
    Build(0, kNoManifestEpoch, &start_epoch);
  }

  for (;;) {
    if (RunEpochs(start_epoch)) {
      SendStatus(kStDone, recoveries_, total_commits_, replay_dropped_);
      uint32_t gen = 0;
      uint64_t restore = kNoManifestEpoch;
      uint64_t mode = 0;
      if (WaitExitOrGo(&gen, &restore, &mode) == 0) {
        break;
      }
      // A restart was ordered after we finished (the kill raced the termination verdict):
      // rejoin it. A finished member is never ordered into a selective restart (the
      // supervisor's rule requires every survivor to be recovering), so this rebuild is
      // always coordinated. The restored epoch is final; the re-run is just the barriers.
      NAIAD_CHECK(mode == 0) << "selective GO sent to a finished member";
      const uint64_t t0 = obs::MonotonicNs();
      Teardown();
      Build(gen, restore, &start_epoch);
      NoteRecovered(t0, restore, mode);
      continue;
    }
    // Recovery: under kSelective first try to prepare a survivor-preserving restart with
    // the stack still live (stall barrier + in-memory image + log validation); then tear
    // the generation down, rendezvous, and rebuild at GO. The supervisor only orders
    // mode 1 when EVERY survivor reported the preconditions held, so a single member's
    // fallback demotes the whole cluster to a coordinated restart.
    const uint64_t t0 = obs::MonotonicNs();
    const uint32_t candidate = gen_ + 1;
    uint64_t sel_ok = 0;
    if (cfg_.recovery_mode == RecoveryMode::kSelective) {
      sel_ok = PrepareSelective() ? 1 : 0;
      if (::getenv("NAIAD_CLUSTER_DEBUG") != nullptr) {
        std::fprintf(stderr, "[p%u g%u %.3f] prepare_selective=%llu (%.3fs)\n", slot_,
                     gen_, obs::MonotonicNs() / 1e9, (unsigned long long)sel_ok,
                     (obs::MonotonicNs() - t0) / 1e9);
      }
    }
    stall_pending_ = true;
    stall_t0_ = t0;
    stall_target_ = last_fed_epoch_;
    Teardown();
    SendStatus(kStRecovering, candidate, sel_ok, last_rebase_epoch_);
    uint32_t gen = 0;
    uint64_t restore = kNoManifestEpoch;
    uint64_t mode = 0;
    if (!WaitGo(&gen, &restore, &mode)) {
      return Cleanup(1);  // the supervisor gave up on the run
    }
    if (mode == 1) {
      NAIAD_CHECK(sel_ok == 1) << "selective GO without local preconditions";
      Build(gen, restore, &start_epoch, BuildKind::kSelectiveSurvivor);
    } else {
      mem_image_.clear();
      resend_.clear();
      victim_ = kNoVictim;
      Build(gen, restore, &start_epoch);
    }
    NoteRecovered(t0, restore, mode);
    downtime_ns_ = obs::MonotonicNs() - t0;
    last_mode_ = mode;
  }
  // Supervised exit: every member reported DONE, so no peer is still inside a barrier and
  // link teardown can no longer be mistaken for a death.
  ExportLogCounters();
  transport_->Shutdown();
  return Cleanup(0);
}

}  // namespace

RecoveryMode RecoveryModeFromEnv(RecoveryMode def) {
  const char* v = ::getenv("NAIAD_RECOVERY_MODE");
  if (v == nullptr) {
    return def;
  }
  if (std::strcmp(v, "selective") == 0) {
    return RecoveryMode::kSelective;
  }
  if (std::strcmp(v, "coordinated") == 0) {
    return RecoveryMode::kCoordinated;
  }
  NAIAD_CHECK(false) << "NAIAD_RECOVERY_MODE must be 'coordinated' or 'selective', got "
                     << v;
  return def;
}

// ---- paths and manifest -------------------------------------------------------------

std::string ClusterImagePath(const std::string& dir, uint32_t process, uint64_t epoch) {
  return dir + "/ckpt_p" + std::to_string(process) + "_e" + std::to_string(epoch);
}

std::string ClusterManifestPath(const std::string& dir) { return dir + "/MANIFEST"; }

bool WriteClusterManifest(const std::string& dir, uint64_t epoch, uint32_t processes,
                          const std::vector<uint32_t>& jobs) {
  ByteWriter w;
  w.WriteU32(kManifestMagic);
  w.WriteU64(epoch);
  w.WriteU32(processes);
  // The registered-job set at commit time: a recovering cluster must re-register exactly
  // these dataflows before adopting the epoch. The single-job harness writes {0}.
  w.WriteU32(static_cast<uint32_t>(jobs.size()));
  for (uint32_t j : jobs) {
    w.WriteU32(j);
  }
  return WriteCheckpointFile(ClusterManifestPath(dir), w.buffer());
}

uint64_t ReadClusterManifest(const std::string& dir, uint32_t expect_processes,
                             std::vector<uint32_t>* jobs) {
  CheckpointReadResult res = ReadCheckpointFileEx(ClusterManifestPath(dir));
  if (!res.ok()) {
    return kNoManifestEpoch;  // absent or unverifiable: not adoptable, fall back to fresh
  }
  ByteReader r(res.image);
  NAIAD_CHECK(r.ReadU32() == kManifestMagic) << "not a cluster manifest";
  const uint64_t epoch = r.ReadU64();
  NAIAD_CHECK(r.ReadU32() == expect_processes) << "manifest from a different cluster shape";
  const uint32_t njobs = r.ReadU32();
  NAIAD_CHECK(njobs >= 1) << "manifest committed with no registered job";
  if (jobs != nullptr) {
    jobs->clear();
  }
  for (uint32_t i = 0; i < njobs; ++i) {
    const uint32_t j = r.ReadU32();
    if (jobs != nullptr) {
      jobs->push_back(j);
    }
  }
  NAIAD_CHECK(r.ok());
  return epoch;
}

// ---- the supervisor (parent) side ---------------------------------------------------

ClusterKillOutcome ClusterKillRecoverDriver::Run(const Options& opts,
                                                 const ClusterAppFactory& factory) {
  const ClusterRunConfig& cfg = opts.cfg;
  const uint32_t n = cfg.processes;
  NAIAD_CHECK(n >= 2);
  NAIAD_CHECK(cfg.total_epochs >= 2);
  NAIAD_CHECK(!cfg.ckpt_dir.empty());
  // The supervisor writes into pipes whose reader may have been SIGKILLed; EPIPE is
  // handled, SIGPIPE must not be fatal.
  ::signal(SIGPIPE, SIG_IGN);

  ClusterKillOutcome out;
  Stopwatch sw;
  const bool dbg = ::getenv("NAIAD_CLUSTER_DEBUG") != nullptr;

  struct Member {
    pid_t pid = -1;
    int status_fd = -1;  // read end of the member's status pipe
    int ctl_fd = -1;     // write end of the member's control pipe
    bool done = false;
    bool exit_sent = false;
    bool eof = false;
    bool accounted = false;   // restart rendezvous: DONE or RECOVERING seen since the kill
    bool recovering = false;
    bool selective_ok = false;           // this survivor's preconditions held
    uint64_t rebase_epoch = kNoManifestEpoch;  // its reported log watermark
    uint64_t stall_ns = 0;
    uint64_t downtime_ns = 0;
    uint64_t mode = 0;                   // 1 when it rebuilt selectively
    uint64_t replay_drops = 0;
    uint64_t done_recoveries = 0;
    uint64_t done_commits = 0;
    std::vector<uint8_t> buf;
  };
  std::vector<Member> members(n);

  // The supervisor must stay single-threaded: every member is forked from it, and a fork
  // of a multi-threaded process would start its child with locks in unknowable states.
  auto spawn = [&](uint32_t slot, bool replacement) {
    int sp[2];
    int cp[2];
    NAIAD_CHECK(::pipe(sp) == 0);
    NAIAD_CHECK(::pipe(cp) == 0);
    const pid_t pid = ::fork();
    NAIAD_CHECK(pid >= 0);
    if (pid == 0) {
      ::close(sp[0]);
      ::close(cp[1]);
      for (const Member& m : members) {  // drop inherited ends of the other members' pipes
        if (m.status_fd >= 0) ::close(m.status_fd);
        if (m.ctl_fd >= 0) ::close(m.ctl_fd);
      }
      MemberRunner runner(cfg, slot, sp[1], cp[0], replacement);
      ::_exit(runner.Run(factory));
    }
    ::close(sp[1]);
    ::close(cp[0]);
    members[slot] = Member{};
    members[slot].pid = pid;
    members[slot].status_fd = sp[0];
    members[slot].ctl_fd = cp[1];
  };

  auto send_ctl = [&](uint32_t slot, const Record& rec) {
    if (members[slot].ctl_fd >= 0) {
      WriteRecord(members[slot].ctl_fd, rec);  // EPIPE from an exited member is benign
    }
  };

  // Seed-derived kill schedule: victim, epoch, phase (mid-feed vs inside the checkpoint
  // barrier), and in-phase delay are all pure functions of the seed.
  uint32_t victim = 0;
  uint64_t kill_epoch = 0;
  bool barrier_kill = false;
  uint32_t kill_delay_us = 0;
  if (opts.inject_kill) {
    victim = static_cast<uint32_t>(opts.seed % n);
    kill_epoch = 1 + opts.seed % (cfg.total_epochs - 1);
    Rng kr(HashCombine(opts.seed, HashString("CLUSTER-KILL")));
    barrier_kill = (kr.Next() & 1) != 0;
    kill_delay_us = static_cast<uint32_t>(kr.Below(2000));
  }
  out.victim = victim;
  out.kill_epoch = kill_epoch;
  out.kill_in_barrier = barrier_kill;

  for (uint32_t p = 0; p < n; ++p) {
    spawn(p, /*replacement=*/false);
  }

  std::vector<uint16_t> ports(n, 0);
  uint32_t ports_seen = 0;
  bool ports_sent = false;
  bool killed = false;
  bool restart_pending = false;
  uint32_t cur_gen = 0;
  bool failed = false;

  auto do_kill = [&] {
    if (kill_delay_us > 0) {
      std::this_thread::sleep_for(std::chrono::microseconds(kill_delay_us));
    }
    ::kill(members[victim].pid, SIGKILL);
    int ws = 0;
    ::waitpid(members[victim].pid, &ws, 0);
    ::close(members[victim].status_fd);
    ::close(members[victim].ctl_fd);
    // Cleared before spawn(): the replacement's pipes may reuse these fd numbers, and the
    // child's close-other-members sweep must not tear down its own fresh pipe ends.
    members[victim].status_fd = -1;
    members[victim].ctl_fd = -1;
    killed = true;
    out.killed = true;
    ++cur_gen;
    restart_pending = true;
    for (Member& m : members) {
      m.accounted = m.done;  // a member already done before the kill stands as accounted
      m.recovering = false;
    }
    // Replacement first (it needs the port map before anyone can dial it), then hint the
    // survivors; the in-band kRecover broadcast usually beats this, the hint is liveness.
    spawn(victim, /*replacement=*/true);
    for (uint32_t j = 0; j < n; ++j) {
      send_ctl(victim, Record{kCtPort, j, ports[j], 0});
    }
    for (uint32_t p = 0; p < n; ++p) {
      if (p != victim && !members[p].done) {
        send_ctl(p, Record{kCtRecover, cur_gen - 1, victim, 0});
      }
    }
  };

  auto maybe_release_restart = [&] {
    if (!restart_pending) {
      return;
    }
    for (const Member& m : members) {
      if (!m.eof && !m.accounted) {
        return;
      }
    }
    restart_pending = false;
    bool any_recovering = false;
    for (uint32_t p = 0; p < n; ++p) {
      if (p != victim && members[p].recovering) {
        any_recovering = true;
      }
    }
    if (!any_recovering) {
      // Every survivor finished before the restart reached it (the kill raced the
      // termination verdict): the run is over, the replacement is superfluous.
      send_ctl(victim, Record{kCtExit, 0, 0, 0});
      members[victim].exit_sent = true;
      members[victim].done = true;
      return;
    }
    const uint64_t restore = ReadClusterManifest(cfg.ckpt_dir, n);
    out.restore_epoch = restore;
    // Selective only when EVERY survivor can hold its state: each must be recovering
    // (not finished), have passed its local preconditions, and report a log watermark
    // equal to the manifest epoch — a survivor rebased past a commit the coordinator
    // died before broadcasting would otherwise double-feed the replacement.
    uint64_t mode = 0;
    if (cfg.recovery_mode == RecoveryMode::kSelective && killed) {
      mode = 1;
      for (uint32_t p = 0; p < n; ++p) {
        if (p == victim) {
          continue;
        }
        const Member& m = members[p];
        if (!m.recovering || !m.selective_ok || m.rebase_epoch != restore) {
          mode = 0;
          break;
        }
      }
    }
    for (uint32_t p = 0; p < n; ++p) {
      members[p].done = false;  // a finished member ordered into a restart reports anew
      send_ctl(p, Record{kCtGo, cur_gen, restore, mode});
    }
  };

  auto handle = [&](uint32_t p, const Record& rec) {
    switch (rec.tag) {
      case kStPort:
        NAIAD_CHECK(!ports_sent);
        ports[p] = static_cast<uint16_t>(rec.a);
        if (++ports_seen == n) {
          for (uint32_t m = 0; m < n; ++m) {
            for (uint32_t j = 0; j < n; ++j) {
              send_ctl(m, Record{kCtPort, j, ports[j], 0});
            }
          }
          ports_sent = true;
          out.launched = true;
        }
        break;
      case kStStarting:
        if (opts.inject_kill && !killed && !barrier_kill && p == victim &&
            rec.a == kill_epoch) {
          do_kill();
        }
        break;
      case kStCheckpointing:
        if (opts.inject_kill && !killed && barrier_kill && p == victim &&
            rec.a >= kill_epoch) {
          do_kill();
        }
        break;
      case kStCommitted:
        break;
      case kStRecovering:
        if (restart_pending) {
          members[p].accounted = true;
          members[p].recovering = true;
          members[p].selective_ok = rec.b != 0;
          members[p].rebase_epoch = rec.c;
        } else if (!killed) {
          if (dbg) std::fprintf(stderr, "[sup] member %u recovering with no kill\n", p);
          failed = true;  // a recovery with no kill means a member falsely suspected death
        }
        break;
      case kStRecoverStats:
        members[p].stall_ns = std::max(members[p].stall_ns, rec.a);
        members[p].downtime_ns = std::max(members[p].downtime_ns, rec.b);
        if (rec.c == 1) {
          members[p].mode = 1;
        }
        break;
      case kStDone:
        members[p].done = true;
        members[p].done_recoveries = rec.a;
        members[p].done_commits = rec.b;
        members[p].replay_drops = rec.c;
        members[p].accounted = true;
        break;
      default:
        if (dbg) std::fprintf(stderr, "[sup] bad record tag %u from %u\n", rec.tag, p);
        failed = true;
        break;
    }
    if (dbg) std::fprintf(stderr, "[sup %.3f] rec p%u tag=%u a=%llu b=%llu c=%llu\n",
                          obs::MonotonicNs() / 1e9, p, rec.tag,
                          (unsigned long long)rec.a, (unsigned long long)rec.b,
                          (unsigned long long)rec.c);
  };

  for (;;) {
    bool all_done = true;
    for (const Member& m : members) {
      if (!m.done && !(m.eof && m.exit_sent)) {
        all_done = false;
      }
    }
    if (ports_sent && all_done && !restart_pending) {
      break;
    }
    if (failed || sw.ElapsedSeconds() > 180.0) {
      failed = true;
      break;
    }

    std::vector<pollfd> fds;
    std::vector<uint32_t> idx;
    for (uint32_t p = 0; p < n; ++p) {
      if (members[p].status_fd >= 0) {
        fds.push_back(pollfd{members[p].status_fd, POLLIN, 0});
        idx.push_back(p);
      }
    }
    if (fds.empty()) {
      if (dbg) std::fprintf(stderr, "[sup] no live status fds\n");
      failed = true;
      break;
    }
    const int rc = ::poll(fds.data(), static_cast<nfds_t>(fds.size()), 100);
    if (rc < 0) {
      if (errno == EINTR) {
        continue;
      }
      failed = true;
      break;
    }
    for (size_t i = 0; i < fds.size() && !failed; ++i) {
      if ((fds[i].revents & (POLLIN | POLLHUP | POLLERR)) == 0) {
        continue;
      }
      const uint32_t p = idx[i];
      uint8_t tmp[512];
      const ssize_t got = ::read(members[p].status_fd, tmp, sizeof(tmp));
      if (got < 0 && errno == EINTR) {
        continue;
      }
      if (got <= 0) {
        ::close(members[p].status_fd);
        members[p].status_fd = -1;
        members[p].eof = true;
        if (!members[p].exit_sent) {
          if (dbg) std::fprintf(stderr, "[sup] member %u EOF without exit\n", p);
          failed = true;  // a member died without being told to exit
        }
        continue;
      }
      Member& m = members[p];
      m.buf.insert(m.buf.end(), tmp, tmp + got);
      size_t off = 0;
      while (m.buf.size() - off >= kRecordBytes) {
        const Record rec = ParseRecord(m.buf.data() + off);
        off += kRecordBytes;
        handle(p, rec);
        if (m.buf.size() < off) {  // handle() killed + respawned this very slot
          off = 0;
          break;
        }
      }
      m.buf.erase(m.buf.begin(), m.buf.begin() + static_cast<ptrdiff_t>(off));
    }
    maybe_release_restart();
  }

  if (!failed) {
    for (uint32_t p = 0; p < n; ++p) {
      if (!members[p].exit_sent) {
        send_ctl(p, Record{kCtExit, 0, 0, 0});
        members[p].exit_sent = true;
      }
    }
  } else {
    for (const Member& m : members) {
      if (m.pid >= 0 && !m.eof) {
        ::kill(m.pid, SIGKILL);
      }
    }
  }
  bool all_zero = true;
  for (Member& m : members) {
    if (m.pid < 0) {
      continue;
    }
    int ws = 0;
    ::waitpid(m.pid, &ws, 0);
    if (!(WIFEXITED(ws) && WEXITSTATUS(ws) == 0)) {
      all_zero = false;
      if (dbg) {
        std::fprintf(stderr, "[sup] member slot pid=%d exited=%d code=%d signaled=%d sig=%d\n",
                     (int)m.pid, WIFEXITED(ws), WIFEXITED(ws) ? WEXITSTATUS(ws) : -1,
                     WIFSIGNALED(ws), WIFSIGNALED(ws) ? WTERMSIG(ws) : 0);
      }
    }
    if (m.status_fd >= 0) ::close(m.status_fd);
    if (m.ctl_fd >= 0) ::close(m.ctl_fd);
  }
  out.ok = !failed && all_zero;
  out.stats.elapsed_seconds = sw.ElapsedSeconds();
  for (const Member& m : members) {
    out.stats.recoveries = std::max(out.stats.recoveries, m.done_recoveries);
    out.stats.checkpoint_epochs = std::max(out.stats.checkpoint_epochs, m.done_commits);
    out.stats.selective_recoveries += m.mode;
    out.stats.replayed_frames_dropped += m.replay_drops;
    out.stats.survivor_stall_seconds =
        std::max(out.stats.survivor_stall_seconds, static_cast<double>(m.stall_ns) / 1e9);
    out.stats.recovery_downtime_seconds = std::max(
        out.stats.recovery_downtime_seconds, static_cast<double>(m.downtime_ns) / 1e9);
  }
  return out;
}

}  // namespace naiad
