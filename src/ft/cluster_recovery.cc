#include "src/ft/cluster_recovery.h"

#include <poll.h>
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <mutex>
#include <thread>

#include "src/base/hash.h"
#include "src/base/logging.h"
#include "src/base/rng.h"
#include "src/base/stopwatch.h"
#include "src/ft/recovery.h"
#include "src/net/progress_router.h"
#include "src/ser/bytes.h"

namespace naiad {

namespace {

constexpr uint32_t kManifestMagic = 0x4e4d4653;  // "NMFS"

// ---- supervisor <-> member pipe records (fixed 25 bytes) ----------------------------

struct Record {
  uint8_t tag = 0;
  uint64_t a = 0;
  uint64_t b = 0;
  uint64_t c = 0;
};
constexpr size_t kRecordBytes = 25;

// member -> supervisor
constexpr uint8_t kStPort = 1;           // a = listen port
constexpr uint8_t kStStarting = 2;       // a = epoch, b = generation
constexpr uint8_t kStCheckpointing = 3;  // a = epoch, b = generation
constexpr uint8_t kStCommitted = 4;      // a = epoch
constexpr uint8_t kStRecovering = 5;     // a = candidate generation
constexpr uint8_t kStDone = 6;           // a = recoveries, b = committed epochs

// supervisor -> member
constexpr uint8_t kCtPort = 1;     // a = slot, b = port (one record per slot)
constexpr uint8_t kCtRecover = 2;  // a = generation being aborted
constexpr uint8_t kCtGo = 3;       // a = new generation, b = restore epoch (or none)
constexpr uint8_t kCtExit = 4;

bool WriteRecord(int fd, const Record& rec) {
  uint8_t buf[kRecordBytes];
  buf[0] = rec.tag;
  std::memcpy(buf + 1, &rec.a, 8);
  std::memcpy(buf + 9, &rec.b, 8);
  std::memcpy(buf + 17, &rec.c, 8);
  size_t off = 0;
  while (off < sizeof(buf)) {
    const ssize_t n = ::write(fd, buf + off, sizeof(buf) - off);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) {
        continue;
      }
      return false;
    }
    off += static_cast<size_t>(n);
  }
  return true;
}

Record ParseRecord(const uint8_t* buf) {
  Record rec;
  rec.tag = buf[0];
  std::memcpy(&rec.a, buf + 1, 8);
  std::memcpy(&rec.b, buf + 9, 8);
  std::memcpy(&rec.c, buf + 17, 8);
  return rec;
}

bool ReadRecord(int fd, Record* rec) {
  uint8_t buf[kRecordBytes];
  size_t off = 0;
  while (off < sizeof(buf)) {
    const ssize_t n = ::read(fd, buf + off, sizeof(buf) - off);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) {
        continue;
      }
      return false;
    }
    off += static_cast<size_t>(n);
  }
  *rec = ParseRecord(buf);
  return true;
}

// ---- the member (child) side --------------------------------------------------------

// One cluster member: a full Controller/TcpTransport/ClusterControl stack plus the pipe
// protocol to the supervisor. Lives in the forked child; never returns to the test body
// (the child _exits with Run's result).
class MemberRunner {
 public:
  MemberRunner(const ClusterRunConfig& cfg, uint32_t slot, int status_fd, int ctl_fd,
               bool replacement)
      : cfg_(cfg),
        slot_(slot),
        status_fd_(status_fd),
        ctl_fd_(ctl_fd),
        replacement_(replacement) {}

  int Run(const ClusterAppFactory& factory);

 private:
  void SendStatus(uint8_t tag, uint64_t a, uint64_t b) {
    NAIAD_CHECK(WriteRecord(status_fd_, Record{tag, a, b, 0}));
  }

  void ControlReaderMain();
  // Blocks for a GO record; false means EXIT arrived (or the supervisor died) instead.
  bool WaitGo(uint32_t* gen, uint64_t* restore);
  // After DONE: 0 = EXIT (normal), 1 = GO (a restart raced our completion; rejoin it).
  int WaitExitOrGo(uint32_t* gen, uint64_t* restore);

  void Build(uint32_t gen, uint64_t restore_epoch, uint64_t* start_epoch);
  void Teardown();
  // Runs epochs [start_epoch, total) plus the termination barrier; false = recovery.
  bool RunEpochs(uint64_t start_epoch);
  bool ShouldCheckpoint(uint64_t e) const {
    return (cfg_.checkpoint_every != 0 && (e + 1) % cfg_.checkpoint_every == 0) ||
           e + 1 == cfg_.total_epochs;
  }
  void NoteRecovered(uint64_t t0_ns, uint64_t restore_epoch);
  int Cleanup(int rc) {
    if (reader_.joinable()) {
      reader_.join();
    }
    return rc;
  }

  const ClusterRunConfig& cfg_;
  const uint32_t slot_;
  const int status_fd_;
  const int ctl_fd_;
  const bool replacement_;
  const ClusterAppFactory* factory_ = nullptr;
  std::vector<uint16_t> ports_;

  std::unique_ptr<Controller> ctl_;
  std::unique_ptr<TcpTransport> transport_;
  std::unique_ptr<DistributedProgressRouter> router_;
  std::unique_ptr<ClusterControl> control_;
  std::unique_ptr<ClusterApp> app_;
  uint32_t gen_ = 0;
  uint64_t recoveries_ = 0;
  uint64_t total_commits_ = 0;

  std::thread reader_;
  std::mutex sup_mu_;
  std::condition_variable sup_cv_;
  ClusterControl* current_control_ = nullptr;  // guarded by sup_mu_
  uint32_t current_gen_ = 0;                   // guarded by sup_mu_
  bool have_go_ = false;
  uint32_t go_gen_ = 0;
  uint64_t go_restore_ = kNoManifestEpoch;
  bool exit_requested_ = false;
};

void MemberRunner::ControlReaderMain() {
  Record rec;
  while (ReadRecord(ctl_fd_, &rec)) {
    std::unique_lock<std::mutex> lock(sup_mu_);
    switch (rec.tag) {
      case kCtRecover:
        // Generation-guarded: a hint for an already-abandoned generation must not abort
        // the one we just rebuilt.
        if (current_control_ != nullptr && current_gen_ == rec.a) {
          current_control_->RequestRecovery();
        }
        break;
      case kCtGo:
        go_gen_ = static_cast<uint32_t>(rec.a);
        go_restore_ = rec.b;
        have_go_ = true;
        sup_cv_.notify_all();
        break;
      case kCtExit:
        exit_requested_ = true;
        sup_cv_.notify_all();
        return;
      default:
        NAIAD_CHECK(false) << "bad supervisor record";
    }
  }
  // EOF: the supervisor died. Unblock the main thread so it can exit.
  std::lock_guard<std::mutex> lock(sup_mu_);
  exit_requested_ = true;
  sup_cv_.notify_all();
}

bool MemberRunner::WaitGo(uint32_t* gen, uint64_t* restore) {
  std::unique_lock<std::mutex> lock(sup_mu_);
  sup_cv_.wait(lock, [&] { return have_go_ || exit_requested_; });
  if (!have_go_) {
    return false;
  }
  have_go_ = false;
  *gen = go_gen_;
  *restore = go_restore_;
  return true;
}

int MemberRunner::WaitExitOrGo(uint32_t* gen, uint64_t* restore) {
  std::unique_lock<std::mutex> lock(sup_mu_);
  sup_cv_.wait(lock, [&] { return have_go_ || exit_requested_; });
  if (have_go_) {  // records arrive in order, so a pending GO precedes any EXIT
    have_go_ = false;
    *gen = go_gen_;
    *restore = go_restore_;
    return 1;
  }
  return 0;
}

void MemberRunner::Build(uint32_t gen, uint64_t restore_epoch, uint64_t* start_epoch) {
  gen_ = gen;
  Config c;
  c.process_id = slot_;
  c.processes = cfg_.processes;
  c.workers_per_process = cfg_.workers_per_process;
  c.batch_size = cfg_.batch_size;
  c.default_parallelism = cfg_.default_parallelism;
  c.scoping = cfg_.scoping;
  c.obs = cfg_.obs;
  if (!c.obs.trace_path.empty()) {
    c.obs.trace_path += ".p" + std::to_string(slot_);  // one file per member process
  }
  ctl_ = std::make_unique<Controller>(c);
  if (!transport_) {
    transport_ = std::make_unique<TcpTransport>(slot_, cfg_.processes);
    const uint16_t port = transport_->Listen(ports_[slot_]);
    NAIAD_CHECK(port == ports_[slot_]);
  }
  transport_->SetFaultPlan(cfg_.fault_plan);
  transport_->SetObs(&ctl_->obs());
  transport_->SetGeneration(gen);
  router_ = std::make_unique<DistributedProgressRouter>(
      ctl_.get(), transport_.get(), cfg_.strategy, /*hold_limit=*/1024,
      cfg_.fault_plan != nullptr ? cfg_.fault_plan->Progress(slot_) : nullptr);
  ctl_->SetProgressRouter(router_.get());
  ctl_->SetDataTransport(transport_.get());
  control_ = std::make_unique<ClusterControl>(ctl_.get(), transport_.get(), router_.get());
  app_ = (*factory_)(*ctl_);

  std::vector<ProgressUpdate> pending;
  if (restore_epoch != kNoManifestEpoch) {
    CheckpointReadResult res =
        ReadCheckpointFileEx(ClusterImagePath(cfg_.ckpt_dir, slot_, restore_epoch));
    // The manifest commit rule guarantees this image was durable before the epoch became
    // adoptable, so anything other than a clean read is a protocol violation.
    NAIAD_CHECK(res.ok()) << "manifest-committed image unreadable: epoch " << restore_epoch
                          << " status " << static_cast<int>(res.status);
    const std::vector<InputEpochs> inputs =
        RestoreProcess(*ctl_, std::move(res.image), &pending);
    app_->RestoreInputs(inputs);
    *start_epoch = restore_epoch + 1;
  } else {
    *start_epoch = 0;
  }

  {
    std::lock_guard<std::mutex> lock(sup_mu_);
    current_control_ = control_.get();
    current_gen_ = gen;
  }
  TcpTransport::Callbacks cb;
  Controller* ctl = ctl_.get();
  DistributedProgressRouter* router = router_.get();
  ClusterControl* control = control_.get();
  // Single-job cluster: every frame carries job 0, so the demux is just a type switch.
  cb.on_frame = [ctl, router, control](FrameType type, uint32_t src, uint32_t /*job*/,
                                       std::span<const uint8_t> p, bool /*wire*/) {
    switch (type) {
      case FrameType::kData:
        ctl->ReceiveRemoteBundle(p);
        break;
      case FrameType::kProgress:
        router->OnProgressFrame(src, p);
        break;
      case FrameType::kProgressAcc:
        router->OnAccumulatorFrame(src, p);
        break;
      case FrameType::kControl:
        control->HandleControl(src, p);
        break;
    }
  };
  cb.on_peer_down = [control](uint32_t peer) { control->ReportFailure(peer); };
  transport_->Start(ports_, std::move(cb));
  ctl_->Start();
  // Restored pending-notification +1s travel the ordinary broadcast channel, after Start
  // and strictly before any input is fed (see RestoreProcess's contract).
  if (!pending.empty()) {
    router_->Broadcast(std::move(pending));
  }
}

void MemberRunner::Teardown() {
  {
    std::lock_guard<std::mutex> lock(sup_mu_);
    current_control_ = nullptr;
  }
  transport_->Abort();  // unblocks senders mid-write; joins all transport threads
  ctl_->Stop();
  app_.reset();
  control_.reset();
  router_.reset();
  transport_.reset();  // releases the listen socket so Build can rebind the same port
  ctl_.reset();
}

bool MemberRunner::RunEpochs(uint64_t start_epoch) {
  auto write_image = [this](uint64_t epoch) {
    std::vector<uint8_t> image = CheckpointProcess(*ctl_);
    return WriteCheckpointFile(ClusterImagePath(cfg_.ckpt_dir, slot_, epoch), image);
  };
  auto write_manifest = [this](uint64_t epoch) {
    return WriteClusterManifest(cfg_.ckpt_dir, epoch, cfg_.processes);
  };
  const bool dbg = ::getenv("NAIAD_CLUSTER_DEBUG") != nullptr;
  for (uint64_t e = start_epoch; e < cfg_.total_epochs; ++e) {
    SendStatus(kStStarting, e, gen_);
    app_->FeedEpoch(e);
    if (dbg) std::fprintf(stderr, "[p%u g%u] fed epoch %llu\n", slot_, gen_, (unsigned long long)e);
    ctl_->tracker().WaitFor(
        [&] { return app_->EpochPassed(e) || control_->recovery_requested(); });
    if (dbg) std::fprintf(stderr, "[p%u g%u] epoch %llu passed (rec=%d)\n", slot_, gen_, (unsigned long long)e, (int)control_->recovery_requested());
    if (control_->recovery_requested()) {
      return false;
    }
    if (ShouldCheckpoint(e)) {
      SendStatus(kStCheckpointing, e, gen_);
      if (dbg) std::fprintf(stderr, "[p%u g%u] entering ckpt barrier e=%llu\n", slot_, gen_, (unsigned long long)e);
      if (!control_->RunCheckpointBarrier(e, write_image, write_manifest)) {
        NAIAD_CHECK(control_->recovery_requested()) << "cluster checkpoint failed outright";
        return false;
      }
      ++total_commits_;
      SendStatus(kStCommitted, e, gen_);
      if (dbg) std::fprintf(stderr, "[p%u g%u] ckpt committed e=%llu\n", slot_, gen_, (unsigned long long)e);
    }
  }
  app_->CloseInputs();
  if (dbg) std::fprintf(stderr, "[p%u g%u] inputs closed; termination barrier\n", slot_, gen_);
  if (!control_->RunTerminationBarrier()) {
    return false;
  }
  ctl_->Stop();
  return true;
}

void MemberRunner::NoteRecovered(uint64_t t0_ns, uint64_t restore_epoch) {
  ++recoveries_;
  ctl_->obs().tracer().ControlSpan(
      obs::TraceKind::kClusterRecover, t0_ns, obs::MonotonicNs(),
      restore_epoch == kNoManifestEpoch ? 0 : restore_epoch, gen_,
      restore_epoch == kNoManifestEpoch ? 0 : 1);
  if (obs::ProcessMetrics* pm = ctl_->obs().metrics().process()) {
    pm->cluster_recoveries.fetch_add(1, std::memory_order_relaxed);
  }
}

int MemberRunner::Run(const ClusterAppFactory& factory) {
  factory_ = &factory;
  // Phase A: port rendezvous. A fresh member binds an ephemeral port and announces it; a
  // replacement inherits the victim's published port from the map.
  if (!replacement_) {
    transport_ = std::make_unique<TcpTransport>(slot_, cfg_.processes);
    const uint16_t port = transport_->Listen(0);
    SendStatus(kStPort, port, 0);
  }
  ports_.resize(cfg_.processes);
  for (uint32_t i = 0; i < cfg_.processes; ++i) {
    Record rec;
    if (!ReadRecord(ctl_fd_, &rec)) {
      return 1;
    }
    NAIAD_CHECK(rec.tag == kCtPort && rec.a < cfg_.processes);
    ports_[rec.a] = static_cast<uint16_t>(rec.b);
  }
  reader_ = std::thread([this] { ControlReaderMain(); });

  uint64_t start_epoch = 0;
  if (replacement_) {
    // A replacement is born into a coordinated restart: rendezvous, then build at GO.
    const uint64_t t0 = obs::MonotonicNs();
    SendStatus(kStRecovering, 0, 0);
    uint32_t gen = 0;
    uint64_t restore = kNoManifestEpoch;
    if (!WaitGo(&gen, &restore)) {
      return Cleanup(0);  // the run finished without us; nothing to rejoin
    }
    Build(gen, restore, &start_epoch);
    NoteRecovered(t0, restore);
  } else {
    Build(0, kNoManifestEpoch, &start_epoch);
  }

  for (;;) {
    if (RunEpochs(start_epoch)) {
      SendStatus(kStDone, recoveries_, total_commits_);
      uint32_t gen = 0;
      uint64_t restore = kNoManifestEpoch;
      if (WaitExitOrGo(&gen, &restore) == 0) {
        break;
      }
      // A restart was ordered after we finished (the kill raced the termination verdict):
      // rejoin it. The restored epoch is final, so the re-run is just the barriers.
      const uint64_t t0 = obs::MonotonicNs();
      Teardown();
      Build(gen, restore, &start_epoch);
      NoteRecovered(t0, restore);
      continue;
    }
    // Recovery: tear the whole generation down, rendezvous, rebuild at GO.
    const uint64_t t0 = obs::MonotonicNs();
    const uint32_t candidate = gen_ + 1;
    Teardown();
    SendStatus(kStRecovering, candidate, 0);
    uint32_t gen = 0;
    uint64_t restore = kNoManifestEpoch;
    if (!WaitGo(&gen, &restore)) {
      return Cleanup(1);  // the supervisor gave up on the run
    }
    Build(gen, restore, &start_epoch);
    NoteRecovered(t0, restore);
  }
  // Supervised exit: every member reported DONE, so no peer is still inside a barrier and
  // link teardown can no longer be mistaken for a death.
  transport_->Shutdown();
  return Cleanup(0);
}

}  // namespace

// ---- paths and manifest -------------------------------------------------------------

std::string ClusterImagePath(const std::string& dir, uint32_t process, uint64_t epoch) {
  return dir + "/ckpt_p" + std::to_string(process) + "_e" + std::to_string(epoch);
}

std::string ClusterManifestPath(const std::string& dir) { return dir + "/MANIFEST"; }

bool WriteClusterManifest(const std::string& dir, uint64_t epoch, uint32_t processes,
                          const std::vector<uint32_t>& jobs) {
  ByteWriter w;
  w.WriteU32(kManifestMagic);
  w.WriteU64(epoch);
  w.WriteU32(processes);
  // The registered-job set at commit time: a recovering cluster must re-register exactly
  // these dataflows before adopting the epoch. The single-job harness writes {0}.
  w.WriteU32(static_cast<uint32_t>(jobs.size()));
  for (uint32_t j : jobs) {
    w.WriteU32(j);
  }
  return WriteCheckpointFile(ClusterManifestPath(dir), w.buffer());
}

uint64_t ReadClusterManifest(const std::string& dir, uint32_t expect_processes,
                             std::vector<uint32_t>* jobs) {
  CheckpointReadResult res = ReadCheckpointFileEx(ClusterManifestPath(dir));
  if (!res.ok()) {
    return kNoManifestEpoch;  // absent or unverifiable: not adoptable, fall back to fresh
  }
  ByteReader r(res.image);
  NAIAD_CHECK(r.ReadU32() == kManifestMagic) << "not a cluster manifest";
  const uint64_t epoch = r.ReadU64();
  NAIAD_CHECK(r.ReadU32() == expect_processes) << "manifest from a different cluster shape";
  const uint32_t njobs = r.ReadU32();
  NAIAD_CHECK(njobs >= 1) << "manifest committed with no registered job";
  if (jobs != nullptr) {
    jobs->clear();
  }
  for (uint32_t i = 0; i < njobs; ++i) {
    const uint32_t j = r.ReadU32();
    if (jobs != nullptr) {
      jobs->push_back(j);
    }
  }
  NAIAD_CHECK(r.ok());
  return epoch;
}

// ---- the supervisor (parent) side ---------------------------------------------------

ClusterKillOutcome ClusterKillRecoverDriver::Run(const Options& opts,
                                                 const ClusterAppFactory& factory) {
  const ClusterRunConfig& cfg = opts.cfg;
  const uint32_t n = cfg.processes;
  NAIAD_CHECK(n >= 2);
  NAIAD_CHECK(cfg.total_epochs >= 2);
  NAIAD_CHECK(!cfg.ckpt_dir.empty());
  // The supervisor writes into pipes whose reader may have been SIGKILLed; EPIPE is
  // handled, SIGPIPE must not be fatal.
  ::signal(SIGPIPE, SIG_IGN);

  ClusterKillOutcome out;
  Stopwatch sw;
  const bool dbg = ::getenv("NAIAD_CLUSTER_DEBUG") != nullptr;

  struct Member {
    pid_t pid = -1;
    int status_fd = -1;  // read end of the member's status pipe
    int ctl_fd = -1;     // write end of the member's control pipe
    bool done = false;
    bool exit_sent = false;
    bool eof = false;
    bool accounted = false;   // restart rendezvous: DONE or RECOVERING seen since the kill
    bool recovering = false;
    uint64_t done_recoveries = 0;
    uint64_t done_commits = 0;
    std::vector<uint8_t> buf;
  };
  std::vector<Member> members(n);

  // The supervisor must stay single-threaded: every member is forked from it, and a fork
  // of a multi-threaded process would start its child with locks in unknowable states.
  auto spawn = [&](uint32_t slot, bool replacement) {
    int sp[2];
    int cp[2];
    NAIAD_CHECK(::pipe(sp) == 0);
    NAIAD_CHECK(::pipe(cp) == 0);
    const pid_t pid = ::fork();
    NAIAD_CHECK(pid >= 0);
    if (pid == 0) {
      ::close(sp[0]);
      ::close(cp[1]);
      for (const Member& m : members) {  // drop inherited ends of the other members' pipes
        if (m.status_fd >= 0) ::close(m.status_fd);
        if (m.ctl_fd >= 0) ::close(m.ctl_fd);
      }
      MemberRunner runner(cfg, slot, sp[1], cp[0], replacement);
      ::_exit(runner.Run(factory));
    }
    ::close(sp[1]);
    ::close(cp[0]);
    members[slot] = Member{};
    members[slot].pid = pid;
    members[slot].status_fd = sp[0];
    members[slot].ctl_fd = cp[1];
  };

  auto send_ctl = [&](uint32_t slot, const Record& rec) {
    if (members[slot].ctl_fd >= 0) {
      WriteRecord(members[slot].ctl_fd, rec);  // EPIPE from an exited member is benign
    }
  };

  // Seed-derived kill schedule: victim, epoch, phase (mid-feed vs inside the checkpoint
  // barrier), and in-phase delay are all pure functions of the seed.
  uint32_t victim = 0;
  uint64_t kill_epoch = 0;
  bool barrier_kill = false;
  uint32_t kill_delay_us = 0;
  if (opts.inject_kill) {
    victim = static_cast<uint32_t>(opts.seed % n);
    kill_epoch = 1 + opts.seed % (cfg.total_epochs - 1);
    Rng kr(HashCombine(opts.seed, HashString("CLUSTER-KILL")));
    barrier_kill = (kr.Next() & 1) != 0;
    kill_delay_us = static_cast<uint32_t>(kr.Below(2000));
  }
  out.victim = victim;
  out.kill_epoch = kill_epoch;
  out.kill_in_barrier = barrier_kill;

  for (uint32_t p = 0; p < n; ++p) {
    spawn(p, /*replacement=*/false);
  }

  std::vector<uint16_t> ports(n, 0);
  uint32_t ports_seen = 0;
  bool ports_sent = false;
  bool killed = false;
  bool restart_pending = false;
  uint32_t cur_gen = 0;
  bool failed = false;

  auto do_kill = [&] {
    if (kill_delay_us > 0) {
      std::this_thread::sleep_for(std::chrono::microseconds(kill_delay_us));
    }
    ::kill(members[victim].pid, SIGKILL);
    int ws = 0;
    ::waitpid(members[victim].pid, &ws, 0);
    ::close(members[victim].status_fd);
    ::close(members[victim].ctl_fd);
    // Cleared before spawn(): the replacement's pipes may reuse these fd numbers, and the
    // child's close-other-members sweep must not tear down its own fresh pipe ends.
    members[victim].status_fd = -1;
    members[victim].ctl_fd = -1;
    killed = true;
    out.killed = true;
    ++cur_gen;
    restart_pending = true;
    for (Member& m : members) {
      m.accounted = m.done;  // a member already done before the kill stands as accounted
      m.recovering = false;
    }
    // Replacement first (it needs the port map before anyone can dial it), then hint the
    // survivors; the in-band kRecover broadcast usually beats this, the hint is liveness.
    spawn(victim, /*replacement=*/true);
    for (uint32_t j = 0; j < n; ++j) {
      send_ctl(victim, Record{kCtPort, j, ports[j], 0});
    }
    for (uint32_t p = 0; p < n; ++p) {
      if (p != victim && !members[p].done) {
        send_ctl(p, Record{kCtRecover, cur_gen - 1, 0, 0});
      }
    }
  };

  auto maybe_release_restart = [&] {
    if (!restart_pending) {
      return;
    }
    for (const Member& m : members) {
      if (!m.eof && !m.accounted) {
        return;
      }
    }
    restart_pending = false;
    bool any_recovering = false;
    for (uint32_t p = 0; p < n; ++p) {
      if (p != victim && members[p].recovering) {
        any_recovering = true;
      }
    }
    if (!any_recovering) {
      // Every survivor finished before the restart reached it (the kill raced the
      // termination verdict): the run is over, the replacement is superfluous.
      send_ctl(victim, Record{kCtExit, 0, 0, 0});
      members[victim].exit_sent = true;
      members[victim].done = true;
      return;
    }
    const uint64_t restore = ReadClusterManifest(cfg.ckpt_dir, n);
    out.restore_epoch = restore;
    for (uint32_t p = 0; p < n; ++p) {
      members[p].done = false;  // a finished member ordered into a restart reports anew
      send_ctl(p, Record{kCtGo, cur_gen, restore, 0});
    }
  };

  auto handle = [&](uint32_t p, const Record& rec) {
    switch (rec.tag) {
      case kStPort:
        NAIAD_CHECK(!ports_sent);
        ports[p] = static_cast<uint16_t>(rec.a);
        if (++ports_seen == n) {
          for (uint32_t m = 0; m < n; ++m) {
            for (uint32_t j = 0; j < n; ++j) {
              send_ctl(m, Record{kCtPort, j, ports[j], 0});
            }
          }
          ports_sent = true;
          out.launched = true;
        }
        break;
      case kStStarting:
        if (opts.inject_kill && !killed && !barrier_kill && p == victim &&
            rec.a == kill_epoch) {
          do_kill();
        }
        break;
      case kStCheckpointing:
        if (opts.inject_kill && !killed && barrier_kill && p == victim &&
            rec.a >= kill_epoch) {
          do_kill();
        }
        break;
      case kStCommitted:
        break;
      case kStRecovering:
        if (restart_pending) {
          members[p].accounted = true;
          members[p].recovering = true;
        } else if (!killed) {
          if (dbg) std::fprintf(stderr, "[sup] member %u recovering with no kill\n", p);
          failed = true;  // a recovery with no kill means a member falsely suspected death
        }
        break;
      case kStDone:
        members[p].done = true;
        members[p].done_recoveries = rec.a;
        members[p].done_commits = rec.b;
        members[p].accounted = true;
        break;
      default:
        if (dbg) std::fprintf(stderr, "[sup] bad record tag %u from %u\n", rec.tag, p);
        failed = true;
        break;
    }
    if (dbg) std::fprintf(stderr, "[sup] rec p%u tag=%u a=%llu b=%llu\n", p, rec.tag,
                          (unsigned long long)rec.a, (unsigned long long)rec.b);
  };

  for (;;) {
    bool all_done = true;
    for (const Member& m : members) {
      if (!m.done && !(m.eof && m.exit_sent)) {
        all_done = false;
      }
    }
    if (ports_sent && all_done && !restart_pending) {
      break;
    }
    if (failed || sw.ElapsedSeconds() > 180.0) {
      failed = true;
      break;
    }

    std::vector<pollfd> fds;
    std::vector<uint32_t> idx;
    for (uint32_t p = 0; p < n; ++p) {
      if (members[p].status_fd >= 0) {
        fds.push_back(pollfd{members[p].status_fd, POLLIN, 0});
        idx.push_back(p);
      }
    }
    if (fds.empty()) {
      if (dbg) std::fprintf(stderr, "[sup] no live status fds\n");
      failed = true;
      break;
    }
    const int rc = ::poll(fds.data(), static_cast<nfds_t>(fds.size()), 100);
    if (rc < 0) {
      if (errno == EINTR) {
        continue;
      }
      failed = true;
      break;
    }
    for (size_t i = 0; i < fds.size() && !failed; ++i) {
      if ((fds[i].revents & (POLLIN | POLLHUP | POLLERR)) == 0) {
        continue;
      }
      const uint32_t p = idx[i];
      uint8_t tmp[512];
      const ssize_t got = ::read(members[p].status_fd, tmp, sizeof(tmp));
      if (got < 0 && errno == EINTR) {
        continue;
      }
      if (got <= 0) {
        ::close(members[p].status_fd);
        members[p].status_fd = -1;
        members[p].eof = true;
        if (!members[p].exit_sent) {
          if (dbg) std::fprintf(stderr, "[sup] member %u EOF without exit\n", p);
          failed = true;  // a member died without being told to exit
        }
        continue;
      }
      Member& m = members[p];
      m.buf.insert(m.buf.end(), tmp, tmp + got);
      size_t off = 0;
      while (m.buf.size() - off >= kRecordBytes) {
        const Record rec = ParseRecord(m.buf.data() + off);
        off += kRecordBytes;
        handle(p, rec);
        if (m.buf.size() < off) {  // handle() killed + respawned this very slot
          off = 0;
          break;
        }
      }
      m.buf.erase(m.buf.begin(), m.buf.begin() + static_cast<ptrdiff_t>(off));
    }
    maybe_release_restart();
  }

  if (!failed) {
    for (uint32_t p = 0; p < n; ++p) {
      if (!members[p].exit_sent) {
        send_ctl(p, Record{kCtExit, 0, 0, 0});
        members[p].exit_sent = true;
      }
    }
  } else {
    for (const Member& m : members) {
      if (m.pid >= 0 && !m.eof) {
        ::kill(m.pid, SIGKILL);
      }
    }
  }
  bool all_zero = true;
  for (Member& m : members) {
    if (m.pid < 0) {
      continue;
    }
    int ws = 0;
    ::waitpid(m.pid, &ws, 0);
    if (!(WIFEXITED(ws) && WEXITSTATUS(ws) == 0)) {
      all_zero = false;
    }
    if (m.status_fd >= 0) ::close(m.status_fd);
    if (m.ctl_fd >= 0) ::close(m.ctl_fd);
  }
  out.ok = !failed && all_zero;
  out.stats.elapsed_seconds = sw.ElapsedSeconds();
  for (const Member& m : members) {
    out.stats.recoveries = std::max(out.stats.recoveries, m.done_recoveries);
    out.stats.checkpoint_epochs = std::max(out.stats.checkpoint_epochs, m.done_commits);
  }
  return out;
}

}  // namespace naiad
