// Cluster-wide checkpointing and single-process kill-and-recover (§3.4).
//
// This is the forked-process counterpart of src/net/cluster.h: N real OS processes, each a
// full Controller + TcpTransport + DistributedProgressRouter + ClusterControl stack, driven
// by a single-threaded supervisor (the test parent) over pipes. Because the members are
// processes, one of them can be SIGKILLed mid-epoch; the survivors then run the coordinated
// restart that the thread-mode cluster can only simulate.
//
// Protocol between a member and the supervisor (fixed 25-byte records, see
// cluster_recovery.cc): the member announces its listen port, each epoch start, each
// checkpoint attempt and commit, each recovery rendezvous, and final completion; the
// supervisor distributes the port map, hints recovery after a kill, releases the restart
// with a (generation, restore-epoch) GO record, and releases final teardown with EXIT —
// teardown is supervisor-gated so a finished member can never be mistaken for a dead one
// by a peer still inside a barrier.
//
// Recovery: on a recovery request (in-band kRecover, a peer-down report, or the supervisor
// hint) every member aborts its barriers, tears its whole runtime down, reports RECOVERING,
// and waits for GO. The supervisor forks a replacement for the killed slot, reads the last
// manifest-complete checkpoint epoch (the manifest is written atomically and only after
// every image is durable, so a kill during the barrier itself simply rolls back to the
// previous manifest), and GOes everyone into the next generation: fresh Controller, same
// fixed port, generation-tagged re-dial, RestoreProcess from the member's own image, input
// replay from the recorded InputEpochs, and re-injection of restored pending-notification
// +1s through the ordinary progress Broadcast channel.

#ifndef SRC_FT_CLUSTER_RECOVERY_H_
#define SRC_FT_CLUSTER_RECOVERY_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "src/core/controller.h"
#include "src/ft/checkpoint.h"
#include "src/net/cluster.h"

namespace naiad {

// The application half of a cluster member. The factory builds the dataflow graph on a
// not-yet-started controller; the harness then drives epochs through this interface.
//
// Contract (what makes checkpoint epochs clean cut points): the probe consulted by
// EpochPassed must be downstream (in the could-result-in order) of every stage that
// requests notifications, so an epoch that has passed the probe has no pending work other
// than notifications the checkpoint captures; and FeedEpoch(e) must be deterministic given
// (config, e) — replay after restore feeds the same records.
class ClusterApp {
 public:
  virtual ~ClusterApp() = default;
  // Feed this process's share of epoch `e` into the input handles (OnNext).
  virtual void FeedEpoch(uint64_t epoch) = 0;
  // Non-blocking: has `epoch` fully passed the app's probe? (Polled via WaitFor.)
  virtual bool EpochPassed(uint64_t epoch) = 0;
  // Fast-forward the input handles to the positions RestoreProcess recovered.
  virtual void RestoreInputs(const std::vector<InputEpochs>& inputs) = 0;
  // Close every input (OnCompleted), releasing the computation toward termination.
  virtual void CloseInputs() = 0;
};

// Builds the graph for one member process; called once per generation on a fresh
// controller, before Start().
using ClusterAppFactory =
    std::function<std::unique_ptr<ClusterApp>(Controller& ctl)>;

// How the cluster recovers from a member death (§3.4 vs ROADMAP item 3).
//   kCoordinated  every member tears down and restores from the last committed manifest.
//   kSelective    Falkirk Wheel: survivors stall at a clean cut but KEEP their state;
//                 only the replacement restores from its checkpoint, and survivors
//                 re-send their outbound-log tails to it (src/ft/log_recovery.h). Falls
//                 back to a coordinated restart whenever the selective preconditions
//                 fail (stall barrier timeout, torn log, closed inputs, rebase/manifest
//                 mismatch, a second failure within a selective generation).
enum class RecoveryMode : uint8_t {
  kCoordinated = 0,
  kSelective = 1,
};

// Reads NAIAD_RECOVERY_MODE ("coordinated" / "selective"); the kill-sweep tests and the
// CI matrix use it to run the same binaries under both recovery paths.
RecoveryMode RecoveryModeFromEnv(RecoveryMode def = RecoveryMode::kCoordinated);

struct ClusterRunConfig {
  uint32_t processes = 3;
  uint32_t workers_per_process = 2;
  ProgressStrategy strategy = ProgressStrategy::kLocalGlobalAcc;
  ProgressScoping scoping = ProgressScoping::kFlat;
  size_t batch_size = 4096;
  uint32_t default_parallelism = 0;
  uint64_t total_epochs = 6;
  // A cluster checkpoint runs after epoch e when (e+1) % checkpoint_every == 0, and always
  // after the final epoch (so the final state is always on disk for comparison).
  uint64_t checkpoint_every = 2;
  // Directory for per-process images and the MANIFEST; must exist.
  std::string ckpt_dir;
  // Optional fault plan (reset injection must be off: with on_peer_down armed, an injected
  // reset is indistinguishable from a death). Must outlive the run.
  ClusterFaultPlan* fault_plan = nullptr;
  obs::ObsOptions obs;  // trace_path, when set, gets a ".p<id>" suffix per member
  // Selective recovery additionally keeps per-destination outbound logs in ckpt_dir
  // (outlog_p<src>_to_<dst>) and garbage-collects superseded per-process images at each
  // checkpoint commit (the low watermark).
  RecoveryMode recovery_mode = RecoveryMode::kCoordinated;
};

// Image and manifest naming inside ClusterRunConfig::ckpt_dir.
std::string ClusterImagePath(const std::string& dir, uint32_t process, uint64_t epoch);
std::string ClusterManifestPath(const std::string& dir);

// Atomically publishes "checkpoint epoch `epoch` is complete for `processes` processes,
// with `jobs` registered on the job server at commit time". Called only by process 0,
// only after every process acked durable (the commit rule). The single-job harness
// records job 0.
bool WriteClusterManifest(const std::string& dir, uint64_t epoch, uint32_t processes,
                          const std::vector<uint32_t>& jobs = {0});

// Returns the last committed checkpoint epoch, or kNoManifestEpoch when no (valid)
// manifest exists; when `jobs` is non-null it receives the manifest's registered-job set.
// A manifest for a different process count fails loudly.
inline constexpr uint64_t kNoManifestEpoch = ~uint64_t{0};
uint64_t ReadClusterManifest(const std::string& dir, uint32_t expect_processes,
                             std::vector<uint32_t>* jobs = nullptr);

struct ClusterKillOutcome {
  bool launched = false;   // all members forked and the port map was distributed
  bool ok = false;         // every member exited 0 after a supervised EXIT
  bool killed = false;     // a victim was SIGKILLed
  uint32_t victim = 0;
  uint64_t kill_epoch = 0;
  bool kill_in_barrier = false;        // kill targeted the checkpoint barrier, not the feed
  uint64_t restore_epoch = kNoManifestEpoch;  // manifest epoch adopted (or none = fresh)
  // recoveries / checkpoint_epochs / elapsed, plus the selective-recovery block
  // (selective_recoveries counts members that rebuilt selectively; zero means the
  // coordinated fallback ran).
  ClusterStats stats;
};

// Forks cfg.processes members running `factory`-built apps, optionally SIGKILLs one of
// them at a seed-chosen point (victim, epoch, feed-vs-barrier phase, and in-phase delay are
// all pure functions of `seed`), supervises the coordinated restart, and reaps everyone.
// Determinism contract: the final epoch's checkpoint images are byte-identical to a clean
// (inject_kill = false) run's for every seed — that is the property under test.
class ClusterKillRecoverDriver {
 public:
  struct Options {
    ClusterRunConfig cfg;
    uint64_t seed = 0;
    bool inject_kill = true;
  };
  static ClusterKillOutcome Run(const Options& opts, const ClusterAppFactory& factory);
};

}  // namespace naiad

#endif  // SRC_FT_CLUSTER_RECOVERY_H_
