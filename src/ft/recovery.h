// Kill-and-recover driver (§3.4): real process death for the checkpoint/restore path.
//
// The checkpoint tests in ft_test simulate failure by abandoning a controller; this driver
// makes the failure real. It forks a child process that runs the computation, checkpointing
// to a file at epoch boundaries (atomically — write-temp-then-rename — so SIGKILL can never
// expose a torn image), and SIGKILLs the child mid-epoch at a seed-chosen point. Recovery
// then restores a fresh controller from whatever image survived on disk and replays the
// remaining epochs; results must be byte-identical to a clean run for every seed.
//
// Determinism contract: the kill epoch and the in-epoch kill delay are pure functions of
// the seed, so `seed` alone reproduces the failure schedule (up to OS scheduling of the
// victim, which recovery correctness must not depend on — that is the property under test).

#ifndef SRC_FT_RECOVERY_H_
#define SRC_FT_RECOVERY_H_

#include <cstdint>
#include <functional>
#include <span>
#include <string>
#include <vector>

namespace naiad {

// Atomically publishes `image` at `path` (temp file + fsync + rename + parent-directory
// fsync, so the publication survives power loss, not just process death). Returns false
// on I/O error — including when the image was renamed into place but its durability
// could not be established.
bool WriteCheckpointFile(const std::string& path, std::span<const uint8_t> image);

// Reads a previously published image; empty if the file is absent or unreadable.
std::vector<uint8_t> ReadCheckpointFile(const std::string& path);

class KillRecoverDriver {
 public:
  // The child's reporting channel back to the driver (a pipe). The child announces when it
  // begins feeding an epoch and when that epoch's checkpoint is durable on disk.
  class Reporter {
   public:
    explicit Reporter(int fd) : fd_(fd) {}
    void StartingEpoch(uint64_t epoch);
    void CheckpointDurable(uint64_t epoch);

   private:
    int fd_;
  };

  struct Outcome {
    bool forked = false;             // driver ran (fork succeeded)
    bool killed = false;             // child was SIGKILLed (vs finishing early)
    uint64_t kill_epoch = 0;         // epoch the kill targeted
    uint64_t last_durable_epoch = 0; // highest CheckpointDurable seen before the kill
    bool any_durable = false;
  };

  // Forks a child running `body(reporter)`; the child must _exit when done. The parent
  // SIGKILLs it a seed-derived delay after it announces StartingEpoch(kill_epoch), where
  // kill_epoch = 1 + seed % (total_epochs - 1) — always mid-run, never before the first
  // checkpoint can exist nor after the run's useful life.
  static Outcome Run(uint64_t seed, uint64_t total_epochs,
                     const std::function<void(Reporter&)>& body);
};

}  // namespace naiad

#endif  // SRC_FT_RECOVERY_H_
