// Kill-and-recover driver (§3.4): real process death for the checkpoint/restore path.
//
// The checkpoint tests in ft_test simulate failure by abandoning a controller; this driver
// makes the failure real. It forks a child process that runs the computation, checkpointing
// to a file at epoch boundaries (atomically — write-temp-then-rename — so SIGKILL can never
// expose a torn image), and SIGKILLs the child mid-epoch at a seed-chosen point. Recovery
// then restores a fresh controller from whatever image survived on disk and replays the
// remaining epochs; results must be byte-identical to a clean run for every seed.
//
// Determinism contract: the kill epoch and the in-epoch kill delay are pure functions of
// the seed, so `seed` alone reproduces the failure schedule (up to OS scheduling of the
// victim, which recovery correctness must not depend on — that is the property under test).

#ifndef SRC_FT_RECOVERY_H_
#define SRC_FT_RECOVERY_H_

#include <cstdint>
#include <functional>
#include <span>
#include <string>
#include <vector>

namespace naiad {

// Atomically publishes `image` at `path` (temp file + fsync + rename + parent-directory
// fsync, so the publication survives power loss, not just process death), appending an
// 8-byte footer [u32 CRC-32 of image][u32 footer magic] so readers can reject torn or
// bit-rotted images by content. Returns false on I/O error — including when the image was
// renamed into place but its durability could not be established.
bool WriteCheckpointFile(const std::string& path, std::span<const uint8_t> image);

// Why the read outcomes are split: the cluster recovery protocol reacts differently to
// each. "No checkpoint yet" (kAbsent) means restart from scratch; a damaged image
// (kCorrupt) under a manifest that names it means the manifest commit rule was violated
// and must fail loudly; a transient I/O error (kIoError) is retryable.
enum class CheckpointReadStatus : uint8_t {
  kOk = 0,       // image read and CRC-verified; footer stripped
  kAbsent = 1,   // no file at `path`
  kIoError = 2,  // open/read failed for a reason other than absence
  kCorrupt = 3,  // short read (shorter than the footer), bad footer magic, or CRC mismatch
};

struct CheckpointReadResult {
  CheckpointReadStatus status = CheckpointReadStatus::kAbsent;
  std::vector<uint8_t> image;  // footer stripped; empty unless status == kOk
  bool ok() const { return status == CheckpointReadStatus::kOk; }
};

// Reads and verifies a previously published image (see CheckpointReadStatus).
CheckpointReadResult ReadCheckpointFileEx(const std::string& path);

// Legacy wrapper: the verified image, or empty for every non-kOk outcome.
std::vector<uint8_t> ReadCheckpointFile(const std::string& path);

class KillRecoverDriver {
 public:
  // The child's reporting channel back to the driver (a pipe). The child announces when it
  // begins feeding an epoch and when that epoch's checkpoint is durable on disk.
  class Reporter {
   public:
    explicit Reporter(int fd) : fd_(fd) {}
    void StartingEpoch(uint64_t epoch);
    void CheckpointDurable(uint64_t epoch);

   private:
    int fd_;
  };

  struct Outcome {
    bool forked = false;             // driver ran (fork succeeded)
    bool killed = false;             // child was SIGKILLed (vs finishing early)
    uint64_t kill_epoch = 0;         // epoch the kill targeted
    uint64_t last_durable_epoch = 0; // highest CheckpointDurable seen before the kill
    bool any_durable = false;
  };

  // Forks a child running `body(reporter)`; the child must _exit when done. The parent
  // SIGKILLs it a seed-derived delay after it announces StartingEpoch(kill_epoch), where
  // kill_epoch = 1 + seed % (total_epochs - 1) — always mid-run, never before the first
  // checkpoint can exist nor after the run's useful life.
  static Outcome Run(uint64_t seed, uint64_t total_epochs,
                     const std::function<void(Reporter&)>& body);
};

}  // namespace naiad

#endif  // SRC_FT_RECOVERY_H_
