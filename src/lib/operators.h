// Umbrella header for the LINQ-style incremental operator library (§4.2).

#ifndef SRC_LIB_OPERATORS_H_
#define SRC_LIB_OPERATORS_H_

#include "src/lib/iterate.h"    // IWYU pragma: export
#include "src/lib/join.h"       // IWYU pragma: export
#include "src/lib/keyed_ops.h"  // IWYU pragma: export
#include "src/lib/map_ops.h"    // IWYU pragma: export

#endif  // SRC_LIB_OPERATORS_H_
