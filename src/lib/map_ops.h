// Stateless LINQ-style operators (§4.2): Select, Where, SelectMany, Concat.
//
// None of these requests notifications, so subgraphs built from them execute fully
// asynchronously — the paper's point about specializing uncoordinated operators in library
// code rather than the runtime.

#ifndef SRC_LIB_MAP_OPS_H_
#define SRC_LIB_MAP_OPS_H_

#include <functional>
#include <memory>
#include <type_traits>
#include <utility>
#include <vector>

#include "src/core/stage.h"

namespace naiad {

template <typename TIn, typename TOut>
class MapVertex final : public UnaryVertex<TIn, TOut> {
 public:
  using Fn = std::function<TOut(const TIn&)>;
  explicit MapVertex(Fn fn) : fn_(std::move(fn)) {}
  void OnRecv(const Timestamp& t, std::vector<TIn>& batch) override {
    std::vector<TOut> out;
    out.reserve(batch.size());
    for (const TIn& x : batch) {
      out.push_back(fn_(x));
    }
    this->output().SendBatch(t, std::move(out));
  }

 private:
  Fn fn_;
};

template <typename T>
class WhereVertex final : public UnaryVertex<T, T> {
 public:
  using Fn = std::function<bool(const T&)>;
  explicit WhereVertex(Fn pred) : pred_(std::move(pred)) {}
  void OnRecv(const Timestamp& t, std::vector<T>& batch) override {
    std::vector<T> out;
    for (T& x : batch) {
      if (pred_(x)) {
        out.push_back(std::move(x));
      }
    }
    this->output().SendBatch(t, std::move(out));
  }

 private:
  Fn pred_;
};

template <typename TIn, typename TOut>
class FlatMapVertex final : public UnaryVertex<TIn, TOut> {
 public:
  using Fn = std::function<std::vector<TOut>(const TIn&)>;
  explicit FlatMapVertex(Fn fn) : fn_(std::move(fn)) {}
  void OnRecv(const Timestamp& t, std::vector<TIn>& batch) override {
    std::vector<TOut> out;
    for (const TIn& x : batch) {
      std::vector<TOut> produced = fn_(x);
      out.insert(out.end(), std::make_move_iterator(produced.begin()),
                 std::make_move_iterator(produced.end()));
    }
    this->output().SendBatch(t, std::move(out));
  }

 private:
  Fn fn_;
};

template <typename T>
class ConcatVertex final : public BinaryVertex<T, T, T> {
 public:
  void OnRecv1(const Timestamp& t, std::vector<T>& batch) override {
    this->output().SendBatch(t, std::move(batch));
  }
  void OnRecv2(const Timestamp& t, std::vector<T>& batch) override {
    this->output().SendBatch(t, std::move(batch));
  }
};

// Forwards batches only at timestamps accepted by a predicate — e.g. to expose only the
// final iteration of a bounded loop to the egress.
template <typename T>
class WhereTimeVertex final : public UnaryVertex<T, T> {
 public:
  using Fn = std::function<bool(const Timestamp&)>;
  explicit WhereTimeVertex(Fn pred) : pred_(std::move(pred)) {}
  void OnRecv(const Timestamp& t, std::vector<T>& batch) override {
    if (pred_(t)) {
      this->output().SendBatch(t, std::move(batch));
    }
  }

 private:
  Fn pred_;
};

// ---- free functions -----------------------------------------------------------------

template <typename TIn, typename F>
auto Select(const Stream<TIn>& s, F fn) {
  using TOut = std::invoke_result_t<F, const TIn&>;
  GraphBuilder& b = *s.builder;
  StageId sid = b.NewStage<MapVertex<TIn, TOut>>(
      StageOptions{.name = "select", .depth = s.depth}, [fn](uint32_t) {
        return std::make_unique<MapVertex<TIn, TOut>>(fn);
      });
  b.Connect<MapVertex<TIn, TOut>, TIn>(s, sid);
  return b.OutputOf<TOut>(sid);
}

template <typename T, typename F>
Stream<T> Where(const Stream<T>& s, F pred) {
  GraphBuilder& b = *s.builder;
  StageId sid = b.NewStage<WhereVertex<T>>(StageOptions{.name = "where", .depth = s.depth},
                                           [pred](uint32_t) {
                                             return std::make_unique<WhereVertex<T>>(pred);
                                           });
  b.Connect<WhereVertex<T>, T>(s, sid);
  return b.OutputOf<T>(sid);
}

template <typename TIn, typename F>
auto SelectMany(const Stream<TIn>& s, F fn) {
  using TOut = typename std::invoke_result_t<F, const TIn&>::value_type;
  GraphBuilder& b = *s.builder;
  StageId sid = b.NewStage<FlatMapVertex<TIn, TOut>>(
      StageOptions{.name = "selectmany", .depth = s.depth}, [fn](uint32_t) {
        return std::make_unique<FlatMapVertex<TIn, TOut>>(fn);
      });
  b.Connect<FlatMapVertex<TIn, TOut>, TIn>(s, sid);
  return b.OutputOf<TOut>(sid);
}

template <typename T, typename F>
Stream<T> WhereTime(const Stream<T>& s, F pred) {
  GraphBuilder& b = *s.builder;
  StageId sid = b.NewStage<WhereTimeVertex<T>>(
      StageOptions{.name = "where-time", .depth = s.depth}, [pred](uint32_t) {
        return std::make_unique<WhereTimeVertex<T>>(pred);
      });
  b.Connect<WhereTimeVertex<T>, T>(s, sid);
  return b.OutputOf<T>(sid);
}

template <typename T>
Stream<T> Concat(const Stream<T>& a, const Stream<T>& b_in) {
  GraphBuilder& b = *a.builder;
  NAIAD_CHECK(a.depth == b_in.depth);
  StageId sid = b.NewStage<ConcatVertex<T>>(StageOptions{.name = "concat", .depth = a.depth},
                                            [](uint32_t) {
                                              return std::make_unique<ConcatVertex<T>>();
                                            });
  b.Connect<ConcatVertex<T>, T>(a, sid, 0);
  b.Connect<ConcatVertex<T>, T>(b_in, sid, 1);
  return b.OutputOf<T>(sid);
}

}  // namespace naiad

#endif  // SRC_LIB_MAP_OPS_H_
