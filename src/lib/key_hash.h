// Default partitioning-hash for operator keys. Exchange connectors need a deterministic
// uint64 per key that is identical on every process (§3.1); std::hash is not portable, so
// keyed operators derive one structurally.

#ifndef SRC_LIB_KEY_HASH_H_
#define SRC_LIB_KEY_HASH_H_

#include <string>
#include <tuple>
#include <type_traits>
#include <utility>

#include "src/base/hash.h"

namespace naiad {

template <typename K>
uint64_t KeyHash(const K& k) {
  if constexpr (std::is_integral_v<K> || std::is_enum_v<K>) {
    return static_cast<uint64_t>(k);
  } else if constexpr (std::is_same_v<K, std::string>) {
    return HashString(k);
  } else {
    static_assert(requires { k.first; k.second; },
                  "provide an explicit partitioner for this key type");
    return HashCombine(KeyHash(k.first), KeyHash(k.second));
  }
}

}  // namespace naiad

#endif  // SRC_LIB_KEY_HASH_H_
