// A Pregel library on timely dataflow (§4.2): bulk-synchronous vertex programs with
// supersteps, combiner-free message passing, vote-to-halt semantics, and local graph
// mutation. Supersteps are loop iterations; the barrier between them is the completeness
// notification — no dedicated coordination machinery, exactly the paper's point.
//
// Subset note (DESIGN.md): the original port also supports global aggregators via extra
// feedback edges; this implementation covers compute/messages/halting/mutation, which is
// what the Fig. 7a PageRank comparison exercises.

#ifndef SRC_LIB_PREGEL_H_
#define SRC_LIB_PREGEL_H_

#include <functional>
#include <map>
#include <memory>
#include <set>
#include <utility>
#include <vector>

#include "src/algo/csr.h"
#include "src/core/loop.h"
#include "src/core/stage.h"
#include "src/gen/graphs.h"

namespace naiad {

// The view a vertex program gets of one node during one superstep.
template <typename S, typename M>
class PregelNodeContext {
 public:
  PregelNodeContext(uint64_t node, uint64_t superstep, S* state,
                    std::vector<uint64_t>* out_edges,
                    std::function<void(uint64_t, const M&)> send)
      : node_(node), superstep_(superstep), state_(state), out_(out_edges),
        send_(std::move(send)) {}

  uint64_t node_id() const { return node_; }
  uint64_t superstep() const { return superstep_; }
  S& state() { return *state_; }
  const std::vector<uint64_t>& out_edges() const { return *out_; }

  void SendTo(uint64_t dst, const M& msg) {
    sent_ = true;
    send_(dst, msg);
  }
  void SendToAllNeighbors(const M& msg) {
    for (uint64_t dst : *out_) {
      SendTo(dst, msg);
    }
  }
  // Pregel graph mutation (local out-edges).
  void AddEdge(uint64_t dst) { out_->push_back(dst); }
  void RemoveEdges(uint64_t dst) { std::erase(*out_, dst); }

  void VoteToHalt() { halted_ = true; }
  bool voted_halt() const { return halted_; }
  bool sent_any() const { return sent_; }

 private:
  uint64_t node_;
  uint64_t superstep_;
  S* state_;
  std::vector<uint64_t>* out_;
  std::function<void(uint64_t, const M&)> send_;
  bool halted_ = false;
  bool sent_ = false;
};

template <typename S, typename M>
using PregelComputeFn =
    std::function<void(PregelNodeContext<S, M>&, const std::vector<M>&)>;

template <typename S, typename M>
class PregelStageVertex final
    : public Binary2Vertex<Edge, std::pair<uint64_t, M>, std::pair<uint64_t, M>,
                           std::pair<uint64_t, S>> {
 public:
  PregelStageVertex(S initial, uint64_t max_supersteps, PregelComputeFn<S, M> compute)
      : initial_(std::move(initial)), max_supersteps_(max_supersteps),
        compute_(std::move(compute)) {}

  void OnRecv1(const Timestamp& t, std::vector<Edge>& edges) override {
    Ctx& c = CtxFor(t);
    for (const Edge& e : edges) {
      c.nodes[Materialize(c, e.first)].out.push_back(e.second);
    }
    MaybeNotify(c, t);
  }

  void OnRecv2(const Timestamp& t, std::vector<std::pair<uint64_t, M>>& msgs) override {
    Ctx& c = CtxFor(t);
    // Inboxes are keyed by superstep timestamp: messages for superstep i+1 may be
    // delivered before OnNotify(i) runs (§2.2's asynchronous delivery). Within one
    // superstep they are dense vectors indexed by local node id.
    auto& inbox = c.inboxes[t];
    for (auto& [dst, m] : msgs) {
      const uint32_t local = Materialize(c, dst);
      if (local >= inbox.size()) {
        inbox.resize(c.nodes.size());
      }
      inbox[local].push_back(std::move(m));
    }
    MaybeNotify(c, t);
  }

  void OnNotify(const Timestamp& t) override {
    Ctx& c = CtxFor(t);
    c.notified.erase(t);
    const uint64_t step = t.coords.back();
    std::vector<std::vector<M>> inbox;
    if (auto it = c.inboxes.find(t); it != c.inboxes.end()) {
      inbox = std::move(it->second);
      c.inboxes.erase(it);
    }
    bool any_active = false;
    static const std::vector<M> kNoMessages;
    // Dense sequential sweep in local-id order (compute_ cannot create nodes, so the
    // array is stable across the loop).
    for (uint32_t local = 0; local < c.nodes.size(); ++local) {
      Node& n = c.nodes[local];
      const bool has_msgs = local < inbox.size() && !inbox[local].empty();
      if (n.halted && !has_msgs) {
        continue;
      }
      n.halted = false;  // a message reactivates a halted node
      const uint64_t id = c.remap.ToGlobal(local);
      PregelNodeContext<S, M> ctx(id, step, &n.state, &n.out,
                                  [&](uint64_t dst, const M& m) {
                                    this->output1().Send(t, {dst, m});
                                  });
      compute_(ctx, has_msgs ? inbox[local] : kNoMessages);
      n.halted = ctx.voted_halt();
      if (!n.halted) {
        any_active = true;
      }
      this->output2().Send(t, {id, n.state});
    }
    if (any_active && step + 1 < max_supersteps_) {
      Timestamp next = t.Incremented();
      if (c.notified.insert(next).second) {
        this->NotifyAt(next);
      }
    }
  }

 private:
  struct Node {
    S state;
    std::vector<uint64_t> out;
    bool halted = false;
  };
  struct Ctx {
    IdRemap remap;
    std::vector<Node> nodes;  // dense, indexed by local id (first-seen order)
    std::map<Timestamp, std::vector<std::vector<M>>> inboxes;
    std::set<Timestamp> notified;
  };

  Ctx& CtxFor(const Timestamp& t) { return ctx_[t.Popped()]; }

  // Insert-or-get the dense slot for global node `g` (IdRemap assigns local ids densely,
  // so a fresh intern always lands at the back of the array).
  uint32_t Materialize(Ctx& c, uint64_t g) {
    const uint32_t local = c.remap.Intern(g);
    if (local >= c.nodes.size()) {
      c.nodes.push_back(Node{initial_, {}, false});
    }
    return local;
  }

  void MaybeNotify(Ctx& c, const Timestamp& t) {
    if (t.coords.back() >= max_supersteps_) {
      return;
    }
    if (c.notified.insert(t).second) {
      this->NotifyAt(t);
    }
  }

  S initial_;
  uint64_t max_supersteps_;
  PregelComputeFn<S, M> compute_;
  std::map<Timestamp, Ctx> ctx_;
};

// Runs a Pregel program over the edges supplied in each epoch. The result stream carries
// (node, state) updates per superstep; the last update per node is its final state.
template <typename S, typename M>
Stream<std::pair<uint64_t, S>> Pregel(const Stream<Edge>& edges, S initial,
                                      uint64_t max_supersteps,
                                      PregelComputeFn<S, M> compute) {
  GraphBuilder& b = *edges.builder;
  using V = PregelStageVertex<S, M>;
  using Msg = std::pair<uint64_t, M>;
  LoopContext loop(b, edges.depth, "pregel");
  FeedbackHandle<Msg> fb = loop.NewFeedback<Msg>();
  Stream<Edge> in_loop =
      loop.Ingress<Edge>(edges, [](const Edge& e) { return Mix64(e.first); });
  StageId sid = b.NewStage<V>(
      StageOptions{.name = "pregel", .depth = loop.inner_depth()},
      [initial, max_supersteps, compute](uint32_t) {
        return std::make_unique<V>(initial, max_supersteps, compute);
      });
  b.Connect<V, Edge>(in_loop, sid, 0);
  b.Connect<V, Msg>(fb.stream(), sid, 1,
                    [](const Msg& m) { return Mix64(m.first); });
  fb.ConnectLoop(b.OutputOf<Msg>(sid, 0), [](const Msg& m) { return Mix64(m.first); });
  return loop.Egress<std::pair<uint64_t, S>>(b.OutputOf<std::pair<uint64_t, S>>(sid, 1));
}

}  // namespace naiad

#endif  // SRC_LIB_PREGEL_H_
