// Keyed operators (§4.2): Count, GroupBy (reduce), Distinct, and the Bloom^L-style
// monotonic Aggregate.
//
// Coordination policy follows the paper's discussion (§2.4): Count and GroupBy buffer per
// timestamp and use OnNotify to emit exactly-once results; Distinct emits eagerly on first
// sight; the monotonic Aggregate never notifies, so loops built from it run uncoordinated.

#ifndef SRC_LIB_KEYED_OPS_H_
#define SRC_LIB_KEYED_OPS_H_

#include <functional>
#include <map>
#include <memory>
#include <set>
#include <type_traits>
#include <utility>
#include <vector>

#include "src/core/stage.h"
#include "src/lib/key_hash.h"
#include "src/ser/codec.h"

namespace naiad {

// State scoping for uncoordinated stateful operators: kGlobal shares state across epochs
// (incremental computation over growing inputs); kPerEpoch isolates epochs (batch
// semantics).
enum class StateScope : uint8_t { kGlobal, kPerEpoch };

// Counts occurrences of each key per timestamp; emits (key, count) on completeness.
template <typename T, typename K>
class CountByVertex final : public UnaryVertex<T, std::pair<K, uint64_t>> {
 public:
  using KeyFn = std::function<K(const T&)>;
  explicit CountByVertex(KeyFn key) : key_(std::move(key)) {}

  void OnRecv(const Timestamp& t, std::vector<T>& batch) override {
    auto [it, fresh] = counts_.try_emplace(t);
    if (fresh) {
      this->NotifyAt(t);
    }
    for (const T& x : batch) {
      ++it->second[key_(x)];
    }
  }

  void OnNotify(const Timestamp& t) override {
    auto it = counts_.find(t);
    if (it == counts_.end()) {
      return;
    }
    for (const auto& [k, n] : it->second) {
      this->output().Send(t, {k, n});
    }
    counts_.erase(it);
  }

  void Checkpoint(ByteWriter& w) const override {
    if constexpr (Encodable<K>) {
      Codec<std::map<Timestamp, std::map<K, uint64_t>>>::Encode(w, counts_);
    }
  }
  bool Restore(ByteReader& r) override {
    if constexpr (Encodable<K>) {
      return Codec<std::map<Timestamp, std::map<K, uint64_t>>>::Decode(r, counts_);
    }
    return true;
  }

 private:
  KeyFn key_;
  std::map<Timestamp, std::map<K, uint64_t>> counts_;
};

template <typename T, typename F>
auto Count(const Stream<T>& s, F key_fn) {
  using K = std::invoke_result_t<F, const T&>;
  GraphBuilder& b = *s.builder;
  StageId sid = b.NewStage<CountByVertex<T, K>>(
      StageOptions{.name = "count", .depth = s.depth}, [key_fn](uint32_t) {
        return std::make_unique<CountByVertex<T, K>>(key_fn);
      });
  b.Connect<CountByVertex<T, K>, T>(s, sid, 0,
                                    [key_fn](const T& x) { return KeyHash(key_fn(x)); });
  return b.OutputOf<std::pair<K, uint64_t>>(sid);
}

// GroupBy: buffers values per (time, key), applies the reducer on completeness.
// Reducer: (const K&, std::vector<V>&) -> std::vector<TOut>.
template <typename V, typename K, typename TOut>
class GroupByVertex final : public UnaryVertex<V, TOut> {
 public:
  using KeyFn = std::function<K(const V&)>;
  using ReduceFn = std::function<std::vector<TOut>(const K&, std::vector<V>&)>;
  GroupByVertex(KeyFn key, ReduceFn reduce) : key_(std::move(key)), reduce_(std::move(reduce)) {}

  void OnRecv(const Timestamp& t, std::vector<V>& batch) override {
    auto [it, fresh] = groups_.try_emplace(t);
    if (fresh) {
      this->NotifyAt(t);
    }
    for (V& x : batch) {
      it->second[key_(x)].push_back(std::move(x));
    }
  }

  void OnNotify(const Timestamp& t) override {
    auto it = groups_.find(t);
    if (it == groups_.end()) {
      return;
    }
    for (auto& [k, vals] : it->second) {
      std::vector<TOut> out = reduce_(k, vals);
      this->output().SendBatch(t, std::move(out));
    }
    groups_.erase(it);
  }

  void Checkpoint(ByteWriter& w) const override {
    if constexpr (Encodable<K> && Encodable<V>) {
      Codec<std::map<Timestamp, std::map<K, std::vector<V>>>>::Encode(w, groups_);
    }
  }
  bool Restore(ByteReader& r) override {
    if constexpr (Encodable<K> && Encodable<V>) {
      return Codec<std::map<Timestamp, std::map<K, std::vector<V>>>>::Decode(r, groups_);
    }
    return true;
  }

 private:
  KeyFn key_;
  ReduceFn reduce_;
  std::map<Timestamp, std::map<K, std::vector<V>>> groups_;
};

template <typename V, typename KF, typename RF>
auto GroupBy(const Stream<V>& s, KF key_fn, RF reduce_fn) {
  using K = std::invoke_result_t<KF, const V&>;
  using TOut = typename std::invoke_result_t<RF, const K&, std::vector<V>&>::value_type;
  GraphBuilder& b = *s.builder;
  StageId sid = b.NewStage<GroupByVertex<V, K, TOut>>(
      StageOptions{.name = "groupby", .depth = s.depth}, [key_fn, reduce_fn](uint32_t) {
        return std::make_unique<GroupByVertex<V, K, TOut>>(key_fn, reduce_fn);
      });
  b.Connect<GroupByVertex<V, K, TOut>, V>(
      s, sid, 0, [key_fn](const V& x) { return KeyHash(key_fn(x)); });
  return b.OutputOf<TOut>(sid);
}

// Distinct: emits each record the first time it is seen at a timestamp; requests a
// notification only to reclaim state, never to gate output (§4.2).
template <typename T>
class DistinctVertex final : public UnaryVertex<T, T> {
 public:
  void OnRecv(const Timestamp& t, std::vector<T>& batch) override {
    auto [it, fresh] = seen_.try_emplace(t);
    if (fresh) {
      this->NotifyAt(t);
    }
    std::vector<T> out;
    for (T& x : batch) {
      if (it->second.insert(x).second) {
        out.push_back(std::move(x));
      }
    }
    this->output().SendBatch(t, std::move(out));
  }

  void OnNotify(const Timestamp& t) override { seen_.erase(t); }

  void Checkpoint(ByteWriter& w) const override {
    if constexpr (Encodable<T>) {
      Codec<std::map<Timestamp, std::set<T>>>::Encode(w, seen_);
    }
  }
  bool Restore(ByteReader& r) override {
    if constexpr (Encodable<T>) {
      return Codec<std::map<Timestamp, std::set<T>>>::Decode(r, seen_);
    }
    return true;
  }

 private:
  std::map<Timestamp, std::set<T>> seen_;
};

template <typename T>
Stream<T> Distinct(const Stream<T>& s) {
  GraphBuilder& b = *s.builder;
  StageId sid = b.NewStage<DistinctVertex<T>>(
      StageOptions{.name = "distinct", .depth = s.depth},
      [](uint32_t) { return std::make_unique<DistinctVertex<T>>(); });
  b.Connect<DistinctVertex<T>, T>(s, sid, 0, [](const T& x) { return KeyHash(x); });
  return b.OutputOf<T>(sid);
}

// The Figure 4 vertex, verbatim: one input, two outputs. Distinct records stream out the
// moment they are first seen (low latency); per-record counts wait for the completeness
// notification (correctness) — the paper's illustration of mixing both styles.
template <typename T>
class DistinctCountVertex final : public Unary2Vertex<T, T, std::pair<T, uint64_t>> {
 public:
  void OnRecv(const Timestamp& t, std::vector<T>& batch) override {
    auto [it, fresh] = counts_.try_emplace(t);
    if (fresh) {
      this->NotifyAt(t);
    }
    for (T& x : batch) {
      auto [cit, first_sight] = it->second.try_emplace(x, 0);
      if (first_sight) {
        this->output1().Send(t, x);
      }
      ++cit->second;
    }
  }

  void OnNotify(const Timestamp& t) override {
    auto it = counts_.find(t);
    if (it == counts_.end()) {
      return;
    }
    for (const auto& [x, n] : it->second) {
      this->output2().Send(t, {x, n});
    }
    counts_.erase(it);
  }

  void Checkpoint(ByteWriter& w) const override {
    if constexpr (Encodable<T>) {
      Codec<std::map<Timestamp, std::map<T, uint64_t>>>::Encode(w, counts_);
    }
  }
  bool Restore(ByteReader& r) override {
    if constexpr (Encodable<T>) {
      return Codec<std::map<Timestamp, std::map<T, uint64_t>>>::Decode(r, counts_);
    }
    return true;
  }

 private:
  std::map<Timestamp, std::map<T, uint64_t>> counts_;
};

template <typename T>
struct DistinctCountStreams {
  Stream<T> distinct;                        // eager, per first sighting
  Stream<std::pair<T, uint64_t>> counts;     // exact, on completeness
};

template <typename T>
DistinctCountStreams<T> DistinctCount(const Stream<T>& s) {
  GraphBuilder& b = *s.builder;
  StageId sid = b.NewStage<DistinctCountVertex<T>>(
      StageOptions{.name = "distinct-count", .depth = s.depth},
      [](uint32_t) { return std::make_unique<DistinctCountVertex<T>>(); });
  b.Connect<DistinctCountVertex<T>, T>(s, sid, 0, [](const T& x) { return KeyHash(x); });
  return DistinctCountStreams<T>{b.OutputOf<T>(sid, 0),
                                 b.OutputOf<std::pair<T, uint64_t>>(sid, 1)};
}

// Fully asynchronous Distinct for use inside loops (the Bloom subset, §4.2): never
// invokes NotifyAt, so enclosing loops run without coordination. kPerEpoch deduplicates
// within an epoch across all loop iterations (Datalog per batch); kGlobal deduplicates
// across epochs too (incremental semi-naive evaluation over monotone inputs). State lives
// until the vertex is destroyed.
template <typename T>
class AsyncDistinctVertex final : public UnaryVertex<T, T> {
 public:
  explicit AsyncDistinctVertex(StateScope scope) : scope_(scope) {}

  void OnRecv(const Timestamp& t, std::vector<T>& batch) override {
    std::set<T>& seen = scope_ == StateScope::kGlobal ? global_ : per_epoch_[t.epoch];
    std::vector<T> out;
    for (T& x : batch) {
      if (seen.insert(x).second) {
        out.push_back(std::move(x));
      }
    }
    this->output().SendBatch(t, std::move(out));
  }

  void Checkpoint(ByteWriter& w) const override {
    if constexpr (Encodable<T>) {
      Codec<std::map<uint64_t, std::set<T>>>::Encode(w, per_epoch_);
      Codec<std::set<T>>::Encode(w, global_);
    }
  }
  bool Restore(ByteReader& r) override {
    if constexpr (Encodable<T>) {
      return Codec<std::map<uint64_t, std::set<T>>>::Decode(r, per_epoch_) &&
             Codec<std::set<T>>::Decode(r, global_);
    }
    return true;
  }

 private:
  StateScope scope_;
  std::map<uint64_t, std::set<T>> per_epoch_;
  std::set<T> global_;
};

template <typename T>
Stream<T> AsyncDistinct(const Stream<T>& s, StateScope scope = StateScope::kPerEpoch) {
  GraphBuilder& b = *s.builder;
  StageId sid = b.NewStage<AsyncDistinctVertex<T>>(
      StageOptions{.name = "async-distinct", .depth = s.depth},
      [scope](uint32_t) { return std::make_unique<AsyncDistinctVertex<T>>(scope); });
  b.Connect<AsyncDistinctVertex<T>, T>(s, sid, 0, [](const T& x) { return KeyHash(x); });
  return b.OutputOf<T>(sid);
}

// Monotonic aggregation (Bloom^L, §2.4/§4.2): per key, combine() folds values toward a
// lattice top; an output is emitted whenever a key's aggregate improves. No NotifyAt —
// outputs may be revised, enabling fast uncoordinated iteration.
template <typename K, typename V>
class MonotonicAggregateVertex final : public UnaryVertex<std::pair<K, V>, std::pair<K, V>> {
 public:
  // Returns true if `current` was improved (replaced) by `candidate`.
  using CombineFn = std::function<bool(V& current, const V& candidate)>;
  MonotonicAggregateVertex(CombineFn combine, StateScope scope)
      : combine_(std::move(combine)), scope_(scope) {}

  void OnRecv(const Timestamp& t, std::vector<std::pair<K, V>>& batch) override {
    std::map<K, V>& state = scope_ == StateScope::kGlobal ? global_ : per_epoch_[t.epoch];
    std::vector<std::pair<K, V>> improved;
    for (auto& [k, v] : batch) {
      auto [it, fresh] = state.try_emplace(k, v);
      if (fresh || combine_(it->second, v)) {
        improved.emplace_back(k, it->second);
      }
    }
    this->output().SendBatch(t, std::move(improved));
  }

  void Checkpoint(ByteWriter& w) const override {
    if constexpr (Encodable<K> && Encodable<V>) {
      Codec<std::map<K, V>>::Encode(w, global_);
      Codec<std::map<uint64_t, std::map<K, V>>>::Encode(w, per_epoch_);
    }
  }
  bool Restore(ByteReader& r) override {
    if constexpr (Encodable<K> && Encodable<V>) {
      return Codec<std::map<K, V>>::Decode(r, global_) &&
             Codec<std::map<uint64_t, std::map<K, V>>>::Decode(r, per_epoch_);
    }
    return true;
  }

 private:
  CombineFn combine_;
  StateScope scope_;
  std::map<K, V> global_;
  std::map<uint64_t, std::map<K, V>> per_epoch_;
};

template <typename K, typename V>
Stream<std::pair<K, V>> MonotonicAggregate(
    const Stream<std::pair<K, V>>& s,
    typename MonotonicAggregateVertex<K, V>::CombineFn combine,
    StateScope scope = StateScope::kPerEpoch) {
  GraphBuilder& b = *s.builder;
  StageId sid = b.NewStage<MonotonicAggregateVertex<K, V>>(
      StageOptions{.name = "aggregate", .depth = s.depth}, [combine, scope](uint32_t) {
        return std::make_unique<MonotonicAggregateVertex<K, V>>(combine, scope);
      });
  b.Connect<MonotonicAggregateVertex<K, V>, std::pair<K, V>>(
      s, sid, 0, [](const std::pair<K, V>& kv) { return KeyHash(kv.first); });
  return b.OutputOf<std::pair<K, V>>(sid);
}

}  // namespace naiad

#endif  // SRC_LIB_KEYED_OPS_H_
