// Streaming hash join (§4.2).
//
// Two modes:
//  * kPerEpoch: both sides buffer per timestamp, matches are emitted eagerly as records
//    arrive from either side, and the state for a timestamp is reclaimed on notification —
//    classic batch join semantics within each epoch/iteration.
//  * kAccumulating: state persists across all timestamps and is never notified — an
//    incremental join over monotonically growing inputs (used by the §6.3/§6.4 pipelines,
//    where a static or growing relation is joined against a stream).

#ifndef SRC_LIB_JOIN_H_
#define SRC_LIB_JOIN_H_

#include <functional>
#include <map>
#include <memory>
#include <type_traits>
#include <utility>
#include <vector>

#include "src/core/stage.h"
#include "src/lib/key_hash.h"
#include "src/ser/codec.h"

namespace naiad {

enum class JoinMode : uint8_t {
  kPerEpoch,              // state per timestamp, reclaimed on notification
  kAccumulating,          // state shared across all times (incremental, monotone inputs)
  kPerEpochAccumulating,  // state shared across a loop's iterations, isolated per epoch
};

template <typename A, typename B, typename K, typename TOut>
class JoinVertex final : public BinaryVertex<A, B, TOut> {
 public:
  using KeyAFn = std::function<K(const A&)>;
  using KeyBFn = std::function<K(const B&)>;
  using JoinFn = std::function<TOut(const A&, const B&)>;

  JoinVertex(KeyAFn ka, KeyBFn kb, JoinFn join, JoinMode mode)
      : key_a_(std::move(ka)), key_b_(std::move(kb)), join_(std::move(join)), mode_(mode) {}

  void OnRecv1(const Timestamp& t, std::vector<A>& batch) override {
    State& st = StateFor(t);
    std::vector<TOut> out;
    for (A& a : batch) {
      const K k = key_a_(a);
      auto bit = st.b_side.find(k);
      if (bit != st.b_side.end()) {
        for (const B& b : bit->second) {
          out.push_back(join_(a, b));
        }
      }
      st.a_side[k].push_back(std::move(a));
    }
    this->output().SendBatch(t, std::move(out));
  }

  void OnRecv2(const Timestamp& t, std::vector<B>& batch) override {
    State& st = StateFor(t);
    std::vector<TOut> out;
    for (B& b : batch) {
      const K k = key_b_(b);
      auto ait = st.a_side.find(k);
      if (ait != st.a_side.end()) {
        for (const A& a : ait->second) {
          out.push_back(join_(a, b));
        }
      }
      st.b_side[k].push_back(std::move(b));
    }
    this->output().SendBatch(t, std::move(out));
  }

  void OnNotify(const Timestamp& t) override {
    if (mode_ == JoinMode::kPerEpoch) {
      per_time_.erase(t);
    }
  }

  void Checkpoint(ByteWriter& w) const override {
    if constexpr (Encodable<A> && Encodable<B> && Encodable<K>) {
      w.WriteU32(static_cast<uint32_t>(per_time_.size()));
      for (const auto& [t, st] : per_time_) {
        t.Encode(w);
        Codec<std::map<K, std::vector<A>>>::Encode(w, st.a_side);
        Codec<std::map<K, std::vector<B>>>::Encode(w, st.b_side);
      }
      Codec<std::map<K, std::vector<A>>>::Encode(w, global_.a_side);
      Codec<std::map<K, std::vector<B>>>::Encode(w, global_.b_side);
    }
  }
  bool Restore(ByteReader& r) override {
    if constexpr (Encodable<A> && Encodable<B> && Encodable<K>) {
      const uint32_t n = r.ReadU32();
      for (uint32_t i = 0; i < n; ++i) {
        Timestamp t;
        if (!t.Decode(r)) {
          return false;
        }
        State& st = per_time_[t];
        if (!Codec<std::map<K, std::vector<A>>>::Decode(r, st.a_side) ||
            !Codec<std::map<K, std::vector<B>>>::Decode(r, st.b_side)) {
          return false;
        }
      }
      return Codec<std::map<K, std::vector<A>>>::Decode(r, global_.a_side) &&
             Codec<std::map<K, std::vector<B>>>::Decode(r, global_.b_side);
    }
    return true;
  }

 private:
  struct State {
    std::map<K, std::vector<A>> a_side;
    std::map<K, std::vector<B>> b_side;
  };

  State& StateFor(const Timestamp& t) {
    if (mode_ == JoinMode::kAccumulating) {
      return global_;
    }
    if (mode_ == JoinMode::kPerEpochAccumulating) {
      return per_epoch_[t.epoch];
    }
    auto [it, fresh] = per_time_.try_emplace(t);
    if (fresh) {
      this->NotifyAt(t);
    }
    return it->second;
  }

  KeyAFn key_a_;
  KeyBFn key_b_;
  JoinFn join_;
  JoinMode mode_;
  std::map<Timestamp, State> per_time_;
  std::map<uint64_t, State> per_epoch_;
  State global_;
};

template <typename A, typename B, typename KAF, typename KBF, typename JF>
auto Join(const Stream<A>& a, const Stream<B>& b_in, KAF key_a, KBF key_b, JF join_fn,
          JoinMode mode = JoinMode::kPerEpoch) {
  using K = std::invoke_result_t<KAF, const A&>;
  static_assert(std::is_same_v<K, std::invoke_result_t<KBF, const B&>>,
                "join key types must match");
  using TOut = std::invoke_result_t<JF, const A&, const B&>;
  GraphBuilder& b = *a.builder;
  NAIAD_CHECK(a.depth == b_in.depth);
  StageId sid = b.NewStage<JoinVertex<A, B, K, TOut>>(
      StageOptions{.name = "join", .depth = a.depth}, [key_a, key_b, join_fn, mode](uint32_t) {
        return std::make_unique<JoinVertex<A, B, K, TOut>>(key_a, key_b, join_fn, mode);
      });
  b.Connect<JoinVertex<A, B, K, TOut>, A>(
      a, sid, 0, [key_a](const A& x) { return KeyHash(key_a(x)); });
  b.Connect<JoinVertex<A, B, K, TOut>, B>(
      b_in, sid, 1, [key_b](const B& x) { return KeyHash(key_b(x)); });
  return b.OutputOf<TOut>(sid);
}

}  // namespace naiad

#endif  // SRC_LIB_JOIN_H_
