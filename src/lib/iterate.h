// Iteration sugar over loop contexts (§2.1, §4.3).
//
// Iterate(s, max_iters, part, body) builds:
//
//     s --ingress--> concat --> body(...) --+--egress--> result
//                      ^                    |
//                      +----- feedback <----+
//
// The body receives the merged (entering + circulating) stream at the inner depth and
// returns the stream to circulate. Computations that quiesce naturally (fixed points) can
// pass max_iters = 0; otherwise the feedback stage drops records at the limit.

#ifndef SRC_LIB_ITERATE_H_
#define SRC_LIB_ITERATE_H_

#include <utility>

#include "src/core/loop.h"
#include "src/lib/map_ops.h"

namespace naiad {

template <typename T, typename BodyFn>
Stream<T> Iterate(const Stream<T>& s, uint64_t max_iters, Partitioner<T> part, BodyFn body) {
  GraphBuilder& b = *s.builder;
  LoopContext loop(b, s.depth);
  FeedbackHandle<T> fb = loop.NewFeedback<T>(max_iters);
  Stream<T> entered = loop.Ingress<T>(s, part);
  Stream<T> merged = Concat<T>(entered, fb.stream());
  Stream<T> result = body(loop, merged);
  fb.ConnectLoop(result, part);
  return loop.Egress<T>(result);
}

}  // namespace naiad

#endif  // SRC_LIB_ITERATE_H_
