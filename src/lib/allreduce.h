// AllReduce libraries (§6.2).
//
// Two implementations of a dense-vector sum-AllReduce over W participants:
//
//  * ChunkedAllReduce — Naiad's data-parallel variant: each of W reducers owns 1/W of the
//    vector; participants scatter chunks, reducers sum and send each participant its copy.
//    Two exchanges, each moving ~2·|vector| total, independent of W.
//  * TreeAllReduce — the Vowpal Wabbit baseline: a binary reduction tree followed by a
//    binary broadcast tree, built as 2·ceil(log2 W) dataflow stages. Deeper pipeline,
//    more serialization points, more straggler-sensitive (§6.2's analysis).
//
// Both operate per epoch: each participant contributes exactly one vector per epoch and
// receives the epoch's global sum.

#ifndef SRC_LIB_ALLREDUCE_H_
#define SRC_LIB_ALLREDUCE_H_

#include <cmath>
#include <cstdint>
#include <map>
#include <memory>
#include <utility>
#include <vector>

#include "src/core/stage.h"

namespace naiad {

// A piece of a participant's vector: `slot` identifies the chunk (chunked variant) or the
// tree node (tree variant); `target` addresses the recipient participant on the way down.
struct VecPiece {
  uint32_t slot = 0;
  uint32_t target = 0;
  std::vector<double> values;

  void Encode(ByteWriter& w) const {
    w.WriteU32(slot);
    w.WriteU32(target);
    Codec<std::vector<double>>::Encode(w, values);
  }
  bool Decode(ByteReader& r) {
    slot = r.ReadU32();
    target = r.ReadU32();
    return Codec<std::vector<double>>::Decode(r, values);
  }
};

namespace allreduce_detail {

inline void AccumulateInto(std::vector<double>& acc, const std::vector<double>& v) {
  if (acc.size() < v.size()) {
    acc.resize(v.size(), 0.0);
  }
  for (size_t i = 0; i < v.size(); ++i) {
    acc[i] += v[i];
  }
}

// Sums arriving pieces per (time, slot, target); on completeness, re-emits each sum either
// fanned out to every participant (chunked leaf) or addressed upward/downward (tree).
class ReducePiecesVertex final : public UnaryVertex<VecPiece, VecPiece> {
 public:
  // Emit plan: for each reduced (slot, target), the (new slot, new target) copies to send.
  using EmitPlan = std::function<std::vector<std::pair<uint32_t, uint32_t>>(uint32_t slot,
                                                                            uint32_t target)>;
  explicit ReducePiecesVertex(EmitPlan plan) : plan_(std::move(plan)) {}

  void OnRecv(const Timestamp& t, std::vector<VecPiece>& batch) override {
    auto [it, fresh] = acc_.try_emplace(t);
    if (fresh) {
      NotifyAt(t);
    }
    for (VecPiece& p : batch) {
      AccumulateInto(it->second[{p.slot, p.target}], p.values);
    }
  }

  void OnNotify(const Timestamp& t) override {
    auto it = acc_.find(t);
    if (it == acc_.end()) {
      return;
    }
    for (auto& [key, sum] : it->second) {
      for (auto [new_slot, target] : plan_(key.first, key.second)) {
        output().Send(t, VecPiece{new_slot, target, sum});
      }
    }
    acc_.erase(it);
  }

 private:
  EmitPlan plan_;
  std::map<Timestamp, std::map<std::pair<uint32_t, uint32_t>, std::vector<double>>> acc_;
};

inline Stream<VecPiece> ReduceStage(const Stream<VecPiece>& in, const char* name,
                                    ReducePiecesVertex::EmitPlan plan, bool by_target) {
  GraphBuilder& b = *in.builder;
  StageId sid = b.NewStage<ReducePiecesVertex>(
      StageOptions{.name = name, .depth = in.depth},
      [plan](uint32_t) { return std::make_unique<ReducePiecesVertex>(plan); });
  Partitioner<VecPiece> part =
      by_target ? Partitioner<VecPiece>([](const VecPiece& p) { return uint64_t{p.target}; })
                : Partitioner<VecPiece>([](const VecPiece& p) { return uint64_t{p.slot}; });
  b.Connect<ReducePiecesVertex, VecPiece>(in, sid, 0, std::move(part));
  return b.OutputOf<VecPiece>(sid);
}

}  // namespace allreduce_detail

// Chunked AllReduce: input pieces are chunks (slot = chunk id) from each participant; the
// output delivers every chunk's sum to every participant (`target` = participant id),
// partitioned by target.
inline Stream<VecPiece> ChunkedAllReduce(const Stream<VecPiece>& local,
                                         uint32_t participants) {
  using namespace allreduce_detail;
  Stream<VecPiece> reduced = ReduceStage(
      local, "allreduce.chunk",
      [participants](uint32_t slot, uint32_t) {
        std::vector<std::pair<uint32_t, uint32_t>> plan;
        plan.reserve(participants);
        for (uint32_t p = 0; p < participants; ++p) {
          plan.emplace_back(slot, p);
        }
        return plan;
      },
      /*by_target=*/false);
  // Deliver to targets (no further reduction; the plan emits one piece per target).
  return ReduceStage(
      reduced, "allreduce.deliver",
      [](uint32_t slot, uint32_t target) {
        return std::vector<std::pair<uint32_t, uint32_t>>{{slot, target}};
      },
      /*by_target=*/true);
}

// Tree AllReduce (VW baseline): participants are leaves slot = participant id; pieces
// climb ceil(log2 W) reduce stages (slot -> slot/2), then descend a broadcast tree.
inline Stream<VecPiece> TreeAllReduce(const Stream<VecPiece>& local, uint32_t participants) {
  using namespace allreduce_detail;
  uint32_t levels = 0;
  while ((1u << levels) < participants) {
    ++levels;
  }
  Stream<VecPiece> s = local;
  for (uint32_t l = 0; l < levels; ++l) {
    s = ReduceStage(
        s, "allreduce.up",
        [](uint32_t slot, uint32_t) {
          return std::vector<std::pair<uint32_t, uint32_t>>{{slot / 2, 0}};
        },
        /*by_target=*/false);
  }
  for (uint32_t l = 0; l < levels; ++l) {
    const uint32_t fanout_level = levels - 1 - l;  // recipients at this depth
    const uint32_t max_slot = fanout_level == 0 ? participants : (1u << 30);
    s = ReduceStage(
        s, "allreduce.down",
        [max_slot](uint32_t slot, uint32_t) {
          std::vector<std::pair<uint32_t, uint32_t>> plan;
          if (2 * slot < max_slot) {
            plan.emplace_back(2 * slot, 2 * slot);
          }
          if (2 * slot + 1 < max_slot) {
            plan.emplace_back(2 * slot + 1, 2 * slot + 1);
          }
          return plan;
        },
        /*by_target=*/false);
  }
  // After the down phase, slot == participant id; deliver by target.
  return ReduceStage(
      s, "allreduce.deliver",
      [](uint32_t slot, uint32_t) {
        return std::vector<std::pair<uint32_t, uint32_t>>{{slot, slot}};
      },
      /*by_target=*/true);
}

}  // namespace naiad

#endif  // SRC_LIB_ALLREDUCE_H_
