// Multi-producer queues used for worker inboxes (§3.2: "workers communicate using shared
// queues and have no other shared state").
//
// A mutex-guarded deque with batched draining: the consumer swaps the whole pending list out
// under the lock, so the critical section is O(1) regardless of batch size and producers
// never contend with long consumer scans. The paper's micro-straggler analysis (§3.5) calls
// out contention back-off as a latency hazard; keeping the lock hold-time constant is the
// native-code equivalent of their spinlock tuning.

#ifndef SRC_BASE_MPSC_QUEUE_H_
#define SRC_BASE_MPSC_QUEUE_H_

#include <deque>
#include <mutex>
#include <optional>
#include <utility>
#include <vector>

namespace naiad {

template <typename T>
class MpscQueue {
 public:
  void Push(T item) {
    std::lock_guard<std::mutex> lock(mu_);
    items_.push_back(std::move(item));
  }

  template <typename It>
  void PushAll(It first, It last) {
    std::lock_guard<std::mutex> lock(mu_);
    for (It it = first; it != last; ++it) {
      items_.push_back(std::move(*it));
    }
  }

  // Moves every pending item into `out` (appending); returns the number drained.
  size_t DrainInto(std::vector<T>& out) {
    std::deque<T> grabbed;
    {
      std::lock_guard<std::mutex> lock(mu_);
      grabbed.swap(items_);
    }
    for (T& item : grabbed) {
      out.push_back(std::move(item));
    }
    return grabbed.size();
  }

  std::optional<T> TryPop() {
    std::lock_guard<std::mutex> lock(mu_);
    if (items_.empty()) {
      return std::nullopt;
    }
    T item = std::move(items_.front());
    items_.pop_front();
    return item;
  }

  bool Empty() const {
    std::lock_guard<std::mutex> lock(mu_);
    return items_.empty();
  }

  size_t Size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return items_.size();
  }

 private:
  mutable std::mutex mu_;
  std::deque<T> items_;
};

}  // namespace naiad

#endif  // SRC_BASE_MPSC_QUEUE_H_
