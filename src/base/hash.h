// Hashing utilities: partitioning functions for exchange connectors (§3.1) and hash-map
// keys for pointstamps. Partitioning must be identical across processes, so we avoid
// std::hash (implementation-defined) for anything that crosses the wire.

#ifndef SRC_BASE_HASH_H_
#define SRC_BASE_HASH_H_

#include <array>
#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

namespace naiad {

// 64-bit finalizer (from MurmurHash3): turns a value with low entropy spread into a
// well-mixed hash. Deterministic across platforms.
constexpr uint64_t Mix64(uint64_t x) {
  x ^= x >> 33;
  x *= 0xff51afd7ed558ccdULL;
  x ^= x >> 33;
  x *= 0xc4ceb9fe1a85ec53ULL;
  x ^= x >> 33;
  return x;
}

constexpr uint64_t HashCombine(uint64_t seed, uint64_t value) {
  return Mix64(seed ^ (value + 0x9e3779b97f4a7c15ULL + (seed << 6) + (seed >> 2)));
}

// FNV-1a over bytes; deterministic across platforms.
inline uint64_t HashBytes(std::string_view bytes) {
  uint64_t h = 0xcbf29ce484222325ULL;
  for (unsigned char c : bytes) {
    h = (h ^ c) * 0x100000001b3ULL;
  }
  return h;
}

inline uint64_t HashString(const std::string& s) { return HashBytes(std::string_view(s)); }

// CRC-32 (IEEE 802.3 polynomial, reflected). Used as the checkpoint-image footer so a
// torn image is rejected by content, not only by rename atomicity. Deterministic across
// platforms; table built once on first use.
inline uint32_t Crc32(const uint8_t* data, size_t len, uint32_t crc = 0) {
  static const auto table = [] {
    std::array<uint32_t, 256> t{};
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1) ? 0xedb88320u ^ (c >> 1) : c >> 1;
      }
      t[i] = c;
    }
    return t;
  }();
  crc = ~crc;
  for (size_t i = 0; i < len; ++i) {
    crc = table[(crc ^ data[i]) & 0xffu] ^ (crc >> 8);
  }
  return ~crc;
}

}  // namespace naiad

#endif  // SRC_BASE_HASH_H_
