// Buffer pooling (§3.5, "Garbage collection"): the original Naiad recycles message buffers
// to keep .NET GC pauses off the critical path. The C++ analogue is avoiding repeated
// allocator round-trips for the per-bundle record vectors the runtime churns through.

#ifndef SRC_BASE_POOL_H_
#define SRC_BASE_POOL_H_

#include <mutex>
#include <utility>
#include <vector>

namespace naiad {

// A thread-safe free list of std::vector<T> buffers. Get() returns an empty vector with
// whatever capacity a previous user left behind; Put() recycles it.
template <typename T>
class BufferPool {
 public:
  explicit BufferPool(size_t max_pooled = 1024) : max_pooled_(max_pooled) {}

  std::vector<T> Get() {
    std::lock_guard<std::mutex> lock(mu_);
    if (free_.empty()) {
      return {};
    }
    std::vector<T> buf = std::move(free_.back());
    free_.pop_back();
    return buf;
  }

  void Put(std::vector<T> buf) {
    buf.clear();
    std::lock_guard<std::mutex> lock(mu_);
    if (free_.size() < max_pooled_) {
      free_.push_back(std::move(buf));
    }
  }

  size_t PooledCount() const {
    std::lock_guard<std::mutex> lock(mu_);
    return free_.size();
  }

 private:
  mutable std::mutex mu_;
  size_t max_pooled_;
  std::vector<std::vector<T>> free_;
};

}  // namespace naiad

#endif  // SRC_BASE_POOL_H_
