// Wall-clock timing and summary statistics for the benchmark harnesses (§5, §6).

#ifndef SRC_BASE_STOPWATCH_H_
#define SRC_BASE_STOPWATCH_H_

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <vector>

#include "src/base/logging.h"

namespace naiad {

class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  void Restart() { start_ = Clock::now(); }

  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }
  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }
  double ElapsedMicros() const { return ElapsedSeconds() * 1e6; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

// Percentile summary over a sample set; the paper reports median/quartiles/95th (Fig. 6b)
// and latency CDFs (Fig. 7c).
class SampleStats {
 public:
  void Add(double v) { samples_.push_back(v); }
  size_t Count() const { return samples_.size(); }

  double Percentile(double p) {
    NAIAD_CHECK(!samples_.empty());
    NAIAD_CHECK(p >= 0.0 && p <= 100.0);
    std::sort(samples_.begin(), samples_.end());
    double rank = p / 100.0 * static_cast<double>(samples_.size() - 1);
    size_t lo = static_cast<size_t>(rank);
    size_t hi = std::min(lo + 1, samples_.size() - 1);
    double frac = rank - static_cast<double>(lo);
    return samples_[lo] * (1.0 - frac) + samples_[hi] * frac;
  }

  double Median() { return Percentile(50.0); }

  double Mean() const {
    NAIAD_CHECK(!samples_.empty());
    double total = 0;
    for (double v : samples_) {
      total += v;
    }
    return total / static_cast<double>(samples_.size());
  }

  double Min() { return Percentile(0.0); }
  double Max() { return Percentile(100.0); }

 private:
  std::vector<double> samples_;
};

}  // namespace naiad

#endif  // SRC_BASE_STOPWATCH_H_
