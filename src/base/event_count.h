// Eventcount synchronization primitive (Reed & Kanodia [37], as used in §3.3).
//
// A worker that finds no runnable events reads the count (PrepareWait), re-checks its work
// sources, and then blocks in CommitWait unless the count advanced in between. Producers
// advance the count and wake either every waiter (NotifyAll — used for progress-frontier
// changes that may unblock any worker) or one waiter (NotifyOne — used for targeted message
// delivery). This avoids the lost-wakeup race without holding a lock around the work check.

#ifndef SRC_BASE_EVENT_COUNT_H_
#define SRC_BASE_EVENT_COUNT_H_

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <mutex>

namespace naiad {

class EventCount {
 public:
  using Ticket = uint64_t;

  // Snapshot the generation before re-checking work predicates.
  Ticket PrepareWait() const {
    std::lock_guard<std::mutex> lock(mu_);
    return epoch_;
  }

  // Blocks until the generation advances past `ticket` (returns immediately if it already
  // has). `timeout` bounds the wait so callers can run periodic maintenance.
  void CommitWait(Ticket ticket, std::chrono::microseconds timeout) {
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait_for(lock, timeout, [&] { return epoch_ != ticket; });
  }

  void NotifyAll() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      ++epoch_;
    }
    cv_.notify_all();
  }

  void NotifyOne() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      ++epoch_;
    }
    cv_.notify_one();
  }

 private:
  mutable std::mutex mu_;
  std::condition_variable cv_;
  uint64_t epoch_ = 0;
};

}  // namespace naiad

#endif  // SRC_BASE_EVENT_COUNT_H_
