// Deterministic random number generation for workload synthesis.
//
// All generators in src/gen seed from explicit values so every experiment is reproducible
// run-to-run and process-to-process (SPMD graph construction requires all processes to
// synthesize identical inputs when they share a seed).

#ifndef SRC_BASE_RNG_H_
#define SRC_BASE_RNG_H_

#include <cmath>
#include <cstdint>
#include <vector>

#include "src/base/logging.h"

namespace naiad {

// splitmix64: tiny, fast, passes BigCrush when used as a stream; ideal for seeding and for
// workload synthesis where statistical perfection is not required.
class Rng {
 public:
  explicit Rng(uint64_t seed) : state_(seed + 0x9e3779b97f4a7c15ULL) {}

  uint64_t Next() {
    uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

  // Uniform in [0, bound). Bias is negligible for bound << 2^64.
  uint64_t Below(uint64_t bound) {
    NAIAD_DCHECK(bound > 0);
    return Next() % bound;
  }

  // Uniform in [0, 1).
  double NextDouble() { return static_cast<double>(Next() >> 11) * 0x1.0p-53; }

 private:
  uint64_t state_;
};

// Zipf-distributed sampler over {0, .., n-1} with exponent s, via Vose's alias method:
// O(n) table build, O(1) per draw (one uniform index + one biased coin), versus the
// previous inverse-CDF binary search's O(log n) per draw — at 10^8 draws for a bench
// graph that log-factor dominated setup time. Used for skewed degree distributions and
// word frequencies.
class ZipfSampler {
 public:
  ZipfSampler(uint64_t n, double s, uint64_t seed) : rng_(seed), prob_(n), alias_(n) {
    NAIAD_CHECK(n > 0);
    // Normalized Zipf pmf, scaled by n so the alias split is against 1.0.
    std::vector<double> scaled(n);
    double total = 0;
    for (uint64_t i = 0; i < n; ++i) {
      scaled[i] = 1.0 / std::pow(static_cast<double>(i + 1), s);
      total += scaled[i];
    }
    const double scale = static_cast<double>(n) / total;
    for (uint64_t i = 0; i < n; ++i) {
      scaled[i] *= scale;
    }
    // Vose worklists: pair each under-full column with an over-full donor.
    std::vector<uint64_t> small;
    std::vector<uint64_t> large;
    for (uint64_t i = 0; i < n; ++i) {
      (scaled[i] < 1.0 ? small : large).push_back(i);
    }
    while (!small.empty() && !large.empty()) {
      const uint64_t s_i = small.back();
      const uint64_t l_i = large.back();
      small.pop_back();
      prob_[s_i] = scaled[s_i];
      alias_[s_i] = l_i;
      scaled[l_i] -= 1.0 - scaled[s_i];
      if (scaled[l_i] < 1.0) {
        large.pop_back();
        small.push_back(l_i);
      }
    }
    // Leftovers (either list) are numerically ~1.0: fill as certain columns.
    for (uint64_t i : small) {
      prob_[i] = 1.0;
      alias_[i] = i;
    }
    for (uint64_t i : large) {
      prob_[i] = 1.0;
      alias_[i] = i;
    }
  }

  // Draw with the sampler's internal stream (sequential use).
  uint64_t Next() { return Sample(rng_); }

  // Draw with a caller-supplied stream — lets counter-based generators derive edge i's
  // randomness from Rng(HashCombine(seed, i)) so output is independent of draw order and
  // shard layout. Two uniforms per draw, no table search.
  uint64_t Sample(Rng& rng) const {
    const uint64_t col = rng.Below(prob_.size());
    return rng.NextDouble() < prob_[col] ? col : alias_[col];
  }

 private:
  Rng rng_;
  std::vector<double> prob_;
  std::vector<uint64_t> alias_;
};

}  // namespace naiad

#endif  // SRC_BASE_RNG_H_
