// Deterministic random number generation for workload synthesis.
//
// All generators in src/gen seed from explicit values so every experiment is reproducible
// run-to-run and process-to-process (SPMD graph construction requires all processes to
// synthesize identical inputs when they share a seed).

#ifndef SRC_BASE_RNG_H_
#define SRC_BASE_RNG_H_

#include <cmath>
#include <cstdint>
#include <vector>

#include "src/base/logging.h"

namespace naiad {

// splitmix64: tiny, fast, passes BigCrush when used as a stream; ideal for seeding and for
// workload synthesis where statistical perfection is not required.
class Rng {
 public:
  explicit Rng(uint64_t seed) : state_(seed + 0x9e3779b97f4a7c15ULL) {}

  uint64_t Next() {
    uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

  // Uniform in [0, bound). Bias is negligible for bound << 2^64.
  uint64_t Below(uint64_t bound) {
    NAIAD_DCHECK(bound > 0);
    return Next() % bound;
  }

  // Uniform in [0, 1).
  double NextDouble() { return static_cast<double>(Next() >> 11) * 0x1.0p-53; }

 private:
  uint64_t state_;
};

// Zipf-distributed sampler over {0, .., n-1} with exponent s, via inverse-CDF over a
// precomputed table. Used for skewed degree distributions and word frequencies.
class ZipfSampler {
 public:
  ZipfSampler(uint64_t n, double s, uint64_t seed) : rng_(seed), cdf_(n) {
    NAIAD_CHECK(n > 0);
    double total = 0;
    for (uint64_t i = 0; i < n; ++i) {
      total += 1.0 / std::pow(static_cast<double>(i + 1), s);
      cdf_[i] = total;
    }
    for (uint64_t i = 0; i < n; ++i) {
      cdf_[i] /= total;
    }
  }

  uint64_t Next() {
    double u = rng_.NextDouble();
    // Binary search the CDF.
    size_t lo = 0;
    size_t hi = cdf_.size() - 1;
    while (lo < hi) {
      size_t mid = (lo + hi) / 2;
      if (cdf_[mid] < u) {
        lo = mid + 1;
      } else {
        hi = mid;
      }
    }
    return lo;
  }

 private:
  Rng rng_;
  std::vector<double> cdf_;
};

}  // namespace naiad

#endif  // SRC_BASE_RNG_H_
