// Minimal assertion and logging support for the Naiad runtime.
//
// NAIAD_CHECK is always on (release builds included): the runtime's progress-tracking
// invariants are cheap to test and catastrophic to violate silently. NAIAD_DCHECK compiles
// out in NDEBUG builds and is used on hot paths.

#ifndef SRC_BASE_LOGGING_H_
#define SRC_BASE_LOGGING_H_

#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <string>

namespace naiad {

namespace log_detail {

// Accumulates a failure message; aborts on destruction.
class FatalMessage {
 public:
  FatalMessage(const char* file, int line, const char* condition) {
    stream_ << file << ":" << line << ": check failed: " << condition << " ";
  }
  FatalMessage(const FatalMessage&) = delete;
  FatalMessage& operator=(const FatalMessage&) = delete;

  [[noreturn]] ~FatalMessage() {
    std::fputs(stream_.str().c_str(), stderr);
    std::fputc('\n', stderr);
    std::fflush(stderr);
    std::abort();
  }

  std::ostringstream& stream() { return stream_; }

 private:
  std::ostringstream stream_;
};

// Swallows a streamed message in the passing case without evaluating operands.
struct Voidify {
  void operator&(std::ostream&) {}
};

}  // namespace log_detail

#define NAIAD_CHECK(cond)                                                      \
  (cond) ? (void)0                                                             \
         : ::naiad::log_detail::Voidify() &                                    \
               ::naiad::log_detail::FatalMessage(__FILE__, __LINE__, #cond).stream()

#ifdef NDEBUG
#define NAIAD_DCHECK(cond) NAIAD_CHECK(true || (cond))
#else
#define NAIAD_DCHECK(cond) NAIAD_CHECK(cond)
#endif

}  // namespace naiad

#endif  // SRC_BASE_LOGGING_H_
