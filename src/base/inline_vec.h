// A fixed-capacity vector with inline storage.
//
// Timestamps carry at most kMaxLoopDepth loop counters (§2.1 of the paper), so the runtime
// never needs heap allocation for them; InlineVec gives timestamps value semantics, trivial
// copyability for trivially-copyable T, and cheap equality/lexicographic comparison.

#ifndef SRC_BASE_INLINE_VEC_H_
#define SRC_BASE_INLINE_VEC_H_

#include <algorithm>
#include <array>
#include <compare>
#include <cstdint>
#include <initializer_list>

#include "src/base/logging.h"

namespace naiad {

template <typename T, uint32_t Capacity>
class InlineVec {
 public:
  constexpr InlineVec() = default;
  constexpr InlineVec(std::initializer_list<T> init) {
    NAIAD_CHECK(init.size() <= Capacity);
    for (const T& v : init) {
      items_[size_++] = v;
    }
  }

  constexpr uint32_t size() const { return size_; }
  constexpr bool empty() const { return size_ == 0; }
  static constexpr uint32_t capacity() { return Capacity; }

  constexpr T& operator[](uint32_t i) {
    NAIAD_DCHECK(i < size_);
    return items_[i];
  }
  constexpr const T& operator[](uint32_t i) const {
    NAIAD_DCHECK(i < size_);
    return items_[i];
  }

  constexpr T& back() {
    NAIAD_DCHECK(size_ > 0);
    return items_[size_ - 1];
  }
  constexpr const T& back() const {
    NAIAD_DCHECK(size_ > 0);
    return items_[size_ - 1];
  }

  constexpr void push_back(const T& v) {
    NAIAD_CHECK(size_ < Capacity);
    items_[size_++] = v;
  }
  constexpr void pop_back() {
    NAIAD_DCHECK(size_ > 0);
    --size_;
  }
  constexpr void resize(uint32_t n, const T& fill = T{}) {
    NAIAD_CHECK(n <= Capacity);
    for (uint32_t i = size_; i < n; ++i) {
      items_[i] = fill;
    }
    size_ = n;
  }
  constexpr void clear() { size_ = 0; }

  constexpr const T* begin() const { return items_.data(); }
  constexpr const T* end() const { return items_.data() + size_; }
  constexpr T* begin() { return items_.data(); }
  constexpr T* end() { return items_.data() + size_; }

  friend constexpr bool operator==(const InlineVec& a, const InlineVec& b) {
    return a.size_ == b.size_ && std::equal(a.begin(), a.end(), b.begin());
  }

  // Lexicographic; shorter prefixes compare less. Used for total (container) orderings.
  friend constexpr std::strong_ordering operator<=>(const InlineVec& a, const InlineVec& b) {
    return std::lexicographical_compare_three_way(a.begin(), a.end(), b.begin(), b.end());
  }

 private:
  std::array<T, Capacity> items_{};
  uint32_t size_ = 0;
};

}  // namespace naiad

#endif  // SRC_BASE_INLINE_VEC_H_
