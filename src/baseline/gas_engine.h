// A PowerGraph-style synchronous Gather-Apply-Scatter engine (Fig. 7a comparator;
// DESIGN.md substitution #4).
//
// Shared-memory, edge-sharded, barrier-per-phase: each of N threads owns a shard of edges;
// GATHER accumulates per-shard partial sums (the vertex-cut trick), APPLY folds partials
// into vertex values, SCATTER is implicit for PageRank (every vertex re-emits). This is a
// faithful miniature of the PowerGraph execution model for the comparison's purposes: the
// same numerical iteration as the Naiad variants, scheduled as a synchronous GAS program.

#ifndef SRC_BASELINE_GAS_ENGINE_H_
#define SRC_BASELINE_GAS_ENGINE_H_

#include <atomic>
#include <barrier>
#include <cstdint>
#include <thread>
#include <unordered_map>
#include <vector>

#include "src/gen/graphs.h"

namespace naiad {

class GasPageRank {
 public:
  GasPageRank(const std::vector<Edge>& edges, uint32_t threads)
      : threads_(threads == 0 ? 1 : threads) {
    uint64_t max_node = 0;
    for (const Edge& e : edges) {
      max_node = std::max({max_node, e.first, e.second});
    }
    n_ = max_node + 1;
    degree_.assign(n_, 0);
    for (const Edge& e : edges) {
      ++degree_[e.first];
    }
    shards_.resize(threads_);
    for (size_t i = 0; i < edges.size(); ++i) {
      shards_[i % threads_].push_back(edges[i]);
    }
    rank_.assign(n_, 1.0);
  }

  // Runs `iters` synchronous GAS iterations; returns final ranks.
  const std::vector<double>& Run(uint64_t iters) {
    std::vector<std::vector<double>> partials(threads_, std::vector<double>(n_, 0.0));
    next_.assign(n_, 0.0);
    std::barrier sync(static_cast<ptrdiff_t>(threads_));
    std::vector<std::thread> pool;
    for (uint32_t tid = 0; tid < threads_; ++tid) {
      pool.emplace_back([&, tid] {
        for (uint64_t it = 0; it < iters; ++it) {
          // GATHER: per-shard partial sums over in-edges.
          std::vector<double>& part = partials[tid];
          std::fill(part.begin(), part.end(), 0.0);
          for (const Edge& e : shards_[tid]) {
            part[e.second] += rank_[e.first] / static_cast<double>(degree_[e.first]);
          }
          sync.arrive_and_wait();
          // APPLY: each thread owns a contiguous slice of vertices.
          const uint64_t lo = n_ * tid / threads_;
          const uint64_t hi = n_ * (tid + 1) / threads_;
          for (uint64_t v = lo; v < hi; ++v) {
            double acc = 0;
            for (uint32_t s = 0; s < threads_; ++s) {
              acc += partials[s][v];
            }
            next_[v] = 0.15 + 0.85 * acc;
          }
          sync.arrive_and_wait();
          if (tid == 0) {
            rank_.swap(next_);
          }
          sync.arrive_and_wait();
        }
      });
    }
    for (auto& t : pool) {
      t.join();
    }
    return rank_;
  }

 private:
  uint32_t threads_;
  uint64_t n_ = 0;
  std::vector<uint64_t> degree_;
  std::vector<std::vector<Edge>> shards_;
  std::vector<double> rank_;
  std::vector<double> next_;
};

}  // namespace naiad

#endif  // SRC_BASELINE_GAS_ENGINE_H_
