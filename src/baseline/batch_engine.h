// A DryadLINQ-style batch iterative engine (Table 1 comparator; DESIGN.md substitution #3).
//
// The defining cost the paper attributes to batch dataflow systems is that "systems like
// DryadLINQ incur a large per-iteration cost when serializing local state". This engine
// reproduces exactly that execution model: each iteration's whole state is serialized,
// spilled through a file, and deserialized before the next step function runs. The step
// functions themselves are plain in-memory C++ — so the measured gap against Naiad isolates
// the per-iteration materialization, not code quality.

#ifndef SRC_BASELINE_BATCH_ENGINE_H_
#define SRC_BASELINE_BATCH_ENGINE_H_

#include <chrono>
#include <cstdio>
#include <functional>
#include <thread>
#include <map>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/base/logging.h"
#include "src/gen/graphs.h"
#include "src/ser/codec.h"

namespace naiad {

// What one batch iteration costs beyond the step function itself. The serialization spill
// is measured for real; the scheduling overhead is a *simulated* constant for the part of
// a DryadLINQ iteration this process cannot reproduce — launching a fresh cluster job,
// placing tasks, and committing outputs, which takes seconds per iteration on the paper's
// systems. The default of 250 ms is deliberately generous to the baseline (documented in
// DESIGN.md substitution #3 and in EXPERIMENTS.md).
struct BatchEngineOptions {
  double scheduling_overhead_ms = 1000.0;
};

class BatchIterativeEngine {
 public:
  explicit BatchIterativeEngine(std::string spill_path, BatchEngineOptions opts = {})
      : spill_path_(std::move(spill_path)), opts_(opts) {}

  // Runs `step` until it reports convergence (or `max_iters`), spilling `state` through
  // the materialization barrier between iterations. Returns iterations executed.
  template <typename State>
  uint64_t Run(State& state, uint64_t max_iters,
               const std::function<bool(State&)>& step) {
    uint64_t iters = 0;
    for (; iters < max_iters; ++iters) {
      const bool changed = step(state);
      Materialize(state);
      if (opts_.scheduling_overhead_ms > 0) {
        std::this_thread::sleep_for(std::chrono::duration<double, std::milli>(
            opts_.scheduling_overhead_ms));
      }
      if (!changed) {
        ++iters;
        break;
      }
    }
    return iters;
  }

  uint64_t bytes_spilled() const { return bytes_spilled_; }

 private:
  // Serialize -> write -> read -> deserialize: the per-iteration barrier.
  template <typename State>
  void Materialize(State& state) {
    ByteWriter w;
    Codec<State>::Encode(w, state);
    bytes_spilled_ += w.size();
    std::FILE* f = std::fopen(spill_path_.c_str(), "wb");
    NAIAD_CHECK(f != nullptr);
    std::fwrite(w.buffer().data(), 1, w.size(), f);
    std::fclose(f);

    std::vector<uint8_t> bytes(w.size());
    f = std::fopen(spill_path_.c_str(), "rb");
    NAIAD_CHECK(f != nullptr);
    NAIAD_CHECK(std::fread(bytes.data(), 1, bytes.size(), f) == bytes.size());
    std::fclose(f);
    ByteReader r(bytes);
    State fresh{};
    NAIAD_CHECK(Codec<State>::Decode(r, fresh));
    state = std::move(fresh);
  }

  std::string spill_path_;
  BatchEngineOptions opts_;
  uint64_t bytes_spilled_ = 0;
};

// ---- reference algorithms on the batch engine -------------------------------------------

struct BatchGraphState {
  std::vector<Edge> edges;
  std::map<uint64_t, uint64_t> labels;  // WCC/ASP-style integer state
  std::map<uint64_t, double> ranks;     // PageRank state

  void Encode(ByteWriter& w) const {
    Codec<std::vector<Edge>>::Encode(w, edges);
    Codec<std::map<uint64_t, uint64_t>>::Encode(w, labels);
    Codec<std::map<uint64_t, double>>::Encode(w, ranks);
  }
  bool Decode(ByteReader& r) {
    return Codec<std::vector<Edge>>::Decode(r, edges) &&
           Codec<std::map<uint64_t, uint64_t>>::Decode(r, labels) &&
           Codec<std::map<uint64_t, double>>::Decode(r, ranks);
  }
};

// Synchronous min-label WCC; one iteration per materialization barrier.
inline uint64_t BatchWcc(const std::vector<Edge>& edges, const std::string& spill_path,
                         std::map<uint64_t, uint64_t>* out_labels = nullptr,
                         BatchEngineOptions opts = {}) {
  BatchIterativeEngine engine(spill_path, opts);
  BatchGraphState st;
  st.edges = Symmetrize(edges);
  for (const Edge& e : st.edges) {
    st.labels.try_emplace(e.first, e.first);
  }
  // Jacobi-style update (new labels computed from the previous iteration's labels), as a
  // join-per-iteration relational implementation evaluates it — this is why batch WCC
  // "requires many more iterations" (§6.1) than in-memory asynchronous propagation.
  uint64_t iters = engine.Run<BatchGraphState>(st, 10000, [](BatchGraphState& s) {
    std::map<uint64_t, uint64_t> next = s.labels;
    for (const Edge& e : s.edges) {
      uint64_t& lv = next[e.second];
      const uint64_t lu = s.labels[e.first];
      if (lu < lv) {
        lv = lu;
      }
    }
    const bool changed = next != s.labels;
    s.labels = std::move(next);
    return changed;
  });
  if (out_labels != nullptr) {
    *out_labels = st.labels;
  }
  return iters;
}

inline uint64_t BatchPageRank(const std::vector<Edge>& edges, uint64_t iters,
                              const std::string& spill_path,
                              std::map<uint64_t, double>* out_ranks = nullptr,
                              BatchEngineOptions opts = {}) {
  BatchIterativeEngine engine(spill_path, opts);
  BatchGraphState st;
  st.edges = edges;
  std::unordered_map<uint64_t, uint64_t> degree;
  for (const Edge& e : st.edges) {
    ++degree[e.first];
    st.ranks.try_emplace(e.first, 1.0);
    st.ranks.try_emplace(e.second, 1.0);
  }
  // Matches the dataflow convention: `iters` notifications perform iters-1 rank updates.
  uint64_t done = 0;
  engine.Run<BatchGraphState>(st, iters > 0 ? iters - 1 : 0, [&](BatchGraphState& s) {
    std::map<uint64_t, double> next;
    for (auto& [n, r] : s.ranks) {
      next[n] = 0.15;
    }
    std::unordered_map<uint64_t, uint64_t> deg;
    for (const Edge& e : s.edges) {
      ++deg[e.first];
    }
    for (const Edge& e : s.edges) {
      next[e.second] += 0.85 * s.ranks[e.first] / static_cast<double>(deg[e.first]);
    }
    s.ranks = std::move(next);
    ++done;
    return true;
  });
  if (out_ranks != nullptr) {
    *out_ranks = st.ranks;
  }
  return done;
}

// Forward/backward trimming SCC, one label-propagation sweep per barrier (the same
// algorithm shape as src/algo/scc.h, paying the batch materialization each sweep).
inline uint64_t BatchScc(const std::vector<Edge>& edges, uint64_t rounds,
                         const std::string& spill_path, BatchEngineOptions opts = {}) {
  BatchIterativeEngine engine(spill_path, opts);
  BatchGraphState st;
  st.edges = edges;
  uint64_t sweeps = 0;
  for (uint64_t round = 0; round < rounds; ++round) {
    for (int direction = 0; direction < 2; ++direction) {
      // Label propagation to fixpoint, one sweep per materialization.
      st.labels.clear();
      for (const Edge& e : st.edges) {
        st.labels.try_emplace(e.first, e.first);
        st.labels.try_emplace(e.second, e.second);
      }
      sweeps += engine.Run<BatchGraphState>(st, 10000, [](BatchGraphState& s) {
        bool changed = false;
        for (const Edge& e : s.edges) {
          const uint64_t lu = s.labels[e.first];
          uint64_t& lv = s.labels[e.second];
          if (lu < lv) {
            lv = lu;
            changed = true;
          }
        }
        return changed;
      });
      std::vector<Edge> kept;
      for (const Edge& e : st.edges) {
        if (st.labels[e.first] == st.labels[e.second]) {
          kept.emplace_back(e.second, e.first);  // keep + transpose
        }
      }
      st.edges = std::move(kept);
    }
  }
  return sweeps;
}

// Multi-source BFS (ASP), one frontier expansion per barrier.
inline uint64_t BatchAsp(const std::vector<Edge>& edges, const std::vector<uint64_t>& sources,
                         const std::string& spill_path, BatchEngineOptions opts = {}) {
  BatchIterativeEngine engine(spill_path, opts);
  struct AspState {
    std::vector<Edge> edges;
    std::map<std::pair<uint64_t, uint64_t>, uint64_t> dist;
    void Encode(ByteWriter& w) const {
      Codec<std::vector<Edge>>::Encode(w, edges);
      Codec<std::map<std::pair<uint64_t, uint64_t>, uint64_t>>::Encode(w, dist);
    }
    bool Decode(ByteReader& r) {
      return Codec<std::vector<Edge>>::Decode(r, edges) &&
             Codec<std::map<std::pair<uint64_t, uint64_t>, uint64_t>>::Decode(r, dist);
    }
  };
  AspState st;
  st.edges = edges;
  for (uint64_t s : sources) {
    st.dist[{s, s}] = 0;
  }
  // Jacobi frontier expansion, one hop per materialization barrier.
  return engine.Run<AspState>(st, 10000, [](AspState& s) {
    std::map<std::pair<uint64_t, uint64_t>, uint64_t> next = s.dist;
    for (const Edge& e : s.edges) {
      for (auto it = s.dist.lower_bound({e.first, 0});
           it != s.dist.end() && it->first.first == e.first; ++it) {
        auto [dit, fresh] = next.try_emplace({e.second, it->first.second}, it->second + 1);
        if (!fresh && dit->second > it->second + 1) {
          dit->second = it->second + 1;
        }
      }
    }
    const bool changed = next != s.dist;
    s.dist = std::move(next);
    return changed;
  });
}

}  // namespace naiad

#endif  // SRC_BASELINE_BATCH_ENGINE_H_
