// Distributed logistic regression (§6.2): the Vowpal Wabbit experiment.
//
// Phase structure per iteration, exactly as the paper's modified VW: (1) each worker
// updates local weights from the last global gradient, (2) trains on its local shard, and
// (3) an AllReduce combines the local gradients. Phases 1–2 run inside a Naiad vertex;
// phase 3 is one of the two AllReduce libraries (chunked vs binary tree).
//
// One input epoch = one optimization iteration: the driver sends a "go" token per epoch
// and waits for the epoch to drain, which is precisely when every worker holds the new
// global gradient. The wait is part of the contract: deliveries are asynchronous across
// times, so feeding epoch e+1 before probing epoch e could start phase 1 with a stale
// gradient (a BSP driver never does this).

#ifndef SRC_ALGO_LOGREG_H_
#define SRC_ALGO_LOGREG_H_

#include <cmath>
#include <memory>
#include <vector>

#include "src/base/rng.h"
#include "src/core/loop.h"
#include "src/core/stage.h"
#include "src/lib/allreduce.h"

namespace naiad {

struct LogRegShard {
  std::vector<std::vector<double>> features;  // dense examples
  std::vector<double> labels;                 // ±1
};

// Deterministic synthetic training data: a random ground-truth hyperplane plus noise.
inline LogRegShard MakeLogRegShard(size_t examples, size_t dims, uint64_t seed) {
  Rng rng(seed);
  std::vector<double> truth(dims);
  Rng truth_rng(7);  // shared across shards
  for (double& w : truth) {
    w = truth_rng.NextDouble() * 2 - 1;
  }
  LogRegShard shard;
  shard.features.reserve(examples);
  shard.labels.reserve(examples);
  for (size_t i = 0; i < examples; ++i) {
    std::vector<double> x(dims);
    double dot = 0;
    for (size_t d = 0; d < dims; ++d) {
      x[d] = rng.NextDouble() * 2 - 1;
      dot += x[d] * truth[d];
    }
    shard.features.push_back(std::move(x));
    shard.labels.push_back(dot + (rng.NextDouble() - 0.5) * 0.1 > 0 ? 1.0 : -1.0);
  }
  return shard;
}

// Phases 1+2: applies the previous global gradient, recomputes the local gradient over the
// shard, chunks it into the AllReduce. Input: per-epoch "go" tokens (any payload). Input 2
// (wired by BuildLogReg): the reduced global gradient from the AllReduce.
class LogRegWorkerVertex final : public BinaryVertex<uint64_t, VecPiece, VecPiece> {
 public:
  LogRegWorkerVertex(LogRegShard shard, uint32_t dims, uint32_t chunks, bool tree_leaf,
                     double lr)
      : shard_(std::move(shard)),
        weights_(dims, 0.0),
        chunks_(chunks),
        tree_leaf_(tree_leaf),
        lr_(lr) {}

  void OnRecv1(const Timestamp& t, std::vector<uint64_t>& go) override {
    // Phase 1: fold in the last global gradient (empty on the first iteration).
    if (!last_global_.empty()) {
      for (size_t d = 0; d < weights_.size(); ++d) {
        weights_[d] -= lr_ * last_global_[d];
      }
    }
    // Phase 2: local gradient of the logistic loss.
    std::vector<double> grad(weights_.size(), 0.0);
    for (size_t i = 0; i < shard_.features.size(); ++i) {
      const auto& x = shard_.features[i];
      double dot = 0;
      for (size_t d = 0; d < x.size(); ++d) {
        dot += x[d] * weights_[d];
      }
      const double y = shard_.labels[i];
      const double g = -y / (1.0 + std::exp(y * dot));
      for (size_t d = 0; d < x.size(); ++d) {
        grad[d] += g * x[d];
      }
    }
    // Phase 3 entry: tree leaves ship the whole vector tagged with their participant id;
    // the chunked variant scatters `chunks_` pieces.
    if (tree_leaf_) {
      output().Send(t, VecPiece{address().index, 0, std::move(grad)});
      return;
    }
    const size_t per = (grad.size() + chunks_ - 1) / chunks_;
    for (uint32_t c = 0; c < chunks_; ++c) {
      const size_t lo = c * per;
      if (lo >= grad.size()) {
        break;
      }
      const size_t hi = std::min(grad.size(), lo + per);
      output().Send(t, VecPiece{c, 0, std::vector<double>(grad.begin() + lo,
                                                          grad.begin() + hi)});
    }
  }

  // Reduced pieces come back; reassemble the global gradient for the next iteration.
  void OnRecv2(const Timestamp& t, std::vector<VecPiece>& pieces) override {
    if (last_global_.size() != weights_.size()) {
      last_global_.assign(weights_.size(), 0.0);
    }
    const size_t per = (weights_.size() + chunks_ - 1) / chunks_;
    for (const VecPiece& p : pieces) {
      const size_t lo = ChunkBase(p.slot, per);
      for (size_t i = 0; i < p.values.size() && lo + i < last_global_.size(); ++i) {
        last_global_[lo + i] = p.values[i];
      }
    }
  }

  const std::vector<double>& weights() const { return weights_; }

 private:
  // In the tree variant every slot collapses to the participant id; pieces then carry the
  // whole vector, so slot 0 maps to offset 0 either way.
  size_t ChunkBase(uint32_t slot, size_t per) const {
    return static_cast<size_t>(slot) * per < weights_.size()
               ? static_cast<size_t>(slot) * per
               : 0;
  }

  LogRegShard shard_;
  std::vector<double> weights_;
  std::vector<double> last_global_;
  uint32_t chunks_;
  bool tree_leaf_;
  double lr_;
};

enum class AllReduceKind : uint8_t { kChunked, kTree };

// Builds the full per-iteration pipeline inside a loop context (the reduced gradient
// returns to the workers along a feedback edge, as timely dataflow's cycle rule requires).
// The driver feeds exactly `participants` tokens per epoch on `go`; the input stage's
// round-robin chunking delivers one to each worker vertex. Returns a stream carrying the
// epoch's reduced pieces at the outer depth — probe it to wait for an iteration.
inline Stream<VecPiece> BuildLogReg(const Stream<uint64_t>& go, uint32_t participants,
                                    uint32_t dims, size_t examples_per_worker,
                                    AllReduceKind kind, double lr = 0.1) {
  GraphBuilder& b = *go.builder;
  const bool tree = kind == AllReduceKind::kTree;
  const uint32_t chunks = tree ? 1 : participants;
  LoopContext loop(b, go.depth, "logreg");
  FeedbackHandle<VecPiece> fb = loop.NewFeedback<VecPiece>();
  Stream<uint64_t> go_in = loop.Ingress<uint64_t>(go);
  StageId worker = b.NewStage<LogRegWorkerVertex>(
      StageOptions{.name = "logreg", .depth = loop.inner_depth(),
                   .parallelism = participants},
      [=](uint32_t index) {
        return std::make_unique<LogRegWorkerVertex>(
            MakeLogRegShard(examples_per_worker, dims, 1000 + index), dims, chunks, tree,
            lr);
      });
  b.Connect<LogRegWorkerVertex, uint64_t>(go_in, worker, 0);  // round-robin, one each
  Stream<VecPiece> local = b.OutputOf<VecPiece>(worker);
  Stream<VecPiece> reduced = tree ? TreeAllReduce(local, participants)
                                  : ChunkedAllReduce(local, participants);
  fb.ConnectLoop(reduced, [](const VecPiece& p) { return uint64_t{p.target}; });
  b.Connect<LogRegWorkerVertex, VecPiece>(
      fb.stream(), worker, 1, [](const VecPiece& p) { return uint64_t{p.target}; });
  return loop.Egress<VecPiece>(reduced);
}

}  // namespace naiad

#endif  // SRC_ALGO_LOGREG_H_
