// PageRank (§6.1, Fig. 7a) — two "native" timely dataflow implementations:
//
//  * Vertex variant: edges partitioned by source node (the paper's 30-line version).
//    Each physical vertex owns a shard of nodes; one loop iteration = one synchronous
//    PageRank iteration, coordinated by chained notifications.
//  * Edge variant: edges partitioned into 2D blocks along a space-filling curve (the
//    paper's 547-line version, "similar in spirit to PowerGraph's edge partitioning").
//    A block stage turns rank messages into per-destination partial sums, so high-degree
//    nodes' traffic scales with the number of blocks touching them rather than with their
//    degree.
//
// The Pregel variant lives in src/lib/pregel.h; the PowerGraph-style shared-memory GAS
// baseline in src/baseline/gas_engine.h.

#ifndef SRC_ALGO_PAGERANK_H_
#define SRC_ALGO_PAGERANK_H_

#include <algorithm>
#include <cstdint>
#include <map>
#include <memory>
#include <set>
#include <tuple>
#include <unordered_map>
#include <utility>
#include <vector>

#include "src/algo/csr.h"
#include "src/core/loop.h"
#include "src/core/stage.h"
#include "src/gen/graphs.h"
#include "src/ser/columns.h"

namespace naiad {

using NodeRank = std::pair<uint64_t, double>;

inline constexpr double kPrDamping = 0.85;
inline constexpr double kPrBase = 0.15;

// ---------------------------------------------------------------------------------------
// Vertex variant.
// ---------------------------------------------------------------------------------------

class PageRankVertex final : public Binary2Vertex<Edge, NodeRank, NodeRank, NodeRank> {
 public:
  explicit PageRankVertex(uint64_t iters) : iters_(iters) {}

  void OnRecv1(const Timestamp& t, std::vector<Edge>& edges) override {
    Ctx& c = ctx_[t.Popped()];
    for (const Edge& e : edges) {
      c.nodes[e.first].out.push_back(e.second);
    }
    if (!c.kicked) {
      c.kicked = true;
      NotifyAt(t);  // t == (e, 0): edges only enter at iteration 0
    }
  }

  void OnRecv2(const Timestamp& t, std::vector<NodeRank>& contribs) override {
    // Deliveries are asynchronous across iterations (§2.2): a contribution for iteration
    // i+1 may arrive before OnNotify(i), so accumulation is keyed by timestamp.
    Ctx& c = ctx_[t.Popped()];
    auto& acc = c.acc[t];
    for (const auto& [node, val] : contribs) {
      acc[node] += val;
    }
  }

  void OnNotify(const Timestamp& t) override {
    Ctx& c = ctx_[t.Popped()];
    const uint64_t iter = t.coords.back();
    if (iter > 0) {
      auto it = c.acc.find(t);
      for (auto& [id, n] : c.nodes) {
        n.rank = kPrBase;
      }
      if (it != c.acc.end()) {
        for (const auto& [node, sum] : it->second) {
          Node& n = c.nodes[node];
          n.rank = kPrBase + kPrDamping * sum;
        }
        c.acc.erase(it);
      }
    }
    if (iter + 1 < iters_) {
      for (const auto& [id, n] : c.nodes) {
        if (!n.out.empty()) {
          const double share = n.rank / static_cast<double>(n.out.size());
          for (uint64_t dst : n.out) {
            output1().Send(t, {dst, share});  // feedback: arrives at iteration iter+1
          }
        }
      }
      NotifyAt(t.Incremented());
    } else {
      for (const auto& [id, n] : c.nodes) {
        output2().Send(t, {id, n.rank});
      }
      ctx_.erase(t.Popped());
    }
  }

 private:
  struct Node {
    std::vector<uint64_t> out;
    double rank = 1.0;
  };
  struct Ctx {
    std::unordered_map<uint64_t, Node> nodes;
    std::map<Timestamp, std::unordered_map<uint64_t, double>> acc;
    bool kicked = false;
  };

  uint64_t iters_;
  std::map<Timestamp, Ctx> ctx_;
};

// Builds the vertex-partitioned PageRank loop; emits final (node, rank) pairs per epoch.
inline Stream<NodeRank> PageRank(const Stream<Edge>& edges, uint64_t iters) {
  GraphBuilder& b = *edges.builder;
  LoopContext loop(b, edges.depth, "pagerank");
  FeedbackHandle<NodeRank> fb = loop.NewFeedback<NodeRank>();
  Stream<Edge> in_loop =
      loop.Ingress<Edge>(edges, [](const Edge& e) { return Mix64(e.first); });
  StageId pr = b.NewStage<PageRankVertex>(
      StageOptions{.name = "pagerank", .depth = loop.inner_depth()},
      [iters](uint32_t) { return std::make_unique<PageRankVertex>(iters); });
  b.Connect<PageRankVertex, Edge>(in_loop, pr, 0);
  b.Connect<PageRankVertex, NodeRank>(fb.stream(), pr, 1,
                                      [](const NodeRank& nr) { return Mix64(nr.first); });
  fb.ConnectLoop(b.OutputOf<NodeRank>(pr, 0),
                 [](const NodeRank& nr) { return Mix64(nr.first); });
  return loop.Egress<NodeRank>(b.OutputOf<NodeRank>(pr, 1));
}

// ---------------------------------------------------------------------------------------
// CSR variant: the columnar graph substrate (src/algo/csr.h + src/ser/columns.h).
//
// Same dataflow shape as the Vertex variant — edges partitioned by source, one loop
// iteration per PageRank iteration, chained notifications — but the per-timestamp
// unordered_map state is replaced by a CsrShard built once at iteration 0 plus dense
// rank/accumulator arrays indexed by local id, and rank contributions are combined
// per destination on the sender before travelling as RankColumns struct-of-arrays
// batches routed by their precomputed `part`.
// ---------------------------------------------------------------------------------------

class PageRankCsrVertex final
    : public Binary2Vertex<Edge, RankColumns, RankColumns, NodeRank> {
 public:
  explicit PageRankCsrVertex(uint64_t iters) : iters_(iters) {}

  void OnRecv1(const Timestamp& t, std::vector<Edge>& edges) override {
    Ctx& c = ctx_[t.Popped()];
    c.edges.insert(c.edges.end(), edges.begin(), edges.end());
    if (!c.kicked) {
      c.kicked = true;
      NotifyAt(t);  // t == (e, 0): edges only enter at iteration 0
    }
  }

  void OnRecv2(const Timestamp& t, std::vector<RankColumns>& batches) override {
    // Deliveries are asynchronous across iterations (§2.2): batches for iteration i+1 may
    // arrive before OnNotify(i) — and before the CSR is even built. Stash the column
    // batches whole (moves, no per-entry work) and drain at the notification, which the
    // frontier guarantees runs in iteration order.
    Ctx& c = ctx_[t.Popped()];
    auto& inbox = c.inbox[t];
    for (RankColumns& b : batches) {
      inbox.push_back(std::move(b));
    }
  }

  void OnNotify(const Timestamp& t) override {
    Ctx& c = ctx_[t.Popped()];
    const uint64_t iter = t.coords.back();
    if (iter == 0) {
      c.csr = CsrShard::Build(std::move(c.edges), c.remap);
      // Neighbors become shard-local ids (every endpoint is already interned), so the
      // share scatter in SendShares is a dense array add per edge; owner parts are
      // precomputed per local so the combined sums route without hashing per entry.
      c.csr.TranslateNeighbors(c.remap);
      const uint32_t shards = shards_count();
      const uint32_t n = c.csr.num_nodes();
      // The combined-send set is structural: local `l` gets a (strictly positive) sum
      // every iteration iff some edge in this shard points at it. Precompute, per owner
      // shard, the send list in local-id order — the emit pass then fills column batches
      // with contiguous key slices and an ascending (cache-friendly) gather of sums.
      std::vector<uint8_t> has_in(n, 0);
      for (uint32_t local = 0; local < n; ++local) {
        const uint64_t* end = c.csr.NbrEnd(local);
        for (const uint64_t* p = c.csr.NbrBegin(local); p != end; ++p) {
          has_in[*p] = 1;
        }
      }
      c.send_locals.assign(shards, {});
      c.send_globals.assign(shards, {});
      for (uint32_t local = 0; local < n; ++local) {
        if (has_in[local]) {
          const uint64_t g = c.remap.ToGlobal(local);
          const uint32_t owner = static_cast<uint32_t>(Mix64(g) % shards);
          c.send_locals[owner].push_back(local);
          c.send_globals[owner].push_back(g);
        }
      }
      c.ranks.assign(c.remap.size(), 1.0);
      c.acc.assign(c.remap.size(), 0.0);
      c.send_acc.assign(n, 0.0);
    } else {
      // Drain this iteration's stashed batches into the dense accumulator. Keys can name
      // nodes unknown to the CSR: a pure sink has no out-edges anywhere on its owner
      // shard, so it is first seen here (the legacy variant auto-created it the same
      // way). Contributions are strictly positive (ranks >= kPrBase, degree >= 1), so
      // 0.0 doubles as the untouched sentinel and c.touched stays duplicate-free.
      if (auto it = c.inbox.find(t); it != c.inbox.end()) {
        for (const RankColumns& b : it->second) {
          for (size_t i = 0; i < b.size(); ++i) {
            const uint32_t local = c.remap.Intern(b.keys[i]);
            if (local >= c.acc.size()) {
              c.acc.resize(c.remap.size(), 0.0);
            }
            if (c.acc[local] == 0.0) {
              c.touched.push_back(local);
            }
            c.acc[local] += b.vals[i];
          }
        }
        c.inbox.erase(it);
      }
      // The touched set is structural — every sender's per-owner send list is fixed at
      // build, so the same locals receive sums each iteration. Untouched locals are
      // reset to kPrBase once (iteration 1) and never written again; later resizes only
      // cover sinks interned during this drain.
      if (iter == 1) {
        c.ranks.assign(c.remap.size(), kPrBase);
      } else {
        c.ranks.resize(c.remap.size(), kPrBase);
      }
      for (uint32_t local : c.touched) {
        c.ranks[local] = kPrBase + kPrDamping * c.acc[local];
        c.acc[local] = 0.0;
      }
      c.touched.clear();
    }
    if (iter + 1 < iters_) {
      SendShares(t, c);
      NotifyAt(t.Incremented());
    } else {
      // Emit each node from its owner shard only. Building the CSR interned this shard's
      // *destination* endpoints too, but their contributions accumulate on the owner
      // (parts are computed as Mix64(node) % shards), so emitting a non-owned node here
      // would duplicate it with a stale kPrBase rank.
      const uint32_t shards = controller().graph().stage(address().stage).parallelism;
      for (uint32_t local = 0; local < c.ranks.size(); ++local) {
        const uint64_t g = c.remap.ToGlobal(local);
        if (Mix64(g) % shards == address().index) {
          output2().Send(t, {g, c.ranks[local]});
        }
      }
      ctx_.erase(t.Popped());
    }
  }

 private:
  struct Ctx {
    std::vector<Edge> edges;  // buffered until the iteration-0 notification
    IdRemap remap;
    CsrShard csr;  // neighbors hold shard-local ids after the build
    // Per owner shard: the locals this shard sends combined sums to (ascending local id)
    // and their global ids, fixed at build — see the comment at the build site.
    std::vector<std::vector<uint32_t>> send_locals;
    std::vector<std::vector<uint64_t>> send_globals;
    std::vector<double> ranks;     // dense, indexed by local id
    std::vector<double> acc;       // dense accumulator (0.0 = untouched this iteration)
    std::vector<double> send_acc;  // per-iteration combined outgoing shares, by local id
    std::vector<uint32_t> touched;
    std::map<Timestamp, std::vector<RankColumns>> inbox;
    bool kicked = false;
  };

  // Sender-side combining: scatter each node's share into a dense local accumulator over
  // the translated (local-id) neighbor array — one array add per edge, no hashing — then
  // ship one combined (node, sum) column entry per distinct destination, filling batches
  // straight from the precomputed per-owner send lists. A Zipf head node receives at
  // most `shards` entries per iteration instead of its in-degree.
  void SendShares(const Timestamp& t, Ctx& c) {
    const size_t flush_at = controller().config().batch_size;
    const uint32_t n = c.csr.num_nodes();  // nodes interned later are all degree-0
    for (uint32_t local = 0; local < n; ++local) {
      const uint64_t deg = c.csr.OutDegree(local);
      if (deg == 0) {
        continue;
      }
      const double share = c.ranks[local] / static_cast<double>(deg);
      const uint64_t* end = c.csr.NbrEnd(local);
      for (const uint64_t* p = c.csr.NbrBegin(local); p != end; ++p) {
        c.send_acc[*p] += share;
      }
    }
    for (uint32_t owner = 0; owner < c.send_locals.size(); ++owner) {
      const std::vector<uint32_t>& locs = c.send_locals[owner];
      const std::vector<uint64_t>& globs = c.send_globals[owner];
      for (size_t at = 0; at < locs.size(); at += flush_at) {
        const size_t len = std::min(flush_at, locs.size() - at);
        RankColumns b;
        b.part = owner;
        b.keys.assign(globs.begin() + at, globs.begin() + at + len);
        b.vals.resize(len);
        for (size_t j = 0; j < len; ++j) {
          const uint32_t local = locs[at + j];
          b.vals[j] = c.send_acc[local];
          c.send_acc[local] = 0.0;
        }
        output1().Send(t, std::move(b));
      }
    }
  }

  uint32_t shards_count() {
    return controller().graph().stage(address().stage).parallelism;
  }

  uint64_t iters_;
  std::map<Timestamp, Ctx> ctx_;
};

// CSR PageRank loop: identical wiring to PageRank(), but the feedback carries RankColumns
// routed by the sender-computed `part` (DestVertex applies `part % parallelism`, a no-op).
inline Stream<NodeRank> PageRankCsr(const Stream<Edge>& edges, uint64_t iters) {
  GraphBuilder& b = *edges.builder;
  LoopContext loop(b, edges.depth, "pagerank-csr");
  FeedbackHandle<RankColumns> fb = loop.NewFeedback<RankColumns>();
  Stream<Edge> in_loop =
      loop.Ingress<Edge>(edges, [](const Edge& e) { return Mix64(e.first); });
  StageId pr = b.NewStage<PageRankCsrVertex>(
      StageOptions{.name = "pagerank-csr", .depth = loop.inner_depth()},
      [iters](uint32_t) { return std::make_unique<PageRankCsrVertex>(iters); });
  b.Connect<PageRankCsrVertex, Edge>(in_loop, pr, 0);
  b.Connect<PageRankCsrVertex, RankColumns>(
      fb.stream(), pr, 1, [](const RankColumns& rc) { return rc.part; });
  fb.ConnectLoop(b.OutputOf<RankColumns>(pr, 0),
                 [](const RankColumns& rc) { return rc.part; });
  return loop.Egress<NodeRank>(b.OutputOf<NodeRank>(pr, 1));
}

// ---------------------------------------------------------------------------------------
// Edge variant: 2D block partitioning along a Morton (Z-order) space-filling curve.
// ---------------------------------------------------------------------------------------

// (node, block, degree-in-block) — a block registers how many of node's out-edges it holds.
using PrRegistration = std::tuple<uint64_t, uint64_t, uint64_t>;
// (block, node, contribution) — a node ships rank/degree once per block that needs it.
using PrRankMsg = std::tuple<uint64_t, uint64_t, double>;
// (dst node, partial sum) — a block pre-aggregates contributions per destination.
using PrPartial = std::pair<uint64_t, double>;

inline uint64_t MortonBlock(uint64_t src, uint64_t dst, uint32_t grid_bits) {
  const uint64_t x = Mix64(src) >> (64 - grid_bits);
  const uint64_t y = Mix64(dst) >> (64 - grid_bits);
  uint64_t z = 0;
  for (uint32_t i = 0; i < grid_bits; ++i) {
    z |= ((x >> i) & 1) << (2 * i);
    z |= ((y >> i) & 1) << (2 * i + 1);
  }
  return z;
}

class PrBlockVertex final : public Binary2Vertex<Edge, PrRankMsg, PrRegistration, PrPartial> {
 public:
  explicit PrBlockVertex(uint32_t grid_bits) : grid_bits_(grid_bits) {}

  void OnRecv1(const Timestamp& t, std::vector<Edge>& edges) override {
    Ctx& c = ctx_[t.Popped()];
    std::map<std::pair<uint64_t, uint64_t>, uint64_t> reg;  // (node, block) -> count
    for (const Edge& e : edges) {
      const uint64_t block = MortonBlock(e.first, e.second, grid_bits_);
      // Several blocks can land on one physical vertex; adjacency stays per block so a
      // rank message addressed to one block never touches another block's edges.
      c.blocks[block].pending.push_back(e);
      ++reg[{e.first, block}];
    }
    for (const auto& [key, count] : reg) {
      output1().Send(t, {key.first, key.second, count});
    }
  }

  void OnRecv2(const Timestamp& t, std::vector<PrRankMsg>& msgs) override {
    Ctx& c = ctx_[t.Popped()];
    if (!c.notified.contains(t)) {
      c.notified.insert(t);
      NotifyAt(t);
    }
    if (!c.built) {
      // Safe build point: a rank message only exists because some PrNodeVertex was
      // notified at iteration 0, and that notification is held back by every unprocessed
      // edge bundle (blocks' input 1 could-result-in the node stage's notify location).
      // So the adjacency buffered in OnRecv1 is complete here. Neighbor ids are
      // translated to dst-local so the accumulation loop below is a pure array walk.
      for (auto& [block, bg] : c.blocks) {
        bg.csr = CsrShard::Build(std::move(bg.pending), bg.remap);
        bg.csr.TranslateNeighbors(c.dst_remap);
      }
      c.built = true;
    }
    Acc& acc = c.partials[t];  // keyed by time: later iterations may arrive early
    if (acc.vals.size() < c.dst_remap.size()) {
      acc.vals.resize(c.dst_remap.size(), 0.0);
    }
    for (const auto& [block, node, val] : msgs) {
      auto bit = c.blocks.find(block);
      if (bit == c.blocks.end()) {
        continue;
      }
      BlockGraph& bg = bit->second;
      const uint32_t src = bg.remap.Find(node);
      if (src == IdRemap::kAbsent) {
        continue;
      }
      const uint64_t* end = bg.csr.NbrEnd(src);
      for (const uint64_t* p = bg.csr.NbrBegin(src); p != end; ++p) {
        // Contributions are strictly positive, so 0.0 marks an untouched slot.
        if (acc.vals[*p] == 0.0) {
          acc.touched.push_back(static_cast<uint32_t>(*p));
        }
        acc.vals[*p] += val;
      }
    }
  }

  void OnNotify(const Timestamp& t) override {
    Ctx& c = ctx_[t.Popped()];
    auto it = c.partials.find(t);
    if (it != c.partials.end()) {
      for (uint32_t dst : it->second.touched) {
        output2().Send(t, {c.dst_remap.ToGlobal(dst), it->second.vals[dst]});
      }
      c.partials.erase(it);
    }
    c.notified.erase(t);
  }

 private:
  struct BlockGraph {
    IdRemap remap;              // src node -> block-local id
    CsrShard csr;               // neighbors hold dst_remap-local ids after translation
    std::vector<Edge> pending;  // buffered until the first rank message
  };
  struct Acc {
    std::vector<double> vals;  // dense partial sums indexed by dst-local id
    std::vector<uint32_t> touched;
  };
  struct Ctx {
    std::unordered_map<uint64_t, BlockGraph> blocks;
    IdRemap dst_remap;  // destination node -> dense accumulator slot (shared by blocks)
    std::map<Timestamp, Acc> partials;
    std::set<Timestamp> notified;
    bool built = false;
  };

  uint32_t grid_bits_;
  std::map<Timestamp, Ctx> ctx_;
};

class PrNodeVertex final : public Binary2Vertex<PrRegistration, PrPartial, PrRankMsg, NodeRank> {
 public:
  explicit PrNodeVertex(uint64_t iters) : iters_(iters) {}

  void OnRecv1(const Timestamp& t, std::vector<PrRegistration>& regs) override {
    Ctx& c = ctx_[t.Popped()];
    for (const auto& [node, block, count] : regs) {
      Node& n = c.nodes[Materialize(c, node)];
      n.blocks.push_back(block);
      n.degree += count;
    }
    if (!c.kicked) {
      c.kicked = true;
      NotifyAt(t);
    }
  }

  void OnRecv2(const Timestamp& t, std::vector<PrPartial>& partials) override {
    Ctx& c = ctx_[t.Popped()];
    Acc& acc = c.acc[t];  // keyed by time: later iterations may arrive early
    for (const auto& [node, val] : partials) {
      // Pure sinks have no registrations, so intern on arrival (the legacy map
      // auto-created them the same way).
      const uint32_t local = Materialize(c, node);
      if (local >= acc.vals.size()) {
        acc.vals.resize(c.nodes.size(), 0.0);
      }
      if (acc.vals[local] == 0.0) {  // partial sums are strictly positive
        acc.touched.push_back(local);
      }
      acc.vals[local] += val;
    }
  }

  void OnNotify(const Timestamp& t) override {
    Ctx& c = ctx_[t.Popped()];
    const uint64_t iter = t.coords.back();
    if (iter > 0) {
      for (Node& n : c.nodes) {
        n.rank = kPrBase;
      }
      auto it = c.acc.find(t);
      if (it != c.acc.end()) {
        for (uint32_t local : it->second.touched) {
          c.nodes[local].rank = kPrBase + kPrDamping * it->second.vals[local];
        }
        c.acc.erase(it);
      }
    }
    if (iter + 1 < iters_) {
      for (uint32_t local = 0; local < c.nodes.size(); ++local) {
        const Node& n = c.nodes[local];
        if (n.degree > 0) {
          const double share = n.rank / static_cast<double>(n.degree);
          const uint64_t id = c.remap.ToGlobal(local);
          for (uint64_t block : n.blocks) {
            output1().Send(t, {block, id, share});
          }
        }
      }
      NotifyAt(t.Incremented());
    } else {
      for (uint32_t local = 0; local < c.nodes.size(); ++local) {
        output2().Send(t, {c.remap.ToGlobal(local), c.nodes[local].rank});
      }
      ctx_.erase(t.Popped());
    }
  }

 private:
  struct Node {
    std::vector<uint64_t> blocks;
    uint64_t degree = 0;
    double rank = 1.0;
  };
  struct Acc {
    std::vector<double> vals;  // dense, indexed by local id (0.0 = untouched)
    std::vector<uint32_t> touched;
  };
  struct Ctx {
    IdRemap remap;
    std::vector<Node> nodes;  // dense, indexed by local id
    std::map<Timestamp, Acc> acc;
    bool kicked = false;
  };

  uint32_t Materialize(Ctx& c, uint64_t g) {
    const uint32_t local = c.remap.Intern(g);
    if (local >= c.nodes.size()) {
      c.nodes.emplace_back();
    }
    return local;
  }

  uint64_t iters_;
  std::map<Timestamp, Ctx> ctx_;
};

inline Stream<NodeRank> PageRankEdgePartitioned(const Stream<Edge>& edges, uint64_t iters,
                                                uint32_t grid_bits = 3) {
  GraphBuilder& b = *edges.builder;
  LoopContext loop(b, edges.depth, "pagerank-edge");
  FeedbackHandle<PrRankMsg> fb = loop.NewFeedback<PrRankMsg>();
  Stream<Edge> in_loop = loop.Ingress<Edge>(edges, [grid_bits](const Edge& e) {
    return MortonBlock(e.first, e.second, grid_bits);
  });

  StageId blocks = b.NewStage<PrBlockVertex>(
      StageOptions{.name = "pr-blocks", .depth = loop.inner_depth()},
      [grid_bits](uint32_t) { return std::make_unique<PrBlockVertex>(grid_bits); });
  StageId nodes = b.NewStage<PrNodeVertex>(
      StageOptions{.name = "pr-nodes", .depth = loop.inner_depth()},
      [iters](uint32_t) { return std::make_unique<PrNodeVertex>(iters); });

  b.Connect<PrBlockVertex, Edge>(in_loop, blocks, 0);
  b.Connect<PrBlockVertex, PrRankMsg>(
      fb.stream(), blocks, 1,
      [](const PrRankMsg& m) { return std::get<0>(m); });
  b.Connect<PrNodeVertex, PrRegistration>(
      b.OutputOf<PrRegistration>(blocks, 0), nodes, 0,
      [](const PrRegistration& r) { return Mix64(std::get<0>(r)); });
  b.Connect<PrNodeVertex, PrPartial>(
      b.OutputOf<PrPartial>(blocks, 1), nodes, 1,
      [](const PrPartial& p) { return Mix64(p.first); });
  fb.ConnectLoop(b.OutputOf<PrRankMsg>(nodes, 0),
                 [](const PrRankMsg& m) { return std::get<0>(m); });
  return loop.Egress<NodeRank>(b.OutputOf<NodeRank>(nodes, 1));
}

}  // namespace naiad

#endif  // SRC_ALGO_PAGERANK_H_
