// PageRank (§6.1, Fig. 7a) — two "native" timely dataflow implementations:
//
//  * Vertex variant: edges partitioned by source node (the paper's 30-line version).
//    Each physical vertex owns a shard of nodes; one loop iteration = one synchronous
//    PageRank iteration, coordinated by chained notifications.
//  * Edge variant: edges partitioned into 2D blocks along a space-filling curve (the
//    paper's 547-line version, "similar in spirit to PowerGraph's edge partitioning").
//    A block stage turns rank messages into per-destination partial sums, so high-degree
//    nodes' traffic scales with the number of blocks touching them rather than with their
//    degree.
//
// The Pregel variant lives in src/lib/pregel.h; the PowerGraph-style shared-memory GAS
// baseline in src/baseline/gas_engine.h.

#ifndef SRC_ALGO_PAGERANK_H_
#define SRC_ALGO_PAGERANK_H_

#include <cstdint>
#include <map>
#include <memory>
#include <set>
#include <tuple>
#include <unordered_map>
#include <utility>
#include <vector>

#include "src/core/loop.h"
#include "src/core/stage.h"
#include "src/gen/graphs.h"

namespace naiad {

using NodeRank = std::pair<uint64_t, double>;

inline constexpr double kPrDamping = 0.85;
inline constexpr double kPrBase = 0.15;

// ---------------------------------------------------------------------------------------
// Vertex variant.
// ---------------------------------------------------------------------------------------

class PageRankVertex final : public Binary2Vertex<Edge, NodeRank, NodeRank, NodeRank> {
 public:
  explicit PageRankVertex(uint64_t iters) : iters_(iters) {}

  void OnRecv1(const Timestamp& t, std::vector<Edge>& edges) override {
    Ctx& c = ctx_[t.Popped()];
    for (const Edge& e : edges) {
      c.nodes[e.first].out.push_back(e.second);
    }
    if (!c.kicked) {
      c.kicked = true;
      NotifyAt(t);  // t == (e, 0): edges only enter at iteration 0
    }
  }

  void OnRecv2(const Timestamp& t, std::vector<NodeRank>& contribs) override {
    // Deliveries are asynchronous across iterations (§2.2): a contribution for iteration
    // i+1 may arrive before OnNotify(i), so accumulation is keyed by timestamp.
    Ctx& c = ctx_[t.Popped()];
    auto& acc = c.acc[t];
    for (const auto& [node, val] : contribs) {
      acc[node] += val;
    }
  }

  void OnNotify(const Timestamp& t) override {
    Ctx& c = ctx_[t.Popped()];
    const uint64_t iter = t.coords.back();
    if (iter > 0) {
      auto it = c.acc.find(t);
      for (auto& [id, n] : c.nodes) {
        n.rank = kPrBase;
      }
      if (it != c.acc.end()) {
        for (const auto& [node, sum] : it->second) {
          Node& n = c.nodes[node];
          n.rank = kPrBase + kPrDamping * sum;
        }
        c.acc.erase(it);
      }
    }
    if (iter + 1 < iters_) {
      for (const auto& [id, n] : c.nodes) {
        if (!n.out.empty()) {
          const double share = n.rank / static_cast<double>(n.out.size());
          for (uint64_t dst : n.out) {
            output1().Send(t, {dst, share});  // feedback: arrives at iteration iter+1
          }
        }
      }
      NotifyAt(t.Incremented());
    } else {
      for (const auto& [id, n] : c.nodes) {
        output2().Send(t, {id, n.rank});
      }
      ctx_.erase(t.Popped());
    }
  }

 private:
  struct Node {
    std::vector<uint64_t> out;
    double rank = 1.0;
  };
  struct Ctx {
    std::unordered_map<uint64_t, Node> nodes;
    std::map<Timestamp, std::unordered_map<uint64_t, double>> acc;
    bool kicked = false;
  };

  uint64_t iters_;
  std::map<Timestamp, Ctx> ctx_;
};

// Builds the vertex-partitioned PageRank loop; emits final (node, rank) pairs per epoch.
inline Stream<NodeRank> PageRank(const Stream<Edge>& edges, uint64_t iters) {
  GraphBuilder& b = *edges.builder;
  LoopContext loop(b, edges.depth, "pagerank");
  FeedbackHandle<NodeRank> fb = loop.NewFeedback<NodeRank>();
  Stream<Edge> in_loop =
      loop.Ingress<Edge>(edges, [](const Edge& e) { return Mix64(e.first); });
  StageId pr = b.NewStage<PageRankVertex>(
      StageOptions{.name = "pagerank", .depth = loop.inner_depth()},
      [iters](uint32_t) { return std::make_unique<PageRankVertex>(iters); });
  b.Connect<PageRankVertex, Edge>(in_loop, pr, 0);
  b.Connect<PageRankVertex, NodeRank>(fb.stream(), pr, 1,
                                      [](const NodeRank& nr) { return Mix64(nr.first); });
  fb.ConnectLoop(b.OutputOf<NodeRank>(pr, 0),
                 [](const NodeRank& nr) { return Mix64(nr.first); });
  return loop.Egress<NodeRank>(b.OutputOf<NodeRank>(pr, 1));
}

// ---------------------------------------------------------------------------------------
// Edge variant: 2D block partitioning along a Morton (Z-order) space-filling curve.
// ---------------------------------------------------------------------------------------

// (node, block, degree-in-block) — a block registers how many of node's out-edges it holds.
using PrRegistration = std::tuple<uint64_t, uint64_t, uint64_t>;
// (block, node, contribution) — a node ships rank/degree once per block that needs it.
using PrRankMsg = std::tuple<uint64_t, uint64_t, double>;
// (dst node, partial sum) — a block pre-aggregates contributions per destination.
using PrPartial = std::pair<uint64_t, double>;

inline uint64_t MortonBlock(uint64_t src, uint64_t dst, uint32_t grid_bits) {
  const uint64_t x = Mix64(src) >> (64 - grid_bits);
  const uint64_t y = Mix64(dst) >> (64 - grid_bits);
  uint64_t z = 0;
  for (uint32_t i = 0; i < grid_bits; ++i) {
    z |= ((x >> i) & 1) << (2 * i);
    z |= ((y >> i) & 1) << (2 * i + 1);
  }
  return z;
}

class PrBlockVertex final : public Binary2Vertex<Edge, PrRankMsg, PrRegistration, PrPartial> {
 public:
  explicit PrBlockVertex(uint32_t grid_bits) : grid_bits_(grid_bits) {}

  void OnRecv1(const Timestamp& t, std::vector<Edge>& edges) override {
    Ctx& c = ctx_[t.Popped()];
    std::map<std::pair<uint64_t, uint64_t>, uint64_t> reg;  // (node, block) -> count
    for (const Edge& e : edges) {
      const uint64_t block = MortonBlock(e.first, e.second, grid_bits_);
      // Several blocks can land on one physical vertex; adjacency stays per block so a
      // rank message addressed to one block never touches another block's edges.
      c.adj[{block, e.first}].push_back(e.second);
      ++reg[{e.first, block}];
    }
    for (const auto& [key, count] : reg) {
      output1().Send(t, {key.first, key.second, count});
    }
  }

  void OnRecv2(const Timestamp& t, std::vector<PrRankMsg>& msgs) override {
    Ctx& c = ctx_[t.Popped()];
    if (!c.notified.contains(t)) {
      c.notified.insert(t);
      NotifyAt(t);
    }
    auto& partials = c.partials[t];  // keyed by time: later iterations may arrive early
    for (const auto& [block, node, val] : msgs) {
      auto it = c.adj.find({block, node});
      if (it == c.adj.end()) {
        continue;
      }
      for (uint64_t dst : it->second) {
        partials[dst] += val;
      }
    }
  }

  void OnNotify(const Timestamp& t) override {
    Ctx& c = ctx_[t.Popped()];
    auto it = c.partials.find(t);
    if (it != c.partials.end()) {
      for (const auto& [dst, sum] : it->second) {
        output2().Send(t, {dst, sum});
      }
      c.partials.erase(it);
    }
    c.notified.erase(t);
  }

 private:
  struct Ctx {
    std::map<std::pair<uint64_t, uint64_t>, std::vector<uint64_t>> adj;  // (block, node)
    std::map<Timestamp, std::unordered_map<uint64_t, double>> partials;
    std::set<Timestamp> notified;
  };

  uint32_t grid_bits_;
  std::map<Timestamp, Ctx> ctx_;
};

class PrNodeVertex final : public Binary2Vertex<PrRegistration, PrPartial, PrRankMsg, NodeRank> {
 public:
  explicit PrNodeVertex(uint64_t iters) : iters_(iters) {}

  void OnRecv1(const Timestamp& t, std::vector<PrRegistration>& regs) override {
    Ctx& c = ctx_[t.Popped()];
    for (const auto& [node, block, count] : regs) {
      Node& n = c.nodes[node];
      n.blocks.push_back(block);
      n.degree += count;
    }
    if (!c.kicked) {
      c.kicked = true;
      NotifyAt(t);
    }
  }

  void OnRecv2(const Timestamp& t, std::vector<PrPartial>& partials) override {
    Ctx& c = ctx_[t.Popped()];
    auto& acc = c.acc[t];  // keyed by time: later iterations may arrive early
    for (const auto& [node, val] : partials) {
      acc[node] += val;
    }
  }

  void OnNotify(const Timestamp& t) override {
    Ctx& c = ctx_[t.Popped()];
    const uint64_t iter = t.coords.back();
    if (iter > 0) {
      for (auto& [id, n] : c.nodes) {
        n.rank = kPrBase;
      }
      auto it = c.acc.find(t);
      if (it != c.acc.end()) {
        for (const auto& [node, sum] : it->second) {
          c.nodes[node].rank = kPrBase + kPrDamping * sum;
        }
        c.acc.erase(it);
      }
    }
    if (iter + 1 < iters_) {
      for (const auto& [id, n] : c.nodes) {
        if (n.degree > 0) {
          const double share = n.rank / static_cast<double>(n.degree);
          for (uint64_t block : n.blocks) {
            output1().Send(t, {block, id, share});
          }
        }
      }
      NotifyAt(t.Incremented());
    } else {
      for (const auto& [id, n] : c.nodes) {
        output2().Send(t, {id, n.rank});
      }
      ctx_.erase(t.Popped());
    }
  }

 private:
  struct Node {
    std::vector<uint64_t> blocks;
    uint64_t degree = 0;
    double rank = 1.0;
  };
  struct Ctx {
    std::unordered_map<uint64_t, Node> nodes;
    std::map<Timestamp, std::unordered_map<uint64_t, double>> acc;
    bool kicked = false;
  };

  uint64_t iters_;
  std::map<Timestamp, Ctx> ctx_;
};

inline Stream<NodeRank> PageRankEdgePartitioned(const Stream<Edge>& edges, uint64_t iters,
                                                uint32_t grid_bits = 3) {
  GraphBuilder& b = *edges.builder;
  LoopContext loop(b, edges.depth, "pagerank-edge");
  FeedbackHandle<PrRankMsg> fb = loop.NewFeedback<PrRankMsg>();
  Stream<Edge> in_loop = loop.Ingress<Edge>(edges, [grid_bits](const Edge& e) {
    return MortonBlock(e.first, e.second, grid_bits);
  });

  StageId blocks = b.NewStage<PrBlockVertex>(
      StageOptions{.name = "pr-blocks", .depth = loop.inner_depth()},
      [grid_bits](uint32_t) { return std::make_unique<PrBlockVertex>(grid_bits); });
  StageId nodes = b.NewStage<PrNodeVertex>(
      StageOptions{.name = "pr-nodes", .depth = loop.inner_depth()},
      [iters](uint32_t) { return std::make_unique<PrNodeVertex>(iters); });

  b.Connect<PrBlockVertex, Edge>(in_loop, blocks, 0);
  b.Connect<PrBlockVertex, PrRankMsg>(
      fb.stream(), blocks, 1,
      [](const PrRankMsg& m) { return std::get<0>(m); });
  b.Connect<PrNodeVertex, PrRegistration>(
      b.OutputOf<PrRegistration>(blocks, 0), nodes, 0,
      [](const PrRegistration& r) { return Mix64(std::get<0>(r)); });
  b.Connect<PrNodeVertex, PrPartial>(
      b.OutputOf<PrPartial>(blocks, 1), nodes, 1,
      [](const PrPartial& p) { return Mix64(p.first); });
  fb.ConnectLoop(b.OutputOf<PrRankMsg>(nodes, 0),
                 [](const PrRankMsg& m) { return std::get<0>(m); });
  return loop.Egress<NodeRank>(b.OutputOf<NodeRank>(nodes, 1));
}

}  // namespace naiad

#endif  // SRC_ALGO_PAGERANK_H_
