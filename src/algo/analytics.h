// The Figure 1 / §6.4 application: streaming iterative graph analytics with interactive
// queries.
//
// Tweets arrive continually; mentions grow a user–user graph whose connected components
// are maintained incrementally (the dashed rectangle of Fig. 1); hashtags are attributed
// to the tweeting user's current component; queries ask for the top hashtag in a user's
// component.
//
// The combiner at the end is a custom stateful vertex — exactly the situation §4.3
// motivates custom vertices for: it reacts to component-label *improvements* (our
// monotonic substitute for differential dataflow, DESIGN.md #7) by migrating a user's
// hashtag counts between components.
//
// Query freshness (§6.4, Fig. 8):
//   kConsistent — answers wait for the query's epoch to complete ("Fresh": correct answers
//                 queue behind the component/hashtag update work);
//   kStale      — answers are produced the moment the query arrives, reflecting whatever
//                 state is already computed ("1 s delay" when the driver lags queries one
//                 epoch behind the tweet stream).

#ifndef SRC_ALGO_ANALYTICS_H_
#define SRC_ALGO_ANALYTICS_H_

#include <map>
#include <memory>
#include <utility>
#include <vector>

#include "src/algo/wcc.h"
#include "src/gen/tweets.h"
#include "src/lib/operators.h"

namespace naiad {

struct AnalyticsEvent {
  enum Kind : uint8_t { kCidImproved = 0, kHashtag = 1 };
  uint8_t kind = kHashtag;
  uint64_t user = 0;
  uint64_t value = 0;  // new component id, or hashtag

  void Encode(ByteWriter& w) const {
    w.WriteU8(kind);
    w.WriteU64(user);
    w.WriteU64(value);
  }
  bool Decode(ByteReader& r) {
    kind = r.ReadU8();
    user = r.ReadU64();
    value = r.ReadU64();
    return r.ok();
  }
};

struct TopTagQuery {
  uint64_t user = 0;
  uint64_t query_id = 0;

  void Encode(ByteWriter& w) const {
    w.WriteU64(user);
    w.WriteU64(query_id);
  }
  bool Decode(ByteReader& r) {
    user = r.ReadU64();
    query_id = r.ReadU64();
    return r.ok();
  }
};

struct TopTagAnswer {
  uint64_t query_id = 0;
  uint64_t component = 0;
  uint64_t top_tag = 0;
  uint64_t count = 0;

  friend bool operator==(const TopTagAnswer&, const TopTagAnswer&) = default;

  void Encode(ByteWriter& w) const {
    w.WriteU64(query_id);
    w.WriteU64(component);
    w.WriteU64(top_tag);
    w.WriteU64(count);
  }
  bool Decode(ByteReader& r) {
    query_id = r.ReadU64();
    component = r.ReadU64();
    top_tag = r.ReadU64();
    count = r.ReadU64();
    return r.ok();
  }
};

enum class QueryFreshness : uint8_t { kConsistent, kStale };

class TopHashtagVertex final : public BinaryVertex<AnalyticsEvent, TopTagQuery, TopTagAnswer> {
 public:
  explicit TopHashtagVertex(QueryFreshness mode) : mode_(mode) {}

  void OnRecv1(const Timestamp& t, std::vector<AnalyticsEvent>& events) override {
    if (mode_ == QueryFreshness::kStale) {
      // Uncoordinated: fold updates in as they arrive (their epoch order may interleave).
      for (const AnalyticsEvent& ev : events) {
        ApplyEvent(ev);
      }
      return;
    }
    // Consistent: deliveries are asynchronous across epochs (§2.2), so later epochs'
    // events can arrive before this epoch completes — buffer per timestamp and fold them
    // in at the completeness notification, which the runtime delivers in epoch order.
    auto [it, fresh] = pending_events_.try_emplace(t);
    if (fresh) {
      NotifyAt(t);
    }
    it->second.insert(it->second.end(), events.begin(), events.end());
  }

  void OnRecv2(const Timestamp& t, std::vector<TopTagQuery>& queries) override {
    if (mode_ == QueryFreshness::kStale) {
      for (const TopTagQuery& q : queries) {
        output().Send(t, Answer(q));
      }
      return;
    }
    auto [it, fresh] = pending_queries_.try_emplace(t);
    if (fresh) {
      NotifyAt(t);
    }
    it->second.insert(it->second.end(), queries.begin(), queries.end());
  }

  void OnNotify(const Timestamp& t) override {
    if (auto it = pending_events_.find(t); it != pending_events_.end()) {
      for (const AnalyticsEvent& ev : it->second) {
        ApplyEvent(ev);
      }
      pending_events_.erase(it);
    }
    if (auto it = pending_queries_.find(t); it != pending_queries_.end()) {
      for (const TopTagQuery& q : it->second) {
        output().Send(t, Answer(q));
      }
      pending_queries_.erase(it);
    }
  }

 private:
  void ApplyEvent(const AnalyticsEvent& ev) {
    if (ev.kind == AnalyticsEvent::kHashtag) {
      ++user_tags_[ev.user][ev.value];
      Bump(CidOf(ev.user), ev.value, 1);
    } else if (ev.value < CidOf(ev.user)) {
      // The user's component improved: migrate their hashtag counts.
      const uint64_t old_cid = CidOf(ev.user);
      user_cid_[ev.user] = ev.value;
      auto it = user_tags_.find(ev.user);
      if (it != user_tags_.end()) {
        for (const auto& [tag, n] : it->second) {
          Bump(old_cid, tag, -static_cast<int64_t>(n));
          Bump(ev.value, tag, static_cast<int64_t>(n));
        }
      }
    }
  }

  uint64_t CidOf(uint64_t user) const {
    auto it = user_cid_.find(user);
    return it == user_cid_.end() ? user : it->second;
  }

  void Bump(uint64_t cid, uint64_t tag, int64_t delta) {
    auto& tags = cid_tags_[cid];
    // Take the count by value: erase() below frees the node, so a reference
    // into the map would dangle when we compare against the cached top.
    const int64_t n = (tags[tag] += delta);
    if (n <= 0) {
      tags.erase(tag);
    }
    // Maintain the cached top tag for the component.
    auto& top = top_[cid];
    if (n >= static_cast<int64_t>(top.second)) {
      top = {tag, static_cast<uint64_t>(n)};
    } else if (top.first == tag) {
      top = {0, 0};  // the leader shrank: rescan
      for (const auto& [tg, cnt] : tags) {
        if (cnt > static_cast<int64_t>(top.second)) {
          top = {tg, static_cast<uint64_t>(cnt)};
        }
      }
    }
  }

  TopTagAnswer Answer(const TopTagQuery& q) const {
    const uint64_t cid = CidOf(q.user);
    auto it = top_.find(cid);
    TopTagAnswer a;
    a.query_id = q.query_id;
    a.component = cid;
    if (it != top_.end()) {
      a.top_tag = it->second.first;
      a.count = it->second.second;
    }
    return a;
  }

  QueryFreshness mode_;
  std::map<uint64_t, uint64_t> user_cid_;
  std::map<uint64_t, std::map<uint64_t, int64_t>> user_tags_;
  std::map<uint64_t, std::map<uint64_t, int64_t>> cid_tags_;
  std::map<uint64_t, std::pair<uint64_t, uint64_t>> top_;
  std::map<Timestamp, std::vector<AnalyticsEvent>> pending_events_;
  std::map<Timestamp, std::vector<TopTagQuery>> pending_queries_;
};

// Assembles the whole Figure-1 dataflow; returns the answer stream. The combining vertex
// is a singleton (the example/benchmark scale is one machine; §6.4's is data-parallel via
// a further exchange on component id, which the structure here would support unchanged).
inline Stream<TopTagAnswer> StreamingTopHashtags(const Stream<Tweet>& tweets,
                                                 const Stream<TopTagQuery>& queries,
                                                 QueryFreshness mode) {
  GraphBuilder& b = *tweets.builder;
  Stream<Edge> mentions = SelectMany(tweets, [](const Tweet& tw) {
    std::vector<Edge> out;
    out.reserve(tw.mentions.size());
    for (uint64_t m : tw.mentions) {
      out.emplace_back(tw.user, m);
    }
    return out;
  });
  Stream<NodeLabel> cc = IncrementalConnectedComponents(mentions);

  Stream<AnalyticsEvent> tag_events = SelectMany(tweets, [](const Tweet& tw) {
    std::vector<AnalyticsEvent> out;
    out.reserve(tw.hashtags.size());
    for (uint64_t h : tw.hashtags) {
      out.push_back(AnalyticsEvent{AnalyticsEvent::kHashtag, tw.user, h});
    }
    return out;
  });
  Stream<AnalyticsEvent> cid_events = Select(cc, [](const NodeLabel& nl) {
    return AnalyticsEvent{AnalyticsEvent::kCidImproved, nl.first, nl.second};
  });
  Stream<AnalyticsEvent> events = Concat<AnalyticsEvent>(tag_events, cid_events);

  StageId combine = b.NewStage<TopHashtagVertex>(
      StageOptions{.name = "top-hashtags", .depth = 0, .parallelism = 1},
      [mode](uint32_t) { return std::make_unique<TopHashtagVertex>(mode); });
  b.Connect<TopHashtagVertex, AnalyticsEvent>(events, combine, 0);
  b.Connect<TopHashtagVertex, TopTagQuery>(queries, combine, 1);
  return b.OutputOf<TopTagAnswer>(combine);
}

}  // namespace naiad

#endif  // SRC_ALGO_ANALYTICS_H_
