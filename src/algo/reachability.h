// Datalog-style queries from the Bloom subset (§4.2): "the LINQ operators Where, Concat,
// Distinct, and Join are sufficient, within a loop, to implement Datalog-style queries.
// None of these operators invokes NotifyAt, and subgraphs using only these will execute
// asynchronously (without coordination) on Naiad."
//
// Transitive closure as the canonical example:
//
//     paths(x, y) :- edges(x, y).
//     paths(x, z) :- paths(x, y), edges(y, z).
//
// built exactly from that operator set: an accumulating Join extends circulating paths by
// one hop, AsyncDistinct performs the semi-naive deduplication that makes the fixpoint
// terminate, and Concat seeds the loop. The enclosing frontier machinery still reports
// exact per-epoch completion even though nothing inside the loop coordinates.

#ifndef SRC_ALGO_REACHABILITY_H_
#define SRC_ALGO_REACHABILITY_H_

#include "src/core/loop.h"
#include "src/gen/graphs.h"
#include "src/lib/operators.h"

namespace naiad {

// All reachable (x, z) pairs. kPerEpoch computes the closure of each epoch's edges in
// isolation; kGlobal evaluates incrementally over a monotonically growing edge set
// (paths already derived in earlier epochs are not re-derived).
inline Stream<Edge> TransitiveClosure(const Stream<Edge>& edges,
                                      StateScope scope = StateScope::kPerEpoch) {
  GraphBuilder& b = *edges.builder;
  Partitioner<Edge> by_dst = [](const Edge& e) { return Mix64(e.second); };
  LoopContext loop(b, edges.depth, "tc");
  FeedbackHandle<Edge> fb = loop.NewFeedback<Edge>();
  Stream<Edge> base = loop.Ingress<Edge>(edges, by_dst);

  // paths ⋈ edges on path.dst == edge.src. The edge relation accumulates (it enters at
  // iteration 0 and must stay joinable at every later iteration and epoch).
  Stream<Edge> extended = Join(
      fb.stream(), base, [](const Edge& p) { return p.second; },
      [](const Edge& e) { return e.first; },
      [](const Edge& p, const Edge& e) { return Edge{p.first, e.second}; },
      scope == StateScope::kGlobal ? JoinMode::kAccumulating
                                   : JoinMode::kPerEpochAccumulating);

  Stream<Edge> fresh = AsyncDistinct(Concat<Edge>(base, extended), scope);
  fb.ConnectLoop(fresh, by_dst);
  return loop.Egress<Edge>(fresh);
}

}  // namespace naiad

#endif  // SRC_ALGO_REACHABILITY_H_
