// Strongly connected components (Table 1) via forward/backward trimming in *nested* loops
// — the paper's flagship use of doubly-nested iteration (its SCC is 161 lines).
//
// One outer round applies TrimByLabels twice:
//   1. propagate min labels along edge direction (an inner loop, asynchronous);
//   2. keep only edges whose endpoints agree on the label (they may share an SCC);
//   3. transpose the surviving edges.
// Two trims therefore restore the original orientation while discarding edges that cannot
// lie on any directed cycle. Iterating the outer loop converges to exactly the union of
// SCC edges; a final undirected label propagation names the components.
//
// The outer loop runs a fixed number of rounds (edges would otherwise circulate forever at
// the fixed point); a handful of rounds suffices for random graphs.

#ifndef SRC_ALGO_SCC_H_
#define SRC_ALGO_SCC_H_

#include <tuple>
#include <vector>

#include "src/algo/label_prop.h"
#include "src/algo/wcc.h"
#include "src/lib/operators.h"

namespace naiad {

// Final min label per node at each timestamp (coordinated reduction of the asynchronous
// improvement stream).
inline Stream<NodeLabel> MinLabelPerNode(const Stream<NodeLabel>& improvements) {
  return GroupBy(
      improvements, [](const NodeLabel& nl) { return nl.first; },
      [](const uint64_t& node, std::vector<NodeLabel>& labels) {
        uint64_t best = labels.front().second;
        for (const NodeLabel& nl : labels) {
          best = std::min(best, nl.second);
        }
        return std::vector<NodeLabel>{{node, best}};
      });
}

// Keeps edges whose endpoints share a forward min label, transposed.
inline Stream<Edge> TrimByLabels(const Stream<Edge>& edges) {
  Stream<NodeLabel> labels = MinLabelPerNode(PropagateMinLabels(edges, LabelScope::kPerContext));
  using EdgeLabel = std::pair<Edge, uint64_t>;
  Stream<EdgeLabel> with_src = Join(
      edges, labels, [](const Edge& e) { return e.first; },
      [](const NodeLabel& nl) { return nl.first; },
      [](const Edge& e, const NodeLabel& nl) { return EdgeLabel{e, nl.second}; });
  using EdgeLabel2 = std::tuple<Edge, uint64_t, uint64_t>;
  Stream<EdgeLabel2> with_both = Join(
      with_src, labels, [](const EdgeLabel& el) { return el.first.second; },
      [](const NodeLabel& nl) { return nl.first; },
      [](const EdgeLabel& el, const NodeLabel& nl) {
        return EdgeLabel2{el.first, el.second, nl.second};
      });
  return Select(Where(with_both,
                      [](const EdgeLabel2& e2) { return std::get<1>(e2) == std::get<2>(e2); }),
                [](const EdgeLabel2& e2) {
                  const Edge& e = std::get<0>(e2);
                  return Edge{e.second, e.first};  // transpose
                });
}

// Edges lying within strongly connected components (after `rounds` outer refinements).
// Only the final round's edge set leaves the loop: earlier rounds' supersets are
// intermediate and must not leak to consumers.
inline Stream<Edge> SccEdges(const Stream<Edge>& edges, uint64_t rounds = 4) {
  GraphBuilder& b = *edges.builder;
  Partitioner<Edge> part = [](const Edge& e) { return Mix64(e.first); };
  LoopContext loop(b, edges.depth, "scc");
  FeedbackHandle<Edge> fb = loop.NewFeedback<Edge>(rounds);
  Stream<Edge> merged = Concat<Edge>(loop.Ingress<Edge>(edges, part), fb.stream());
  Stream<Edge> result = TrimByLabels(TrimByLabels(merged));
  fb.ConnectLoop(result, part);
  Stream<Edge> final_round = WhereTime(
      result, [rounds](const Timestamp& t) { return t.coords.back() == rounds - 1; });
  return loop.Egress<Edge>(final_round);
}

// (node, component) labels for every node on a non-trivial SCC.
inline Stream<NodeLabel> StronglyConnectedComponents(const Stream<Edge>& edges,
                                                     uint64_t rounds = 4) {
  return ConnectedComponents(SccEdges(edges, rounds));
}

}  // namespace naiad

#endif  // SRC_ALGO_SCC_H_
