// Approximate all-pairs shortest paths (Table 1): exact hop distances from a small sample
// of source nodes, the standard approximation the paper's ASP workload uses (its
// incremental variant "does less work ... but requires many more iterations").
//
// Multi-source BFS by asynchronous min-distance propagation: state is dist[(node, src)],
// messages are (node, src, dist) proposals; everything is uncoordinated inside the loop.

#ifndef SRC_ALGO_ASP_H_
#define SRC_ALGO_ASP_H_

#include <map>
#include <memory>
#include <tuple>
#include <unordered_map>
#include <vector>

#include "src/core/loop.h"
#include "src/core/stage.h"
#include "src/gen/graphs.h"
#include "src/lib/operators.h"

namespace naiad {

// (node, source index, hop distance)
using AspMsg = std::tuple<uint64_t, uint64_t, uint64_t>;

class AspVertex final : public Binary2Vertex<Edge, AspMsg, AspMsg, AspMsg> {
 public:
  void OnRecv1(const Timestamp& t, std::vector<Edge>& edges) override {
    Ctx& c = ctx_[t.Popped()];
    for (const Edge& e : edges) {
      c.adj[e.first].push_back(e.second);
      // Distances may already have flowed through e.first before this edge arrived
      // (everything here is asynchronous); re-propose them across the new edge.
      auto it = c.dist.find(e.first);
      if (it != c.dist.end()) {
        for (const auto& [src, d] : it->second) {
          output1().Send(t, {e.second, src, d + 1});
        }
      }
    }
  }

  void OnRecv2(const Timestamp& t, std::vector<AspMsg>& proposals) override {
    Ctx& c = ctx_[t.Popped()];
    for (const auto& [node, src, dist] : proposals) {
      // Per-node distance vectors: the source sample is small, so a linear scan wins.
      std::vector<std::pair<uint64_t, uint64_t>>& dv = c.dist[node];
      bool improved = false;
      bool found = false;
      for (auto& [s, d] : dv) {
        if (s == src) {
          found = true;
          if (dist < d) {
            d = dist;
            improved = true;
          }
          break;
        }
      }
      if (!found) {
        dv.emplace_back(src, dist);
        improved = true;
      }
      if (!improved) {
        continue;
      }
      output2().Send(t, {node, src, dist});
      auto adj_it = c.adj.find(node);
      if (adj_it != c.adj.end()) {
        for (uint64_t nbr : adj_it->second) {
          output1().Send(t, {nbr, src, dist + 1});
        }
      }
    }
  }

 private:
  struct Ctx {
    std::unordered_map<uint64_t, std::vector<uint64_t>> adj;
    // node -> [(source, best distance)]
    std::unordered_map<uint64_t, std::vector<std::pair<uint64_t, uint64_t>>> dist;
  };
  std::map<Timestamp, Ctx> ctx_;
};

// Distances (node, src, d) from each source; improvements stream, reduced to the final
// minimum per (node, src) on epoch completeness.
inline Stream<AspMsg> ApproximateShortestPaths(const Stream<Edge>& edges,
                                               const Stream<uint64_t>& sources) {
  GraphBuilder& b = *edges.builder;
  Partitioner<AspMsg> by_node = [](const AspMsg& m) { return Mix64(std::get<0>(m)); };
  LoopContext loop(b, edges.depth, "asp");
  FeedbackHandle<AspMsg> fb = loop.NewFeedback<AspMsg>();
  Stream<Edge> edges_in =
      loop.Ingress<Edge>(edges, [](const Edge& e) { return Mix64(e.first); });
  Stream<AspMsg> seeds = Select(loop.Ingress<uint64_t>(sources),
                                [](const uint64_t& s) { return AspMsg{s, s, 0}; });
  Stream<AspMsg> proposals = Concat<AspMsg>(seeds, fb.stream());

  StageId asp = b.NewStage<AspVertex>(
      StageOptions{.name = "asp", .depth = loop.inner_depth()},
      [](uint32_t) { return std::make_unique<AspVertex>(); });
  b.Connect<AspVertex, Edge>(edges_in, asp, 0);
  b.Connect<AspVertex, AspMsg>(proposals, asp, 1, by_node);
  fb.ConnectLoop(b.OutputOf<AspMsg>(asp, 0), by_node);
  Stream<AspMsg> improvements = loop.Egress<AspMsg>(b.OutputOf<AspMsg>(asp, 1));

  return GroupBy(
      improvements,
      [](const AspMsg& m) { return std::pair<uint64_t, uint64_t>{std::get<0>(m), std::get<1>(m)}; },
      [](const std::pair<uint64_t, uint64_t>& key, std::vector<AspMsg>& ms) {
        uint64_t best = std::get<2>(ms.front());
        for (const AspMsg& m : ms) {
          best = std::min(best, std::get<2>(m));
        }
        return std::vector<AspMsg>{{key.first, key.second, best}};
      });
}

}  // namespace naiad

#endif  // SRC_ALGO_ASP_H_
