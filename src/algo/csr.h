// Columnar CSR graph substrate (ROADMAP item 4; "Essentials of Parallel Graph
// Analytics" kit): flat compressed-sparse-row adjacency + dense per-vertex arrays,
// replacing the unordered_map-of-Node state the Fig. 7 algorithms started from.
//
// Layout per shard (one shard = one physical vertex of a stage, owning the nodes n with
// owner(n) == Mix64(n) % parallelism):
//
//   IdRemap     global u64 node id ↔ dense local u32 id (open-addressed intern table +
//               local→global array). Local ids are assigned in first-seen order while the
//               shard's edges stream in at iteration 0.
//   CsrShard    offsets[n_local+1] + packed neighbor array (global ids), built once from
//               the buffered edge list; the edge buffer is freed by the build.
//   dense state vector<double> ranks / vector<uint64_t> labels indexed by local id —
//               iteration sweeps are sequential array walks, no hashing, no pointers.
//   FrontierBitmap
//               one bit per local node plus a compact changed-list; iterations switch
//               between sparse traversal (walk only the changed list) and a dense
//               sequential scan of the whole CSR once the frontier covers enough of the
//               shard (the shared-nothing analogue of push/pull direction switching —
//               see DESIGN.md "Columnar graph substrate").
//
// Messages between shards travel as ColumnBatch struct-of-arrays records
// (src/ser/columns.h), so the exchange path moves contiguous u64/f64 columns instead of
// per-record pairs.

#ifndef SRC_ALGO_CSR_H_
#define SRC_ALGO_CSR_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "src/base/hash.h"
#include "src/base/logging.h"
#include "src/gen/graphs.h"

namespace naiad {

// Open-addressed global→local intern table (power-of-two capacity, linear probing,
// max ~50% load). ~0ULL is reserved as the empty-slot sentinel; node ids are user data
// but a full-range id never occurs in the generators and is DCHECKed.
class IdRemap {
 public:
  static constexpr uint64_t kEmpty = ~0ULL;
  static constexpr uint32_t kAbsent = ~0u;

  IdRemap() { Rehash(1024); }

  uint32_t size() const { return static_cast<uint32_t>(global_.size()); }
  uint64_t ToGlobal(uint32_t local) const { return global_[local]; }
  const std::vector<uint64_t>& globals() const { return global_; }

  // Insert-or-get: returns the local id for `g`, assigning the next dense id on first
  // sight.
  uint32_t Intern(uint64_t g) {
    NAIAD_DCHECK(g != kEmpty);
    if (global_.size() * 2 >= keys_.size()) {
      Rehash(keys_.size() * 2);
    }
    size_t slot = Mix64(g) & mask_;
    while (keys_[slot] != kEmpty) {
      if (keys_[slot] == g) {
        return locals_[slot];
      }
      slot = (slot + 1) & mask_;
    }
    const uint32_t local = static_cast<uint32_t>(global_.size());
    keys_[slot] = g;
    locals_[slot] = local;
    global_.push_back(g);
    return local;
  }

  // Lookup only: kAbsent when `g` was never interned.
  uint32_t Find(uint64_t g) const {
    size_t slot = Mix64(g) & mask_;
    while (keys_[slot] != kEmpty) {
      if (keys_[slot] == g) {
        return locals_[slot];
      }
      slot = (slot + 1) & mask_;
    }
    return kAbsent;
  }

 private:
  void Rehash(size_t capacity) {
    std::vector<uint64_t> old_keys = std::move(keys_);
    std::vector<uint32_t> old_locals = std::move(locals_);
    keys_.assign(capacity, kEmpty);
    locals_.assign(capacity, 0);
    mask_ = capacity - 1;
    for (size_t i = 0; i < old_keys.size(); ++i) {
      if (old_keys[i] == kEmpty) {
        continue;
      }
      size_t slot = Mix64(old_keys[i]) & mask_;
      while (keys_[slot] != kEmpty) {
        slot = (slot + 1) & mask_;
      }
      keys_[slot] = old_keys[i];
      locals_[slot] = old_locals[i];
    }
  }

  std::vector<uint64_t> keys_;
  std::vector<uint32_t> locals_;
  size_t mask_ = 0;
  std::vector<uint64_t> global_;  // local -> global
};

// CSR adjacency over a shard's local node set. Neighbors keep their *global* ids: they
// are message destinations on other shards, so translating them would be wasted work.
class CsrShard {
 public:
  // Builds from the shard's edge list, interning every endpoint into `remap` (so
  // destination-only nodes get local ids with zero out-degree). Consumes `edges`.
  static CsrShard Build(std::vector<Edge>&& edges, IdRemap& remap) {
    CsrShard csr;
    // Pass 1: intern endpoints and count out-degrees (sources only).
    std::vector<uint32_t> degree;
    auto bump = [&degree](uint32_t local) {
      if (local >= degree.size()) {
        degree.resize(local + 1, 0);
      }
      ++degree[local];
    };
    for (const Edge& e : edges) {
      bump(remap.Intern(e.first));
      remap.Intern(e.second);
    }
    const uint32_t n = remap.size();
    degree.resize(n, 0);
    // Pass 2: prefix-sum offsets, then scatter neighbors.
    csr.offsets_.assign(n + 1, 0);
    for (uint32_t i = 0; i < n; ++i) {
      csr.offsets_[i + 1] = csr.offsets_[i] + degree[i];
    }
    csr.nbrs_.resize(edges.size());
    std::vector<uint64_t> cursor(csr.offsets_.begin(), csr.offsets_.end() - 1);
    for (const Edge& e : edges) {
      const uint32_t src = remap.Find(e.first);
      csr.nbrs_[cursor[src]++] = e.second;
    }
    edges.clear();
    edges.shrink_to_fit();
    return csr;
  }

  uint32_t num_nodes() const { return static_cast<uint32_t>(offsets_.size()) - 1; }
  uint64_t num_edges() const { return nbrs_.size(); }
  bool built() const { return !offsets_.empty(); }

  uint64_t OutDegree(uint32_t local) const {
    return local < num_nodes() ? offsets_[local + 1] - offsets_[local] : 0;
  }

  // Neighbor range of local node `local` (global ids, unless TranslateNeighbors ran).
  const uint64_t* NbrBegin(uint32_t local) const { return nbrs_.data() + offsets_[local]; }
  const uint64_t* NbrEnd(uint32_t local) const { return nbrs_.data() + offsets_[local + 1]; }

  // Rewrites every neighbor id through `dst_remap` (interning on first sight), turning
  // the packed array into *destination-local* ids. Used where the consumer accumulates
  // into a dense per-destination array (e.g. the Morton-block PageRank variant) rather
  // than shipping neighbors to their owner shards.
  void TranslateNeighbors(IdRemap& dst_remap) {
    for (uint64_t& nbr : nbrs_) {
      nbr = dst_remap.Intern(nbr);
    }
  }

 private:
  std::vector<uint64_t> offsets_;  // n_local + 1
  std::vector<uint64_t> nbrs_;     // packed global neighbor ids
};

// One bit per local node plus the compact list of set positions, powering the
// sparse/dense traversal switch: sparse iterations walk `changed()` only; once
// `DensePreferred()` the iteration does one sequential scan of all nodes instead.
class FrontierBitmap {
 public:
  void Resize(uint32_t n) {
    n_ = n;
    words_.assign((n + 63) / 64, 0);
    changed_.clear();
  }

  // Extends capacity without clearing (for nodes interned after the initial build).
  void Grow(uint32_t n) {
    if (n > n_) {
      n_ = n;
      words_.resize((n + 63) / 64, 0);
    }
  }

  uint32_t size() const { return n_; }
  uint32_t count() const { return static_cast<uint32_t>(changed_.size()); }
  bool any() const { return !changed_.empty(); }

  bool Test(uint32_t i) const { return (words_[i >> 6] >> (i & 63)) & 1; }

  // Sets bit i, recording it in the changed-list on the 0→1 transition.
  void Set(uint32_t i) {
    uint64_t& w = words_[i >> 6];
    const uint64_t bit = 1ULL << (i & 63);
    if ((w & bit) == 0) {
      w |= bit;
      changed_.push_back(i);
    }
  }

  void Clear() {
    for (uint32_t i : changed_) {
      words_[i >> 6] &= ~(1ULL << (i & 63));
    }
    changed_.clear();
  }

  const std::vector<uint32_t>& changed() const { return changed_; }

  // Direction switch: a dense sequential scan beats sparse gather once the frontier
  // covers more than 1/kDenseDivisor of the shard (the constant is deliberately coarse —
  // both sides of the switch are exercised by any multi-iteration run).
  static constexpr uint32_t kDenseDivisor = 8;
  bool DensePreferred() const { return count() * kDenseDivisor >= n_ && n_ > 0; }

 private:
  uint32_t n_ = 0;
  std::vector<uint64_t> words_;
  std::vector<uint32_t> changed_;
};

}  // namespace naiad

#endif  // SRC_ALGO_CSR_H_
