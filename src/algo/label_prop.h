// Asynchronous min-label propagation — the building block for (incremental) connected
// components (§6.1, §6.4) and for the forward/backward phases of SCC.
//
// The vertex lives inside a loop context. Edges enter on input 1 at iteration 0 (directed:
// labels flow src → dst; undirected algorithms symmetrize first). Label proposals
// (node, candidate) enter on input 2 from the loop's feedback. Output 1 carries proposals
// to circulate; output 2 carries *accepted* improvements (node, new label) for the egress.
//
// No NotifyAt anywhere: this is the paper's uncoordinated BloomL style (§2.4) — iterations
// proceed asynchronously, the loop quiesces when no improvement circulates, and the
// surrounding frontier machinery still provides exact completion detection per epoch.
//
// State scoping:
//  * kPerContext — one adjacency/label table per enclosing timestamp context (epoch for a
//    singly-nested loop, (epoch, outer-iteration) for SCC's nested loops); reclaimed lazily.
//  * kGlobal — one table shared by all epochs: incremental label propagation over a
//    monotonically growing edge set, the §6.4 configuration (differential-dataflow
//    substitution, DESIGN.md #7).

#ifndef SRC_ALGO_LABEL_PROP_H_
#define SRC_ALGO_LABEL_PROP_H_

#include <map>
#include <memory>
#include <unordered_map>
#include <vector>

#include "src/core/loop.h"
#include "src/core/stage.h"
#include "src/gen/graphs.h"
#include "src/ser/codec.h"

namespace naiad {

enum class LabelScope : uint8_t { kPerContext, kGlobal };

using NodeLabel = std::pair<uint64_t, uint64_t>;

class LabelPropagateVertex final : public Binary2Vertex<Edge, NodeLabel, NodeLabel, NodeLabel> {
 public:
  explicit LabelPropagateVertex(LabelScope scope) : scope_(scope) {}

  void OnRecv1(const Timestamp& t, std::vector<Edge>& edges) override {
    State& st = StateFor(t);
    for (const Edge& e : edges) {
      st.adj[e.first].push_back(e.second);
      const uint64_t lu = LabelOf(st, t, e.first);
      // Propose u's label to v (v may live on another vertex).
      output1().Send(t, {e.second, lu});
    }
  }

  void OnRecv2(const Timestamp& t, std::vector<NodeLabel>& proposals) override {
    State& st = StateFor(t);
    for (const auto& [node, cand] : proposals) {
      auto [it, fresh] = st.labels.try_emplace(node, node);
      if (fresh) {
        output2().Send(t, {node, it->second});
      }
      if (cand < it->second) {
        it->second = cand;
        output2().Send(t, {node, cand});
        auto adj_it = st.adj.find(node);
        if (adj_it != st.adj.end()) {
          for (uint64_t nbr : adj_it->second) {
            output1().Send(t, {nbr, cand});
          }
        }
      }
    }
  }

  void Checkpoint(ByteWriter& w) const override {
    w.WriteU32(static_cast<uint32_t>(contexts_.size()));
    for (const auto& [key, st] : contexts_) {
      key.Encode(w);
      EncodeState(w, st);
    }
    EncodeState(w, global_);
  }
  bool Restore(ByteReader& r) override {
    const uint32_t n = r.ReadU32();
    for (uint32_t i = 0; i < n; ++i) {
      Timestamp key;
      if (!key.Decode(r) || !DecodeState(r, contexts_[key])) {
        return false;
      }
    }
    return DecodeState(r, global_);
  }

 private:
  struct State {
    std::unordered_map<uint64_t, std::vector<uint64_t>> adj;
    std::unordered_map<uint64_t, uint64_t> labels;
  };

  static void EncodeState(ByteWriter& w, const State& st) {
    std::map<uint64_t, std::vector<uint64_t>> adj(st.adj.begin(), st.adj.end());
    std::map<uint64_t, uint64_t> labels(st.labels.begin(), st.labels.end());
    Codec<decltype(adj)>::Encode(w, adj);
    Codec<decltype(labels)>::Encode(w, labels);
  }
  static bool DecodeState(ByteReader& r, State& st) {
    std::map<uint64_t, std::vector<uint64_t>> adj;
    std::map<uint64_t, uint64_t> labels;
    if (!Codec<decltype(adj)>::Decode(r, adj) || !Codec<decltype(labels)>::Decode(r, labels)) {
      return false;
    }
    st.adj.insert(adj.begin(), adj.end());
    st.labels.insert(labels.begin(), labels.end());
    return true;
  }

  State& StateFor(const Timestamp& t) {
    if (scope_ == LabelScope::kGlobal) {
      return global_;
    }
    return contexts_[t.Popped()];  // keyed by the enclosing context's timestamp
  }

  uint64_t LabelOf(State& st, const Timestamp& t, uint64_t node) {
    auto [it, fresh] = st.labels.try_emplace(node, node);
    if (fresh) {
      output2().Send(t, {node, node});
    }
    return it->second;
  }

  LabelScope scope_;
  std::map<Timestamp, State> contexts_;
  State global_;
};

// Wires a label-propagation loop around `edges` (at any depth): returns the stream of
// accepted improvements (node, label), egressed to the edges' depth. Consumers reduce to
// the final min per node (e.g. with GroupBy or MonotonicAggregate); the last improvement
// per node per epoch is its component label.
inline Stream<NodeLabel> PropagateMinLabels(const Stream<Edge>& edges, LabelScope scope) {
  GraphBuilder& b = *edges.builder;
  LoopContext loop(b, edges.depth, "labelprop");
  FeedbackHandle<NodeLabel> fb = loop.NewFeedback<NodeLabel>();
  Stream<Edge> in_loop =
      loop.Ingress<Edge>(edges, [](const Edge& e) { return Mix64(e.first); });
  StageId prop = b.NewStage<LabelPropagateVertex>(
      StageOptions{.name = "labelprop", .depth = loop.inner_depth()},
      [scope](uint32_t) { return std::make_unique<LabelPropagateVertex>(scope); });
  b.Connect<LabelPropagateVertex, Edge>(in_loop, prop, 0);
  b.Connect<LabelPropagateVertex, NodeLabel>(
      fb.stream(), prop, 1, [](const NodeLabel& nl) { return Mix64(nl.first); });
  fb.ConnectLoop(b.OutputOf<NodeLabel>(prop, 0),
                 [](const NodeLabel& nl) { return Mix64(nl.first); });
  return loop.Egress<NodeLabel>(b.OutputOf<NodeLabel>(prop, 1));
}

}  // namespace naiad

#endif  // SRC_ALGO_LABEL_PROP_H_
