// Weakly connected components (§5.3, §5.4, Table 1, §6.4).
//
// Undirected min-label propagation: symmetrize the edges, run the asynchronous label-prop
// loop, and reduce the improvement stream to the final minimum label per node.
//
// The paper's WCC implementation is 49 lines of non-library code; this one is of the same
// order because everything heavy lives in the library (label_prop.h, keyed_ops.h).

#ifndef SRC_ALGO_WCC_H_
#define SRC_ALGO_WCC_H_

#include <map>
#include <memory>
#include <set>
#include <vector>

#include "src/algo/csr.h"
#include "src/algo/label_prop.h"
#include "src/lib/operators.h"
#include "src/ser/columns.h"

namespace naiad {

// Batch WCC: per-epoch components of the edges supplied in that epoch. Emits the final
// (node, component) pairs once per epoch on completeness.
inline Stream<NodeLabel> ConnectedComponents(const Stream<Edge>& edges) {
  Stream<Edge> sym = SelectMany(edges, [](const Edge& e) {
    return std::vector<Edge>{e, {e.second, e.first}};
  });
  Stream<NodeLabel> improvements = PropagateMinLabels(sym, LabelScope::kPerContext);
  return GroupBy(
      improvements, [](const NodeLabel& nl) { return nl.first; },
      [](const uint64_t& node, std::vector<NodeLabel>& labels) {
        uint64_t best = labels.front().second;
        for (const NodeLabel& nl : labels) {
          best = std::min(best, nl.second);
        }
        return std::vector<NodeLabel>{{node, best}};
      });
}

// ---------------------------------------------------------------------------------------
// CSR variant: synchronous min-label propagation on the columnar substrate.
//
// Where LabelPropagateVertex is fully asynchronous (proposals fan out the moment they are
// accepted, per-proposal), this vertex runs frontier-synchronous rounds: the CSR is built
// from the symmetrized edges at the iteration-0 notification, label proposals travel as
// LabelColumns batches, and each round drains the iteration's batches into a dense label
// array, then re-proposes only from the frontier of nodes whose label improved. Rounds
// switch between a sparse pass (walk the changed-list — random access into the CSR) and a
// dense pass (sequential scan of all nodes testing the bitmap) once the frontier covers
// enough of the shard; this is the shared-nothing analogue of push/pull direction
// switching. The loop quiesces when a round improves nothing: no proposals are sent, so
// no downstream vertex is notified, and the epoch's frontier drains.
//
// Output 2 carries (node, label) improvements exactly like the legacy vertex (initial
// self-labels at round 0, then one improvement per node per round), so the same GroupBy
// min-reduction produces identical final components.
// ---------------------------------------------------------------------------------------

class WccCsrVertex final : public Binary2Vertex<Edge, LabelColumns, LabelColumns, NodeLabel> {
 public:
  void OnRecv1(const Timestamp& t, std::vector<Edge>& edges) override {
    Ctx& c = ctx_[t.Popped()];
    c.edges.insert(c.edges.end(), edges.begin(), edges.end());
    MaybeNotify(c, t);
  }

  void OnRecv2(const Timestamp& t, std::vector<LabelColumns>& batches) override {
    // Stash whole batches until the round's notification (arrivals are asynchronous
    // across iterations, and the CSR may not exist yet).
    Ctx& c = ctx_[t.Popped()];
    auto& inbox = c.inbox[t];
    for (LabelColumns& b : batches) {
      inbox.push_back(std::move(b));
    }
    MaybeNotify(c, t);
  }

  void OnNotify(const Timestamp& t) override {
    Ctx& c = ctx_[t.Popped()];
    c.notified.erase(t);
    const bool first_round = !c.csr.built();
    if (first_round) {
      // Round 0: build the CSR, self-label every local node, announce the initial labels
      // (the legacy vertex emits (node, node) on first touch), and propose to everyone.
      c.csr = CsrShard::Build(std::move(c.edges), c.remap);
      const uint32_t n = c.remap.size();
      c.labels.resize(n);
      c.frontier.Resize(n);
      for (uint32_t local = 0; local < n; ++local) {
        c.labels[local] = c.remap.ToGlobal(local);
        output2().Send(t, {c.labels[local], c.labels[local]});
      }
    }
    // Drain this round's proposals. Every endpoint of a symmetrized edge appears as a
    // source on its owner shard, so proposals normally name known nodes; intern
    // defensively anyway (mirrors the legacy try_emplace).
    if (auto it = c.inbox.find(t); it != c.inbox.end()) {
      for (const LabelColumns& b : it->second) {
        for (size_t i = 0; i < b.size(); ++i) {
          uint32_t local = c.remap.Find(b.keys[i]);
          if (local == IdRemap::kAbsent) {
            local = c.remap.Intern(b.keys[i]);
            c.labels.push_back(b.keys[i]);
            c.frontier.Grow(c.remap.size());
            output2().Send(t, {b.keys[i], b.keys[i]});
          }
          if (b.vals[i] < c.labels[local]) {
            c.labels[local] = b.vals[i];
            c.frontier.Set(local);
          }
        }
      }
      c.inbox.erase(it);
    }
    if (!first_round) {
      // One improvement per changed node per round; GroupBy keeps the min.
      for (uint32_t local : c.frontier.changed()) {
        output2().Send(t, {c.remap.ToGlobal(local), c.labels[local]});
      }
    }
    if (first_round || c.frontier.any()) {
      SendProposals(t, c, /*all=*/first_round);
    }
    c.frontier.Clear();
  }

 private:
  struct Ctx {
    std::vector<Edge> edges;
    IdRemap remap;
    CsrShard csr;
    std::vector<uint64_t> labels;  // dense, indexed by local id
    FrontierBitmap frontier;
    std::map<Timestamp, std::vector<LabelColumns>> inbox;
    std::set<Timestamp> notified;
  };

  void MaybeNotify(Ctx& c, const Timestamp& t) {
    if (!c.notified.contains(t)) {
      c.notified.insert(t);
      NotifyAt(t);
    }
  }

  void SendProposals(const Timestamp& t, Ctx& c, bool all) {
    const uint32_t shards = controller().graph().stage(address().stage).parallelism;
    const size_t flush_at = controller().config().batch_size;
    auto sink = [&](LabelColumns&& b) { output1().Send(t, std::move(b)); };
    ColumnWriter<uint64_t, uint64_t, decltype(sink)> cw(shards, flush_at, sink);
    auto propose = [&](uint32_t local) {
      const uint64_t label = c.labels[local];
      const uint64_t* end = c.csr.NbrEnd(local);
      for (const uint64_t* p = c.csr.NbrBegin(local); p != end; ++p) {
        cw.Push(static_cast<uint32_t>(Mix64(*p) % shards), *p, label);
      }
    };
    if (all || c.frontier.DensePreferred()) {
      // Dense pass: sequential sweep of the whole CSR (pull-style locality).
      const uint32_t n = c.csr.num_nodes();
      for (uint32_t local = 0; local < n; ++local) {
        if (all || c.frontier.Test(local)) {
          propose(local);
        }
      }
    } else {
      // Sparse pass: only the changed nodes, in discovery order.
      for (uint32_t local : c.frontier.changed()) {
        if (local < c.csr.num_nodes()) {
          propose(local);
        }
      }
    }
    cw.Drain();
  }

  std::map<Timestamp, Ctx> ctx_;
};

// Batch WCC on the columnar substrate: same symmetrize → propagate → min-reduce shape as
// ConnectedComponents, with the propagation loop running WccCsrVertex over LabelColumns.
inline Stream<NodeLabel> ConnectedComponentsCsr(const Stream<Edge>& edges) {
  GraphBuilder& b = *edges.builder;
  Stream<Edge> sym = SelectMany(edges, [](const Edge& e) {
    return std::vector<Edge>{e, {e.second, e.first}};
  });
  LoopContext loop(b, sym.depth, "wcc-csr");
  FeedbackHandle<LabelColumns> fb = loop.NewFeedback<LabelColumns>();
  Stream<Edge> in_loop =
      loop.Ingress<Edge>(sym, [](const Edge& e) { return Mix64(e.first); });
  StageId wcc = b.NewStage<WccCsrVertex>(
      StageOptions{.name = "wcc-csr", .depth = loop.inner_depth()},
      [](uint32_t) { return std::make_unique<WccCsrVertex>(); });
  b.Connect<WccCsrVertex, Edge>(in_loop, wcc, 0);
  b.Connect<WccCsrVertex, LabelColumns>(
      fb.stream(), wcc, 1, [](const LabelColumns& lc) { return lc.part; });
  fb.ConnectLoop(b.OutputOf<LabelColumns>(wcc, 0),
                 [](const LabelColumns& lc) { return lc.part; });
  Stream<NodeLabel> improvements = loop.Egress<NodeLabel>(b.OutputOf<NodeLabel>(wcc, 1));
  return GroupBy(
      improvements, [](const NodeLabel& nl) { return nl.first; },
      [](const uint64_t& node, std::vector<NodeLabel>& labels) {
        uint64_t best = labels.front().second;
        for (const NodeLabel& nl : labels) {
          best = std::min(best, nl.second);
        }
        return std::vector<NodeLabel>{{node, best}};
      });
}

// Incremental WCC over a monotonically growing edge set (§6.4): labels persist across
// epochs and only improvements circulate when new edges arrive. The output stream carries
// label *improvements*; consumers keep the latest value per node (monotone decreasing).
inline Stream<NodeLabel> IncrementalConnectedComponents(const Stream<Edge>& edges) {
  Stream<Edge> sym = SelectMany(edges, [](const Edge& e) {
    return std::vector<Edge>{e, {e.second, e.first}};
  });
  return PropagateMinLabels(sym, LabelScope::kGlobal);
}

}  // namespace naiad

#endif  // SRC_ALGO_WCC_H_
