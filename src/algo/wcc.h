// Weakly connected components (§5.3, §5.4, Table 1, §6.4).
//
// Undirected min-label propagation: symmetrize the edges, run the asynchronous label-prop
// loop, and reduce the improvement stream to the final minimum label per node.
//
// The paper's WCC implementation is 49 lines of non-library code; this one is of the same
// order because everything heavy lives in the library (label_prop.h, keyed_ops.h).

#ifndef SRC_ALGO_WCC_H_
#define SRC_ALGO_WCC_H_

#include <vector>

#include "src/algo/label_prop.h"
#include "src/lib/operators.h"

namespace naiad {

// Batch WCC: per-epoch components of the edges supplied in that epoch. Emits the final
// (node, component) pairs once per epoch on completeness.
inline Stream<NodeLabel> ConnectedComponents(const Stream<Edge>& edges) {
  Stream<Edge> sym = SelectMany(edges, [](const Edge& e) {
    return std::vector<Edge>{e, {e.second, e.first}};
  });
  Stream<NodeLabel> improvements = PropagateMinLabels(sym, LabelScope::kPerContext);
  return GroupBy(
      improvements, [](const NodeLabel& nl) { return nl.first; },
      [](const uint64_t& node, std::vector<NodeLabel>& labels) {
        uint64_t best = labels.front().second;
        for (const NodeLabel& nl : labels) {
          best = std::min(best, nl.second);
        }
        return std::vector<NodeLabel>{{node, best}};
      });
}

// Incremental WCC over a monotonically growing edge set (§6.4): labels persist across
// epochs and only improvements circulate when new edges arrive. The output stream carries
// label *improvements*; consumers keep the latest value per node (monotone decreasing).
inline Stream<NodeLabel> IncrementalConnectedComponents(const Stream<Edge>& edges) {
  Stream<Edge> sym = SelectMany(edges, [](const Edge& e) {
    return std::vector<Edge>{e, {e.second, e.first}};
  });
  return PropagateMinLabels(sym, LabelScope::kGlobal);
}

}  // namespace naiad

#endif  // SRC_ALGO_WCC_H_
