// k-exposure (§6.3): the Kineograph topic-controversy metric, expressed — as the paper
// notes — in a few lines of Distinct / Join / Count over the tweet stream.
//
// Each epoch of tweets yields (user, hashtag) pairs; Distinct dedupes a user's repeated
// tags within the epoch; an accumulating Join against the follower graph (followers of
// the posting user were *exposed* to the tag) produces exposure events; Count reports how
// many exposures each hashtag gained this epoch. Consumers accumulate the histogram.

#ifndef SRC_ALGO_KEXPOSURE_H_
#define SRC_ALGO_KEXPOSURE_H_

#include <utility>
#include <vector>

#include "src/gen/graphs.h"
#include "src/gen/tweets.h"
#include "src/lib/operators.h"

namespace naiad {

// (user, hashtag)
using UserTag = std::pair<uint64_t, uint64_t>;
// (hashtag, new exposures this epoch)
using TagExposure = std::pair<uint64_t, uint64_t>;

inline Stream<TagExposure> KExposure(const Stream<Tweet>& tweets,
                                     const Stream<Edge>& followers) {
  Stream<UserTag> tags = SelectMany(tweets, [](const Tweet& t) {
    std::vector<UserTag> out;
    out.reserve(t.hashtags.size());
    for (uint64_t h : t.hashtags) {
      out.emplace_back(t.user, h);
    }
    return out;
  });
  Stream<UserTag> fresh = Distinct(tags);
  // followers: (follower, followee); a tweet by `followee` exposes `follower`.
  Stream<UserTag> exposures = Join(
      fresh, followers, [](const UserTag& ut) { return ut.first; },
      [](const Edge& e) { return e.second; },
      [](const UserTag& ut, const Edge& e) { return UserTag{e.first, ut.second}; },
      JoinMode::kAccumulating);
  return Count(exposures, [](const UserTag& exp) { return exp.second; });
}

}  // namespace naiad

#endif  // SRC_ALGO_KEXPOSURE_H_
