// WordCount (§5.4): the embarrassingly-parallel MapReduce benchmark.
//
// Split lines into words, pre-aggregate locally (the "combiner" §5.4 credits for
// WordCount's good weak scaling — it shrinks the exchange), then sum partial counts after
// a hash exchange on the word.

#ifndef SRC_ALGO_WORDCOUNT_H_
#define SRC_ALGO_WORDCOUNT_H_

#include <string>
#include <vector>

#include "src/gen/text.h"
#include "src/lib/operators.h"

namespace naiad {

using WordCountRecord = std::pair<std::string, uint64_t>;

inline Stream<WordCountRecord> WordCount(const Stream<std::string>& lines) {
  Stream<std::string> words = SelectMany(lines, SplitWords);
  // Local combiner: Count without a partitioner leaves records on the sending worker.
  GraphBuilder& b = *lines.builder;
  using Combiner = CountByVertex<std::string, std::string>;
  StageId local = b.NewStage<Combiner>(
      StageOptions{.name = "combine", .depth = lines.depth}, [](uint32_t) {
        return std::make_unique<Combiner>([](const std::string& w) { return w; });
      });
  b.Connect<Combiner, std::string>(words, local);  // no exchange
  Stream<WordCountRecord> partial = b.OutputOf<WordCountRecord>(local);
  // Global sum after the exchange.
  return GroupBy(
      partial, [](const WordCountRecord& wc) { return wc.first; },
      [](const std::string& w, std::vector<WordCountRecord>& parts) {
        uint64_t total = 0;
        for (const WordCountRecord& p : parts) {
          total += p.second;
        }
        return std::vector<WordCountRecord>{{w, total}};
      });
}

}  // namespace naiad

#endif  // SRC_ALGO_WORDCOUNT_H_
