// Fault-injection hook interfaces for the distributed runtime.
//
// The networking and progress layers accept these (optional, default-off) hooks so a test
// harness can impose adversarial schedules — partial writes, send stalls, connection resets
// at chosen frame indices, deferred/reordered accumulator flushes — without changing any
// protocol contract: every injected fault is FIFO- and content-preserving, and flush
// perturbations stay within the §3.3 safety rule. Implementations live in
// src/testing/fault.h; production code only ever sees null pointers.

#ifndef SRC_NET_FAULT_HOOKS_H_
#define SRC_NET_FAULT_HOOKS_H_

#include <cstdint>
#include <vector>

#include "src/core/progress.h"
#include "src/net/socket.h"

namespace naiad {

// Per simplex connection (one (src, dst) process pair direction). Consumed only by that
// connection's sender thread, so implementations need no internal locking for these calls.
class LinkFaultHook : public WriteFaultHook {
 public:
  // Consulted before frame `frame_index` (0-based count of frames written on this link) is
  // handed to the socket. Returning true makes the transport close the connection and
  // transparently re-dial before sending the frame — a reset that lands exactly on a frame
  // boundary, so the receiver sees EOF between frames and no frame is torn or reordered.
  virtual bool ShouldResetBefore(uint64_t frame_index) = 0;
  // Consulted after frame `frame_index` is staged for the socket. Returning true makes
  // the transport write the frame a second time, adjacently and with the same sequence
  // number — a duplicate delivery the receiver must detect and drop. Defaults to off so
  // hooks written before duplication faults existed stay valid.
  virtual bool ShouldDuplicateFrame(uint64_t /*frame_index*/) { return false; }
};

// Receive half of a simplex connection: consumed only by the destination process's
// receiver thread for that link, so implementations need no internal locking. The legal
// schedules are strictly perturbations of *when* the receiver observes bytes and hands
// frames onward, never of what arrives or in what order:
//   - ReadStep faults (torn reads, modeled EINTR storms, bounded stalls) reshape the
//     recv() syscall schedule inside Socket::ReadExact.
//   - DispatchDelayUs holds a fully decoded frame for a bounded time between decode and
//     worker-queue enqueue. The single receiver thread itself sleeps, so no later frame
//     on the link can overtake — per-link FIFO is preserved by construction.
//   - AdoptionDelayUs stalls adoption of a replacement connection after the previous one
//     drained to EOF, so a sender-side reset is observed to land (and linger) on a frame
//     boundary before delivery resumes.
// Unilateral receiver-side connection *closes* are deliberately not injectable: without
// sender retransmission they would discard in-flight bytes, violating the
// content-preservation contract (see DESIGN.md "Fault injection").
class RecvLinkFaultHook : public ReadFaultHook {
 public:
  // Bounded delay in microseconds (0 = none) between decoding frame `frame_index`
  // (0-based count of frames dispatched on this link, across connections) and
  // dispatching it.
  virtual uint32_t DispatchDelayUs(uint64_t frame_index) = 0;
  // Bounded delay in microseconds (0 = none) before adopting replacement connection
  // `replacement_index` (0-based count of adopted replacements, i.e. excluding the
  // link's first connection).
  virtual uint32_t AdoptionDelayUs(uint64_t replacement_index) = 0;
};

// Per-process perturbation of the progress accumulators (§3.3). All three calls must keep
// the protocol's invariants: flushes may be delayed only boundedly (workers re-poll idle
// accumulators, so a deferred flush is retried), forced flushes are always safe, and
// reordering must keep every positive delta ahead of every negative one.
class ProgressFaultHook {
 public:
  virtual ~ProgressFaultHook() = default;
  // Called when a worker going idle would flush the accumulators. Return false to defer
  // the flush to a later idle poll; implementations must return true after a bounded
  // number of consecutive deferrals or the computation cannot terminate.
  virtual bool BeforeIdleFlush() = 0;
  // Consulted per accumulated batch; returning true flushes even though holding is safe.
  virtual bool ForceEarlyFlush() = 0;
  // May reorder `batch` within maximal same-sign runs (positives stay before negatives).
  virtual void PerturbFlushBatch(std::vector<ProgressUpdate>& batch) = 0;
};

// The per-cluster plan: hands out hooks for each link and process. Link() is called from
// every process's transport during Start() and may be called concurrently; the returned
// hooks must outlive the cluster run. Either accessor may return nullptr (no faults).
class ClusterFaultPlan {
 public:
  virtual ~ClusterFaultPlan() = default;
  virtual LinkFaultHook* Link(uint32_t src_process, uint32_t dst_process) = 0;
  virtual ProgressFaultHook* Progress(uint32_t process) = 0;
  // Receive-side hook for the simplex link src -> dst, consulted by dst's receiver
  // thread. Defaults to nullptr so plans written before receive-path injection existed
  // stay valid.
  virtual RecvLinkFaultHook* RecvLink(uint32_t /*src_process*/, uint32_t /*dst_process*/) {
    return nullptr;
  }
};

}  // namespace naiad

#endif  // SRC_NET_FAULT_HOOKS_H_
