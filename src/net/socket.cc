#include "src/net/socket.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <thread>

#include "src/base/logging.h"

namespace naiad {

Socket& Socket::operator=(Socket&& other) noexcept {
  if (this != &other) {
    Close();
    fd_ = other.fd_;
    write_faults_ = other.write_faults_;
    read_faults_ = other.read_faults_;
    other.fd_ = -1;
    other.write_faults_ = nullptr;
    other.read_faults_ = nullptr;
  }
  return *this;
}

bool Socket::WriteAll(std::span<const uint8_t> data) {
  size_t off = 0;
  while (off < data.size()) {
    size_t want = data.size() - off;
    if (write_faults_ != nullptr) {
      WriteStep step = write_faults_->Next(want);
      for (uint32_t z = 0; z < step.zero_writes; ++z) {
        // A zero-byte send() is a real syscall that transfers nothing — the shape of an
        // interrupted write — and re-enters this retry loop with `off` unchanged.
        ssize_t n = ::send(fd_, data.data() + off, 0, MSG_NOSIGNAL);
        if (n < 0 && errno != EINTR) {
          return false;
        }
      }
      if (step.delay_us > 0) {
        std::this_thread::sleep_for(std::chrono::microseconds(step.delay_us));
      }
      want = std::min(want, std::max<size_t>(1, step.max_len));
    }
    ssize_t n = ::send(fd_, data.data() + off, want, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) {
        continue;
      }
      return false;
    }
    off += static_cast<size_t>(n);
  }
  return true;
}

bool Socket::WritevAll(std::span<const iovec> iov) {
  // Working copy advanced in place as bytes drain; `idx` is the first unfinished entry.
  std::vector<iovec> rest(iov.begin(), iov.end());
  size_t idx = 0;
  size_t remaining = 0;
  for (const iovec& v : iov) {
    remaining += v.iov_len;
  }
  while (remaining > 0) {
    while (idx < rest.size() && rest[idx].iov_len == 0) {
      ++idx;
    }
    size_t want = remaining;
    if (write_faults_ != nullptr) {
      WriteStep step = write_faults_->Next(remaining);
      for (uint32_t z = 0; z < step.zero_writes; ++z) {
        ssize_t n = ::send(fd_, rest[idx].iov_base, 0, MSG_NOSIGNAL);
        if (n < 0 && errno != EINTR) {
          return false;
        }
      }
      if (step.delay_us > 0) {
        std::this_thread::sleep_for(std::chrono::microseconds(step.delay_us));
      }
      want = std::min(want, std::max<size_t>(1, step.max_len));
    }
    // Gather up to `want` bytes starting at `idx`, trimming the final entry — an injected
    // partial write may stop inside any frame of the batch.
    iovec chunk[64];
    size_t cnt = 0;
    size_t left = want;
    for (size_t i = idx; i < rest.size() && cnt < 64 && left > 0; ++i) {
      chunk[cnt] = rest[i];
      if (chunk[cnt].iov_len > left) {
        chunk[cnt].iov_len = left;
      }
      left -= chunk[cnt].iov_len;
      ++cnt;
    }
    msghdr msg{};
    msg.msg_iov = chunk;
    msg.msg_iovlen = cnt;
    ssize_t n = ::sendmsg(fd_, &msg, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) {
        continue;
      }
      return false;
    }
    remaining -= static_cast<size_t>(n);
    size_t adv = static_cast<size_t>(n);
    while (adv > 0) {
      if (rest[idx].iov_len <= adv) {
        adv -= rest[idx].iov_len;
        rest[idx].iov_len = 0;
        ++idx;
      } else {
        rest[idx].iov_base = static_cast<uint8_t*>(rest[idx].iov_base) + adv;
        rest[idx].iov_len -= adv;
        adv = 0;
      }
    }
  }
  return true;
}

ReadResult Socket::ReadExact(std::span<uint8_t> data) {
  ReadResult res;
  size_t off = 0;
  while (off < data.size()) {
    size_t want = data.size() - off;
    if (read_faults_ != nullptr) {
      ReadStep step = read_faults_->Next(want);
      for (uint32_t i = 0; i < step.eintr_spins; ++i) {
        // Modeled interrupted recv(): yield and re-enter the retry loop with `off`
        // unchanged. No syscall — recv(fd, buf, 0) may return 0, which is ambiguous
        // with EOF, so the read side models the interruption in-process.
        std::this_thread::yield();
      }
      if (step.delay_us > 0) {
        std::this_thread::sleep_for(std::chrono::microseconds(step.delay_us));
      }
      want = std::min(want, std::max<size_t>(1, step.max_len));
    }
    ssize_t n = ::recv(fd_, data.data() + off, want, 0);
    if (n == 0) {
      // Peer closed. Only a close before the first byte of this span is a clean
      // boundary; a close after partial progress is a torn read.
      res.status = off == 0 ? ReadResult::Status::kEof : ReadResult::Status::kError;
      res.bytes_read = off;
      return res;
    }
    if (n < 0) {
      if (errno == EINTR) {
        continue;
      }
      res.status = ReadResult::Status::kError;
      res.bytes_read = off;
      res.err = errno;
      return res;
    }
    off += static_cast<size_t>(n);
  }
  res.bytes_read = off;
  return res;
}

void Socket::SetNoDelay() {
  int one = 1;
  ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

void Socket::ShutdownBoth() {
  if (fd_ >= 0) {
    ::shutdown(fd_, SHUT_RDWR);
  }
}

void Socket::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Socket Socket::ConnectLocal(uint16_t port) {
  for (int attempt = 0; attempt < 200; ++attempt) {
    int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    NAIAD_CHECK(fd >= 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) == 0) {
      Socket s(fd);
      s.SetNoDelay();
      return s;
    }
    ::close(fd);
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  return Socket();
}

Listener::Listener(Listener&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }

Listener& Listener::operator=(Listener&& other) noexcept {
  if (this != &other) {
    Close();
    fd_ = other.fd_;
    other.fd_ = -1;
  }
  return *this;
}

uint16_t Listener::Open(uint16_t port) {
  fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  NAIAD_CHECK(fd_ >= 0);
  int one = 1;
  ::setsockopt(fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);  // 0 = ephemeral
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::bind(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0 ||
      ::listen(fd_, 64) != 0) {
    Close();
    return 0;
  }
  socklen_t len = sizeof(addr);
  NAIAD_CHECK(::getsockname(fd_, reinterpret_cast<sockaddr*>(&addr), &len) == 0);
  return ntohs(addr.sin_port);
}

Socket Listener::Accept() {
  int fd = ::accept(fd_, nullptr, nullptr);
  if (fd < 0) {
    return Socket();
  }
  Socket s(fd);
  s.SetNoDelay();
  return s;
}

void Listener::Shutdown() {
  if (fd_ >= 0) {
    ::shutdown(fd_, SHUT_RDWR);
  }
}

void Listener::Close() {
  if (fd_ >= 0) {
    ::shutdown(fd_, SHUT_RDWR);
    ::close(fd_);
    fd_ = -1;
  }
}

}  // namespace naiad
