#include "src/net/transport.h"

#include <cstring>

#include "src/base/logging.h"
#include "src/ser/bytes.h"

namespace naiad {

TcpTransport::TcpTransport(uint32_t process_id, uint32_t processes)
    : pid_(process_id), nprocs_(processes) {
  peers_.resize(nprocs_);
  for (uint32_t p = 0; p < nprocs_; ++p) {
    if (p != pid_) {
      peers_[p] = std::make_unique<Peer>();
    }
  }
}

TcpTransport::~TcpTransport() { Shutdown(); }

uint16_t TcpTransport::Listen() {
  uint16_t port = listener_.Open();
  NAIAD_CHECK(port != 0);
  return port;
}

void TcpTransport::Start(const std::vector<uint16_t>& ports, Callbacks cb) {
  cb_ = std::move(cb);
  NAIAD_CHECK(ports.size() == nprocs_);
  // Deterministic mesh bring-up: process j dials every i < j; process i accepts from every
  // j > i. The dialer announces its id in a one-byte-wide handshake.
  for (uint32_t i = 0; i < pid_; ++i) {
    Socket s = Socket::ConnectLocal(ports[i]);
    NAIAD_CHECK(s.valid()) << "connect to process " << i << " failed";
    uint32_t me = pid_;
    NAIAD_CHECK(s.WriteAll(std::span<const uint8_t>(
        reinterpret_cast<const uint8_t*>(&me), sizeof(me))));
    peers_[i]->socket = std::move(s);
  }
  for (uint32_t j = pid_ + 1; j < nprocs_; ++j) {
    Socket s = listener_.Accept();
    NAIAD_CHECK(s.valid());
    uint32_t who = 0;
    NAIAD_CHECK(
        s.ReadAll(std::span<uint8_t>(reinterpret_cast<uint8_t*>(&who), sizeof(who))));
    NAIAD_CHECK(who > pid_ && who < nprocs_);
    NAIAD_CHECK(!peers_[who]->socket.valid());
    peers_[who]->socket = std::move(s);
  }
  for (uint32_t p = 0; p < nprocs_; ++p) {
    if (p == pid_) {
      continue;
    }
    Peer* peer = peers_[p].get();
    peer->sender = std::thread([this, peer] { SenderMain(*peer); });
    peer->receiver = std::thread([this, peer] { ReceiverMain(*peer); });
  }
}

std::vector<uint8_t> TcpTransport::MakeFrame(FrameType type,
                                             std::span<const uint8_t> payload) const {
  std::vector<uint8_t> frame;
  frame.reserve(payload.size() + 9);
  ByteWriter w(&frame);
  w.WriteU32(static_cast<uint32_t>(payload.size()));
  w.WriteU8(static_cast<uint8_t>(type));
  w.WriteU32(pid_);
  w.WriteBytes(payload.data(), payload.size());
  return frame;
}

void TcpTransport::Send(uint32_t dst, FrameType type, std::vector<uint8_t> payload) {
  if (dst == pid_) {
    // Self-sends dispatch inline and are not network traffic; byte counters track only
    // what would cross the wire (the quantity Fig. 6c reports).
    Dispatch(type, pid_, payload);
    return;
  }
  std::vector<uint8_t> frame = MakeFrame(type, payload);
  frames_sent_[static_cast<size_t>(type)].fetch_add(1, std::memory_order_relaxed);
  bytes_sent_[static_cast<size_t>(type)].fetch_add(frame.size(), std::memory_order_relaxed);
  Peer& peer = *peers_[dst];
  {
    std::lock_guard<std::mutex> lock(peer.mu);
    if (peer.closed) {
      return;
    }
    peer.queue.push_back(std::move(frame));
  }
  peer.cv.notify_one();
}

void TcpTransport::BroadcastFrame(FrameType type, const std::vector<uint8_t>& payload,
                                  bool include_self) {
  for (uint32_t p = 0; p < nprocs_; ++p) {
    if (p == pid_ && !include_self) {
      continue;
    }
    Send(p, type, payload);
  }
}

void TcpTransport::Dispatch(FrameType type, uint32_t src, std::span<const uint8_t> payload) {
  frames_received_[static_cast<size_t>(type)].fetch_add(1, std::memory_order_relaxed);
  switch (type) {
    case FrameType::kData:
      cb_.on_data(src, payload);
      return;
    case FrameType::kProgress:
      cb_.on_progress(src, payload);
      return;
    case FrameType::kProgressAcc:
      cb_.on_progress_acc(src, payload);
      return;
    case FrameType::kControl:
      cb_.on_control(src, payload);
      return;
  }
  NAIAD_CHECK(false);
}

void TcpTransport::SenderMain(Peer& peer) {
  for (;;) {
    std::vector<uint8_t> frame;
    {
      std::unique_lock<std::mutex> lock(peer.mu);
      peer.cv.wait(lock, [&] { return peer.closed || !peer.queue.empty(); });
      if (peer.queue.empty()) {
        return;  // closed and drained
      }
      frame = std::move(peer.queue.front());
      peer.queue.pop_front();
    }
    if (!peer.socket.WriteAll(frame)) {
      return;  // peer went away during shutdown
    }
  }
}

void TcpTransport::ReceiverMain(Peer& peer) {
  for (;;) {
    uint8_t header[9];
    if (!peer.socket.ReadAll(header)) {
      return;
    }
    ByteReader hr(header);
    const uint32_t len = hr.ReadU32();
    const auto type = static_cast<FrameType>(hr.ReadU8());
    const uint32_t src = hr.ReadU32();
    NAIAD_CHECK(static_cast<uint8_t>(type) < kNumFrameTypes);
    NAIAD_CHECK(src < nprocs_);
    std::vector<uint8_t> payload(len);
    if (len > 0 && !peer.socket.ReadAll(payload)) {
      return;
    }
    if (shutdown_.load(std::memory_order_acquire)) {
      return;
    }
    Dispatch(type, src, payload);
  }
}

void TcpTransport::Shutdown() {
  if (shutdown_.exchange(true)) {
    return;
  }
  for (auto& peer : peers_) {
    if (peer == nullptr) {
      continue;
    }
    {
      std::lock_guard<std::mutex> lock(peer->mu);
      peer->closed = true;
    }
    peer->cv.notify_all();
    if (peer->sender.joinable()) {
      peer->sender.join();
    }
    peer->socket.ShutdownBoth();
    if (peer->receiver.joinable()) {
      peer->receiver.join();
    }
    peer->socket.Close();
  }
  listener_.Close();
}

}  // namespace naiad
