#include "src/net/transport.h"

#include <sys/socket.h>

#include <cerrno>
#include <chrono>
#include <cstring>

#include "src/base/logging.h"
#include "src/ser/bytes.h"

namespace naiad {

TcpTransport::TcpTransport(uint32_t process_id, uint32_t processes)
    : pid_(process_id), nprocs_(processes) {
  send_links_.resize(nprocs_);
  recv_links_.resize(nprocs_);
  for (uint32_t p = 0; p < nprocs_; ++p) {
    if (p != pid_) {
      send_links_[p] = std::make_unique<SendLink>();
      recv_links_[p] = std::make_unique<RecvLink>();
    }
  }
}

TcpTransport::~TcpTransport() { Shutdown(); }

uint16_t TcpTransport::Listen(uint16_t preferred_port) {
  uint16_t port = listener_.Open(preferred_port);
  // A recovering process rebinding its published port can transiently collide with the
  // previous generation's teardown; retry briefly (mirroring Socket::ConnectLocal).
  for (int attempt = 0; port == 0 && preferred_port != 0 && attempt < 200; ++attempt) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    port = listener_.Open(preferred_port);
  }
  NAIAD_CHECK(port != 0);
  return port;
}

Socket TcpTransport::DialPeer(uint32_t dst) {
  Socket s = Socket::ConnectLocal(ports_[dst]);
  if (!s.valid()) {
    return Socket();
  }
  uint32_t hello[2] = {pid_, generation_};
  if (!s.WriteAll(std::span<const uint8_t>(reinterpret_cast<const uint8_t*>(hello),
                                           sizeof(hello)))) {
    return Socket();
  }
  return s;
}

void TcpTransport::Start(const std::vector<uint16_t>& ports, Callbacks cb) {
  cb_ = std::move(cb);
  NAIAD_CHECK(ports.size() == nprocs_);
  ports_ = ports;
  // The accept loop owns the listener for the transport's lifetime: it feeds both the
  // initial mesh bring-up and any replacement connection after a fault-injected reset.
  acceptor_ = std::thread([this] { AcceptorMain(); });
  for (uint32_t p = 0; p < nprocs_; ++p) {
    if (p == pid_) {
      continue;
    }
    SendLink* link = send_links_[p].get();
    if (fault_plan_ != nullptr) {
      link->faults = fault_plan_->Link(pid_, p);
      recv_links_[p]->faults = fault_plan_->RecvLink(p, pid_);
    }
    if (obs_ != nullptr) {
      link->metrics = obs_->metrics().link(p);
    }
    Socket s = DialPeer(p);
    NAIAD_CHECK(s.valid()) << "connect to process " << p << " failed";
    s.SetWriteFaults(link->faults);
    link->socket = std::move(s);
  }
  for (uint32_t p = 0; p < nprocs_; ++p) {
    if (p == pid_) {
      continue;
    }
    SendLink* sl = send_links_[p].get();
    RecvLink* rl = recv_links_[p].get();
    sl->sender = std::thread([this, p, sl] { SenderMain(p, *sl); });
    rl->receiver = std::thread([this, p, rl] { ReceiverMain(p, *rl); });
  }
}

void TcpTransport::AcceptorMain() {
  for (;;) {
    Socket s = listener_.Accept();
    if (!s.valid()) {
      return;  // listener closed (shutdown)
    }
    // Publish the handshake fd so Shutdown() can unblock this read: shutting the
    // listener down unblocks Accept() but not an in-progress handshake, so a dialer
    // that connects and then stalls would otherwise pin the acceptor join forever.
    {
      std::lock_guard<std::mutex> lock(accept_mu_);
      if (shutdown_.load(std::memory_order_acquire)) {
        return;  // Shutdown already swept; it will not see this fd
      }
      handshake_fd_ = s.fd();
    }
    uint32_t hello[2] = {0, 0};  // [src process, restart generation]
    const bool identified =
        s.ReadAll(std::span<uint8_t>(reinterpret_cast<uint8_t*>(hello), sizeof(hello)));
    {
      std::lock_guard<std::mutex> lock(accept_mu_);
      handshake_fd_ = -1;
    }
    if (!identified) {
      continue;  // dialer vanished before identifying itself
    }
    const uint32_t who = hello[0];
    if (who >= nprocs_ || who == pid_ || hello[1] != generation_) {
      continue;  // unknown peer, or a dial from a different restart generation
    }
    RecvLink& link = *recv_links_[who];
    {
      std::lock_guard<std::mutex> lock(link.mu);
      link.pending.push_back(std::move(s));
    }
    link.cv.notify_all();
  }
}

void TcpTransport::FrameInto(std::vector<uint8_t>& out, FrameType type,
                             std::span<const uint8_t> payload, uint32_t job) const {
  // Everything but the sequence number, which the sender thread splices in at write
  // time (see WriteRun).
  out.clear();
  out.reserve(payload.size() + kFrameQueuedHeaderBytes);
  ByteWriter w(&out);
  w.WriteU32(static_cast<uint32_t>(payload.size()));
  w.WriteU8(static_cast<uint8_t>(type));
  w.WriteU32(pid_);
  w.WriteU32(job);
  w.WriteBytes(payload.data(), payload.size());
}

void TcpTransport::Send(uint32_t dst, FrameType type, std::vector<uint8_t> payload,
                        uint32_t job, JobTraffic* acct) {
  if (dst == pid_) {
    // Self-sends dispatch inline and are not network traffic; byte counters track only
    // what would cross the wire (the quantity Fig. 6c reports).
    Dispatch(type, pid_, job, payload, /*count=*/false);
    return;
  }
  SendLink& link = *send_links_[dst];
  OutFrame frame;
  {
    std::lock_guard<std::mutex> lock(link.mu);
    if (!link.free_frames.empty()) {
      frame.owned = std::move(link.free_frames.back());
      link.free_frames.pop_back();
    }
  }
  FrameInto(frame.owned, type, payload, job);
  // The wire adds the 8-byte sequence number the sender thread splices in.
  const size_t frame_bytes = frame.owned.size() + 8;
  size_t depth;
  {
    std::lock_guard<std::mutex> lock(link.mu);
    if (link.closed) {
      // The frame is dropped, not sent: it must not count toward the wire totals (the
      // termination barrier and Fig. 6c both read them), and its buffer goes back to the
      // free list instead of leaking its capacity.
      if (frame.owned.capacity() > 0 && link.free_frames.size() < kMaxFreeFrames) {
        frame.owned.clear();
        link.free_frames.push_back(std::move(frame.owned));
      }
      return;
    }
    link.queue.push_back(std::move(frame));
    depth = link.queue.size();
  }
  frames_sent_[static_cast<size_t>(type)].fetch_add(1, std::memory_order_relaxed);
  bytes_sent_[static_cast<size_t>(type)].fetch_add(frame_bytes, std::memory_order_relaxed);
  link.sent[static_cast<size_t>(type)].fetch_add(1, std::memory_order_relaxed);
  if (acct != nullptr) {
    acct->frames_sent[static_cast<size_t>(type)].fetch_add(1, std::memory_order_relaxed);
    acct->bytes_sent[static_cast<size_t>(type)].fetch_add(frame_bytes,
                                                          std::memory_order_relaxed);
  }
  if (link.metrics != nullptr) {
    link.metrics->send_queue_depth.Record(depth);
  }
  link.cv.notify_one();
}

void TcpTransport::BroadcastFrame(FrameType type, const std::vector<uint8_t>& payload,
                                  bool include_self, uint32_t job, JobTraffic* acct) {
  // Frame once; every remote link enqueues the same immutable buffer instead of
  // re-serializing the header + payload per peer.
  std::shared_ptr<std::vector<uint8_t>> frame;
  for (uint32_t p = 0; p < nprocs_; ++p) {
    if (p == pid_) {
      if (include_self) {
        Dispatch(type, pid_, job, payload, /*count=*/false);
      }
      continue;
    }
    if (frame == nullptr) {
      frame = std::make_shared<std::vector<uint8_t>>();
      FrameInto(*frame, type, payload, job);
    }
    SendLink& link = *send_links_[p];
    size_t depth;
    {
      std::lock_guard<std::mutex> lock(link.mu);
      if (link.closed) {
        continue;  // dropped, so not counted as sent
      }
      link.queue.push_back(OutFrame{.owned = {}, .shared = frame});
      depth = link.queue.size();
    }
    frames_sent_[static_cast<size_t>(type)].fetch_add(1, std::memory_order_relaxed);
    bytes_sent_[static_cast<size_t>(type)].fetch_add(frame->size() + 8,
                                                     std::memory_order_relaxed);
    link.sent[static_cast<size_t>(type)].fetch_add(1, std::memory_order_relaxed);
    if (acct != nullptr) {
      acct->frames_sent[static_cast<size_t>(type)].fetch_add(1, std::memory_order_relaxed);
      acct->bytes_sent[static_cast<size_t>(type)].fetch_add(frame->size() + 8,
                                                            std::memory_order_relaxed);
    }
    if (link.metrics != nullptr) {
      link.metrics->send_queue_depth.Record(depth);
    }
    link.cv.notify_one();
  }
}

void TcpTransport::Dispatch(FrameType type, uint32_t src, uint32_t job,
                            std::span<const uint8_t> payload, bool count) {
  cb_.on_frame(type, src, job, payload, count);
  // Counted strictly after the callback ran: the cluster checkpoint barrier's in-flight
  // accounting relies on every counted-received frame being fully delivered (e.g. already
  // enqueued in a worker inbox, where the local quiet probe can see it). Inline
  // self-dispatches pass count=false — they never crossed the wire, and their send side
  // was never counted, so counting the receipt would skew sum(sent) vs sum(received).
  if (count) {
    frames_received_[static_cast<size_t>(type)].fetch_add(1, std::memory_order_relaxed);
  }
}

bool TcpTransport::WriteRun(SendLink& link, std::span<const OutFrame> batch, size_t begin,
                            size_t end, uint64_t base_index, uint64_t* next_seq) {
  if (begin >= end) {
    return true;
  }
  std::vector<iovec> iov;
  std::vector<uint64_t> seqs;
  iov.reserve((end - begin) * 3);
  seqs.reserve(end - begin);  // must not reallocate: iovecs point into it
  for (size_t i = begin; i < end; ++i) {
    std::span<const uint8_t> b = batch[i].bytes();
    const uint8_t type = b[4];  // [u32 len][u8 type]...
    NAIAD_CHECK(type < kNumFrameTypes);
    seqs.push_back(next_seq[type]++);
    auto* base = const_cast<uint8_t*>(b.data());
    iov.push_back(iovec{.iov_base = base, .iov_len = kFrameQueuedHeaderBytes});
    iov.push_back(iovec{.iov_base = &seqs.back(), .iov_len = 8});
    if (b.size() > kFrameQueuedHeaderBytes) {
      iov.push_back(iovec{.iov_base = base + kFrameQueuedHeaderBytes,
                          .iov_len = b.size() - kFrameQueuedHeaderBytes});
    }
    if (link.faults != nullptr && !shutdown_.load(std::memory_order_acquire) &&
        link.faults->ShouldDuplicateFrame(base_index + (i - begin))) {
      // Duplicate delivery: the same frame, with the SAME sequence number, written again
      // adjacently. Not counted as sent — the receiver's dedup drops it, so the wire
      // totals keep sum(sent) == sum(received).
      const size_t n = iov.size();
      for (size_t k = b.size() > kFrameQueuedHeaderBytes ? 3 : 2; k > 0; --k) {
        iov.push_back(iov[n - k]);
      }
      if (link.trace != nullptr) {
        link.trace->Record(obs::TraceKind::kLinkDupFrame, obs::MonotonicNs(), 0,
                           seqs.back(), static_cast<uint64_t>(type), 0);
      }
    }
  }
  return link.socket.WritevAll(iov);
}

void TcpTransport::ResetLink(uint32_t dst, SendLink& link) {
  // Reset at a frame boundary: every previously queued frame was fully written, so the
  // peer's receiver drains to EOF between frames and resumes on the replacement
  // connection — FIFO and framing both preserved.
  if (link.trace != nullptr) {
    link.trace->Record(obs::TraceKind::kLinkReset, obs::MonotonicNs(), 0, dst, 0, 0);
  }
  link.socket.Close();
  Socket s = DialPeer(dst);
  if (s.valid()) {
    s.SetWriteFaults(link.faults);
    link.socket = std::move(s);
    reconnects_.fetch_add(1, std::memory_order_relaxed);
    if (link.trace != nullptr) {
      link.trace->Record(obs::TraceKind::kLinkReconnect, obs::MonotonicNs(), 0, dst, 0, 0);
    }
  }
}

void TcpTransport::SenderMain(uint32_t dst, SendLink& link) {
  if (obs_ != nullptr) {
    link.trace = obs_->tracer().RegisterThread("send->" + std::to_string(dst));
  }
  uint64_t frame_index = 0;
  // Per-frame-type sequence numbers, spliced into the wire header by WriteRun. They
  // persist across fault-injected reconnects (same link, same numbering) so the
  // receiver's dedup state survives connection replacement.
  uint64_t next_seq[kNumFrameTypes] = {};
  std::vector<OutFrame> batch;
  for (;;) {
    batch.clear();
    {
      std::unique_lock<std::mutex> lock(link.mu);
      link.cv.wait(lock, [&] { return link.closed || !link.queue.empty(); });
      if (link.queue.empty()) {
        return;  // closed and drained
      }
      // Drain everything queued under one lock acquisition; the whole batch then goes to
      // the socket as (at most a few) gathered writes instead of one write per frame.
      while (!link.queue.empty()) {
        batch.push_back(std::move(link.queue.front()));
        link.queue.pop_front();
      }
    }
    if (link.metrics != nullptr) {
      link.metrics->writev_batch.Record(batch.size());
    }
    // Split the batch into maximal runs at fault-injected reset points. The hook is
    // stateful, so each frame index is consulted exactly once, in order; a reset lands
    // before the frame whose consultation requested it, exactly as in the
    // frame-at-a-time path.
    size_t run_start = 0;
    bool ok = true;
    for (size_t k = 0; k < batch.size() && ok; ++k) {
      if (link.faults != nullptr && !shutdown_.load(std::memory_order_acquire) &&
          link.faults->ShouldResetBefore(frame_index + k)) {
        ok = WriteRun(link, batch, run_start, k, frame_index + run_start, next_seq);
        if (ok) {
          ResetLink(dst, link);
          run_start = k;
        }
      }
    }
    if (!ok ||
        !WriteRun(link, batch, run_start, batch.size(), frame_index + run_start, next_seq)) {
      // The peer went away: during shutdown that's expected; otherwise it is the
      // sender-side symptom of a peer death, reported for coordinated recovery.
      NotifyPeerDown(dst);
      return;
    }
    frame_index += batch.size();
    // Recycle the drained point-to-point buffers so the next Send() call on this link
    // reuses them instead of allocating.
    {
      std::lock_guard<std::mutex> lock(link.mu);
      for (OutFrame& f : batch) {
        if (f.shared == nullptr && f.owned.capacity() > 0 &&
            link.free_frames.size() < kMaxFreeFrames) {
          f.owned.clear();
          link.free_frames.push_back(std::move(f.owned));
        }
      }
    }
  }
}

void TcpTransport::ReceiverMain(uint32_t src, RecvLink& link) {
  obs::TraceRing* trace =
      obs_ != nullptr ? obs_->tracer().RegisterThread("recv<-" + std::to_string(src))
                      : nullptr;
  bool first_connection = true;
  uint64_t frame_index = 0;        // frames dispatched on this link, across connections
  uint64_t replacement_index = 0;  // replacement connections adopted so far
  // Next expected per-type sequence number; persists across replacement connections
  // (the sender's numbering does too). A frame numbered below its type's expectation
  // was already dispatched — a duplicate delivery — and is dropped here. The starting
  // expectation is normally 0; selective recovery pre-seeds it (SeedRecvExpectation) so
  // a replaced peer's replayed prefix is treated as already dispatched.
  uint64_t expected_seq[kNumFrameTypes];
  for (int t = 0; t < kNumFrameTypes; ++t) {
    expected_seq[t] = link.initial_expect[t];
  }
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(link.mu);
      link.socket.Close();  // done with the previous connection, if any
      link.reading = false;
      link.cv.wait(lock, [&] {
        return !link.pending.empty() || shutdown_.load(std::memory_order_acquire);
      });
      // Check shutdown before pending: a replacement queued just before Shutdown()'s
      // sweep passed this link must not be adopted afterwards — its dialer may never
      // close it, and nothing would ever unblock the read (Shutdown only shuts down
      // the socket that was being read when the sweep ran).
      if (shutdown_.load(std::memory_order_acquire) || link.pending.empty()) {
        return;
      }
      link.socket = std::move(link.pending.front());
      link.pending.pop_front();
      link.socket.SetReadFaults(link.faults);
      link.reading = true;
    }
    if (!first_connection) {
      if (link.faults != nullptr && !shutdown_.load(std::memory_order_acquire)) {
        // Delayed adoption: the replacement sits un-adopted for a bounded time, so the
        // reset is observed to linger on the frame boundary before delivery resumes.
        const uint32_t delay_us = link.faults->AdoptionDelayUs(replacement_index);
        if (delay_us > 0) {
          std::this_thread::sleep_for(std::chrono::microseconds(delay_us));
        }
      }
      ++replacement_index;
      if (trace != nullptr) {
        // Adopting a replacement connection after the peer's fault-injected reset.
        trace->Record(obs::TraceKind::kLinkReconnect, obs::MonotonicNs(), 0, src, 1, 0);
      }
    }
    first_connection = false;
    for (;;) {
      uint8_t header[kFrameWireHeaderBytes];
      const ReadResult hres = link.socket.ReadExact(header);
      if (!hres.ok()) {
        if (hres.status == ReadResult::Status::kEof) {
          // Clean EOF on a frame boundary: peer reset, the run being over, or (under
          // coordinated recovery, where resets are off) a dying peer's orderly close.
          NotifyPeerDown(src);
          break;
        }
        if (shutdown_.load(std::memory_order_acquire)) {
          return;  // local teardown unblocked the read; don't count it as a link fault
        }
        if (hres.bytes_read == 0 && hres.err == ECONNRESET) {
          // A reset landing exactly on a frame boundary: every frame written before the
          // peer's abort was delivered, so this is recoverable — wait for a replacement.
          recv_boundary_resets_.fetch_add(1, std::memory_order_relaxed);
          if (trace != nullptr) {
            trace->Record(obs::TraceKind::kLinkReset, obs::MonotonicNs(), 0, src, 1, 0);
          }
          NotifyPeerDown(src);
          break;
        }
        // EOF or error mid-header: a torn frame, distinct from a boundary close. The
        // partial frame is abandoned, never dispatched short.
        recv_torn_frames_.fetch_add(1, std::memory_order_relaxed);
        if (trace != nullptr) {
          trace->Record(obs::TraceKind::kLinkTornFrame, obs::MonotonicNs(), 0, src,
                        hres.bytes_read, 0);
        }
        NotifyPeerDown(src);
        break;
      }
      ByteReader hr(header);
      const uint32_t len = hr.ReadU32();
      const auto type = static_cast<FrameType>(hr.ReadU8());
      const uint32_t frame_src = hr.ReadU32();
      const uint32_t job = hr.ReadU32();
      const uint64_t seq = hr.ReadU64();
      NAIAD_CHECK(static_cast<uint8_t>(type) < kNumFrameTypes);
      NAIAD_CHECK(frame_src == src);
      std::vector<uint8_t> payload(len);
      if (len > 0) {
        const ReadResult bres = link.socket.ReadExact(payload);
        if (!bres.ok()) {
          if (shutdown_.load(std::memory_order_acquire)) {
            return;
          }
          // Any failure inside the body — even a "clean" close at body offset 0 — is
          // mid-frame and therefore torn: the header was already consumed.
          recv_torn_frames_.fetch_add(1, std::memory_order_relaxed);
          if (trace != nullptr) {
            trace->Record(obs::TraceKind::kLinkTornFrame, obs::MonotonicNs(), 0, src,
                          sizeof(header) + bres.bytes_read, 1);
          }
          NotifyPeerDown(src);
          break;
        }
      }
      uint64_t& expect = expected_seq[static_cast<size_t>(type)];
      if (seq != expect) {
        // FIFO links cannot lose or reorder frames, so a mismatch can only be a
        // duplicate delivery of something already dispatched. Drop it: re-delivering
        // would violate the exactly-once contract the progress protocol (§3.3) and the
        // barrier traffic accounting both assume.
        NAIAD_CHECK(seq < expect)
            << "sequence gap on link " << src << ": got " << seq << " expected " << expect;
        recv_dup_frames_.fetch_add(1, std::memory_order_relaxed);
        if (trace != nullptr) {
          trace->Record(obs::TraceKind::kLinkDupFrame, obs::MonotonicNs(), 0, seq,
                        static_cast<uint64_t>(type), 1);
        }
        if (cb_.on_dup_frame && !shutdown_.load(std::memory_order_acquire) &&
            cb_.on_dup_frame(type, frame_src, job, seq, payload)) {
          // A deliberately-dropped replayed frame: its send was counted, so its retirement
          // must be too, or the barrier's cluster-wide sent==received never balances.
          frames_received_[static_cast<size_t>(type)].fetch_add(1,
                                                               std::memory_order_relaxed);
        }
        continue;
      }
      ++expect;
      if (link.faults != nullptr && !shutdown_.load(std::memory_order_acquire)) {
        // Bounded delayed dispatch between frame decode and worker-queue enqueue. The
        // receiver thread itself sleeps, so later frames on this link cannot overtake:
        // per-link FIFO is preserved by construction.
        const uint32_t delay_us = link.faults->DispatchDelayUs(frame_index);
        if (delay_us > 0) {
          std::this_thread::sleep_for(std::chrono::microseconds(delay_us));
        }
      }
      ++frame_index;
      if (shutdown_.load(std::memory_order_acquire)) {
        return;
      }
      Dispatch(type, frame_src, job, payload);
      link.received[static_cast<size_t>(type)].fetch_add(1, std::memory_order_relaxed);
    }
    if (shutdown_.load(std::memory_order_acquire)) {
      return;
    }
  }
}

void TcpTransport::SeedRecvExpectation(uint32_t src, FrameType type, uint64_t seq) {
  NAIAD_CHECK(src != pid_ && src < nprocs_);
  recv_links_[src]->initial_expect[static_cast<size_t>(type)] = seq;
}

bool TcpTransport::RecvLinkDrained(uint32_t src) {
  RecvLink& link = *recv_links_[src];
  std::lock_guard<std::mutex> lock(link.mu);
  return !link.reading && link.pending.empty();
}

void TcpTransport::NotifyPeerDown(uint32_t peer) {
  if (cb_.on_peer_down && !shutdown_.load(std::memory_order_acquire)) {
    cb_.on_peer_down(peer);
  }
}

void TcpTransport::Shutdown() {
  if (shutdown_.exchange(true)) {
    return;
  }
  JoinThreads();
}

void TcpTransport::Abort() {
  if (shutdown_.exchange(true)) {
    return;
  }
  // Unblock senders before joining them: a sender parked in a full-buffer write to a
  // peer that is itself aborting would otherwise deadlock JoinThreads (circular wait on
  // loopback buffers). shutdown(2) leaves the fd valid, so this is safe against a
  // concurrent send(); fault-injected resets (the only concurrent Close) are off in
  // recovery mode, and no new reset can start now that shutdown_ is set.
  for (auto& link : send_links_) {
    if (link != nullptr) {
      link->socket.ShutdownBoth();
    }
  }
  JoinThreads();
}

void TcpTransport::JoinThreads() {
  // Stop accepting replacements first so the acceptor cannot race socket teardown.
  listener_.Shutdown();
  {
    // Unblock a handshake read in progress: the acceptor either sees the shutdown flag
    // before registering the fd (and returns), or registered it here for us to shut
    // down. Either way the join below cannot hang on a silent dialer.
    std::lock_guard<std::mutex> lock(accept_mu_);
    if (handshake_fd_ >= 0) {
      ::shutdown(handshake_fd_, SHUT_RDWR);
    }
  }
  if (acceptor_.joinable()) {
    acceptor_.join();
  }
  listener_.Close();
  for (auto& link : send_links_) {
    if (link == nullptr) {
      continue;
    }
    {
      std::lock_guard<std::mutex> lock(link->mu);
      link->closed = true;
    }
    link->cv.notify_all();
    if (link->sender.joinable()) {
      link->sender.join();
    }
    link->socket.Close();
  }
  for (auto& link : recv_links_) {
    if (link == nullptr) {
      continue;
    }
    {
      std::lock_guard<std::mutex> lock(link->mu);
      // Unblock a receiver parked in ReadAll; its own assignments of `socket` happen
      // before `reading` was published under the lock, so the fd we shut down here is
      // the one it is reading.
      if (link->reading) {
        link->socket.ShutdownBoth();
      }
    }
    link->cv.notify_all();
    if (link->receiver.joinable()) {
      link->receiver.join();
    }
    link->socket.Close();
    for (Socket& s : link->pending) {
      s.Close();
    }
    link->pending.clear();
  }
}

}  // namespace naiad
