// The inter-process transport (§3): a full mesh of TCP connections, one per ordered
// process pair, with a dedicated send thread (draining a FIFO queue) and receive thread
// per peer. Per-pair FIFO is what the distributed progress protocol requires of its
// channels (§3.3).
//
// Connections are simplex: process s's frames to process d travel on a connection s dials
// to d's listener (announcing s and its restart generation in an 8-byte handshake), and
// d's frames to s travel on a separate connection d dials to s. An accept loop runs for the transport's lifetime, so a sender
// may close its connection at a frame boundary and transparently re-dial — the mechanism
// the fault-injection harness (src/testing/fault.h) uses to exercise connection resets
// without violating the FIFO contract: the receiver drains the old connection to EOF
// (TCP delivers all bytes written before the close), then resumes on the replacement.
//
// Frames: [u32 length][u8 type][u32 src_process][u32 job][u64 seq][payload]. The job id
// routes the frame to a registered dataflow on a multi-tenant job server (0 is the
// single-job/legacy id); `seq` is a per-link per-frame-type sequence number the sender
// thread assigns at write time and the receiver uses to drop duplicate deliveries.
// Self-addressed sends dispatch directly (no socket to self), preserving the "broadcast
// includes self" semantics.

#ifndef SRC_NET_TRANSPORT_H_
#define SRC_NET_TRANSPORT_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <span>
#include <thread>
#include <vector>

#include "src/core/controller.h"
#include "src/net/fault_hooks.h"
#include "src/net/socket.h"
#include "src/obs/obs.h"

namespace naiad {

enum class FrameType : uint8_t {
  kData = 0,         // record bundle, handled by Controller::ReceiveRemoteBundle
  kProgress = 1,     // progress updates for direct application
  kProgressAcc = 2,  // progress updates addressed to the central accumulator
  kControl = 3,      // cluster control (termination barrier, job lifecycle)
};
inline constexpr int kNumFrameTypes = 4;

// Send() frames everything but `seq` into the queued buffer (13 bytes of header); the
// sender thread splices the 8-byte sequence number in at write time, so a broadcast's
// shared buffer stays immutable while every link still numbers its own frames.
inline constexpr size_t kFrameQueuedHeaderBytes = 13;
inline constexpr size_t kFrameWireHeaderBytes = 21;

// Per-job wire-traffic accounting (multi-tenant job server). The transport credits the
// sending job's counters at enqueue time, exactly where the global counters are bumped;
// the receiving side's demux credits frames_received after delivery. Indexed by
// static_cast<size_t>(FrameType).
struct JobTraffic {
  std::atomic<uint64_t> frames_sent[kNumFrameTypes] = {};
  std::atomic<uint64_t> bytes_sent[kNumFrameTypes] = {};
  std::atomic<uint64_t> frames_received[kNumFrameTypes] = {};
};

class TcpTransport final : public DataTransport {
 public:
  struct Callbacks {
    // Single dispatch arm for every frame type. `job` is the frame header's job id (0
    // for single-job/legacy senders); `wire` distinguishes frames that crossed a socket
    // from inline self-dispatches (the latter are never counted as received — see
    // Dispatch). Runs on receive threads, or inline on the sender for self-sends.
    std::function<void(FrameType type, uint32_t src, uint32_t job,
                       std::span<const uint8_t> payload, bool wire)>
        on_frame;
    // Failure detection (optional). Fired from a sender or receiver thread when a link
    // dies outside Shutdown(): write failure, boundary EOF/ECONNRESET, or a torn frame.
    // Installing this makes every link death a suspected peer death, so it is
    // incompatible with fault plans that inject connection resets (which die and
    // transparently re-dial); the kill-and-recover harness runs with reset injection off.
    // May fire multiple times per peer; the consumer deduplicates.
    std::function<void(uint32_t peer)> on_peer_down;
    // Duplicate-frame observer (optional). Fired from the receive thread when a frame's
    // per-type sequence number was already dispatched on this link and the frame is about
    // to be dropped. Returning true counts the drop as received in the global per-type
    // counters: selective recovery routes a replacement's replayed frames through the
    // dedup path, and the checkpoint barrier's cluster-wide sent==received accounting
    // must still balance for frames a survivor deliberately drops (their send side WAS
    // counted). Fault-injected duplicates — whose extra wire emission was never counted
    // as sent — must return false, preserving the original accounting.
    std::function<bool(FrameType type, uint32_t src, uint32_t job, uint64_t seq,
                       std::span<const uint8_t> payload)>
        on_dup_frame;
  };

  TcpTransport(uint32_t process_id, uint32_t processes);
  ~TcpTransport() override;

  // Optional fault plan; must be set before Start() and outlive the transport.
  void SetFaultPlan(ClusterFaultPlan* plan) { fault_plan_ = plan; }

  // Optional observability runtime; must be set before Start() and outlive the
  // transport. Supplies per-link metrics blocks and sender/receiver thread trace rings.
  void SetObs(obs::Obs* obs) { obs_ = obs; }

  // Restart generation announced in the dial handshake and required of inbound dials;
  // connections from any other generation are dropped at accept time, so a stale
  // pre-recovery dial can never be adopted by a post-recovery mesh. Must be set before
  // Start(); defaults to 0 (what every pre-recovery transport uses).
  void SetGeneration(uint32_t gen) { generation_ = gen; }
  uint32_t generation() const { return generation_; }

  // Phase 1 (launcher thread): open the listener, returning its port. `preferred_port`
  // lets a recovering process rebind the port it published before the failure (0 =
  // ephemeral).
  uint16_t Listen(uint16_t preferred_port = 0);
  // Phase 2 (per-process thread): establish the mesh given everyone's ports, then start
  // the I/O threads. Callbacks fire on receive threads (or inline for self-sends).
  void Start(const std::vector<uint16_t>& ports, Callbacks cb);

  // DataTransport: ship a record bundle (single-job/legacy path, job 0). The job server
  // gives each job its own adapter that calls Send with the job's id and accounting.
  void SendBundle(uint32_t dst_process, std::vector<uint8_t> frame) override {
    Send(dst_process, FrameType::kData, std::move(frame));
  }

  // `acct`, when set, receives the same sent-frame/sent-byte credit as the global
  // counters (i.e. only frames actually enqueued; dropped-at-close and self-sends are
  // not counted).
  void Send(uint32_t dst, FrameType type, std::vector<uint8_t> payload, uint32_t job = 0,
            JobTraffic* acct = nullptr);
  // Sends to every process; when include_self, the callback runs inline.
  void BroadcastFrame(FrameType type, const std::vector<uint8_t>& payload,
                      bool include_self, uint32_t job = 0, JobTraffic* acct = nullptr);

  void Shutdown();
  // Recovery-path teardown: additionally shuts down (shutdown(2), not close) every send
  // socket *before* joining the sender threads, so a sender blocked in a full-buffer
  // write to a peer that is itself tearing down cannot deadlock the join. The clean path
  // (Shutdown) never needs this — termination drains both sides first.
  void Abort();

  uint64_t bytes_sent(FrameType type) const {
    return bytes_sent_[static_cast<size_t>(type)].load(std::memory_order_relaxed);
  }
  uint64_t frames_sent(FrameType type) const {
    return frames_sent_[static_cast<size_t>(type)].load(std::memory_order_relaxed);
  }
  uint64_t frames_received(FrameType type) const {
    return frames_received_[static_cast<size_t>(type)].load(std::memory_order_relaxed);
  }
  // Connections this transport re-established after a (fault-injected) reset.
  uint64_t reconnects() const { return reconnects_.load(std::memory_order_relaxed); }
  // Frames a receiver abandoned because the connection died mid-frame (EOF or error
  // inside the header or body). Torn frames are never dispatched; a nonzero count
  // outside shutdown means a peer violated the frame-boundary close contract.
  uint64_t recv_torn_frames() const {
    return recv_torn_frames_.load(std::memory_order_relaxed);
  }
  // Connection resets (ECONNRESET) a receiver observed landing exactly on a frame
  // boundary — recoverable: the receiver waits for a replacement connection.
  uint64_t recv_boundary_resets() const {
    return recv_boundary_resets_.load(std::memory_order_relaxed);
  }
  // Frames a receiver dropped because their per-type sequence number was already
  // dispatched on that link — duplicate deliveries (fault-injected), never re-delivered
  // and never counted in frames_received.
  uint64_t recv_dup_frames() const {
    return recv_dup_frames_.load(std::memory_order_relaxed);
  }

  // Pre-seeds the receiver's per-type duplicate-detection expectation for frames from
  // `src`: every frame numbered below `seq` is treated as an already-dispatched
  // duplicate. Selective recovery uses this so a survivor that already absorbed the
  // first `seq` data frames of a replaced peer's post-checkpoint window drops the
  // replayed prefix instead of re-delivering it. Must be called before Start().
  void SeedRecvExpectation(uint32_t src, FrameType type, uint64_t seq);

  // Per-link wire counters: frames enqueued toward / dispatched from one specific peer.
  // The per-link received counter advances only on dispatch (duplicate drops excluded),
  // so `frames_received_from(p, kData)` is exactly the count of p's data frames this
  // process has absorbed — the quantity a survivor snapshots as its replay watermark.
  uint64_t frames_sent_to(uint32_t dst, FrameType type) const {
    return send_links_[dst]->sent[static_cast<size_t>(type)].load(
        std::memory_order_relaxed);
  }
  uint64_t frames_received_from(uint32_t src, FrameType type) const {
    return recv_links_[src]->received[static_cast<size_t>(type)].load(
        std::memory_order_relaxed);
  }

  // True once the inbound link from `src` has no installed connection and no pending
  // replacement: the peer's socket reached EOF and every byte it ever wrote has been
  // dispatched. The survivor stall barrier polls this to know the dead peer's in-flight
  // frames have fully landed before it snapshots state.
  bool RecvLinkDrained(uint32_t src);

  uint32_t process_id() const { return pid_; }
  uint32_t processes() const { return nprocs_; }

 private:
  // Per-link cap on recycled frame buffers; beyond this, drained buffers are freed.
  static constexpr size_t kMaxFreeFrames = 64;

  // One queued, fully framed wire frame. Point-to-point sends own their buffer (recycled
  // through the link's free list after the write); broadcasts share a single immutable
  // framed buffer across all links.
  struct OutFrame {
    std::vector<uint8_t> owned;
    std::shared_ptr<const std::vector<uint8_t>> shared;
    std::span<const uint8_t> bytes() const {
      return shared != nullptr ? std::span<const uint8_t>(*shared)
                               : std::span<const uint8_t>(owned);
    }
  };

  // Outbound half: the connection we dialed to the peer, fed by a FIFO queue. The sender
  // thread drains the whole queue per wakeup and writes it as one gathered batch;
  // `free_frames` recycles the drained buffers back to Send() so the steady state
  // allocates nothing per frame.
  struct SendLink {
    Socket socket;
    std::mutex mu;
    std::condition_variable cv;
    std::deque<OutFrame> queue;
    std::vector<std::vector<uint8_t>> free_frames;
    bool closed = false;
    std::thread sender;
    LinkFaultHook* faults = nullptr;        // owned by the fault plan
    obs::LinkMetrics* metrics = nullptr;    // owned by the controller's Obs; set in Start
    obs::TraceRing* trace = nullptr;        // sender-thread ring; set/used only by SenderMain
    std::atomic<uint64_t> sent[kNumFrameTypes] = {};  // frames enqueued (== seqs assigned)
  };

  // Inbound half: connections the peer dialed to us, delivered by the accept loop. The
  // receiver drains `pending` in arrival order; sockets are only mutated under `mu` (the
  // receiver's unlocked reads during ReadAll race with nothing, as only the receiver
  // assigns `socket` and Shutdown joins it before closing).
  struct RecvLink {
    std::mutex mu;
    std::condition_variable cv;
    Socket socket;
    bool reading = false;                // a socket is installed and being drained
    std::deque<Socket> pending;          // replacement connections, FIFO
    std::thread receiver;
    RecvLinkFaultHook* faults = nullptr;  // owned by the fault plan; set in Start
    std::atomic<uint64_t> received[kNumFrameTypes] = {};  // frames dispatched (not drops)
    uint64_t initial_expect[kNumFrameTypes] = {};  // SeedRecvExpectation, read at start
  };

  // `count` distinguishes wire deliveries (receiver threads) from inline self-dispatches:
  // only the former increment frames_received_, keeping cluster-wide sum(sent) ==
  // sum(received) once the wire is drained (the checkpoint barrier's in-flight check).
  void Dispatch(FrameType type, uint32_t src, uint32_t job,
                std::span<const uint8_t> payload, bool count = true);
  void AcceptorMain();
  void SenderMain(uint32_t dst, SendLink& link);
  void ReceiverMain(uint32_t src, RecvLink& link);
  // Dials `dst` and writes the identifying handshake; invalid Socket on failure.
  Socket DialPeer(uint32_t dst);
  void FrameInto(std::vector<uint8_t>& out, FrameType type,
                 std::span<const uint8_t> payload, uint32_t job) const;
  // Writes frames [begin, end) of `batch` as one gathered write (iovec batch), assigning
  // each frame its per-type sequence number from `next_seq` and emitting a fault-injected
  // duplicate (same bytes, same seq, adjacent) where the link hook asks for one.
  // `base_index` is the link-lifetime index of batch[begin].
  bool WriteRun(SendLink& link, std::span<const OutFrame> batch, size_t begin, size_t end,
                uint64_t base_index, uint64_t* next_seq);
  // Closes `link`'s connection and transparently re-dials (fault-injected reset).
  void ResetLink(uint32_t dst, SendLink& link);
  // Fires cb_.on_peer_down(peer) if installed and not shutting down.
  void NotifyPeerDown(uint32_t peer);
  // Shared teardown: join acceptor, then sender and receiver threads (see Shutdown/Abort).
  void JoinThreads();

  uint32_t pid_;
  uint32_t nprocs_;
  uint32_t generation_ = 0;
  Listener listener_;
  std::vector<uint16_t> ports_;  // everyone's listener ports, for re-dialing after a reset
  std::vector<std::unique_ptr<SendLink>> send_links_;  // indexed by dst; [pid_] unused
  std::vector<std::unique_ptr<RecvLink>> recv_links_;  // indexed by src; [pid_] unused
  std::thread acceptor_;
  // The fd the acceptor is currently blocked on reading a handshake from, or -1.
  // Shutdown() shuts it down so a dialer that connected but never identified itself
  // cannot block the acceptor join forever.
  std::mutex accept_mu_;
  int handshake_fd_ = -1;
  Callbacks cb_;
  ClusterFaultPlan* fault_plan_ = nullptr;
  obs::Obs* obs_ = nullptr;
  std::atomic<bool> shutdown_{false};
  std::atomic<uint64_t> reconnects_{0};
  std::atomic<uint64_t> recv_torn_frames_{0};
  std::atomic<uint64_t> recv_boundary_resets_{0};
  std::atomic<uint64_t> recv_dup_frames_{0};
  std::atomic<uint64_t> bytes_sent_[kNumFrameTypes] = {};
  std::atomic<uint64_t> frames_sent_[kNumFrameTypes] = {};
  std::atomic<uint64_t> frames_received_[kNumFrameTypes] = {};
};

}  // namespace naiad

#endif  // SRC_NET_TRANSPORT_H_
