// Multi-process execution harness.
//
// The paper's deployment is N processes on N computers; this reproduction runs N processes
// as N threads of one binary, each with its own Controller, worker pool, logical graph
// copy (SPMD construction, §3.1), and real TCP connections to every peer. Record exchange,
// serialization, and the distributed progress protocol all cross genuine sockets; only the
// wire is loopback (see DESIGN.md substitution #1).
//
// Termination uses a two-round stability barrier over control frames: when its tracker is
// globally empty, a process reports its traffic counters to process 0; the coordinator
// declares termination once every process reports empty with counters unchanged since the
// previous round (i.e. nothing happened anywhere in between).

#ifndef SRC_NET_CLUSTER_H_
#define SRC_NET_CLUSTER_H_

#include <array>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <vector>

#include "src/core/controller.h"
#include "src/net/progress_router.h"
#include "src/net/transport.h"

namespace naiad {

struct ClusterOptions {
  uint32_t processes = 2;
  uint32_t workers_per_process = 2;
  ProgressStrategy strategy = ProgressStrategy::kLocalGlobalAcc;
  size_t batch_size = 4096;
  uint32_t default_parallelism = 0;
  // Optional fault-injection plan (src/testing/fault.h); must outlive the run. Faults are
  // schedule perturbations only — results must be identical to a fault-free run.
  ClusterFaultPlan* fault_plan = nullptr;
  // Observability toggles, applied to every process. When obs.trace_path is nonempty and
  // tracing is on, one combined Chrome trace-event file (one pid per process) is written
  // there after the run.
  obs::ObsOptions obs;
};

struct ClusterStats {
  uint64_t progress_bytes = 0;     // protocol traffic over the wire (Fig. 6c)
  uint64_t progress_frames = 0;
  uint64_t data_bytes = 0;         // record-bundle traffic over the wire (Fig. 6a)
  uint64_t data_frames = 0;
  uint64_t reconnects = 0;         // link resets survived (fault injection)
  double elapsed_seconds = 0;
  // Merged metrics across all processes; empty unless opts.obs.metrics was set.
  obs::ObsSnapshot obs;
};

class Cluster {
 public:
  // `body(ctl)` runs once per process on its own thread (SPMD): build the dataflow, call
  // ctl.Start(), drive the inputs, and call ctl.Join(). Join participates in the global
  // termination barrier before stopping workers. Returns aggregate traffic statistics.
  using Body = std::function<void(Controller&)>;
  static ClusterStats Run(const ClusterOptions& opts, const Body& body);
};

}  // namespace naiad

#endif  // SRC_NET_CLUSTER_H_
