// Multi-process execution harness.
//
// The paper's deployment is N processes on N computers; this reproduction runs N processes
// as N threads of one binary, each with its own Controller, worker pool, logical graph
// copy (SPMD construction, §3.1), and real TCP connections to every peer. Record exchange,
// serialization, and the distributed progress protocol all cross genuine sockets; only the
// wire is loopback (see DESIGN.md substitution #1). The same control machinery
// (ClusterControl) also drives the forked-process cluster of src/ft/cluster_recovery.h,
// where each "process" really is an OS process that can be SIGKILLed.
//
// Termination uses a two-round stability barrier over control frames: when its tracker is
// globally empty, a process reports its traffic counters to process 0; the coordinator
// declares termination once every process reports empty with counters unchanged since the
// previous round (i.e. nothing happened anywhere in between).
//
// The cluster checkpoint barrier (§3.4) reuses the same machinery to reach a *global quiet
// point* mid-computation: each round, every process pauses-and-drains its workers, flushes
// its progress accumulators, and reports (local-quiet, traffic counters); the coordinator
// declares the cluster quiet once every process is locally quiet, counters are unchanged
// since the previous round, and the cluster-wide sent/received sums match per frame type
// (no frame in flight). Only then does each process serialize its image; process 0 commits
// the checkpoint epoch to the manifest strictly after every process reports its image
// durable, so a torn cluster checkpoint is never adoptable.

#ifndef SRC_NET_CLUSTER_H_
#define SRC_NET_CLUSTER_H_

#include <array>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <vector>

#include "src/core/controller.h"
#include "src/net/progress_router.h"
#include "src/net/transport.h"
#include "src/ser/bytes.h"

namespace naiad {

// Control-frame verbs (first payload byte of every kControl frame). kCtlReport/kCtlVerdict
// drive the termination barrier; kCtlCkpt* drive the cluster checkpoint (quiet-point
// rounds, then the durable/commit exchange); kCtlFailure/kCtlRecover drive the coordinated
// restart of src/ft/cluster_recovery.h; kCtlRegisterJob/kCtlTeardownJob drive the job
// server's dynamic registration (src/net/job_server.h). Shared in the header so the job
// server's demux can recognize its verbs before any per-job ClusterControl exists.
inline constexpr uint8_t kCtlReport = 0;
inline constexpr uint8_t kCtlVerdict = 1;
inline constexpr uint8_t kCtlCkptReport = 2;
inline constexpr uint8_t kCtlCkptVerdict = 3;
inline constexpr uint8_t kCtlCkptDurable = 4;
inline constexpr uint8_t kCtlCkptCommit = 5;
inline constexpr uint8_t kCtlFailure = 6;
inline constexpr uint8_t kCtlRecover = 7;
inline constexpr uint8_t kCtlRegisterJob = 8;
inline constexpr uint8_t kCtlTeardownJob = 9;
// Selective rollback recovery (src/ft/log_recovery.h). kCtlSelectiveRecover replaces the
// whole-cluster kCtlRecover broadcast when selective mode is on (it carries the victim so
// every survivor can target its stall barrier and log replay); kCtlStall* drive the
// survivor stall barrier (a quiet point among the survivors, with the victim's receive
// link drained); kCtlSeed* drive the post-rebuild seed-state exchange — each process
// broadcasts its own tracker contributions, acks once it holds all of them, and resumes
// only after the release, so every −delta any process ever emits is preceded everywhere
// by its seeded could-result-in ancestor.
inline constexpr uint8_t kCtlSelectiveRecover = 10;
inline constexpr uint8_t kCtlStallReport = 11;
inline constexpr uint8_t kCtlStallVerdict = 12;
inline constexpr uint8_t kCtlSeedState = 13;
inline constexpr uint8_t kCtlSeedAck = 14;
inline constexpr uint8_t kCtlSeedRelease = 15;
inline constexpr uint8_t kCtlStallAbort = 16;

// "No process": recovery_victim() before any failure, and manifest-absent rebase tags.
inline constexpr uint32_t kNoVictim = 0xffffffffu;

struct ClusterOptions {
  uint32_t processes = 2;
  uint32_t workers_per_process = 2;
  ProgressStrategy strategy = ProgressStrategy::kLocalGlobalAcc;
  ProgressScoping scoping = ProgressScoping::kFlat;
  size_t batch_size = 4096;
  uint32_t default_parallelism = 0;
  // Optional fault-injection plan (src/testing/fault.h); must outlive the run. Faults are
  // schedule perturbations only — results must be identical to a fault-free run.
  ClusterFaultPlan* fault_plan = nullptr;
  // Observability toggles, applied to every process. When obs.trace_path is nonempty and
  // tracing is on, one combined Chrome trace-event file (one pid per process) is written
  // there after the run.
  obs::ObsOptions obs;
  // Job-server quota: per process, per job, the bytes of frames buffered for a job that is
  // announced but not yet registered locally. A job exceeding it has further pre-
  // registration frames dropped (counted in ClusterStats::stash_overflow_drops) — it can
  // stall itself, never the server or its neighbors.
  size_t job_stash_limit_bytes = 16 << 20;
};

struct ClusterStats {
  uint64_t progress_bytes = 0;     // protocol traffic over the wire (Fig. 6c)
  uint64_t progress_frames = 0;
  uint64_t data_bytes = 0;         // record-bundle traffic over the wire (Fig. 6a)
  uint64_t data_frames = 0;
  uint64_t reconnects = 0;         // link resets survived (fault injection)
  uint64_t recoveries = 0;         // coordinated cluster restarts survived (§3.4)
  uint64_t checkpoint_epochs = 0;  // cluster checkpoint epochs committed to the manifest
  // Scope attribution of the progress traffic (see DistributedProgressRouter): bytes of
  // emitted updates whose pointstamps live in the root space, bytes of loop-internal
  // updates a per-scope deployment would keep local, and the summarized boundary deltas
  // (ProgressTracker::ScopingStats) that would cross instead. In flat mode everything is
  // cross-scope and boundary bytes are zero.
  uint64_t progress_cross_scope_bytes = 0;
  uint64_t progress_in_scope_bytes = 0;
  uint64_t progress_boundary_bytes = 0;
  uint64_t progress_boundary_updates = 0;
  uint64_t occ_map_peak = 0;       // Σ over processes of the trackers' occurrence peaks
  uint64_t occ_map_peak_root = 0;  // same, root scope only (== occ_map_peak when flat)
  double elapsed_seconds = 0;
  // Merged metrics across all processes; empty unless opts.obs.metrics was set.
  obs::ObsSnapshot obs;
  // Job-server accounting. `jobs` has one entry per registered job (wire traffic summed
  // across processes); the counters below record frames the demux refused to deliver.
  struct JobStats {
    uint32_t job = 0;
    uint64_t data_frames = 0;
    uint64_t data_bytes = 0;
    uint64_t progress_frames = 0;
    uint64_t progress_bytes = 0;
    bool torn_down = false;  // cancelled mid-run rather than drained
  };
  std::vector<JobStats> jobs;
  uint64_t stray_frames_dropped = 0;    // frames for unknown / already-torn-down jobs
  uint64_t stash_overflow_drops = 0;    // pre-registration frames over the stash quota
  uint64_t duplicate_frames_dropped = 0;  // receiver-side dedup hits (seq replay)
  // Selective rollback recovery (src/ft/log_recovery.h). survivor_stall_seconds is the
  // longest any survivor spent paused (stall barrier start → state capture done) — the
  // quantity Fig.-style recovery benchmarks compare against a coordinated restart, where
  // every survivor instead tears down and replays from the checkpoint.
  uint64_t selective_recoveries = 0;
  uint64_t replayed_frames_dropped = 0;   // regenerated frames deduped at survivors
  double survivor_stall_seconds = 0;
  double recovery_downtime_seconds = 0;   // failure detection → victim slot live again
};

// Reads NAIAD_PROGRESS_SCOPING ("flat" / "scoped"); the sweep tests and the CI matrix use
// it to run the same binaries under both progress organizations.
ProgressScoping ProgressScopingFromEnv(
    ProgressScoping def = ProgressScoping::kFlat);

// Per-process cluster control plane: the termination barrier, the checkpoint quiet-point
// barrier, and failure/recovery signalling, all over kControl frames. One instance per
// (Controller, TcpTransport) generation; recovery tears it down with the rest and builds a
// fresh one. Process 0 doubles as the coordinator for both barriers; failure reports go to
// the lowest-ranked survivor.
class ClusterControl {
 public:
  // In job-server mode each job gets its own instance: `job` tags every control frame this
  // instance emits (the server demuxes them back), and `traffic` — the job's wire-traffic
  // accounting — replaces the transport's global counters in the barrier's stability
  // checks, so concurrent jobs' traffic cannot keep each other's barriers from
  // stabilizing. The finished_ latch below is therefore per-job by construction: one job's
  // termination verdict never stops the server from accepting reports for another
  // (ISSUE 8's Finish() bug).
  ClusterControl(Controller* ctl, TcpTransport* transport,
                 DistributedProgressRouter* router, uint32_t job = 0,
                 JobTraffic* traffic = nullptr)
      : ctl_(ctl), transport_(transport), router_(router), job_(job), traffic_(traffic) {}
  ClusterControl(const ClusterControl&) = delete;
  ClusterControl& operator=(const ClusterControl&) = delete;

  // Wire to TcpTransport::Callbacks.on_control. Runs on receive threads (or inline for
  // self-sends).
  void HandleControl(uint32_t src, std::span<const uint8_t> payload);

  // Wire to TcpTransport::Callbacks.on_peer_down (kill-and-recover harness only; the
  // thread-mode Cluster::Run leaves it unset). Reports the suspected death to the lowest
  // surviving process, which broadcasts kRecover; also requests recovery locally at once.
  // Deduplicated; ignored after Finish().
  void ReportFailure(uint32_t victim);
  // Requests recovery directly (supervisor hint path), as if a kRecover frame arrived.
  // The hint may carry the victim (selective mode needs it even when the in-band
  // broadcast was lost).
  void RequestRecovery(uint32_t victim = kNoVictim);

  // Selective mode: failure broadcasts carry the victim (kCtlSelectiveRecover), and the
  // stall/seed machinery below becomes live. Set once, right after construction.
  void SetSelectiveMode(bool on) { selective_mode_.store(on, std::memory_order_release); }
  // The process whose death triggered the pending recovery (first report wins), or
  // kNoVictim when no failure has been attributed yet.
  uint32_t recovery_victim() const {
    return recovery_victim_.load(std::memory_order_acquire);
  }

  // Survivor stall barrier: like the checkpoint barrier's quiet-point rounds, but among
  // the survivors of `victim` on the live (pre-teardown) mesh, with per-link counters —
  // the verdict requires every surviving pair's sent==received per frame type plus the
  // victim's receive link fully drained, so the survivors' paused state is a consistent
  // cut that has absorbed everything the victim ever put on the wire. Coordinator is the
  // lowest survivor. On success the caller's workers are LEFT PAUSED (capture your image,
  // then resume); on failure (timeout, or a peer that never joins) workers are resumed
  // and the caller falls back to coordinated restart.
  bool RunStallBarrier(uint32_t victim);

  // Declares this process out of the selective attempt for the current generation and
  // tells every peer so (kCtlStallAbort). Fallback decisions are LOCAL (a member whose
  // final commit already landed, or whose victim attribution is missing, skips the stall
  // barrier entirely) — without this broadcast a peer already inside RunStallBarrier
  // would wait out the full verdict timeout for a report that is never coming. Sticky
  // for the lifetime of this control object (one generation): once any member aborts,
  // the supervisor can only order a coordinated restart anyway.
  void AbortSelectiveStall();
  bool stall_aborted() const { return stall_aborted_.load(std::memory_order_acquire); }

  // Post-rebuild seed exchange: broadcasts this process's tracker contributions (from
  // RestoreProcessSelective / FreshStartSelective, plus the caller's replay +counts),
  // applies every process's contributions as they arrive, acks to process 0 once all are
  // held, and returns after the coordinator's release — at which point it is safe to
  // Resume() and start emitting deltas. Workers must be paused (Controller::StartPaused)
  // for the duration. False on timeout (a peer died mid-rebuild).
  bool RunSeedExchange(const std::vector<ProgressUpdate>& seeds);

  // Blocks until the cluster-wide two-round stability verdict. Returns true on successful
  // termination (and latches Finish()); false if interrupted by a recovery request. An
  // in-flight successful verdict beats a concurrent recovery request.
  bool RunTerminationBarrier();

  // Drives this process through the cluster checkpoint for `epoch`: quiet-point rounds,
  // then `at_cut(epoch)` (if set) strictly at the global quiet point — every worker in
  // the cluster paused, cluster-wide sent==received verified, no peer resumed yet — then
  // `write_image(epoch)` (must capture and durably publish this process's image and
  // leave the controller resumed — CheckpointProcess + WriteCheckpointFile does), then the
  // durable/commit exchange. On process 0, `write_manifest(epoch)` publishes the manifest
  // once every process has reported durable. Returns true once the commit for `epoch` is
  // received; false if the checkpoint failed or recovery interrupted it. All processes
  // must call this for the same epochs in the same order.
  //
  // at_cut is where selective recovery anchors its log windows (outbound-log truncation
  // and the received-frame watermark): taken any later — e.g. after this call returns —
  // a faster peer's already-resumed feed thread can slide next-epoch frames under the
  // snapshot, and a replacement's replay would then be deduplicated against a watermark
  // the survivor's state does not actually match (double delivery).
  bool RunCheckpointBarrier(uint64_t epoch,
                            const std::function<bool(uint64_t)>& write_image,
                            const std::function<bool(uint64_t)>& write_manifest,
                            const std::function<void(uint64_t)>& at_cut = nullptr);

  // After the termination verdict: ignore all further failure reports and recovery frames
  // (peers' teardown EOFs are not failures once the run is over).
  void Finish();
  bool finished() const { return finished_.load(std::memory_order_acquire); }
  bool recovery_requested() const {
    return recovery_requested_.load(std::memory_order_acquire);
  }
  // Cluster checkpoint epochs this process saw committed (ClusterStats.checkpoint_epochs).
  uint64_t committed_epochs() const {
    return committed_epochs_.load(std::memory_order_relaxed);
  }

 private:
  struct TrafficCounters {
    std::array<uint64_t, 6> v = {};  // sent/received per {data, progress, progress-acc}
    friend bool operator==(const TrafficCounters&, const TrafficCounters&) = default;
  };
  struct Report {
    uint64_t round = 0;
    bool quiet = false;
    TrafficCounters counters;
    bool valid = false;
  };

  // Per-link stall-barrier counters: for each peer q, {sent_to(q), received_from(q)} per
  // {data, progress, progress-acc} — 6 entries per peer, self slots zero.
  struct LinkCounters {
    std::vector<uint64_t> v;
    friend bool operator==(const LinkCounters&, const LinkCounters&) = default;
  };
  struct StallReport {
    uint64_t round = 0;
    bool quiet = false;
    LinkCounters counters;
    bool valid = false;
  };

  TrafficCounters SnapshotCounters() const;
  LinkCounters SnapshotLinkCounters() const;
  void HandleTerminationReport(uint32_t src, ByteReader& r);
  void HandleCheckpointReport(uint32_t src, ByteReader& r);
  void HandleStallReport(uint32_t src, ByteReader& r);
  void BroadcastRecover(uint32_t victim);
  void NoteVictim(uint32_t victim);

  Controller* ctl_;
  TcpTransport* transport_;
  DistributedProgressRouter* router_;
  uint32_t job_;
  JobTraffic* traffic_;

  std::atomic<bool> finished_{false};
  std::atomic<bool> recovery_requested_{false};
  std::atomic<uint64_t> committed_epochs_{0};
  std::atomic<bool> selective_mode_{false};
  std::atomic<uint32_t> recovery_victim_{kNoVictim};

  std::mutex mu_;
  std::condition_variable cv_;
  // Termination verdict (participant side).
  bool term_have_verdict_ = false;
  uint64_t term_verdict_round_ = 0;
  bool term_verdict_ok_ = false;
  // Checkpoint verdict/commit (participant side).
  bool ckpt_have_verdict_ = false;
  uint64_t ckpt_verdict_epoch_ = 0;
  uint64_t ckpt_verdict_round_ = 0;
  bool ckpt_verdict_ok_ = false;
  bool ckpt_have_commit_ = false;
  uint64_t ckpt_commit_epoch_ = 0;
  bool ckpt_commit_ok_ = false;
  std::atomic<bool> stall_aborted_{false};
  // Stall verdict (participant side) and seed-exchange progress.
  bool stall_have_verdict_ = false;
  uint64_t stall_verdict_round_ = 0;
  bool stall_verdict_ok_ = false;
  uint32_t seed_frames_ = 0;    // kCtlSeedState frames applied (incl. own)
  uint32_t seed_acks_ = 0;      // coordinator: processes holding the full seed set
  bool seed_released_ = false;
  // Durable acks (coordinator side, but under mu_: the coordinator's barrier thread
  // cv-waits on them).
  uint64_t durable_epoch_ = ~uint64_t{0};
  uint32_t durable_acks_ = 0;
  bool durable_all_ok_ = true;
  // Coordinator (process 0) report tables for both barriers; touched by receive threads.
  std::mutex coord_mu_;
  std::vector<Report> term_reports_;
  std::vector<Report> term_prev_reports_;
  uint64_t term_round_ = 0;
  std::vector<Report> ckpt_reports_;
  std::vector<Report> ckpt_prev_reports_;
  uint64_t ckpt_epoch_ = ~uint64_t{0};
  // Stall-barrier tables (coordinator = lowest survivor, also under coord_mu_).
  std::vector<StallReport> stall_reports_;
  std::vector<StallReport> stall_prev_reports_;
  uint32_t stall_victim_ = kNoVictim;
  std::atomic<bool> recover_broadcast_{false};
};

class Cluster {
 public:
  // `body(ctl)` runs once per process on its own thread (SPMD): build the dataflow, call
  // ctl.Start(), drive the inputs, and call ctl.Join(). Join participates in the global
  // termination barrier before stopping workers. Returns aggregate traffic statistics.
  // Implemented as a one-job run on the resident JobServer (src/net/job_server.h).
  using Body = std::function<void(Controller&)>;
  static ClusterStats Run(const ClusterOptions& opts, const Body& body);
};

}  // namespace naiad

#endif  // SRC_NET_CLUSTER_H_
