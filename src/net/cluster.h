// Multi-process execution harness.
//
// The paper's deployment is N processes on N computers; this reproduction runs N processes
// as N threads of one binary, each with its own Controller, worker pool, logical graph
// copy (SPMD construction, §3.1), and real TCP connections to every peer. Record exchange,
// serialization, and the distributed progress protocol all cross genuine sockets; only the
// wire is loopback (see DESIGN.md substitution #1). The same control machinery
// (ClusterControl) also drives the forked-process cluster of src/ft/cluster_recovery.h,
// where each "process" really is an OS process that can be SIGKILLed.
//
// Termination uses a two-round stability barrier over control frames: when its tracker is
// globally empty, a process reports its traffic counters to process 0; the coordinator
// declares termination once every process reports empty with counters unchanged since the
// previous round (i.e. nothing happened anywhere in between).
//
// The cluster checkpoint barrier (§3.4) reuses the same machinery to reach a *global quiet
// point* mid-computation: each round, every process pauses-and-drains its workers, flushes
// its progress accumulators, and reports (local-quiet, traffic counters); the coordinator
// declares the cluster quiet once every process is locally quiet, counters are unchanged
// since the previous round, and the cluster-wide sent/received sums match per frame type
// (no frame in flight). Only then does each process serialize its image; process 0 commits
// the checkpoint epoch to the manifest strictly after every process reports its image
// durable, so a torn cluster checkpoint is never adoptable.

#ifndef SRC_NET_CLUSTER_H_
#define SRC_NET_CLUSTER_H_

#include <array>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <vector>

#include "src/core/controller.h"
#include "src/net/progress_router.h"
#include "src/net/transport.h"
#include "src/ser/bytes.h"

namespace naiad {

// Control-frame verbs (first payload byte of every kControl frame). kCtlReport/kCtlVerdict
// drive the termination barrier; kCtlCkpt* drive the cluster checkpoint (quiet-point
// rounds, then the durable/commit exchange); kCtlFailure/kCtlRecover drive the coordinated
// restart of src/ft/cluster_recovery.h; kCtlRegisterJob/kCtlTeardownJob drive the job
// server's dynamic registration (src/net/job_server.h). Shared in the header so the job
// server's demux can recognize its verbs before any per-job ClusterControl exists.
inline constexpr uint8_t kCtlReport = 0;
inline constexpr uint8_t kCtlVerdict = 1;
inline constexpr uint8_t kCtlCkptReport = 2;
inline constexpr uint8_t kCtlCkptVerdict = 3;
inline constexpr uint8_t kCtlCkptDurable = 4;
inline constexpr uint8_t kCtlCkptCommit = 5;
inline constexpr uint8_t kCtlFailure = 6;
inline constexpr uint8_t kCtlRecover = 7;
inline constexpr uint8_t kCtlRegisterJob = 8;
inline constexpr uint8_t kCtlTeardownJob = 9;

struct ClusterOptions {
  uint32_t processes = 2;
  uint32_t workers_per_process = 2;
  ProgressStrategy strategy = ProgressStrategy::kLocalGlobalAcc;
  ProgressScoping scoping = ProgressScoping::kFlat;
  size_t batch_size = 4096;
  uint32_t default_parallelism = 0;
  // Optional fault-injection plan (src/testing/fault.h); must outlive the run. Faults are
  // schedule perturbations only — results must be identical to a fault-free run.
  ClusterFaultPlan* fault_plan = nullptr;
  // Observability toggles, applied to every process. When obs.trace_path is nonempty and
  // tracing is on, one combined Chrome trace-event file (one pid per process) is written
  // there after the run.
  obs::ObsOptions obs;
  // Job-server quota: per process, per job, the bytes of frames buffered for a job that is
  // announced but not yet registered locally. A job exceeding it has further pre-
  // registration frames dropped (counted in ClusterStats::stash_overflow_drops) — it can
  // stall itself, never the server or its neighbors.
  size_t job_stash_limit_bytes = 16 << 20;
};

struct ClusterStats {
  uint64_t progress_bytes = 0;     // protocol traffic over the wire (Fig. 6c)
  uint64_t progress_frames = 0;
  uint64_t data_bytes = 0;         // record-bundle traffic over the wire (Fig. 6a)
  uint64_t data_frames = 0;
  uint64_t reconnects = 0;         // link resets survived (fault injection)
  uint64_t recoveries = 0;         // coordinated cluster restarts survived (§3.4)
  uint64_t checkpoint_epochs = 0;  // cluster checkpoint epochs committed to the manifest
  // Scope attribution of the progress traffic (see DistributedProgressRouter): bytes of
  // emitted updates whose pointstamps live in the root space, bytes of loop-internal
  // updates a per-scope deployment would keep local, and the summarized boundary deltas
  // (ProgressTracker::ScopingStats) that would cross instead. In flat mode everything is
  // cross-scope and boundary bytes are zero.
  uint64_t progress_cross_scope_bytes = 0;
  uint64_t progress_in_scope_bytes = 0;
  uint64_t progress_boundary_bytes = 0;
  uint64_t progress_boundary_updates = 0;
  uint64_t occ_map_peak = 0;       // Σ over processes of the trackers' occurrence peaks
  uint64_t occ_map_peak_root = 0;  // same, root scope only (== occ_map_peak when flat)
  double elapsed_seconds = 0;
  // Merged metrics across all processes; empty unless opts.obs.metrics was set.
  obs::ObsSnapshot obs;
  // Job-server accounting. `jobs` has one entry per registered job (wire traffic summed
  // across processes); the counters below record frames the demux refused to deliver.
  struct JobStats {
    uint32_t job = 0;
    uint64_t data_frames = 0;
    uint64_t data_bytes = 0;
    uint64_t progress_frames = 0;
    uint64_t progress_bytes = 0;
    bool torn_down = false;  // cancelled mid-run rather than drained
  };
  std::vector<JobStats> jobs;
  uint64_t stray_frames_dropped = 0;    // frames for unknown / already-torn-down jobs
  uint64_t stash_overflow_drops = 0;    // pre-registration frames over the stash quota
  uint64_t duplicate_frames_dropped = 0;  // receiver-side dedup hits (seq replay)
};

// Reads NAIAD_PROGRESS_SCOPING ("flat" / "scoped"); the sweep tests and the CI matrix use
// it to run the same binaries under both progress organizations.
ProgressScoping ProgressScopingFromEnv(
    ProgressScoping def = ProgressScoping::kFlat);

// Per-process cluster control plane: the termination barrier, the checkpoint quiet-point
// barrier, and failure/recovery signalling, all over kControl frames. One instance per
// (Controller, TcpTransport) generation; recovery tears it down with the rest and builds a
// fresh one. Process 0 doubles as the coordinator for both barriers; failure reports go to
// the lowest-ranked survivor.
class ClusterControl {
 public:
  // In job-server mode each job gets its own instance: `job` tags every control frame this
  // instance emits (the server demuxes them back), and `traffic` — the job's wire-traffic
  // accounting — replaces the transport's global counters in the barrier's stability
  // checks, so concurrent jobs' traffic cannot keep each other's barriers from
  // stabilizing. The finished_ latch below is therefore per-job by construction: one job's
  // termination verdict never stops the server from accepting reports for another
  // (ISSUE 8's Finish() bug).
  ClusterControl(Controller* ctl, TcpTransport* transport,
                 DistributedProgressRouter* router, uint32_t job = 0,
                 JobTraffic* traffic = nullptr)
      : ctl_(ctl), transport_(transport), router_(router), job_(job), traffic_(traffic) {}
  ClusterControl(const ClusterControl&) = delete;
  ClusterControl& operator=(const ClusterControl&) = delete;

  // Wire to TcpTransport::Callbacks.on_control. Runs on receive threads (or inline for
  // self-sends).
  void HandleControl(uint32_t src, std::span<const uint8_t> payload);

  // Wire to TcpTransport::Callbacks.on_peer_down (kill-and-recover harness only; the
  // thread-mode Cluster::Run leaves it unset). Reports the suspected death to the lowest
  // surviving process, which broadcasts kRecover; also requests recovery locally at once.
  // Deduplicated; ignored after Finish().
  void ReportFailure(uint32_t victim);
  // Requests recovery directly (supervisor hint path), as if a kRecover frame arrived.
  void RequestRecovery();

  // Blocks until the cluster-wide two-round stability verdict. Returns true on successful
  // termination (and latches Finish()); false if interrupted by a recovery request. An
  // in-flight successful verdict beats a concurrent recovery request.
  bool RunTerminationBarrier();

  // Drives this process through the cluster checkpoint for `epoch`: quiet-point rounds,
  // then `write_image(epoch)` (must capture and durably publish this process's image and
  // leave the controller resumed — CheckpointProcess + WriteCheckpointFile does), then the
  // durable/commit exchange. On process 0, `write_manifest(epoch)` publishes the manifest
  // once every process has reported durable. Returns true once the commit for `epoch` is
  // received; false if the checkpoint failed or recovery interrupted it. All processes
  // must call this for the same epochs in the same order.
  bool RunCheckpointBarrier(uint64_t epoch,
                            const std::function<bool(uint64_t)>& write_image,
                            const std::function<bool(uint64_t)>& write_manifest);

  // After the termination verdict: ignore all further failure reports and recovery frames
  // (peers' teardown EOFs are not failures once the run is over).
  void Finish();
  bool finished() const { return finished_.load(std::memory_order_acquire); }
  bool recovery_requested() const {
    return recovery_requested_.load(std::memory_order_acquire);
  }
  // Cluster checkpoint epochs this process saw committed (ClusterStats.checkpoint_epochs).
  uint64_t committed_epochs() const {
    return committed_epochs_.load(std::memory_order_relaxed);
  }

 private:
  struct TrafficCounters {
    std::array<uint64_t, 6> v = {};  // sent/received per {data, progress, progress-acc}
    friend bool operator==(const TrafficCounters&, const TrafficCounters&) = default;
  };
  struct Report {
    uint64_t round = 0;
    bool quiet = false;
    TrafficCounters counters;
    bool valid = false;
  };

  TrafficCounters SnapshotCounters() const;
  void HandleTerminationReport(uint32_t src, ByteReader& r);
  void HandleCheckpointReport(uint32_t src, ByteReader& r);
  void BroadcastRecover(uint32_t victim);

  Controller* ctl_;
  TcpTransport* transport_;
  DistributedProgressRouter* router_;
  uint32_t job_;
  JobTraffic* traffic_;

  std::atomic<bool> finished_{false};
  std::atomic<bool> recovery_requested_{false};
  std::atomic<uint64_t> committed_epochs_{0};

  std::mutex mu_;
  std::condition_variable cv_;
  // Termination verdict (participant side).
  bool term_have_verdict_ = false;
  uint64_t term_verdict_round_ = 0;
  bool term_verdict_ok_ = false;
  // Checkpoint verdict/commit (participant side).
  bool ckpt_have_verdict_ = false;
  uint64_t ckpt_verdict_epoch_ = 0;
  uint64_t ckpt_verdict_round_ = 0;
  bool ckpt_verdict_ok_ = false;
  bool ckpt_have_commit_ = false;
  uint64_t ckpt_commit_epoch_ = 0;
  bool ckpt_commit_ok_ = false;
  // Durable acks (coordinator side, but under mu_: the coordinator's barrier thread
  // cv-waits on them).
  uint64_t durable_epoch_ = ~uint64_t{0};
  uint32_t durable_acks_ = 0;
  bool durable_all_ok_ = true;
  // Coordinator (process 0) report tables for both barriers; touched by receive threads.
  std::mutex coord_mu_;
  std::vector<Report> term_reports_;
  std::vector<Report> term_prev_reports_;
  uint64_t term_round_ = 0;
  std::vector<Report> ckpt_reports_;
  std::vector<Report> ckpt_prev_reports_;
  uint64_t ckpt_epoch_ = ~uint64_t{0};
  std::atomic<bool> recover_broadcast_{false};
};

class Cluster {
 public:
  // `body(ctl)` runs once per process on its own thread (SPMD): build the dataflow, call
  // ctl.Start(), drive the inputs, and call ctl.Join(). Join participates in the global
  // termination barrier before stopping workers. Returns aggregate traffic statistics.
  // Implemented as a one-job run on the resident JobServer (src/net/job_server.h).
  using Body = std::function<void(Controller&)>;
  static ClusterStats Run(const ClusterOptions& opts, const Body& body);
};

}  // namespace naiad

#endif  // SRC_NET_CLUSTER_H_
