#include "src/net/progress_router.h"

#include "src/ser/codec.h"

namespace naiad {

std::vector<uint8_t> DistributedProgressRouter::EncodeUpdates(
    const std::vector<ProgressUpdate>& ups) {
  ByteWriter w;
  Codec<std::vector<ProgressUpdate>>::Encode(w, ups);
  return std::move(w.buffer());
}

std::vector<ProgressUpdate> DistributedProgressRouter::DecodeUpdates(
    std::span<const uint8_t> payload) {
  ByteReader r(payload);
  std::vector<ProgressUpdate> ups;
  NAIAD_CHECK(Codec<std::vector<ProgressUpdate>>::Decode(r, ups));
  return ups;
}

void DistributedProgressRouter::AccountScopes(const std::vector<ProgressUpdate>& updates) {
  const bool scoped = ctl_->config().scoping == ProgressScoping::kScoped &&
                      ctl_->graph().frozen();
  uint64_t cross = 0;
  uint64_t in_scope = 0;
  for (const ProgressUpdate& u : updates) {
    const uint64_t bytes = EncodedProgressUpdateBytes(u.point);
    if (scoped && ctl_->graph().ScopeOf(u.point.loc) != 0) {
      in_scope += bytes;
    } else {
      cross += bytes;
    }
  }
  cross_scope_update_bytes_.fetch_add(cross, std::memory_order_relaxed);
  in_scope_update_bytes_.fetch_add(in_scope, std::memory_order_relaxed);
}

void DistributedProgressRouter::Broadcast(std::vector<ProgressUpdate> updates) {
  if (updates.empty()) {
    return;
  }
  switch (strategy_) {
    case ProgressStrategy::kDirect:
    case ProgressStrategy::kGlobalAcc:
      Emit(std::move(updates));
      return;
    case ProgressStrategy::kLocalAcc:
    case ProgressStrategy::kLocalGlobalAcc: {
      bool flush;
      {
        std::lock_guard<std::mutex> lock(local_mu_);
        AddToBuffer(local_buf_, updates);
        flush = !SafeToHold(local_buf_);
      }
      // An early flush is always safe (holding is the optimization); injecting one
      // exercises schedules where the accumulator releases mid-burst.
      if (!flush && faults_ != nullptr && faults_->ForceEarlyFlush()) {
        flush = true;
      }
      if (flush) {
        FlushLocal();
      }
      return;
    }
  }
}

void DistributedProgressRouter::Emit(std::vector<ProgressUpdate> updates) {
  if (updates.empty()) {
    return;
  }
  if (faults_ != nullptr) {
    faults_->PerturbFlushBatch(updates);
  }
  if (obs::ProcessMetrics* m = ctl_->obs().metrics().process()) {
    m->progress_emit_updates.Record(updates.size());
  }
  AccountScopes(updates);
  std::vector<uint8_t> payload = EncodeUpdates(updates);
  const bool to_central = strategy_ == ProgressStrategy::kGlobalAcc ||
                          strategy_ == ProgressStrategy::kLocalGlobalAcc;
  if (to_central) {
    transport_->Send(0, FrameType::kProgressAcc, std::move(payload), job_, acct_);
  } else {
    transport_->BroadcastFrame(FrameType::kProgress, payload, /*include_self=*/true, job_,
                               acct_);
  }
}

void DistributedProgressRouter::EmitFromCentral(std::vector<ProgressUpdate> updates) {
  if (updates.empty()) {
    return;
  }
  if (faults_ != nullptr) {
    faults_->PerturbFlushBatch(updates);
  }
  if (obs::ProcessMetrics* m = ctl_->obs().metrics().process()) {
    m->progress_emit_updates.Record(updates.size());
  }
  AccountScopes(updates);
  std::vector<uint8_t> payload = EncodeUpdates(updates);
  transport_->BroadcastFrame(FrameType::kProgress, payload, /*include_self=*/true, job_,
                             acct_);
}

void DistributedProgressRouter::OnProgressFrame(uint32_t /*src*/,
                                                std::span<const uint8_t> payload) {
  ctl_->tracker().Apply(DecodeUpdates(payload));
}

void DistributedProgressRouter::OnAccumulatorFrame(uint32_t /*src*/,
                                                   std::span<const uint8_t> payload) {
  NAIAD_CHECK(IsCentral());
  std::vector<ProgressUpdate> ups = DecodeUpdates(payload);
  bool flush;
  {
    std::lock_guard<std::mutex> lock(central_mu_);
    AddToBuffer(central_buf_, ups);
    flush = !SafeToHold(central_buf_);
  }
  if (!flush && faults_ != nullptr && faults_->ForceEarlyFlush()) {
    flush = true;
  }
  if (flush) {
    FlushCentral();
  }
}

void DistributedProgressRouter::OnWorkerIdle() {
  // Idle flushes may be deferred (boundedly) by the fault hook: idle workers re-poll on
  // the eventcount timeout, so a deferred flush is retried until the hook lets it pass.
  if (faults_ != nullptr && !faults_->BeforeIdleFlush()) {
    return;
  }
  FlushAll();
}

void DistributedProgressRouter::FlushAll() {
  FlushLocal();
  if (IsCentral()) {
    FlushCentral();
  }
}

bool DistributedProgressRouter::Empty() const {
  {
    std::lock_guard<std::mutex> lock(local_mu_);
    if (!local_buf_.empty()) {
      return false;
    }
  }
  std::lock_guard<std::mutex> lock(central_mu_);
  return central_buf_.empty();
}

void DistributedProgressRouter::AddToBuffer(std::map<Pointstamp, int64_t>& buf,
                                            std::span<const ProgressUpdate> ups) {
  for (const ProgressUpdate& u : ups) {
    int64_t& d = buf[u.point];
    d += u.delta;
    if (d == 0) {
      buf.erase(u.point);
    }
  }
}

bool DistributedProgressRouter::SafeToHold(const std::map<Pointstamp, int64_t>& buf) const {
  if (buf.size() > hold_limit_) {
    return false;
  }
  const ProgressTracker& tracker = ctl_->tracker();
  for (const auto& [p, delta] : buf) {
    if (delta <= 0) {
      continue;  // delaying retirements only makes other frontiers conservative
    }
    // A new event at p may be hidden only while p is already known active, or while some
    // other active pointstamp could-result-in p (§3.3's two conditions).
    if (tracker.Count(p) > 0) {
      continue;
    }
    if (!tracker.CanDeliver(p)) {
      continue;  // an active dominator exists
    }
    return false;
  }
  return true;
}

std::vector<ProgressUpdate> DistributedProgressRouter::TakeBuffer(
    std::map<Pointstamp, int64_t>& buf) {
  std::vector<ProgressUpdate> out;
  out.reserve(buf.size());
  for (const auto& [p, d] : buf) {
    if (d > 0) {
      out.push_back({p, d});
    }
  }
  for (const auto& [p, d] : buf) {
    if (d < 0) {
      out.push_back({p, d});
    }
  }
  buf.clear();
  return out;
}

void DistributedProgressRouter::FlushLocal() {
  std::vector<ProgressUpdate> ups;
  {
    std::lock_guard<std::mutex> lock(local_mu_);
    if (local_buf_.empty()) {
      return;
    }
    ups = TakeBuffer(local_buf_);
  }
  Emit(std::move(ups));
}

void DistributedProgressRouter::FlushCentral() {
  std::vector<ProgressUpdate> ups;
  {
    std::lock_guard<std::mutex> lock(central_mu_);
    if (central_buf_.empty()) {
      return;
    }
    ups = TakeBuffer(central_buf_);
  }
  EmitFromCentral(std::move(ups));
}

}  // namespace naiad
