// The distributed progress-tracking protocol (§3.3).
//
// Workers hand their flushed (pointstamp, delta) batches to this router, which must ensure
// every process's tracker eventually applies them. Four strategies reproduce Fig. 6c:
//
//   kDirect          every worker flush is broadcast to all processes immediately ("None").
//   kLocalAcc        flushes accumulate in a per-process buffer first.
//   kGlobalAcc       flushes go to a central accumulator (process 0) which broadcasts the
//                    combined net effect.
//   kLocalGlobalAcc  both levels, the Naiad default.
//
// Accumulators hold an update for pointstamp p only while it is safe (§3.3): a negative
// delta is always safe to delay (other workers merely overestimate activity), and a
// positive delta is safe while p is already active locally or while some other active
// pointstamp could-result-in p (so no frontier decision depends on p yet). Any violation —
// or a worker running out of work — flushes the whole buffer, positives first (the
// ProgressBuffer ordering).

#ifndef SRC_NET_PROGRESS_ROUTER_H_
#define SRC_NET_PROGRESS_ROUTER_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <span>
#include <vector>

#include "src/core/controller.h"
#include "src/core/progress.h"
#include "src/net/fault_hooks.h"
#include "src/net/transport.h"

namespace naiad {

enum class ProgressStrategy : uint8_t {
  kDirect = 0,
  kLocalAcc = 1,
  kGlobalAcc = 2,
  kLocalGlobalAcc = 3,
};

inline const char* ToString(ProgressStrategy s) {
  switch (s) {
    case ProgressStrategy::kDirect:
      return "None";
    case ProgressStrategy::kLocalAcc:
      return "LocalAcc";
    case ProgressStrategy::kGlobalAcc:
      return "GlobalAcc";
    case ProgressStrategy::kLocalGlobalAcc:
      return "Local+GlobalAcc";
  }
  return "?";
}

class DistributedProgressRouter final : public ProgressRouter {
 public:
  // `faults` (optional, test-only) perturbs flush timing and intra-batch order within the
  // §3.3 safety rule; see src/net/fault_hooks.h.
  DistributedProgressRouter(Controller* ctl, TcpTransport* transport,
                            ProgressStrategy strategy, size_t hold_limit = 1024,
                            ProgressFaultHook* faults = nullptr)
      : ctl_(ctl),
        transport_(transport),
        strategy_(strategy),
        hold_limit_(hold_limit),
        faults_(faults) {}

  // Job-server mode: tag every emitted frame with `job` and credit it to `acct` so the
  // server can split progress traffic per job. Must be set before Start() exposes the
  // router to concurrent use.
  void SetJobAccounting(uint32_t job, JobTraffic* acct) {
    job_ = job;
    acct_ = acct;
  }

  // From local workers (and input handles).
  void Broadcast(std::vector<ProgressUpdate> updates) override;
  void OnWorkerIdle() override;

  // Unconditional flush of every held update, bypassing any fault-injected deferral. The
  // termination barrier must use this: its report reads the tracker immediately after the
  // flush, and a deferred flush there could hide updates from the stability check.
  void FlushAll();

  // Transport receive paths.
  void OnProgressFrame(uint32_t src, std::span<const uint8_t> payload);
  void OnAccumulatorFrame(uint32_t src, std::span<const uint8_t> payload);

  // True when neither accumulator level holds any update. The cluster checkpoint barrier
  // uses this as part of its local-quiet predicate: a held update is in-flight progress
  // traffic even though no frame carries it yet.
  //
  // Recovery note: restored pending-notification +1s (RestoreProcess's deferred updates)
  // are injected through the ordinary Broadcast() above, NOT through a bespoke direct
  // frame. That is what makes them safe: they then travel the same channel, in FIFO order,
  // as the -1 this process later emits when it re-feeds its open input epoch — so no peer
  // can retire the open-input pointstamp (the only guard dominating the restored
  // notifications) before it has applied the +1s.
  bool Empty() const;

  // Scope attribution of the emitted updates (bench/fig6c accounting). An update is
  // cross-scope when its pointstamp lives in the root space — it must reach every
  // process's global tracker no matter how progress is organized. An update at a loop-
  // internal location is in-scope: under scoped tracking its occurrence count lives in a
  // per-scope map and only the (cheaper) summarized boundary deltas, counted by
  // ProgressTracker::ScopingStats, would cross; the flat broadcast carrying it anyway is
  // precisely the overhead §3.3's single space pays. Flat mode attributes everything
  // cross-scope, so flat numbers are the whole-protocol baseline.
  uint64_t cross_scope_update_bytes() const {
    return cross_scope_update_bytes_.load(std::memory_order_relaxed);
  }
  uint64_t in_scope_update_bytes() const {
    return in_scope_update_bytes_.load(std::memory_order_relaxed);
  }

  // Wire form of a progress-update batch; the selective-recovery seed exchange
  // (ClusterControl::RunSeedExchange) reuses it for kCtlSeedState payloads.
  static std::vector<uint8_t> EncodeUpdates(const std::vector<ProgressUpdate>& ups);
  static std::vector<ProgressUpdate> DecodeUpdates(std::span<const uint8_t> payload);

 private:
  bool IsCentral() const { return ctl_->config().process_id == 0; }

  void AccountScopes(const std::vector<ProgressUpdate>& updates);

  // Serializes and emits `updates` one level up: to all processes (direct) or to the
  // central accumulator, depending on the strategy.
  void Emit(std::vector<ProgressUpdate> updates);
  // Central accumulator output: broadcast to every process including self.
  void EmitFromCentral(std::vector<ProgressUpdate> updates);

  void AddToBuffer(std::map<Pointstamp, int64_t>& buf, std::span<const ProgressUpdate> ups);
  bool SafeToHold(const std::map<Pointstamp, int64_t>& buf) const;
  std::vector<ProgressUpdate> TakeBuffer(std::map<Pointstamp, int64_t>& buf);

  void FlushLocal();
  void FlushCentral();

  Controller* ctl_;
  TcpTransport* transport_;
  ProgressStrategy strategy_;
  size_t hold_limit_;
  ProgressFaultHook* faults_;
  uint32_t job_ = 0;
  JobTraffic* acct_ = nullptr;

  mutable std::mutex local_mu_;
  std::map<Pointstamp, int64_t> local_buf_;

  mutable std::mutex central_mu_;  // process 0 only
  std::map<Pointstamp, int64_t> central_buf_;

  std::atomic<uint64_t> cross_scope_update_bytes_{0};
  std::atomic<uint64_t> in_scope_update_bytes_{0};
};

}  // namespace naiad

#endif  // SRC_NET_PROGRESS_ROUTER_H_
