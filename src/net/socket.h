// RAII POSIX TCP sockets (§3.5 "Networking").
//
// Naiad's remote channels are long-lived TCP connections with Nagle's algorithm disabled —
// the paper found the default Nagle/delayed-ACK interaction added 200 ms stalls to small
// tail messages. We set TCP_NODELAY on every connection for the same reason. Loopback is
// the wire in this reproduction, but the code path (connect/accept, framing, full
// reads/writes, EOF handling) is exactly what a physical cluster would run.

#ifndef SRC_NET_SOCKET_H_
#define SRC_NET_SOCKET_H_

#include <cstdint>
#include <span>
#include <vector>

namespace naiad {

class Socket {
 public:
  Socket() = default;
  explicit Socket(int fd) : fd_(fd) {}
  ~Socket() { Close(); }
  Socket(Socket&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }
  Socket& operator=(Socket&& other) noexcept;
  Socket(const Socket&) = delete;
  Socket& operator=(const Socket&) = delete;

  bool valid() const { return fd_ >= 0; }
  int fd() const { return fd_; }

  // Writes the whole buffer; returns false on error/peer close.
  bool WriteAll(std::span<const uint8_t> data);
  // Reads exactly data.size() bytes; returns false on EOF/error.
  bool ReadAll(std::span<uint8_t> data);

  void SetNoDelay();
  // Unblocks any reader/writer, then closes.
  void ShutdownBoth();
  void Close();

  // Connects to 127.0.0.1:port (retrying briefly while the listener comes up).
  static Socket ConnectLocal(uint16_t port);

 private:
  int fd_ = -1;
};

class Listener {
 public:
  Listener() = default;
  ~Listener() { Close(); }
  Listener(Listener&&) noexcept;
  Listener& operator=(Listener&&) noexcept;
  Listener(const Listener&) = delete;
  Listener& operator=(const Listener&) = delete;

  // Binds 127.0.0.1 on an ephemeral port; returns the chosen port (0 on failure).
  uint16_t Open();
  Socket Accept();
  void Close();
  bool valid() const { return fd_ >= 0; }

 private:
  int fd_ = -1;
};

}  // namespace naiad

#endif  // SRC_NET_SOCKET_H_
