// RAII POSIX TCP sockets (§3.5 "Networking").
//
// Naiad's remote channels are long-lived TCP connections with Nagle's algorithm disabled —
// the paper found the default Nagle/delayed-ACK interaction added 200 ms stalls to small
// tail messages. We set TCP_NODELAY on every connection for the same reason. Loopback is
// the wire in this reproduction, but the code path (connect/accept, framing, full
// reads/writes, EOF handling) is exactly what a physical cluster would run.

#ifndef SRC_NET_SOCKET_H_
#define SRC_NET_SOCKET_H_

#include <sys/uio.h>

#include <cstddef>
#include <cstdint>
#include <limits>
#include <span>
#include <vector>

namespace naiad {

// Fault injection (src/testing/fault.h): constraints applied to one send() attempt.
// `max_len` caps how many bytes this step may write (forcing partial writes),
// `delay_us` stalls the sender first, and `zero_writes` issues that many zero-byte
// send() calls before the real one — the syscall-level shape of an EINTR/EAGAIN storm,
// re-entering WriteAll's retry loop without changing what ultimately reaches the wire.
struct WriteStep {
  uint32_t delay_us = 0;
  size_t max_len = std::numeric_limits<size_t>::max();
  uint32_t zero_writes = 0;
};

// Consulted by Socket::WriteAll before every send() attempt when installed. All faults are
// FIFO- and content-preserving: the receiver observes identical bytes in identical order,
// only the syscall schedule changes.
class WriteFaultHook {
 public:
  virtual ~WriteFaultHook() = default;
  virtual WriteStep Next(size_t remaining) = 0;
};

// Fault injection: constraints applied to one recv() attempt. `max_len` caps how many
// bytes this step may read (torn reads that split a frame into seeded chunks),
// `delay_us` stalls the receiver first, and `eintr_spins` re-enters ReadExact's retry
// loop that many times with a sched yield but no syscall — the in-process model of an
// EINTR storm. (The write side models EINTR with real zero-byte send()s; recv(fd, buf, 0)
// may legally return 0, which is indistinguishable from EOF, so the read side models the
// interruption without the syscall.) None of this changes which bytes arrive or in what
// order.
struct ReadStep {
  uint32_t delay_us = 0;
  size_t max_len = std::numeric_limits<size_t>::max();
  uint32_t eintr_spins = 0;
};

// Consulted by Socket::ReadExact before every recv() attempt when installed.
class ReadFaultHook {
 public:
  virtual ~ReadFaultHook() = default;
  virtual ReadStep Next(size_t remaining) = 0;
};

// Outcome of Socket::ReadExact. The distinction that matters to framed protocols: a peer
// close before the *first* byte of the span is a clean boundary (kEof); any EOF or errno
// failure after partial progress is a torn read and must never be surfaced as a short
// success. `err` carries the errno of a failed syscall (0 for EOF outcomes), so callers
// can tell a connection reset landing on a frame boundary (bytes_read == 0,
// err == ECONNRESET) from a torn frame.
struct ReadResult {
  enum class Status : uint8_t { kOk, kEof, kError };
  Status status = Status::kOk;
  size_t bytes_read = 0;
  int err = 0;
  bool ok() const { return status == Status::kOk; }
};

class Socket {
 public:
  Socket() = default;
  explicit Socket(int fd) : fd_(fd) {}
  ~Socket() { Close(); }
  Socket(Socket&& other) noexcept
      : fd_(other.fd_),
        write_faults_(other.write_faults_),
        read_faults_(other.read_faults_) {
    other.fd_ = -1;
    other.write_faults_ = nullptr;
    other.read_faults_ = nullptr;
  }
  Socket& operator=(Socket&& other) noexcept;
  Socket(const Socket&) = delete;
  Socket& operator=(const Socket&) = delete;

  bool valid() const { return fd_ >= 0; }
  int fd() const { return fd_; }

  // Writes the whole buffer; returns false on error/peer close.
  bool WriteAll(std::span<const uint8_t> data);
  // Gathered write: transmits every iovec in order with as few syscalls as the kernel
  // allows; returns false on error/peer close. Write faults apply exactly as in WriteAll
  // (each attempt is capped by the step's max_len, so injected partial writes can tear
  // across iovec boundaries).
  bool WritevAll(std::span<const iovec> iov);
  // Reads exactly data.size() bytes; returns false on EOF/error.
  bool ReadAll(std::span<uint8_t> data) { return ReadExact(data).ok(); }
  // Reads exactly data.size() bytes, classifying the failure modes (see ReadResult):
  // clean EOF strictly means zero bytes of this span arrived before the orderly close.
  ReadResult ReadExact(std::span<uint8_t> data);

  void SetNoDelay();
  // Unblocks any reader/writer, then closes.
  void ShutdownBoth();
  void Close();

  // Installs (or clears, with nullptr) a fault hook consulted on every WriteAll step.
  // Non-owning; the hook must outlive the socket's use. Only the writing thread may call
  // WriteAll while a hook is installed.
  void SetWriteFaults(WriteFaultHook* hook) { write_faults_ = hook; }
  // Same contract for the read side: consulted on every ReadExact step; only the reading
  // thread may call ReadExact while a hook is installed.
  void SetReadFaults(ReadFaultHook* hook) { read_faults_ = hook; }

  // Connects to 127.0.0.1:port (retrying briefly while the listener comes up).
  static Socket ConnectLocal(uint16_t port);

 private:
  int fd_ = -1;
  WriteFaultHook* write_faults_ = nullptr;
  ReadFaultHook* read_faults_ = nullptr;
};

class Listener {
 public:
  Listener() = default;
  ~Listener() { Close(); }
  Listener(Listener&&) noexcept;
  Listener& operator=(Listener&&) noexcept;
  Listener(const Listener&) = delete;
  Listener& operator=(const Listener&) = delete;

  // Binds 127.0.0.1 on an ephemeral port; returns the chosen port (0 on failure).
  uint16_t Open() { return Open(0); }
  // Binds 127.0.0.1 on `port` (0 = ephemeral); returns the bound port (0 on failure).
  // SO_REUSEADDR lets a recovering process rebind its published port while the previous
  // generation's connections linger in TIME_WAIT.
  uint16_t Open(uint16_t port);
  Socket Accept();
  // Unblocks a concurrent Accept() (which then returns an invalid Socket) without
  // releasing the fd; callers then join the accepting thread before Close().
  void Shutdown();
  void Close();
  bool valid() const { return fd_ >= 0; }

 private:
  int fd_ = -1;
};

}  // namespace naiad

#endif  // SRC_NET_SOCKET_H_
