#include "src/net/cluster.h"

#include "src/net/job_server.h"

#include <chrono>
#include <cstdlib>
#include <memory>
#include <string>
#include <thread>

#include "src/base/stopwatch.h"
#include "src/ser/bytes.h"

namespace naiad {

namespace {

// Barrier waits poll so a concurrent recovery request is never missed (matches the
// ProgressTracker::WaitFor cadence).
constexpr auto kPoll = std::chrono::milliseconds(1);

}  // namespace

ClusterControl::TrafficCounters ClusterControl::SnapshotCounters() const {
  TrafficCounters c;
  if (traffic_ != nullptr) {
    // Job-server mode: only this job's wire traffic feeds the stability check, so another
    // job's concurrent chatter cannot keep this barrier from stabilizing (and a quiet job
    // cannot be declared stable while its own frames are still in flight).
    const auto sent = [&](FrameType t) {
      return traffic_->frames_sent[static_cast<size_t>(t)].load(std::memory_order_relaxed);
    };
    const auto recv = [&](FrameType t) {
      return traffic_->frames_received[static_cast<size_t>(t)].load(
          std::memory_order_relaxed);
    };
    c.v = {sent(FrameType::kData),        recv(FrameType::kData),
           sent(FrameType::kProgress),    recv(FrameType::kProgress),
           sent(FrameType::kProgressAcc), recv(FrameType::kProgressAcc)};
    return c;
  }
  const TcpTransport& t = *transport_;
  c.v = {t.frames_sent(FrameType::kData),        t.frames_received(FrameType::kData),
         t.frames_sent(FrameType::kProgress),    t.frames_received(FrameType::kProgress),
         t.frames_sent(FrameType::kProgressAcc), t.frames_received(FrameType::kProgressAcc)};
  return c;
}

void ClusterControl::HandleControl(uint32_t src, std::span<const uint8_t> payload) {
  ByteReader r(payload);
  const uint8_t kind = r.ReadU8();
  switch (kind) {
    case kCtlVerdict: {
      const uint64_t round = r.ReadU64();
      const bool ok = r.ReadU8() != 0;
      NAIAD_CHECK(r.ok());
      {
        std::lock_guard<std::mutex> lock(mu_);
        term_verdict_round_ = round;
        term_verdict_ok_ = ok;
        term_have_verdict_ = true;
      }
      cv_.notify_all();
      return;
    }
    case kCtlReport:
      HandleTerminationReport(src, r);
      return;
    case kCtlCkptReport:
      HandleCheckpointReport(src, r);
      return;
    case kCtlCkptVerdict: {
      const uint64_t epoch = r.ReadU64();
      const uint64_t round = r.ReadU64();
      const bool ok = r.ReadU8() != 0;
      NAIAD_CHECK(r.ok());
      {
        std::lock_guard<std::mutex> lock(mu_);
        ckpt_verdict_epoch_ = epoch;
        ckpt_verdict_round_ = round;
        ckpt_verdict_ok_ = ok;
        ckpt_have_verdict_ = true;
      }
      cv_.notify_all();
      return;
    }
    case kCtlCkptDurable: {
      const uint64_t epoch = r.ReadU64();
      const bool ok = r.ReadU8() != 0;
      NAIAD_CHECK(r.ok());
      NAIAD_CHECK(transport_->process_id() == 0);  // durables only go to the coordinator
      {
        std::lock_guard<std::mutex> lock(mu_);
        if (epoch != durable_epoch_) {
          durable_epoch_ = epoch;
          durable_acks_ = 0;
          durable_all_ok_ = true;
        }
        ++durable_acks_;
        if (!ok) {
          durable_all_ok_ = false;
        }
      }
      cv_.notify_all();
      return;
    }
    case kCtlCkptCommit: {
      const uint64_t epoch = r.ReadU64();
      const bool ok = r.ReadU8() != 0;
      NAIAD_CHECK(r.ok());
      {
        std::lock_guard<std::mutex> lock(mu_);
        ckpt_commit_epoch_ = epoch;
        ckpt_commit_ok_ = ok;
        ckpt_have_commit_ = true;
      }
      cv_.notify_all();
      return;
    }
    case kCtlFailure: {
      const uint32_t victim = r.ReadU32();
      NAIAD_CHECK(r.ok());
      if (!finished()) {
        BroadcastRecover(victim);
      }
      return;
    }
    case kCtlRecover: {
      r.ReadU32();  // victim; informational only
      NAIAD_CHECK(r.ok());
      if (!finished()) {
        recovery_requested_.store(true, std::memory_order_release);
        cv_.notify_all();
      }
      return;
    }
    default:
      NAIAD_CHECK(false);
  }
}

void ClusterControl::HandleTerminationReport(uint32_t src, ByteReader& r) {
  NAIAD_CHECK(transport_->process_id() == 0);  // reports only go to process 0
  Report rep;
  rep.round = r.ReadU64();
  rep.quiet = r.ReadU8() != 0;
  for (uint64_t& c : rep.counters.v) {
    c = r.ReadU64();
  }
  rep.valid = true;
  NAIAD_CHECK(r.ok());

  std::vector<uint8_t> verdict_payload;
  {
    std::lock_guard<std::mutex> lock(coord_mu_);
    const uint32_t n = transport_->processes();
    term_reports_.resize(n);
    term_prev_reports_.resize(n);
    term_reports_[src] = rep;
    for (const Report& existing : term_reports_) {
      if (!existing.valid || existing.round != term_round_) {
        return;
      }
    }
    bool ok = true;
    for (uint32_t p = 0; p < n; ++p) {
      const Report& cur = term_reports_[p];
      const Report& prev = term_prev_reports_[p];
      if (!cur.quiet || !prev.valid || !(cur.counters == prev.counters)) {
        ok = false;
        break;
      }
    }
    term_prev_reports_ = term_reports_;
    for (Report& existing : term_reports_) {
      existing.valid = false;
    }
    ByteWriter w(&verdict_payload);
    w.WriteU8(kCtlVerdict);
    w.WriteU64(term_round_);
    w.WriteU8(ok ? 1 : 0);
    ++term_round_;
  }
  transport_->BroadcastFrame(FrameType::kControl, verdict_payload, /*include_self=*/true,
                             job_);
}

void ClusterControl::HandleCheckpointReport(uint32_t src, ByteReader& r) {
  NAIAD_CHECK(transport_->process_id() == 0);
  const uint64_t epoch = r.ReadU64();
  Report rep;
  rep.round = r.ReadU64();
  rep.quiet = r.ReadU8() != 0;
  for (uint64_t& c : rep.counters.v) {
    c = r.ReadU64();
  }
  rep.valid = true;
  NAIAD_CHECK(r.ok());

  std::vector<uint8_t> verdict_payload;
  {
    std::lock_guard<std::mutex> lock(coord_mu_);
    const uint32_t n = transport_->processes();
    if (epoch != ckpt_epoch_) {  // new barrier: rounds restart per checkpoint epoch
      ckpt_epoch_ = epoch;
      ckpt_reports_.assign(n, Report{});
      ckpt_prev_reports_.assign(n, Report{});
    }
    ckpt_reports_[src] = rep;
    for (const Report& existing : ckpt_reports_) {
      if (!existing.valid || existing.round != rep.round) {
        return;
      }
    }
    // Quiet verdict: everyone locally quiet, nothing happened since the previous round
    // (two-round stability), and no frame in flight anywhere (cluster-wide sent ==
    // received per frame type; barrier control traffic is deliberately not counted).
    bool ok = true;
    for (uint32_t p = 0; p < n; ++p) {
      const Report& cur = ckpt_reports_[p];
      const Report& prev = ckpt_prev_reports_[p];
      if (!cur.quiet || !prev.valid || !(cur.counters == prev.counters)) {
        ok = false;
        break;
      }
    }
    if (ok) {
      std::array<uint64_t, 6> sums = {};
      for (uint32_t p = 0; p < n; ++p) {
        for (size_t i = 0; i < sums.size(); ++i) {
          sums[i] += ckpt_reports_[p].counters.v[i];
        }
      }
      for (size_t i = 0; i < sums.size(); i += 2) {
        if (sums[i] != sums[i + 1]) {
          ok = false;
          break;
        }
      }
    }
    ckpt_prev_reports_ = ckpt_reports_;
    for (Report& existing : ckpt_reports_) {
      existing.valid = false;
    }
    ByteWriter w(&verdict_payload);
    w.WriteU8(kCtlCkptVerdict);
    w.WriteU64(epoch);
    w.WriteU64(rep.round);
    w.WriteU8(ok ? 1 : 0);
  }
  transport_->BroadcastFrame(FrameType::kControl, verdict_payload, /*include_self=*/true,
                             job_);
}

void ClusterControl::BroadcastRecover(uint32_t victim) {
  if (recover_broadcast_.exchange(true, std::memory_order_acq_rel)) {
    return;
  }
  std::vector<uint8_t> payload;
  ByteWriter w(&payload);
  w.WriteU8(kCtlRecover);
  w.WriteU32(victim);
  // Includes self, which sets this process's own recovery flag; the send to the dead
  // victim fails harmlessly (its peer-down report deduplicates against the flag).
  transport_->BroadcastFrame(FrameType::kControl, payload, /*include_self=*/true, job_);
}

void ClusterControl::ReportFailure(uint32_t victim) {
  if (finished() || recovery_requested()) {
    return;
  }
  // Request recovery locally first: the report below can itself be lost to dying links,
  // and the supervisor's rendezvous — not this broadcast — is what guarantees liveness.
  recovery_requested_.store(true, std::memory_order_release);
  cv_.notify_all();
  const uint32_t coordinator = victim == 0 ? 1 : 0;  // lowest-ranked survivor
  if (transport_->process_id() == coordinator) {
    BroadcastRecover(victim);
    return;
  }
  std::vector<uint8_t> payload;
  ByteWriter w(&payload);
  w.WriteU8(kCtlFailure);
  w.WriteU32(victim);
  transport_->Send(coordinator, FrameType::kControl, std::move(payload), job_);
}

void ClusterControl::RequestRecovery() {
  if (finished()) {
    return;
  }
  recovery_requested_.store(true, std::memory_order_release);
  cv_.notify_all();
}

void ClusterControl::Finish() { finished_.store(true, std::memory_order_release); }

bool ClusterControl::RunTerminationBarrier() {
  for (uint64_t round = 0;; ++round) {
    ctl_->tracker().WaitFor(
        [&] { return ctl_->tracker().Empty() || recovery_requested(); });
    if (recovery_requested()) {
      return false;
    }
    // Let the accumulators drain anything still held before counting traffic. This must
    // not be deferrable by fault injection: the stability check below assumes it ran.
    router_->FlushAll();
    std::vector<uint8_t> payload;
    ByteWriter w(&payload);
    w.WriteU8(kCtlReport);
    w.WriteU64(round);
    w.WriteU8(ctl_->tracker().Empty() ? 1 : 0);
    for (uint64_t c : SnapshotCounters().v) {
      w.WriteU64(c);
    }
    transport_->Send(0, FrameType::kControl, std::move(payload), job_);
    bool ok = false;
    {
      std::unique_lock<std::mutex> lock(mu_);
      for (;;) {
        if (term_have_verdict_ && term_verdict_round_ == round) {
          ok = term_verdict_ok_;
          term_have_verdict_ = false;
          break;
        }
        // Check the verdict before the recovery flag: a successful verdict that raced a
        // (necessarily spurious) recovery request wins, keeping all survivors agreed
        // that the run finished.
        if (recovery_requested_.load(std::memory_order_acquire)) {
          return false;
        }
        cv_.wait_for(lock, kPoll);
      }
    }
    if (ok) {
      Finish();
      return true;
    }
  }
}

bool ClusterControl::RunCheckpointBarrier(
    uint64_t epoch, const std::function<bool(uint64_t)>& write_image,
    const std::function<bool(uint64_t)>& write_manifest) {
  const uint64_t t0 = obs::MonotonicNs();
  uint64_t rounds = 0;
  // Phase 1: quiet-point rounds, until the coordinator sees the whole cluster quiet.
  for (uint64_t round = 0;; ++round) {
    if (recovery_requested()) {
      return false;
    }
    ++rounds;
    ctl_->PauseAndDrain();
    router_->FlushAll();
    // Snapshot counters BEFORE probing local quiet: receivers count a frame only after
    // dispatching it, so every frame in this snapshot is already visible to the probes
    // below, and a frame missing from it trips the coordinator's sent/received check.
    const TrafficCounters counters = SnapshotCounters();
    const bool quiet = ctl_->InboxesEmpty() && router_->Empty();
    std::vector<uint8_t> payload;
    ByteWriter w(&payload);
    w.WriteU8(kCtlCkptReport);
    w.WriteU64(epoch);
    w.WriteU64(round);
    w.WriteU8(quiet ? 1 : 0);
    for (uint64_t c : counters.v) {
      w.WriteU64(c);
    }
    transport_->Send(0, FrameType::kControl, std::move(payload), job_);
    bool got = false;
    bool ok = false;
    {
      std::unique_lock<std::mutex> lock(mu_);
      for (;;) {
        if (ckpt_have_verdict_ && ckpt_verdict_epoch_ == epoch &&
            ckpt_verdict_round_ == round) {
          ok = ckpt_verdict_ok_;
          ckpt_have_verdict_ = false;
          got = true;
          break;
        }
        if (recovery_requested_.load(std::memory_order_acquire)) {
          break;
        }
        cv_.wait_for(lock, kPoll);
      }
    }
    if (!got) {
      ctl_->Resume();
      return false;
    }
    if (ok) {
      break;
    }
    // Not quiet yet: let the workers absorb whatever was still in flight, then retry.
    ctl_->Resume();
    std::this_thread::sleep_for(std::chrono::microseconds(200));
  }

  // Phase 2: globally quiet, workers still paused — capture and durably publish this
  // process's image. write_image resumes the workers; that is safe before commit because
  // a quiet cluster with no new input generates no traffic.
  const bool durable = write_image(epoch);
  {
    std::vector<uint8_t> payload;
    ByteWriter w(&payload);
    w.WriteU8(kCtlCkptDurable);
    w.WriteU64(epoch);
    w.WriteU8(durable ? 1 : 0);
    transport_->Send(0, FrameType::kControl, std::move(payload), job_);
  }

  // Phase 3: the coordinator commits the manifest strictly after every process reported
  // durable, then broadcasts the commit; everyone waits for it.
  if (transport_->process_id() == 0) {
    const uint32_t n = transport_->processes();
    bool all_ok = false;
    {
      std::unique_lock<std::mutex> lock(mu_);
      for (;;) {
        if (durable_epoch_ == epoch && durable_acks_ == n) {
          all_ok = durable_all_ok_;
          break;
        }
        if (recovery_requested_.load(std::memory_order_acquire)) {
          return false;
        }
        cv_.wait_for(lock, kPoll);
      }
    }
    const bool commit = all_ok && write_manifest(epoch);
    std::vector<uint8_t> payload;
    ByteWriter w(&payload);
    w.WriteU8(kCtlCkptCommit);
    w.WriteU64(epoch);
    w.WriteU8(commit ? 1 : 0);
    transport_->BroadcastFrame(FrameType::kControl, payload, /*include_self=*/true, job_);
  }
  bool committed = false;
  {
    std::unique_lock<std::mutex> lock(mu_);
    for (;;) {
      if (ckpt_have_commit_ && ckpt_commit_epoch_ == epoch) {
        committed = ckpt_commit_ok_;
        ckpt_have_commit_ = false;
        break;
      }
      if (recovery_requested_.load(std::memory_order_acquire)) {
        return false;
      }
      cv_.wait_for(lock, kPoll);
    }
  }
  if (committed) {
    committed_epochs_.fetch_add(1, std::memory_order_relaxed);
    if (obs::ProcessMetrics* pm = ctl_->obs().metrics().process()) {
      pm->cluster_checkpoints.fetch_add(1, std::memory_order_relaxed);
    }
  }
  ctl_->obs().tracer().ControlSpan(obs::TraceKind::kClusterCheckpoint, t0,
                                   obs::MonotonicNs(), epoch, rounds, committed ? 1 : 0);
  return committed;
}

ProgressScoping ProgressScopingFromEnv(ProgressScoping def) {
  const char* v = std::getenv("NAIAD_PROGRESS_SCOPING");
  if (v == nullptr || *v == '\0') {
    return def;
  }
  const std::string s(v);
  if (s == "scoped") {
    return ProgressScoping::kScoped;
  }
  NAIAD_CHECK(s == "flat") << "NAIAD_PROGRESS_SCOPING must be 'flat' or 'scoped', got "
                           << s;
  return ProgressScoping::kFlat;
}

ClusterStats Cluster::Run(const ClusterOptions& opts, const Body& body) {
  // One-job run on the resident job server: the legacy single-dataflow entry point is now
  // just a register/wait/stop sequence, so every Cluster::Run user exercises the same
  // demux, stash, and per-job control plane the multi-tenant path does.
  JobServer server(opts);
  server.Start();
  const JobId id = server.Submit(body);
  server.Wait(id);
  return server.Stop();
}

}  // namespace naiad
