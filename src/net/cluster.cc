#include "src/net/cluster.h"

#include <memory>
#include <thread>

#include "src/base/stopwatch.h"
#include "src/ser/bytes.h"

namespace naiad {

namespace {

constexpr uint8_t kReport = 0;
constexpr uint8_t kVerdict = 1;

struct TrafficCounters {
  std::array<uint64_t, 6> v = {};
  friend bool operator==(const TrafficCounters&, const TrafficCounters&) = default;
};

TrafficCounters SnapshotCounters(const TcpTransport& t) {
  TrafficCounters c;
  c.v = {t.frames_sent(FrameType::kData),        t.frames_received(FrameType::kData),
         t.frames_sent(FrameType::kProgress),    t.frames_received(FrameType::kProgress),
         t.frames_sent(FrameType::kProgressAcc), t.frames_received(FrameType::kProgressAcc)};
  return c;
}

struct Report {
  uint64_t round = 0;
  bool empty = false;
  TrafficCounters counters;
  bool valid = false;
};

// Per-process termination-barrier state; the coordinator fields are used on process 0.
struct BarrierState {
  std::mutex mu;
  std::condition_variable cv;
  uint64_t verdict_round = 0;
  bool verdict_ok = false;
  bool have_verdict = false;

  // Coordinator.
  std::mutex coord_mu;
  std::vector<Report> reports;
  std::vector<Report> prev_reports;
  uint64_t coord_round = 0;
};

struct ProcessContext {
  std::unique_ptr<Controller> ctl;
  std::unique_ptr<TcpTransport> transport;
  std::unique_ptr<DistributedProgressRouter> router;
  BarrierState barrier;

  void HandleControl(uint32_t src, std::span<const uint8_t> payload,
                     ProcessContext* coordinator);
  void RunQuiesceBarrier();
};

void ProcessContext::HandleControl(uint32_t src, std::span<const uint8_t> payload,
                                   ProcessContext* coordinator) {
  ByteReader r(payload);
  const uint8_t kind = r.ReadU8();
  if (kind == kVerdict) {
    const uint64_t round = r.ReadU64();
    const bool ok = r.ReadU8() != 0;
    NAIAD_CHECK(r.ok());
    {
      std::lock_guard<std::mutex> lock(barrier.mu);
      barrier.verdict_round = round;
      barrier.verdict_ok = ok;
      barrier.have_verdict = true;
    }
    barrier.cv.notify_all();
    return;
  }
  NAIAD_CHECK(kind == kReport);
  NAIAD_CHECK(coordinator == this);  // reports only go to process 0
  Report rep;
  rep.round = r.ReadU64();
  rep.empty = r.ReadU8() != 0;
  for (uint64_t& c : rep.counters.v) {
    c = r.ReadU64();
  }
  rep.valid = true;
  NAIAD_CHECK(r.ok());

  std::vector<uint8_t> verdict_payload;
  {
    std::lock_guard<std::mutex> lock(barrier.coord_mu);
    const uint32_t n = transport->processes();
    barrier.reports.resize(n);
    barrier.prev_reports.resize(n);
    barrier.reports[src] = rep;
    bool all_here = true;
    for (const Report& existing : barrier.reports) {
      if (!existing.valid || existing.round != barrier.coord_round) {
        all_here = false;
        break;
      }
    }
    if (!all_here) {
      return;
    }
    bool ok = true;
    for (uint32_t p = 0; p < n; ++p) {
      const Report& cur = barrier.reports[p];
      const Report& prev = barrier.prev_reports[p];
      if (!cur.empty || !prev.valid || !(cur.counters == prev.counters)) {
        ok = false;
        break;
      }
    }
    barrier.prev_reports = barrier.reports;
    for (Report& existing : barrier.reports) {
      existing.valid = false;
    }
    ByteWriter w(&verdict_payload);
    w.WriteU8(kVerdict);
    w.WriteU64(barrier.coord_round);
    w.WriteU8(ok ? 1 : 0);
    ++barrier.coord_round;
  }
  transport->BroadcastFrame(FrameType::kControl, verdict_payload, /*include_self=*/true);
}

void ProcessContext::RunQuiesceBarrier() {
  for (uint64_t round = 0;; ++round) {
    ctl->tracker().WaitFor([&] { return ctl->tracker().Empty(); });
    // Let the accumulators drain anything still held before counting traffic. This must
    // not be deferrable by fault injection: the stability check below assumes it ran.
    router->FlushAll();
    std::vector<uint8_t> payload;
    ByteWriter w(&payload);
    w.WriteU8(kReport);
    w.WriteU64(round);
    w.WriteU8(ctl->tracker().Empty() ? 1 : 0);
    for (uint64_t c : SnapshotCounters(*transport).v) {
      w.WriteU64(c);
    }
    transport->Send(0, FrameType::kControl, std::move(payload));
    bool ok;
    {
      std::unique_lock<std::mutex> lock(barrier.mu);
      barrier.cv.wait(lock, [&] {
        return barrier.have_verdict && barrier.verdict_round == round;
      });
      ok = barrier.verdict_ok;
      barrier.have_verdict = false;
    }
    if (ok) {
      return;
    }
  }
}

}  // namespace

ClusterStats Cluster::Run(const ClusterOptions& opts, const Body& body) {
  const uint32_t n = opts.processes;
  std::vector<ProcessContext> procs(n);
  std::vector<uint16_t> ports(n);
  for (uint32_t p = 0; p < n; ++p) {
    Config cfg;
    cfg.process_id = p;
    cfg.processes = n;
    cfg.workers_per_process = opts.workers_per_process;
    cfg.batch_size = opts.batch_size;
    cfg.default_parallelism = opts.default_parallelism;
    cfg.obs = opts.obs;
    cfg.obs.trace_path.clear();  // the cluster writes one combined file below
    procs[p].ctl = std::make_unique<Controller>(cfg);
    procs[p].transport = std::make_unique<TcpTransport>(p, n);
    procs[p].transport->SetFaultPlan(opts.fault_plan);
    procs[p].transport->SetObs(&procs[p].ctl->obs());
    procs[p].router = std::make_unique<DistributedProgressRouter>(
        procs[p].ctl.get(), procs[p].transport.get(), opts.strategy,
        /*hold_limit=*/1024,
        opts.fault_plan != nullptr ? opts.fault_plan->Progress(p) : nullptr);
    procs[p].ctl->SetProgressRouter(procs[p].router.get());
    procs[p].ctl->SetDataTransport(procs[p].transport.get());
    ports[p] = procs[p].transport->Listen();
  }

  Stopwatch sw;
  std::vector<std::thread> threads;
  threads.reserve(n);
  for (uint32_t p = 0; p < n; ++p) {
    threads.emplace_back([&, p] {
      ProcessContext& me = procs[p];
      ProcessContext* coordinator = &procs[0];
      TcpTransport::Callbacks cb;
      cb.on_data = [&me](uint32_t, std::span<const uint8_t> payload) {
        me.ctl->ReceiveRemoteBundle(payload);
      };
      cb.on_progress = [&me](uint32_t src, std::span<const uint8_t> payload) {
        me.router->OnProgressFrame(src, payload);
      };
      cb.on_progress_acc = [&me](uint32_t src, std::span<const uint8_t> payload) {
        me.router->OnAccumulatorFrame(src, payload);
      };
      cb.on_control = [&me, coordinator](uint32_t src, std::span<const uint8_t> payload) {
        me.HandleControl(src, payload, coordinator);
      };
      me.transport->Start(ports, std::move(cb));
      me.ctl->SetQuiesceHook([&me] { me.RunQuiesceBarrier(); });
      body(*me.ctl);
    });
  }
  for (auto& t : threads) {
    t.join();
  }
  ClusterStats stats;
  stats.elapsed_seconds = sw.ElapsedSeconds();
  for (uint32_t p = 0; p < n; ++p) {
    const TcpTransport& t = *procs[p].transport;
    stats.progress_bytes +=
        t.bytes_sent(FrameType::kProgress) + t.bytes_sent(FrameType::kProgressAcc);
    stats.progress_frames +=
        t.frames_sent(FrameType::kProgress) + t.frames_sent(FrameType::kProgressAcc);
    stats.data_bytes += t.bytes_sent(FrameType::kData);
    stats.data_frames += t.frames_sent(FrameType::kData);
    stats.reconnects += t.reconnects();
  }
  for (uint32_t p = 0; p < n; ++p) {
    procs[p].transport->Shutdown();
  }
  // Observability epilogue: every worker, sender, and receiver thread has been joined
  // (body() ran Join/Stop; Shutdown joined the transport threads), so the metric blocks
  // and trace rings are quiescent and safe to read.
  if (opts.obs.metrics) {
    obs::SnapshotBuilder b;
    for (uint32_t p = 0; p < n; ++p) {
      procs[p].ctl->obs().metrics().AccumulateInto(b, p);
    }
    stats.obs = b.Finalize();
  }
  if (opts.obs.tracing && !opts.obs.trace_path.empty()) {
    std::vector<std::pair<uint32_t, const obs::Tracer*>> parts;
    parts.reserve(n);
    for (uint32_t p = 0; p < n; ++p) {
      parts.emplace_back(p, &procs[p].ctl->obs().tracer());
    }
    obs::Tracer::WriteFile(opts.obs.trace_path, parts);
  }
  return stats;
}

}  // namespace naiad
