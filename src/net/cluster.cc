#include "src/net/cluster.h"

#include "src/net/job_server.h"

#include <chrono>
#include <cstdlib>
#include <memory>
#include <string>
#include <thread>

#include "src/base/stopwatch.h"
#include "src/ser/bytes.h"

namespace naiad {

namespace {

// Barrier waits poll so a concurrent recovery request is never missed (matches the
// ProgressTracker::WaitFor cadence).
constexpr auto kPoll = std::chrono::milliseconds(1);

// Stall-barrier patience: a survivor that cannot reach the quiet cut in this window
// (e.g. a peer that already finished and never joins the barrier) resumes and falls back
// to coordinated restart. The seed exchange gets longer — by then every process has
// already torn down its old generation, so there is nothing to fall back to and the only
// honest failure mode is a dead peer.
constexpr auto kStallTimeout = std::chrono::seconds(5);
constexpr auto kSeedTimeout = std::chrono::seconds(30);

}  // namespace

ClusterControl::TrafficCounters ClusterControl::SnapshotCounters() const {
  TrafficCounters c;
  if (traffic_ != nullptr) {
    // Job-server mode: only this job's wire traffic feeds the stability check, so another
    // job's concurrent chatter cannot keep this barrier from stabilizing (and a quiet job
    // cannot be declared stable while its own frames are still in flight).
    const auto sent = [&](FrameType t) {
      return traffic_->frames_sent[static_cast<size_t>(t)].load(std::memory_order_relaxed);
    };
    const auto recv = [&](FrameType t) {
      return traffic_->frames_received[static_cast<size_t>(t)].load(
          std::memory_order_relaxed);
    };
    c.v = {sent(FrameType::kData),        recv(FrameType::kData),
           sent(FrameType::kProgress),    recv(FrameType::kProgress),
           sent(FrameType::kProgressAcc), recv(FrameType::kProgressAcc)};
    return c;
  }
  const TcpTransport& t = *transport_;
  c.v = {t.frames_sent(FrameType::kData),        t.frames_received(FrameType::kData),
         t.frames_sent(FrameType::kProgress),    t.frames_received(FrameType::kProgress),
         t.frames_sent(FrameType::kProgressAcc), t.frames_received(FrameType::kProgressAcc)};
  return c;
}

void ClusterControl::HandleControl(uint32_t src, std::span<const uint8_t> payload) {
  ByteReader r(payload);
  const uint8_t kind = r.ReadU8();
  switch (kind) {
    case kCtlVerdict: {
      const uint64_t round = r.ReadU64();
      const bool ok = r.ReadU8() != 0;
      NAIAD_CHECK(r.ok());
      {
        std::lock_guard<std::mutex> lock(mu_);
        term_verdict_round_ = round;
        term_verdict_ok_ = ok;
        term_have_verdict_ = true;
      }
      cv_.notify_all();
      return;
    }
    case kCtlReport:
      HandleTerminationReport(src, r);
      return;
    case kCtlCkptReport:
      HandleCheckpointReport(src, r);
      return;
    case kCtlCkptVerdict: {
      const uint64_t epoch = r.ReadU64();
      const uint64_t round = r.ReadU64();
      const bool ok = r.ReadU8() != 0;
      NAIAD_CHECK(r.ok());
      {
        std::lock_guard<std::mutex> lock(mu_);
        ckpt_verdict_epoch_ = epoch;
        ckpt_verdict_round_ = round;
        ckpt_verdict_ok_ = ok;
        ckpt_have_verdict_ = true;
      }
      cv_.notify_all();
      return;
    }
    case kCtlCkptDurable: {
      const uint64_t epoch = r.ReadU64();
      const bool ok = r.ReadU8() != 0;
      NAIAD_CHECK(r.ok());
      NAIAD_CHECK(transport_->process_id() == 0);  // durables only go to the coordinator
      {
        std::lock_guard<std::mutex> lock(mu_);
        if (epoch != durable_epoch_) {
          durable_epoch_ = epoch;
          durable_acks_ = 0;
          durable_all_ok_ = true;
        }
        ++durable_acks_;
        if (!ok) {
          durable_all_ok_ = false;
        }
      }
      cv_.notify_all();
      return;
    }
    case kCtlCkptCommit: {
      const uint64_t epoch = r.ReadU64();
      const bool ok = r.ReadU8() != 0;
      NAIAD_CHECK(r.ok());
      {
        std::lock_guard<std::mutex> lock(mu_);
        ckpt_commit_epoch_ = epoch;
        ckpt_commit_ok_ = ok;
        ckpt_have_commit_ = true;
      }
      cv_.notify_all();
      return;
    }
    case kCtlFailure: {
      const uint32_t victim = r.ReadU32();
      NAIAD_CHECK(r.ok());
      if (!finished()) {
        BroadcastRecover(victim);
      }
      return;
    }
    case kCtlRecover: {
      r.ReadU32();  // victim; informational only
      NAIAD_CHECK(r.ok());
      if (!finished()) {
        recovery_requested_.store(true, std::memory_order_release);
        cv_.notify_all();
      }
      return;
    }
    case kCtlSelectiveRecover: {
      const uint32_t victim = r.ReadU32();
      NAIAD_CHECK(r.ok());
      if (!finished()) {
        NoteVictim(victim);
        recovery_requested_.store(true, std::memory_order_release);
        cv_.notify_all();
      }
      return;
    }
    case kCtlStallAbort: {
      stall_aborted_.store(true, std::memory_order_release);
      cv_.notify_all();
      return;
    }
    case kCtlStallReport:
      HandleStallReport(src, r);
      return;
    case kCtlStallVerdict: {
      const uint64_t round = r.ReadU64();
      const bool ok = r.ReadU8() != 0;
      NAIAD_CHECK(r.ok());
      {
        std::lock_guard<std::mutex> lock(mu_);
        stall_verdict_round_ = round;
        stall_verdict_ok_ = ok;
        stall_have_verdict_ = true;
      }
      cv_.notify_all();
      return;
    }
    case kCtlSeedState: {
      // Applied on the receive thread, exactly like a progress frame; the sender paused
      // its workers before broadcasting, so per-link FIFO puts this ahead of anything
      // else it will ever emit in this generation.
      ctl_->tracker().Apply(
          DistributedProgressRouter::DecodeUpdates(payload.subspan(1)));
      {
        std::lock_guard<std::mutex> lock(mu_);
        ++seed_frames_;
      }
      cv_.notify_all();
      return;
    }
    case kCtlSeedAck: {
      NAIAD_CHECK(transport_->process_id() == 0);  // acks only go to the coordinator
      {
        std::lock_guard<std::mutex> lock(mu_);
        ++seed_acks_;
      }
      cv_.notify_all();
      return;
    }
    case kCtlSeedRelease: {
      {
        std::lock_guard<std::mutex> lock(mu_);
        seed_released_ = true;
      }
      cv_.notify_all();
      return;
    }
    default:
      NAIAD_CHECK(false);
  }
}

void ClusterControl::HandleTerminationReport(uint32_t src, ByteReader& r) {
  NAIAD_CHECK(transport_->process_id() == 0);  // reports only go to process 0
  Report rep;
  rep.round = r.ReadU64();
  rep.quiet = r.ReadU8() != 0;
  for (uint64_t& c : rep.counters.v) {
    c = r.ReadU64();
  }
  rep.valid = true;
  NAIAD_CHECK(r.ok());

  std::vector<uint8_t> verdict_payload;
  {
    std::lock_guard<std::mutex> lock(coord_mu_);
    const uint32_t n = transport_->processes();
    term_reports_.resize(n);
    term_prev_reports_.resize(n);
    term_reports_[src] = rep;
    for (const Report& existing : term_reports_) {
      if (!existing.valid || existing.round != term_round_) {
        return;
      }
    }
    bool ok = true;
    for (uint32_t p = 0; p < n; ++p) {
      const Report& cur = term_reports_[p];
      const Report& prev = term_prev_reports_[p];
      if (!cur.quiet || !prev.valid || !(cur.counters == prev.counters)) {
        ok = false;
        break;
      }
    }
    term_prev_reports_ = term_reports_;
    for (Report& existing : term_reports_) {
      existing.valid = false;
    }
    ByteWriter w(&verdict_payload);
    w.WriteU8(kCtlVerdict);
    w.WriteU64(term_round_);
    w.WriteU8(ok ? 1 : 0);
    ++term_round_;
  }
  transport_->BroadcastFrame(FrameType::kControl, verdict_payload, /*include_self=*/true,
                             job_);
}

void ClusterControl::HandleCheckpointReport(uint32_t src, ByteReader& r) {
  NAIAD_CHECK(transport_->process_id() == 0);
  const uint64_t epoch = r.ReadU64();
  Report rep;
  rep.round = r.ReadU64();
  rep.quiet = r.ReadU8() != 0;
  for (uint64_t& c : rep.counters.v) {
    c = r.ReadU64();
  }
  rep.valid = true;
  NAIAD_CHECK(r.ok());

  std::vector<uint8_t> verdict_payload;
  {
    std::lock_guard<std::mutex> lock(coord_mu_);
    const uint32_t n = transport_->processes();
    if (epoch != ckpt_epoch_) {  // new barrier: rounds restart per checkpoint epoch
      ckpt_epoch_ = epoch;
      ckpt_reports_.assign(n, Report{});
      ckpt_prev_reports_.assign(n, Report{});
    }
    ckpt_reports_[src] = rep;
    for (const Report& existing : ckpt_reports_) {
      if (!existing.valid || existing.round != rep.round) {
        return;
      }
    }
    // Quiet verdict: everyone locally quiet, nothing happened since the previous round
    // (two-round stability), and no frame in flight anywhere (cluster-wide sent ==
    // received per frame type; barrier control traffic is deliberately not counted).
    bool ok = true;
    for (uint32_t p = 0; p < n; ++p) {
      const Report& cur = ckpt_reports_[p];
      const Report& prev = ckpt_prev_reports_[p];
      if (!cur.quiet || !prev.valid || !(cur.counters == prev.counters)) {
        ok = false;
        break;
      }
    }
    if (ok) {
      std::array<uint64_t, 6> sums = {};
      for (uint32_t p = 0; p < n; ++p) {
        for (size_t i = 0; i < sums.size(); ++i) {
          sums[i] += ckpt_reports_[p].counters.v[i];
        }
      }
      for (size_t i = 0; i < sums.size(); i += 2) {
        if (sums[i] != sums[i + 1]) {
          ok = false;
          break;
        }
      }
    }
    ckpt_prev_reports_ = ckpt_reports_;
    for (Report& existing : ckpt_reports_) {
      existing.valid = false;
    }
    ByteWriter w(&verdict_payload);
    w.WriteU8(kCtlCkptVerdict);
    w.WriteU64(epoch);
    w.WriteU64(rep.round);
    w.WriteU8(ok ? 1 : 0);
  }
  transport_->BroadcastFrame(FrameType::kControl, verdict_payload, /*include_self=*/true,
                             job_);
}

void ClusterControl::NoteVictim(uint32_t victim) {
  // First attribution wins: every survivor must target the same stall barrier and log
  // replay even if a second (spurious) report names someone else.
  uint32_t expected = kNoVictim;
  recovery_victim_.compare_exchange_strong(expected, victim, std::memory_order_acq_rel);
}

void ClusterControl::BroadcastRecover(uint32_t victim) {
  if (recover_broadcast_.exchange(true, std::memory_order_acq_rel)) {
    return;
  }
  std::vector<uint8_t> payload;
  ByteWriter w(&payload);
  // Selective mode broadcasts the victim-carrying verb so survivors can stall in place
  // rather than tear down; everything else about the fan-out is identical.
  w.WriteU8(selective_mode_.load(std::memory_order_acquire) ? kCtlSelectiveRecover
                                                            : kCtlRecover);
  w.WriteU32(victim);
  // Includes self, which sets this process's own recovery flag; the send to the dead
  // victim fails harmlessly (its peer-down report deduplicates against the flag).
  transport_->BroadcastFrame(FrameType::kControl, payload, /*include_self=*/true, job_);
}

void ClusterControl::ReportFailure(uint32_t victim) {
  if (finished()) {
    return;
  }
  if (recovery_requested()) {
    // A DIFFERENT peer going down while a recovery is already pending is a survivor
    // tearing down for its coordinated restart (or a genuine second failure) — either
    // way the selective attempt is dead, and a member parked in RunStallBarrier would
    // otherwise wait out the whole verdict timeout for reports that can no longer come.
    // The kCtlStallAbort broadcast covers the graceful path; this link-EOF path is the
    // one that survives the aborter's teardown racing its own abort frame.
    if (victim != recovery_victim()) {
      stall_aborted_.store(true, std::memory_order_release);
      cv_.notify_all();
    }
    return;
  }
  // Request recovery locally first: the report below can itself be lost to dying links,
  // and the supervisor's rendezvous — not this broadcast — is what guarantees liveness.
  NoteVictim(victim);
  recovery_requested_.store(true, std::memory_order_release);
  cv_.notify_all();
  const uint32_t coordinator = victim == 0 ? 1 : 0;  // lowest-ranked survivor
  if (transport_->process_id() == coordinator) {
    BroadcastRecover(victim);
    return;
  }
  std::vector<uint8_t> payload;
  ByteWriter w(&payload);
  w.WriteU8(kCtlFailure);
  w.WriteU32(victim);
  transport_->Send(coordinator, FrameType::kControl, std::move(payload), job_);
}

void ClusterControl::RequestRecovery(uint32_t victim) {
  if (finished()) {
    return;
  }
  if (victim != kNoVictim) {
    NoteVictim(victim);
  }
  recovery_requested_.store(true, std::memory_order_release);
  cv_.notify_all();
}

void ClusterControl::Finish() { finished_.store(true, std::memory_order_release); }

ClusterControl::LinkCounters ClusterControl::SnapshotLinkCounters() const {
  const uint32_t n = transport_->processes();
  LinkCounters c;
  c.v.assign(static_cast<size_t>(n) * 6, 0);
  for (uint32_t q = 0; q < n; ++q) {
    if (q == transport_->process_id()) {
      continue;  // self-sends never cross the wire and are not in the per-link counters
    }
    const size_t base = static_cast<size_t>(q) * 6;
    c.v[base + 0] = transport_->frames_sent_to(q, FrameType::kData);
    c.v[base + 1] = transport_->frames_received_from(q, FrameType::kData);
    c.v[base + 2] = transport_->frames_sent_to(q, FrameType::kProgress);
    c.v[base + 3] = transport_->frames_received_from(q, FrameType::kProgress);
    c.v[base + 4] = transport_->frames_sent_to(q, FrameType::kProgressAcc);
    c.v[base + 5] = transport_->frames_received_from(q, FrameType::kProgressAcc);
  }
  return c;
}

void ClusterControl::HandleStallReport(uint32_t src, ByteReader& r) {
  const uint32_t victim = r.ReadU32();
  StallReport rep;
  rep.round = r.ReadU64();
  rep.quiet = r.ReadU8() != 0;
  const uint32_t n = transport_->processes();
  NAIAD_CHECK(transport_->process_id() == (victim == 0 ? 1u : 0u));
  rep.counters.v.resize(static_cast<size_t>(n) * 6);
  for (uint64_t& c : rep.counters.v) {
    c = r.ReadU64();
  }
  rep.valid = true;
  NAIAD_CHECK(r.ok());

  std::vector<uint8_t> verdict_payload;
  {
    std::lock_guard<std::mutex> lock(coord_mu_);
    if (victim != stall_victim_) {  // first report arms the tables for this victim
      stall_victim_ = victim;
      stall_reports_.assign(n, StallReport{});
      stall_prev_reports_.assign(n, StallReport{});
    }
    stall_reports_[src] = rep;
    for (uint32_t p = 0; p < n; ++p) {
      if (p == victim) {
        continue;  // the dead slot never reports
      }
      if (!stall_reports_[p].valid || stall_reports_[p].round != rep.round) {
        return;
      }
    }
    // Quiet cut among the survivors: everyone locally quiet (workers parked, inboxes and
    // accumulators empty, the victim's receive link drained to EOF), two-round counter
    // stability, and — per surviving pair, per frame type — i's sent-to-j equals j's
    // received-from-i, so no frame between survivors is in flight. Frames sent toward the
    // victim are deliberately unconstrained: they died with it, and the outbound logs are
    // what re-materializes them for the replacement.
    bool ok = true;
    for (uint32_t p = 0; p < n && ok; ++p) {
      if (p == victim) {
        continue;
      }
      const StallReport& cur = stall_reports_[p];
      const StallReport& prev = stall_prev_reports_[p];
      if (!cur.quiet || !prev.valid || !(cur.counters == prev.counters)) {
        ok = false;
      }
    }
    if (ok) {
      for (uint32_t i = 0; i < n && ok; ++i) {
        for (uint32_t j = 0; j < n && ok; ++j) {
          if (i == j || i == victim || j == victim) {
            continue;
          }
          for (uint32_t t = 0; t < 3; ++t) {
            const uint64_t sent = stall_reports_[i].counters.v[j * 6 + 2 * t];
            const uint64_t recv = stall_reports_[j].counters.v[i * 6 + 2 * t + 1];
            if (sent != recv) {
              ok = false;
              break;
            }
          }
        }
      }
    }
    stall_prev_reports_ = stall_reports_;
    for (StallReport& existing : stall_reports_) {
      existing.valid = false;
    }
    ByteWriter w(&verdict_payload);
    w.WriteU8(kCtlStallVerdict);
    w.WriteU64(rep.round);
    w.WriteU8(ok ? 1 : 0);
  }
  transport_->BroadcastFrame(FrameType::kControl, verdict_payload, /*include_self=*/true,
                             job_);
}

void ClusterControl::AbortSelectiveStall() {
  stall_aborted_.store(true, std::memory_order_release);
  cv_.notify_all();
  std::vector<uint8_t> payload;
  ByteWriter w(&payload);
  w.WriteU8(kCtlStallAbort);
  transport_->BroadcastFrame(FrameType::kControl, payload, /*include_self=*/false, job_);
}

bool ClusterControl::RunStallBarrier(uint32_t victim) {
  const uint64_t t0 = obs::MonotonicNs();
  const auto deadline = std::chrono::steady_clock::now() + kStallTimeout;
  const uint32_t coordinator = victim == 0 ? 1 : 0;  // lowest survivor
  bool ok = false;
  uint64_t rounds = 0;
  for (uint64_t round = 0; !stall_aborted(); ++round) {
    ++rounds;
    ctl_->PauseAndDrain();
    router_->FlushAll();
    const LinkCounters counters = SnapshotLinkCounters();
    const bool quiet = ctl_->InboxesEmpty() && router_->Empty() &&
                       transport_->RecvLinkDrained(victim);
    std::vector<uint8_t> payload;
    ByteWriter w(&payload);
    w.WriteU8(kCtlStallReport);
    w.WriteU32(victim);
    w.WriteU64(round);
    w.WriteU8(quiet ? 1 : 0);
    for (uint64_t c : counters.v) {
      w.WriteU64(c);
    }
    transport_->Send(coordinator, FrameType::kControl, std::move(payload), job_);
    bool got = false;
    bool verdict = false;
    {
      std::unique_lock<std::mutex> lock(mu_);
      for (;;) {
        if (stall_have_verdict_ && stall_verdict_round_ == round) {
          verdict = stall_verdict_ok_;
          stall_have_verdict_ = false;
          got = true;
          break;
        }
        if (stall_aborted() || std::chrono::steady_clock::now() >= deadline) {
          break;
        }
        cv_.wait_for(lock, kPoll);
      }
    }
    if (got && verdict) {
      ok = true;  // workers stay paused: the caller captures its image at this cut
      break;
    }
    ctl_->Resume();
    if (!got || std::chrono::steady_clock::now() >= deadline) {
      break;
    }
    std::this_thread::sleep_for(std::chrono::microseconds(200));
  }
  ctl_->obs().tracer().ControlSpan(obs::TraceKind::kSelectiveStall, t0,
                                   obs::MonotonicNs(), victim, rounds, ok ? 1 : 0);
  return ok;
}

bool ClusterControl::RunSeedExchange(const std::vector<ProgressUpdate>& seeds) {
  const uint32_t n = transport_->processes();
  const auto deadline = std::chrono::steady_clock::now() + kSeedTimeout;
  {
    std::vector<uint8_t> payload;
    ByteWriter w(&payload);
    w.WriteU8(kCtlSeedState);
    const std::vector<uint8_t> encoded = DistributedProgressRouter::EncodeUpdates(seeds);
    w.WriteBytes(encoded.data(), encoded.size());
    transport_->BroadcastFrame(FrameType::kControl, payload, /*include_self=*/true, job_);
  }
  auto wait_until = [&](auto pred) {
    std::unique_lock<std::mutex> lock(mu_);
    while (!pred()) {
      if (std::chrono::steady_clock::now() >= deadline) {
        return false;
      }
      cv_.wait_for(lock, kPoll);
    }
    return true;
  };
  // Hold the full cut before acking; resume only after everyone does. The release is the
  // ordering root: any −delta a process emits after its release is preceded — at every
  // other process, by the ack/release chain — by all n seed contributions, so the seeded
  // could-result-in ancestors dominate exactly as the symmetric start seeds do in a
  // normal boot.
  if (!wait_until([&] { return seed_frames_ >= n; })) {
    return false;
  }
  {
    std::vector<uint8_t> payload;
    ByteWriter w(&payload);
    w.WriteU8(kCtlSeedAck);
    transport_->Send(0, FrameType::kControl, std::move(payload), job_);
  }
  if (transport_->process_id() == 0) {
    if (!wait_until([&] { return seed_acks_ >= n; })) {
      return false;
    }
    std::vector<uint8_t> payload;
    ByteWriter w(&payload);
    w.WriteU8(kCtlSeedRelease);
    transport_->BroadcastFrame(FrameType::kControl, payload, /*include_self=*/true, job_);
  }
  return wait_until([&] { return seed_released_; });
}

bool ClusterControl::RunTerminationBarrier() {
  for (uint64_t round = 0;; ++round) {
    ctl_->tracker().WaitFor(
        [&] { return ctl_->tracker().Empty() || recovery_requested(); });
    if (recovery_requested()) {
      return false;
    }
    // Let the accumulators drain anything still held before counting traffic. This must
    // not be deferrable by fault injection: the stability check below assumes it ran.
    router_->FlushAll();
    std::vector<uint8_t> payload;
    ByteWriter w(&payload);
    w.WriteU8(kCtlReport);
    w.WriteU64(round);
    w.WriteU8(ctl_->tracker().Empty() ? 1 : 0);
    for (uint64_t c : SnapshotCounters().v) {
      w.WriteU64(c);
    }
    transport_->Send(0, FrameType::kControl, std::move(payload), job_);
    bool ok = false;
    {
      std::unique_lock<std::mutex> lock(mu_);
      for (;;) {
        if (term_have_verdict_ && term_verdict_round_ == round) {
          ok = term_verdict_ok_;
          term_have_verdict_ = false;
          break;
        }
        // Check the verdict before the recovery flag: a successful verdict that raced a
        // (necessarily spurious) recovery request wins, keeping all survivors agreed
        // that the run finished.
        if (recovery_requested_.load(std::memory_order_acquire)) {
          return false;
        }
        cv_.wait_for(lock, kPoll);
      }
    }
    if (ok) {
      Finish();
      return true;
    }
  }
}

bool ClusterControl::RunCheckpointBarrier(
    uint64_t epoch, const std::function<bool(uint64_t)>& write_image,
    const std::function<bool(uint64_t)>& write_manifest,
    const std::function<void(uint64_t)>& at_cut) {
  const uint64_t t0 = obs::MonotonicNs();
  uint64_t rounds = 0;
  // Phase 1: quiet-point rounds, until the coordinator sees the whole cluster quiet.
  for (uint64_t round = 0;; ++round) {
    if (recovery_requested()) {
      return false;
    }
    ++rounds;
    ctl_->PauseAndDrain();
    router_->FlushAll();
    // Snapshot counters BEFORE probing local quiet: receivers count a frame only after
    // dispatching it, so every frame in this snapshot is already visible to the probes
    // below, and a frame missing from it trips the coordinator's sent/received check.
    const TrafficCounters counters = SnapshotCounters();
    const bool quiet = ctl_->InboxesEmpty() && router_->Empty();
    std::vector<uint8_t> payload;
    ByteWriter w(&payload);
    w.WriteU8(kCtlCkptReport);
    w.WriteU64(epoch);
    w.WriteU64(round);
    w.WriteU8(quiet ? 1 : 0);
    for (uint64_t c : counters.v) {
      w.WriteU64(c);
    }
    transport_->Send(0, FrameType::kControl, std::move(payload), job_);
    bool got = false;
    bool ok = false;
    {
      std::unique_lock<std::mutex> lock(mu_);
      for (;;) {
        if (ckpt_have_verdict_ && ckpt_verdict_epoch_ == epoch &&
            ckpt_verdict_round_ == round) {
          ok = ckpt_verdict_ok_;
          ckpt_have_verdict_ = false;
          got = true;
          break;
        }
        if (recovery_requested_.load(std::memory_order_acquire)) {
          break;
        }
        cv_.wait_for(lock, kPoll);
      }
    }
    if (!got) {
      ctl_->Resume();
      return false;
    }
    if (ok) {
      break;
    }
    // Not quiet yet: let the workers absorb whatever was still in flight, then retry.
    ctl_->Resume();
    std::this_thread::sleep_for(std::chrono::microseconds(200));
  }

  // Phase 2: globally quiet, workers still paused — first the cut hook (log windows must
  // anchor exactly here, before ANY process resumes), then capture and durably publish
  // this process's image. write_image resumes the workers; that is safe before commit
  // because a quiet cluster with no new input generates no traffic.
  if (at_cut) {
    at_cut(epoch);
  }
  const bool durable = write_image(epoch);
  {
    std::vector<uint8_t> payload;
    ByteWriter w(&payload);
    w.WriteU8(kCtlCkptDurable);
    w.WriteU64(epoch);
    w.WriteU8(durable ? 1 : 0);
    transport_->Send(0, FrameType::kControl, std::move(payload), job_);
  }

  // Phase 3: the coordinator commits the manifest strictly after every process reported
  // durable, then broadcasts the commit; everyone waits for it.
  if (transport_->process_id() == 0) {
    const uint32_t n = transport_->processes();
    bool all_ok = false;
    {
      std::unique_lock<std::mutex> lock(mu_);
      for (;;) {
        if (durable_epoch_ == epoch && durable_acks_ == n) {
          all_ok = durable_all_ok_;
          break;
        }
        if (recovery_requested_.load(std::memory_order_acquire)) {
          return false;
        }
        cv_.wait_for(lock, kPoll);
      }
    }
    const bool commit = all_ok && write_manifest(epoch);
    std::vector<uint8_t> payload;
    ByteWriter w(&payload);
    w.WriteU8(kCtlCkptCommit);
    w.WriteU64(epoch);
    w.WriteU8(commit ? 1 : 0);
    transport_->BroadcastFrame(FrameType::kControl, payload, /*include_self=*/true, job_);
  }
  bool committed = false;
  {
    std::unique_lock<std::mutex> lock(mu_);
    for (;;) {
      if (ckpt_have_commit_ && ckpt_commit_epoch_ == epoch) {
        committed = ckpt_commit_ok_;
        ckpt_have_commit_ = false;
        break;
      }
      if (recovery_requested_.load(std::memory_order_acquire)) {
        return false;
      }
      cv_.wait_for(lock, kPoll);
    }
  }
  if (committed) {
    committed_epochs_.fetch_add(1, std::memory_order_relaxed);
    if (obs::ProcessMetrics* pm = ctl_->obs().metrics().process()) {
      pm->cluster_checkpoints.fetch_add(1, std::memory_order_relaxed);
    }
  }
  ctl_->obs().tracer().ControlSpan(obs::TraceKind::kClusterCheckpoint, t0,
                                   obs::MonotonicNs(), epoch, rounds, committed ? 1 : 0);
  return committed;
}

ProgressScoping ProgressScopingFromEnv(ProgressScoping def) {
  const char* v = std::getenv("NAIAD_PROGRESS_SCOPING");
  if (v == nullptr || *v == '\0') {
    return def;
  }
  const std::string s(v);
  if (s == "scoped") {
    return ProgressScoping::kScoped;
  }
  NAIAD_CHECK(s == "flat") << "NAIAD_PROGRESS_SCOPING must be 'flat' or 'scoped', got "
                           << s;
  return ProgressScoping::kFlat;
}

ClusterStats Cluster::Run(const ClusterOptions& opts, const Body& body) {
  // One-job run on the resident job server: the legacy single-dataflow entry point is now
  // just a register/wait/stop sequence, so every Cluster::Run user exercises the same
  // demux, stash, and per-job control plane the multi-tenant path does.
  JobServer server(opts);
  server.Start();
  const JobId id = server.Submit(body);
  server.Wait(id);
  return server.Stop();
}

}  // namespace naiad
