#include "src/net/job_server.h"

#include <chrono>
#include <utility>

#include "src/base/logging.h"

namespace naiad {

namespace {

// Host threads wake on the shared EventCount; the timeout bounds the idle re-check so a
// missed notify can only delay, never hang, a pass (same cadence as Worker::ThreadMain).
constexpr auto kHostIdleWait = std::chrono::microseconds(500);

}  // namespace

// One registered dataflow on one process: its controller (graph, tracker, vertices,
// workers), its progress router and control plane, and its wire-traffic accounting. Held
// by shared_ptr so the demux, the hosts, the driver, and the trace epilogue can each keep
// it alive across the teardown race without coordinating destruction.
struct JobServer::JobContext {
  JobId id = 0;
  JobTraffic traffic;

  // DataTransport adapter: stamps this job's id into every record-bundle frame and
  // credits the job's accounting alongside the transport's global counters.
  struct Data final : DataTransport {
    TcpTransport* transport = nullptr;
    JobContext* ctx = nullptr;
    void SendBundle(uint32_t dst_process, std::vector<uint8_t> frame) override {
      transport->Send(dst_process, FrameType::kData, std::move(frame), ctx->id,
                      &ctx->traffic);
    }
  };
  Data data;

  std::unique_ptr<Controller> ctl;
  std::unique_ptr<DistributedProgressRouter> router;
  std::unique_ptr<ClusterControl> control;

  // Flips true (under the process's stash_mu) once the stash has been replayed; the demux
  // delivers directly only after that, so a job's frames are applied in arrival order.
  std::atomic<bool> accepting{false};
};

struct JobServer::ProcessState {
  uint32_t pid = 0;
  // Server-level observability: the transport's link metrics and sender/receiver trace
  // rings live here (the transport outlives every job); per-job rings live in each job's
  // controller and are merged into the combined trace file at Stop().
  std::unique_ptr<obs::Obs> obs;
  std::unique_ptr<TcpTransport> transport;
  // Shared wait/notify channel: every job's tracker and all host parking use it, so
  // progress on any job wakes the shared hosts.
  EventCount event;

  // Registered-jobs table. Hosts and the demux read it under the shared lock; register
  // and retire mutate it under the exclusive lock. The exclusive acquisition in RetireJob
  // is the happens-before edge that makes the retiring driver the sole owner of the job's
  // workers (every host pass and in-flight delivery holds the shared lock).
  std::shared_mutex jobs_mu;
  std::map<JobId, std::shared_ptr<JobContext>> jobs;
  uint64_t jobs_generation = 0;  // bumped per register/retire; hosts' idle fingerprint

  // Frames that arrived before their job registered locally, in arrival order, bounded by
  // ClusterOptions::job_stash_limit_bytes per job. stash_mu also serializes the accepting
  // flip against the demux's re-check: a racing frame either lands in the stash (and is
  // replayed in order) or observes the flip and delivers directly — per-link FIFO holds
  // across the handoff.
  struct StashedFrame {
    FrameType type;
    uint32_t src;
    bool wire;
    std::vector<uint8_t> payload;
  };
  struct Stash {
    std::vector<StashedFrame> frames;
    size_t bytes = 0;
  };
  std::mutex stash_mu;
  std::map<JobId, Stash> stash;
  std::set<JobId> retired;  // jobs whose context this process has torn down

  std::atomic<uint64_t> stray_dropped{0};
  std::atomic<uint64_t> stash_drops{0};

  std::atomic<bool> stop{false};
  std::vector<std::thread> hosts;
  std::mutex drivers_mu;
  std::vector<std::thread> drivers;
  // Retired contexts kept alive for the combined trace file (tracing runs only).
  std::vector<std::shared_ptr<JobContext>> done_ctxs;  // guarded by the server's done_mu_
};

namespace {

// Re-entrancy guard for the demux. Delivering a frame can synchronously emit another
// frame to self (a coordinator broadcasting a verdict, the central accumulator flushing),
// which dispatches inline back into OnFrame on the same thread. Re-acquiring the shared
// jobs lock there can deadlock against a writer already waiting between the two
// acquisitions, so nested entries reuse the outer hold instead. Host threads set it too:
// their RunPass/IdleFlush sections hold the shared lock and can reach Send-to-self
// through a progress flush.
thread_local const void* t_jobs_shared_held = nullptr;

class JobsSharedScope {
 public:
  explicit JobsSharedScope(std::shared_mutex& mu, const void* tag) : mu_(mu) {
    mu_.lock_shared();
    t_jobs_shared_held = tag;
  }
  ~JobsSharedScope() {
    t_jobs_shared_held = nullptr;
    mu_.unlock_shared();
  }
  JobsSharedScope(const JobsSharedScope&) = delete;
  JobsSharedScope& operator=(const JobsSharedScope&) = delete;

 private:
  std::shared_mutex& mu_;
};

}  // namespace

JobServer::JobServer(ClusterOptions opts) : opts_(std::move(opts)) {}

JobServer::~JobServer() {
  if (started_ && !stopped_) {
    Stop();
  }
}

TcpTransport& JobServer::transport(uint32_t process) {
  return *procs_[process]->transport;
}

uint64_t JobServer::stray_frames_dropped() const {
  uint64_t n = 0;
  for (const auto& ps : procs_) {
    n += ps->stray_dropped.load(std::memory_order_relaxed);
  }
  return n;
}

uint64_t JobServer::stash_overflow_drops() const {
  uint64_t n = 0;
  for (const auto& ps : procs_) {
    n += ps->stash_drops.load(std::memory_order_relaxed);
  }
  return n;
}

void JobServer::Start() {
  NAIAD_CHECK(!started_);
  started_ = true;
  sw_.Restart();
  const uint32_t n = opts_.processes;
  std::vector<uint16_t> ports(n);
  procs_.reserve(n);
  for (uint32_t p = 0; p < n; ++p) {
    auto ps = std::make_unique<ProcessState>();
    ps->pid = p;
    obs::ObsOptions server_obs = opts_.obs;
    server_obs.trace_path.clear();  // one combined file is written at Stop()
    ps->obs = std::make_unique<obs::Obs>(server_obs, opts_.workers_per_process, n);
    ps->transport = std::make_unique<TcpTransport>(p, n);
    ps->transport->SetFaultPlan(opts_.fault_plan);
    ps->transport->SetObs(ps->obs.get());
    ports[p] = ps->transport->Listen();
    procs_.push_back(std::move(ps));
  }
  // Every listener is open, so the serial bring-up below cannot deadlock: dials land in
  // the peer's accept backlog even before its accept loop runs.
  for (uint32_t p = 0; p < n; ++p) {
    ProcessState& ps = *procs_[p];
    TcpTransport::Callbacks cb;
    cb.on_frame = [this, &ps](FrameType type, uint32_t src, uint32_t job,
                              std::span<const uint8_t> payload, bool wire) {
      OnFrame(ps, type, src, job, payload, wire);
    };
    // No on_peer_down: in thread mode nothing can die out from under the server.
    ps.transport->Start(ports, std::move(cb));
  }
  for (uint32_t p = 0; p < n; ++p) {
    ProcessState& ps = *procs_[p];
    ps.hosts.reserve(opts_.workers_per_process);
    for (uint32_t k = 0; k < opts_.workers_per_process; ++k) {
      ps.hosts.emplace_back([this, &ps, k] { HostMain(ps, k); });
    }
  }
}

JobId JobServer::Submit(Body body) {
  NAIAD_CHECK(started_ && !stopped_);
  JobId id;
  {
    std::lock_guard<std::mutex> lock(reg_mu_);
    id = next_job_++;
    registry_.emplace(id, std::move(body));
    next_job_hint_.store(next_job_, std::memory_order_release);
  }
  // The announcement. Process 0's copy dispatches inline (include_self), so its context
  // exists before Submit returns; peers' copies travel their p0 link in FIFO order with
  // any later teardown for the same id.
  std::vector<uint8_t> payload{kCtlRegisterJob};
  procs_[0]->transport->BroadcastFrame(FrameType::kControl, payload,
                                       /*include_self=*/true, id);
  return id;
}

void JobServer::Teardown(JobId id) {
  NAIAD_CHECK(started_);
  std::vector<uint8_t> payload{kCtlTeardownJob};
  procs_[0]->transport->BroadcastFrame(FrameType::kControl, payload,
                                       /*include_self=*/true, id);
}

void JobServer::Wait(JobId id) {
  std::unique_lock<std::mutex> lock(done_mu_);
  done_cv_.wait(lock, [&] { return retired_count_[id] == opts_.processes; });
}

void JobServer::Deliver(ProcessState& ps, JobContext& ctx, FrameType type, uint32_t src,
                        std::span<const uint8_t> payload, bool wire) {
  switch (type) {
    case FrameType::kData:
      ctx.ctl->ReceiveRemoteBundle(payload);
      break;
    case FrameType::kProgress:
      ctx.router->OnProgressFrame(src, payload);
      break;
    case FrameType::kProgressAcc:
      ctx.router->OnAccumulatorFrame(src, payload);
      break;
    case FrameType::kControl:
      ctx.control->HandleControl(src, payload);
      break;
  }
  if (wire) {
    // Counted after delivery, mirroring the transport's global counters: a counted
    // received frame is already visible to the job's quiet probes.
    ctx.traffic.frames_received[static_cast<size_t>(type)].fetch_add(
        1, std::memory_order_relaxed);
  }
}

void JobServer::OnFrame(ProcessState& ps, FrameType type, uint32_t src, uint32_t job,
                        std::span<const uint8_t> payload, bool wire) {
  if (type == FrameType::kControl && !payload.empty() &&
      (payload[0] == kCtlRegisterJob || payload[0] == kCtlTeardownJob)) {
    if (payload[0] == kCtlRegisterJob) {
      HandleRegister(ps, job);
    } else {
      HandleTeardown(ps, job);
    }
    return;
  }

  // Nested entry (a delivery synchronously sent to self): the outer frame of this thread
  // already holds ps.jobs_mu shared, so read the table without re-locking.
  if (t_jobs_shared_held == &ps) {
    auto it = ps.jobs.find(job);
    if (it != ps.jobs.end() &&
        it->second->accepting.load(std::memory_order_acquire)) {
      Deliver(ps, *it->second, type, src, payload, wire);
      return;
    }
    StashOrDrop(ps, type, src, job, payload, wire);
    return;
  }

  JobsSharedScope scope(ps.jobs_mu, &ps);
  auto it = ps.jobs.find(job);
  if (it != ps.jobs.end() && it->second->accepting.load(std::memory_order_acquire)) {
    Deliver(ps, *it->second, type, src, payload, wire);
    return;
  }
  StashOrDrop(ps, type, src, job, payload, wire);
}

// Slow path: the job has no accepting context here. Requires shared hold of ps.jobs_mu
// (direct or via the re-entrancy guard). A frame for a retired or never-announced job is
// dropped deterministically — counted and traced, never handed to freed vertices; a frame
// for a job still registering is stashed (bounded) for in-order replay. Control frames
// are stashed too: a late barrier verdict must survive the registration race or the
// job would hang.
void JobServer::StashOrDrop(ProcessState& ps, FrameType type, uint32_t src, uint32_t job,
                            std::span<const uint8_t> payload, bool wire) {
  std::lock_guard<std::mutex> lock(ps.stash_mu);
  // Re-check under stash_mu: HandleRegister flips `accepting` under it, strictly after
  // replaying the stash, so whichever side wins this lock preserves arrival order.
  auto it = ps.jobs.find(job);
  if (it != ps.jobs.end() && it->second->accepting.load(std::memory_order_acquire)) {
    Deliver(ps, *it->second, type, src, payload, wire);
    return;
  }
  const bool known =
      job != 0 && job < next_job_hint_.load(std::memory_order_acquire);
  if (ps.retired.count(job) != 0 || !known) {
    ps.stray_dropped.fetch_add(1, std::memory_order_relaxed);
    ps.obs->tracer().Control(obs::TraceKind::kStrayFrame, job, src,
                             static_cast<uint64_t>(type));
    return;
  }
  ProcessState::Stash& s = ps.stash[job];
  if (s.bytes + payload.size() > opts_.job_stash_limit_bytes) {
    ps.stash_drops.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  s.bytes += payload.size();
  s.frames.push_back(ProcessState::StashedFrame{
      type, src, wire, std::vector<uint8_t>(payload.begin(), payload.end())});
}

void JobServer::HandleRegister(ProcessState& ps, JobId job) {
  Body body;
  {
    std::lock_guard<std::mutex> lock(reg_mu_);
    auto it = registry_.find(job);
    NAIAD_CHECK(it != registry_.end()) << "register for unknown job " << job;
    body = it->second;
  }
  auto ctx = std::make_shared<JobContext>();
  ctx->id = job;
  Config cfg;
  cfg.process_id = ps.pid;
  cfg.processes = opts_.processes;
  cfg.workers_per_process = opts_.workers_per_process;
  cfg.batch_size = opts_.batch_size;
  cfg.default_parallelism = opts_.default_parallelism;
  cfg.scoping = opts_.scoping;
  cfg.obs = opts_.obs;
  cfg.obs.trace_path.clear();  // the server writes one combined file at Stop()
  cfg.shared_event = &ps.event;
  cfg.external_workers = true;
  ctx->ctl = std::make_unique<Controller>(cfg);
  ctx->data.transport = ps.transport.get();
  ctx->data.ctx = ctx.get();
  ctx->router = std::make_unique<DistributedProgressRouter>(
      ctx->ctl.get(), ps.transport.get(), opts_.strategy, /*hold_limit=*/1024,
      opts_.fault_plan != nullptr ? opts_.fault_plan->Progress(ps.pid) : nullptr);
  ctx->router->SetJobAccounting(job, &ctx->traffic);
  ctx->ctl->SetProgressRouter(ctx->router.get());
  ctx->ctl->SetDataTransport(&ctx->data);
  ctx->control = std::make_unique<ClusterControl>(
      ctx->ctl.get(), ps.transport.get(), ctx->router.get(), job, &ctx->traffic);
  ClusterControl* control = ctx->control.get();
  ctx->ctl->SetQuiesceHook([control] { control->RunTerminationBarrier(); });
  {
    std::unique_lock<std::shared_mutex> lock(ps.jobs_mu);
    const bool inserted = ps.jobs.emplace(job, ctx).second;
    NAIAD_CHECK(inserted) << "job " << job << " registered twice";
    ++ps.jobs_generation;
  }
  // Replay the pre-registration stash, then flip `accepting` — atomically with the
  // emptiness check, so no frame can slip between replay and flip. Delivery itself runs
  // unlocked (a replayed frame can synchronously broadcast), so late arrivals during a
  // replay batch go back to the stash and are picked up by the next round, still in
  // order.
  for (;;) {
    std::vector<ProcessState::StashedFrame> frames;
    {
      std::lock_guard<std::mutex> lock(ps.stash_mu);
      auto sit = ps.stash.find(job);
      if (sit == ps.stash.end() || sit->second.frames.empty()) {
        ps.stash.erase(job);
        ctx->accepting.store(true, std::memory_order_release);
        break;
      }
      frames.swap(sit->second.frames);
      sit->second.bytes = 0;
    }
    for (ProcessState::StashedFrame& f : frames) {
      Deliver(ps, *ctx, f.type, f.src, f.payload, f.wire);
    }
  }
  {
    std::lock_guard<std::mutex> lock(ps.drivers_mu);
    ps.drivers.emplace_back(
        [this, &ps, ctx, body = std::move(body)] { DriverMain(ps, ctx, body); });
  }
  ps.event.NotifyAll();
}

void JobServer::HandleTeardown(ProcessState& ps, JobId job) {
  std::shared_ptr<JobContext> ctx;
  {
    std::shared_lock<std::shared_mutex> lock(ps.jobs_mu);
    auto it = ps.jobs.find(job);
    if (it != ps.jobs.end()) {
      ctx = it->second;
    }
  }
  if (ctx == nullptr) {
    return;  // already completed here (teardown cannot precede register: per-link FIFO)
  }
  // Isolated teardown: interrupt a barrier the job may be blocked in, then cancel its
  // Join. The driver then retires the context exactly as on normal completion; peers do
  // the same when their copy of the teardown arrives.
  ctx->control->RequestRecovery();
  ctx->ctl->RequestCancel();
}

void JobServer::DriverMain(ProcessState& ps, std::shared_ptr<JobContext> ctx,
                           const Body& body) {
  body(*ctx->ctl);
  RetireJob(ps, std::move(ctx));
}

void JobServer::RetireJob(ProcessState& ps, std::shared_ptr<JobContext> ctx) {
  {
    std::unique_lock<std::shared_mutex> lock(ps.jobs_mu);
    ps.jobs.erase(ctx->id);
    ++ps.jobs_generation;
  }
  // The exclusive acquisition above excluded every host pass and in-flight delivery;
  // this thread now solely owns the job's workers. External mode has no ThreadMain
  // epilogue, so the forced purge drain (§2.4) runs here.
  for (uint32_t k = 0; k < opts_.workers_per_process; ++k) {
    ctx->ctl->worker(k).DeliverFinalPurges();
  }
  ctx->ctl->Stop();  // idempotent: the body's Join already stopped a drained job
  {
    std::lock_guard<std::mutex> lock(ps.stash_mu);
    ps.retired.insert(ctx->id);
    auto sit = ps.stash.find(ctx->id);
    if (sit != ps.stash.end()) {
      // Stashed but never delivered (e.g. frames that raced a teardown): strays now.
      ps.stray_dropped.fetch_add(sit->second.frames.size(), std::memory_order_relaxed);
      ps.stash.erase(sit);
    }
  }
  const bool torn = ctx->ctl->cancelled();
  {
    std::lock_guard<std::mutex> lock(done_mu_);
    ClusterStats::JobStats& js = job_stats_[ctx->id];
    js.job = ctx->id;
    const auto frames = [&](FrameType t) {
      return ctx->traffic.frames_sent[static_cast<size_t>(t)].load(
          std::memory_order_relaxed);
    };
    const auto bytes = [&](FrameType t) {
      return ctx->traffic.bytes_sent[static_cast<size_t>(t)].load(
          std::memory_order_relaxed);
    };
    js.data_frames += frames(FrameType::kData);
    js.data_bytes += bytes(FrameType::kData);
    js.progress_frames += frames(FrameType::kProgress) + frames(FrameType::kProgressAcc);
    js.progress_bytes += bytes(FrameType::kProgress) + bytes(FrameType::kProgressAcc);
    js.torn_down = js.torn_down || torn;
    agg_.progress_cross_scope_bytes += ctx->router->cross_scope_update_bytes();
    agg_.progress_in_scope_bytes += ctx->router->in_scope_update_bytes();
    const ProgressScopingStats s = ctx->ctl->tracker().ScopingStats();
    agg_.progress_boundary_bytes += s.boundary_update_bytes;
    agg_.progress_boundary_updates += s.boundary_updates;
    agg_.occ_map_peak += s.occ_map_peak;
    agg_.occ_map_peak_root += s.occ_map_peak_root;
    if (opts_.obs.metrics) {
      // The job's workers are quiescent (exclusive acquisition above) and its blocks are
      // final; merge them now so the context can be dropped.
      ctx->ctl->obs().metrics().AccumulateInto(snapshot_builder_, ps.pid);
    }
    if (opts_.obs.tracing && !opts_.obs.trace_path.empty()) {
      ps.done_ctxs.push_back(ctx);  // keep the job's trace rings alive for the epilogue
    }
    ++retired_count_[ctx->id];
  }
  done_cv_.notify_all();
}

void JobServer::HostMain(ProcessState& ps, uint32_t worker_index) {
  uint64_t idle_fingerprint = ~uint64_t{0};
  while (!ps.stop.load(std::memory_order_acquire)) {
    bool ran = false;
    {
      JobsSharedScope scope(ps.jobs_mu, &ps);
      for (auto& [id, ctx] : ps.jobs) {
        if (!ctx->accepting.load(std::memory_order_acquire)) {
          continue;
        }
        Controller& ctl = *ctx->ctl;
        // workers_live gates until Start() has published the vertices and seeded the
        // notifications; stopping excludes a job already past its Join.
        if (!ctl.workers_live() || ctl.stopping()) {
          continue;
        }
        ran = ctx->ctl->worker(worker_index).RunPass() || ran;
      }
    }
    if (ran) {
      idle_fingerprint = ~uint64_t{0};
      continue;
    }
    // Idle edge, eventcount-style (§3.3): snapshot the generation, flush, re-check every
    // work source, and only then park. Any job's progress bumps its tracker version (and
    // notifies the shared event), so the fingerprint changing forces another pass.
    const EventCount::Ticket ticket = ps.event.PrepareWait();
    uint64_t fingerprint = 0;
    bool rescan = false;
    {
      JobsSharedScope scope(ps.jobs_mu, &ps);
      fingerprint = ps.jobs_generation;
      for (auto& [id, ctx] : ps.jobs) {
        if (!ctx->accepting.load(std::memory_order_acquire)) {
          rescan = true;  // a registration is in flight; come back for it
          continue;
        }
        Controller& ctl = *ctx->ctl;
        if (!ctl.workers_live() || ctl.stopping()) {
          continue;
        }
        ctl.worker(worker_index).IdleFlush();
        fingerprint += ctl.tracker().version();
        rescan = rescan || !ctl.worker(worker_index).InboxEmpty();
      }
    }
    if (rescan || ps.stop.load(std::memory_order_acquire)) {
      continue;
    }
    if (fingerprint != idle_fingerprint) {
      idle_fingerprint = fingerprint;
      continue;
    }
    ps.event.CommitWait(ticket, kHostIdleWait);
  }
}

ClusterStats JobServer::Stop() {
  NAIAD_CHECK(started_ && !stopped_);
  stopped_ = true;
  // Tear down whatever is still running, then wait for every job ever submitted.
  std::vector<JobId> ids;
  {
    std::lock_guard<std::mutex> lock(reg_mu_);
    for (const auto& [id, body] : registry_) {
      ids.push_back(id);
    }
  }
  for (JobId id : ids) {
    bool done;
    {
      std::lock_guard<std::mutex> lock(done_mu_);
      done = retired_count_[id] == opts_.processes;
    }
    if (!done) {
      Teardown(id);
    }
  }
  for (JobId id : ids) {
    Wait(id);
  }
  for (auto& ps : procs_) {
    ps->stop.store(true, std::memory_order_release);
    ps->event.NotifyAll();
  }
  for (auto& ps : procs_) {
    for (std::thread& t : ps->hosts) {
      t.join();
    }
  }
  for (auto& ps : procs_) {
    std::lock_guard<std::mutex> lock(ps->drivers_mu);
    for (std::thread& t : ps->drivers) {
      t.join();
    }
  }
  for (auto& ps : procs_) {
    ps->transport->Shutdown();
  }

  ClusterStats stats;
  stats.elapsed_seconds = sw_.ElapsedSeconds();
  for (auto& ps : procs_) {
    const TcpTransport& t = *ps->transport;
    stats.progress_bytes +=
        t.bytes_sent(FrameType::kProgress) + t.bytes_sent(FrameType::kProgressAcc);
    stats.progress_frames +=
        t.frames_sent(FrameType::kProgress) + t.frames_sent(FrameType::kProgressAcc);
    stats.data_bytes += t.bytes_sent(FrameType::kData);
    stats.data_frames += t.frames_sent(FrameType::kData);
    stats.reconnects += t.reconnects();
    stats.duplicate_frames_dropped += t.recv_dup_frames();
    stats.stray_frames_dropped += ps->stray_dropped.load(std::memory_order_relaxed);
    stats.stash_overflow_drops += ps->stash_drops.load(std::memory_order_relaxed);
    {
      // Stash entries that never found their job (junk ids under the quota) are strays.
      std::lock_guard<std::mutex> lock(ps->stash_mu);
      for (const auto& [id, s] : ps->stash) {
        stats.stray_frames_dropped += s.frames.size();
      }
    }
  }
  {
    std::lock_guard<std::mutex> lock(done_mu_);
    stats.progress_cross_scope_bytes = agg_.progress_cross_scope_bytes;
    stats.progress_in_scope_bytes = agg_.progress_in_scope_bytes;
    stats.progress_boundary_bytes = agg_.progress_boundary_bytes;
    stats.progress_boundary_updates = agg_.progress_boundary_updates;
    stats.occ_map_peak = agg_.occ_map_peak;
    stats.occ_map_peak_root = agg_.occ_map_peak_root;
    for (const auto& [id, js] : job_stats_) {
      stats.jobs.push_back(js);
    }
    // Observability epilogue: every host, driver, sender, and receiver thread has been
    // joined, so the remaining blocks and rings are quiescent. Job metrics were merged at
    // retirement; the server-level blocks (links, process counters) merge here.
    if (opts_.obs.metrics) {
      for (uint32_t p = 0; p < opts_.processes; ++p) {
        procs_[p]->obs->metrics().AccumulateInto(snapshot_builder_, p);
      }
      stats.obs = snapshot_builder_.Finalize();
    }
    if (opts_.obs.tracing && !opts_.obs.trace_path.empty()) {
      // One combined file. Server-level tracers (send/recv rings) keep pid = process id;
      // job tracers (worker rings) get pid = 1000 * job + process id, so two tracers
      // under one pid never collide tids (job ids start at 1).
      std::vector<std::pair<uint32_t, const obs::Tracer*>> parts;
      for (uint32_t p = 0; p < opts_.processes; ++p) {
        parts.emplace_back(p, &procs_[p]->obs->tracer());
      }
      for (uint32_t p = 0; p < opts_.processes; ++p) {
        for (const auto& ctx : procs_[p]->done_ctxs) {
          parts.emplace_back(1000 * ctx->id + p, &ctx->ctl->obs().tracer());
        }
      }
      obs::Tracer::WriteFile(opts_.obs.trace_path, parts);
    }
  }
  return stats;
}

}  // namespace naiad
