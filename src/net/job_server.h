// Resident multi-tenant job server (ROADMAP item 1; the paper's §6 shared-cluster
// scenario).
//
// One JobServer owns a long-lived cluster generation: per process, one TcpTransport mesh,
// one pool of host threads, and a table of per-job contexts. Jobs register and tear down
// at runtime over kControl frames (kCtlRegisterJob / kCtlTeardownJob), run concurrently on
// the shared hosts and links, and are isolated by the JobId every frame header carries:
//
//   - Each job gets its own Controller (graph, tracker with its own epoch space, input
//     stages, vertices, keep-alive holders), DistributedProgressRouter, and
//     ClusterControl, so frontiers, epochs, and termination barriers never mix across
//     jobs. The per-job ClusterControl also makes completion per-job: one job's
//     termination verdict latches only its own finished_ flag, so the server keeps
//     accepting reports and registrations afterwards.
//   - Host thread k of a process drives worker k of every registered job (one scheduling
//     pass per job per tick), preserving the one-owner-thread contract each Worker
//     assumes.
//   - The demux delivers a frame to its job's context while holding the jobs table's
//     shared lock; teardown retires a context under the exclusive lock, so a frame is
//     either delivered to a live job or dropped — never handed to freed vertices. Frames
//     for a job announced but not yet registered locally are stashed (bounded by
//     ClusterOptions::job_stash_limit_bytes, the per-job buffered-bytes quota) and
//     replayed in arrival order at registration, which generalizes the Controller's
//     early_frames_ stash across the registration race. Frames for unknown or
//     already-torn-down jobs are dropped deterministically: counted
//     (ClusterStats::stray_frames_dropped) and traced (kStrayFrame).
//
// Job lifecycle: registering (announced, context under construction or stash replaying)
// → running (context accepting, body driving it) → draining (termination barrier, or
// cancelled by teardown) → torn down (context retired; subsequent frames are stray).
//
// Cluster::Run is now a thin wrapper: Start → Submit(body) → Wait → Stop.

#ifndef SRC_NET_JOB_SERVER_H_
#define SRC_NET_JOB_SERVER_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <shared_mutex>
#include <thread>
#include <vector>

#include "src/base/stopwatch.h"
#include "src/net/cluster.h"

namespace naiad {

using JobId = uint32_t;

class JobServer {
 public:
  // `body(ctl)` runs once per process on a driver thread (SPMD), exactly like a
  // Cluster::Run body: build the dataflow, ctl.Start(), feed inputs, ctl.Join(). A body
  // that may be torn down mid-run must use cancellation-aware waits
  // (`ctl.cancelled()` in tracker WaitFor predicates) instead of unconditional ones.
  using Body = std::function<void(Controller&)>;

  explicit JobServer(ClusterOptions opts);
  ~JobServer();
  JobServer(const JobServer&) = delete;
  JobServer& operator=(const JobServer&) = delete;

  // Brings up the transport mesh and host threads. No job exists yet.
  void Start();

  // Registers `body` as a new job on every process and returns its id. The coordinator
  // process registers inline before the announcement reaches any peer, so per-job barrier
  // reports always find their context. Returns immediately; the job runs concurrently
  // with any other registered job.
  JobId Submit(Body body);

  // Requests isolated teardown: interrupts the job's barrier, cancels its Join, and
  // retires its context on every process. Other jobs are unaffected. No-op if the job
  // already completed.
  void Teardown(JobId id);

  // Blocks until the job's context has been retired on every process (normal completion
  // or teardown).
  void Wait(JobId id);

  // Tears down any still-registered job, waits for all of them, stops the hosts, shuts
  // the transports down, and returns the aggregate statistics (per-job split in
  // ClusterStats::jobs).
  ClusterStats Stop();

  uint32_t processes() const { return opts_.processes; }
  // Test hooks: the live mesh (e.g. to inject a raw frame for a retired job) and the
  // demux drop counters.
  TcpTransport& transport(uint32_t process);
  uint64_t stray_frames_dropped() const;
  uint64_t stash_overflow_drops() const;

 private:
  struct JobContext;
  struct ProcessState;

  void HostMain(ProcessState& ps, uint32_t worker_index);
  void OnFrame(ProcessState& ps, FrameType type, uint32_t src, uint32_t job,
               std::span<const uint8_t> payload, bool wire);
  void StashOrDrop(ProcessState& ps, FrameType type, uint32_t src, uint32_t job,
                   std::span<const uint8_t> payload, bool wire);
  void Deliver(ProcessState& ps, JobContext& ctx, FrameType type, uint32_t src,
               std::span<const uint8_t> payload, bool wire);
  void HandleRegister(ProcessState& ps, JobId job);
  void HandleTeardown(ProcessState& ps, JobId job);
  void DriverMain(ProcessState& ps, std::shared_ptr<JobContext> ctx, const Body& body);
  void RetireJob(ProcessState& ps, std::shared_ptr<JobContext> ctx);

  ClusterOptions opts_;
  std::vector<std::unique_ptr<ProcessState>> procs_;
  Stopwatch sw_;
  bool started_ = false;
  bool stopped_ = false;

  std::mutex reg_mu_;  // job id allocation + the body registry
  JobId next_job_ = 1;
  std::map<JobId, Body> registry_;
  // Highest allocated id + 1, readable without reg_mu_: the demux uses it to distinguish
  // a frame for a not-yet-registered job (stash) from one for a never-allocated id
  // (deterministic stray drop). Ids are allocated before any frame can carry them.
  std::atomic<JobId> next_job_hint_{1};

  // Retirement bookkeeping and cross-process stats accumulation.
  std::mutex done_mu_;
  std::condition_variable done_cv_;
  std::map<JobId, uint32_t> retired_count_;
  std::map<JobId, ClusterStats::JobStats> job_stats_;
  ClusterStats agg_;  // scope-byte / occ-peak fields, accumulated as jobs retire
  obs::SnapshotBuilder snapshot_builder_;
};

}  // namespace naiad

#endif  // SRC_NET_JOB_SERVER_H_
