// Record codecs: the typed (de)serialization layer over ByteWriter/ByteReader.
//
// Codec<T> is defined for arithmetic types, std::string, std::pair, std::tuple,
// std::vector, and any struct exposing `void Encode(ByteWriter&) const` plus
// `bool Decode(ByteReader&)` (member-serde). Exchange connectors require Codec<T> for their
// record type only when a message actually crosses a process boundary; within a process
// records move as typed C++ values with no serialization, matching §3.1.

#ifndef SRC_SER_CODEC_H_
#define SRC_SER_CODEC_H_

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <tuple>
#include <type_traits>
#include <utility>
#include <vector>

#include "src/ser/bytes.h"

namespace naiad {

template <typename T, typename = void>
struct Codec;

template <typename T>
concept MemberSerde = requires(const T ct, T t, ByteWriter& w, ByteReader& r) {
  { ct.Encode(w) } -> std::same_as<void>;
  { t.Decode(r) } -> std::same_as<bool>;
};

template <typename T>
concept Encodable = requires(ByteWriter& w, ByteReader& r, const T& cv, T& v) {
  Codec<T>::Encode(w, cv);
  { Codec<T>::Decode(r, v) } -> std::same_as<bool>;
};

// -- arithmetic and bool ------------------------------------------------------------------

template <typename T>
struct Codec<T, std::enable_if_t<std::is_integral_v<T> || std::is_enum_v<T>>> {
  static void Encode(ByteWriter& w, const T& v) {
    if constexpr (sizeof(T) == 1) {
      w.WriteU8(static_cast<uint8_t>(v));
    } else if constexpr (sizeof(T) == 2) {
      w.WriteU16(static_cast<uint16_t>(v));
    } else if constexpr (sizeof(T) == 4) {
      w.WriteU32(static_cast<uint32_t>(v));
    } else {
      w.WriteU64(static_cast<uint64_t>(v));
    }
  }
  static bool Decode(ByteReader& r, T& v) {
    if constexpr (sizeof(T) == 1) {
      v = static_cast<T>(r.ReadU8());
    } else if constexpr (sizeof(T) == 2) {
      v = static_cast<T>(r.ReadU16());
    } else if constexpr (sizeof(T) == 4) {
      v = static_cast<T>(r.ReadU32());
    } else {
      v = static_cast<T>(r.ReadU64());
    }
    return r.ok();
  }
};

template <>
struct Codec<double> {
  static void Encode(ByteWriter& w, const double& v) { w.WriteF64(v); }
  static bool Decode(ByteReader& r, double& v) {
    v = r.ReadF64();
    return r.ok();
  }
};

template <>
struct Codec<float> {
  static void Encode(ByteWriter& w, const float& v) { w.WriteF32(v); }
  static bool Decode(ByteReader& r, float& v) {
    v = r.ReadF32();
    return r.ok();
  }
};

// -- string -------------------------------------------------------------------------------

template <>
struct Codec<std::string> {
  static void Encode(ByteWriter& w, const std::string& v) {
    w.WriteU32(static_cast<uint32_t>(v.size()));
    w.WriteBytes(v.data(), v.size());
  }
  static bool Decode(ByteReader& r, std::string& v) {
    uint32_t n = r.ReadU32();
    if (!r.ok() || r.remaining() < n) {
      return false;
    }
    v.resize(n);
    return r.ReadBytes(v.data(), n);
  }
};

// -- pair / tuple -------------------------------------------------------------------------

template <typename A, typename B>
struct Codec<std::pair<A, B>> {
  static void Encode(ByteWriter& w, const std::pair<A, B>& v) {
    Codec<A>::Encode(w, v.first);
    Codec<B>::Encode(w, v.second);
  }
  static bool Decode(ByteReader& r, std::pair<A, B>& v) {
    return Codec<A>::Decode(r, v.first) && Codec<B>::Decode(r, v.second);
  }
};

template <typename... Ts>
struct Codec<std::tuple<Ts...>> {
  static void Encode(ByteWriter& w, const std::tuple<Ts...>& v) {
    std::apply([&](const Ts&... elems) { (Codec<Ts>::Encode(w, elems), ...); }, v);
  }
  static bool Decode(ByteReader& r, std::tuple<Ts...>& v) {
    return std::apply([&](Ts&... elems) { return (Codec<Ts>::Decode(r, elems) && ...); }, v);
  }
};

// -- vector -------------------------------------------------------------------------------

template <typename T>
struct Codec<std::vector<T>> {
  static void Encode(ByteWriter& w, const std::vector<T>& v) {
    w.WriteU32(static_cast<uint32_t>(v.size()));
    if constexpr (std::is_arithmetic_v<T>) {
      w.WriteBytes(v.data(), v.size() * sizeof(T));  // bulk path for numeric payloads
    } else {
      for (const T& e : v) {
        Codec<T>::Encode(w, e);
      }
    }
  }
  static bool Decode(ByteReader& r, std::vector<T>& v) {
    uint32_t n = r.ReadU32();
    if (!r.ok()) {
      return false;
    }
    if constexpr (std::is_arithmetic_v<T>) {
      if (r.remaining() < static_cast<size_t>(n) * sizeof(T)) {
        return false;
      }
      v.resize(n);
      return r.ReadBytes(v.data(), static_cast<size_t>(n) * sizeof(T));
    } else {
      v.clear();
      v.reserve(n);
      for (uint32_t i = 0; i < n; ++i) {
        T e{};
        if (!Codec<T>::Decode(r, e)) {
          return false;
        }
        v.push_back(std::move(e));
      }
      return true;
    }
  }
};

// -- ordered containers (operator state checkpoints) ----------------------------------------

template <typename K, typename V>
struct Codec<std::map<K, V>> {
  static void Encode(ByteWriter& w, const std::map<K, V>& m) {
    w.WriteU32(static_cast<uint32_t>(m.size()));
    for (const auto& [k, v] : m) {
      Codec<K>::Encode(w, k);
      Codec<V>::Encode(w, v);
    }
  }
  static bool Decode(ByteReader& r, std::map<K, V>& m) {
    uint32_t n = r.ReadU32();
    if (!r.ok()) {
      return false;
    }
    m.clear();
    for (uint32_t i = 0; i < n; ++i) {
      K k{};
      V v{};
      if (!Codec<K>::Decode(r, k) || !Codec<V>::Decode(r, v)) {
        return false;
      }
      m.emplace(std::move(k), std::move(v));
    }
    return true;
  }
};

template <typename T>
struct Codec<std::set<T>> {
  static void Encode(ByteWriter& w, const std::set<T>& s) {
    w.WriteU32(static_cast<uint32_t>(s.size()));
    for (const T& v : s) {
      Codec<T>::Encode(w, v);
    }
  }
  static bool Decode(ByteReader& r, std::set<T>& s) {
    uint32_t n = r.ReadU32();
    if (!r.ok()) {
      return false;
    }
    s.clear();
    for (uint32_t i = 0; i < n; ++i) {
      T v{};
      if (!Codec<T>::Decode(r, v)) {
        return false;
      }
      s.insert(std::move(v));
    }
    return true;
  }
};

// -- member-serde structs -----------------------------------------------------------------

template <typename T>
struct Codec<T, std::enable_if_t<MemberSerde<T>>> {
  static void Encode(ByteWriter& w, const T& v) { v.Encode(w); }
  static bool Decode(ByteReader& r, T& v) { return v.Decode(r); }
};

// -- convenience --------------------------------------------------------------------------

template <typename T>
std::vector<uint8_t> EncodeToBytes(const T& v) {
  ByteWriter w;
  Codec<T>::Encode(w, v);
  return std::move(w.buffer());
}

template <typename T>
bool DecodeFromBytes(std::span<const uint8_t> bytes, T& out) {
  ByteReader r(bytes);
  return Codec<T>::Decode(r, out) && r.AtEnd();
}

}  // namespace naiad

#endif  // SRC_SER_CODEC_H_
