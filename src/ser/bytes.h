// Bounded binary buffer writer/reader.
//
// The original Naiad leaned on .NET serialization; the C++ reproduction needs its own wire
// format (the calibration notes call this out as the main extra plumbing). Encoding is
// little-endian fixed-width with explicit length prefixes. The reader is fail-soft: a
// malformed or truncated buffer flips a sticky error bit instead of reading out of bounds,
// so network-facing code can reject bad frames without UB.

#ifndef SRC_SER_BYTES_H_
#define SRC_SER_BYTES_H_

#include <cstdint>
#include <cstring>
#include <span>
#include <string>
#include <vector>

#include "src/base/logging.h"

namespace naiad {

class ByteWriter {
 public:
  ByteWriter() = default;
  explicit ByteWriter(std::vector<uint8_t>* out) : external_(out) {}

  std::vector<uint8_t>& buffer() { return external_ != nullptr ? *external_ : owned_; }
  const std::vector<uint8_t>& buffer() const {
    return external_ != nullptr ? *external_ : owned_;
  }

  size_t size() const { return buffer().size(); }

  void WriteU8(uint8_t v) { buffer().push_back(v); }

  void WriteU16(uint16_t v) { AppendLittleEndian(v); }
  void WriteU32(uint32_t v) { AppendLittleEndian(v); }
  void WriteU64(uint64_t v) { AppendLittleEndian(v); }

  void WriteI64(int64_t v) { WriteU64(static_cast<uint64_t>(v)); }

  void WriteF64(double v) {
    uint64_t bits;
    std::memcpy(&bits, &v, sizeof(bits));
    WriteU64(bits);
  }
  void WriteF32(float v) {
    uint32_t bits;
    std::memcpy(&bits, &v, sizeof(bits));
    WriteU32(bits);
  }

  void WriteBytes(const void* data, size_t n) {
    const auto* p = static_cast<const uint8_t*>(data);
    buffer().insert(buffer().end(), p, p + n);
  }

  // Patches a previously written u32 in place (used for frame length back-filling).
  void PatchU32(size_t offset, uint32_t v) {
    NAIAD_CHECK(offset + 4 <= buffer().size());
    for (int i = 0; i < 4; ++i) {
      buffer()[offset + static_cast<size_t>(i)] = static_cast<uint8_t>(v >> (8 * i));
    }
  }

 private:
  template <typename T>
  void AppendLittleEndian(T v) {
    for (size_t i = 0; i < sizeof(T); ++i) {
      buffer().push_back(static_cast<uint8_t>(v >> (8 * i)));
    }
  }

  std::vector<uint8_t>* external_ = nullptr;
  std::vector<uint8_t> owned_;
};

class ByteReader {
 public:
  explicit ByteReader(std::span<const uint8_t> data) : data_(data) {}

  bool ok() const { return ok_; }
  size_t remaining() const { return data_.size() - pos_; }
  bool AtEnd() const { return pos_ == data_.size(); }

  uint8_t ReadU8() {
    if (!Ensure(1)) {
      return 0;
    }
    return data_[pos_++];
  }

  uint16_t ReadU16() { return ReadLittleEndian<uint16_t>(); }
  uint32_t ReadU32() { return ReadLittleEndian<uint32_t>(); }
  uint64_t ReadU64() { return ReadLittleEndian<uint64_t>(); }
  int64_t ReadI64() { return static_cast<int64_t>(ReadU64()); }

  double ReadF64() {
    uint64_t bits = ReadU64();
    double v;
    std::memcpy(&v, &bits, sizeof(v));
    return v;
  }
  float ReadF32() {
    uint32_t bits = ReadU32();
    float v;
    std::memcpy(&v, &bits, sizeof(v));
    return v;
  }

  bool ReadBytes(void* out, size_t n) {
    if (!Ensure(n)) {
      return false;
    }
    std::memcpy(out, data_.data() + pos_, n);
    pos_ += n;
    return true;
  }

 private:
  template <typename T>
  T ReadLittleEndian() {
    if (!Ensure(sizeof(T))) {
      return T{};
    }
    T v{};
    for (size_t i = 0; i < sizeof(T); ++i) {
      v = static_cast<T>(v | (static_cast<T>(data_[pos_ + i]) << (8 * i)));
    }
    pos_ += sizeof(T);
    return v;
  }

  bool Ensure(size_t n) {
    if (!ok_ || remaining() < n) {
      ok_ = false;
      return false;
    }
    return true;
  }

  std::span<const uint8_t> data_;
  size_t pos_ = 0;
  bool ok_ = true;
};

}  // namespace naiad

#endif  // SRC_SER_BYTES_H_
