// Columnar struct-of-arrays exchange records (the Fig. 7 graph-substrate wire format).
//
// The row-oriented exchange path pays a per-record cost three times: partition dispatch,
// buffer append, and codec dispatch. A ColumnBatch amortizes all three: the *sender*
// groups many (key, value) entries destined for one downstream vertex into two contiguous
// arithmetic columns and ships them as a single record. Encoding then hits Codec<vector>'s
// bulk-memcpy arm (SIMD-friendly, no per-element dispatch), which is why
// BM_ExchangeSendColumns tracks BM_CodecEncodeU64Vector per element instead of
// BM_ExchangeSendBatch.
//
// `part` carries the destination vertex index the sender already computed; routing a
// ColumnBatch with `Partitioner = [](const B& b) { return b.part; }` makes the exchange
// layer's modulo a no-op re-derivation (part is produced as owner(key) % parallelism).
// The wire format of existing row-oriented record types is untouched — a ColumnBatch is
// just another record type with a member-serde codec.

#ifndef SRC_SER_COLUMNS_H_
#define SRC_SER_COLUMNS_H_

#include <cstdint>
#include <type_traits>
#include <utility>
#include <vector>

#include "src/ser/codec.h"

namespace naiad {

template <typename K, typename V>
struct ColumnBatch {
  static_assert(std::is_arithmetic_v<K> && std::is_arithmetic_v<V>,
                "ColumnBatch columns must be arithmetic for the bulk codec path");

  uint64_t part = 0;      // destination vertex index (precomputed routing key)
  std::vector<K> keys;
  std::vector<V> vals;

  size_t size() const { return keys.size(); }
  bool empty() const { return keys.empty(); }

  void Clear() {
    keys.clear();
    vals.clear();
  }

  void Reserve(size_t n) {
    keys.reserve(n);
    vals.reserve(n);
  }

  void Push(K k, V v) {
    keys.push_back(k);
    vals.push_back(v);
  }

  // Member-serde (picked up by Codec<T> via the MemberSerde concept). Each column goes
  // through Codec<vector>'s length-prefixed bulk arm; both lengths are on the wire, so a
  // corrupted or hand-built frame with mismatched columns is rejected at decode.
  void Encode(ByteWriter& w) const {
    NAIAD_DCHECK(keys.size() == vals.size());
    Codec<uint64_t>::Encode(w, part);
    Codec<std::vector<K>>::Encode(w, keys);
    Codec<std::vector<V>>::Encode(w, vals);
  }
  bool Decode(ByteReader& r) {
    if (!Codec<uint64_t>::Decode(r, part) || !Codec<std::vector<K>>::Decode(r, keys) ||
        !Codec<std::vector<V>>::Decode(r, vals)) {
      return false;
    }
    return keys.size() == vals.size();
  }

  bool operator==(const ColumnBatch&) const = default;
};

// The two column shapes the graph substrate exchanges: (node id, rank contribution) and
// (node id, label proposal).
using RankColumns = ColumnBatch<uint64_t, double>;
using LabelColumns = ColumnBatch<uint64_t, uint64_t>;

// Accumulates per-destination ColumnBatches and emits each to `sink` when it reaches
// `flush_at` entries. One ColumnWriter per outlet; Drain() ships the stragglers.
template <typename K, typename V, typename SinkFn>
class ColumnWriter {
 public:
  ColumnWriter(uint32_t destinations, size_t flush_at, SinkFn sink)
      : flush_at_(flush_at), sink_(std::move(sink)), by_dst_(destinations) {
    for (uint32_t d = 0; d < destinations; ++d) {
      by_dst_[d].part = d;
    }
  }

  void Push(uint32_t dst, K k, V v) {
    ColumnBatch<K, V>& b = by_dst_[dst];
    if (b.keys.capacity() == 0) {
      b.Reserve(flush_at_);
    }
    b.Push(k, v);
    if (b.size() >= flush_at_) {
      Flush(dst);
    }
  }

  void Drain() {
    for (uint32_t d = 0; d < by_dst_.size(); ++d) {
      if (!by_dst_[d].empty()) {
        Flush(d);
      }
    }
  }

 private:
  void Flush(uint32_t dst) {
    ColumnBatch<K, V> out = std::move(by_dst_[dst]);
    by_dst_[dst] = ColumnBatch<K, V>{};
    by_dst_[dst].part = dst;
    sink_(std::move(out));
  }

  size_t flush_at_;
  SinkFn sink_;
  std::vector<ColumnBatch<K, V>> by_dst_;
};

}  // namespace naiad

#endif  // SRC_SER_COLUMNS_H_
