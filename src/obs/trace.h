// Event tracer: fixed-capacity per-thread ring buffers drained at shutdown into Chrome
// trace-event JSON (chrome://tracing / Perfetto).
//
// Concurrency contract (what keeps the fault sweep TSan-clean):
//   - RegisterThread() hands the calling thread its own TraceRing; only that thread ever
//     writes it. Registration itself is mutex-protected.
//   - Control-plane events (epoch open/close, checkpoint/restore spans) go through
//     Tracer::Control*/record under the same mutex — they are rare by construction.
//   - Rings are only read (WriteFile) after every recording thread has been joined; the
//     join provides the happens-before edge, so the record path needs no atomics at all.
//
// The record path is a timestamp read plus a store into a preallocated slot — no
// allocation, no branches beyond the ring mask. When the ring wraps, the oldest events
// are overwritten and the drain reports how many were dropped.

#ifndef SRC_OBS_TRACE_H_
#define SRC_OBS_TRACE_H_

#include <bit>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace naiad::obs {

// Monotonic nanoseconds, one clock for metrics durations and trace timestamps. All
// in-binary "processes" share it, so cluster traces align across pids for free.
inline uint64_t MonotonicNs() {
  return static_cast<uint64_t>(std::chrono::duration_cast<std::chrono::nanoseconds>(
                                   std::chrono::steady_clock::now().time_since_epoch())
                                   .count());
}

enum class TraceKind : uint8_t {
  kFrontierAdvance = 0,  // a0=stage, a1=epoch, a2=first loop counter (0 at depth 0)
  kNotifyDelivered,      // a0=stage, a1=epoch, a2=lag_ns (NotifyAt → delivery); dur=callback
  kPurgeDelivered,       // a0=stage, a1=epoch; dur=callback
  kEpochOpen,            // a0=input stage, a1=epoch
  kEpochClose,           // a0=input stage, a1=epoch, a2=1 when the input closed
  kLinkReset,            // a0=dst/src process, a1=1 on the receive side
  kLinkReconnect,        // a0=dst/src process, a1=1 on the receive side
  kLinkTornFrame,        // a0=src process, a1=bytes consumed, a2=1 if torn in the body
  kCheckpoint,           // a0=image bytes; dur=pause+serialize span
  kRestore,              // a0=image bytes; dur=restore span
  kClusterCheckpoint,    // a0=checkpoint epoch, a1=barrier rounds, a2=1 when committed;
                         // dur=quiet-point barrier + publish span
  kClusterRecover,       // a0=restored epoch (UINT64_MAX = fresh start), a1=generation;
                         // dur=teardown + restore + re-dial span
  kLinkDupFrame,         // a0=sequence number, a1=frame type, a2=1 on the receive side
  kStrayFrame,           // a0=job id, a1=src process, a2=frame type
  kSelectiveStall,       // a0=victim process, a1=barrier rounds, a2=1 on success;
                         // dur=survivor stall span (pause → verdict)
  kSelectiveSeed,        // a0=seed updates contributed, a1=log records replayed,
                         // a2=1 on the replacement; dur=seed exchange span
};

struct TraceEvent {
  TraceKind kind;
  uint64_t ts_ns;   // event time (span start for dur_ns != 0)
  uint64_t dur_ns;  // 0 for instant events
  uint64_t a0, a1, a2;
};

// Single-writer ring. The owning thread records; everyone else waits for the drain.
class TraceRing {
 public:
  TraceRing(std::string name, size_t capacity)
      : name_(std::move(name)),
        events_(std::bit_ceil(capacity < 2 ? size_t{2} : capacity)),
        mask_(events_.size() - 1) {}

  void Record(TraceKind kind, uint64_t ts_ns, uint64_t dur_ns, uint64_t a0, uint64_t a1,
              uint64_t a2) {
    events_[head_ & mask_] = TraceEvent{kind, ts_ns, dur_ns, a0, a1, a2};
    ++head_;
  }

  const std::string& name() const { return name_; }
  uint64_t recorded() const { return head_; }
  uint64_t dropped() const { return head_ > events_.size() ? head_ - events_.size() : 0; }

  // Oldest-first copy of the retained events. Only valid once the writer is quiescent.
  std::vector<TraceEvent> Drain() const {
    std::vector<TraceEvent> out;
    const uint64_t keep = head_ - dropped();
    out.reserve(keep);
    for (uint64_t i = head_ - keep; i < head_; ++i) {
      out.push_back(events_[i & mask_]);
    }
    return out;
  }

 private:
  std::string name_;
  std::vector<TraceEvent> events_;
  uint64_t mask_;
  uint64_t head_ = 0;
};

class Tracer {
 public:
  Tracer(bool enabled, size_t ring_capacity)
      : enabled_(enabled), capacity_(ring_capacity) {
    if (enabled_) {
      control_ = std::make_unique<TraceRing>("control", 4096);
    }
  }
  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  bool enabled() const { return enabled_; }

  // Called once by each recording thread (worker/sender/receiver); returns that thread's
  // private ring, or nullptr when tracing is off. Allocates — not a record-path call.
  TraceRing* RegisterThread(const std::string& name);

  // Control-plane events from driver threads (input handles, checkpointing). Locked, so
  // callers must be off the per-item hot path.
  void Control(TraceKind kind, uint64_t a0, uint64_t a1, uint64_t a2);
  void ControlSpan(TraceKind kind, uint64_t t0_ns, uint64_t t1_ns, uint64_t a0, uint64_t a1,
                   uint64_t a2);

  // Drains every ring of every (pid, tracer) pair into one Chrome trace-event JSON file.
  // Callers must have joined all recording threads first. Returns false on I/O failure.
  static bool WriteFile(const std::string& path,
                        const std::vector<std::pair<uint32_t, const Tracer*>>& parts);

  // Appends this tracer's events (metadata + sorted events per ring) to `out` as JSON
  // trace-event objects under process `pid`. `first` tracks comma placement across calls;
  // `base_ns` is subtracted from every timestamp.
  void AppendChromeEvents(std::string& out, uint32_t pid, uint64_t base_ns,
                          bool& first) const;

  // Smallest timestamp recorded by any ring (UINT64_MAX if no events) — used to normalize
  // a multi-tracer file to t=0.
  uint64_t MinTimestampNs() const;

 private:
  bool enabled_;
  size_t capacity_;
  mutable std::mutex mu_;  // guards rings_ registration and all control_ writes
  std::unique_ptr<TraceRing> control_;
  std::vector<std::unique_ptr<TraceRing>> rings_;
};

}  // namespace naiad::obs

#endif  // SRC_OBS_TRACE_H_
