// The per-process observability runtime: one Metrics registry + one Tracer, owned by the
// Controller and shared with the transport and progress router. See options.h for the
// toggles, metrics.h / trace.h for the two halves.

#ifndef SRC_OBS_OBS_H_
#define SRC_OBS_OBS_H_

#include <cstdint>

#include "src/obs/metrics.h"
#include "src/obs/options.h"
#include "src/obs/trace.h"

namespace naiad::obs {

class Obs {
 public:
  Obs(const ObsOptions& options, uint32_t workers_per_process, uint32_t processes)
      : options_(options),
        metrics_(options.metrics, workers_per_process, processes),
        tracer_(options.tracing, options.trace_ring_capacity) {}
  Obs(const Obs&) = delete;
  Obs& operator=(const Obs&) = delete;

  const ObsOptions& options() const { return options_; }
  Metrics& metrics() { return metrics_; }
  const Metrics& metrics() const { return metrics_; }
  Tracer& tracer() { return tracer_; }
  const Tracer& tracer() const { return tracer_; }

 private:
  ObsOptions options_;
  Metrics metrics_;
  Tracer tracer_;
};

}  // namespace naiad::obs

#endif  // SRC_OBS_OBS_H_
