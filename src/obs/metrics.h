// Metrics registry: per-worker / per-link / per-process blocks of relaxed-atomic counters
// and log2-bucketed histograms.
//
// Layout rules, in service of "near-nothing when disabled, cheap when enabled":
//   - every block is alignas(64) so two workers never share a cache line;
//   - all mutation is relaxed fetch_add on pre-allocated atomics — no locks, no
//     allocation, no stronger ordering (snapshots tolerate torn cross-counter views);
//   - disabled registries hand out nullptr blocks, so call sites pay one predictable
//     branch and skip the clock reads entirely.
//
// Snapshots merge across workers/links/processes at bucket granularity (SnapshotBuilder),
// then finalize to named counters and histogram percentiles (ObsSnapshot) for
// ClusterStats and the BENCH_*.json records.

#ifndef SRC_OBS_METRICS_H_
#define SRC_OBS_METRICS_H_

#include <atomic>
#include <bit>
#include <cmath>
#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

namespace naiad::obs {

// Power-of-two-bucketed histogram: value v lands in bucket bit_width(v), so bucket b
// covers [2^(b-1), 2^b). Recording is two relaxed fetch_adds; there are no locks and no
// per-value allocation, making it safe on worker and transport hot paths.
class LogHistogram {
 public:
  static constexpr size_t kBuckets = 65;  // bit_width(uint64_t) ∈ [0, 64]

  void Record(uint64_t v) {
    buckets_[std::bit_width(v)].fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(v, std::memory_order_relaxed);
  }

  uint64_t bucket(size_t b) const { return buckets_[b].load(std::memory_order_relaxed); }
  uint64_t sum() const { return sum_.load(std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> buckets_[kBuckets] = {};
  std::atomic<uint64_t> sum_{0};
};

struct HistogramSnapshot {
  std::string name;
  uint64_t count = 0;
  double mean = 0;
  double p50 = 0;
  double p99 = 0;
  double max = 0;  // upper bound of the highest occupied bucket
};

// The merged, finalized view: flat counters plus histogram summaries, both sorted by name
// (deterministic output for the JSON records).
struct ObsSnapshot {
  std::vector<std::pair<std::string, uint64_t>> counters;
  std::vector<HistogramSnapshot> histograms;
  bool empty() const { return counters.empty() && histograms.empty(); }

  uint64_t counter(const std::string& name) const {
    for (const auto& [n, v] : counters) {
      if (n == name) {
        return v;
      }
    }
    return 0;
  }
};

// Accumulates same-named histograms/counters from many blocks (workers, links, processes)
// before percentiles are computed — merging finalized percentiles would be wrong.
class SnapshotBuilder {
 public:
  void Counter(const std::string& name, uint64_t v) { counters_[name] += v; }

  void Histogram(const std::string& name, const LogHistogram& h) {
    Accum& a = accums_[name];
    for (size_t b = 0; b < LogHistogram::kBuckets; ++b) {
      a.buckets[b] += h.bucket(b);
    }
    a.sum += h.sum();
  }

  ObsSnapshot Finalize() const {
    ObsSnapshot out;
    out.counters.assign(counters_.begin(), counters_.end());
    for (const auto& [name, a] : accums_) {
      uint64_t count = 0;
      for (uint64_t b : a.buckets) {
        count += b;
      }
      if (count == 0) {
        continue;
      }
      HistogramSnapshot s;
      s.name = name;
      s.count = count;
      s.mean = static_cast<double>(a.sum) / static_cast<double>(count);
      s.p50 = Quantile(a, count, 0.50);
      s.p99 = Quantile(a, count, 0.99);
      for (size_t b = LogHistogram::kBuckets; b-- > 0;) {
        if (a.buckets[b] != 0) {
          s.max = UpperBound(b);
          break;
        }
      }
      out.histograms.push_back(std::move(s));
    }
    return out;
  }

 private:
  struct Accum {
    uint64_t buckets[LogHistogram::kBuckets] = {};
    uint64_t sum = 0;
  };

  // Bucket b holds values in [2^(b-1), 2^b); represent it by its geometric center-ish
  // midpoint. Bucket 0 is exactly {0}.
  static double Representative(size_t b) {
    if (b == 0) {
      return 0;
    }
    const double lo = std::ldexp(1.0, static_cast<int>(b) - 1);
    return lo * 1.5;
  }
  static double UpperBound(size_t b) {
    return b == 0 ? 0 : std::ldexp(1.0, static_cast<int>(b));
  }

  static double Quantile(const Accum& a, uint64_t count, double q) {
    const double target = q * static_cast<double>(count);
    uint64_t cum = 0;
    for (size_t b = 0; b < LogHistogram::kBuckets; ++b) {
      cum += a.buckets[b];
      if (static_cast<double>(cum) >= target) {
        return Representative(b);
      }
    }
    return Representative(LogHistogram::kBuckets - 1);
  }

  std::map<std::string, uint64_t> counters_;
  std::map<std::string, Accum> accums_;
};

// One block per worker thread; only that worker mutates it (snapshots read racily, which
// relaxed atomics make well-defined).
struct alignas(64) WorkerMetrics {
  std::atomic<uint64_t> items_run{0};
  std::atomic<uint64_t> notifications_delivered{0};
  std::atomic<uint64_t> purges_delivered{0};
  std::atomic<uint64_t> progress_flushes{0};

  LogHistogram dispatch_latency_ns;  // EnqueueExternal/Local → RunItem start
  LogHistogram run_time_ns;          // one callback + output flush
  LogHistogram local_queue_depth;    // after each inbox drain
  LogHistogram notify_lag_ns;        // NotifyAt → OnNotify wall time
  LogHistogram flush_updates;        // ProgressBuffer::Take() size per worker flush
};

// One block per outbound link (dst process); mutated by Send() callers and the link's
// sender thread.
struct alignas(64) LinkMetrics {
  LogHistogram send_queue_depth;  // queue length right after each enqueue
  LogHistogram writev_batch;      // frames coalesced per sender-thread drain
};

// Process-wide counters that have no single owning thread (progress router, recovery).
struct alignas(64) ProcessMetrics {
  LogHistogram progress_emit_updates;  // updates per wire flush (Emit/EmitFromCentral)
  std::atomic<uint64_t> cluster_checkpoints{0};  // committed cluster checkpoint epochs
  std::atomic<uint64_t> cluster_recoveries{0};   // coordinated restarts participated in

  // Scoped progress tracking (ProgressTracker::ScopingStats, stored once at Stop()).
  std::atomic<uint64_t> progress_boundary_updates{0};  // image deltas crossing a scope
  std::atomic<uint64_t> progress_boundary_bytes{0};    // their encoded size
  std::atomic<uint64_t> progress_occ_map_peak{0};      // Σ scopes' occurrence-map peak
  std::atomic<uint64_t> progress_occ_map_peak_root{0};  // root scope's map peak alone
  std::atomic<uint64_t> progress_query_memo_hits{0};   // frontier queries memo-answered
  std::atomic<uint64_t> progress_query_scans{0};       // frontier queries that scanned

  // Selective rollback recovery (src/ft/log_recovery.h).
  std::atomic<uint64_t> selective_recoveries{0};     // survivor-preserving restarts
  std::atomic<uint64_t> log_records_logged{0};       // outbound data frames durably logged
  std::atomic<uint64_t> log_bytes_logged{0};         // their encoded record bytes
  std::atomic<uint64_t> log_rebases{0};              // watermark GC truncations
  std::atomic<uint64_t> replayed_frames_dropped{0};  // regenerated frames deduped at recv
};

class Metrics {
 public:
  Metrics(bool enabled, uint32_t workers, uint32_t links)
      : enabled_(enabled),
        workers_(enabled ? workers : 0),
        links_(enabled ? links : 0) {}
  Metrics(const Metrics&) = delete;
  Metrics& operator=(const Metrics&) = delete;

  bool enabled() const { return enabled_; }
  WorkerMetrics* worker(uint32_t i) { return enabled_ ? &workers_[i] : nullptr; }
  LinkMetrics* link(uint32_t i) { return enabled_ ? &links_[i] : nullptr; }
  ProcessMetrics* process() { return enabled_ ? &process_ : nullptr; }

  // Merges this process's blocks into `b`. Histograms and the summed counters merge
  // across processes by name; per-worker counters get globally unique names.
  void AccumulateInto(SnapshotBuilder& b, uint32_t process_id) const {
    if (!enabled_) {
      return;
    }
    for (size_t i = 0; i < workers_.size(); ++i) {
      const WorkerMetrics& w = workers_[i];
      const uint64_t items = w.items_run.load(std::memory_order_relaxed);
      const uint64_t notifies = w.notifications_delivered.load(std::memory_order_relaxed);
      b.Counter("items_run", items);
      b.Counter("notifications_delivered", notifies);
      b.Counter("purges_delivered", w.purges_delivered.load(std::memory_order_relaxed));
      b.Counter("progress_flushes", w.progress_flushes.load(std::memory_order_relaxed));
      const std::string g =
          ".w" + std::to_string(process_id * workers_.size() + i);
      b.Counter("items_run" + g, items);
      b.Counter("notifications_delivered" + g, notifies);
      b.Histogram("dispatch_latency_ns", w.dispatch_latency_ns);
      b.Histogram("run_time_ns", w.run_time_ns);
      b.Histogram("local_queue_depth", w.local_queue_depth);
      b.Histogram("notify_lag_ns", w.notify_lag_ns);
      b.Histogram("flush_updates", w.flush_updates);
    }
    for (const LinkMetrics& l : links_) {
      b.Histogram("send_queue_depth", l.send_queue_depth);
      b.Histogram("writev_batch", l.writev_batch);
    }
    b.Histogram("progress_emit_updates", process_.progress_emit_updates);
    b.Counter("cluster_checkpoints",
              process_.cluster_checkpoints.load(std::memory_order_relaxed));
    b.Counter("cluster_recoveries",
              process_.cluster_recoveries.load(std::memory_order_relaxed));
    b.Counter("progress_boundary_updates",
              process_.progress_boundary_updates.load(std::memory_order_relaxed));
    b.Counter("progress_boundary_bytes",
              process_.progress_boundary_bytes.load(std::memory_order_relaxed));
    b.Counter("progress_occ_map_peak",
              process_.progress_occ_map_peak.load(std::memory_order_relaxed));
    b.Counter("progress_occ_map_peak_root",
              process_.progress_occ_map_peak_root.load(std::memory_order_relaxed));
    b.Counter("progress_query_memo_hits",
              process_.progress_query_memo_hits.load(std::memory_order_relaxed));
    b.Counter("progress_query_scans",
              process_.progress_query_scans.load(std::memory_order_relaxed));
    b.Counter("selective_recoveries",
              process_.selective_recoveries.load(std::memory_order_relaxed));
    b.Counter("log_records_logged",
              process_.log_records_logged.load(std::memory_order_relaxed));
    b.Counter("log_bytes_logged",
              process_.log_bytes_logged.load(std::memory_order_relaxed));
    b.Counter("log_rebases", process_.log_rebases.load(std::memory_order_relaxed));
    b.Counter("replayed_frames_dropped",
              process_.replayed_frames_dropped.load(std::memory_order_relaxed));
  }

  // Single-process convenience.
  ObsSnapshot Snapshot(uint32_t process_id) const {
    SnapshotBuilder b;
    AccumulateInto(b, process_id);
    return b.Finalize();
  }

 private:
  bool enabled_;
  std::vector<WorkerMetrics> workers_;  // sized once; never grows (blocks are immovable)
  std::vector<LinkMetrics> links_;      // indexed by dst process; [self] unused
  ProcessMetrics process_;
};

}  // namespace naiad::obs

#endif  // SRC_OBS_METRICS_H_
