// Observability toggles (metrics + tracing), carried on Config / ClusterOptions.
//
// Both features are off by default and the hot paths reduce to one null-pointer branch
// when disabled, so an ObsOptions{} run is indistinguishable from a build without the
// subsystem (the acceptance bar for every bench in BENCH_*.json).

#ifndef SRC_OBS_OPTIONS_H_
#define SRC_OBS_OPTIONS_H_

#include <cstddef>
#include <string>

namespace naiad::obs {

struct ObsOptions {
  // Per-worker counters and log-bucketed histograms (see metrics.h). Adds two steady-clock
  // reads and a few relaxed fetch_adds per delivered work item.
  bool metrics = false;
  // Per-thread trace ring buffers (see trace.h). Events are recorded only at scheduler
  // boundaries (notification deliveries, epoch transitions, link resets), never per record.
  bool tracing = false;
  // Events retained per thread ring; rounded up to a power of two. Old events are
  // overwritten ring-style — the drained trace keeps the most recent `trace_ring_capacity`.
  size_t trace_ring_capacity = 16384;
  // When non-empty, the owner (Controller::Stop for a single process, Cluster::Run for a
  // cluster) drains every ring into a Chrome trace-event JSON file at this path.
  std::string trace_path;

  bool any() const { return metrics || tracing; }
};

}  // namespace naiad::obs

#endif  // SRC_OBS_OPTIONS_H_
