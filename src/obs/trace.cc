#include "src/obs/trace.h"

#include <algorithm>
#include <cstdio>

namespace naiad::obs {

namespace {

struct KindDesc {
  const char* name;
  bool span;  // "X" (complete) vs "i" (instant)
};

KindDesc Describe(TraceKind k) {
  switch (k) {
    case TraceKind::kFrontierAdvance:
      return {"frontier", false};
    case TraceKind::kNotifyDelivered:
      return {"notify", true};
    case TraceKind::kPurgeDelivered:
      return {"purge", true};
    case TraceKind::kEpochOpen:
      return {"epoch_open", false};
    case TraceKind::kEpochClose:
      return {"epoch_close", false};
    case TraceKind::kLinkReset:
      return {"link_reset", false};
    case TraceKind::kLinkReconnect:
      return {"link_reconnect", false};
    case TraceKind::kLinkTornFrame:
      return {"link_torn_frame", false};
    case TraceKind::kCheckpoint:
      return {"checkpoint", true};
    case TraceKind::kRestore:
      return {"restore", true};
    case TraceKind::kClusterCheckpoint:
      return {"cluster_checkpoint", true};
    case TraceKind::kClusterRecover:
      return {"cluster_recover", true};
    case TraceKind::kLinkDupFrame:
      return {"link_dup_frame", false};
    case TraceKind::kStrayFrame:
      return {"stray_frame", false};
    case TraceKind::kSelectiveStall:
      return {"selective_stall", true};
    case TraceKind::kSelectiveSeed:
      return {"selective_seed", true};
  }
  return {"?", false};
}

void AppendArgs(std::string& out, const TraceEvent& e) {
  char buf[160];
  switch (e.kind) {
    case TraceKind::kFrontierAdvance:
      std::snprintf(buf, sizeof(buf),
                    "{\"stage\": %llu, \"epoch\": %llu, \"loop\": %llu}",
                    static_cast<unsigned long long>(e.a0),
                    static_cast<unsigned long long>(e.a1),
                    static_cast<unsigned long long>(e.a2));
      break;
    case TraceKind::kNotifyDelivered:
      std::snprintf(buf, sizeof(buf),
                    "{\"stage\": %llu, \"epoch\": %llu, \"lag_us\": %.3f}",
                    static_cast<unsigned long long>(e.a0),
                    static_cast<unsigned long long>(e.a1),
                    static_cast<double>(e.a2) / 1000.0);
      break;
    case TraceKind::kPurgeDelivered:
    case TraceKind::kEpochOpen:
    case TraceKind::kEpochClose:
      std::snprintf(buf, sizeof(buf), "{\"stage\": %llu, \"epoch\": %llu, \"final\": %llu}",
                    static_cast<unsigned long long>(e.a0),
                    static_cast<unsigned long long>(e.a1),
                    static_cast<unsigned long long>(e.a2));
      break;
    case TraceKind::kLinkReset:
    case TraceKind::kLinkReconnect:
      std::snprintf(buf, sizeof(buf), "{\"peer\": %llu, \"side\": \"%s\"}",
                    static_cast<unsigned long long>(e.a0), e.a1 != 0 ? "recv" : "send");
      break;
    case TraceKind::kLinkTornFrame:
      std::snprintf(buf, sizeof(buf), "{\"peer\": %llu, \"bytes\": %llu, \"in\": \"%s\"}",
                    static_cast<unsigned long long>(e.a0),
                    static_cast<unsigned long long>(e.a1),
                    e.a2 != 0 ? "body" : "header");
      break;
    case TraceKind::kCheckpoint:
    case TraceKind::kRestore:
      std::snprintf(buf, sizeof(buf), "{\"bytes\": %llu}",
                    static_cast<unsigned long long>(e.a0));
      break;
    case TraceKind::kClusterCheckpoint:
      std::snprintf(buf, sizeof(buf),
                    "{\"epoch\": %llu, \"rounds\": %llu, \"committed\": %llu}",
                    static_cast<unsigned long long>(e.a0),
                    static_cast<unsigned long long>(e.a1),
                    static_cast<unsigned long long>(e.a2));
      break;
    case TraceKind::kClusterRecover:
      std::snprintf(buf, sizeof(buf), "{\"restored_epoch\": %lld, \"generation\": %llu}",
                    static_cast<long long>(e.a0),
                    static_cast<unsigned long long>(e.a1));
      break;
    case TraceKind::kLinkDupFrame:
      std::snprintf(buf, sizeof(buf), "{\"seq\": %llu, \"type\": %llu, \"side\": \"%s\"}",
                    static_cast<unsigned long long>(e.a0),
                    static_cast<unsigned long long>(e.a1), e.a2 != 0 ? "recv" : "send");
      break;
    case TraceKind::kStrayFrame:
      std::snprintf(buf, sizeof(buf), "{\"job\": %llu, \"src\": %llu, \"type\": %llu}",
                    static_cast<unsigned long long>(e.a0),
                    static_cast<unsigned long long>(e.a1),
                    static_cast<unsigned long long>(e.a2));
      break;
    case TraceKind::kSelectiveStall:
      std::snprintf(buf, sizeof(buf), "{\"victim\": %llu, \"rounds\": %llu, \"ok\": %llu}",
                    static_cast<unsigned long long>(e.a0),
                    static_cast<unsigned long long>(e.a1),
                    static_cast<unsigned long long>(e.a2));
      break;
    case TraceKind::kSelectiveSeed:
      std::snprintf(buf, sizeof(buf),
                    "{\"seeds\": %llu, \"replayed\": %llu, \"replacement\": %llu}",
                    static_cast<unsigned long long>(e.a0),
                    static_cast<unsigned long long>(e.a1),
                    static_cast<unsigned long long>(e.a2));
      break;
    default:
      std::snprintf(buf, sizeof(buf), "{}");
      break;
  }
  out += buf;
}

void AppendOne(std::string& out, uint32_t pid, uint32_t tid, const TraceEvent& e,
               uint64_t base_ns, bool& first) {
  const KindDesc d = Describe(e.kind);
  char buf[224];
  const double ts_us = static_cast<double>(e.ts_ns - base_ns) / 1000.0;
  if (d.span) {
    std::snprintf(buf, sizeof(buf),
                  "{\"name\": \"%s\", \"ph\": \"X\", \"pid\": %u, \"tid\": %u, "
                  "\"ts\": %.3f, \"dur\": %.3f, \"args\": ",
                  d.name, pid, tid, ts_us, static_cast<double>(e.dur_ns) / 1000.0);
  } else {
    std::snprintf(buf, sizeof(buf),
                  "{\"name\": \"%s\", \"ph\": \"i\", \"s\": \"t\", \"pid\": %u, "
                  "\"tid\": %u, \"ts\": %.3f, \"args\": ",
                  d.name, pid, tid, ts_us);
  }
  out += first ? "\n" : ",\n";
  first = false;
  out += buf;
  AppendArgs(out, e);
  out += "}";
}

void AppendMeta(std::string& out, uint32_t pid, uint32_t tid, const char* what,
                const std::string& name, bool& first) {
  char buf[96];
  std::snprintf(buf, sizeof(buf),
                "{\"name\": \"%s\", \"ph\": \"M\", \"pid\": %u, \"tid\": %u, "
                "\"args\": {\"name\": \"",
                what, pid, tid);
  out += first ? "\n" : ",\n";
  first = false;
  out += buf;
  out += name;  // thread/process names contain no JSON metacharacters by construction
  out += "\"}}";
}

}  // namespace

TraceRing* Tracer::RegisterThread(const std::string& name) {
  if (!enabled_) {
    return nullptr;
  }
  std::lock_guard<std::mutex> lock(mu_);
  rings_.push_back(std::make_unique<TraceRing>(name, capacity_));
  return rings_.back().get();
}

void Tracer::Control(TraceKind kind, uint64_t a0, uint64_t a1, uint64_t a2) {
  if (!enabled_) {
    return;
  }
  std::lock_guard<std::mutex> lock(mu_);
  control_->Record(kind, MonotonicNs(), 0, a0, a1, a2);
}

void Tracer::ControlSpan(TraceKind kind, uint64_t t0_ns, uint64_t t1_ns, uint64_t a0,
                         uint64_t a1, uint64_t a2) {
  if (!enabled_) {
    return;
  }
  std::lock_guard<std::mutex> lock(mu_);
  control_->Record(kind, t0_ns, t1_ns > t0_ns ? t1_ns - t0_ns : 0, a0, a1, a2);
}

uint64_t Tracer::MinTimestampNs() const {
  uint64_t min = UINT64_MAX;
  if (!enabled_) {
    return min;
  }
  std::lock_guard<std::mutex> lock(mu_);
  auto scan = [&min](const TraceRing& ring) {
    for (const TraceEvent& e : ring.Drain()) {
      min = std::min(min, e.ts_ns);
    }
  };
  scan(*control_);
  for (const auto& r : rings_) {
    scan(*r);
  }
  return min;
}

void Tracer::AppendChromeEvents(std::string& out, uint32_t pid, uint64_t base_ns,
                                bool& first) const {
  if (!enabled_) {
    return;
  }
  std::lock_guard<std::mutex> lock(mu_);
  AppendMeta(out, pid, 0, "process_name", "naiad p" + std::to_string(pid), first);
  uint32_t tid = 0;
  auto emit_ring = [&](const TraceRing& ring) {
    AppendMeta(out, pid, tid, "thread_name", ring.name(), first);
    std::vector<TraceEvent> events = ring.Drain();
    // Spans are recorded at completion with ts = start, so a long span can be recorded
    // after (and start before) a short event; stable-sort restores per-thread
    // monotonicity, which the trace smoke check asserts.
    std::stable_sort(events.begin(), events.end(),
                     [](const TraceEvent& a, const TraceEvent& b) { return a.ts_ns < b.ts_ns; });
    for (const TraceEvent& e : events) {
      AppendOne(out, pid, tid, e, base_ns, first);
    }
    if (ring.dropped() > 0) {
      char buf[160];
      std::snprintf(buf, sizeof(buf),
                    ",\n{\"name\": \"trace_dropped\", \"ph\": \"i\", \"s\": \"t\", "
                    "\"pid\": %u, \"tid\": %u, \"ts\": %.3f, \"args\": {\"events\": %llu}}",
                    pid, tid,
                    events.empty()
                        ? 0.0
                        : static_cast<double>(events.back().ts_ns - base_ns) / 1000.0,
                    static_cast<unsigned long long>(ring.dropped()));
      out += buf;
    }
    ++tid;
  };
  emit_ring(*control_);
  for (const auto& r : rings_) {
    emit_ring(*r);
  }
}

bool Tracer::WriteFile(const std::string& path,
                       const std::vector<std::pair<uint32_t, const Tracer*>>& parts) {
  uint64_t base = UINT64_MAX;
  for (const auto& [pid, tracer] : parts) {
    base = std::min(base, tracer->MinTimestampNs());
  }
  if (base == UINT64_MAX) {
    base = 0;
  }
  std::string out = "{\"displayTimeUnit\": \"ms\", \"traceEvents\": [";
  bool first = true;
  for (const auto& [pid, tracer] : parts) {
    tracer->AppendChromeEvents(out, pid, base, first);
  }
  out += "\n]}\n";
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "obs: cannot write trace %s\n", path.c_str());
    return false;
  }
  const bool ok = std::fwrite(out.data(), 1, out.size(), f) == out.size();
  std::fclose(f);
  return ok;
}

}  // namespace naiad::obs
