// Deterministic fault injection for the distributed runtime.
//
// A FaultPlan is a pure function of one uint64_t seed: it derives an independent
// splitmix64 decision stream per simplex connection (keyed by the (src, dst) process
// pair — one stream for its send half, a domain-separated one for its receive half) and
// per process's progress accumulator. Every injected fault — partial writes, zero-byte
// "EINTR storm" retries, bounded send stalls, connection resets at frame boundaries,
// torn reads, modeled receive-side EINTR storms, bounded pre-dispatch holds and delayed
// replacement-connection adoption, deferred/early/shuffled accumulator flushes — is a
// schedule perturbation that preserves the protocol contract (per-link FIFO, §3.3 flush
// safety), so any run under any plan must produce results identical to the fault-free
// run. A failing schedule reproduces from its seed alone: decisions depend only on the
// seed and on each consumer's own event index (frames written on a link, bytes stepped
// through a write or read, flushes attempted), not on cross-thread timing.
//
// Wiring: ClusterOptions::fault_plan (tests), or TcpTransport::SetFaultPlan plus the
// DistributedProgressRouter `faults` constructor argument directly.

#ifndef SRC_TESTING_FAULT_H_
#define SRC_TESTING_FAULT_H_

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <vector>

#include "src/base/rng.h"
#include "src/net/fault_hooks.h"

namespace naiad {

// Per-class fault intensities. All probabilities are per decision point; zero disables
// the class. The defaults are a no-op plan.
struct FaultProfile {
  // Socket write faults (Socket::WriteAll steps).
  double partial_write_prob = 0.0;   // cap one send() at max_chunk_bytes
  size_t max_chunk_bytes = 8;
  double delay_prob = 0.0;           // stall the sender before a send()
  uint32_t max_delay_us = 100;
  double spurious_retry_prob = 0.0;  // zero-byte send()s before the real one
  uint32_t max_spurious_retries = 3;
  // Transport frame faults (per frame on a link).
  double reset_prob = 0.0;           // close + re-dial before the frame
  uint32_t max_resets_per_link = 8;
  // Progress accumulator faults (§3.3-safe).
  double defer_idle_flush_prob = 0.0;   // skip an idle flush (bounded consecutive skips)
  uint32_t max_consecutive_defers = 3;
  double idle_flush_delay_prob = 0.0;   // stall inside the idle flush instead
  uint32_t max_flush_delay_us = 200;
  double early_flush_prob = 0.0;        // flush although holding would be safe
  bool shuffle_flush_batches = false;   // reorder within same-sign runs
  // Socket read faults (Socket::ReadExact steps on receiver threads).
  double torn_read_prob = 0.0;          // cap one recv() at max_read_chunk_bytes
  size_t max_read_chunk_bytes = 8;
  double read_eintr_prob = 0.0;         // modeled interrupted recv()s (yield + retry)
  uint32_t max_read_eintr_spins = 3;
  double read_delay_prob = 0.0;         // stall the receiver before a recv()
  uint32_t max_read_delay_us = 100;
  // Transport receive-path faults (per frame / per adopted replacement connection).
  double dispatch_delay_prob = 0.0;     // hold a decoded frame before enqueue (FIFO-safe)
  uint32_t max_dispatch_delay_us = 200;
  double adoption_delay_prob = 0.0;     // stall before adopting a replacement connection
  uint32_t max_adoption_delay_us = 300;
  // Per-link dispatch skew: when set, every receive link scales its dispatch-delay
  // probability and magnitude by a factor drawn once from a domain-separated per-link
  // stream, and spends delays against an independent per-link budget. Different links
  // therefore see systematically different skews (fast links race far ahead of slow
  // ones), while per-link FIFO stays intact by construction — the receiver thread itself
  // sleeps, so no frame overtakes another on its own link.
  bool link_dispatch_skew = false;
  uint64_t dispatch_delay_budget_us = 50000;  // per-link cap on total injected delay
  // Duplicate delivery (per frame on a link): write the frame twice, same sequence
  // number, relying on receiver-side dedup to drop the copy.
  double duplicate_prob = 0.0;
  uint32_t max_dups_per_link = 4;

  // A mixed-intensity profile with every fault class enabled, derived from the seed so a
  // sweep covers light and heavy injection. Used by the seeded test sweeps.
  static FaultProfile FromSeed(uint64_t seed);
};

// Write + reset faults for one simplex connection. Consumed by exactly one sender thread
// (the LinkFaultHook contract), so no locking.
class LinkFaults final : public LinkFaultHook {
 public:
  LinkFaults(uint64_t seed, const FaultProfile& profile) : rng_(seed), profile_(profile) {}

  WriteStep Next(size_t remaining) override;
  bool ShouldResetBefore(uint64_t frame_index) override;
  bool ShouldDuplicateFrame(uint64_t frame_index) override;

  uint64_t resets_injected() const { return resets_; }
  uint64_t dups_injected() const { return dups_; }

 private:
  Rng rng_;
  FaultProfile profile_;
  uint64_t resets_ = 0;
  uint64_t dups_ = 0;
};

// Read + dispatch/adoption-delay faults for the receive half of one simplex connection.
// Consumed by exactly one receiver thread (the RecvLinkFaultHook contract), so no locking.
class RecvLinkFaults final : public RecvLinkFaultHook {
 public:
  // `skew_seed` feeds the one-shot per-link skew draw (used only when
  // profile.link_dispatch_skew is set); the decision stream itself stays on `seed`.
  RecvLinkFaults(uint64_t seed, const FaultProfile& profile, uint64_t skew_seed = 0);

  ReadStep Next(size_t remaining) override;
  uint32_t DispatchDelayUs(uint64_t frame_index) override;
  uint32_t AdoptionDelayUs(uint64_t replacement_index) override;

  double skew_multiplier() const { return skew_mult_; }

 private:
  Rng rng_;
  FaultProfile profile_;
  double skew_mult_ = 1.0;
  uint64_t delay_budget_us_ = ~uint64_t{0};
};

// Flush perturbation for one process's accumulators. Called from multiple worker threads,
// so decisions are serialized internally.
class ProgressFaults final : public ProgressFaultHook {
 public:
  ProgressFaults(uint64_t seed, const FaultProfile& profile)
      : rng_(seed), profile_(profile) {}

  bool BeforeIdleFlush() override;
  bool ForceEarlyFlush() override;
  void PerturbFlushBatch(std::vector<ProgressUpdate>& batch) override;

 private:
  std::mutex mu_;
  Rng rng_;
  FaultProfile profile_;
  uint32_t consecutive_defers_ = 0;
};

class FaultPlan final : public ClusterFaultPlan {
 public:
  FaultPlan(uint64_t seed, FaultProfile profile) : seed_(seed), profile_(profile) {}

  LinkFaultHook* Link(uint32_t src_process, uint32_t dst_process) override;
  ProgressFaultHook* Progress(uint32_t process) override;
  RecvLinkFaultHook* RecvLink(uint32_t src_process, uint32_t dst_process) override;

  uint64_t seed() const { return seed_; }
  const FaultProfile& profile() const { return profile_; }
  // Resets / duplicates actually injected across all links so far (for test assertions).
  uint64_t total_resets() const;
  uint64_t total_duplicates() const;

 private:
  uint64_t seed_;
  FaultProfile profile_;
  mutable std::mutex mu_;  // guards lazy hook creation (Start() runs per-process concurrently)
  std::map<uint64_t, std::unique_ptr<LinkFaults>> links_;
  std::map<uint64_t, std::unique_ptr<RecvLinkFaults>> recv_links_;
  std::map<uint32_t, std::unique_ptr<ProgressFaults>> processes_;
};

}  // namespace naiad

#endif  // SRC_TESTING_FAULT_H_
