#include "src/testing/fault.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <thread>

#include "src/base/hash.h"

namespace naiad {

namespace {

// Domain-separated child seeds so link, receive, and progress streams never correlate.
constexpr uint64_t kLinkDomain = 0x4c494e4bULL;      // "LINK"
constexpr uint64_t kRecvDomain = 0x52454356ULL;      // "RECV"
constexpr uint64_t kProgressDomain = 0x50524f47ULL;  // "PROG"
constexpr uint64_t kSkewDomain = 0x534b4557ULL;      // "SKEW"

// Seeded Fisher-Yates over [begin, end).
void ShuffleRange(std::vector<ProgressUpdate>& v, size_t begin, size_t end, Rng& rng) {
  for (size_t i = end - begin; i > 1; --i) {
    std::swap(v[begin + i - 1], v[begin + rng.Below(i)]);
  }
}

}  // namespace

FaultProfile FaultProfile::FromSeed(uint64_t seed) {
  Rng rng(HashCombine(seed, 0x50524f46494c45ULL));  // "PROFILE"
  FaultProfile p;
  // Every class stays enabled; the seed scales intensity so a sweep visits both gentle
  // and hostile schedules. Delays are kept small: they multiply across every write step.
  p.partial_write_prob = 0.05 + 0.45 * rng.NextDouble();
  p.max_chunk_bytes = 1 + rng.Below(16);
  p.delay_prob = 0.01 + 0.05 * rng.NextDouble();
  p.max_delay_us = 20 + static_cast<uint32_t>(rng.Below(180));
  p.spurious_retry_prob = 0.02 + 0.2 * rng.NextDouble();
  p.max_spurious_retries = 1 + static_cast<uint32_t>(rng.Below(4));
  p.reset_prob = 0.002 + 0.02 * rng.NextDouble();
  p.max_resets_per_link = 2 + static_cast<uint32_t>(rng.Below(6));
  p.defer_idle_flush_prob = 0.1 + 0.4 * rng.NextDouble();
  p.max_consecutive_defers = 1 + static_cast<uint32_t>(rng.Below(4));
  p.idle_flush_delay_prob = 0.05 + 0.15 * rng.NextDouble();
  p.max_flush_delay_us = 20 + static_cast<uint32_t>(rng.Below(300));
  p.early_flush_prob = 0.05 + 0.25 * rng.NextDouble();
  p.shuffle_flush_batches = rng.Below(2) == 0;
  // Receive side mirrors the send side: torn reads and modeled EINTR are cheap and can
  // be frequent; dispatch delays multiply per frame, so their probability stays low.
  p.torn_read_prob = 0.05 + 0.45 * rng.NextDouble();
  p.max_read_chunk_bytes = 1 + rng.Below(16);
  p.read_eintr_prob = 0.02 + 0.2 * rng.NextDouble();
  p.max_read_eintr_spins = 1 + static_cast<uint32_t>(rng.Below(4));
  p.read_delay_prob = 0.01 + 0.05 * rng.NextDouble();
  p.max_read_delay_us = 20 + static_cast<uint32_t>(rng.Below(180));
  p.dispatch_delay_prob = 0.02 + 0.08 * rng.NextDouble();
  p.max_dispatch_delay_us = 20 + static_cast<uint32_t>(rng.Below(180));
  // Adoption delays are consulted once per replacement connection — rare — so they can
  // be near-certain and comparatively long.
  p.adoption_delay_prob = 0.3 + 0.5 * rng.NextDouble();
  p.max_adoption_delay_us = 50 + static_cast<uint32_t>(rng.Below(250));
  // Per-link skew (drawn last so the earlier fields keep their values across seeds):
  // every sweep seed sees systematically fast and slow links side by side.
  p.link_dispatch_skew = true;
  p.dispatch_delay_budget_us = 20000 + rng.Below(80000);
  // Duplicate delivery (appended after the earlier draws so those keep their values
  // across seeds): consulted once per frame, so the probability stays low; the per-link
  // cap keeps even hostile seeds from flooding the wire with copies.
  p.duplicate_prob = 0.005 + 0.03 * rng.NextDouble();
  p.max_dups_per_link = 2 + static_cast<uint32_t>(rng.Below(6));
  return p;
}

WriteStep LinkFaults::Next(size_t remaining) {
  WriteStep step;
  if (profile_.spurious_retry_prob > 0 && rng_.NextDouble() < profile_.spurious_retry_prob) {
    step.zero_writes = 1 + static_cast<uint32_t>(rng_.Below(
                               std::max<uint32_t>(1, profile_.max_spurious_retries)));
  }
  if (profile_.delay_prob > 0 && rng_.NextDouble() < profile_.delay_prob) {
    step.delay_us = 1 + static_cast<uint32_t>(rng_.Below(
                            std::max<uint32_t>(1, profile_.max_delay_us)));
  }
  if (profile_.partial_write_prob > 0 && remaining > 1 &&
      rng_.NextDouble() < profile_.partial_write_prob) {
    step.max_len = 1 + rng_.Below(std::max<size_t>(1, profile_.max_chunk_bytes));
  }
  return step;
}

bool LinkFaults::ShouldResetBefore(uint64_t /*frame_index*/) {
  if (profile_.reset_prob <= 0 || resets_ >= profile_.max_resets_per_link) {
    return false;
  }
  if (rng_.NextDouble() < profile_.reset_prob) {
    ++resets_;
    return true;
  }
  return false;
}

bool LinkFaults::ShouldDuplicateFrame(uint64_t /*frame_index*/) {
  if (profile_.duplicate_prob <= 0 || dups_ >= profile_.max_dups_per_link) {
    return false;
  }
  if (rng_.NextDouble() < profile_.duplicate_prob) {
    ++dups_;
    return true;
  }
  return false;
}

RecvLinkFaults::RecvLinkFaults(uint64_t seed, const FaultProfile& profile,
                               uint64_t skew_seed)
    : rng_(seed), profile_(profile) {
  if (profile_.link_dispatch_skew) {
    // Log-uniform in [1/8, 8): a one-shot draw per link, so the skew is a property of the
    // link — systematically fast or slow for the whole run — not per-frame noise.
    Rng skew(skew_seed);
    skew_mult_ = std::exp2(3.0 - 6.0 * skew.NextDouble());
    delay_budget_us_ = profile_.dispatch_delay_budget_us;
  }
}

ReadStep RecvLinkFaults::Next(size_t remaining) {
  ReadStep step;
  if (profile_.read_eintr_prob > 0 && rng_.NextDouble() < profile_.read_eintr_prob) {
    step.eintr_spins = 1 + static_cast<uint32_t>(rng_.Below(
                               std::max<uint32_t>(1, profile_.max_read_eintr_spins)));
  }
  if (profile_.read_delay_prob > 0 && rng_.NextDouble() < profile_.read_delay_prob) {
    step.delay_us = 1 + static_cast<uint32_t>(rng_.Below(
                            std::max<uint32_t>(1, profile_.max_read_delay_us)));
  }
  if (profile_.torn_read_prob > 0 && remaining > 1 &&
      rng_.NextDouble() < profile_.torn_read_prob) {
    step.max_len = 1 + rng_.Below(std::max<size_t>(1, profile_.max_read_chunk_bytes));
  }
  return step;
}

uint32_t RecvLinkFaults::DispatchDelayUs(uint64_t /*frame_index*/) {
  const double prob = std::min(1.0, profile_.dispatch_delay_prob * skew_mult_);
  if (prob <= 0 || rng_.NextDouble() >= prob) {
    return 0;
  }
  uint64_t delay = 1 + rng_.Below(std::max<uint32_t>(1, profile_.max_dispatch_delay_us));
  if (profile_.link_dispatch_skew) {
    delay = std::max<uint64_t>(1, static_cast<uint64_t>(delay * skew_mult_));
    // Independent per-link budget: a heavily-skewed link eventually runs dry instead of
    // stretching the run without bound, and each link's spend is its own.
    delay = std::min(delay, delay_budget_us_);
    delay_budget_us_ -= delay;
  }
  return static_cast<uint32_t>(delay);
}

uint32_t RecvLinkFaults::AdoptionDelayUs(uint64_t /*replacement_index*/) {
  if (profile_.adoption_delay_prob <= 0 ||
      rng_.NextDouble() >= profile_.adoption_delay_prob) {
    return 0;
  }
  return 1 + static_cast<uint32_t>(rng_.Below(
                 std::max<uint32_t>(1, profile_.max_adoption_delay_us)));
}

bool ProgressFaults::BeforeIdleFlush() {
  uint32_t delay_us = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (profile_.defer_idle_flush_prob > 0 &&
        consecutive_defers_ < profile_.max_consecutive_defers &&
        rng_.NextDouble() < profile_.defer_idle_flush_prob) {
      ++consecutive_defers_;
      return false;
    }
    consecutive_defers_ = 0;
    if (profile_.idle_flush_delay_prob > 0 &&
        rng_.NextDouble() < profile_.idle_flush_delay_prob) {
      delay_us = 1 + static_cast<uint32_t>(rng_.Below(
                         std::max<uint32_t>(1, profile_.max_flush_delay_us)));
    }
  }
  if (delay_us > 0) {
    // Stall outside the lock: the point is to let other workers' updates land in the
    // accumulator first, changing the batch composition the flush takes.
    std::this_thread::sleep_for(std::chrono::microseconds(delay_us));
  }
  return true;
}

bool ProgressFaults::ForceEarlyFlush() {
  std::lock_guard<std::mutex> lock(mu_);
  return profile_.early_flush_prob > 0 && rng_.NextDouble() < profile_.early_flush_prob;
}

void ProgressFaults::PerturbFlushBatch(std::vector<ProgressUpdate>& batch) {
  if (!profile_.shuffle_flush_batches || batch.size() < 2) {
    return;
  }
  std::lock_guard<std::mutex> lock(mu_);
  // Shuffle within maximal same-sign runs: receivers apply batches in order, and the
  // §3.3 discipline requires every positive to land before any negative it pairs with.
  size_t run_start = 0;
  for (size_t i = 1; i <= batch.size(); ++i) {
    if (i == batch.size() || (batch[i].delta > 0) != (batch[run_start].delta > 0)) {
      if (i - run_start > 1) {
        ShuffleRange(batch, run_start, i, rng_);
      }
      run_start = i;
    }
  }
}

LinkFaultHook* FaultPlan::Link(uint32_t src_process, uint32_t dst_process) {
  const uint64_t key = (static_cast<uint64_t>(src_process) << 32) | dst_process;
  std::lock_guard<std::mutex> lock(mu_);
  auto it = links_.find(key);
  if (it == links_.end()) {
    const uint64_t child = HashCombine(HashCombine(seed_, kLinkDomain), key);
    it = links_.emplace(key, std::make_unique<LinkFaults>(child, profile_)).first;
  }
  return it->second.get();
}

RecvLinkFaultHook* FaultPlan::RecvLink(uint32_t src_process, uint32_t dst_process) {
  const uint64_t key = (static_cast<uint64_t>(src_process) << 32) | dst_process;
  std::lock_guard<std::mutex> lock(mu_);
  auto it = recv_links_.find(key);
  if (it == recv_links_.end()) {
    const uint64_t child = HashCombine(HashCombine(seed_, kRecvDomain), key);
    const uint64_t skew = HashCombine(HashCombine(seed_, kSkewDomain), key);
    it = recv_links_
             .emplace(key, std::make_unique<RecvLinkFaults>(child, profile_, skew))
             .first;
  }
  return it->second.get();
}

uint64_t FaultPlan::total_resets() const {
  std::lock_guard<std::mutex> lock(mu_);
  uint64_t total = 0;
  for (const auto& [key, link] : links_) {
    total += link->resets_injected();
  }
  return total;
}

uint64_t FaultPlan::total_duplicates() const {
  std::lock_guard<std::mutex> lock(mu_);
  uint64_t total = 0;
  for (const auto& [key, link] : links_) {
    total += link->dups_injected();
  }
  return total;
}

ProgressFaultHook* FaultPlan::Progress(uint32_t process) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = processes_.find(process);
  if (it == processes_.end()) {
    const uint64_t child = HashCombine(HashCombine(seed_, kProgressDomain), process);
    it = processes_.emplace(process, std::make_unique<ProgressFaults>(child, profile_))
             .first;
  }
  return it->second.get();
}

}  // namespace naiad
