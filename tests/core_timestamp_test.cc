// Tests for the timestamp lattice (§2.1): partial-order laws, the total-order refinement,
// the system-vertex adjustments, and serialization.

#include <gtest/gtest.h>

#include <vector>

#include "src/base/rng.h"
#include "src/core/timestamp.h"
#include "src/ser/codec.h"

namespace naiad {
namespace {

Timestamp T(uint64_t e, std::initializer_list<uint64_t> cs = {}) { return Timestamp(e, cs); }

TEST(TimestampTest, DepthAndAdjustments) {
  Timestamp t = T(3);
  EXPECT_EQ(t.depth(), 0u);
  Timestamp in = t.Pushed();  // ingress
  EXPECT_EQ(in.depth(), 1u);
  EXPECT_EQ(in.coords[0], 0u);
  Timestamp fb = in.Incremented();  // feedback
  EXPECT_EQ(fb.coords[0], 1u);
  Timestamp out = fb.Popped();  // egress
  EXPECT_EQ(out, t);
}

TEST(TimestampTest, PartialOrderEpochAndLex) {
  EXPECT_TRUE(Timestamp::PartialLeq(T(0), T(1)));
  EXPECT_FALSE(Timestamp::PartialLeq(T(1), T(0)));
  EXPECT_TRUE(Timestamp::PartialLeq(T(0, {1, 2}), T(0, {1, 2})));
  EXPECT_TRUE(Timestamp::PartialLeq(T(0, {1, 2}), T(0, {2, 0})));  // lex on counters
  EXPECT_FALSE(Timestamp::PartialLeq(T(0, {2, 0}), T(0, {1, 9})));
  // Product order: both components must agree.
  EXPECT_FALSE(Timestamp::PartialLeq(T(1, {0}), T(0, {5})));
  EXPECT_FALSE(Timestamp::PartialLeq(T(0, {5}), T(1, {0})));
}

TEST(TimestampTest, PartialOrderLaws) {
  Rng rng(11);
  std::vector<Timestamp> ts;
  for (int i = 0; i < 40; ++i) {
    ts.push_back(T(rng.Below(3), {rng.Below(3), rng.Below(3)}));
  }
  for (const auto& a : ts) {
    EXPECT_TRUE(Timestamp::PartialLeq(a, a));  // reflexive
    for (const auto& b : ts) {
      if (Timestamp::PartialLeq(a, b) && Timestamp::PartialLeq(b, a)) {
        EXPECT_EQ(a, b);  // antisymmetric
      }
      for (const auto& c : ts) {
        if (Timestamp::PartialLeq(a, b) && Timestamp::PartialLeq(b, c)) {
          EXPECT_TRUE(Timestamp::PartialLeq(a, c));  // transitive
        }
      }
    }
  }
}

TEST(TimestampTest, TotalOrderRefinesPartialOrder) {
  Rng rng(13);
  for (int i = 0; i < 200; ++i) {
    Timestamp a = T(rng.Below(3), {rng.Below(4), rng.Below(4)});
    Timestamp b = T(rng.Below(3), {rng.Below(4), rng.Below(4)});
    if (Timestamp::PartialLeq(a, b)) {
      EXPECT_LE(a, b);
    }
  }
}

TEST(TimestampTest, TruncationPreservesLexOrder) {
  // The path-summary domination argument relies on: a <=lex b implies prefix(a) <=lex
  // prefix(b).
  Rng rng(17);
  for (int i = 0; i < 500; ++i) {
    Timestamp a = T(0, {rng.Below(3), rng.Below(3), rng.Below(3)});
    Timestamp b = T(0, {rng.Below(3), rng.Below(3), rng.Below(3)});
    if (Timestamp::PartialLeq(a, b)) {
      Timestamp ap = a.Popped();
      Timestamp bp = b.Popped();
      EXPECT_TRUE(Timestamp::PartialLeq(ap, bp));
    }
  }
}

TEST(TimestampTest, SerializationRoundTrip) {
  for (const Timestamp& t :
       {T(0), T(42), T(7, {0}), T(7, {1, 2, 3}), T(~0ULL, {~0ULL, 0, 5})}) {
    std::vector<uint8_t> bytes = EncodeToBytes(t);
    Timestamp out;
    ASSERT_TRUE(DecodeFromBytes(std::span<const uint8_t>(bytes), out));
    EXPECT_EQ(out, t);
  }
}

TEST(TimestampTest, DecodeRejectsExcessDepth) {
  ByteWriter w;
  w.WriteU64(0);
  w.WriteU8(kMaxLoopDepth + 1);
  Timestamp out;
  ByteReader r(w.buffer());
  EXPECT_FALSE(out.Decode(r));
}

TEST(TimestampTest, HashConsistentWithEquality) {
  EXPECT_EQ(T(1, {2, 3}).Hash(), T(1, {2, 3}).Hash());
  EXPECT_NE(T(1, {2, 3}).Hash(), T(1, {3, 2}).Hash());
  EXPECT_NE(T(1).Hash(), T(1, {0}).Hash());  // depth matters
}

}  // namespace
}  // namespace naiad
