// Tests for the multi-tenant job server: dynamic registration on a live cluster,
// concurrent jobs on shared workers and links, isolated teardown, and the demux's
// stray-frame discipline.
//
// The seeded sweep registers several jobs at randomized times, tears a seed-chosen
// victim down mid-run, and requires every surviving job's output to be identical to a
// solo run of the same job — for every seed. Reproduction: `multi_job_test --seed=N`
// re-runs the sweep body for seed N alone.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <map>
#include <mutex>
#include <optional>
#include <random>
#include <thread>
#include <vector>

#include "src/core/io.h"
#include "src/core/loop.h"
#include "src/core/stage.h"
#include "src/net/cluster.h"
#include "src/net/job_server.h"
#include "src/net/transport.h"

namespace naiad {
namespace {

std::optional<uint64_t> g_seed_override;

constexpr uint32_t kProcesses = 2;
constexpr uint32_t kWorkers = 2;
constexpr uint64_t kEpochs = 3;
constexpr uint64_t kRecordsPerEpoch = 400;
constexpr uint64_t kKeys = 37;

ClusterOptions ServerOptions() {
  ClusterOptions opts;
  opts.processes = kProcesses;
  opts.workers_per_process = kWorkers;
  opts.batch_size = 64;  // small batches => many frames => many demux decisions
  // Observability on (no trace file): the sweep doubles as the TSan proof that the
  // per-job metrics/tracing paths are race-free under concurrent registration.
  opts.obs = {.metrics = true, .tracing = true};
  return opts;
}

// Deterministic per-job record stream: `salt` separates the jobs' key streams so any
// cross-job frame leak would corrupt a count.
uint64_t Record(uint64_t salt, uint32_t pid, uint64_t epoch, uint64_t i) {
  return (salt * 131 + pid * 977 + epoch * 31 + i) % kKeys;
}

std::map<uint64_t, uint64_t> ExpectedCounts(uint64_t salt, uint64_t epochs) {
  std::map<uint64_t, uint64_t> want;
  for (uint32_t pid = 0; pid < kProcesses; ++pid) {
    for (uint64_t e = 0; e < epochs; ++e) {
      for (uint64_t i = 0; i < kRecordsPerEpoch; ++i) {
        ++want[Record(salt, pid, e, i)];
      }
    }
  }
  return want;
}

class CountPerKeyVertex final : public UnaryVertex<uint64_t, std::pair<uint64_t, uint64_t>> {
 public:
  void OnRecv(const Timestamp& t, std::vector<uint64_t>& batch) override {
    auto [it, fresh] = counts_.try_emplace(t);
    if (fresh) {
      NotifyAt(t);
    }
    for (uint64_t k : batch) {
      ++it->second[k];
    }
  }
  void OnNotify(const Timestamp& t) override {
    for (auto [k, n] : counts_[t]) {
      output().Send(t, {k, n});
    }
    counts_.erase(t);
  }

 private:
  std::map<Timestamp, std::map<uint64_t, uint64_t>> counts_;
};

struct JobResult {
  std::mutex mu;
  std::map<uint64_t, uint64_t> counts;
};

// Builds the keyed-count dataflow on `ctl` and returns the input handle; records land in
// `out`. The exchange partitions by key, so every job continuously crosses the shared
// process links.
InputHandle<uint64_t>* BuildCountGraph(Controller& ctl, GraphBuilder& b, JobResult* out) {
  auto [in, handle] = NewInput<uint64_t>(b);
  StageId count = b.NewStage<CountPerKeyVertex>(
      StageOptions{.name = "count"},
      [](uint32_t) { return std::make_unique<CountPerKeyVertex>(); });
  b.Connect<CountPerKeyVertex, uint64_t>(in, count, 0,
                                         [](const uint64_t& k) { return k; });
  Subscribe<std::pair<uint64_t, uint64_t>>(
      b.OutputOf<std::pair<uint64_t, uint64_t>>(count),
      [out](uint64_t, std::vector<std::pair<uint64_t, uint64_t>>& recs) {
        std::lock_guard<std::mutex> lock(out->mu);
        for (auto [k, n] : recs) {
          out->counts[k] += n;
        }
      });
  return handle.get();  // kept alive by the controller (KeepAlive in NewInput)
}

// A finite job: feed kEpochs epochs, close, drain.
JobServer::Body CountBody(uint64_t salt, JobResult* out) {
  return [salt, out](Controller& ctl) {
    GraphBuilder b(ctl);
    InputHandle<uint64_t>* handle = BuildCountGraph(ctl, b, out);
    ctl.Start();
    const uint32_t pid = ctl.config().process_id;
    for (uint64_t e = 0; e < kEpochs; ++e) {
      std::vector<uint64_t> data;
      for (uint64_t i = 0; i < kRecordsPerEpoch; ++i) {
        data.push_back(Record(salt, pid, e, i));
      }
      handle->OnNext(std::move(data));
    }
    handle->OnCompleted();
    ctl.Join();
  };
}

// A long-running, cancellation-aware job: feeds epochs until torn down (or a generous
// cap, so a seed that tears down late still terminates). Join() returns via cancelled().
JobServer::Body VictimBody(uint64_t salt, JobResult* out) {
  return [salt, out](Controller& ctl) {
    GraphBuilder b(ctl);
    InputHandle<uint64_t>* handle = BuildCountGraph(ctl, b, out);
    ctl.Start();
    const uint32_t pid = ctl.config().process_id;
    for (uint64_t e = 0; e < 500 && !ctl.cancelled(); ++e) {
      std::vector<uint64_t> data;
      for (uint64_t i = 0; i < kRecordsPerEpoch; ++i) {
        data.push_back(Record(salt, pid, e, i));
      }
      handle->OnNext(std::move(data));
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    handle->OnCompleted();
    ctl.Join();
  };
}

const ClusterStats::JobStats* FindJob(const ClusterStats& stats, JobId id) {
  for (const auto& j : stats.jobs) {
    if (j.job == id) {
      return &j;
    }
  }
  return nullptr;
}

// Two jobs registered at different times genuinely overlap: job 1's process-0 driver
// refuses to close its input until job 2's body is live, so both completing proves the
// shared hosts ran them concurrently (a serial server would deadlock here).
TEST(JobServerTest, JobsRegisteredAtDifferentTimesRunConcurrently) {
  JobServer server(ServerOptions());
  server.Start();
  JobResult r1, r2;
  std::atomic<bool> second_live{false};

  const JobId j1 = server.Submit([&](Controller& ctl) {
    GraphBuilder b(ctl);
    InputHandle<uint64_t>* handle = BuildCountGraph(ctl, b, &r1);
    ctl.Start();
    const uint32_t pid = ctl.config().process_id;
    for (uint64_t e = 0; e < kEpochs; ++e) {
      std::vector<uint64_t> data;
      for (uint64_t i = 0; i < kRecordsPerEpoch; ++i) {
        data.push_back(Record(1, pid, e, i));
      }
      handle->OnNext(std::move(data));
    }
    if (pid == 0) {
      while (!second_live.load(std::memory_order_acquire)) {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      }
    }
    handle->OnCompleted();
    ctl.Join();
  });

  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  const JobId j2 = server.Submit([&](Controller& ctl) {
    second_live.store(true, std::memory_order_release);
    CountBody(2, &r2)(ctl);
  });
  ASSERT_NE(j1, j2);

  server.Wait(j1);
  server.Wait(j2);
  const ClusterStats stats = server.Stop();

  EXPECT_EQ(r1.counts, ExpectedCounts(1, kEpochs));
  EXPECT_EQ(r2.counts, ExpectedCounts(2, kEpochs));
  ASSERT_EQ(stats.jobs.size(), 2u);
  for (JobId id : {j1, j2}) {
    const auto* js = FindJob(stats, id);
    ASSERT_NE(js, nullptr);
    EXPECT_GT(js->data_frames, 0u) << "job " << id << " never crossed the wire";
    EXPECT_FALSE(js->torn_down);
  }
  EXPECT_EQ(stats.stray_frames_dropped, 0u);
  EXPECT_EQ(stats.stash_overflow_drops, 0u);
}

// Regression for the completion latch: ClusterControl's finished_ flag used to be
// effectively server-global, so the first job's termination verdict left the control
// plane considering everything finished and a job registered afterwards hung in its
// barrier. Registration after a completed job must work indefinitely.
TEST(JobServerTest, JobRegistersAndRunsAfterPreviousJobFinished) {
  JobServer server(ServerOptions());
  server.Start();
  JobResult r1, r2, r3;
  const JobId j1 = server.Submit(CountBody(7, &r1));
  server.Wait(j1);
  EXPECT_EQ(r1.counts, ExpectedCounts(7, kEpochs));

  const JobId j2 = server.Submit(CountBody(8, &r2));
  server.Wait(j2);
  EXPECT_EQ(r2.counts, ExpectedCounts(8, kEpochs));

  const JobId j3 = server.Submit(CountBody(9, &r3));
  server.Wait(j3);
  const ClusterStats stats = server.Stop();
  EXPECT_EQ(r3.counts, ExpectedCounts(9, kEpochs));
  ASSERT_EQ(stats.jobs.size(), 3u);
  for (const auto& js : stats.jobs) {
    EXPECT_FALSE(js.torn_down);
  }
}

// Stray-frame regression: frames addressed to a torn-down job, or to a job id no
// registration ever allocated, are dropped deterministically — counted, and the server
// keeps serving new jobs afterwards.
TEST(JobServerTest, FramesForRetiredAndUnknownJobsAreDroppedAndCounted) {
  JobServer server(ServerOptions());
  server.Start();
  JobResult r1, r2;
  const JobId j1 = server.Submit(CountBody(3, &r1));
  server.Wait(j1);

  // A late frame for the retired job, injected raw at the transport layer (the shape a
  // slow peer's post-verdict straggler takes), and one for a never-allocated id.
  ByteWriter w1;
  w1.WriteU32(42);
  server.transport(1).Send(0, FrameType::kData, std::move(w1.buffer()), j1);
  ByteWriter w2;
  w2.WriteU32(43);
  server.transport(1).Send(0, FrameType::kData, std::move(w2.buffer()), 9999);
  for (int spin = 0; spin < 3000 && server.stray_frames_dropped() < 2; ++spin) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  EXPECT_GE(server.stray_frames_dropped(), 2u);

  // The drops are isolated: a job registered afterwards runs to completion.
  const JobId j2 = server.Submit(CountBody(4, &r2));
  server.Wait(j2);
  const ClusterStats stats = server.Stop();
  EXPECT_EQ(r2.counts, ExpectedCounts(4, kEpochs));
  EXPECT_GE(stats.stray_frames_dropped, 2u);
}

// The seeded sweep: kJobs jobs registered at seed-chosen times, one seed-chosen victim
// torn down mid-run. Every surviving job's counts must equal a solo run's — the
// isolation property under test — for every seed.
void RunMultiJobSweep(uint64_t seed) {
  std::mt19937_64 rng(seed * 0x9e3779b97f4a7c15ULL + 0xbf58476d1ce4e5b9ULL);
  constexpr uint32_t kJobs = 3;
  const auto salt = [](uint32_t j) { return uint64_t{11} + 17 * j; };

  JobServer server(ServerOptions());
  server.Start();
  JobResult results[kJobs];
  JobId ids[kJobs] = {};
  const uint32_t victim = static_cast<uint32_t>(rng() % kJobs);
  for (uint32_t j = 0; j < kJobs; ++j) {
    std::this_thread::sleep_for(std::chrono::microseconds(rng() % 3000));
    ids[j] = j == victim ? server.Submit(VictimBody(salt(j), &results[j]))
                         : server.Submit(CountBody(salt(j), &results[j]));
  }
  // Tear the victim down mid-run (its body feeds for ~500 ms; the teardown lands within
  // ~30 ms of its registration).
  std::this_thread::sleep_for(std::chrono::microseconds(rng() % 25000));
  server.Teardown(ids[victim]);
  for (uint32_t j = 0; j < kJobs; ++j) {
    server.Wait(ids[j]);
  }
  const ClusterStats stats = server.Stop();

  for (uint32_t j = 0; j < kJobs; ++j) {
    if (j == victim) {
      continue;
    }
    std::lock_guard<std::mutex> lock(results[j].mu);
    EXPECT_EQ(results[j].counts, ExpectedCounts(salt(j), kEpochs))
        << "seed " << seed << " job " << j << " diverged from its solo run";
  }
  const auto* vs = FindJob(stats, ids[victim]);
  ASSERT_NE(vs, nullptr) << "seed " << seed;
  EXPECT_TRUE(vs->torn_down) << "seed " << seed;
  EXPECT_EQ(stats.jobs.size(), size_t{kJobs}) << "seed " << seed;
  EXPECT_EQ(stats.duplicate_frames_dropped, 0u) << "seed " << seed;
}

// The solo-run baseline the sweep's expectation stands in for: a lone job on a fresh
// server produces exactly ExpectedCounts, so "equal to ExpectedCounts" in the sweep is
// "byte-identical to the solo run".
TEST(JobServerSweep, SoloRunMatchesExpectedCounts) {
  JobServer server(ServerOptions());
  server.Start();
  JobResult r;
  const JobId id = server.Submit(CountBody(11, &r));
  server.Wait(id);
  server.Stop();
  EXPECT_EQ(r.counts, ExpectedCounts(11, kEpochs));
}

class MultiJobSweep : public ::testing::TestWithParam<uint64_t> {};

TEST_P(MultiJobSweep, SurvivorsMatchSoloRuns) {
  if (g_seed_override.has_value()) {
    RunMultiJobSweep(*g_seed_override);
    return;
  }
  constexpr uint64_t kSeedsPerShard = 3;
  const uint64_t base = GetParam() * kSeedsPerShard;
  for (uint64_t s = base; s < base + kSeedsPerShard; ++s) {
    SCOPED_TRACE("seed " + std::to_string(s));
    RunMultiJobSweep(s);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MultiJobSweep, ::testing::Range(uint64_t{0}, uint64_t{4}),
                         [](const ::testing::TestParamInfo<uint64_t>& info) {
                           return "Shard" + std::to_string(info.param);
                         });

}  // namespace
}  // namespace naiad

int main(int argc, char** argv) {
  ::testing::InitGoogleTest(&argc, argv);  // strips gtest flags, leaves ours
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--seed=", 7) == 0) {
      naiad::g_seed_override = std::strtoull(argv[i] + 7, nullptr, 0);
      std::fprintf(stderr, "multi_job_test: replaying seed %llu only\n",
                   static_cast<unsigned long long>(*naiad::g_seed_override));
    }
  }
  return RUN_ALL_TESTS();
}
