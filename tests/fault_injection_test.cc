// Seeded fault-injection sweeps over the distributed runtime.
//
// Every fault a FaultPlan injects is a schedule perturbation that preserves the protocol
// contracts (per-link FIFO, §3.3 flush discipline), so a faulted run of the distributed
// WordCount pipeline must produce exactly the clean run's counts — for every seed. The
// sweep covers >= 100 seeds, split into shards so ctest runs them in parallel.
//
// Reproduction: `fault_injection_test --seed=N` re-runs the sweep body for seed N alone;
// the plan's decisions are pure functions of the seed, so the schedule is the same one
// the failing sweep saw (up to OS thread interleaving, which correctness must not
// depend on — that is the property under test).

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <map>
#include <mutex>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "src/algo/wordcount.h"
#include "src/core/io.h"
#include "src/gen/text.h"
#include "src/net/cluster.h"
#include "src/testing/fault.h"

namespace naiad {
namespace {

std::optional<uint64_t> g_seed_override;

constexpr uint32_t kProcesses = 2;
constexpr uint64_t kEpochs = 3;

// The fixed workload every run (clean or faulted) computes: per-epoch slices of a small
// Zipf corpus, sharded round-robin across processes.
std::vector<std::string> CorpusSlice(uint64_t epoch, uint32_t process) {
  static const std::vector<std::string> corpus = ZipfCorpus(90, 6, 40, 7);
  std::vector<std::string> out;
  const size_t per_epoch = corpus.size() / kEpochs;
  for (size_t i = epoch * per_epoch + process; i < (epoch + 1) * per_epoch;
       i += kProcesses) {
    out.push_back(corpus[i]);
  }
  return out;
}

// Runs the distributed WordCount under `plan` (nullptr = clean) and returns the merged
// word -> count map over all epochs.
std::map<std::string, uint64_t> RunWordCount(ClusterFaultPlan* plan) {
  std::mutex mu;
  std::map<std::string, uint64_t> counts;
  Cluster::Run(
      ClusterOptions{.processes = kProcesses,
                     .workers_per_process = 1,
                     // NAIAD_PROGRESS_SCOPING=scoped runs the whole sweep (including the
                     // clean reference) under scoped progress tracking — the CI matrix
                     // covers both modes.
                     .scoping = ProgressScopingFromEnv(),
                     .batch_size = 32,  // small batches => many frames => many fault points
                     .fault_plan = plan,
                     // Observability on (no trace file): the sweep doubles as the TSan
                     // proof that the metrics/tracing record paths are race-free.
                     .obs = {.metrics = true, .tracing = true}},
      [&](Controller& ctl) {
        GraphBuilder b(ctl);
        auto [lines, handle] = NewInput<std::string>(b);
        Probe probe = ForEach<WordCountRecord>(
            WordCount(lines),
            [&](const Timestamp&, std::vector<WordCountRecord>& recs) {
              std::lock_guard<std::mutex> lock(mu);
              for (const WordCountRecord& wc : recs) {
                counts[wc.first] += wc.second;
              }
            });
        ctl.Start();
        for (uint64_t e = 0; e < kEpochs; ++e) {
          handle->OnNext(CorpusSlice(e, ctl.config().process_id));
          if (e >= 1) {
            probe.WaitPassed(e - 1);  // interleave waits so progress runs mid-stream
          }
        }
        handle->OnCompleted();
        ctl.Join();
      });
  return counts;
}

const std::map<std::string, uint64_t>& CleanReference() {
  static const std::map<std::string, uint64_t> clean = RunWordCount(nullptr);
  return clean;
}

void SweepSeed(uint64_t seed) {
  FaultPlan plan(seed, FaultProfile::FromSeed(seed));
  std::map<std::string, uint64_t> got = RunWordCount(&plan);
  ASSERT_EQ(got, CleanReference())
      << "faulted run diverged; reproduce with --seed=" << seed;
}

// 4 shards x 25 seeds = 100-seed sweep, parallelized by ctest. With --seed=N, shard 0
// runs exactly seed N and the rest are no-ops.
class FaultSweep : public ::testing::TestWithParam<uint64_t> {};

TEST_P(FaultSweep, WordCountMatchesCleanRun) {
  const uint64_t shard = GetParam();
  if (g_seed_override.has_value()) {
    if (shard == 0) {
      SweepSeed(*g_seed_override);
    }
    return;
  }
  for (uint64_t i = 0; i < 25; ++i) {
    ASSERT_NO_FATAL_FAILURE(SweepSeed(shard * 25 + i));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FaultSweep, ::testing::Values(0u, 1u, 2u, 3u),
                         [](const ::testing::TestParamInfo<uint64_t>& info) {
                           return "Shard" + std::to_string(info.param);
                         });

TEST(FaultInjectionTest, ResetStormStillDeliversExactCounts) {
  // Make resets near-certain so the test demonstrably exercises the close-and-redial
  // path, not just the possibility of it.
  FaultProfile profile;
  profile.reset_prob = 0.2;
  profile.max_resets_per_link = 6;
  FaultPlan plan(77, profile);
  std::map<std::string, uint64_t> got = RunWordCount(&plan);
  EXPECT_EQ(got, CleanReference());
  EXPECT_GT(plan.total_resets(), 0u) << "plan injected no resets; test is vacuous";
}

TEST(FaultInjectionTest, PartialWriteEveryStepStillDeliversExactCounts) {
  // Every send() capped at a few bytes: frames cross the wire in dribbles, exercising
  // WriteAll's resume path on every single frame.
  FaultProfile profile;
  profile.partial_write_prob = 1.0;
  profile.max_chunk_bytes = 3;
  profile.spurious_retry_prob = 0.5;
  profile.max_spurious_retries = 2;
  FaultPlan plan(78, profile);
  EXPECT_EQ(RunWordCount(&plan), CleanReference());
}

TEST(FaultInjectionTest, FlushPerturbationsAloneStillDeliverExactCounts) {
  // Progress-layer faults only: deferred, delayed, early, and shuffled accumulator
  // flushes, with the wire left untouched.
  FaultProfile profile;
  profile.defer_idle_flush_prob = 0.6;
  profile.max_consecutive_defers = 4;
  profile.idle_flush_delay_prob = 0.3;
  profile.max_flush_delay_us = 200;
  profile.early_flush_prob = 0.4;
  profile.shuffle_flush_batches = true;
  FaultPlan plan(79, profile);
  EXPECT_EQ(RunWordCount(&plan), CleanReference());
}

TEST(FaultInjectionTest, ReceiveScheduleStormStillDeliversExactCounts) {
  // Receive-side faults cranked to near-certainty: every recv() torn to <= 3 bytes with
  // modeled EINTR storms, frequent pre-dispatch holds, and sender resets frequent enough
  // that delayed replacement adoption is demonstrably exercised too.
  FaultProfile profile;
  profile.torn_read_prob = 1.0;
  profile.max_read_chunk_bytes = 3;
  profile.read_eintr_prob = 0.5;
  profile.max_read_eintr_spins = 3;
  profile.dispatch_delay_prob = 0.3;
  profile.max_dispatch_delay_us = 100;
  profile.reset_prob = 0.1;
  profile.max_resets_per_link = 4;
  profile.adoption_delay_prob = 1.0;
  profile.max_adoption_delay_us = 200;
  FaultPlan plan(80, profile);
  EXPECT_EQ(RunWordCount(&plan), CleanReference());
  EXPECT_GT(plan.total_resets(), 0u)
      << "no resets -> adoption delays never ran; test is vacuous";
}

TEST(FaultInjectionTest, DelayedDispatchAloneStillDeliversExactCounts) {
  // Only the decode-to-enqueue hold, on every frame: the termination barrier must not
  // declare stability while frames sit decoded-but-undispatched on receiver threads.
  FaultProfile profile;
  profile.dispatch_delay_prob = 1.0;
  profile.max_dispatch_delay_us = 150;
  FaultPlan plan(81, profile);
  EXPECT_EQ(RunWordCount(&plan), CleanReference());
}

TEST(FaultInjectionTest, SameSeedYieldsIdenticalDecisionStreams) {
  // The reproducibility contract: a plan's decisions are pure functions of the seed and
  // the consumer's own event index.
  const uint64_t seed = 12345;
  FaultPlan a(seed, FaultProfile::FromSeed(seed));
  FaultPlan b(seed, FaultProfile::FromSeed(seed));
  LinkFaultHook* la = a.Link(0, 1);
  LinkFaultHook* lb = b.Link(0, 1);
  for (uint64_t i = 0; i < 2000; ++i) {
    WriteStep sa = la->Next(64);
    WriteStep sb = lb->Next(64);
    ASSERT_EQ(sa.delay_us, sb.delay_us) << "step " << i;
    ASSERT_EQ(sa.max_len, sb.max_len) << "step " << i;
    ASSERT_EQ(sa.zero_writes, sb.zero_writes) << "step " << i;
    ASSERT_EQ(la->ShouldResetBefore(i), lb->ShouldResetBefore(i)) << "frame " << i;
  }
  RecvLinkFaultHook* ra = a.RecvLink(0, 1);
  RecvLinkFaultHook* rb = b.RecvLink(0, 1);
  for (uint64_t i = 0; i < 2000; ++i) {
    ReadStep sa = ra->Next(64);
    ReadStep sb = rb->Next(64);
    ASSERT_EQ(sa.delay_us, sb.delay_us) << "read step " << i;
    ASSERT_EQ(sa.max_len, sb.max_len) << "read step " << i;
    ASSERT_EQ(sa.eintr_spins, sb.eintr_spins) << "read step " << i;
    ASSERT_EQ(ra->DispatchDelayUs(i), rb->DispatchDelayUs(i)) << "frame " << i;
    ASSERT_EQ(ra->AdoptionDelayUs(i), rb->AdoptionDelayUs(i)) << "replacement " << i;
  }
}

TEST(FaultInjectionTest, RecvStreamIsStableAndIndependentOfSendStream) {
  const uint64_t seed = 777;
  FaultPlan plan(seed, FaultProfile::FromSeed(seed));
  RecvLinkFaultHook* recv = plan.RecvLink(0, 1);
  // Same object on repeated lookup (the receiver's stream must not restart mid-run)...
  EXPECT_EQ(recv, plan.RecvLink(0, 1));
  // ...and distinct from the reverse direction's stream.
  EXPECT_NE(recv, plan.RecvLink(1, 0));
  // Domain separation: the send and receive halves of the same link must not correlate.
  LinkFaultHook* send = plan.Link(0, 1);
  int diverged = 0;
  for (uint64_t i = 0; i < 256; ++i) {
    ReadStep r = recv->Next(64);
    WriteStep w = send->Next(64);
    if (r.delay_us != w.delay_us || r.max_len != w.max_len) {
      ++diverged;
    }
  }
  EXPECT_GT(diverged, 0) << "send and receive streams are correlated";
}

TEST(FaultInjectionTest, DistinctLinksGetIndependentStreams) {
  const uint64_t seed = 4242;
  FaultPlan plan(seed, FaultProfile::FromSeed(seed));
  LinkFaultHook* fwd = plan.Link(0, 1);
  LinkFaultHook* rev = plan.Link(1, 0);
  EXPECT_NE(fwd, rev);
  // Same object on repeated lookup (decision streams must not restart mid-run).
  EXPECT_EQ(fwd, plan.Link(0, 1));
  int diverged = 0;
  for (uint64_t i = 0; i < 256; ++i) {
    WriteStep a = fwd->Next(64);
    WriteStep b = rev->Next(64);
    if (a.delay_us != b.delay_us || a.max_len != b.max_len ||
        a.zero_writes != b.zero_writes) {
      ++diverged;
    }
  }
  EXPECT_GT(diverged, 0) << "per-link streams are correlated";
}

TEST(FaultInjectionTest, DispatchSkewIsPerLinkSystematicAndDeterministic) {
  FaultProfile profile;
  profile.dispatch_delay_prob = 0.5;
  profile.max_dispatch_delay_us = 200;
  profile.link_dispatch_skew = true;
  profile.dispatch_delay_budget_us = 10'000'000;
  const uint64_t seed = 9090;
  FaultPlan a(seed, profile);
  FaultPlan b(seed, profile);
  std::set<double> mults;
  uint64_t min_spend = ~uint64_t{0};
  uint64_t max_spend = 0;
  for (uint32_t src = 0; src < 3; ++src) {
    for (uint32_t dst = 0; dst < 3; ++dst) {
      if (src == dst) {
        continue;
      }
      // The plan only ever hands out RecvLinkFaults for receive links.
      auto* ra = static_cast<RecvLinkFaults*>(a.RecvLink(src, dst));
      auto* rb = static_cast<RecvLinkFaults*>(b.RecvLink(src, dst));
      // The one-shot skew draw is a pure function of (seed, link)...
      ASSERT_EQ(ra->skew_multiplier(), rb->skew_multiplier());
      mults.insert(ra->skew_multiplier());
      uint64_t spend = 0;
      for (uint64_t i = 0; i < 4096; ++i) {
        const uint32_t d = ra->DispatchDelayUs(i);
        // ...and so is the whole delay sequence behind it.
        ASSERT_EQ(d, rb->DispatchDelayUs(i)) << "link " << src << "->" << dst
                                             << " frame " << i;
        spend += d;
      }
      EXPECT_LE(spend, profile.dispatch_delay_budget_us) << "budget overrun on link "
                                                         << src << "->" << dst;
      min_spend = std::min(min_spend, spend);
      max_spend = std::max(max_spend, spend);
    }
  }
  // Six directed links, six independent domain-separated draws: the multipliers must not
  // collapse to a common value, and the induced per-link spend must diverge
  // systematically (fast links race far ahead of slow ones).
  EXPECT_GE(mults.size(), 5u);
  EXPECT_GT(max_spend, 2 * min_spend) << "links do not diverge";
}

}  // namespace
}  // namespace naiad

int main(int argc, char** argv) {
  ::testing::InitGoogleTest(&argc, argv);  // strips gtest flags, leaves ours
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--seed=", 7) == 0) {
      naiad::g_seed_override = std::strtoull(argv[i] + 7, nullptr, 0);
      std::fprintf(stderr, "fault_injection_test: replaying seed %llu only\n",
                   static_cast<unsigned long long>(*naiad::g_seed_override));
    }
  }
  return RUN_ALL_TESTS();
}
