// Tests for the operator library: map ops, keyed ops, joins, and iteration.

#include <gtest/gtest.h>

#include <map>
#include <mutex>
#include <set>
#include <string>
#include <vector>

#include "src/core/controller.h"
#include "src/core/io.h"
#include "src/lib/operators.h"

namespace naiad {
namespace {

// Collects per-epoch output multisets behind a mutex.
template <typename T>
struct Collector {
  std::mutex mu;
  std::map<uint64_t, std::multiset<T>> epochs;

  typename SubscribeVertex<T>::Callback callback() {
    return [this](uint64_t e, std::vector<T>& recs) {
      std::lock_guard<std::mutex> lock(mu);
      epochs[e].insert(recs.begin(), recs.end());
    };
  }
  std::multiset<T> at(uint64_t e) {
    std::lock_guard<std::mutex> lock(mu);
    return epochs[e];
  }
};

TEST(MapOpsTest, SelectWhereSelectMany) {
  Controller ctl(Config{.workers_per_process = 2});
  GraphBuilder b(ctl);
  auto [in, handle] = NewInput<uint64_t>(b);
  auto odd_triples = SelectMany(
      Where(Select(in, [](const uint64_t& x) { return x * 3; }),
            [](const uint64_t& x) { return x % 2 == 1; }),
      [](const uint64_t& x) { return std::vector<uint64_t>{x, x}; });
  Collector<uint64_t> out;
  Subscribe<uint64_t>(odd_triples, out.callback());
  ctl.Start();
  handle->OnNext({1, 2, 3, 4});  // *3 -> 3,6,9,12; odd -> 3,9; duplicated
  handle->OnCompleted();
  ctl.Join();
  EXPECT_EQ(out.at(0), (std::multiset<uint64_t>{3, 3, 9, 9}));
}

TEST(MapOpsTest, ConcatMergesStreams) {
  Controller ctl(Config{.workers_per_process = 2});
  GraphBuilder b(ctl);
  auto [in1, h1] = NewInput<uint64_t>(b);
  auto [in2, h2] = NewInput<uint64_t>(b);
  Collector<uint64_t> out;
  Subscribe<uint64_t>(Concat<uint64_t>(in1, in2), out.callback());
  ctl.Start();
  h1->OnNext({1, 2});
  h2->OnNext({10});
  h1->OnCompleted();
  h2->OnCompleted();
  ctl.Join();
  EXPECT_EQ(out.at(0), (std::multiset<uint64_t>{1, 2, 10}));
}

TEST(KeyedOpsTest, CountPerEpoch) {
  Controller ctl(Config{.workers_per_process = 3});
  GraphBuilder b(ctl);
  auto [in, handle] = NewInput<std::string>(b);
  auto counts = Count(in, [](const std::string& w) { return w; });
  Collector<std::pair<std::string, uint64_t>> out;
  Subscribe<std::pair<std::string, uint64_t>>(counts, out.callback());
  ctl.Start();
  handle->OnNext({"a", "b", "a"});
  handle->OnNext({"b"});
  handle->OnCompleted();
  ctl.Join();
  EXPECT_EQ(out.at(0), (std::multiset<std::pair<std::string, uint64_t>>{{"a", 2}, {"b", 1}}));
  EXPECT_EQ(out.at(1), (std::multiset<std::pair<std::string, uint64_t>>{{"b", 1}}));
}

TEST(KeyedOpsTest, GroupByReduces) {
  Controller ctl(Config{.workers_per_process = 2});
  GraphBuilder b(ctl);
  auto [in, handle] = NewInput<std::pair<uint64_t, uint64_t>>(b);
  auto sums = GroupBy(
      in, [](const std::pair<uint64_t, uint64_t>& kv) { return kv.first; },
      [](const uint64_t& k, std::vector<std::pair<uint64_t, uint64_t>>& vals) {
        uint64_t total = 0;
        for (auto& [key, v] : vals) {
          total += v;
        }
        return std::vector<std::pair<uint64_t, uint64_t>>{{k, total}};
      });
  Collector<std::pair<uint64_t, uint64_t>> out;
  Subscribe<std::pair<uint64_t, uint64_t>>(sums, out.callback());
  ctl.Start();
  handle->OnNext({{1, 10}, {2, 5}, {1, 7}});
  handle->OnCompleted();
  ctl.Join();
  EXPECT_EQ(out.at(0), (std::multiset<std::pair<uint64_t, uint64_t>>{{1, 17}, {2, 5}}));
}

TEST(KeyedOpsTest, DistinctEmitsFirstSightPerEpoch) {
  Controller ctl(Config{.workers_per_process = 2});
  GraphBuilder b(ctl);
  auto [in, handle] = NewInput<uint64_t>(b);
  Collector<uint64_t> out;
  Subscribe<uint64_t>(Distinct(in), out.callback());
  ctl.Start();
  handle->OnNext({7, 7, 8, 7});
  handle->OnNext({7});  // fresh epoch: seen again
  handle->OnCompleted();
  ctl.Join();
  EXPECT_EQ(out.at(0), (std::multiset<uint64_t>{7, 8}));
  EXPECT_EQ(out.at(1), (std::multiset<uint64_t>{7}));
}

TEST(KeyedOpsTest, MonotonicAggregateEmitsImprovementsOnly) {
  Controller ctl(Config{.workers_per_process = 2});
  GraphBuilder b(ctl);
  auto [in, handle] = NewInput<std::pair<uint64_t, uint64_t>>(b);
  auto mins = MonotonicAggregate<uint64_t, uint64_t>(
      in,
      [](uint64_t& cur, const uint64_t& cand) {
        if (cand < cur) {
          cur = cand;
          return true;
        }
        return false;
      },
      StateScope::kGlobal);
  Collector<std::pair<uint64_t, uint64_t>> out;
  Subscribe<std::pair<uint64_t, uint64_t>>(mins, out.callback());
  ctl.Start();
  handle->OnNext({{1, 5}});
  handle->OnNext({{1, 9}});  // not an improvement
  handle->OnNext({{1, 3}});  // improvement
  handle->OnCompleted();
  ctl.Join();
  EXPECT_EQ(out.at(0), (std::multiset<std::pair<uint64_t, uint64_t>>{{1, 5}}));
  EXPECT_EQ(out.at(1).size(), 0u);
  EXPECT_EQ(out.at(2), (std::multiset<std::pair<uint64_t, uint64_t>>{{1, 3}}));
}

using KV = std::pair<uint64_t, std::string>;

TEST(JoinTest, PerEpochJoinMatchesWithinEpoch) {
  Controller ctl(Config{.workers_per_process = 2});
  GraphBuilder b(ctl);
  auto [a, ha] = NewInput<KV>(b);
  auto [c, hc] = NewInput<KV>(b);
  auto joined = Join(
      a, c, [](const KV& x) { return x.first; }, [](const KV& x) { return x.first; },
      [](const KV& x, const KV& y) { return x.second + "|" + y.second; });
  Collector<std::string> out;
  Subscribe<std::string>(joined, out.callback());
  ctl.Start();
  ha->OnNext({{1, "a1"}, {2, "a2"}});
  hc->OnNext({{1, "c1"}, {3, "c3"}});
  ha->OnNext({{3, "a3"}});  // epoch 1: no c-side key 3 in epoch 1
  hc->OnNext({});
  ha->OnCompleted();
  hc->OnCompleted();
  ctl.Join();
  EXPECT_EQ(out.at(0), (std::multiset<std::string>{"a1|c1"}));
  EXPECT_EQ(out.at(1).size(), 0u);
}

TEST(JoinTest, AccumulatingJoinMatchesAcrossEpochs) {
  Controller ctl(Config{.workers_per_process = 2});
  GraphBuilder b(ctl);
  auto [a, ha] = NewInput<KV>(b);
  auto [c, hc] = NewInput<KV>(b);
  auto joined = Join(
      a, c, [](const KV& x) { return x.first; }, [](const KV& x) { return x.first; },
      [](const KV& x, const KV& y) { return x.second + "|" + y.second; },
      JoinMode::kAccumulating);
  Collector<std::string> out;
  Subscribe<std::string>(joined, out.callback());
  ctl.Start();
  ha->OnNext({{1, "a1"}});
  hc->OnNext({});
  ha->OnNext({});
  hc->OnNext({{1, "c1"}});  // matches the epoch-0 a-side record
  ha->OnCompleted();
  hc->OnCompleted();
  ctl.Join();
  EXPECT_EQ(out.at(1), (std::multiset<std::string>{"a1|c1"}));
}

TEST(KeyedOpsTest, DistinctCountLibraryOperator) {
  // The Figure 4 vertex exposed as a library operator: eager distincts + exact counts.
  Controller ctl(Config{.workers_per_process = 2});
  GraphBuilder b(ctl);
  auto [in, handle] = NewInput<uint64_t>(b);
  DistinctCountStreams<uint64_t> dc = DistinctCount(in);
  Collector<uint64_t> distinct;
  Collector<std::pair<uint64_t, uint64_t>> counts;
  Subscribe<uint64_t>(dc.distinct, distinct.callback());
  Subscribe<std::pair<uint64_t, uint64_t>>(dc.counts, counts.callback());
  ctl.Start();
  handle->OnNext({4, 4, 4, 9});
  handle->OnNext({9});
  handle->OnCompleted();
  ctl.Join();
  EXPECT_EQ(distinct.at(0), (std::multiset<uint64_t>{4, 9}));
  EXPECT_EQ(counts.at(0),
            (std::multiset<std::pair<uint64_t, uint64_t>>{{4, 3}, {9, 1}}));
  EXPECT_EQ(counts.at(1), (std::multiset<std::pair<uint64_t, uint64_t>>{{9, 1}}));
}

TEST(MapOpsTest, WhereTimeFiltersByTimestamp) {
  Controller ctl(Config{.workers_per_process = 2});
  GraphBuilder b(ctl);
  auto [in, handle] = NewInput<uint64_t>(b);
  Collector<uint64_t> out;
  Subscribe<uint64_t>(WhereTime(Stream<uint64_t>(in),
                                [](const Timestamp& t) { return t.epoch % 2 == 0; }),
                      out.callback());
  ctl.Start();
  handle->OnNext({1});
  handle->OnNext({2});
  handle->OnNext({3});
  handle->OnCompleted();
  ctl.Join();
  EXPECT_EQ(out.at(0), (std::multiset<uint64_t>{1}));
  EXPECT_EQ(out.at(1).size(), 0u);
  EXPECT_EQ(out.at(2), (std::multiset<uint64_t>{3}));
}

TEST(RuntimeEdgeTest, DeepPipelineAndFanOut) {
  Controller ctl(Config{.workers_per_process = 3});
  GraphBuilder b(ctl);
  auto [in, handle] = NewInput<uint64_t>(b);
  Stream<uint64_t> s = in;
  for (int i = 0; i < 20; ++i) {  // 20 chained stages
    s = Select(s, [](const uint64_t& x) { return x + 1; });
  }
  // Fan-out: three independent subscribers each get the full stream.
  std::atomic<uint64_t> sums[3] = {};
  for (int i = 0; i < 3; ++i) {
    ForEach<uint64_t>(s, [&, i](const Timestamp&, std::vector<uint64_t>& recs) {
      for (uint64_t v : recs) {
        sums[i].fetch_add(v);
      }
    });
  }
  ctl.Start();
  handle->OnNext({0, 10});
  handle->OnCompleted();
  ctl.Join();
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(sums[i].load(), 20u + 30u) << "consumer " << i;
  }
}

TEST(RuntimeEdgeTest, SubscribeCallbacksArriveInEpochOrder) {
  Controller ctl(Config{.workers_per_process = 4});
  GraphBuilder b(ctl);
  auto [in, handle] = NewInput<uint64_t>(b);
  std::mutex mu;
  std::vector<uint64_t> epoch_order;
  Subscribe<uint64_t>(Stream<uint64_t>(in), [&](uint64_t e, std::vector<uint64_t>&) {
    std::lock_guard<std::mutex> lock(mu);
    epoch_order.push_back(e);
  });
  ctl.Start();
  for (uint64_t e = 0; e < 10; ++e) {
    handle->OnNext({e});
  }
  handle->OnCompleted();
  ctl.Join();
  std::lock_guard<std::mutex> lock(mu);
  ASSERT_EQ(epoch_order.size(), 10u);
  for (uint64_t e = 0; e < 10; ++e) {
    EXPECT_EQ(epoch_order[e], e);  // completeness notifications fire in epoch order
  }
}

TEST(RuntimeEdgeTest, ImmediateCloseDrainsCleanly) {
  Controller ctl(Config{.workers_per_process = 2});
  GraphBuilder b(ctl);
  auto [in, handle] = NewInput<uint64_t>(b);
  std::atomic<uint64_t> n{0};
  ForEach<uint64_t>(Stream<uint64_t>(in), [&](const Timestamp&, std::vector<uint64_t>& r) {
    n.fetch_add(r.size());
  });
  ctl.Start();
  handle->OnCompleted();  // no epochs at all
  ctl.Join();
  EXPECT_EQ(n.load(), 0u);
}

TEST(RuntimeEdgeDeathTest, DepthMismatchRejectedAtConstruction) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  auto build_invalid = [] {
    Controller ctl(Config{.workers_per_process = 1});
    GraphBuilder b(ctl);
    auto [in, handle] = NewInput<uint64_t>(b);
    LoopContext loop(b, 0);
    Stream<uint64_t> inner = loop.Ingress<uint64_t>(in);
    // Illegal: connecting a depth-1 stream to a depth-0 stage.
    StageId sink = b.NewStage<ForEachVertex<uint64_t>>(
        StageOptions{.name = "bad", .depth = 0}, [](uint32_t) {
          return std::make_unique<ForEachVertex<uint64_t>>(
              [](const Timestamp&, std::vector<uint64_t>&) {});
        });
    using Sink = ForEachVertex<uint64_t>;
    b.Connect<Sink, uint64_t>(inner, sink);
  };
  EXPECT_DEATH(build_invalid(), "output_depth");
}

TEST(IterateTest, CountdownViaIterate) {
  Controller ctl(Config{.workers_per_process = 2});
  GraphBuilder b(ctl);
  auto [in, handle] = NewInput<uint64_t>(b);
  Stream<uint64_t> result =
      Iterate<uint64_t>(in, 0, [](const uint64_t& x) { return x; },
                        [](LoopContext&, Stream<uint64_t> merged) {
                          return Select(Where(merged, [](const uint64_t& x) { return x > 0; }),
                                        [](const uint64_t& x) { return x - 1; });
                        });
  Collector<uint64_t> out;
  Subscribe<uint64_t>(result, out.callback());
  ctl.Start();
  handle->OnNext({3});
  handle->OnCompleted();
  ctl.Join();
  // 3 -> 2 -> 1 -> 0; every circulated value leaves through the egress.
  EXPECT_EQ(out.at(0), (std::multiset<uint64_t>{0, 1, 2}));
}

TEST(IterateTest, BoundedIterationStopsAtLimit) {
  Controller ctl(Config{.workers_per_process = 2});
  GraphBuilder b(ctl);
  auto [in, handle] = NewInput<uint64_t>(b);
  // x -> x+1 forever; only the feedback limit terminates the loop.
  Stream<uint64_t> result =
      Iterate<uint64_t>(in, 5, [](const uint64_t& x) { return x; },
                        [](LoopContext&, Stream<uint64_t> merged) {
                          return Select(merged, [](const uint64_t& x) { return x + 1; });
                        });
  std::atomic<uint64_t> n{0};
  ForEach<uint64_t>(result, [&](const Timestamp&, std::vector<uint64_t>& recs) {
    n.fetch_add(recs.size());
  });
  ctl.Start();
  handle->OnNext({100});
  handle->OnCompleted();
  ctl.Join();
  EXPECT_EQ(n.load(), 5u);  // iterations 0..4 each produce one record
}

}  // namespace
}  // namespace naiad
