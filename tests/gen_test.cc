// Tests for the synthetic graph generators, focused on the streaming sharded path
// (PowerLawEdgeStream) and the alias-method ZipfSampler it relies on. The property that
// carries the 10^8-edge multi-process runs: the union of edges produced by the shards is
// exactly the full edge set, regardless of how many shards the driver uses.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <map>
#include <vector>

#include "src/base/hash.h"
#include "src/base/rng.h"
#include "src/gen/graphs.h"

namespace naiad {
namespace {

PowerLawEdgeStream::Options Opts(uint32_t part, uint32_t parts) {
  PowerLawEdgeStream::Options o;
  o.nodes = 500;
  o.edges = 3000;
  o.exponent = 1.1;
  o.seed = 77;
  o.part = part;
  o.parts = parts;
  return o;
}

std::vector<Edge> DrainAll(PowerLawEdgeStream& s, size_t chunk) {
  std::vector<Edge> out;
  std::vector<Edge> buf;
  while (s.NextChunk(buf, chunk) > 0) {
    out.insert(out.end(), buf.begin(), buf.end());
    buf.clear();
  }
  return out;
}

TEST(PowerLawEdgeStreamTest, EdgeAtIsDeterministicAndInRange) {
  PowerLawEdgeStream a(Opts(0, 1));
  PowerLawEdgeStream b(Opts(0, 1));
  for (uint64_t i = 0; i < 100; ++i) {
    const Edge e = a.EdgeAt(i);
    EXPECT_EQ(e, b.EdgeAt(i));
    EXPECT_LT(e.first, Opts(0, 1).nodes);
    EXPECT_LT(e.second, Opts(0, 1).nodes);
  }
  // EdgeAt is stateless: querying out of order gives the same answers.
  EXPECT_EQ(a.EdgeAt(42), b.EdgeAt(42));
  EXPECT_EQ(a.EdgeAt(7), b.EdgeAt(7));
}

TEST(PowerLawEdgeStreamTest, UnionOverShardsIsInvariantToShardCount) {
  // The whole point of counter-based derivation: re-running the sweep with a different
  // process count must synthesize the same graph.
  PowerLawEdgeStream whole_stream(Opts(0, 1));
  const std::vector<Edge> whole = DrainAll(whole_stream, 64);
  ASSERT_EQ(whole.size(), Opts(0, 1).edges);
  for (uint32_t parts : {2u, 3u, 7u}) {
    std::vector<Edge> merged;
    for (uint32_t part = 0; part < parts; ++part) {
      PowerLawEdgeStream s(Opts(part, parts));
      std::vector<Edge> mine = DrainAll(s, 50);
      merged.insert(merged.end(), mine.begin(), mine.end());
    }
    ASSERT_EQ(merged.size(), whole.size()) << "parts=" << parts;
    std::vector<Edge> a = whole;
    std::sort(a.begin(), a.end());
    std::sort(merged.begin(), merged.end());
    EXPECT_EQ(merged, a) << "parts=" << parts;
  }
}

TEST(PowerLawEdgeStreamTest, ShardsArePositionDisjoint) {
  // Shard p owns exactly the edge indices {i : i % parts == p}, in increasing order.
  const uint32_t parts = 3;
  for (uint32_t part = 0; part < parts; ++part) {
    PowerLawEdgeStream s(Opts(part, parts));
    const std::vector<Edge> mine = DrainAll(s, 128);
    uint64_t idx = part;
    for (const Edge& e : mine) {
      EXPECT_EQ(e, s.EdgeAt(idx));
      idx += parts;
    }
    EXPECT_GE(idx, Opts(0, 1).edges);
  }
}

TEST(PowerLawEdgeStreamTest, ChunkingIsExactAndRemainingCountsDown) {
  PowerLawEdgeStream s(Opts(1, 4));
  const uint64_t total = s.remaining();
  // 3000 edges, 4 parts, part 1 owns indices 1,5,...,2997: 750 edges.
  EXPECT_EQ(total, 750u);
  std::vector<Edge> buf;
  uint64_t seen = 0;
  size_t got;
  while ((got = s.NextChunk(buf, 97)) > 0) {
    seen += got;
    EXPECT_EQ(s.remaining(), total - seen);
  }
  EXPECT_EQ(seen, total);
  EXPECT_EQ(buf.size(), total);  // NextChunk appends
  EXPECT_EQ(s.NextChunk(buf, 97), 0u);
}

TEST(ZipfSamplerTest, SampleIsPureInTheSuppliedRng) {
  ZipfSampler zipf(100, 1.05, /*seed=*/0);
  for (uint64_t i = 0; i < 200; ++i) {
    Rng a(HashCombine(5, i));
    Rng b(HashCombine(5, i));
    const uint64_t x = zipf.Sample(a);
    EXPECT_EQ(x, zipf.Sample(b));
    EXPECT_LT(x, 100u);
  }
}

TEST(ZipfSamplerTest, InternalStreamIsSeedDeterministic) {
  ZipfSampler a(64, 1.2, 9);
  ZipfSampler b(64, 1.2, 9);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Next(), b.Next());
  }
}

TEST(ZipfSamplerTest, AliasTableMatchesZipfShape) {
  // The alias method must reproduce the Zipf pmf: rank 0 strictly dominates, and the
  // empirical head frequency lands near 1/H_n for a big sample.
  const uint64_t n = 32;
  const double s = 1.0;
  ZipfSampler zipf(n, s, 123);
  std::map<uint64_t, uint64_t> counts;
  const uint64_t draws = 200000;
  for (uint64_t i = 0; i < draws; ++i) {
    ++counts[zipf.Next()];
  }
  double harmonic = 0;
  for (uint64_t i = 1; i <= n; ++i) {
    harmonic += 1.0 / static_cast<double>(i);
  }
  const double expect_head = 1.0 / harmonic;
  const double got_head = static_cast<double>(counts[0]) / static_cast<double>(draws);
  EXPECT_NEAR(got_head, expect_head, 0.01);
  EXPECT_GT(counts[0], counts[1]);
  EXPECT_GT(counts[1], counts[8]);
}

}  // namespace
}  // namespace naiad
