// Unit and property tests for the serialization layer.

#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <string>
#include <tuple>
#include <utility>
#include <vector>

#include "src/base/hash.h"
#include "src/base/rng.h"
#include "src/ser/bytes.h"
#include "src/ser/codec.h"
#include "src/ser/columns.h"

namespace naiad {
namespace {

template <typename T>
void ExpectRoundTrip(const T& value) {
  std::vector<uint8_t> bytes = EncodeToBytes(value);
  T out{};
  ASSERT_TRUE(DecodeFromBytes(std::span<const uint8_t>(bytes), out));
  EXPECT_EQ(out, value);
}

TEST(BytesTest, LittleEndianLayout) {
  ByteWriter w;
  w.WriteU32(0x01020304u);
  ASSERT_EQ(w.size(), 4u);
  EXPECT_EQ(w.buffer()[0], 0x04);
  EXPECT_EQ(w.buffer()[3], 0x01);
}

TEST(BytesTest, PatchU32) {
  ByteWriter w;
  w.WriteU32(0);
  w.WriteU8(0xee);
  w.PatchU32(0, 0xdeadbeef);
  ByteReader r(w.buffer());
  EXPECT_EQ(r.ReadU32(), 0xdeadbeefu);
  EXPECT_EQ(r.ReadU8(), 0xee);
}

TEST(BytesTest, TruncatedReadSetsErrorNotUb) {
  std::vector<uint8_t> two = {1, 2};
  ByteReader r(two);
  EXPECT_EQ(r.ReadU64(), 0u);
  EXPECT_FALSE(r.ok());
  // Error is sticky.
  EXPECT_EQ(r.ReadU8(), 0u);
  EXPECT_FALSE(r.ok());
}

TEST(CodecTest, Scalars) {
  ExpectRoundTrip<uint8_t>(200);
  ExpectRoundTrip<uint16_t>(60000);
  ExpectRoundTrip<uint32_t>(4000000000u);
  ExpectRoundTrip<uint64_t>(0xfedcba9876543210ULL);
  ExpectRoundTrip<int64_t>(-123456789);
  ExpectRoundTrip<int32_t>(-42);
  ExpectRoundTrip<double>(3.14159265358979);
  ExpectRoundTrip<float>(2.5f);
  ExpectRoundTrip<bool>(true);
  ExpectRoundTrip<char>('x');
}

TEST(CodecTest, Strings) {
  ExpectRoundTrip(std::string(""));
  ExpectRoundTrip(std::string("hello timely dataflow"));
  ExpectRoundTrip(std::string(10000, 'z'));
  std::string binary("\x00\x01\xff", 3);
  ExpectRoundTrip(binary);
}

TEST(CodecTest, PairsAndTuples) {
  ExpectRoundTrip(std::pair<uint32_t, std::string>{7, "seven"});
  ExpectRoundTrip(std::tuple<uint64_t, double, std::string>{1, 2.0, "three"});
  ExpectRoundTrip(std::pair<std::pair<int, int>, std::string>{{1, 2}, "nested"});
}

TEST(CodecTest, Vectors) {
  ExpectRoundTrip(std::vector<uint64_t>{});
  ExpectRoundTrip(std::vector<uint64_t>{1, 2, 3});
  ExpectRoundTrip(std::vector<std::string>{"a", "", "ccc"});
  ExpectRoundTrip(std::vector<std::pair<uint32_t, uint32_t>>{{1, 2}, {3, 4}});
}

TEST(CodecTest, MalformedStringLengthRejected) {
  ByteWriter w;
  w.WriteU32(1000);  // claims 1000 bytes, supplies 2
  w.WriteU8('a');
  w.WriteU8('b');
  std::string out;
  EXPECT_FALSE(DecodeFromBytes(std::span<const uint8_t>(w.buffer()), out));
}

TEST(CodecTest, MalformedVectorCountRejected) {
  ByteWriter w;
  w.WriteU32(1u << 30);  // absurd element count with no payload
  std::vector<uint64_t> out;
  EXPECT_FALSE(DecodeFromBytes(std::span<const uint8_t>(w.buffer()), out));
}

TEST(CodecTest, TrailingBytesRejectedByDecodeFromBytes) {
  std::vector<uint8_t> bytes = EncodeToBytes<uint32_t>(5);
  bytes.push_back(0);
  uint32_t out = 0;
  EXPECT_FALSE(DecodeFromBytes<uint32_t>(std::span<const uint8_t>(bytes), out));
}

// Property sweep: random nested payloads survive a round trip.
class CodecPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(CodecPropertyTest, RandomVectorsRoundTrip) {
  Rng rng(GetParam());
  std::vector<std::pair<uint64_t, std::string>> recs;
  const size_t n = rng.Below(64);
  for (size_t i = 0; i < n; ++i) {
    std::string s;
    const size_t len = rng.Below(32);
    for (size_t j = 0; j < len; ++j) {
      s.push_back(static_cast<char>(rng.Below(256)));
    }
    recs.emplace_back(rng.Next(), std::move(s));
  }
  ExpectRoundTrip(recs);
}

TEST_P(CodecPropertyTest, TruncationAtEveryPrefixFailsCleanly) {
  Rng rng(GetParam());
  std::vector<uint64_t> payload;
  for (int i = 0; i < 16; ++i) {
    payload.push_back(rng.Next());
  }
  std::vector<uint8_t> bytes = EncodeToBytes(payload);
  for (size_t cut = 0; cut < bytes.size(); ++cut) {
    std::vector<uint64_t> out;
    EXPECT_FALSE(DecodeFromBytes(std::span<const uint8_t>(bytes.data(), cut), out));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CodecPropertyTest, ::testing::Range<uint64_t>(0, 16));

// ---- Seeded fuzz loop over deeply nested codecs ---------------------------------------
//
// 1000+ random instances of a nested tuple/vector/string/map shape, each round-tripped
// exactly, plus random truncations that must fail cleanly (no UB, no partial accept).
// Any failing case reproduces from its case index alone.

namespace fuzz {

using Inner = std::pair<uint32_t, std::string>;
using Record = std::tuple<uint64_t, std::string, std::vector<Inner>, std::vector<uint64_t>>;
using Payload = std::pair<std::vector<Record>, std::map<std::string, std::vector<uint64_t>>>;

std::string RandomString(Rng& rng, size_t max_len) {
  std::string s;
  const size_t len = rng.Below(max_len + 1);
  for (size_t i = 0; i < len; ++i) {
    s.push_back(static_cast<char>(rng.Below(256)));
  }
  return s;
}

Payload RandomPayload(Rng& rng) {
  Payload p;
  const size_t records = rng.Below(8);
  for (size_t i = 0; i < records; ++i) {
    std::vector<Inner> inners;
    const size_t n_inner = rng.Below(5);
    for (size_t j = 0; j < n_inner; ++j) {
      inners.emplace_back(static_cast<uint32_t>(rng.Next()), RandomString(rng, 24));
    }
    std::vector<uint64_t> nums;
    const size_t n_nums = rng.Below(9);
    for (size_t j = 0; j < n_nums; ++j) {
      nums.push_back(rng.Next());
    }
    p.first.emplace_back(rng.Next(), RandomString(rng, 40), std::move(inners),
                         std::move(nums));
  }
  const size_t keys = rng.Below(6);
  for (size_t i = 0; i < keys; ++i) {
    std::vector<uint64_t>& vals = p.second[RandomString(rng, 12)];
    const size_t n = rng.Below(4);
    for (size_t j = 0; j < n; ++j) {
      vals.push_back(rng.Next());
    }
  }
  return p;
}

}  // namespace fuzz

// ---- Columnar struct-of-arrays batches (src/ser/columns.h) ----------------------------

TEST(ColumnBatchTest, RoundTripRankAndLabelColumns) {
  RankColumns rc;
  rc.part = 3;
  rc.Push(10, 0.25);
  rc.Push(11, 1.75);
  rc.Push(0xfedcba9876543210ULL, -2.5);
  ExpectRoundTrip(rc);

  LabelColumns lc;
  lc.part = 0;
  lc.Push(1, 1);
  lc.Push(2, 1);
  ExpectRoundTrip(lc);
}

TEST(ColumnBatchTest, EmptyColumnsRoundTrip) {
  ExpectRoundTrip(RankColumns{});
  RankColumns with_part;
  with_part.part = 7;
  ExpectRoundTrip(with_part);
}

TEST(ColumnBatchTest, LengthMismatchRejectedAtDecode) {
  // Hand-build a frame whose columns disagree: 2 keys, 1 value. Both lengths are on the
  // wire, so Decode must reject it even though each column parses.
  ByteWriter w;
  Codec<uint64_t>::Encode(w, 5);  // part
  Codec<std::vector<uint64_t>>::Encode(w, {1, 2});
  Codec<std::vector<double>>::Encode(w, {0.5});
  RankColumns out;
  EXPECT_FALSE(DecodeFromBytes(std::span<const uint8_t>(w.buffer()), out));
}

TEST(ColumnBatchTest, TruncationAtEveryPrefixFailsCleanly) {
  RankColumns rc;
  rc.part = 2;
  for (uint64_t i = 0; i < 16; ++i) {
    rc.Push(i * 3, static_cast<double>(i) + 0.5);
  }
  std::vector<uint8_t> bytes = EncodeToBytes(rc);
  for (size_t cut = 0; cut < bytes.size(); ++cut) {
    RankColumns out;
    EXPECT_FALSE(DecodeFromBytes(std::span<const uint8_t>(bytes.data(), cut), out))
        << "cut " << cut;
  }
}

TEST(ColumnBatchFuzzTest, RandomBatchesRoundTripAndRejectTears) {
  constexpr uint64_t kCases = 600;
  for (uint64_t i = 0; i < kCases; ++i) {
    Rng rng(HashCombine(0xC01C0DECULL, i));
    LabelColumns lc;
    lc.part = rng.Below(64);
    const size_t n = rng.Below(128);
    for (size_t j = 0; j < n; ++j) {
      lc.Push(rng.Next(), rng.Next());
    }
    std::vector<uint8_t> bytes = EncodeToBytes(lc);
    LabelColumns out;
    ASSERT_TRUE(DecodeFromBytes(std::span<const uint8_t>(bytes), out)) << "case " << i;
    ASSERT_EQ(out, lc) << "case " << i;
    for (int t = 0; t < 4 && !bytes.empty(); ++t) {
      const size_t cut = rng.Below(bytes.size());
      LabelColumns rejected;
      ASSERT_FALSE(DecodeFromBytes(std::span<const uint8_t>(bytes.data(), cut), rejected))
          << "case " << i << " cut " << cut;
    }
  }
}

TEST(ColumnWriterTest, FlushesAtThresholdAndDrainsStragglers) {
  std::vector<RankColumns> emitted;
  auto sink = [&](RankColumns&& b) { emitted.push_back(std::move(b)); };
  ColumnWriter<uint64_t, double, decltype(sink)> cw(/*destinations=*/3, /*flush_at=*/4,
                                                    sink);
  for (uint64_t i = 0; i < 10; ++i) {
    cw.Push(static_cast<uint32_t>(i % 3), i, static_cast<double>(i));
  }
  cw.Drain();
  // Destination 0 holds keys {0,3,6,9}: exactly one full flush. 1 and 2 hold 3 entries
  // each, shipped by Drain.
  ASSERT_EQ(emitted.size(), 3u);
  size_t total = 0;
  for (const RankColumns& b : emitted) {
    ASSERT_EQ(b.keys.size(), b.vals.size());
    for (size_t j = 0; j < b.size(); ++j) {
      EXPECT_EQ(b.keys[j] % 3, b.part) << "entry routed to wrong destination";
      EXPECT_EQ(static_cast<double>(b.keys[j]), b.vals[j]);
    }
    total += b.size();
  }
  EXPECT_EQ(total, 10u);
}

TEST(CodecFuzzTest, NestedPayloadsRoundTripAcrossManySeeds) {
  constexpr uint64_t kCases = 1200;
  for (uint64_t i = 0; i < kCases; ++i) {
    Rng rng(HashCombine(0xC0DECULL, i));
    fuzz::Payload p = fuzz::RandomPayload(rng);
    std::vector<uint8_t> bytes = EncodeToBytes(p);
    fuzz::Payload out;
    ASSERT_TRUE(DecodeFromBytes(std::span<const uint8_t>(bytes), out)) << "case " << i;
    ASSERT_EQ(out, p) << "case " << i;
    // A few random truncations per case: strictly shorter prefixes never decode.
    for (int t = 0; t < 4 && !bytes.empty(); ++t) {
      const size_t cut = rng.Below(bytes.size());
      fuzz::Payload rejected;
      ASSERT_FALSE(
          DecodeFromBytes(std::span<const uint8_t>(bytes.data(), cut), rejected))
          << "case " << i << " cut " << cut;
    }
  }
}

}  // namespace
}  // namespace naiad
