// Tests for the comparator engines: the batch iterative engine (Table 1) and the
// shared-memory GAS engine (Fig. 7a) must compute the same answers as plain references.

#include <gtest/gtest.h>
#include <unistd.h>

#include <functional>
#include <map>
#include <queue>
#include <string>

#include "src/baseline/batch_engine.h"
#include "src/baseline/gas_engine.h"
#include "src/gen/graphs.h"

namespace naiad {
namespace {

// ctest runs test binaries in parallel; a fixed spill path would let two
// processes clobber each other's file between write and read-back.
std::string SpillPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name + "." + std::to_string(getpid()) + ".spill";
}

std::map<uint64_t, uint64_t> RefWcc(const std::vector<Edge>& edges) {
  std::map<uint64_t, uint64_t> parent;
  std::function<uint64_t(uint64_t)> find = [&](uint64_t x) {
    parent.try_emplace(x, x);
    while (parent[x] != x) {
      parent[x] = parent[parent[x]];
      x = parent[x];
    }
    return x;
  };
  for (const Edge& e : edges) {
    uint64_t a = find(e.first);
    uint64_t b = find(e.second);
    if (a != b) {
      parent[std::max(a, b)] = std::min(a, b);
    }
  }
  std::map<uint64_t, uint64_t> out;
  for (const auto& [n, p] : parent) {
    out[n] = find(n);
  }
  return out;
}

std::map<uint64_t, double> RefPageRank(const std::vector<Edge>& edges, uint64_t iters) {
  std::map<uint64_t, double> rank;
  std::map<uint64_t, uint64_t> deg;
  for (const Edge& e : edges) {
    rank.try_emplace(e.first, 1.0);
    rank.try_emplace(e.second, 1.0);
    ++deg[e.first];
  }
  for (uint64_t i = 1; i < iters; ++i) {
    std::map<uint64_t, double> next;
    for (const auto& [n, r] : rank) {
      next[n] = 0.15;
    }
    for (const Edge& e : edges) {
      next[e.second] += 0.85 * rank[e.first] / static_cast<double>(deg[e.first]);
    }
    rank = std::move(next);
  }
  return rank;
}

class BaselineSweep : public ::testing::TestWithParam<uint64_t> {};

TEST_P(BaselineSweep, BatchWccMatchesUnionFind) {
  std::vector<Edge> edges = RandomGraph(50, 80, GetParam());
  std::map<uint64_t, uint64_t> labels;
  uint64_t iters = BatchWcc(edges, SpillPath("batch_wcc"), &labels, BatchEngineOptions{0});
  EXPECT_GT(iters, 0u);
  EXPECT_EQ(labels, RefWcc(edges));
}

TEST_P(BaselineSweep, BatchPageRankMatchesReference) {
  std::vector<Edge> edges = RandomGraph(30, 60, GetParam() + 50);
  std::map<uint64_t, double> ranks;
  BatchPageRank(edges, 6, SpillPath("batch_pr"), &ranks, BatchEngineOptions{0});
  std::map<uint64_t, double> want = RefPageRank(edges, 6);
  ASSERT_EQ(ranks.size(), want.size());
  for (const auto& [n, r] : want) {
    EXPECT_NEAR(ranks[n], r, 1e-9);
  }
}

TEST_P(BaselineSweep, GasPageRankMatchesReference) {
  std::vector<Edge> edges = RandomGraph(30, 60, GetParam() + 90);
  GasPageRank gas(edges, 3);
  const std::vector<double>& ranks = gas.Run(5);  // 5 GAS updates
  std::map<uint64_t, double> want = RefPageRank(edges, 6);  // = 5 reference updates
  for (const auto& [n, r] : want) {
    EXPECT_NEAR(ranks[n], r, 1e-9) << "node " << n;
  }
}

TEST_P(BaselineSweep, BatchAspMatchesBfsDistances) {
  std::vector<Edge> edges = RandomGraph(40, 90, GetParam() + 500);
  std::vector<uint64_t> sources = {0, 1};
  uint64_t iters = BatchAsp(edges, sources, SpillPath("batch_asp"), BatchEngineOptions{0});
  EXPECT_GT(iters, 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, BaselineSweep, ::testing::Range<uint64_t>(0, 4));

TEST(BatchEngineTest, SpillsBytesEveryIteration) {
  BatchIterativeEngine engine(SpillPath("spill"), BatchEngineOptions{0});
  std::vector<uint64_t> state = {1, 2, 3};
  uint64_t iters = engine.Run<std::vector<uint64_t>>(state, 5, [](std::vector<uint64_t>& s) {
    for (uint64_t& x : s) {
      ++x;
    }
    return true;
  });
  EXPECT_EQ(iters, 5u);
  EXPECT_EQ(state, (std::vector<uint64_t>{6, 7, 8}));  // survives the spill round trips
  EXPECT_GT(engine.bytes_spilled(), 5 * 3 * sizeof(uint64_t));
}

TEST(BatchEngineTest, StopsOnConvergence) {
  BatchIterativeEngine engine(SpillPath("spill2"), BatchEngineOptions{0});
  uint64_t countdown = 3;
  struct State {
    uint64_t v = 0;
    void Encode(ByteWriter& w) const { w.WriteU64(v); }
    bool Decode(ByteReader& r) {
      v = r.ReadU64();
      return r.ok();
    }
  };
  State st{3};
  uint64_t iters = engine.Run<State>(st, 100, [&](State& s) { return --s.v > 0; });
  EXPECT_EQ(iters, 3u);
  (void)countdown;
}

}  // namespace
}  // namespace naiad
