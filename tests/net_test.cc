// Tests for the TCP transport, the distributed progress protocol, and multi-process
// (loopback cluster) execution equivalence — including the receive path under
// adversarial schedules: torn reads, EINTR storms, mid-frame EOF classification, and
// reset-then-reconnect adoption.

#include <gtest/gtest.h>

#include <sys/socket.h>

#include <atomic>
#include <chrono>
#include <map>
#include <mutex>
#include <numeric>
#include <set>
#include <thread>
#include <vector>

#include "src/core/io.h"
#include "src/core/loop.h"
#include "src/core/stage.h"
#include "src/net/cluster.h"
#include "src/net/socket.h"
#include "src/net/transport.h"

namespace naiad {
namespace {

TEST(SocketTest, RoundTripBytes) {
  Listener l;
  uint16_t port = l.Open();
  ASSERT_NE(port, 0);
  Socket client = Socket::ConnectLocal(port);
  ASSERT_TRUE(client.valid());
  Socket server = l.Accept();
  ASSERT_TRUE(server.valid());

  std::vector<uint8_t> msg = {1, 2, 3, 4, 5};
  ASSERT_TRUE(client.WriteAll(msg));
  std::vector<uint8_t> got(5);
  ASSERT_TRUE(server.ReadAll(got));
  EXPECT_EQ(got, msg);

  client.ShutdownBoth();
  std::vector<uint8_t> more(1);
  EXPECT_FALSE(server.ReadAll(more));  // EOF surfaces as false, not a crash
}

TEST(TransportTest, MeshDeliversFramesFifoPerPair) {
  constexpr uint32_t kProcs = 3;
  std::vector<std::unique_ptr<TcpTransport>> transports;
  std::vector<uint16_t> ports;
  for (uint32_t p = 0; p < kProcs; ++p) {
    transports.push_back(std::make_unique<TcpTransport>(p, kProcs));
    ports.push_back(transports.back()->Listen());
  }
  std::mutex mu;
  std::map<uint32_t, std::vector<std::pair<uint32_t, uint32_t>>> received;  // dst -> (src, seq)
  std::vector<std::thread> starters;
  for (uint32_t p = 0; p < kProcs; ++p) {
    starters.emplace_back([&, p] {
      TcpTransport::Callbacks cb;
      cb.on_frame = [&, p](FrameType type, uint32_t src, uint32_t /*job*/,
                           std::span<const uint8_t> payload, bool /*wire*/) {
        if (type != FrameType::kData) {
          return;
        }
        ByteReader r(payload);
        uint32_t seq = r.ReadU32();
        std::lock_guard<std::mutex> lock(mu);
        received[p].emplace_back(src, seq);
      };
      transports[p]->Start(ports, std::move(cb));
    });
  }
  for (auto& t : starters) {
    t.join();
  }

  constexpr uint32_t kPer = 200;
  for (uint32_t src = 0; src < kProcs; ++src) {
    for (uint32_t seq = 0; seq < kPer; ++seq) {
      for (uint32_t dst = 0; dst < kProcs; ++dst) {
        if (dst == src) {
          continue;
        }
        ByteWriter w;
        w.WriteU32(seq);
        transports[src]->Send(dst, FrameType::kData, std::move(w.buffer()));
      }
    }
  }
  // Wait for all deliveries.
  const size_t expect = (kProcs - 1) * kPer;
  for (int spin = 0; spin < 2000; ++spin) {
    std::lock_guard<std::mutex> lock(mu);
    size_t total = 0;
    for (auto& [dst, v] : received) {
      total += v.size();
    }
    if (total == expect * kProcs) {
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  std::lock_guard<std::mutex> lock(mu);
  for (uint32_t dst = 0; dst < kProcs; ++dst) {
    ASSERT_EQ(received[dst].size(), expect);
    std::map<uint32_t, uint32_t> next;  // per-src FIFO check
    for (auto [src, seq] : received[dst]) {
      EXPECT_EQ(seq, next[src]++);
    }
  }
  for (auto& t : transports) {
    t->Shutdown();
  }
}

// Regression: Send()/BroadcastFrame() used to bump frames_sent_/bytes_sent_ *before*
// noticing the link was closed, then silently drop the frame — inflating the wire totals
// that the termination barrier's stability check and the Fig. 6a/6c accounting read.
// Counters must reflect only frames actually handed to a sender thread.
TEST(TransportTest, DroppedFramesOnClosedLinkAreNotCounted) {
  constexpr uint32_t kProcs = 2;
  std::vector<std::unique_ptr<TcpTransport>> transports;
  std::vector<uint16_t> ports;
  for (uint32_t p = 0; p < kProcs; ++p) {
    transports.push_back(std::make_unique<TcpTransport>(p, kProcs));
    ports.push_back(transports.back()->Listen());
  }
  std::vector<std::thread> starters;
  for (uint32_t p = 0; p < kProcs; ++p) {
    starters.emplace_back([&, p] {
      TcpTransport::Callbacks cb;
      cb.on_frame = [](FrameType, uint32_t, uint32_t, std::span<const uint8_t>, bool) {};
      transports[p]->Start(ports, std::move(cb));
    });
  }
  for (auto& t : starters) {
    t.join();
  }

  // One real frame establishes the baseline and proves the counted path still counts.
  ByteWriter w;
  w.WriteU32(7);
  transports[0]->Send(1, FrameType::kData, std::move(w.buffer()));
  for (int spin = 0; spin < 2000; ++spin) {
    if (transports[1]->frames_received(FrameType::kData) == 1) {
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  const uint64_t frames = transports[0]->frames_sent(FrameType::kData);
  const uint64_t bytes = transports[0]->bytes_sent(FrameType::kData);
  EXPECT_EQ(frames, 1u);
  EXPECT_EQ(transports[1]->frames_received(FrameType::kData), frames);

  // Shutdown closes every send link; subsequent sends are dropped and must not count.
  transports[0]->Shutdown();
  for (int i = 0; i < 16; ++i) {
    ByteWriter wd;
    wd.WriteU32(9);
    transports[0]->Send(1, FrameType::kData, std::move(wd.buffer()));
  }
  const std::vector<uint8_t> payload = {1, 2, 3};
  transports[0]->BroadcastFrame(FrameType::kProgress, payload, /*include_self=*/false);
  EXPECT_EQ(transports[0]->frames_sent(FrameType::kData), frames);
  EXPECT_EQ(transports[0]->bytes_sent(FrameType::kData), bytes);
  EXPECT_EQ(transports[0]->frames_sent(FrameType::kProgress), 0u);
  EXPECT_EQ(transports[0]->bytes_sent(FrameType::kProgress), 0u);
  transports[1]->Shutdown();
}

// --- Receive-path fault coverage ------------------------------------------------------
//
// These tests drive exact torn-read / EINTR / reset schedules against Socket::ReadExact
// and a live TcpTransport receiver, where the seeded sweep (fault_injection_test) only
// samples them.

// Replays a fixed cycle of ReadSteps so a test controls the recv() schedule precisely.
class ScriptedReadFaults final : public ReadFaultHook {
 public:
  explicit ScriptedReadFaults(std::vector<ReadStep> script) : script_(std::move(script)) {}
  ReadStep Next(size_t /*remaining*/) override {
    const ReadStep step = script_.empty() ? ReadStep{} : script_[consulted_ % script_.size()];
    ++consulted_;
    return step;
  }
  uint64_t consulted() const { return consulted_; }

 private:
  std::vector<ReadStep> script_;
  uint64_t consulted_ = 0;
};

std::pair<Socket, Socket> LocalPair() {
  Listener l;
  uint16_t port = l.Open();
  Socket client = Socket::ConnectLocal(port);
  Socket server = l.Accept();
  return {std::move(client), std::move(server)};
}

// Regression for the EOF-classification audit: a peer close before the first byte of the
// span is a clean boundary (kEof); a close after partial progress is a torn read (kError)
// and must never surface as a short success.
TEST(SocketTest, ReadExactDistinguishesCleanEofFromTornRead) {
  {
    auto [client, server] = LocalPair();
    client.Close();
    std::vector<uint8_t> buf(9);
    const ReadResult r = server.ReadExact(buf);
    EXPECT_EQ(r.status, ReadResult::Status::kEof);
    EXPECT_EQ(r.bytes_read, 0u);
    EXPECT_EQ(r.err, 0);
  }
  {
    auto [client, server] = LocalPair();
    const std::vector<uint8_t> partial = {0xde, 0xad, 0xbe, 0xef};
    ASSERT_TRUE(client.WriteAll(partial));
    client.Close();
    std::vector<uint8_t> buf(9);
    const ReadResult r = server.ReadExact(buf);
    EXPECT_EQ(r.status, ReadResult::Status::kError);
    EXPECT_EQ(r.bytes_read, 4u);
    EXPECT_EQ(r.err, 0);  // orderly close mid-span, not an errno failure
  }
}

// An EINTR storm plus torn reads (1-5 byte chunks) during ReadExact must reshape only the
// syscall schedule: every byte still arrives, in order, exactly once.
TEST(SocketTest, EintrStormAndTornReadsPreserveByteStream) {
  auto [client, server] = LocalPair();
  ScriptedReadFaults faults({
      ReadStep{.delay_us = 0, .max_len = 3, .eintr_spins = 2},
      ReadStep{.max_len = 1},
      ReadStep{.delay_us = 20, .max_len = 5, .eintr_spins = 1},
      ReadStep{.max_len = 2, .eintr_spins = 3},
  });
  server.SetReadFaults(&faults);
  std::vector<uint8_t> msg(4096);
  for (size_t i = 0; i < msg.size(); ++i) {
    msg[i] = static_cast<uint8_t>(i * 31 + 7);
  }
  std::thread writer([&client, &msg] { EXPECT_TRUE(client.WriteAll(msg)); });
  std::vector<uint8_t> got(msg.size());
  const ReadResult r = server.ReadExact(got);
  writer.join();
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.bytes_read, msg.size());
  EXPECT_EQ(got, msg);
  // The chunk caps (max 5 bytes per step) force the read through many faulted attempts.
  EXPECT_GE(faults.consulted(), msg.size() / 5);
}

// A transport with one real endpoint (pid 1 of 2) whose "process 0" peer is the test:
// raw sockets dial the transport's listener, complete the u32 handshake, and write frames
// byte-by-whatever-schedule the test wants. The stub listener only exists so Start()'s
// mesh dial of process 0 succeeds.
class RecvHarness {
 public:
  explicit RecvHarness(ClusterFaultPlan* plan = nullptr) : transport_(1, 2) {
    if (plan != nullptr) {
      transport_.SetFaultPlan(plan);
    }
    const uint16_t my_port = transport_.Listen();
    const uint16_t stub_port = stub_.Open();
    port_ = my_port;
    TcpTransport::Callbacks cb;
    cb.on_frame = [this](FrameType type, uint32_t src, uint32_t /*job*/,
                         std::span<const uint8_t> payload, bool /*wire*/) {
      if (type != FrameType::kData) {
        return;
      }
      EXPECT_EQ(src, 0u);
      std::lock_guard<std::mutex> lock(mu_);
      got_.emplace_back(payload.begin(), payload.end());
    };
    transport_.Start({stub_port, my_port}, std::move(cb));
  }
  ~RecvHarness() { transport_.Shutdown(); }

  // Dials the transport as "process 0" and completes the identifying handshake
  // ([u32 src][u32 restart generation]).
  Socket Dial() {
    Socket s = Socket::ConnectLocal(port_);
    EXPECT_TRUE(s.valid());
    const uint32_t hello[2] = {0, 0};
    EXPECT_TRUE(s.WriteAll(std::span<const uint8_t>(
        reinterpret_cast<const uint8_t*>(hello), sizeof(hello))));
    return s;
  }

  // A fully framed kData wire frame from process 0 (job 0). `seq` is the per-link
  // per-type sequence number the receiver's dedup tracks: it only advances on fully
  // delivered frames, so a test that tears a frame must re-send it with the *same* seq
  // on the replacement connection (exactly what a real sender's numbering produces —
  // torn writes kill the link, they never skip a number).
  static std::vector<uint8_t> Frame(std::span<const uint8_t> payload, uint64_t seq = 0) {
    ByteWriter w;
    w.WriteU32(static_cast<uint32_t>(payload.size()));
    w.WriteU8(static_cast<uint8_t>(FrameType::kData));
    w.WriteU32(0);
    w.WriteU32(0);  // job
    w.WriteU64(seq);
    w.WriteBytes(payload.data(), payload.size());
    return std::move(w.buffer());
  }

  bool WaitForCount(size_t n) {
    for (int spin = 0; spin < 3000; ++spin) {
      {
        std::lock_guard<std::mutex> lock(mu_);
        if (got_.size() >= n) {
          return got_.size() == n;
        }
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
    return false;
  }
  std::vector<std::vector<uint8_t>> Received() {
    std::lock_guard<std::mutex> lock(mu_);
    return got_;
  }
  TcpTransport& transport() { return transport_; }

 private:
  Listener stub_;  // "process 0"'s listener; its connection from Start() is never used
  TcpTransport transport_;
  uint16_t port_ = 0;
  std::mutex mu_;
  std::vector<std::vector<uint8_t>> got_;
};

bool WaitFor(const std::function<bool()>& pred) {
  for (int spin = 0; spin < 3000; ++spin) {
    if (pred()) {
      return true;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  return pred();
}

// EOF inside the 21-byte header is a torn frame: counted, never dispatched, and the link
// survives to serve a replacement connection.
TEST(TransportRecvTest, TornReadMidHeaderIsLinkErrorNotFrame) {
  RecvHarness h;
  const std::vector<uint8_t> payload = {10, 20, 30, 40, 50};
  {
    Socket peer = h.Dial();
    const std::vector<uint8_t> frame = RecvHarness::Frame(payload);
    ASSERT_TRUE(peer.WriteAll(std::span<const uint8_t>(frame).first(4)));
  }  // close with 4 of 21 header bytes delivered
  EXPECT_TRUE(WaitFor([&] { return h.transport().recv_torn_frames() == 1; }));
  EXPECT_EQ(h.Received().size(), 0u);  // the partial frame was abandoned, not dispatched
  EXPECT_EQ(h.transport().recv_boundary_resets(), 0u);

  Socket replacement = h.Dial();
  ASSERT_TRUE(replacement.WriteAll(RecvHarness::Frame(payload)));
  ASSERT_TRUE(h.WaitForCount(1));
  EXPECT_EQ(h.Received()[0], payload);
}

// EOF inside the body — even a "clean" close at body offset 0, since the header was
// already consumed — is likewise torn, never a short frame.
TEST(TransportRecvTest, TornReadMidBodyIsLinkErrorNotShortFrame) {
  RecvHarness h;
  std::vector<uint8_t> payload(100);
  for (size_t i = 0; i < payload.size(); ++i) {
    payload[i] = static_cast<uint8_t>(i);
  }
  {
    Socket peer = h.Dial();
    const std::vector<uint8_t> frame = RecvHarness::Frame(payload);
    ASSERT_TRUE(peer.WriteAll(
        std::span<const uint8_t>(frame).first(kFrameWireHeaderBytes + 40)));
  }  // close with the header and 40 of 100 body bytes delivered
  EXPECT_TRUE(WaitFor([&] { return h.transport().recv_torn_frames() == 1; }));
  EXPECT_EQ(h.Received().size(), 0u);
  EXPECT_EQ(h.transport().frames_received(FrameType::kData), 0u);

  Socket replacement = h.Dial();
  ASSERT_TRUE(replacement.WriteAll(RecvHarness::Frame(payload)));
  ASSERT_TRUE(h.WaitForCount(1));
  EXPECT_EQ(h.Received()[0], payload);
}

// The reset-then-reconnect shape the sender-side harness produces: a replacement
// connection arrives (and sits pending) while a frame is still partially in flight on the
// old connection. The receiver must drain the old connection to EOF — completing that
// frame and any behind it — before adopting the replacement. FIFO across the reconnect.
TEST(TransportRecvTest, ReconnectAdoptionWaitsForPartialFrameInFlight) {
  RecvHarness h;
  const std::vector<uint8_t> p1 = {1, 1, 1, 1, 1, 1, 1, 1};
  const std::vector<uint8_t> p2 = {2, 2, 2};
  const std::vector<uint8_t> p3 = {3, 3, 3, 3, 3};
  const std::vector<uint8_t> f1 = RecvHarness::Frame(p1, /*seq=*/0);
  Socket a = h.Dial();
  // Frame 1 goes out torn across the window: header plus half the body now...
  ASSERT_TRUE(a.WriteAll(
      std::span<const uint8_t>(f1).first(kFrameWireHeaderBytes + p1.size() / 2)));
  // ...the replacement dials in and is queued while frame 1 is still in flight...
  Socket b = h.Dial();
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  // ...then the old connection finishes frame 1, ships frame 2, and closes on the
  // boundary, exactly like a sender-side ResetLink.
  ASSERT_TRUE(a.WriteAll(
      std::span<const uint8_t>(f1).subspan(kFrameWireHeaderBytes + p1.size() / 2)));
  ASSERT_TRUE(a.WriteAll(RecvHarness::Frame(p2, /*seq=*/1)));
  a.Close();
  ASSERT_TRUE(b.WriteAll(RecvHarness::Frame(p3, /*seq=*/2)));

  ASSERT_TRUE(h.WaitForCount(3));
  const auto got = h.Received();
  EXPECT_EQ(got[0], p1);
  EXPECT_EQ(got[1], p2);
  EXPECT_EQ(got[2], p3);
  EXPECT_EQ(h.transport().recv_torn_frames(), 0u);
  EXPECT_EQ(h.transport().recv_boundary_resets(), 0u);
}

// A hard reset (RST) landing exactly on a frame boundary is recoverable and classified
// separately from a torn frame: every frame written before the abort was delivered, so
// the receiver waits for a replacement rather than flagging corruption.
TEST(TransportRecvTest, BoundaryResetIsClassifiedAndRecovered) {
  RecvHarness h;
  const std::vector<uint8_t> p1 = {7, 7, 7};
  const std::vector<uint8_t> p2 = {8, 8, 8, 8};
  Socket a = h.Dial();
  ASSERT_TRUE(a.WriteAll(RecvHarness::Frame(p1, /*seq=*/0)));
  // Frame 1 must be fully consumed before the reset so it lands on the boundary (an RST
  // discards any bytes still buffered in the receiver's kernel socket).
  ASSERT_TRUE(h.WaitForCount(1));
  const linger lg = {.l_onoff = 1, .l_linger = 0};
  ASSERT_EQ(::setsockopt(a.fd(), SOL_SOCKET, SO_LINGER, &lg, sizeof(lg)), 0);
  a.Close();  // RST instead of FIN
  EXPECT_TRUE(WaitFor([&] { return h.transport().recv_boundary_resets() == 1; }));
  EXPECT_EQ(h.transport().recv_torn_frames(), 0u);

  Socket b = h.Dial();
  ASSERT_TRUE(b.WriteAll(RecvHarness::Frame(p2, /*seq=*/1)));
  ASSERT_TRUE(h.WaitForCount(2));
  EXPECT_EQ(h.Received()[1], p2);
}

// A frame delivered twice with the same per-type sequence number — the shape the
// duplicate-delivery fault class injects — is dispatched exactly once: the second copy
// is dropped, counted in recv_dup_frames, and excluded from frames_received, so the
// termination barrier's traffic accounting still converges.
TEST(TransportRecvTest, DuplicateSequenceNumberIsDroppedNotRedelivered) {
  RecvHarness h;
  const std::vector<uint8_t> p1 = {5, 6, 7};
  const std::vector<uint8_t> p2 = {8, 9};
  Socket peer = h.Dial();
  const std::vector<uint8_t> f1 = RecvHarness::Frame(p1, /*seq=*/0);
  ASSERT_TRUE(peer.WriteAll(f1));
  ASSERT_TRUE(peer.WriteAll(f1));  // duplicate delivery: same bytes, same seq
  ASSERT_TRUE(peer.WriteAll(RecvHarness::Frame(p2, /*seq=*/1)));
  ASSERT_TRUE(h.WaitForCount(2));
  const auto got = h.Received();
  EXPECT_EQ(got[0], p1);
  EXPECT_EQ(got[1], p2);
  EXPECT_EQ(h.transport().recv_dup_frames(), 1u);
  EXPECT_EQ(h.transport().frames_received(FrameType::kData), 2u);
}

// Dedup state must survive connection replacement: a duplicate re-delivered on the
// *replacement* connection (the realistic reset-replay shape) is still recognized,
// because both sides number frames per link, not per connection.
TEST(TransportRecvTest, DedupStateSurvivesReplacementConnection) {
  RecvHarness h;
  const std::vector<uint8_t> p1 = {1, 2};
  const std::vector<uint8_t> p2 = {3, 4, 5};
  {
    Socket a = h.Dial();
    ASSERT_TRUE(a.WriteAll(RecvHarness::Frame(p1, /*seq=*/0)));
  }  // boundary close after frame 1 delivers
  ASSERT_TRUE(h.WaitForCount(1));
  Socket b = h.Dial();
  ASSERT_TRUE(b.WriteAll(RecvHarness::Frame(p1, /*seq=*/0)));  // replayed duplicate
  ASSERT_TRUE(b.WriteAll(RecvHarness::Frame(p2, /*seq=*/1)));
  ASSERT_TRUE(h.WaitForCount(2));
  EXPECT_EQ(h.Received()[1], p2);
  EXPECT_EQ(h.transport().recv_dup_frames(), 1u);
}

// Deterministic receive-side schedule storm at the transport layer: torn reads (1-3 byte
// chunks), modeled EINTR, read stalls, dispatch delays, and adoption delays, with 50
// frames of varying size written as one burst so chunk boundaries land everywhere. The
// faults may only reshape timing: content, order, and counts must be exact.
class StormRecvFaults final : public RecvLinkFaultHook {
 public:
  ReadStep Next(size_t /*remaining*/) override {
    ++steps_;
    ReadStep s;
    s.max_len = 1 + steps_ % 3;
    if (steps_ % 5 == 0) {
      s.eintr_spins = 2;
    }
    if (steps_ % 17 == 0) {
      s.delay_us = 10;
    }
    return s;
  }
  uint32_t DispatchDelayUs(uint64_t frame_index) override {
    return frame_index % 4 == 0 ? 50 : 0;
  }
  uint32_t AdoptionDelayUs(uint64_t /*replacement_index*/) override { return 100; }

 private:
  uint64_t steps_ = 0;
};

class StormPlan final : public ClusterFaultPlan {
 public:
  LinkFaultHook* Link(uint32_t, uint32_t) override { return nullptr; }
  ProgressFaultHook* Progress(uint32_t) override { return nullptr; }
  RecvLinkFaultHook* RecvLink(uint32_t, uint32_t) override { return &faults_; }

 private:
  StormRecvFaults faults_;
};

TEST(TransportRecvTest, ReadFaultStormPreservesFifoAndContent) {
  StormPlan plan;
  RecvHarness h(&plan);
  constexpr size_t kFrames = 50;
  std::vector<std::vector<uint8_t>> payloads;
  std::vector<uint8_t> wire;
  for (size_t i = 0; i < kFrames; ++i) {
    std::vector<uint8_t> p(1 + (i * 13) % 47);
    for (size_t j = 0; j < p.size(); ++j) {
      p[j] = static_cast<uint8_t>(i ^ (j * 3));
    }
    const std::vector<uint8_t> frame = RecvHarness::Frame(p, /*seq=*/i);
    wire.insert(wire.end(), frame.begin(), frame.end());
    payloads.push_back(std::move(p));
  }
  Socket peer = h.Dial();
  ASSERT_TRUE(peer.WriteAll(wire));
  ASSERT_TRUE(h.WaitForCount(kFrames));
  const auto got = h.Received();
  ASSERT_EQ(got.size(), kFrames);
  for (size_t i = 0; i < kFrames; ++i) {
    EXPECT_EQ(got[i], payloads[i]) << "frame " << i;
  }
  EXPECT_EQ(h.transport().recv_torn_frames(), 0u);
}

// Regression: Shutdown() while a receiver is blocked mid-frame and a silent replacement
// sits pending must return promptly. The receiver's teardown-unblocked read must neither
// count as a torn frame nor adopt the pending connection (whose dialer never closes it —
// nothing would ever unblock that read).
TEST(TransportRecvTest, ShutdownWithPendingReplacementAndBlockedReadReturns) {
  RecvHarness h;
  Socket a = h.Dial();
  std::vector<uint8_t> payload(100, 0xab);
  const std::vector<uint8_t> frame = RecvHarness::Frame(payload);
  // Park the receiver mid-body on connection A...
  ASSERT_TRUE(a.WriteAll(
      std::span<const uint8_t>(frame).first(kFrameWireHeaderBytes + 40)));
  // ...queue a replacement whose dialer stays silent forever...
  Socket b = h.Dial();
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  // ...and tear down. Both sockets stay open across the call: only Shutdown itself may
  // unblock the receiver.
  const auto t0 = std::chrono::steady_clock::now();
  h.transport().Shutdown();
  const auto elapsed = std::chrono::steady_clock::now() - t0;
  EXPECT_LT(elapsed, std::chrono::seconds(5));
  EXPECT_EQ(h.transport().recv_torn_frames(), 0u);  // local teardown is not a link fault
}

// Regression: a dialer that connects but never sends its identifying handshake must not
// pin Shutdown() forever (shutting the listener down unblocks Accept, but not an
// in-progress handshake read — Shutdown must unblock that fd explicitly).
TEST(TransportTest, ShutdownUnblocksStalledHandshake) {
  TcpTransport t(0, 1);  // no peers, but the acceptor loop still runs
  const uint16_t port = t.Listen();
  TcpTransport::Callbacks cb;
  cb.on_frame = [](FrameType, uint32_t, uint32_t, std::span<const uint8_t>, bool) {};
  t.Start({port}, std::move(cb));
  Socket silent = Socket::ConnectLocal(port);
  ASSERT_TRUE(silent.valid());
  // Let the acceptor pick the connection up and park in the handshake read.
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  const auto t0 = std::chrono::steady_clock::now();
  t.Shutdown();
  const auto elapsed = std::chrono::steady_clock::now() - t0;
  EXPECT_LT(elapsed, std::chrono::seconds(5));
}

// Stress regression for the adopt-after-shutdown race: a replacement queued around the
// instant of Shutdown()'s sweep must never be adopted afterwards (its dialer never closes
// it, so adoption would hang the receiver join). The test races Shutdown against the
// acceptor queuing a silent replacement; on regression it hangs rather than fails.
TEST(TransportRecvTest, ShutdownNeverAdoptsLateReplacementStress) {
  for (int iter = 0; iter < 15; ++iter) {
    auto h = std::make_unique<RecvHarness>();
    const std::vector<uint8_t> p = {1, 2, 3};
    {
      Socket a = h->Dial();
      ASSERT_TRUE(a.WriteAll(RecvHarness::Frame(p)));
    }  // boundary close: the receiver drains A and goes back to waiting
    ASSERT_TRUE(h->WaitForCount(1));
    Socket b = h->Dial();  // silent replacement, racing the sweep below
    if (iter % 2 == 0) {
      std::this_thread::sleep_for(std::chrono::microseconds(50 * iter));
    }
    h->transport().Shutdown();  // must return regardless of where b's adoption raced
  }
}

// A keyed counting vertex used for the distributed equivalence tests.
class CountPerKeyVertex final : public UnaryVertex<uint64_t, std::pair<uint64_t, uint64_t>> {
 public:
  void OnRecv(const Timestamp& t, std::vector<uint64_t>& batch) override {
    auto [it, fresh] = counts_.try_emplace(t);
    if (fresh) {
      NotifyAt(t);
    }
    for (uint64_t k : batch) {
      ++it->second[k];
    }
  }
  void OnNotify(const Timestamp& t) override {
    for (auto [k, n] : counts_[t]) {
      output().Send(t, {k, n});
    }
    counts_.erase(t);
  }

 private:
  std::map<Timestamp, std::map<uint64_t, uint64_t>> counts_;
};

std::map<uint64_t, uint64_t> RunDistributedCount(uint32_t processes, uint32_t workers,
                                                 ProgressStrategy strategy,
                                                 ClusterStats* stats_out = nullptr) {
  std::mutex mu;
  std::map<uint64_t, uint64_t> result;
  ClusterOptions opts;
  opts.processes = processes;
  opts.workers_per_process = workers;
  opts.strategy = strategy;
  ClusterStats stats = Cluster::Run(opts, [&](Controller& ctl) {
    GraphBuilder b(ctl);
    auto [in, handle] = NewInput<uint64_t>(b);
    StageId count = b.NewStage<CountPerKeyVertex>(
        StageOptions{.name = "count"},
        [](uint32_t) { return std::make_unique<CountPerKeyVertex>(); });
    b.Connect<CountPerKeyVertex, uint64_t>(in, count, 0,
                                           [](const uint64_t& k) { return k; });
    Subscribe<std::pair<uint64_t, uint64_t>>(
        b.OutputOf<std::pair<uint64_t, uint64_t>>(count),
        [&](uint64_t, std::vector<std::pair<uint64_t, uint64_t>>& recs) {
          std::lock_guard<std::mutex> lock(mu);
          for (auto [k, n] : recs) {
            result[k] += n;
          }
        });
    ctl.Start();
    // SPMD: each process contributes its share of the records.
    const uint32_t pid = ctl.config().process_id;
    for (uint64_t epoch = 0; epoch < 3; ++epoch) {
      std::vector<uint64_t> data;
      for (uint64_t i = 0; i < 500; ++i) {
        data.push_back((pid * 977 + i) % 37);
      }
      handle->OnNext(std::move(data));
    }
    handle->OnCompleted();
    ctl.Join();
  });
  if (stats_out != nullptr) {
    *stats_out = stats;
  }
  return result;
}

TEST(ClusterTest, DistributedCountMatchesSingleProcess) {
  std::map<uint64_t, uint64_t> single =
      RunDistributedCount(1, 4, ProgressStrategy::kDirect);
  std::map<uint64_t, uint64_t> multi =
      RunDistributedCount(3, 2, ProgressStrategy::kDirect);
  // Same total multiset of keys, scaled by process count (each process injects its share).
  uint64_t single_total = 0;
  uint64_t multi_total = 0;
  for (auto [k, n] : single) {
    single_total += n;
  }
  for (auto [k, n] : multi) {
    multi_total += n;
  }
  EXPECT_EQ(single_total, 3 * 500u);
  EXPECT_EQ(multi_total, 3 * 3 * 500u);
}

class StrategyTest : public ::testing::TestWithParam<ProgressStrategy> {};

TEST_P(StrategyTest, AllStrategiesProduceIdenticalResults) {
  ClusterStats stats;
  std::map<uint64_t, uint64_t> got = RunDistributedCount(2, 2, GetParam(), &stats);
  std::map<uint64_t, uint64_t> want;
  for (uint32_t pid = 0; pid < 2; ++pid) {
    for (uint64_t epoch = 0; epoch < 3; ++epoch) {
      for (uint64_t i = 0; i < 500; ++i) {
        ++want[(pid * 977 + i) % 37];
      }
    }
  }
  EXPECT_EQ(got, want);
  EXPECT_GT(stats.progress_frames, 0u);
}

INSTANTIATE_TEST_SUITE_P(AllStrategies, StrategyTest,
                         ::testing::Values(ProgressStrategy::kDirect,
                                           ProgressStrategy::kLocalAcc,
                                           ProgressStrategy::kGlobalAcc,
                                           ProgressStrategy::kLocalGlobalAcc),
                         [](const ::testing::TestParamInfo<ProgressStrategy>& info) {
                           switch (info.param) {
                             case ProgressStrategy::kDirect:
                               return "Direct";
                             case ProgressStrategy::kLocalAcc:
                               return "LocalAcc";
                             case ProgressStrategy::kGlobalAcc:
                               return "GlobalAcc";
                             case ProgressStrategy::kLocalGlobalAcc:
                               return "LocalGlobalAcc";
                           }
                           return "Unknown";
                         });

TEST(ClusterTest, AccumulationReducesProtocolTraffic) {
  ClusterStats direct;
  ClusterStats accumulated;
  RunDistributedCount(2, 2, ProgressStrategy::kDirect, &direct);
  RunDistributedCount(2, 2, ProgressStrategy::kLocalGlobalAcc, &accumulated);
  EXPECT_GT(direct.progress_bytes, 0u);
  // Accumulation should never send more than direct broadcast for the same computation.
  EXPECT_LE(accumulated.progress_bytes, direct.progress_bytes);
}

// Distributed loop: the countdown fixed-point from the runtime tests, across processes.
class LoopCountdownVertex final : public Unary2Vertex<uint64_t, uint64_t, uint64_t> {
 public:
  void OnRecv(const Timestamp& t, std::vector<uint64_t>& batch) override {
    for (uint64_t x : batch) {
      if (x > 0) {
        output1().Send(t, x - 1);
      } else {
        output2().Send(t, t.coords.back());
      }
    }
  }
};

TEST(ClusterTest, DistributedLoopReachesFixedPoint) {
  std::mutex mu;
  std::multiset<uint64_t> exits;
  ClusterOptions opts;
  opts.processes = 2;
  opts.workers_per_process = 2;
  Cluster::Run(opts, [&](Controller& ctl) {
    GraphBuilder b(ctl);
    auto [in, handle] = NewInput<uint64_t>(b);
    LoopContext loop(b, 0);
    FeedbackHandle<uint64_t> fb = loop.NewFeedback<uint64_t>();
    Stream<uint64_t> entered = loop.Ingress<uint64_t>(in);
    StageId body = b.NewStage<LoopCountdownVertex>(
        StageOptions{.name = "countdown", .depth = 1},
        [](uint32_t) { return std::make_unique<LoopCountdownVertex>(); });
    // Exchange inside the loop so iterations hop between processes.
    b.Connect<LoopCountdownVertex, uint64_t>(entered, body, 0,
                                             [](const uint64_t& x) { return x; });
    b.Connect<LoopCountdownVertex, uint64_t>(fb.stream(), body, 0,
                                             [](const uint64_t& x) { return x; });
    fb.ConnectLoop(b.OutputOf<uint64_t>(body, 0));
    Stream<uint64_t> done = loop.Egress<uint64_t>(b.OutputOf<uint64_t>(body, 1));
    Subscribe<uint64_t>(done, [&](uint64_t, std::vector<uint64_t>& recs) {
      std::lock_guard<std::mutex> lock(mu);
      exits.insert(recs.begin(), recs.end());
    });
    ctl.Start();
    if (ctl.config().process_id == 0) {
      handle->OnNext({4, 9});
    } else {
      handle->OnNext({6});
    }
    handle->OnCompleted();
    ctl.Join();
  });
  EXPECT_EQ(exits, (std::multiset<uint64_t>{4, 6, 9}));
}

}  // namespace
}  // namespace naiad
