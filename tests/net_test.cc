// Tests for the TCP transport, the distributed progress protocol, and multi-process
// (loopback cluster) execution equivalence.

#include <gtest/gtest.h>

#include <atomic>
#include <map>
#include <mutex>
#include <numeric>
#include <set>
#include <vector>

#include "src/core/io.h"
#include "src/core/loop.h"
#include "src/core/stage.h"
#include "src/net/cluster.h"
#include "src/net/socket.h"
#include "src/net/transport.h"

namespace naiad {
namespace {

TEST(SocketTest, RoundTripBytes) {
  Listener l;
  uint16_t port = l.Open();
  ASSERT_NE(port, 0);
  Socket client = Socket::ConnectLocal(port);
  ASSERT_TRUE(client.valid());
  Socket server = l.Accept();
  ASSERT_TRUE(server.valid());

  std::vector<uint8_t> msg = {1, 2, 3, 4, 5};
  ASSERT_TRUE(client.WriteAll(msg));
  std::vector<uint8_t> got(5);
  ASSERT_TRUE(server.ReadAll(got));
  EXPECT_EQ(got, msg);

  client.ShutdownBoth();
  std::vector<uint8_t> more(1);
  EXPECT_FALSE(server.ReadAll(more));  // EOF surfaces as false, not a crash
}

TEST(TransportTest, MeshDeliversFramesFifoPerPair) {
  constexpr uint32_t kProcs = 3;
  std::vector<std::unique_ptr<TcpTransport>> transports;
  std::vector<uint16_t> ports;
  for (uint32_t p = 0; p < kProcs; ++p) {
    transports.push_back(std::make_unique<TcpTransport>(p, kProcs));
    ports.push_back(transports.back()->Listen());
  }
  std::mutex mu;
  std::map<uint32_t, std::vector<std::pair<uint32_t, uint32_t>>> received;  // dst -> (src, seq)
  std::vector<std::thread> starters;
  for (uint32_t p = 0; p < kProcs; ++p) {
    starters.emplace_back([&, p] {
      TcpTransport::Callbacks cb;
      cb.on_data = [&, p](uint32_t src, std::span<const uint8_t> payload) {
        ByteReader r(payload);
        uint32_t seq = r.ReadU32();
        std::lock_guard<std::mutex> lock(mu);
        received[p].emplace_back(src, seq);
      };
      cb.on_progress = [](uint32_t, std::span<const uint8_t>) {};
      cb.on_progress_acc = [](uint32_t, std::span<const uint8_t>) {};
      cb.on_control = [](uint32_t, std::span<const uint8_t>) {};
      transports[p]->Start(ports, std::move(cb));
    });
  }
  for (auto& t : starters) {
    t.join();
  }

  constexpr uint32_t kPer = 200;
  for (uint32_t src = 0; src < kProcs; ++src) {
    for (uint32_t seq = 0; seq < kPer; ++seq) {
      for (uint32_t dst = 0; dst < kProcs; ++dst) {
        if (dst == src) {
          continue;
        }
        ByteWriter w;
        w.WriteU32(seq);
        transports[src]->Send(dst, FrameType::kData, std::move(w.buffer()));
      }
    }
  }
  // Wait for all deliveries.
  const size_t expect = (kProcs - 1) * kPer;
  for (int spin = 0; spin < 2000; ++spin) {
    std::lock_guard<std::mutex> lock(mu);
    size_t total = 0;
    for (auto& [dst, v] : received) {
      total += v.size();
    }
    if (total == expect * kProcs) {
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  std::lock_guard<std::mutex> lock(mu);
  for (uint32_t dst = 0; dst < kProcs; ++dst) {
    ASSERT_EQ(received[dst].size(), expect);
    std::map<uint32_t, uint32_t> next;  // per-src FIFO check
    for (auto [src, seq] : received[dst]) {
      EXPECT_EQ(seq, next[src]++);
    }
  }
  for (auto& t : transports) {
    t->Shutdown();
  }
}

// Regression: Send()/BroadcastFrame() used to bump frames_sent_/bytes_sent_ *before*
// noticing the link was closed, then silently drop the frame — inflating the wire totals
// that the termination barrier's stability check and the Fig. 6a/6c accounting read.
// Counters must reflect only frames actually handed to a sender thread.
TEST(TransportTest, DroppedFramesOnClosedLinkAreNotCounted) {
  constexpr uint32_t kProcs = 2;
  std::vector<std::unique_ptr<TcpTransport>> transports;
  std::vector<uint16_t> ports;
  for (uint32_t p = 0; p < kProcs; ++p) {
    transports.push_back(std::make_unique<TcpTransport>(p, kProcs));
    ports.push_back(transports.back()->Listen());
  }
  std::vector<std::thread> starters;
  for (uint32_t p = 0; p < kProcs; ++p) {
    starters.emplace_back([&, p] {
      TcpTransport::Callbacks cb;
      cb.on_data = [](uint32_t, std::span<const uint8_t>) {};
      cb.on_progress = [](uint32_t, std::span<const uint8_t>) {};
      cb.on_progress_acc = [](uint32_t, std::span<const uint8_t>) {};
      cb.on_control = [](uint32_t, std::span<const uint8_t>) {};
      transports[p]->Start(ports, std::move(cb));
    });
  }
  for (auto& t : starters) {
    t.join();
  }

  // One real frame establishes the baseline and proves the counted path still counts.
  ByteWriter w;
  w.WriteU32(7);
  transports[0]->Send(1, FrameType::kData, std::move(w.buffer()));
  for (int spin = 0; spin < 2000; ++spin) {
    if (transports[1]->frames_received(FrameType::kData) == 1) {
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  const uint64_t frames = transports[0]->frames_sent(FrameType::kData);
  const uint64_t bytes = transports[0]->bytes_sent(FrameType::kData);
  EXPECT_EQ(frames, 1u);
  EXPECT_EQ(transports[1]->frames_received(FrameType::kData), frames);

  // Shutdown closes every send link; subsequent sends are dropped and must not count.
  transports[0]->Shutdown();
  for (int i = 0; i < 16; ++i) {
    ByteWriter wd;
    wd.WriteU32(9);
    transports[0]->Send(1, FrameType::kData, std::move(wd.buffer()));
  }
  const std::vector<uint8_t> payload = {1, 2, 3};
  transports[0]->BroadcastFrame(FrameType::kProgress, payload, /*include_self=*/false);
  EXPECT_EQ(transports[0]->frames_sent(FrameType::kData), frames);
  EXPECT_EQ(transports[0]->bytes_sent(FrameType::kData), bytes);
  EXPECT_EQ(transports[0]->frames_sent(FrameType::kProgress), 0u);
  EXPECT_EQ(transports[0]->bytes_sent(FrameType::kProgress), 0u);
  transports[1]->Shutdown();
}

// A keyed counting vertex used for the distributed equivalence tests.
class CountPerKeyVertex final : public UnaryVertex<uint64_t, std::pair<uint64_t, uint64_t>> {
 public:
  void OnRecv(const Timestamp& t, std::vector<uint64_t>& batch) override {
    auto [it, fresh] = counts_.try_emplace(t);
    if (fresh) {
      NotifyAt(t);
    }
    for (uint64_t k : batch) {
      ++it->second[k];
    }
  }
  void OnNotify(const Timestamp& t) override {
    for (auto [k, n] : counts_[t]) {
      output().Send(t, {k, n});
    }
    counts_.erase(t);
  }

 private:
  std::map<Timestamp, std::map<uint64_t, uint64_t>> counts_;
};

std::map<uint64_t, uint64_t> RunDistributedCount(uint32_t processes, uint32_t workers,
                                                 ProgressStrategy strategy,
                                                 ClusterStats* stats_out = nullptr) {
  std::mutex mu;
  std::map<uint64_t, uint64_t> result;
  ClusterOptions opts;
  opts.processes = processes;
  opts.workers_per_process = workers;
  opts.strategy = strategy;
  ClusterStats stats = Cluster::Run(opts, [&](Controller& ctl) {
    GraphBuilder b(ctl);
    auto [in, handle] = NewInput<uint64_t>(b);
    StageId count = b.NewStage<CountPerKeyVertex>(
        StageOptions{.name = "count"},
        [](uint32_t) { return std::make_unique<CountPerKeyVertex>(); });
    b.Connect<CountPerKeyVertex, uint64_t>(in, count, 0,
                                           [](const uint64_t& k) { return k; });
    Subscribe<std::pair<uint64_t, uint64_t>>(
        b.OutputOf<std::pair<uint64_t, uint64_t>>(count),
        [&](uint64_t, std::vector<std::pair<uint64_t, uint64_t>>& recs) {
          std::lock_guard<std::mutex> lock(mu);
          for (auto [k, n] : recs) {
            result[k] += n;
          }
        });
    ctl.Start();
    // SPMD: each process contributes its share of the records.
    const uint32_t pid = ctl.config().process_id;
    for (uint64_t epoch = 0; epoch < 3; ++epoch) {
      std::vector<uint64_t> data;
      for (uint64_t i = 0; i < 500; ++i) {
        data.push_back((pid * 977 + i) % 37);
      }
      handle->OnNext(std::move(data));
    }
    handle->OnCompleted();
    ctl.Join();
  });
  if (stats_out != nullptr) {
    *stats_out = stats;
  }
  return result;
}

TEST(ClusterTest, DistributedCountMatchesSingleProcess) {
  std::map<uint64_t, uint64_t> single =
      RunDistributedCount(1, 4, ProgressStrategy::kDirect);
  std::map<uint64_t, uint64_t> multi =
      RunDistributedCount(3, 2, ProgressStrategy::kDirect);
  // Same total multiset of keys, scaled by process count (each process injects its share).
  uint64_t single_total = 0;
  uint64_t multi_total = 0;
  for (auto [k, n] : single) {
    single_total += n;
  }
  for (auto [k, n] : multi) {
    multi_total += n;
  }
  EXPECT_EQ(single_total, 3 * 500u);
  EXPECT_EQ(multi_total, 3 * 3 * 500u);
}

class StrategyTest : public ::testing::TestWithParam<ProgressStrategy> {};

TEST_P(StrategyTest, AllStrategiesProduceIdenticalResults) {
  ClusterStats stats;
  std::map<uint64_t, uint64_t> got = RunDistributedCount(2, 2, GetParam(), &stats);
  std::map<uint64_t, uint64_t> want;
  for (uint32_t pid = 0; pid < 2; ++pid) {
    for (uint64_t epoch = 0; epoch < 3; ++epoch) {
      for (uint64_t i = 0; i < 500; ++i) {
        ++want[(pid * 977 + i) % 37];
      }
    }
  }
  EXPECT_EQ(got, want);
  EXPECT_GT(stats.progress_frames, 0u);
}

INSTANTIATE_TEST_SUITE_P(AllStrategies, StrategyTest,
                         ::testing::Values(ProgressStrategy::kDirect,
                                           ProgressStrategy::kLocalAcc,
                                           ProgressStrategy::kGlobalAcc,
                                           ProgressStrategy::kLocalGlobalAcc),
                         [](const ::testing::TestParamInfo<ProgressStrategy>& info) {
                           switch (info.param) {
                             case ProgressStrategy::kDirect:
                               return "Direct";
                             case ProgressStrategy::kLocalAcc:
                               return "LocalAcc";
                             case ProgressStrategy::kGlobalAcc:
                               return "GlobalAcc";
                             case ProgressStrategy::kLocalGlobalAcc:
                               return "LocalGlobalAcc";
                           }
                           return "Unknown";
                         });

TEST(ClusterTest, AccumulationReducesProtocolTraffic) {
  ClusterStats direct;
  ClusterStats accumulated;
  RunDistributedCount(2, 2, ProgressStrategy::kDirect, &direct);
  RunDistributedCount(2, 2, ProgressStrategy::kLocalGlobalAcc, &accumulated);
  EXPECT_GT(direct.progress_bytes, 0u);
  // Accumulation should never send more than direct broadcast for the same computation.
  EXPECT_LE(accumulated.progress_bytes, direct.progress_bytes);
}

// Distributed loop: the countdown fixed-point from the runtime tests, across processes.
class LoopCountdownVertex final : public Unary2Vertex<uint64_t, uint64_t, uint64_t> {
 public:
  void OnRecv(const Timestamp& t, std::vector<uint64_t>& batch) override {
    for (uint64_t x : batch) {
      if (x > 0) {
        output1().Send(t, x - 1);
      } else {
        output2().Send(t, t.coords.back());
      }
    }
  }
};

TEST(ClusterTest, DistributedLoopReachesFixedPoint) {
  std::mutex mu;
  std::multiset<uint64_t> exits;
  ClusterOptions opts;
  opts.processes = 2;
  opts.workers_per_process = 2;
  Cluster::Run(opts, [&](Controller& ctl) {
    GraphBuilder b(ctl);
    auto [in, handle] = NewInput<uint64_t>(b);
    LoopContext loop(b, 0);
    FeedbackHandle<uint64_t> fb = loop.NewFeedback<uint64_t>();
    Stream<uint64_t> entered = loop.Ingress<uint64_t>(in);
    StageId body = b.NewStage<LoopCountdownVertex>(
        StageOptions{.name = "countdown", .depth = 1},
        [](uint32_t) { return std::make_unique<LoopCountdownVertex>(); });
    // Exchange inside the loop so iterations hop between processes.
    b.Connect<LoopCountdownVertex, uint64_t>(entered, body, 0,
                                             [](const uint64_t& x) { return x; });
    b.Connect<LoopCountdownVertex, uint64_t>(fb.stream(), body, 0,
                                             [](const uint64_t& x) { return x; });
    fb.ConnectLoop(b.OutputOf<uint64_t>(body, 0));
    Stream<uint64_t> done = loop.Egress<uint64_t>(b.OutputOf<uint64_t>(body, 1));
    Subscribe<uint64_t>(done, [&](uint64_t, std::vector<uint64_t>& recs) {
      std::lock_guard<std::mutex> lock(mu);
      exits.insert(recs.begin(), recs.end());
    });
    ctl.Start();
    if (ctl.config().process_id == 0) {
      handle->OnNext({4, 9});
    } else {
      handle->OnNext({6});
    }
    handle->OnCompleted();
    ctl.Join();
  });
  EXPECT_EQ(exits, (std::multiset<uint64_t>{4, 6, 9}));
}

}  // namespace
}  // namespace naiad
