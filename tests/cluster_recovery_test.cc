// Cluster-wide checkpointing and single-process kill-and-recover (§3.4).
//
// A 3-process forked cluster runs a partitioned word count, checkpointing at a global
// quiet point every few epochs. The driver SIGKILLs one process at a seed-chosen point —
// mid-feed or inside the checkpoint barrier itself — and the survivors plus a replacement
// restore from the last manifest-complete checkpoint and replay. For every seed the final
// epoch's checkpoint images must be byte-identical to a clean run's: same counts, same
// open-input positions, nothing lost, nothing doubled.
//
// Reproduction: `cluster_recovery_test --seed=N` re-runs the sweep body for seed N alone.

#include <gtest/gtest.h>

#include <sys/stat.h>
#include <unistd.h>

#include <cstdio>
#include <cstring>
#include <optional>
#include <string>
#include <vector>

#include "src/base/hash.h"
#include "src/base/rng.h"
#include "src/core/io.h"
#include "src/ft/cluster_recovery.h"
#include "src/ft/recovery.h"

namespace naiad {
namespace {

std::optional<uint64_t> g_seed_override;

constexpr uint64_t kCorpusSeed = 0xC0FFEEULL;
constexpr uint64_t kWordsPerEpoch = 64;
constexpr uint64_t kVocabulary = 97;

// Counts words partitioned by value. State is a sorted map so checkpoint images are a
// deterministic function of the counts alone.
class CountVertex final : public SinkVertex<uint64_t> {
 public:
  void OnRecv(const Timestamp&, std::vector<uint64_t>& batch) override {
    for (uint64_t w : batch) {
      ++counts_[w];
    }
  }
  void Checkpoint(ByteWriter& w) const override {
    w.WriteU32(static_cast<uint32_t>(counts_.size()));
    for (const auto& [word, count] : counts_) {
      w.WriteU64(word);
      w.WriteU64(count);
    }
  }
  bool Restore(ByteReader& r) override {
    counts_.clear();
    const uint32_t n = r.ReadU32();
    for (uint32_t i = 0; i < n; ++i) {
      const uint64_t word = r.ReadU64();
      counts_[word] = r.ReadU64();
    }
    return r.ok();
  }

 private:
  std::map<uint64_t, uint64_t> counts_;
};

class WordCountApp final : public ClusterApp {
 public:
  explicit WordCountApp(Controller& ctl) : ctl_(&ctl) {
    GraphBuilder b(ctl);
    auto [in, h] = NewInput<uint64_t>(b);
    handle_ = h;
    input_stage_ = in.stage;
    StageId sid = b.NewStage<CountVertex>(
        StageOptions{.name = "count"},
        [](uint32_t) { return std::make_unique<CountVertex>(); });
    b.Connect<CountVertex, uint64_t>(in, sid, 0, [](const uint64_t& w) { return w; });
    probe_ = Probe(&ctl, sid);
  }

  void FeedEpoch(uint64_t epoch) override {
    NAIAD_CHECK(handle_->next_epoch() == epoch);  // replay must resume exactly in place
    Rng rng(HashCombine(HashCombine(kCorpusSeed, epoch), ctl_->config().process_id));
    std::vector<uint64_t> words(kWordsPerEpoch);
    for (uint64_t& w : words) {
      w = rng.Below(kVocabulary);
    }
    handle_->OnNext(std::move(words));
  }
  bool EpochPassed(uint64_t epoch) override { return probe_.Passed(epoch); }
  void RestoreInputs(const std::vector<InputEpochs>& inputs) override {
    for (const InputEpochs& in : inputs) {
      if (in.stage == input_stage_) {
        handle_->RestoreEpoch(in.next_epoch, in.closed);
      }
    }
  }
  void CloseInputs() override { handle_->OnCompleted(); }

 private:
  Controller* ctl_;
  std::shared_ptr<InputHandle<uint64_t>> handle_;
  StageId input_stage_ = 0;
  Probe probe_;
};

ClusterRunConfig BaseConfig(const std::string& dir) {
  ClusterRunConfig cfg;
  cfg.processes = 3;
  cfg.workers_per_process = 2;
  // NAIAD_PROGRESS_SCOPING=scoped runs the whole sweep (clean reference included) under
  // scoped progress tracking; the member processes inherit the env through fork.
  cfg.scoping = ProgressScopingFromEnv();
  cfg.total_epochs = 4;
  cfg.checkpoint_every = 2;  // checkpoints after epochs 1 and 3 (3 also = final)
  cfg.ckpt_dir = dir;
  cfg.obs.metrics = true;  // the acceptance bar: recovery correct with observability on
  cfg.obs.tracing = true;
  // NAIAD_RECOVERY_MODE=selective runs the whole sweep — clean reference included — with
  // outbound logging on and the Falkirk Wheel survivor-preserving restart; the final
  // images must still be byte-identical to the coordinated runs' (the log substrate is a
  // pure side channel of the computation).
  cfg.recovery_mode = RecoveryModeFromEnv();
  return cfg;
}

std::string FreshDir(const std::string& tag) {
  // Pid-scoped: ctest runs each test in its own gtest process, and under -j two of them
  // would otherwise rm -rf each other's live checkpoint directories (CleanReference()
  // is recomputed per process).
  const std::string dir = ::testing::TempDir() + "/naiad_cluster_" +
                          std::to_string(::getpid()) + "_" + tag;
  std::string cmd = "rm -rf '" + dir + "'";
  NAIAD_CHECK(::system(cmd.c_str()) == 0);
  NAIAD_CHECK(::mkdir(dir.c_str(), 0755) == 0);
  return dir;
}

ClusterAppFactory Factory() {
  return [](Controller& ctl) { return std::make_unique<WordCountApp>(ctl); };
}

// The final epoch's images, one blob per process, CRC-verified.
std::vector<std::vector<uint8_t>> FinalImages(const ClusterRunConfig& cfg) {
  std::vector<std::vector<uint8_t>> images;
  for (uint32_t p = 0; p < cfg.processes; ++p) {
    CheckpointReadResult res = ReadCheckpointFileEx(
        ClusterImagePath(cfg.ckpt_dir, p, cfg.total_epochs - 1));
    EXPECT_EQ(static_cast<int>(res.status), static_cast<int>(CheckpointReadStatus::kOk))
        << "final image missing for process " << p;
    images.push_back(std::move(res.image));
  }
  return images;
}

// Clean-run reference images, computed once per binary.
const std::vector<std::vector<uint8_t>>& CleanReference() {
  static const std::vector<std::vector<uint8_t>>* ref = [] {
    const std::string dir = FreshDir("clean_ref");
    ClusterKillRecoverDriver::Options opts;
    opts.cfg = BaseConfig(dir);
    opts.inject_kill = false;
    const ClusterKillOutcome out = ClusterKillRecoverDriver::Run(opts, Factory());
    NAIAD_CHECK(out.launched && out.ok) << "clean reference run failed";
    NAIAD_CHECK(!out.killed);
    NAIAD_CHECK(out.stats.recoveries == 0);
    NAIAD_CHECK(out.stats.checkpoint_epochs == 2);  // epochs 1 and 3
    NAIAD_CHECK(ReadClusterManifest(dir, opts.cfg.processes) ==
                opts.cfg.total_epochs - 1);
    return new std::vector<std::vector<uint8_t>>(FinalImages(opts.cfg));
  }();
  return *ref;
}

// Mirrors the driver's seed derivation so tests can select barrier-kill seeds.
bool SeedKillsInBarrier(uint64_t seed) {
  Rng kr(HashCombine(seed, HashString("CLUSTER-KILL")));
  return (kr.Next() & 1) != 0;
}

ClusterKillOutcome SweepSeed(uint64_t seed) {
  const std::string dir = FreshDir("seed_" + std::to_string(seed));
  ClusterKillRecoverDriver::Options opts;
  opts.cfg = BaseConfig(dir);
  opts.seed = seed;
  opts.inject_kill = true;
  const ClusterKillOutcome out = ClusterKillRecoverDriver::Run(opts, Factory());
  EXPECT_TRUE(out.launched);
  EXPECT_TRUE(out.ok) << "seed " << seed << ": cluster failed to recover; reproduce with "
                      << "--seed=" << seed;
  EXPECT_TRUE(out.killed) << "seed " << seed;
  EXPECT_EQ(SeedKillsInBarrier(seed), out.kill_in_barrier);
  if (out.ok) {
    // The core property: byte-identical final images versus the clean run.
    const auto& clean = CleanReference();
    const auto killed_images = FinalImages(opts.cfg);
    for (uint32_t p = 0; p < opts.cfg.processes; ++p) {
      EXPECT_EQ(killed_images[p], clean[p])
          << "seed " << seed << ": process " << p
          << " final image diverged; reproduce with --seed=" << seed;
    }
    EXPECT_EQ(ReadClusterManifest(dir, opts.cfg.processes), opts.cfg.total_epochs - 1)
        << "seed " << seed;
    EXPECT_GE(out.stats.checkpoint_epochs, 1u) << "seed " << seed;
  }
  return out;
}

// 5 shards x 10 seeds = 50-seed sweep, parallelized by ctest. With --seed=N, shard 0
// runs exactly seed N and the rest are no-ops.
class ClusterKillSweep : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ClusterKillSweep, FinalImagesMatchCleanRun) {
  const uint64_t shard = GetParam();
  if (g_seed_override.has_value()) {
    if (shard == 0) {
      SweepSeed(*g_seed_override);
    }
    return;
  }
  uint64_t total_recoveries = 0;
  for (uint64_t i = 0; i < 10; ++i) {
    const uint64_t seed = shard * 10 + i;
    const ClusterKillOutcome out = SweepSeed(seed);
    if (::testing::Test::HasFatalFailure()) {
      return;
    }
    total_recoveries += out.stats.recoveries;
  }
  // Almost every kill forces an actual restart (the rare exception: the kill races the
  // termination verdict and every survivor had already finished). A whole shard without
  // one would mean the kill schedule is not exercising recovery at all.
  EXPECT_GE(total_recoveries, 1u) << "shard " << shard;
}

INSTANTIATE_TEST_SUITE_P(Seeds, ClusterKillSweep,
                         ::testing::Values(0u, 1u, 2u, 3u, 4u),
                         [](const ::testing::TestParamInfo<uint64_t>& info) {
                           return "Shard" + std::to_string(info.param);
                         });

TEST(ClusterRecoveryTest, CleanRunCommitsManifestAndImages) {
  const auto& clean = CleanReference();
  ASSERT_EQ(clean.size(), 3u);
  for (const auto& image : clean) {
    EXPECT_FALSE(image.empty());
  }
}

TEST(ClusterRecoveryTest, BarrierKillNeverAdoptsTornCheckpoint) {
  // Pick the first seeds whose schedule kills inside the checkpoint barrier: the victim
  // dies between "checkpointing" and "committed", so some processes may have written
  // epoch-E images while the manifest still names an older epoch. Recovery must adopt
  // only the manifest epoch; the byte-identical check (in SweepSeed) then proves the torn
  // epoch never leaked into the results.
  int exercised = 0;
  for (uint64_t seed = 1000; seed < 1064 && exercised < 2; ++seed) {
    if (!SeedKillsInBarrier(seed)) {
      continue;
    }
    ++exercised;
    const ClusterKillOutcome out = SweepSeed(seed);
    EXPECT_TRUE(out.kill_in_barrier) << "seed " << seed;
    if (out.ok && out.restore_epoch != kNoManifestEpoch) {
      // Whatever epoch was adopted had a complete manifest behind it by construction;
      // it can never exceed the last epoch whose commit could have finished.
      EXPECT_LT(out.restore_epoch, BaseConfig("").total_epochs);
    }
  }
  EXPECT_EQ(exercised, 2);
}

// Forces selective mode regardless of the environment and runs one mid-feed kill seed.
ClusterKillOutcome RunSelectiveSeed(uint64_t seed) {
  const std::string dir = FreshDir("sel_seed_" + std::to_string(seed));
  ClusterKillRecoverDriver::Options opts;
  opts.cfg = BaseConfig(dir);
  opts.cfg.recovery_mode = RecoveryMode::kSelective;
  opts.seed = seed;
  opts.inject_kill = true;
  const ClusterKillOutcome out = ClusterKillRecoverDriver::Run(opts, Factory());
  EXPECT_TRUE(out.launched);
  EXPECT_TRUE(out.ok) << "selective seed " << seed;
  EXPECT_TRUE(out.killed) << "selective seed " << seed;
  if (out.ok) {
    // Whether the restart ran selectively or fell back, the results must match the
    // clean (and therefore also the coordinated) reference bit-for-bit.
    const auto& clean = CleanReference();
    const auto killed_images = FinalImages(opts.cfg);
    for (uint32_t p = 0; p < opts.cfg.processes; ++p) {
      EXPECT_EQ(killed_images[p], clean[p])
          << "selective seed " << seed << ": process " << p << " final image diverged";
    }
  }
  return out;
}

TEST(ClusterRecoveryTest, SelectiveRecoveryPreservesSurvivors) {
  // A mid-feed kill with every selective precondition in reach: the survivors must stall,
  // keep their state, and rebuild selectively (mode 1 for both survivors plus the
  // replacement), deduping the replacement's regenerated frames. Whether a given kill
  // actually goes selective is timing-dependent (a survivor that raced into a checkpoint
  // commit before detecting the death legitimately demotes the restart), so this tries a
  // handful of mid-feed seeds and requires that at least one rebuilt selectively —
  // byte-identical images are enforced on every attempt either way.
  bool selective_seen = false;
  uint64_t seed = 3000;
  for (int attempts = 0; attempts < 5 && !selective_seen; ++attempts, ++seed) {
    while (SeedKillsInBarrier(seed)) {
      ++seed;
    }
    const ClusterKillOutcome out = RunSelectiveSeed(seed);
    if (out.ok && out.stats.recoveries >= 1 && out.stats.selective_recoveries >= 1) {
      selective_seen = true;
      EXPECT_GT(out.stats.recovery_downtime_seconds, 0.0) << "seed " << seed;
      EXPECT_GT(out.stats.survivor_stall_seconds, 0.0) << "seed " << seed;
    }
  }
  EXPECT_TRUE(selective_seen)
      << "no mid-feed kill rebuilt selectively across 5 seeds; the preconditions are "
         "failing systematically";
}

TEST(ClusterRecoveryTest, SelectiveFallbackInjectRecoversCoordinated) {
  // The forced-fallback hook: every survivor refuses the selective path, the supervisor
  // must demote the restart to coordinated, and the run still converges byte-identically.
  ASSERT_EQ(::setenv("NAIAD_SELECTIVE_FALLBACK_INJECT", "1", 1), 0);
  uint64_t seed = 4000;
  while (SeedKillsInBarrier(seed)) {
    ++seed;
  }
  const ClusterKillOutcome out = RunSelectiveSeed(seed);
  ASSERT_EQ(::unsetenv("NAIAD_SELECTIVE_FALLBACK_INJECT"), 0);
  if (out.ok && out.stats.recoveries >= 1) {
    EXPECT_EQ(out.stats.selective_recoveries, 0u) << "seed " << seed;
  }
}

TEST(ClusterRecoveryTest, RecoveryCountersSurfaceInStats) {
  // A mid-feed kill at a low seed: recovery must be reported through ClusterStats.
  uint64_t seed = 2000;
  while (SeedKillsInBarrier(seed)) {
    ++seed;
  }
  const ClusterKillOutcome out = SweepSeed(seed);
  if (out.ok) {
    EXPECT_GE(out.stats.recoveries, 1u);
    EXPECT_GE(out.stats.checkpoint_epochs, 1u);
    EXPECT_GT(out.stats.elapsed_seconds, 0.0);
  }
}

}  // namespace
}  // namespace naiad

int main(int argc, char** argv) {
  ::testing::InitGoogleTest(&argc, argv);  // strips gtest flags, leaves ours
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--seed=", 7) == 0) {
      naiad::g_seed_override = std::strtoull(argv[i] + 7, nullptr, 0);
      std::fprintf(stderr, "cluster_recovery_test: replaying seed %llu only\n",
                   static_cast<unsigned long long>(*naiad::g_seed_override));
    }
  }
  return RUN_ALL_TESTS();
}
