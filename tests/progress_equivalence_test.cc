// Progress-strategy × scoping equivalence (§3.3): the four broadcast strategies are
// different encodings of the same protocol, and flat vs scoped tracking are different
// organizations of the same occurrence counts — so all 8 combinations, on any graph
// including randomized loop graphs with a loop-within-a-loop, must drive identical
// computations: same per-vertex OnNotify timestamp sequences, same outputs.
//
// Each seed builds a random pipeline (a chain of notify-recording stages, a loop whose
// body decrements a per-record countdown, more recorders inside the loop, optionally a
// nested inner loop decrementing a second countdown) and runs it on a 2-process cluster
// under the full ProgressStrategy × ProgressScoping matrix, driving epochs strictly
// sequentially (probe barrier between epochs) so the notification order at every vertex
// is fully determined by the protocol rather than input-arrival races.

#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "src/base/rng.h"
#include "src/core/io.h"
#include "src/lib/key_hash.h"
#include "src/lib/operators.h"
#include "src/net/cluster.h"

namespace naiad {
namespace {

using Rec = std::pair<uint64_t, uint64_t>;  // (id, remaining loop iterations)

// Per-vertex OnNotify logs, keyed by "<stage tag>#<vertex index>". Shared across the
// cluster's process threads; each physical vertex lives in exactly one process.
struct NotifyLog {
  std::mutex mu;
  std::map<std::string, std::vector<Timestamp>> seq;

  void Record(const std::string& tag, uint32_t index, const Timestamp& t) {
    std::lock_guard<std::mutex> lock(mu);
    seq[tag + "#" + std::to_string(index)].push_back(t);
  }
};

// Forwards records unchanged but only on completeness, recording every OnNotify.
class NotifyRecorderVertex final : public UnaryVertex<Rec, Rec> {
 public:
  NotifyRecorderVertex(std::string tag, NotifyLog* log)
      : tag_(std::move(tag)), log_(log) {}

  void OnRecv(const Timestamp& t, std::vector<Rec>& batch) override {
    auto [it, fresh] = pending_.try_emplace(t);
    if (fresh) {
      this->NotifyAt(t);
    }
    for (Rec& r : batch) {
      it->second.push_back(std::move(r));
    }
  }

  void OnNotify(const Timestamp& t) override {
    log_->Record(tag_, this->address().index, t);
    auto it = pending_.find(t);
    if (it != pending_.end()) {
      this->output().SendBatch(t, std::move(it->second));
      pending_.erase(it);
    }
  }

 private:
  std::string tag_;
  NotifyLog* log_;
  std::map<Timestamp, std::vector<Rec>> pending_;
};

Stream<Rec> RecordNotifies(const Stream<Rec>& s, const std::string& tag, NotifyLog* log) {
  GraphBuilder& b = *s.builder;
  StageId sid = b.NewStage<NotifyRecorderVertex>(
      StageOptions{.name = "recorder", .depth = s.depth}, [tag, log](uint32_t) {
        return std::make_unique<NotifyRecorderVertex>(tag, log);
      });
  // Exchange by id so records cross process boundaries between recorders.
  b.Connect<NotifyRecorderVertex, Rec>(s, sid, 0,
                                       [](const Rec& r) { return KeyHash(r.first); });
  return b.OutputOf<Rec>(sid);
}

// Random pipeline shape; identical on every process (SPMD) and every strategy.
struct Shape {
  uint32_t pre_chain;
  uint32_t loop_chain;
  bool nested;  // loop-within-a-loop: the outer body decrements inside an inner Iterate
  bool post_recorder;
  uint64_t epochs;
  uint64_t recs_per_epoch;
  uint64_t max_remaining;
};

Shape ShapeFromSeed(uint64_t seed) {
  Rng rng(HashCombine(seed, 0x53484150ULL));  // "SHAP"
  Shape s;
  s.pre_chain = 1 + static_cast<uint32_t>(rng.Below(2));
  s.loop_chain = 1 + static_cast<uint32_t>(rng.Below(2));
  s.nested = rng.Below(2) == 0;
  s.post_recorder = rng.Below(2) == 0;
  s.epochs = 2 + rng.Below(2);
  s.recs_per_epoch = 6 + rng.Below(11);
  s.max_remaining = 1 + rng.Below(4);
  return s;
}

std::vector<Rec> EpochRecords(const Shape& shape, uint64_t epoch, uint32_t process,
                              uint32_t processes) {
  std::vector<Rec> recs;
  for (uint64_t i = process; i < shape.recs_per_epoch; i += processes) {
    const uint64_t id = epoch * 1000 + i;
    // remaining >= 2: the loop body egresses the post-decrement survivors, so a record
    // needs at least one surviving circulation to be observable at the output.
    recs.emplace_back(id, 2 + Mix64(id) % shape.max_remaining);
  }
  return recs;
}

struct RunResult {
  std::map<std::string, std::vector<Timestamp>> notifies;
  std::map<uint64_t, uint64_t> output;  // id -> times seen at egress
};

RunResult RunShape(const Shape& shape, ProgressStrategy strategy,
                   ProgressScoping scoping) {
  RunResult result;
  NotifyLog log;
  std::mutex out_mu;
  Cluster::Run(
      ClusterOptions{.processes = 2,
                     .workers_per_process = 1,
                     .strategy = strategy,
                     .scoping = scoping},
      [&](Controller& ctl) {
        GraphBuilder b(ctl);
        auto [in, handle] = NewInput<Rec>(b);
        Stream<Rec> cur = in;
        for (uint32_t i = 0; i < shape.pre_chain; ++i) {
          cur = RecordNotifies(cur, "pre" + std::to_string(i), &log);
        }
        const auto part = [](const Rec& r) { return KeyHash(r.first); };
        cur = Iterate<Rec>(
            cur, /*max_iters=*/16, part,
            [&](LoopContext&, const Stream<Rec>& merged) {
              Stream<Rec> body = merged;
              for (uint32_t i = 0; i < shape.loop_chain; ++i) {
                body = RecordNotifies(body, "loop" + std::to_string(i), &log);
              }
              if (shape.nested) {
                // Loop-within-a-loop: the decrement happens inside an inner Iterate
                // whose egress re-emits each circulation's survivors, so inner-loop
                // pointstamps (depth 2) are live while the outer loop still circulates.
                return Iterate<Rec>(
                    body, /*max_iters=*/4, part,
                    [&](LoopContext&, const Stream<Rec>& inner_merged) {
                      Stream<Rec> ib = RecordNotifies(inner_merged, "inner", &log);
                      Stream<Rec> dec = Select(
                          ib, [](const Rec& r) { return Rec{r.first, r.second - 1}; });
                      return Where(dec, [](const Rec& r) { return r.second > 0; });
                    });
              }
              Stream<Rec> dec = Select(
                  body, [](const Rec& r) { return Rec{r.first, r.second - 1}; });
              return Where(dec, [](const Rec& r) { return r.second > 0; });
            });
        if (shape.post_recorder) {
          cur = RecordNotifies(cur, "post", &log);
        }
        Probe probe = ForEach<Rec>(
            cur,
            [&](const Timestamp&, std::vector<Rec>& recs) {
              std::lock_guard<std::mutex> lock(out_mu);
              for (const Rec& r : recs) {
                ++result.output[r.first];
              }
            },
            [](const Rec& r) { return KeyHash(r.first); });
        ctl.Start();
        for (uint64_t e = 0; e < shape.epochs; ++e) {
          handle->OnNext(EpochRecords(shape, e, ctl.config().process_id, 2));
          // Full barrier per epoch: only one epoch is in flight at any vertex, so the
          // per-vertex notification order is a protocol invariant, not a race outcome.
          probe.WaitPassed(e);
        }
        handle->OnCompleted();
        ctl.Join();
      });
  result.notifies = std::move(log.seq);
  return result;
}

std::string Render(const std::vector<Timestamp>& seq) {
  std::string s;
  for (const Timestamp& t : seq) {
    s += t.ToString();
  }
  return s;
}

class ProgressEquivalence : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ProgressEquivalence, FullStrategyScopingMatrixProducesIdenticalNotifyOrders) {
  const Shape shape = ShapeFromSeed(GetParam());
  const ProgressStrategy strategies[] = {
      ProgressStrategy::kDirect, ProgressStrategy::kLocalAcc,
      ProgressStrategy::kGlobalAcc, ProgressStrategy::kLocalGlobalAcc};
  const ProgressScoping scopings[] = {ProgressScoping::kFlat, ProgressScoping::kScoped};
  RunResult ref = RunShape(shape, strategies[0], scopings[0]);
  ASSERT_FALSE(ref.notifies.empty());
  ASSERT_FALSE(ref.output.empty());
  for (size_t i = 0; i < 4; ++i) {
    for (size_t j = 0; j < 2; ++j) {
      if (i == 0 && j == 0) {
        continue;  // the reference itself
      }
      const std::string label = std::string("strategy ") + ToString(strategies[i]) +
                                " scoping " + ToString(scopings[j]);
      RunResult got = RunShape(shape, strategies[i], scopings[j]);
      EXPECT_EQ(got.output, ref.output) << label;
      ASSERT_EQ(got.notifies.size(), ref.notifies.size()) << label;
      for (const auto& [vertex, want] : ref.notifies) {
        auto it = got.notifies.find(vertex);
        ASSERT_NE(it, got.notifies.end()) << label << " missing " << vertex;
        EXPECT_EQ(it->second, want) << label << " vertex " << vertex << "\n  got  "
                                    << Render(it->second) << "\n  want " << Render(want);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ProgressEquivalence,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u, 6u),
                         [](const ::testing::TestParamInfo<uint64_t>& info) {
                           return "Seed" + std::to_string(info.param);
                         });

}  // namespace
}  // namespace naiad
