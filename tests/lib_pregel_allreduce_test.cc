// Tests for the Pregel and AllReduce libraries and the logistic-regression pipeline.

#include <gtest/gtest.h>

#include <cmath>
#include <map>
#include <mutex>
#include <vector>

#include "src/algo/logreg.h"
#include "src/core/io.h"
#include "src/gen/graphs.h"
#include "src/lib/allreduce.h"
#include "src/lib/pregel.h"

namespace naiad {
namespace {

std::map<uint64_t, double> RefPageRank(const std::vector<Edge>& edges, uint64_t iters) {
  std::map<uint64_t, double> rank;
  std::map<uint64_t, uint64_t> deg;
  for (const Edge& e : edges) {
    rank.try_emplace(e.first, 1.0);
    rank.try_emplace(e.second, 1.0);
    ++deg[e.first];
  }
  for (uint64_t i = 1; i < iters; ++i) {
    std::map<uint64_t, double> next;
    for (const auto& [n, r] : rank) {
      next[n] = 0.15;
    }
    for (const Edge& e : edges) {
      next[e.second] += 0.85 * rank[e.first] / static_cast<double>(deg[e.first]);
    }
    rank = std::move(next);
  }
  return rank;
}

TEST(PregelTest, PageRankMatchesReference) {
  std::vector<Edge> edges = RandomGraph(30, 60, 77);
  constexpr uint64_t kSupersteps = 6;
  std::mutex mu;
  std::map<uint64_t, double> final_state;  // captured at the last superstep

  Controller ctl(Config{.workers_per_process = 3});
  GraphBuilder b(ctl);
  auto [in, handle] = NewInput<Edge>(b);
  auto result = Pregel<double, double>(
      in, 1.0, kSupersteps,
      [&](PregelNodeContext<double, double>& ctx, const std::vector<double>& inbox) {
        if (ctx.superstep() > 0) {
          double sum = 0;
          for (double m : inbox) {
            sum += m;
          }
          ctx.state() = 0.15 + 0.85 * sum;
        }
        if (ctx.superstep() + 1 == kSupersteps) {
          std::lock_guard<std::mutex> lock(mu);
          final_state[ctx.node_id()] = ctx.state();
        } else if (!ctx.out_edges().empty()) {
          ctx.SendToAllNeighbors(ctx.state() / static_cast<double>(ctx.out_edges().size()));
        }
      });
  Subscribe<std::pair<uint64_t, double>>(
      result, [](uint64_t, std::vector<std::pair<uint64_t, double>>&) {});
  ctl.Start();
  handle->OnNext(edges);
  handle->OnCompleted();
  ctl.Join();

  std::map<uint64_t, double> want = RefPageRank(edges, kSupersteps);
  std::lock_guard<std::mutex> lock(mu);
  // Pure sinks receive messages, so every node runs the last superstep.
  ASSERT_EQ(final_state.size(), want.size());
  for (const auto& [n, r] : want) {
    EXPECT_NEAR(final_state[n], r, 1e-9) << "node " << n;
  }
}

// Max-propagation with vote-to-halt: converges and stops well before the superstep bound.
TEST(PregelTest, MaxPropagationHaltsEarly) {
  std::vector<Edge> edges = Symmetrize(RandomGraph(40, 60, 5));
  std::mutex mu;
  std::map<uint64_t, uint64_t> final_state;
  std::atomic<uint64_t> max_superstep_seen{0};

  Controller ctl(Config{.workers_per_process = 2});
  GraphBuilder b(ctl);
  auto [in, handle] = NewInput<Edge>(b);
  auto result = Pregel<uint64_t, uint64_t>(
      in, 0, /*max_supersteps=*/1000,
      [&](PregelNodeContext<uint64_t, uint64_t>& ctx, const std::vector<uint64_t>& inbox) {
        max_superstep_seen.store(
            std::max(max_superstep_seen.load(), ctx.superstep()));
        uint64_t best = ctx.superstep() == 0 ? ctx.node_id() : ctx.state();
        for (uint64_t m : inbox) {
          best = std::max(best, m);
        }
        if (best != ctx.state() || ctx.superstep() == 0) {
          ctx.state() = best;
          ctx.SendToAllNeighbors(best);
        }
        ctx.VoteToHalt();
      });
  Subscribe<std::pair<uint64_t, uint64_t>>(
      result, [&](uint64_t, std::vector<std::pair<uint64_t, uint64_t>>& recs) {
        std::lock_guard<std::mutex> lock(mu);
        for (auto& [n, s] : recs) {
          final_state[n] = std::max(final_state[n], s);
        }
      });
  ctl.Start();
  handle->OnNext(edges);
  handle->OnCompleted();
  ctl.Join();

  // Reference: max node id per weakly connected component.
  std::map<uint64_t, uint64_t> parent;
  std::function<uint64_t(uint64_t)> find = [&](uint64_t x) {
    parent.try_emplace(x, x);
    while (parent[x] != x) {
      parent[x] = parent[parent[x]];
      x = parent[x];
    }
    return x;
  };
  for (const Edge& e : edges) {
    parent[find(e.first)] = find(e.second);
  }
  std::map<uint64_t, uint64_t> comp_max;
  for (const auto& [n, p] : parent) {
    comp_max[find(n)] = std::max(comp_max[find(n)], n);
  }
  std::lock_guard<std::mutex> lock(mu);
  for (const auto& [n, p] : parent) {
    EXPECT_EQ(final_state[n], comp_max[find(n)]) << "node " << n;
  }
  EXPECT_LT(max_superstep_seen.load(), 100u);  // halted long before the bound
}

class AllReduceTest : public ::testing::TestWithParam<bool> {};  // param: use tree

TEST_P(AllReduceTest, EveryParticipantReceivesTheGlobalSum) {
  const bool tree = GetParam();
  constexpr uint32_t kParticipants = 5;
  constexpr size_t kDims = 12;
  std::mutex mu;
  std::map<uint32_t, std::vector<double>> received;  // target -> assembled vector

  Controller ctl(Config{.workers_per_process = 3});
  GraphBuilder b(ctl);
  auto [in, handle] = NewInput<VecPiece>(b);
  Stream<VecPiece> reduced =
      tree ? TreeAllReduce(in, kParticipants) : ChunkedAllReduce(in, kParticipants);
  Subscribe<VecPiece>(reduced, [&](uint64_t, std::vector<VecPiece>& recs) {
    std::lock_guard<std::mutex> lock(mu);
    for (VecPiece& p : recs) {
      auto& v = received[p.target];
      if (tree) {
        v = p.values;  // tree pieces carry the whole vector
      } else {
        const size_t per = (kDims + kParticipants - 1) / kParticipants;
        if (v.size() < kDims) {
          v.resize(kDims, 0.0);
        }
        for (size_t i = 0; i < p.values.size(); ++i) {
          v[p.slot * per + i] = p.values[i];
        }
      }
    }
  });
  ctl.Start();
  std::vector<VecPiece> pieces;
  std::vector<double> want(kDims, 0.0);
  for (uint32_t part = 0; part < kParticipants; ++part) {
    std::vector<double> local(kDims);
    for (size_t d = 0; d < kDims; ++d) {
      local[d] = static_cast<double>(part * 100 + d);
      want[d] += local[d];
    }
    if (tree) {
      pieces.push_back(VecPiece{part, 0, local});
    } else {
      const size_t per = (kDims + kParticipants - 1) / kParticipants;
      for (uint32_t c = 0; c * per < kDims; ++c) {
        const size_t lo = c * per;
        const size_t hi = std::min(kDims, lo + per);
        pieces.push_back(
            VecPiece{c, 0, std::vector<double>(local.begin() + lo, local.begin() + hi)});
      }
    }
  }
  handle->OnNext(std::move(pieces));
  handle->OnCompleted();
  ctl.Join();

  std::lock_guard<std::mutex> lock(mu);
  ASSERT_EQ(received.size(), kParticipants);
  for (uint32_t part = 0; part < kParticipants; ++part) {
    ASSERT_EQ(received[part].size(), kDims) << "participant " << part;
    for (size_t d = 0; d < kDims; ++d) {
      EXPECT_NEAR(received[part][d], want[d], 1e-9) << "participant " << part << " dim " << d;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Variants, AllReduceTest, ::testing::Values(false, true),
                         [](const ::testing::TestParamInfo<bool>& info) {
                           return info.param ? "Tree" : "Chunked";
                         });

class LogRegTest : public ::testing::TestWithParam<AllReduceKind> {};

TEST_P(LogRegTest, GradientNormDecreases) {
  constexpr uint32_t kParticipants = 4;
  constexpr uint32_t kDims = 8;
  std::mutex mu;
  std::map<uint64_t, double> grad_norm;  // epoch -> ||global gradient||

  Controller ctl(Config{.workers_per_process = 4});
  GraphBuilder b(ctl);
  auto [go, handle] = NewInput<uint64_t>(b);
  Stream<VecPiece> reduced =
      BuildLogReg(go, kParticipants, kDims, /*examples=*/200, GetParam(), /*lr=*/0.05);
  Probe probe = ForEach<VecPiece>(reduced, [&](const Timestamp& t, std::vector<VecPiece>& recs) {
    std::lock_guard<std::mutex> lock(mu);
    double& norm = grad_norm[t.epoch];
    for (const VecPiece& p : recs) {
      if (p.target != 0) {
        continue;  // count each piece once, not once per participant
      }
      for (double v : p.values) {
        norm += v * v;
      }
    }
  });
  ctl.Start();
  constexpr uint64_t kIters = 12;
  for (uint64_t e = 0; e < kIters; ++e) {
    std::vector<uint64_t> tokens(kParticipants, e);
    handle->OnNext(std::move(tokens));
    probe.WaitPassed(e);  // BSP driver: next iteration starts after the gradient lands
  }
  handle->OnCompleted();
  ctl.Join();

  std::lock_guard<std::mutex> lock(mu);
  ASSERT_EQ(grad_norm.size(), kIters);
  EXPECT_LT(grad_norm[kIters - 1], grad_norm[0] * 0.5)
      << "gradient descent failed to make progress";
}

INSTANTIATE_TEST_SUITE_P(Kinds, LogRegTest,
                         ::testing::Values(AllReduceKind::kChunked, AllReduceKind::kTree),
                         [](const ::testing::TestParamInfo<AllReduceKind>& info) {
                           return info.param == AllReduceKind::kChunked ? "Chunked" : "Tree";
                         });

}  // namespace
}  // namespace naiad
