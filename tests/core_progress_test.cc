// Tests for occurrence-count progress tracking (§2.3, §3.3): frontier queries, batch
// application, transient negative counts, and the ProgressBuffer flush discipline.

#include <gtest/gtest.h>

#include <map>
#include <random>
#include <vector>

#include "src/base/event_count.h"
#include "src/core/graph.h"
#include "src/core/progress.h"
#include "src/ser/codec.h"

namespace naiad {
namespace {

Timestamp T(uint64_t e, std::initializer_list<uint64_t> cs = {}) { return Timestamp(e, cs); }

// Linear graph with a loop, as in the summary tests: in -> ingress -> body -> egress -> out
// with body -> feedback -> body.
struct LoopGraph {
  LogicalGraph g;
  StageId in, ingress, body, egress, out, feedback;
  ConnectorId in_ing, ing_body, body_eg, eg_out, body_fb, fb_body;

  LoopGraph() {
    auto stage = [&](uint32_t depth, TimestampAction act) {
      StageDef d;
      d.depth = depth;
      d.action = act;
      return g.AddStage(std::move(d));
    };
    in = stage(0, TimestampAction::kNone);
    ingress = stage(0, TimestampAction::kIngress);
    body = stage(1, TimestampAction::kNone);
    egress = stage(1, TimestampAction::kEgress);
    out = stage(0, TimestampAction::kNone);
    feedback = stage(1, TimestampAction::kFeedback);
    in_ing = Conn(in, ingress);
    ing_body = Conn(ingress, body);
    body_eg = Conn(body, egress);
    eg_out = Conn(egress, out);
    body_fb = Conn(body, feedback);
    fb_body = Conn(feedback, body);
    g.Freeze();
  }
  ConnectorId Conn(StageId s, StageId d) {
    ConnectorDef cd;
    cd.src = s;
    cd.dst = d;
    return g.AddConnector(std::move(cd));
  }
};

class ProgressTrackerTest : public ::testing::Test {
 protected:
  LoopGraph lg;
  EventCount ev;
  ProgressTracker tracker{&lg.g, &ev};

  void Apply(const Pointstamp& p, int64_t d) {
    ProgressUpdate u{p, d};
    tracker.Apply(std::span<const ProgressUpdate>(&u, 1));
  }
};

TEST_F(ProgressTrackerTest, EmptyTrackerDeliversAnything) {
  EXPECT_TRUE(tracker.Empty());
  EXPECT_TRUE(tracker.CanDeliver({T(0, {0}), Location::Stage(lg.body)}));
}

TEST_F(ProgressTrackerTest, UpstreamMessageBlocksNotification) {
  Apply({T(0), Location::Connector(lg.in_ing)}, +1);
  EXPECT_FALSE(tracker.CanDeliver({T(0, {0}), Location::Stage(lg.body)}));
  EXPECT_FALSE(tracker.CanDeliver({T(0, {5}), Location::Stage(lg.body)}));
  EXPECT_FALSE(tracker.CanDeliver({T(1, {0}), Location::Stage(lg.body)}));
  Apply({T(0), Location::Connector(lg.in_ing)}, -1);
  EXPECT_TRUE(tracker.CanDeliver({T(0, {0}), Location::Stage(lg.body)}));
}

TEST_F(ProgressTrackerTest, LaterEpochDoesNotBlockEarlierIterations) {
  Apply({T(1), Location::Stage(lg.in)}, +1);  // epoch 1 still open at the input
  EXPECT_TRUE(tracker.CanDeliver({T(0, {3}), Location::Stage(lg.body)}));
  EXPECT_FALSE(tracker.CanDeliver({T(1, {0}), Location::Stage(lg.body)}));
}

TEST_F(ProgressTrackerTest, SameLocationEarlierTimeBlocks) {
  Apply({T(0, {1}), Location::Stage(lg.body)}, +1);  // pending notification at iter 1
  EXPECT_FALSE(tracker.CanDeliver({T(0, {2}), Location::Stage(lg.body)}));
  // Its own pointstamp does not block itself (q != p in the frontier rule).
  EXPECT_TRUE(tracker.CanDeliver({T(0, {1}), Location::Stage(lg.body)}));
  // The feedback path makes iteration 1 messages *not* block iteration 1 upstream-equal
  // cases but DOES block iteration 2 everywhere in the loop.
  EXPECT_FALSE(tracker.CanDeliver({T(0, {2}), Location::Stage(lg.egress)}));
}

TEST_F(ProgressTrackerTest, DownstreamDoesNotBlockUpstream) {
  Apply({T(0), Location::Connector(lg.eg_out)}, +1);
  EXPECT_TRUE(tracker.CanDeliver({T(0, {0}), Location::Stage(lg.body)}));
  EXPECT_TRUE(tracker.CanDeliver({T(5), Location::Stage(lg.in)}));
}

TEST_F(ProgressTrackerTest, TransientNegativeCountIsInactive) {
  // A consumer's -1 may overtake the producer's +1 (§3.3); negative counts must not block.
  Apply({T(0), Location::Connector(lg.in_ing)}, -1);
  EXPECT_FALSE(tracker.Empty());
  EXPECT_TRUE(tracker.CanDeliver({T(0, {0}), Location::Stage(lg.body)}));
  Apply({T(0), Location::Connector(lg.in_ing)}, +1);
  EXPECT_TRUE(tracker.Empty());
}

TEST_F(ProgressTrackerTest, FrontierPassedIncludesSelf) {
  Apply({T(0), Location::Stage(lg.out)}, +1);
  EXPECT_FALSE(tracker.FrontierPassed({T(0), Location::Stage(lg.out)}));
  EXPECT_TRUE(tracker.CanDeliver({T(0), Location::Stage(lg.out)}));  // q != p rule
  Apply({T(0), Location::Stage(lg.out)}, -1);
  EXPECT_TRUE(tracker.FrontierPassed({T(0), Location::Stage(lg.out)}));
}

TEST_F(ProgressTrackerTest, VersionAdvancesOnApply) {
  uint64_t v0 = tracker.version();
  Apply({T(0), Location::Stage(lg.in)}, +1);
  EXPECT_GT(tracker.version(), v0);
}

// The scoped tracker organized over the same LoopGraph must agree with flat on the
// fixture's canonical frontier facts (the model sweep in progress_scoped_model_test.cc
// covers randomized schedules; this pins the basics with readable assertions).
class ScopedProgressTrackerTest : public ::testing::Test {
 protected:
  LoopGraph lg;
  EventCount ev;
  ProgressTracker tracker{&lg.g, &ev, ProgressScoping::kScoped};

  void Apply(const Pointstamp& p, int64_t d) {
    ProgressUpdate u{p, d};
    tracker.Apply(std::span<const ProgressUpdate>(&u, 1));
  }
};

TEST_F(ScopedProgressTrackerTest, LoopActivityBlocksDownstreamThroughBoundaryImage) {
  Apply({T(0, {3}), Location::Stage(lg.body)}, +1);
  // The loop-internal pointstamp lives in the child scope; the root query sees it only
  // through the summarized image at the egress output connector.
  EXPECT_FALSE(tracker.CanDeliver({T(0), Location::Stage(lg.out)}));
  EXPECT_TRUE(tracker.CanDeliver({T(0), Location::Stage(lg.in)}));  // upstream unaffected
  EXPECT_GT(tracker.ScopingStats().boundary_updates, 0u);
  Apply({T(0, {3}), Location::Stage(lg.body)}, -1);
  EXPECT_TRUE(tracker.CanDeliver({T(0), Location::Stage(lg.out)}));
  EXPECT_TRUE(tracker.Empty());
}

TEST_F(ScopedProgressTrackerTest, RootActivityBlocksIntoTheLoop) {
  Apply({T(0), Location::Connector(lg.in_ing)}, +1);
  EXPECT_FALSE(tracker.CanDeliver({T(0, {0}), Location::Stage(lg.body)}));
  Apply({T(0), Location::Connector(lg.in_ing)}, -1);
  EXPECT_TRUE(tracker.CanDeliver({T(0, {0}), Location::Stage(lg.body)}));
}

TEST_F(ScopedProgressTrackerTest, TransientNegativeInsideLoopStaysInactive) {
  Apply({T(0, {1}), Location::Stage(lg.body)}, -1);
  EXPECT_FALSE(tracker.Empty());
  EXPECT_TRUE(tracker.CanDeliver({T(0), Location::Stage(lg.out)}));
  Apply({T(0, {1}), Location::Stage(lg.body)}, +1);
  EXPECT_TRUE(tracker.Empty());
}

// Two sibling loops A and B under the root: in → [loop A] → mid → [loop B] → out.
struct TwoLoopGraph {
  LogicalGraph g;
  StageId in, ingA, bodyA, fbA, egA, mid, ingB, bodyB, fbB, egB, out;

  TwoLoopGraph() {
    auto stage = [&](uint32_t depth, TimestampAction act) {
      StageDef d;
      d.depth = depth;
      d.action = act;
      return g.AddStage(std::move(d));
    };
    auto conn = [&](StageId s, StageId d) {
      ConnectorDef cd;
      cd.src = s;
      cd.dst = d;
      return g.AddConnector(std::move(cd));
    };
    in = stage(0, TimestampAction::kNone);
    ingA = stage(0, TimestampAction::kIngress);
    bodyA = stage(1, TimestampAction::kNone);
    fbA = stage(1, TimestampAction::kFeedback);
    egA = stage(1, TimestampAction::kEgress);
    mid = stage(0, TimestampAction::kNone);
    ingB = stage(0, TimestampAction::kIngress);
    bodyB = stage(1, TimestampAction::kNone);
    fbB = stage(1, TimestampAction::kFeedback);
    egB = stage(1, TimestampAction::kEgress);
    out = stage(0, TimestampAction::kNone);
    conn(in, ingA);
    conn(ingA, bodyA);
    conn(bodyA, fbA);
    conn(fbA, bodyA);
    conn(bodyA, egA);
    conn(egA, mid);
    conn(mid, ingB);
    conn(ingB, bodyB);
    conn(bodyB, fbB);
    conn(fbB, bodyB);
    conn(bodyB, egB);
    conn(egB, out);
    g.Freeze();
  }
};

// Regression for the O(active²) frontier rescan: a repeated query must be answered from
// the per-scope memo (no new scan), and — the scoped payoff — an update in a *sibling*
// scope that does not change that scope's boundary image must leave the memo valid.
// Only an update touching a scope on the query's chain invalidates it.
TEST(ScopedDirtyBitTest, SiblingScopeUpdatesDoNotInvalidateFrontierQueries) {
  TwoLoopGraph tg;
  EventCount ev;
  ProgressTracker tracker{&tg.g, &ev, ProgressScoping::kScoped};
  auto apply = [&](const Pointstamp& p, int64_t d) {
    ProgressUpdate u{p, d};
    tracker.Apply(std::span<const ProgressUpdate>(&u, 1));
  };
  const Pointstamp pa{Timestamp(0, {0}), Location::Stage(tg.bodyA)};
  const Pointstamp pb{Timestamp(0, {0}), Location::Stage(tg.bodyB)};

  // Activate loop A; its image lands at the egress-A output connector in the root scope.
  apply(pa, +1);
  ASSERT_FALSE(tracker.CanDeliver(pb));  // loop A upstream of loop B ⇒ blocked
  const uint64_t scans_after_first = tracker.ScopingStats().query_scans;
  ASSERT_GE(scans_after_first, 1u);

  // Same query again: memo hit, no new scan.
  ASSERT_FALSE(tracker.CanDeliver(pb));
  EXPECT_EQ(tracker.ScopingStats().query_scans, scans_after_first);
  EXPECT_GE(tracker.ScopingStats().query_memo_hits, 1u);

  // A second occurrence at the already-active pa changes only loop A's internal count —
  // no boundary transition, nothing on B's chain (scope B, root) moved. The memoized
  // verdict must stand without a rescan. (The flat tracker rescans here: any update
  // dirties its single global scope.)
  apply(pa, +1);
  ASSERT_FALSE(tracker.CanDeliver(pb));
  EXPECT_EQ(tracker.ScopingStats().query_scans, scans_after_first)
      << "sibling-scope update invalidated an unrelated frontier query";

  // Draining loop A removes its boundary image from the root — which IS on B's chain —
  // so the next query rescans and the frontier moves.
  apply(pa, -1);
  apply(pa, -1);
  ASSERT_TRUE(tracker.CanDeliver(pb));
  EXPECT_GT(tracker.ScopingStats().query_scans, scans_after_first);
}

// Flat mode gets the same memoization with a single scope: repeated queries with no
// intervening Apply are served from the memo.
TEST(ScopedDirtyBitTest, FlatModeMemoizesRepeatQueries) {
  TwoLoopGraph tg;
  EventCount ev;
  ProgressTracker tracker{&tg.g, &ev, ProgressScoping::kFlat};
  ProgressUpdate u{{Timestamp(0, {0}), Location::Stage(tg.bodyA)}, +1};
  tracker.Apply(std::span<const ProgressUpdate>(&u, 1));
  const Pointstamp pb{Timestamp(0, {0}), Location::Stage(tg.bodyB)};
  ASSERT_FALSE(tracker.CanDeliver(pb));
  const uint64_t scans = tracker.ScopingStats().query_scans;
  ASSERT_FALSE(tracker.CanDeliver(pb));
  ASSERT_FALSE(tracker.CanDeliver(pb));
  EXPECT_EQ(tracker.ScopingStats().query_scans, scans);
  EXPECT_GE(tracker.ScopingStats().query_memo_hits, 2u);
}

TEST(ProgressBufferTest, CombinesAndOrdersPositivesFirst) {
  ProgressBuffer buf;
  Pointstamp a{Timestamp(0), Location::Stage(0)};
  Pointstamp b{Timestamp(1), Location::Stage(0)};
  Pointstamp c{Timestamp(2), Location::Stage(0)};
  buf.Add(a, +1);
  buf.Add(a, +2);
  buf.Add(b, -1);
  buf.Add(c, +1);
  buf.Add(c, -1);  // cancels out
  std::vector<ProgressUpdate> out = buf.Take();
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0].point, a);
  EXPECT_EQ(out[0].delta, 3);
  EXPECT_EQ(out[1].point, b);
  EXPECT_EQ(out[1].delta, -1);
  EXPECT_TRUE(buf.Empty());
}

TEST(ProgressBufferTest, EmptyTracksCancellationWithoutTake) {
  ProgressBuffer buf;
  Pointstamp a{Timestamp(0), Location::Stage(1)};
  EXPECT_TRUE(buf.Empty());
  buf.Add(a, +1);
  EXPECT_FALSE(buf.Empty());
  buf.Add(a, -1);
  // The slot stays occupied with delta 0, but nothing is pending output — Empty() must
  // see that without scanning (regression: it used to report non-empty / scan O(slots)).
  EXPECT_TRUE(buf.Empty());
  EXPECT_TRUE(buf.Take().empty());
  buf.Add(a, -2);
  EXPECT_FALSE(buf.Empty());
  buf.Add(a, +2);
  EXPECT_TRUE(buf.Empty());
}

// Property test for the O(1) Empty() bookkeeping: a randomized add/cancel/Take sequence
// must agree with a reference map at every step, across combining, cancellation,
// re-activation of cancelled slots, and table growth.
TEST(ProgressBufferTest, RandomizedAddCancelTakeMatchesReference) {
  std::mt19937_64 rng(20260807);
  ProgressBuffer buf;
  std::map<Pointstamp, int64_t> ref;
  auto point = [](uint64_t i) {
    const uint32_t id = static_cast<uint32_t>(i % 97);  // enough keys to force Grow()
    return i % 2 == 0 ? Pointstamp{Timestamp(i % 5, {i % 3}), Location::Stage(id)}
                      : Pointstamp{Timestamp(i % 5), Location::Connector(id)};
  };
  for (int step = 0; step < 20000; ++step) {
    const uint64_t r = rng();
    if (r % 29 == 0) {
      std::vector<ProgressUpdate> out = buf.Take();
      size_t positives = 0;
      while (positives < out.size() && out[positives].delta > 0) {
        ++positives;
      }
      for (size_t i = 0; i < out.size(); ++i) {
        ASSERT_NE(out[i].delta, 0);
        // Positives precede negatives (§3.3), each sign group sorted by pointstamp.
        if (i < positives) {
          EXPECT_GT(out[i].delta, 0);
        } else {
          EXPECT_LT(out[i].delta, 0);
        }
        if (i > 0 && i != positives) {
          EXPECT_TRUE(out[i - 1].point < out[i].point);
        }
      }
      std::map<Pointstamp, int64_t> got;
      for (const ProgressUpdate& u : out) {
        got[u.point] += u.delta;
      }
      std::map<Pointstamp, int64_t> want;
      for (const auto& [p, d] : ref) {
        if (d != 0) {
          want[p] = d;
        }
      }
      EXPECT_EQ(got, want);
      ref.clear();
      EXPECT_TRUE(buf.Empty());
      continue;
    }
    const Pointstamp p = point(r >> 8);
    const int64_t delta = static_cast<int64_t>((r >> 40) % 5) - 2;  // [-2, +2], incl. 0
    buf.Add(p, delta);
    ref[p] += delta;
    bool any = false;
    for (const auto& [q, d] : ref) {
      any = any || d != 0;
    }
    ASSERT_EQ(buf.Empty(), !any) << "step " << step;
  }
}

TEST(ProgressUpdateTest, SerializationRoundTrip) {
  ProgressUpdate u{{Timestamp(3, {1, 2}), Location::Connector(9)}, -4};
  std::vector<uint8_t> bytes = EncodeToBytes(u);
  ProgressUpdate out;
  ASSERT_TRUE(DecodeFromBytes(std::span<const uint8_t>(bytes), out));
  EXPECT_EQ(out, u);
}

}  // namespace
}  // namespace naiad
