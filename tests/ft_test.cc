// Fault-tolerance tests (§3.4): checkpoint / restore round-trips, cross-epoch state
// survival, pending-notification recovery, and the logging tap.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <map>
#include <mutex>
#include <set>

#include "src/core/controller.h"
#include "src/core/io.h"
#include "src/ft/checkpoint.h"
#include "src/ft/log.h"
#include "src/algo/wcc.h"
#include "src/gen/graphs.h"
#include "src/lib/operators.h"

namespace naiad {
namespace {

using KV = std::pair<uint64_t, uint64_t>;

struct MinPipeline {
  Controller ctl;
  std::shared_ptr<InputHandle<KV>> handle;
  std::mutex mu;
  std::map<uint64_t, std::multiset<KV>> outputs;

  explicit MinPipeline(uint32_t workers) : ctl(Config{.workers_per_process = workers}) {
    GraphBuilder b(ctl);
    auto [in, h] = NewInput<KV>(b);
    handle = h;
    auto mins = MonotonicAggregate<uint64_t, uint64_t>(
        in,
        [](uint64_t& cur, const uint64_t& cand) {
          if (cand < cur) {
            cur = cand;
            return true;
          }
          return false;
        },
        StateScope::kGlobal);
    Subscribe<KV>(mins, [this](uint64_t e, std::vector<KV>& recs) {
      std::lock_guard<std::mutex> lock(mu);
      outputs[e].insert(recs.begin(), recs.end());
    });
  }
};

TEST(CheckpointTest, GlobalStateSurvivesRestore) {
  std::vector<uint8_t> image;
  {
    MinPipeline p(2);
    p.ctl.Start();
    p.handle->OnNext({{1, 5}, {2, 7}});
    Probe(&p.ctl, 0);  // no-op; wait via tracker below
    p.ctl.tracker().WaitFor([&] {
      return p.ctl.tracker().FrontierPassed({Timestamp(0), Location::Stage(0)});
    });
    image = CheckpointProcess(p.ctl);
    p.handle->OnCompleted();
    p.ctl.Join();
  }
  ASSERT_FALSE(image.empty());

  MinPipeline p2(2);
  std::vector<InputEpochs> inputs = RestoreProcess(p2.ctl, image);
  ASSERT_EQ(inputs.size(), 1u);
  EXPECT_EQ(inputs[0].next_epoch, 1u);
  p2.handle->RestoreEpoch(inputs[0].next_epoch, inputs[0].closed);
  p2.ctl.Start();
  // (1, 9) is worse than the checkpointed minimum 5: restored state must suppress it.
  // (2, 3) improves on 7: must be emitted.
  p2.handle->OnNext({{1, 9}, {2, 3}});
  p2.handle->OnCompleted();
  p2.ctl.Join();
  std::lock_guard<std::mutex> lock(p2.mu);
  EXPECT_EQ(p2.outputs[1], (std::multiset<KV>{{2, 3}}));
}

TEST(CheckpointTest, RestartWithoutRestoreForgetsState) {
  // Control experiment for the test above.
  MinPipeline p(2);
  p.ctl.Start();
  p.handle->OnNext({{1, 9}, {2, 3}});
  p.handle->OnCompleted();
  p.ctl.Join();
  std::lock_guard<std::mutex> lock(p.mu);
  EXPECT_EQ(p.outputs[0], (std::multiset<KV>{{1, 9}, {2, 3}}));
}

// A vertex whose only state is a pending notification far in the future.
class FutureNotifyVertex final : public UnaryVertex<uint64_t, uint64_t> {
 public:
  explicit FutureNotifyVertex(std::atomic<int>* fired) : fired_(fired) {}
  void OnRecv(const Timestamp& t, std::vector<uint64_t>& batch) override {}
  void OnNotify(const Timestamp& t) override { fired_->fetch_add(1); }

 private:
  std::atomic<int>* fired_;
};

TEST(CheckpointTest, PendingNotificationsSurviveRestore) {
  std::atomic<int> fired{0};
  auto build = [&fired](Controller& ctl) {
    GraphBuilder b(ctl);
    auto [in, h] = NewInput<uint64_t>(b);
    StageId sid = b.NewStage<FutureNotifyVertex>(
        StageOptions{.name = "future",
                     .parallelism = 1,
                     .initial_notifications = {Timestamp(3)}},
        [&fired](uint32_t) { return std::make_unique<FutureNotifyVertex>(&fired); });
    b.Connect<FutureNotifyVertex, uint64_t>(in, sid);
    return h;
  };

  std::vector<uint8_t> image;
  {
    Controller ctl(Config{.workers_per_process = 2});
    auto h = build(ctl);
    ctl.Start();
    h->OnNext({1});  // epoch 0 done; notification at epoch 3 still pending
    image = CheckpointProcess(ctl);
    EXPECT_EQ(fired.load(), 0);
    ctl.Stop();  // simulated failure: abandon the rest of the run
  }

  Controller ctl(Config{.workers_per_process = 2});
  auto h = build(ctl);
  std::vector<InputEpochs> inputs = RestoreProcess(ctl, image);
  h->RestoreEpoch(inputs[0].next_epoch, inputs[0].closed);
  ctl.Start();
  h->OnNext({2});  // epoch 1
  h->OnNext({3});  // epoch 2
  EXPECT_EQ(fired.load(), 0);  // epoch 3 not yet complete
  h->OnNext({4});  // epoch 3
  h->OnCompleted();
  ctl.Join();
  EXPECT_EQ(fired.load(), 1);  // fired exactly once, after restore
}

TEST(CheckpointTest, PerEpochOperatorStateRoundTrips) {
  // Count keeps per-timestamp state only between OnRecv and OnNotify, so a quiesced
  // checkpoint is small; this verifies the image decodes and the computation continues.
  std::vector<uint8_t> image;
  std::mutex mu;
  std::map<uint64_t, std::multiset<std::pair<uint64_t, uint64_t>>> outputs;
  auto build = [&](Controller& ctl) {
    GraphBuilder b(ctl);
    auto [in, h] = NewInput<uint64_t>(b);
    auto counts = Count(in, [](const uint64_t& x) { return x % 5; });
    Subscribe<std::pair<uint64_t, uint64_t>>(
        counts, [&](uint64_t e, std::vector<std::pair<uint64_t, uint64_t>>& recs) {
          std::lock_guard<std::mutex> lock(mu);
          outputs[e].insert(recs.begin(), recs.end());
        });
    return h;
  };
  {
    Controller ctl(Config{.workers_per_process = 2});
    auto h = build(ctl);
    ctl.Start();
    h->OnNext({0, 1, 2, 5, 6});
    image = CheckpointProcess(ctl);
    ctl.Stop();
  }
  Controller ctl(Config{.workers_per_process = 2});
  auto h = build(ctl);
  std::vector<InputEpochs> inputs = RestoreProcess(ctl, image);
  h->RestoreEpoch(inputs[0].next_epoch, inputs[0].closed);
  ctl.Start();
  h->OnNext({7});
  h->OnCompleted();
  ctl.Join();
  std::lock_guard<std::mutex> lock(mu);
  EXPECT_EQ(outputs[1],
            (std::multiset<std::pair<uint64_t, uint64_t>>{{2, 1}}));
}

// Checkpoint a stateful *iterative* computation mid-stream: incremental connected
// components over a growing edge set, killed and restored between epochs.
TEST(CheckpointTest, IncrementalWccSurvivesRestore) {
  std::vector<Edge> all_edges = RandomGraph(60, 90, 33);
  const size_t half = all_edges.size() / 2;
  std::vector<Edge> first(all_edges.begin(), all_edges.begin() + half);
  std::vector<Edge> second(all_edges.begin() + half, all_edges.end());

  // Reference: final labels from the union of both batches.
  std::map<uint64_t, uint64_t> want;
  {
    std::map<uint64_t, uint64_t> parent;
    std::function<uint64_t(uint64_t)> find = [&](uint64_t x) {
      parent.try_emplace(x, x);
      while (parent[x] != x) {
        parent[x] = parent[parent[x]];
        x = parent[x];
      }
      return x;
    };
    for (const Edge& e : all_edges) {
      uint64_t a = find(e.first);
      uint64_t b = find(e.second);
      if (a != b) {
        parent[std::max(a, b)] = std::min(a, b);
      }
    }
    for (const auto& [n, p] : parent) {
      want[n] = find(n);
    }
  }

  std::mutex mu;
  std::map<uint64_t, uint64_t> labels;
  auto build = [&](Controller& ctl) {
    GraphBuilder b(ctl);
    auto [in, h] = NewInput<Edge>(b);
    ForEach<NodeLabel>(IncrementalConnectedComponents(in),
                       [&](const Timestamp&, std::vector<NodeLabel>& recs) {
                         std::lock_guard<std::mutex> lock(mu);
                         for (const NodeLabel& nl : recs) {
                           auto [it, fresh] = labels.try_emplace(nl.first, nl.second);
                           it->second = std::min(it->second, nl.second);
                         }
                       });
    return h;
  };

  std::vector<uint8_t> image;
  {
    Controller ctl(Config{.workers_per_process = 2});
    auto h = build(ctl);
    ctl.Start();
    h->OnNext(first);
    ctl.tracker().WaitFor([&] {
      return ctl.tracker().FrontierPassed({Timestamp(0), Location::Stage(0)});
    });
    image = CheckpointProcess(ctl);
    ctl.Stop();  // simulated failure
  }
  {
    Controller ctl(Config{.workers_per_process = 2});
    auto h = build(ctl);
    std::vector<InputEpochs> inputs = RestoreProcess(ctl, image);
    h->RestoreEpoch(inputs[0].next_epoch, inputs[0].closed);
    ctl.Start();
    h->OnNext(second);
    h->OnCompleted();
    ctl.Join();
  }
  std::lock_guard<std::mutex> lock(mu);
  EXPECT_EQ(labels, want);
}

TEST(LogTest, DurableModeWritesMoreSlowlyButIdentically) {
  const std::string p1 = ::testing::TempDir() + "/naiad_log_fast.bin";
  const std::string p2 = ::testing::TempDir() + "/naiad_log_durable.bin";
  for (const auto& [path, durable] : {std::pair{p1, false}, std::pair{p2, true}}) {
    auto log = std::make_shared<LogWriter>(path);
    Controller ctl(Config{.workers_per_process = 2});
    GraphBuilder b(ctl);
    auto [in, h] = NewInput<uint64_t>(b);
    Stream<uint64_t> tapped = Logged<uint64_t>(in, log, durable);
    std::atomic<uint64_t> n{0};
    ForEach<uint64_t>(tapped, [&](const Timestamp&, std::vector<uint64_t>& recs) {
      n.fetch_add(recs.size());
    });
    ctl.Start();
    h->OnNext({1, 2, 3});
    h->OnNext({4});
    h->OnCompleted();
    ctl.Join();
    EXPECT_EQ(n.load(), 4u);
    EXPECT_GT(log->bytes_written(), 0u);
    std::remove(path.c_str());
  }
}

TEST(LogTest, LoggedTapWritesAndForwards) {
  const std::string path = ::testing::TempDir() + "/naiad_log_test.bin";
  auto log = std::make_shared<LogWriter>(path);
  Controller ctl(Config{.workers_per_process = 2});
  GraphBuilder b(ctl);
  auto [in, h] = NewInput<uint64_t>(b);
  Stream<uint64_t> tapped = Logged<uint64_t>(in, log);
  std::atomic<uint64_t> total{0};
  ForEach<uint64_t>(tapped, [&](const Timestamp&, std::vector<uint64_t>& recs) {
    for (uint64_t v : recs) {
      total.fetch_add(v);
    }
  });
  ctl.Start();
  h->OnNext({1, 2, 3});
  h->OnCompleted();
  ctl.Join();
  EXPECT_EQ(total.load(), 6u);
  EXPECT_GT(log->bytes_written(), 0u);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace naiad
