// Fault-tolerance tests (§3.4): checkpoint / restore round-trips, cross-epoch state
// survival, pending-notification recovery, kill-and-recover with real process death,
// and the logging tap.

#include <gtest/gtest.h>

#include <dirent.h>
#include <sys/stat.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <map>
#include <mutex>
#include <set>
#include <thread>

#include "src/base/hash.h"
#include "src/core/controller.h"
#include "src/core/io.h"
#include "src/ft/checkpoint.h"
#include "src/ft/log.h"
#include "src/ft/recovery.h"
#include "src/algo/wcc.h"
#include "src/gen/graphs.h"
#include "src/lib/operators.h"

namespace naiad {
namespace {

using KV = std::pair<uint64_t, uint64_t>;

struct MinPipeline {
  Controller ctl;
  std::shared_ptr<InputHandle<KV>> handle;
  Probe probe;
  std::mutex mu;
  std::map<uint64_t, std::multiset<KV>> outputs;

  explicit MinPipeline(uint32_t workers) : ctl(Config{.workers_per_process = workers}) {
    GraphBuilder b(ctl);
    auto [in, h] = NewInput<KV>(b);
    handle = h;
    auto mins = MonotonicAggregate<uint64_t, uint64_t>(
        in,
        [](uint64_t& cur, const uint64_t& cand) {
          if (cand < cur) {
            cur = cand;
            return true;
          }
          return false;
        },
        StateScope::kGlobal);
    probe = Subscribe<KV>(mins, [this](uint64_t e, std::vector<KV>& recs) {
      std::lock_guard<std::mutex> lock(mu);
      outputs[e].insert(recs.begin(), recs.end());
    });
  }
};

TEST(CheckpointTest, GlobalStateSurvivesRestore) {
  std::vector<uint8_t> image;
  {
    MinPipeline p(2);
    p.ctl.Start();
    p.handle->OnNext({{1, 5}, {2, 7}});
    Probe(&p.ctl, 0);  // no-op; wait via tracker below
    p.ctl.tracker().WaitFor([&] {
      return p.ctl.tracker().FrontierPassed({Timestamp(0), Location::Stage(0)});
    });
    image = CheckpointProcess(p.ctl);
    p.handle->OnCompleted();
    p.ctl.Join();
  }
  ASSERT_FALSE(image.empty());

  MinPipeline p2(2);
  std::vector<InputEpochs> inputs = RestoreProcess(p2.ctl, image);
  ASSERT_EQ(inputs.size(), 1u);
  EXPECT_EQ(inputs[0].next_epoch, 1u);
  p2.handle->RestoreEpoch(inputs[0].next_epoch, inputs[0].closed);
  p2.ctl.Start();
  // (1, 9) is worse than the checkpointed minimum 5: restored state must suppress it.
  // (2, 3) improves on 7: must be emitted.
  p2.handle->OnNext({{1, 9}, {2, 3}});
  p2.handle->OnCompleted();
  p2.ctl.Join();
  std::lock_guard<std::mutex> lock(p2.mu);
  EXPECT_EQ(p2.outputs[1], (std::multiset<KV>{{2, 3}}));
}

TEST(CheckpointTest, RestartWithoutRestoreForgetsState) {
  // Control experiment for the test above.
  MinPipeline p(2);
  p.ctl.Start();
  p.handle->OnNext({{1, 9}, {2, 3}});
  p.handle->OnCompleted();
  p.ctl.Join();
  std::lock_guard<std::mutex> lock(p.mu);
  EXPECT_EQ(p.outputs[0], (std::multiset<KV>{{1, 9}, {2, 3}}));
}

// A vertex whose only state is a pending notification far in the future.
class FutureNotifyVertex final : public UnaryVertex<uint64_t, uint64_t> {
 public:
  explicit FutureNotifyVertex(std::atomic<int>* fired) : fired_(fired) {}
  void OnRecv(const Timestamp& t, std::vector<uint64_t>& batch) override {}
  void OnNotify(const Timestamp& t) override { fired_->fetch_add(1); }

 private:
  std::atomic<int>* fired_;
};

TEST(CheckpointTest, PendingNotificationsSurviveRestore) {
  std::atomic<int> fired{0};
  auto build = [&fired](Controller& ctl) {
    GraphBuilder b(ctl);
    auto [in, h] = NewInput<uint64_t>(b);
    StageId sid = b.NewStage<FutureNotifyVertex>(
        StageOptions{.name = "future",
                     .parallelism = 1,
                     .initial_notifications = {Timestamp(3)}},
        [&fired](uint32_t) { return std::make_unique<FutureNotifyVertex>(&fired); });
    b.Connect<FutureNotifyVertex, uint64_t>(in, sid);
    return h;
  };

  std::vector<uint8_t> image;
  {
    Controller ctl(Config{.workers_per_process = 2});
    auto h = build(ctl);
    ctl.Start();
    h->OnNext({1});  // epoch 0 done; notification at epoch 3 still pending
    image = CheckpointProcess(ctl);
    EXPECT_EQ(fired.load(), 0);
    ctl.Stop();  // simulated failure: abandon the rest of the run
  }

  Controller ctl(Config{.workers_per_process = 2});
  auto h = build(ctl);
  std::vector<InputEpochs> inputs = RestoreProcess(ctl, image);
  h->RestoreEpoch(inputs[0].next_epoch, inputs[0].closed);
  ctl.Start();
  h->OnNext({2});  // epoch 1
  h->OnNext({3});  // epoch 2
  EXPECT_EQ(fired.load(), 0);  // epoch 3 not yet complete
  h->OnNext({4});  // epoch 3
  h->OnCompleted();
  ctl.Join();
  EXPECT_EQ(fired.load(), 1);  // fired exactly once, after restore
}

TEST(CheckpointTest, PerEpochOperatorStateRoundTrips) {
  // Count keeps per-timestamp state only between OnRecv and OnNotify, so a quiesced
  // checkpoint is small; this verifies the image decodes and the computation continues.
  std::vector<uint8_t> image;
  std::mutex mu;
  std::map<uint64_t, std::multiset<std::pair<uint64_t, uint64_t>>> outputs;
  auto build = [&](Controller& ctl) {
    GraphBuilder b(ctl);
    auto [in, h] = NewInput<uint64_t>(b);
    auto counts = Count(in, [](const uint64_t& x) { return x % 5; });
    Subscribe<std::pair<uint64_t, uint64_t>>(
        counts, [&](uint64_t e, std::vector<std::pair<uint64_t, uint64_t>>& recs) {
          std::lock_guard<std::mutex> lock(mu);
          outputs[e].insert(recs.begin(), recs.end());
        });
    return h;
  };
  {
    Controller ctl(Config{.workers_per_process = 2});
    auto h = build(ctl);
    ctl.Start();
    h->OnNext({0, 1, 2, 5, 6});
    image = CheckpointProcess(ctl);
    ctl.Stop();
  }
  Controller ctl(Config{.workers_per_process = 2});
  auto h = build(ctl);
  std::vector<InputEpochs> inputs = RestoreProcess(ctl, image);
  h->RestoreEpoch(inputs[0].next_epoch, inputs[0].closed);
  ctl.Start();
  h->OnNext({7});
  h->OnCompleted();
  ctl.Join();
  std::lock_guard<std::mutex> lock(mu);
  EXPECT_EQ(outputs[1],
            (std::multiset<std::pair<uint64_t, uint64_t>>{{2, 1}}));
}

// Checkpoint a stateful *iterative* computation mid-stream: incremental connected
// components over a growing edge set, killed and restored between epochs.
TEST(CheckpointTest, IncrementalWccSurvivesRestore) {
  std::vector<Edge> all_edges = RandomGraph(60, 90, 33);
  const size_t half = all_edges.size() / 2;
  std::vector<Edge> first(all_edges.begin(), all_edges.begin() + half);
  std::vector<Edge> second(all_edges.begin() + half, all_edges.end());

  // Reference: final labels from the union of both batches.
  std::map<uint64_t, uint64_t> want;
  {
    std::map<uint64_t, uint64_t> parent;
    std::function<uint64_t(uint64_t)> find = [&](uint64_t x) {
      parent.try_emplace(x, x);
      while (parent[x] != x) {
        parent[x] = parent[parent[x]];
        x = parent[x];
      }
      return x;
    };
    for (const Edge& e : all_edges) {
      uint64_t a = find(e.first);
      uint64_t b = find(e.second);
      if (a != b) {
        parent[std::max(a, b)] = std::min(a, b);
      }
    }
    for (const auto& [n, p] : parent) {
      want[n] = find(n);
    }
  }

  std::mutex mu;
  std::map<uint64_t, uint64_t> labels;
  auto build = [&](Controller& ctl) {
    GraphBuilder b(ctl);
    auto [in, h] = NewInput<Edge>(b);
    ForEach<NodeLabel>(IncrementalConnectedComponents(in),
                       [&](const Timestamp&, std::vector<NodeLabel>& recs) {
                         std::lock_guard<std::mutex> lock(mu);
                         for (const NodeLabel& nl : recs) {
                           auto [it, fresh] = labels.try_emplace(nl.first, nl.second);
                           it->second = std::min(it->second, nl.second);
                         }
                       });
    return h;
  };

  std::vector<uint8_t> image;
  {
    Controller ctl(Config{.workers_per_process = 2});
    auto h = build(ctl);
    ctl.Start();
    h->OnNext(first);
    ctl.tracker().WaitFor([&] {
      return ctl.tracker().FrontierPassed({Timestamp(0), Location::Stage(0)});
    });
    image = CheckpointProcess(ctl);
    ctl.Stop();  // simulated failure
  }
  {
    Controller ctl(Config{.workers_per_process = 2});
    auto h = build(ctl);
    std::vector<InputEpochs> inputs = RestoreProcess(ctl, image);
    h->RestoreEpoch(inputs[0].next_epoch, inputs[0].closed);
    ctl.Start();
    h->OnNext(second);
    h->OnCompleted();
    ctl.Join();
  }
  std::lock_guard<std::mutex> lock(mu);
  EXPECT_EQ(labels, want);
}

// Restore a graph containing a loop context while a notification is pending: the image
// must carry both the cyclic graph's frontier seeding and the future-epoch notification,
// and the notification must fire exactly once, after restore, when its epoch completes.
TEST(CheckpointTest, LoopGraphWithPendingNotificationSurvivesRestore) {
  std::atomic<int> fired{0};
  std::mutex mu;
  std::map<uint64_t, std::multiset<uint64_t>> outputs;
  auto build = [&](Controller& ctl) {
    GraphBuilder b(ctl);
    auto [in, h] = NewInput<uint64_t>(b);
    // Countdown loop: every value circulates, decrementing, until it hits zero; each
    // circulated value leaves through the egress.
    Stream<uint64_t> result = Iterate<uint64_t>(
        in, 0, [](const uint64_t& x) { return x; },
        [](LoopContext&, Stream<uint64_t> merged) {
          return Select(Where(merged, [](const uint64_t& x) { return x > 0; }),
                        [](const uint64_t& x) { return x - 1; });
        });
    Probe probe = Subscribe<uint64_t>(result, [&](uint64_t e, std::vector<uint64_t>& recs) {
      std::lock_guard<std::mutex> lock(mu);
      outputs[e].insert(recs.begin(), recs.end());
    });
    // A depth-0 observer of the loop's output holding a notification for epoch 3 —
    // pending across the checkpoint below.
    StageId sid = b.NewStage<FutureNotifyVertex>(
        StageOptions{.name = "future",
                     .parallelism = 1,
                     .initial_notifications = {Timestamp(3)}},
        [&fired](uint32_t) { return std::make_unique<FutureNotifyVertex>(&fired); });
    b.Connect<FutureNotifyVertex, uint64_t>(result, sid);
    return std::make_pair(h, probe);
  };

  std::vector<uint8_t> image;
  {
    Controller ctl(Config{.workers_per_process = 2});
    auto [h, probe] = build(ctl);
    ctl.Start();
    h->OnNext({3});  // epoch 0
    // The loop must fully drain and the subscriber's epoch-0 batch must be delivered
    // before the capture; only the future notification stays pending across it.
    probe.WaitPassed(0);
    image = CheckpointProcess(ctl);
    EXPECT_EQ(fired.load(), 0);
    ctl.Stop();  // simulated failure
  }

  Controller ctl(Config{.workers_per_process = 2});
  auto [h, probe] = build(ctl);
  (void)probe;
  std::vector<InputEpochs> inputs = RestoreProcess(ctl, image);
  ASSERT_EQ(inputs.size(), 1u);
  EXPECT_EQ(inputs[0].next_epoch, 1u);
  h->RestoreEpoch(inputs[0].next_epoch, inputs[0].closed);
  ctl.Start();
  h->OnNext({2});  // epoch 1
  h->OnNext({});   // epoch 2
  EXPECT_EQ(fired.load(), 0);  // epoch 3 not complete yet
  h->OnNext({4});  // epoch 3
  h->OnCompleted();
  ctl.Join();
  EXPECT_EQ(fired.load(), 1);  // pending notification restored and fired exactly once

  std::lock_guard<std::mutex> lock(mu);
  EXPECT_EQ(outputs[0], (std::multiset<uint64_t>{0, 1, 2}));        // pre-failure epoch
  EXPECT_EQ(outputs[1], (std::multiset<uint64_t>{0, 1}));           // replayed epochs
  EXPECT_EQ(outputs.count(2), 0u);                                  // empty epoch: no batch
  EXPECT_EQ(outputs[3], (std::multiset<uint64_t>{0, 1, 2, 3}));
}

// ---- Kill-and-recover: real process death via the src/ft/recovery.h driver ------------
//
// A forked child runs the MinPipeline over kKillEpochs deterministic epochs,
// checkpointing to an (atomically published) file at each epoch boundary; the driver
// SIGKILLs it mid-epoch at a seed-chosen point. Recovery restores a fresh controller
// from whatever image survived and replays the remaining epochs. The final state —
// captured as a checkpoint image, whose encoding is deterministic — must be
// byte-identical to a clean, never-killed run, for every seed in the sweep.

constexpr uint64_t kKillEpochs = 6;

std::vector<KV> KillEpochData(uint64_t epoch) {
  std::vector<KV> recs;
  for (uint64_t k = 0; k < 10; ++k) {
    recs.push_back({k, Mix64(HashCombine(epoch, k)) % 1000});
  }
  return recs;
}

// Barrier on the *sink's* probe, not the input stage: for a byte-deterministic
// checkpoint, every notification <= epoch anywhere in the pipeline must have fired
// before capture, and only the terminal stage's frontier guarantees that.
void WaitEpochPassed(MinPipeline& p, uint64_t epoch) {
  p.probe.WaitPassed(epoch);
}

TEST(KillRecoverTest, RecoveredRunMatchesCleanRunByteForByte) {
  // Clean reference: all epochs, no failure; keep the final image in memory.
  std::vector<uint8_t> clean_image;
  {
    MinPipeline p(2);
    p.ctl.Start();
    for (uint64_t e = 0; e < kKillEpochs; ++e) {
      p.handle->OnNext(KillEpochData(e));
      WaitEpochPassed(p, e);
    }
    clean_image = CheckpointProcess(p.ctl);
    p.handle->OnCompleted();
    p.ctl.Join();
  }
  ASSERT_FALSE(clean_image.empty());

  for (uint64_t seed = 1; seed <= 5; ++seed) {
    const std::string ckpt =
        ::testing::TempDir() + "/naiad_kill_" + std::to_string(seed) + ".ckpt";
    std::remove(ckpt.c_str());

    KillRecoverDriver::Outcome outcome = KillRecoverDriver::Run(
        seed, kKillEpochs, [&](KillRecoverDriver::Reporter& rep) {
          MinPipeline p(2);
          p.ctl.Start();
          for (uint64_t e = 0; e < kKillEpochs; ++e) {
            rep.StartingEpoch(e);
            p.handle->OnNext(KillEpochData(e));
            WaitEpochPassed(p, e);
            std::vector<uint8_t> image = CheckpointProcess(p.ctl);
            if (WriteCheckpointFile(ckpt, image)) {
              rep.CheckpointDurable(e);
            }
          }
          p.handle->OnCompleted();
          p.ctl.Join();
        });
    ASSERT_TRUE(outcome.forked) << "seed " << seed;

    // Recovery: restore from whatever image survived on disk (possibly none, if the
    // kill landed before the first checkpoint was durable) and replay the rest.
    std::vector<uint8_t> surviving = ReadCheckpointFile(ckpt);
    std::vector<uint8_t> final_image;
    {
      MinPipeline p(2);
      uint64_t first_epoch = 0;
      if (!surviving.empty()) {
        std::vector<InputEpochs> inputs = RestoreProcess(p.ctl, std::move(surviving));
        ASSERT_EQ(inputs.size(), 1u) << "seed " << seed;
        p.handle->RestoreEpoch(inputs[0].next_epoch, inputs[0].closed);
        first_epoch = inputs[0].next_epoch;
      }
      p.ctl.Start();
      for (uint64_t e = first_epoch; e < kKillEpochs; ++e) {
        p.handle->OnNext(KillEpochData(e));
        WaitEpochPassed(p, e);
      }
      final_image = CheckpointProcess(p.ctl);
      p.handle->OnCompleted();
      p.ctl.Join();
    }
    EXPECT_EQ(final_image, clean_image)
        << "seed " << seed << ": kill at epoch " << outcome.kill_epoch
        << " (last durable " << outcome.last_durable_epoch
        << ", any=" << outcome.any_durable << ") diverged from the clean run";
    std::remove(ckpt.c_str());
  }
}

TEST(KillRecoverTest, DriverKillsAtTheSeedChosenEpoch) {
  // The driver's schedule is a pure function of the seed: same seed, same kill epoch.
  for (uint64_t seed : {3u, 9u, 14u}) {
    KillRecoverDriver::Outcome a = KillRecoverDriver::Run(
        seed, kKillEpochs, [&](KillRecoverDriver::Reporter& rep) {
          for (uint64_t e = 0; e < kKillEpochs; ++e) {
            rep.StartingEpoch(e);
            // Slow enough that the kill lands while this epoch is "in flight".
            std::this_thread::sleep_for(std::chrono::milliseconds(20));
            rep.CheckpointDurable(e);
          }
        });
    EXPECT_TRUE(a.forked);
    EXPECT_TRUE(a.killed) << "seed " << seed;
    EXPECT_EQ(a.kill_epoch, 1 + seed % (kKillEpochs - 1)) << "seed " << seed;
    EXPECT_LT(a.last_durable_epoch, a.kill_epoch) << "seed " << seed;
  }
}

size_t OpenFdCount() {
  DIR* d = ::opendir("/proc/self/fd");
  EXPECT_NE(d, nullptr);
  size_t n = 0;
  while (::readdir(d) != nullptr) {
    ++n;
  }
  ::closedir(d);
  return n;
}

// Regression for the WriteCheckpointFile error paths: the old short-circuited
// `fsync(fd) != 0 || close(fd) != 0 || rename(...)` chain leaked the fd whenever fsync
// failed, and a failed rename left the temp file behind. Every failure must close the fd
// and unlink the temp file.
TEST(CheckpointFileTest, FailedPublishLeaksNoFdAndRemovesTempFile) {
  const std::vector<uint8_t> image = {1, 2, 3, 4};
  const size_t fds_before = OpenFdCount();

  // rename(tmp, path) fails with EISDIR when `path` is a directory — a deterministic
  // failure that lands *after* the fsync+close sequence the old chain got wrong.
  const std::string dir_target = ::testing::TempDir() + "/naiad_ckpt_errdir";
  ASSERT_EQ(::mkdir(dir_target.c_str(), 0755), 0);
  EXPECT_FALSE(WriteCheckpointFile(dir_target, image));
  EXPECT_EQ(OpenFdCount(), fds_before);
  struct stat st;
  EXPECT_NE(::stat((dir_target + ".tmp").c_str(), &st), 0)
      << "failed publish left its temp file behind";
  ASSERT_EQ(::rmdir(dir_target.c_str()), 0);

  // A missing parent directory fails at open(tmp) — before any fd exists to leak.
  EXPECT_FALSE(WriteCheckpointFile(
      ::testing::TempDir() + "/naiad_no_such_dir/ckpt", image));
  EXPECT_EQ(OpenFdCount(), fds_before);
}

TEST(CheckpointFileTest, PublishedImageRoundTripsAndOverwrites) {
  const std::string path = ::testing::TempDir() + "/naiad_ckpt_roundtrip";
  std::remove(path.c_str());
  const size_t fds_before = OpenFdCount();
  const std::vector<uint8_t> first = {9, 8, 7, 6, 5};
  ASSERT_TRUE(WriteCheckpointFile(path, first));
  EXPECT_EQ(ReadCheckpointFile(path), first);
  // Republishing replaces the image atomically (the kill/recover path overwrites the
  // same name every epoch) and leaves no temp file.
  std::vector<uint8_t> second(300);
  for (size_t i = 0; i < second.size(); ++i) {
    second[i] = static_cast<uint8_t>(i * 7);
  }
  ASSERT_TRUE(WriteCheckpointFile(path, second));
  EXPECT_EQ(ReadCheckpointFile(path), second);
  struct stat st;
  EXPECT_NE(::stat((path + ".tmp").c_str(), &st), 0);
  EXPECT_EQ(OpenFdCount(), fds_before);
  std::remove(path.c_str());
}

TEST(LogTest, DurableModeWritesMoreSlowlyButIdentically) {
  const std::string p1 = ::testing::TempDir() + "/naiad_log_fast.bin";
  const std::string p2 = ::testing::TempDir() + "/naiad_log_durable.bin";
  for (const auto& [path, durable] : {std::pair{p1, false}, std::pair{p2, true}}) {
    auto log = std::make_shared<LogWriter>(path);
    Controller ctl(Config{.workers_per_process = 2});
    GraphBuilder b(ctl);
    auto [in, h] = NewInput<uint64_t>(b);
    Stream<uint64_t> tapped = Logged<uint64_t>(in, log, durable);
    std::atomic<uint64_t> n{0};
    ForEach<uint64_t>(tapped, [&](const Timestamp&, std::vector<uint64_t>& recs) {
      n.fetch_add(recs.size());
    });
    ctl.Start();
    h->OnNext({1, 2, 3});
    h->OnNext({4});
    h->OnCompleted();
    ctl.Join();
    EXPECT_EQ(n.load(), 4u);
    EXPECT_GT(log->bytes_written(), 0u);
    std::remove(path.c_str());
  }
}

// Regression: LogWriter::Append used to ignore fwrite's return value, so a short write
// (ENOSPC, full pipe, failing disk) silently corrupted the log while bytes_written_ kept
// advancing. A failed write must surface to the caller and latch the writer.
TEST(LogTest, ShortWriteSurfacesAndLatchesError) {
  const std::string path = ::testing::TempDir() + "/naiad_log_shortwrite.bin";
  LogWriter log(path);
  const std::vector<uint8_t> rec = {1, 2, 3, 4};
  ASSERT_TRUE(log.Append(rec));
  EXPECT_TRUE(log.ok());
  EXPECT_EQ(log.bytes_written(), 4u);

  // ENOSPC-style failure via the fault hook: the next write fails short.
  log.SetWriteFaultHook([](size_t) { return false; });
  EXPECT_FALSE(log.Append(rec));
  EXPECT_FALSE(log.ok());
  EXPECT_EQ(log.bytes_written(), 4u) << "a failed write must not advance bytes_written";

  // Latched: even after the "disk recovers", appends refuse until the log is truncated
  // back to a known-clean state — otherwise a later record would bury the torn tail.
  log.SetWriteFaultHook(nullptr);
  EXPECT_FALSE(log.Append(rec));
  EXPECT_FALSE(log.Sync());
  EXPECT_FALSE(log.Flush());
  ASSERT_TRUE(log.Truncate());
  EXPECT_TRUE(log.ok());
  EXPECT_TRUE(log.Append(rec));
  std::remove(path.c_str());
}

// Regression: LogWriter::Sync ignored fflush/fsync results, so "durable" logging could
// silently lose acknowledged batches. A sync failure must report false, and a writer
// that has already failed must never claim a later sync made it durable.
TEST(LogTest, SyncFailureSurfaces) {
  const std::string path = ::testing::TempDir() + "/naiad_log_syncfail.bin";
  LogWriter log(path);
  ASSERT_TRUE(log.Append(std::vector<uint8_t>{7, 7, 7}));
  ASSERT_TRUE(log.Sync());
  log.SetWriteFaultHook([](size_t) { return false; });
  EXPECT_FALSE(log.Append(std::vector<uint8_t>{8}));
  EXPECT_FALSE(log.Sync());
  EXPECT_FALSE(log.Flush());
  EXPECT_FALSE(log.ok());
  std::remove(path.c_str());
}

TEST(LogTest, FramedRecordsRoundTrip) {
  const std::string path = ::testing::TempDir() + "/naiad_log_roundtrip.bin";
  std::vector<std::vector<uint8_t>> want;
  {
    LogWriter log(path);
    for (uint8_t i = 0; i < 5; ++i) {
      std::vector<uint8_t> rec(1 + i * 3, static_cast<uint8_t>(0xA0 + i));
      ASSERT_TRUE(log.AppendRecord(rec));
      want.push_back(std::move(rec));
    }
    ASSERT_TRUE(log.Sync());
  }
  std::vector<std::vector<uint8_t>> got;
  EXPECT_EQ(LogReader::ReadAll(path, &got), LogReader::Status::kOk);
  EXPECT_EQ(got, want);
  std::remove(path.c_str());
}

// Torn tail: truncate the file mid-record (the crash window between fwrite and fsync)
// and check replay recovers exactly the clean prefix, and that TruncateTo restores a
// clean log. Mid-file corruption, by contrast, must be reported as corrupt.
TEST(LogTest, TornTailTruncatesToCleanPrefix) {
  const std::string path = ::testing::TempDir() + "/naiad_log_torn.bin";
  std::vector<std::vector<uint8_t>> want;
  uint64_t clean_bytes = 0;
  {
    LogWriter log(path);
    for (uint8_t i = 0; i < 3; ++i) {
      std::vector<uint8_t> rec(10 + i, i);
      ASSERT_TRUE(log.AppendRecord(rec));
      want.push_back(std::move(rec));
    }
    clean_bytes = log.bytes_written();
    ASSERT_TRUE(log.AppendRecord(std::vector<uint8_t>(64, 0xEE)));  // will be torn
    ASSERT_TRUE(log.Sync());
  }
  // Tear the final record: keep its header and half its body.
  ASSERT_TRUE(LogReader::TruncateTo(path, clean_bytes + 8 + 32));

  std::vector<std::vector<uint8_t>> got;
  uint64_t prefix = 0;
  EXPECT_EQ(LogReader::ReadAll(path, &got, &prefix), LogReader::Status::kTornTail);
  EXPECT_EQ(got, want);
  EXPECT_EQ(prefix, clean_bytes);

  // Truncating back to the clean prefix makes the log read clean again.
  ASSERT_TRUE(LogReader::TruncateTo(path, prefix));
  got.clear();
  EXPECT_EQ(LogReader::ReadAll(path, &got), LogReader::Status::kOk);
  EXPECT_EQ(got, want);

  // Mid-file corruption (flip a byte inside the first record) is NOT a torn tail.
  {
    std::FILE* f = std::fopen(path.c_str(), "rb+");
    ASSERT_NE(f, nullptr);
    ASSERT_EQ(std::fseek(f, 8 + 2, SEEK_SET), 0);
    std::fputc(0x5A, f);
    std::fclose(f);
  }
  got.clear();
  EXPECT_EQ(LogReader::ReadAll(path, &got), LogReader::Status::kCorrupt);
  std::remove(path.c_str());
}

TEST(LogTest, LoggedTapWritesAndForwards) {
  const std::string path = ::testing::TempDir() + "/naiad_log_test.bin";
  auto log = std::make_shared<LogWriter>(path);
  Controller ctl(Config{.workers_per_process = 2});
  GraphBuilder b(ctl);
  auto [in, h] = NewInput<uint64_t>(b);
  Stream<uint64_t> tapped = Logged<uint64_t>(in, log);
  std::atomic<uint64_t> total{0};
  ForEach<uint64_t>(tapped, [&](const Timestamp&, std::vector<uint64_t>& recs) {
    for (uint64_t v : recs) {
      total.fetch_add(v);
    }
  });
  ctl.Start();
  h->OnNext({1, 2, 3});
  h->OnCompleted();
  ctl.Join();
  EXPECT_EQ(total.load(), 6u);
  EXPECT_GT(log->bytes_written(), 0u);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace naiad
