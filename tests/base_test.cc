// Unit tests for src/base: containers, queues, synchronization, rng, pooling, hashing.

#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <thread>
#include <vector>

#include "src/base/event_count.h"
#include "src/base/hash.h"
#include "src/base/inline_vec.h"
#include "src/base/mpsc_queue.h"
#include "src/base/pool.h"
#include "src/base/rng.h"
#include "src/base/stopwatch.h"

namespace naiad {
namespace {

TEST(InlineVecTest, PushPopAndAccess) {
  InlineVec<uint64_t, 4> v;
  EXPECT_TRUE(v.empty());
  v.push_back(1);
  v.push_back(2);
  EXPECT_EQ(v.size(), 2u);
  EXPECT_EQ(v[0], 1u);
  EXPECT_EQ(v.back(), 2u);
  v.pop_back();
  EXPECT_EQ(v.back(), 1u);
}

TEST(InlineVecTest, EqualityAndLexOrder) {
  InlineVec<uint64_t, 4> a{1, 2};
  InlineVec<uint64_t, 4> b{1, 2};
  InlineVec<uint64_t, 4> c{1, 3};
  InlineVec<uint64_t, 4> shorter{1};
  EXPECT_EQ(a, b);
  EXPECT_TRUE(a < c);
  EXPECT_TRUE(shorter < a);  // prefix compares less
  InlineVec<uint64_t, 4> bigger{2, 0};
  EXPECT_TRUE(a < bigger);
}

TEST(InlineVecTest, ResizeAndClear) {
  InlineVec<int, 8> v;
  v.resize(5, 7);
  EXPECT_EQ(v.size(), 5u);
  EXPECT_EQ(v[4], 7);
  v.resize(2);
  EXPECT_EQ(v.size(), 2u);
  v.clear();
  EXPECT_TRUE(v.empty());
}

TEST(MpscQueueTest, FifoSingleProducer) {
  MpscQueue<int> q;
  for (int i = 0; i < 100; ++i) {
    q.Push(i);
  }
  std::vector<int> out;
  EXPECT_EQ(q.DrainInto(out), 100u);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(out[static_cast<size_t>(i)], i);
  }
  EXPECT_TRUE(q.Empty());
}

TEST(MpscQueueTest, ConcurrentProducersLoseNothing) {
  MpscQueue<int> q;
  constexpr int kProducers = 4;
  constexpr int kPerProducer = 5000;
  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&q, p] {
      for (int i = 0; i < kPerProducer; ++i) {
        q.Push(p * kPerProducer + i);
      }
    });
  }
  std::vector<int> out;
  while (out.size() < kProducers * kPerProducer) {
    q.DrainInto(out);
  }
  for (auto& t : producers) {
    t.join();
  }
  std::set<int> unique(out.begin(), out.end());
  EXPECT_EQ(unique.size(), static_cast<size_t>(kProducers * kPerProducer));
}

TEST(MpscQueueTest, PerProducerOrderPreserved) {
  MpscQueue<std::pair<int, int>> q;
  std::thread a([&] {
    for (int i = 0; i < 1000; ++i) {
      q.Push({0, i});
    }
  });
  std::thread b([&] {
    for (int i = 0; i < 1000; ++i) {
      q.Push({1, i});
    }
  });
  a.join();
  b.join();
  std::vector<std::pair<int, int>> out;
  q.DrainInto(out);
  int last[2] = {-1, -1};
  for (auto [who, seq] : out) {
    EXPECT_GT(seq, last[who]);
    last[who] = seq;
  }
}

TEST(EventCountTest, NotifyWakesWaiter) {
  EventCount ev;
  std::atomic<bool> woke{false};
  EventCount::Ticket ticket = ev.PrepareWait();
  std::thread t([&] {
    ev.CommitWait(ticket, std::chrono::microseconds(500000));
    woke.store(true);
  });
  ev.NotifyAll();
  t.join();
  EXPECT_TRUE(woke.load());
}

TEST(EventCountTest, StaleTicketReturnsImmediately) {
  EventCount ev;
  EventCount::Ticket ticket = ev.PrepareWait();
  ev.NotifyOne();
  Stopwatch sw;
  ev.CommitWait(ticket, std::chrono::microseconds(500000));
  EXPECT_LT(sw.ElapsedSeconds(), 0.25);  // did not wait for the timeout
}

TEST(RngTest, Deterministic) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Next(), b.Next());
  }
}

TEST(RngTest, BelowInRangeAndDoubleInUnit) {
  Rng r(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(r.Below(17), 17u);
    double d = r.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(ZipfTest, SkewsTowardSmallRanks) {
  ZipfSampler z(1000, 1.1, 3);
  size_t low = 0;
  constexpr size_t kSamples = 20000;
  for (size_t i = 0; i < kSamples; ++i) {
    if (z.Next() < 10) {
      ++low;
    }
  }
  // Ranks 0..9 carry far more than 1% of the mass under a Zipf(1.1) law.
  EXPECT_GT(low, kSamples / 5);
}

TEST(PoolTest, RecyclesBuffers) {
  BufferPool<int> pool;
  std::vector<int> buf = pool.Get();
  buf.reserve(128);
  int* data = buf.data();
  pool.Put(std::move(buf));
  std::vector<int> again = pool.Get();
  EXPECT_EQ(again.data(), data);
  EXPECT_TRUE(again.empty());
  EXPECT_GE(again.capacity(), 128u);
}

TEST(PoolTest, CapsPooledCount) {
  BufferPool<int> pool(2);
  pool.Put(std::vector<int>(8));
  pool.Put(std::vector<int>(8));
  pool.Put(std::vector<int>(8));
  EXPECT_EQ(pool.PooledCount(), 2u);
}

TEST(HashTest, DeterministicAndSpread) {
  EXPECT_EQ(Mix64(12345), Mix64(12345));
  EXPECT_NE(Mix64(1), Mix64(2));
  EXPECT_EQ(HashString("naiad"), HashString("naiad"));
  EXPECT_NE(HashString("naiad"), HashString("naiae"));
  // Sequential keys should land in different buckets of a small table.
  std::set<uint64_t> buckets;
  for (uint64_t i = 0; i < 64; ++i) {
    buckets.insert(Mix64(i) % 8);
  }
  EXPECT_EQ(buckets.size(), 8u);
}

TEST(SampleStatsTest, Percentiles) {
  SampleStats s;
  for (int i = 1; i <= 100; ++i) {
    s.Add(i);
  }
  EXPECT_DOUBLE_EQ(s.Min(), 1.0);
  EXPECT_DOUBLE_EQ(s.Max(), 100.0);
  EXPECT_NEAR(s.Median(), 50.5, 1e-9);
  EXPECT_NEAR(s.Percentile(95), 95.05, 0.1);
  EXPECT_NEAR(s.Mean(), 50.5, 1e-9);
}

}  // namespace
}  // namespace naiad
