// Tests for path summaries (§2.3): the normal-form algebra, domination, antichains, and
// the all-pairs minimal-summary matrix on a Figure-3-style graph.

#include <gtest/gtest.h>

#include <vector>

#include "src/base/rng.h"
#include "src/core/graph.h"
#include "src/core/path_summary.h"

namespace naiad {
namespace {

Timestamp T(uint64_t e, std::initializer_list<uint64_t> cs = {}) { return Timestamp(e, cs); }

TEST(PathSummaryTest, ElementaryActions) {
  EXPECT_EQ(PathSummary::Identity(1).Apply(T(3, {7})), T(3, {7}));
  EXPECT_EQ(PathSummary::Ingress(1).Apply(T(3, {7})), T(3, {7, 0}));
  EXPECT_EQ(PathSummary::Egress(2).Apply(T(3, {7, 9})), T(3, {7}));
  EXPECT_EQ(PathSummary::Feedback(2).Apply(T(3, {7, 9})), T(3, {7, 10}));
}

TEST(PathSummaryTest, ComposeMatchesSequentialApply) {
  // ingress then feedback then feedback then egress == identity + "entered and left".
  PathSummary s = PathSummary::Compose(PathSummary::Ingress(1), PathSummary::Feedback(2));
  s = PathSummary::Compose(s, PathSummary::Feedback(2));
  EXPECT_EQ(s.Apply(T(5, {3})), T(5, {3, 2}));
  s = PathSummary::Compose(s, PathSummary::Egress(2));
  EXPECT_EQ(s.Apply(T(5, {3})), T(5, {3}));
  EXPECT_EQ(s, PathSummary::Identity(1));
}

// Property: Compose(a, b).Apply(t) == b.Apply(a.Apply(t)) for random valid chains.
class SummaryAlgebraTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SummaryAlgebraTest, ComposeIsApplyComposition) {
  Rng rng(GetParam());
  // Random walk over elementary actions starting at depth 2.
  uint32_t depth = 2;
  Timestamp t = T(rng.Below(4), {rng.Below(4), rng.Below(4)});
  PathSummary acc = PathSummary::Identity(depth);
  Timestamp expected = t;
  for (int step = 0; step < 12; ++step) {
    PathSummary next;
    switch (rng.Below(3)) {
      case 0:
        next = PathSummary::Ingress(depth);
        ++depth;
        break;
      case 1:
        if (depth == 0) {
          continue;
        }
        next = PathSummary::Egress(depth);
        --depth;
        break;
      default:
        if (depth == 0) {
          continue;
        }
        next = PathSummary::Feedback(depth);
        break;
    }
    if (depth > kMaxLoopDepth - 1) {
      break;
    }
    acc = PathSummary::Compose(acc, next);
    expected = next.Apply(expected);
    EXPECT_EQ(acc.Apply(t), expected) << "step " << step;
  }
}

TEST_P(SummaryAlgebraTest, DominatesIsSoundOnSamples) {
  Rng rng(GetParam() + 1000);
  auto random_summary = [&](uint32_t src_depth, uint32_t dst_depth) {
    PathSummary s;
    s.keep = static_cast<uint32_t>(rng.Below(std::min(src_depth, dst_depth) + 1));
    s.inc = s.keep > 0 ? rng.Below(3) : 0;
    for (uint32_t i = s.keep; i < dst_depth; ++i) {
      s.push.push_back(rng.Below(3));
    }
    return s;
  };
  for (int trial = 0; trial < 50; ++trial) {
    PathSummary a = random_summary(2, 2);
    PathSummary b = random_summary(2, 2);
    if (!PathSummary::Dominates(a, b)) {
      continue;
    }
    for (int i = 0; i < 30; ++i) {
      Timestamp t = T(rng.Below(3), {rng.Below(4), rng.Below(4)});
      EXPECT_TRUE(Timestamp::PartialLeq(a.Apply(t), b.Apply(t)))
          << a.ToString() << " vs " << b.ToString() << " at " << t.ToString();
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SummaryAlgebraTest, ::testing::Range<uint64_t>(0, 10));

TEST(SummaryAntichainTest, KeepsOnlyMinimalElements) {
  SummaryAntichain ac;
  PathSummary ident = PathSummary::Identity(1);
  PathSummary once = PathSummary::Feedback(1);
  EXPECT_TRUE(ac.Insert(once));
  EXPECT_TRUE(ac.Insert(ident));  // identity dominates the increment
  EXPECT_EQ(ac.elements().size(), 1u);
  EXPECT_EQ(ac.elements()[0], ident);
  EXPECT_FALSE(ac.Insert(once));  // dominated, rejected
}

// ---- Figure 3 style graph ----------------------------------------------------------
//
//  In -> A -> I(ngress) -> B -> C -> E(gress) -> Out
//                          ^    |
//                          +-F<-+   (feedback)
struct Fig3 {
  LogicalGraph g;
  StageId in, a, i, b, c, e, out, f;

  Fig3() {
    auto stage = [&](const char* name, uint32_t depth, TimestampAction act) {
      StageDef d;
      d.name = name;
      d.depth = depth;
      d.action = act;
      return g.AddStage(std::move(d));
    };
    in = stage("in", 0, TimestampAction::kNone);
    a = stage("a", 0, TimestampAction::kNone);
    i = stage("ingress", 0, TimestampAction::kIngress);
    b = stage("b", 1, TimestampAction::kNone);
    c = stage("c", 1, TimestampAction::kNone);
    e = stage("egress", 1, TimestampAction::kEgress);
    out = stage("out", 0, TimestampAction::kNone);
    f = stage("feedback", 1, TimestampAction::kFeedback);
    Conn(in, a);
    Conn(a, i);
    Conn(i, b);
    Conn(b, c);
    Conn(c, e);
    Conn(e, out);
    Conn(c, f);
    Conn(f, b);
    g.Freeze();
  }

  void Conn(StageId s, StageId d) {
    ConnectorDef cd;
    cd.src = s;
    cd.dst = d;
    g.AddConnector(std::move(cd));
  }
};

TEST(SummaryMatrixTest, EntryIntoLoopPushesZero) {
  Fig3 fig;
  const auto& ac = fig.g.Summaries(Location::Stage(fig.in), Location::Stage(fig.b));
  ASSERT_EQ(ac.elements().size(), 1u);
  EXPECT_EQ(ac.elements()[0].Apply(T(4)), T(4, {0}));
}

TEST(SummaryMatrixTest, WithinLoopIdentityDominatesCycle) {
  Fig3 fig;
  const auto& ac = fig.g.Summaries(Location::Stage(fig.b), Location::Stage(fig.b));
  ASSERT_EQ(ac.elements().size(), 1u);
  EXPECT_EQ(ac.elements()[0], PathSummary::Identity(1));
}

TEST(SummaryMatrixTest, BackEdgeIncrementsIteration) {
  Fig3 fig;
  const auto& ac = fig.g.Summaries(Location::Stage(fig.c), Location::Stage(fig.b));
  ASSERT_EQ(ac.elements().size(), 1u);
  EXPECT_EQ(ac.elements()[0].Apply(T(4, {2})), T(4, {3}));
  EXPECT_TRUE(fig.g.CouldResultIn({T(0, {1}), Location::Stage(fig.c)},
                                  {T(0, {2}), Location::Stage(fig.b)}));
  EXPECT_FALSE(fig.g.CouldResultIn({T(0, {1}), Location::Stage(fig.c)},
                                   {T(0, {1}), Location::Stage(fig.b)}));
}

TEST(SummaryMatrixTest, EgressDropsIterationCounter) {
  Fig3 fig;
  const auto& ac = fig.g.Summaries(Location::Stage(fig.b), Location::Stage(fig.out));
  ASSERT_EQ(ac.elements().size(), 1u);
  EXPECT_EQ(ac.elements()[0].Apply(T(4, {9})), T(4));
  // Any iteration of epoch 4 could still affect epoch 4 (and later) outputs.
  EXPECT_TRUE(fig.g.CouldResultIn({T(4, {9}), Location::Stage(fig.b)},
                                  {T(4), Location::Stage(fig.out)}));
  EXPECT_FALSE(fig.g.CouldResultIn({T(4, {9}), Location::Stage(fig.b)},
                                   {T(3), Location::Stage(fig.out)}));
}

TEST(SummaryMatrixTest, NoPathMeansNoInfluence) {
  Fig3 fig;
  EXPECT_TRUE(fig.g.Summaries(Location::Stage(fig.out), Location::Stage(fig.b)).Empty());
  EXPECT_FALSE(fig.g.CouldResultIn({T(0), Location::Stage(fig.out)},
                                   {T(9, {9}), Location::Stage(fig.b)}));
}

TEST(SummaryMatrixTest, ConnectorLocationsParticipate) {
  Fig3 fig;
  // The connector feeding B is one identity hop from B.
  ConnectorId into_b = fig.g.stage(fig.b).inputs[0];
  const auto& ac = fig.g.Summaries(Location::Connector(into_b), Location::Stage(fig.b));
  ASSERT_EQ(ac.elements().size(), 1u);
  EXPECT_EQ(ac.elements()[0], PathSummary::Identity(1));
}

TEST(SummaryMatrixDeathTest, CycleWithoutFeedbackRejected) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  auto build = [] {
    LogicalGraph g;
    StageDef d1;
    d1.depth = 1;
    StageId x = g.AddStage(std::move(d1));
    StageDef d2;
    d2.depth = 1;
    StageId y = g.AddStage(std::move(d2));
    ConnectorDef c1;
    c1.src = x;
    c1.dst = y;
    g.AddConnector(std::move(c1));
    ConnectorDef c2;
    c2.src = y;
    c2.dst = x;
    g.AddConnector(std::move(c2));
    g.Freeze();
  };
  EXPECT_DEATH(build(), "cycle without feedback");
}

}  // namespace
}  // namespace naiad
